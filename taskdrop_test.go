package taskdrop_test

import (
	"testing"

	taskdrop "github.com/hpcclab/taskdrop"
)

func tinyTrace(s *taskdrop.System, seed int64) *taskdrop.Trace {
	return s.Workload(300, 2000, taskdrop.DefaultGammaSlack, seed)
}

func TestQuickstartFlow(t *testing.T) {
	sys := taskdrop.SPECSystem()
	tr := tinyTrace(sys, 1)
	res, err := sys.Simulate(tr, "PAM", taskdrop.HeuristicDropper())
	if err != nil {
		t.Fatal(err)
	}
	if err := res.Validate(); err != nil {
		t.Fatal(err)
	}
	if res.Total != 300 {
		t.Fatalf("total = %d", res.Total)
	}
}

func TestSystemConstructors(t *testing.T) {
	for _, sys := range []*taskdrop.System{
		taskdrop.SPECSystem(), taskdrop.VideoSystem(), taskdrop.HomogeneousSystem(),
	} {
		if sys.Matrix == nil || sys.Config.QueueCap != 6 {
			t.Fatalf("bad system: %+v", sys)
		}
	}
	if n := len(taskdrop.SPECSystem().Matrix.Machines()); n != 8 {
		t.Fatalf("SPEC machines = %d", n)
	}
}

func TestSimulateUnknownMapper(t *testing.T) {
	sys := taskdrop.VideoSystem()
	if _, err := sys.Simulate(tinyTrace(sys, 1), "not-a-mapper", nil); err == nil {
		t.Fatal("unknown mapper must error")
	}
}

func TestDropperConstructors(t *testing.T) {
	names := map[string]taskdrop.DropPolicy{
		"ReactDrop": taskdrop.ReactiveDropper(),
		"Heuristic": taskdrop.HeuristicDropper(),
		"Optimal":   taskdrop.OptimalDropper(),
		"Threshold": taskdrop.ThresholdDropper(0.25, true),
	}
	for want, p := range names {
		if p.Name() != want {
			t.Errorf("%T.Name() = %q, want %q", p, p.Name(), want)
		}
	}
	if hp := taskdrop.HeuristicDropperWith(2.0, 3); hp.Name() != "Heuristic" {
		t.Error("HeuristicDropperWith broken")
	}
	for _, name := range []string{"reactdrop", "heuristic", "optimal", "threshold"} {
		if _, err := taskdrop.DropperByName(name); err != nil {
			t.Errorf("DropperByName(%q): %v", name, err)
		}
	}
}

func TestMapperRegistryExposed(t *testing.T) {
	names := taskdrop.MapperNames()
	if len(names) < 6 {
		t.Fatalf("MapperNames = %v", names)
	}
	for _, n := range names {
		if _, err := taskdrop.MapperByName(n); err != nil {
			t.Errorf("MapperByName(%q): %v", n, err)
		}
	}
}

func TestProactiveDropperImprovesOversubscribedSystem(t *testing.T) {
	// The paper's headline claim at miniature scale: under
	// oversubscription, PAM+Heuristic completes at least as many tasks on
	// time as PAM+ReactDrop, usually far more. Averaged over a few paired
	// seeds to keep the assertion stable.
	sys := taskdrop.SPECSystem()
	var withDrop, without float64
	for seed := int64(1); seed <= 4; seed++ {
		tr := sys.Workload(2000, 13000, taskdrop.DefaultGammaSlack, seed)
		a, err := sys.Simulate(tr, "PAM", taskdrop.HeuristicDropper())
		if err != nil {
			t.Fatal(err)
		}
		b, err := sys.Simulate(tr, "PAM", taskdrop.ReactiveDropper())
		if err != nil {
			t.Fatal(err)
		}
		withDrop += a.RobustnessPct
		without += b.RobustnessPct
	}
	if withDrop <= without {
		t.Fatalf("proactive dropping did not help: %.1f%% vs %.1f%%", withDrop/4, without/4)
	}
}

func TestCustomMapperPluggable(t *testing.T) {
	sys := taskdrop.VideoSystem()
	tr := tinyTrace(sys, 2)
	res := sys.SimulateWith(tr, greedy{}, taskdrop.HeuristicDropper())
	if err := res.Validate(); err != nil {
		t.Fatal(err)
	}
}

// greedy is a minimal custom Mapper: first task to first free machine.
type greedy struct{}

func (greedy) Name() string { return "greedy" }

func (greedy) Map(ev *taskdrop.MappingEvent) {
	for len(ev.Batch()) > 0 {
		assigned := false
		for _, m := range ev.Machines() {
			if ev.FreeSlots(m) > 0 {
				ev.Assign(ev.Batch()[0], m)
				assigned = true
				break
			}
		}
		if !assigned {
			return
		}
	}
}

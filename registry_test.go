package taskdrop_test

import (
	"testing"

	taskdrop "github.com/hpcclab/taskdrop"
)

func TestNewDropperSpecs(t *testing.T) {
	cases := map[string]string{ // spec -> Name()
		"reactdrop":                   "ReactDrop",
		"none":                        "ReactDrop",
		"heuristic":                   "Heuristic",
		"heuristic:beta=1.5,eta=3":    "Heuristic",
		"optimal":                     "Optimal",
		"threshold":                   "Threshold",
		"Threshold:base=0.3,adaptive": "Threshold",
		"threshold:adaptive=false":    "Threshold",
		"approx:grace=200,beta=2":     "ApproxHeuristic",
		"THRESHOLD:BASE=0.5":          "Threshold",
	}
	for spec, want := range cases {
		p, err := taskdrop.NewDropper(spec)
		if err != nil {
			t.Errorf("NewDropper(%q): %v", spec, err)
			continue
		}
		if p.Name() != want {
			t.Errorf("NewDropper(%q).Name() = %q, want %q", spec, p.Name(), want)
		}
	}
	for _, bad := range []string{"", "bogus", "heuristic:beta=no", "heuristic:eta=0", "threshold:base=2", "optimal:x=1"} {
		if _, err := taskdrop.NewDropper(bad); err == nil {
			t.Errorf("NewDropper(%q) should error", bad)
		}
	}
}

func TestNewMapperSpecs(t *testing.T) {
	for _, spec := range []string{"PAM", "minmin", "MM", "kpb:percent=30", "random:seed=9"} {
		if _, err := taskdrop.NewMapper(spec); err != nil {
			t.Errorf("NewMapper(%q): %v", spec, err)
		}
	}
	for _, bad := range []string{"", "warp", "kpb:percent=0", "kpb:percent=101", "pam:x=1", "random:seed=soon"} {
		if _, err := taskdrop.NewMapper(bad); err == nil {
			t.Errorf("NewMapper(%q) should error", bad)
		}
	}
}

func TestNewProfileSpecs(t *testing.T) {
	for _, spec := range []string{"spec", "specint", "hc", "video", "transcoding", "homog", "spec:seed=7"} {
		if _, err := taskdrop.NewProfile(spec); err != nil {
			t.Errorf("NewProfile(%q): %v", spec, err)
		}
	}
	// A reseeded SPEC profile must differ from the default synthesis.
	a, err := taskdrop.NewProfile("spec")
	if err != nil {
		t.Fatal(err)
	}
	b, err := taskdrop.NewProfile("spec:seed=7")
	if err != nil {
		t.Fatal(err)
	}
	same := true
	for i := range a.MeanMS {
		for j := range a.MeanMS[i] {
			if a.MeanMS[i][j] != b.MeanMS[i][j] {
				same = false
			}
		}
	}
	if same {
		t.Error("spec:seed=7 should synthesize a different PET mean matrix")
	}
	for _, bad := range []string{"", "nope", "video:seed=1", "spec:seed=x"} {
		if _, err := taskdrop.NewProfile(bad); err == nil {
			t.Errorf("NewProfile(%q) should error", bad)
		}
	}
}

func TestRegistryNameLists(t *testing.T) {
	if len(taskdrop.MapperNames()) < 6 {
		t.Errorf("MapperNames = %v", taskdrop.MapperNames())
	}
	for _, n := range taskdrop.MapperNames() {
		if _, err := taskdrop.NewMapper(n); err != nil {
			t.Errorf("listed mapper %q does not resolve: %v", n, err)
		}
	}
	for _, n := range taskdrop.DropperNames() {
		if _, err := taskdrop.NewDropper(n); err != nil {
			t.Errorf("listed dropper %q does not resolve: %v", n, err)
		}
	}
	for _, n := range taskdrop.ProfileNames() {
		if _, err := taskdrop.NewProfile(n); err != nil {
			t.Errorf("listed profile %q does not resolve: %v", n, err)
		}
	}
}

func TestDeprecatedShimsShareRegistry(t *testing.T) {
	// The legacy ByName constructors must accept the parameterized grammar
	// too — one resolution path for everything.
	p, err := taskdrop.DropperByName("threshold:base=0.3,adaptive")
	if err != nil || p.Name() != "Threshold" {
		t.Fatalf("DropperByName spec support broken: %v, %v", p, err)
	}
	m, err := taskdrop.MapperByName("kpb:percent=40")
	if err != nil || m.Name() != "KPB" {
		t.Fatalf("MapperByName spec support broken: %v, %v", m, err)
	}
}

package taskdrop_test

import (
	"context"
	"encoding/json"
	"errors"
	"reflect"
	"strings"
	"sync/atomic"
	"testing"

	taskdrop "github.com/hpcclab/taskdrop"
)

// tinySweep builds a fast 2×2 grid (dropper × tasks) on the video profile
// with a reactdrop baseline.
func tinySweep(t *testing.T, extra ...taskdrop.SweepItem) *taskdrop.Sweep {
	t.Helper()
	items := []taskdrop.SweepItem{
		taskdrop.Profiles("video"),
		taskdrop.Mappers("PAM"),
		taskdrop.Droppers("heuristic", "reactdrop"),
		taskdrop.Tasks(300, 500),
		taskdrop.Each(taskdrop.WithWindow(2500)),
		taskdrop.SweepTrials(3),
		taskdrop.SweepSeed(42),
		taskdrop.Baseline("reactdrop"),
	}
	sw, err := taskdrop.NewSweep(append(items, extra...)...)
	if err != nil {
		t.Fatal(err)
	}
	return sw
}

func TestSweepExpandsGrid(t *testing.T) {
	sw := tinySweep(t)
	if sw.Cells() != 4 {
		t.Fatalf("cells = %d, want 4 (2 droppers × 2 levels)", sw.Cells())
	}
	res, err := sw.Run(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(res.Axes, []string{"profile", "mapper", "dropper", "tasks"}) {
		t.Fatalf("axes = %v", res.Axes)
	}
	if len(res.Cells) != 4 {
		t.Fatalf("results = %d cells", len(res.Cells))
	}
	for i, c := range res.Cells {
		if len(c.Run.Trials) != 3 {
			t.Fatalf("cell %d ran %d trials", i, len(c.Run.Trials))
		}
		if c.Run.Summary.Robustness.N != 3 {
			t.Fatalf("cell %d summary N = %d", i, c.Run.Summary.Robustness.N)
		}
		for _, res := range c.Run.Trials {
			if err := res.Validate(); err != nil {
				t.Fatal(err)
			}
		}
	}
}

func TestSweepBaselineDiffs(t *testing.T) {
	res, err := tinySweep(t).Run(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	var baselines, compared int
	for _, c := range res.Cells {
		if c.Baseline {
			baselines++
			if c.VsBaseline != nil {
				t.Fatal("baseline cell must not carry a self-difference")
			}
			continue
		}
		compared++
		if c.VsBaseline == nil {
			t.Fatalf("cell %q missing paired difference", c.Label)
		}
		// The paired mean difference must equal the difference of the two
		// cells' means exactly (both aggregate the same trials).
		base, ok := res.Cell("ReactDrop", c.Coords[3].Value)
		if !ok {
			t.Fatalf("baseline cell for %q not found", c.Label)
		}
		got := c.VsBaseline.Robustness.Mean
		want := c.Run.Summary.Robustness.Mean - base.Run.Summary.Robustness.Mean
		if diff := got - want; diff > 1e-9 || diff < -1e-9 {
			t.Fatalf("paired mean %v != difference of means %v", got, want)
		}
		// Proactive dropping helps on this workload (same property the
		// quickstart example asserts) — and now with a paired CI attached.
		if got <= 0 {
			t.Fatalf("heuristic vs reactdrop Δ robustness = %v, want > 0", got)
		}
	}
	if baselines != 2 || compared != 2 {
		t.Fatalf("baselines = %d, compared = %d", baselines, compared)
	}
}

func TestSweepDeterministicAcrossWorkers(t *testing.T) {
	var runs []*taskdrop.SweepResult
	for _, workers := range []int{1, 4} {
		res, err := tinySweep(t, taskdrop.SweepWorkers(workers)).Run(context.Background())
		if err != nil {
			t.Fatal(err)
		}
		runs = append(runs, res)
	}
	a, err := runs[0].JSON()
	if err != nil {
		t.Fatal(err)
	}
	b, err := runs[1].JSON()
	if err != nil {
		t.Fatal(err)
	}
	if string(a) != string(b) {
		t.Fatal("sweep results diverged across worker counts")
	}
}

func TestSweepScaleShrinksWorkloads(t *testing.T) {
	sw := tinySweep(t, taskdrop.SweepScale(0.1))
	sc, err := sw.Scenario(0)
	if err != nil {
		t.Fatal(err)
	}
	cfg := sc.WorkloadConfig()
	if cfg.TotalTasks != 30 || cfg.Window != 250 {
		t.Fatalf("scaled workload = %+v, want 30 tasks over 250 ticks", cfg)
	}
}

func TestSweepTable(t *testing.T) {
	res, err := tinySweep(t).Run(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	tab := res.Table()
	if len(tab.Rows) != 4 {
		t.Fatalf("flat table rows = %d", len(tab.Rows))
	}
	head := strings.Join(tab.Columns, "|")
	for _, want := range []string{"dropper", "tasks", "robustness (%)", "Δ robustness vs reactdrop (pp, paired)"} {
		if !strings.Contains(head, want) {
			t.Fatalf("flat table header missing %q: %s", want, head)
		}
	}
	var sawBaseline, sawDiff bool
	for _, row := range tab.Rows {
		last := row[len(row)-1]
		if last == "baseline" {
			sawBaseline = true
		} else if strings.Contains(last, "±") {
			sawDiff = true
		}
	}
	if !sawBaseline || !sawDiff {
		t.Fatalf("flat table lacks baseline/diff cells:\n%s", tab.CSV())
	}
	if res.CSV() != tab.CSV() {
		t.Fatal("SweepResult.CSV must render the flat table")
	}
}

func TestSweepJSONRoundTrip(t *testing.T) {
	res, err := tinySweep(t).Run(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	b, err := res.JSON()
	if err != nil {
		t.Fatal(err)
	}
	var decoded struct {
		Axes  []string `json:"axes"`
		Cells []struct {
			Coords []struct{ Axis, Value string } `json:"coords"`
			Run    struct {
				Summary map[string]any `json:"summary"`
			} `json:"run"`
			VsBaseline map[string]any `json:"vs_baseline"`
		} `json:"cells"`
	}
	if err := json.Unmarshal(b, &decoded); err != nil {
		t.Fatal(err)
	}
	if len(decoded.Cells) != 4 || len(decoded.Axes) != 4 {
		t.Fatalf("decoded %d cells / %d axes", len(decoded.Cells), len(decoded.Axes))
	}
	if _, ok := decoded.Cells[0].Run.Summary["robustness"]; !ok {
		t.Fatal("serialized cell missing robustness summary")
	}
}

func TestSweepPivot(t *testing.T) {
	res, err := tinySweep(t).Run(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	tab, err := res.Pivot(taskdrop.Pivot{
		ID: "p1", Title: "demo",
		Row: "dropper", Col: "tasks", ColFmt: "%s tasks",
		Metric: taskdrop.MetricRobustness,
	})
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(tab.Columns, []string{"dropper", "300 tasks", "500 tasks"}) {
		t.Fatalf("pivot columns = %v", tab.Columns)
	}
	if len(tab.Rows) != 2 || tab.Rows[0][0] != "Heuristic" || tab.Rows[1][0] != "ReactDrop" {
		t.Fatalf("pivot rows = %v", tab.Rows)
	}
	// Transposed with a Δ column: two column values, row-wise mean diff.
	tab2, err := res.Pivot(taskdrop.Pivot{
		Row: "tasks", Col: "dropper", ColFmt: "+%s",
		Metric: taskdrop.MetricRobustness, Delta: true, DeltaHeader: "Δ (pp)",
	})
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(tab2.Columns, []string{"tasks", "+Heuristic", "+ReactDrop", "Δ (pp)"}) {
		t.Fatalf("delta pivot columns = %v", tab2.Columns)
	}
	for _, row := range tab2.Rows {
		if !strings.HasPrefix(row[3], "+") && !strings.HasPrefix(row[3], "-") {
			t.Fatalf("delta cell %q not signed", row[3])
		}
	}
	// Metric-columns layout: pin the dropper axis first.
	if _, err := res.Pivot(taskdrop.Pivot{Row: "tasks", Columns: []taskdrop.MetricColumn{
		{Header: "rob", Metric: taskdrop.MetricRobustness},
	}}); err == nil {
		t.Fatal("pivot must reject an unplaced multi-value axis")
	}
	if _, err := res.Pivot(taskdrop.Pivot{Row: "dropper", Col: "dropper"}); err == nil {
		t.Fatal("pivot must reject Row == Col")
	}
}

func TestSweepPivotMetricColumns(t *testing.T) {
	sw, err := taskdrop.NewSweep(
		taskdrop.Profiles("video"),
		taskdrop.Droppers("heuristic"),
		taskdrop.Tasks(300, 500),
		taskdrop.Each(taskdrop.WithWindow(2500)),
		taskdrop.SweepTrials(2),
	)
	if err != nil {
		t.Fatal(err)
	}
	res, err := sw.Run(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	tab, err := res.Pivot(taskdrop.Pivot{
		Row: "tasks", RowHeader: "level",
		Columns: []taskdrop.MetricColumn{
			{Header: "robustness (%)", Metric: taskdrop.MetricRobustness},
			{Header: "proactive dropped (%)", Metric: taskdrop.MetricProactivePct},
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(tab.Columns, []string{"level", "robustness (%)", "proactive dropped (%)"}) {
		t.Fatalf("columns = %v", tab.Columns)
	}
	if len(tab.Rows) != 2 {
		t.Fatalf("rows = %v", tab.Rows)
	}
}

func TestSweepOnCellDone(t *testing.T) {
	var calls atomic.Int32
	sw := tinySweep(t, taskdrop.OnCellDone(func(done, total int, cell *taskdrop.CellResult) {
		if total != 4 || done < 1 || done > 4 || cell.Run == nil {
			t.Errorf("bad progress call: done=%d total=%d cell=%+v", done, total, cell)
		}
		calls.Add(1)
	}))
	if _, err := sw.Run(context.Background()); err != nil {
		t.Fatal(err)
	}
	if calls.Load() != 4 {
		t.Fatalf("progress hook ran %d times, want 4", calls.Load())
	}
}

func TestSweepCancellation(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := tinySweep(t).Run(ctx); !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
}

func TestSweepValidation(t *testing.T) {
	cases := []struct {
		name  string
		items []taskdrop.SweepItem
	}{
		{"no axes", nil},
		{"unknown dropper", []taskdrop.SweepItem{taskdrop.Droppers("nope")}},
		{"unknown profile", []taskdrop.SweepItem{taskdrop.Profiles("nope")}},
		{"duplicate axis", []taskdrop.SweepItem{taskdrop.Tasks(100), taskdrop.Tasks(200)}},
		{"empty axis", []taskdrop.SweepItem{taskdrop.Tasks()}},
		{"As length mismatch", []taskdrop.SweepItem{taskdrop.Tasks(100, 200).As("only-one")}},
		{"duplicate labels", []taskdrop.SweepItem{taskdrop.Values("x", taskdrop.Value("a"), taskdrop.Value("a"))}},
		{"bad baseline", []taskdrop.SweepItem{taskdrop.Tasks(100), taskdrop.Baseline("nope")}},
		{"ambiguous baseline", []taskdrop.SweepItem{
			taskdrop.Values("a", taskdrop.Value("x"), taskdrop.Value("y")),
			taskdrop.Values("b", taskdrop.Value("x"), taskdrop.Value("z")),
			taskdrop.Baseline("x")}},
		{"zero trials", []taskdrop.SweepItem{taskdrop.Tasks(100), taskdrop.SweepTrials(0)}},
		{"bad scale", []taskdrop.SweepItem{taskdrop.Tasks(100), taskdrop.SweepScale(1.5)}},
		{"Each sets trials", []taskdrop.SweepItem{taskdrop.Tasks(100), taskdrop.Each(taskdrop.WithTrials(30))}},
		{"Each sets seed", []taskdrop.SweepItem{taskdrop.Tasks(100), taskdrop.Each(taskdrop.WithSeed(3))}},
		{"axis value sets workers", []taskdrop.SweepItem{
			taskdrop.Values("x", taskdrop.Value("a", taskdrop.WithWorkers(2)))}},
	}
	for _, c := range cases {
		if _, err := taskdrop.NewSweep(c.items...); err == nil {
			t.Errorf("%s: NewSweep should error", c.name)
		}
	}
}

func TestSweepDropperLabelCollisionFallsBack(t *testing.T) {
	// Two heuristic tunings share the display name "Heuristic"; the axis
	// must fall back to spec strings instead of colliding.
	sw, err := taskdrop.NewSweep(
		taskdrop.Profiles("video"),
		taskdrop.Droppers("heuristic:eta=1", "heuristic:eta=2"),
		taskdrop.Tasks(100),
		taskdrop.Each(taskdrop.WithWindow(1000)),
	)
	if err != nil {
		t.Fatal(err)
	}
	res, err := sw.Run(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if _, ok := res.Cell("heuristic:eta=1"); !ok {
		t.Fatal("collision fallback labels missing")
	}
}

// Command hcsim runs a single simulated trial of the heterogeneous
// computing system and prints its metrics. It is the quickest way to poke
// at one (profile, mapper, dropper, workload) combination:
//
//	hcsim -profile spec -mapper PAM -dropper heuristic -tasks 30000
//
// For the full paper experiments use cmd/hcexp.
package main

import (
	"flag"
	"fmt"
	"log"
	"os"
	"time"

	"github.com/hpcclab/taskdrop/internal/core"
	"github.com/hpcclab/taskdrop/internal/mapping"
	"github.com/hpcclab/taskdrop/internal/pet"
	"github.com/hpcclab/taskdrop/internal/pmf"
	"github.com/hpcclab/taskdrop/internal/sim"
	"github.com/hpcclab/taskdrop/internal/workload"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("hcsim: ")

	var (
		profileName = flag.String("profile", "spec", "system profile: spec | video | homog")
		mapperName  = flag.String("mapper", "PAM", "mapping heuristic (MinMin, MSD, PAM, FCFS, SJF, EDF, ...)")
		dropperName = flag.String("dropper", "heuristic", "dropping policy: reactdrop | heuristic | optimal | threshold")
		tasks       = flag.Int("tasks", 30000, "number of arriving tasks (oversubscription level)")
		window      = flag.Int64("window", int64(workload.StandardWindow), "arrival window in ms")
		gamma       = flag.Float64("gamma", workload.DefaultGammaSlack, "deadline slack coefficient γ")
		seed        = flag.Int64("seed", 1, "workload seed")
		beta        = flag.Float64("beta", core.DefaultBeta, "robustness improvement factor β (heuristic dropper)")
		eta         = flag.Int("eta", core.DefaultEta, "effective depth η (heuristic dropper)")
		queueCap    = flag.Int("queue", 6, "machine queue capacity incl. running task")
		scale       = flag.Float64("scale", 1.0, "shrink factor in (0,1]: scales tasks and window together")
		verbose     = flag.Bool("v", false, "print the PET summary before running")
		breakdown   = flag.Bool("breakdown", false, "print per-task-type and per-machine statistics")
		mtbf        = flag.Int64("mtbf", 0, "machine mean time between failures in ms (0 = no failure injection)")
		repair      = flag.Int64("repair", 0, "mean repair time in ms (default mtbf/10)")
	)
	flag.Parse()

	profile, err := pet.ProfileByName(*profileName)
	if err != nil {
		log.Fatal(err)
	}
	mapper, err := mapping.New(*mapperName)
	if err != nil {
		log.Fatal(err)
	}
	dropper, err := core.PolicyByName(*dropperName)
	if err != nil {
		log.Fatal(err)
	}
	if h, ok := dropper.(core.Heuristic); ok {
		h.Beta, h.Eta = *beta, *eta
		dropper = h
	}

	matrix := pet.Build(profile, pet.DefaultProfileSeed, pet.DefaultBuildOptions())
	if *verbose {
		printPET(matrix)
	}

	cfg := workload.Config{TotalTasks: *tasks, Window: pmf.Tick(*window), GammaSlack: *gamma}
	if *scale != 1.0 {
		cfg = cfg.Scaled(*scale)
	}
	trace := workload.Generate(matrix, cfg, *seed)

	simCfg := sim.DefaultConfig()
	simCfg.QueueCap = *queueCap
	if *mtbf > 0 {
		rep := *repair
		if rep <= 0 {
			rep = *mtbf / 10
		}
		simCfg.Failures = sim.FailureConfig{MTBF: pmf.Tick(*mtbf), MeanRepair: pmf.Tick(rep), Seed: *seed}
	}

	start := time.Now()
	engine := sim.New(matrix, trace, mapper, dropper, simCfg)
	res := engine.Run()
	elapsed := time.Since(start)

	fmt.Printf("profile=%s mapper=%s dropper=%s tasks=%d window=%dms gamma=%.2f seed=%d\n",
		profile.Name, mapper.Name(), dropper.Name(), cfg.TotalTasks, cfg.Window, *gamma, *seed)
	fmt.Printf("robustness            %6.2f %% of measured tasks completed on time\n", res.RobustnessPct)
	fmt.Printf("measured window       %d tasks (of %d total)\n", res.Measured, res.Total)
	fmt.Printf("completed on time     %d\n", res.MOnTime)
	fmt.Printf("completed late        %d\n", res.MLate)
	fmt.Printf("dropped reactively    %d\n", res.MDroppedReactive)
	fmt.Printf("dropped proactively   %d\n", res.MDroppedProactive)
	fmt.Printf("reactive drop share   %.1f %% of all drops\n", 100*res.DropReactiveShare())
	fmt.Printf("total cost            $%.4f\n", res.TotalCostUSD)
	fmt.Printf("cost / robustness     %.6f $/%%\n", res.CostPerRobustness)
	fmt.Printf("makespan              %.1f s   utilization %.1f %%\n", float64(res.Makespan)/1000, res.UtilizationPct)
	if res.Failed > 0 {
		fmt.Printf("killed by failures    %d\n", res.MFailed)
	}
	fmt.Printf("wall clock            %s\n", elapsed.Round(time.Millisecond))
	if err := res.Validate(); err != nil {
		log.Fatal(err)
	}
	if *breakdown {
		fmt.Println()
		types, machines := engine.Breakdown()
		sim.FprintBreakdown(os.Stdout, types, machines)
	}
	_ = os.Stdout.Sync()
}

func printPET(m *pet.Matrix) {
	p := m.Profile()
	fmt.Printf("PET matrix %q: %d task types × %d machine types (mean ms)\n",
		p.Name, m.NumTaskTypes(), m.NumMachineTypes())
	for i := 0; i < m.NumTaskTypes(); i++ {
		fmt.Printf("  %-18s", p.TaskTypeNames[i])
		for j := 0; j < m.NumMachineTypes(); j++ {
			fmt.Printf(" %7.1f", m.CellMean(pet.TaskType(i), pet.MachineType(j)))
		}
		fmt.Println()
	}
	fmt.Printf("  avg_all = %.1f ms, machines = %d\n", m.MeanAll(), len(m.Machines()))
}

// Command hcsim runs one scenario of the heterogeneous computing system —
// a (profile, mapper, dropper, workload) combination over one or more
// seeded trials — and prints its metrics. It is the quickest way to poke
// at a combination:
//
//	hcsim -profile spec -mapper PAM -dropper heuristic -tasks 30000
//	hcsim -dropper "heuristic:beta=1.5,eta=3" -trials 10
//	hcsim -dropper "threshold:base=0.3,adaptive" -mapper kpb:percent=30
//
// Components are named by the unified registry specs of the taskdrop
// package (see taskdrop.NewMapper, NewDropper, NewProfile), so every
// parameterized form accepted by the API works on the command line too.
// For the full paper experiments use cmd/hcexp.
package main

import (
	"context"
	"flag"
	"fmt"
	"log"
	"os"
	"os/signal"
	"time"

	taskdrop "github.com/hpcclab/taskdrop"
	"github.com/hpcclab/taskdrop/internal/workload"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("hcsim: ")

	var (
		profileSpec = flag.String("profile", "spec", "system profile spec: spec | video | homog (e.g. spec:seed=7)")
		mapperSpec  = flag.String("mapper", "PAM", "mapping heuristic spec (MinMin, MSD, PAM, FCFS, SJF, EDF, kpb:percent=30, ...)")
		dropperSpec = flag.String("dropper", "heuristic", "dropping policy spec: reactdrop | heuristic[:beta=..,eta=..] | optimal | threshold[:base=..,adaptive] | approx[:grace=..]")
		tasks       = flag.Int("tasks", 30000, "number of arriving tasks per trial (oversubscription level)")
		window      = flag.Int64("window", int64(taskdrop.StandardWindow), "arrival window in ms")
		gamma       = flag.Float64("gamma", taskdrop.DefaultGammaSlack, "deadline slack coefficient γ")
		seed        = flag.Int64("seed", 1, "base workload seed; trial t uses seed+t")
		trials      = flag.Int("trials", 1, "seeded trials to run (mean ± 95% CI is printed when > 1)")
		workers     = flag.Int("workers", 0, "parallel trial simulations (0 = GOMAXPROCS)")
		queueCap    = flag.Int("queue", 6, "machine queue capacity incl. running task")
		scale       = flag.Float64("scale", 1.0, "shrink factor in (0,1]: scales tasks and window together")
		verbose     = flag.Bool("v", false, "print the PET summary before running")
		breakdown   = flag.Bool("breakdown", false, "print per-task-type and per-machine statistics (trial 0)")
		progress    = flag.Bool("progress", false, "print one line per completed trial")
		mtbf        = flag.Int64("mtbf", 0, "machine mean time between failures in ms (0 = no failure injection)")
		repair      = flag.Int64("repair", 0, "mean repair time in ms (default mtbf/10)")
	)
	flag.Parse()

	if err := workload.CheckScale(*scale); err != nil {
		log.Fatalf("-scale: %v", err)
	}
	cfg := taskdrop.WorkloadConfig{TotalTasks: *tasks, Window: taskdrop.Tick(*window), GammaSlack: *gamma}
	if *scale != 1.0 {
		cfg = cfg.Scaled(*scale)
	}
	opts := []taskdrop.ScenarioOption{
		taskdrop.WithMapper(*mapperSpec),
		taskdrop.WithDropper(*dropperSpec),
		taskdrop.WithTasks(cfg.TotalTasks),
		taskdrop.WithWindow(cfg.Window),
		taskdrop.WithGamma(cfg.GammaSlack),
		taskdrop.WithSeed(*seed),
		taskdrop.WithTrials(*trials),
		taskdrop.WithWorkers(*workers),
		taskdrop.WithQueueCap(*queueCap),
	}
	if *mtbf > 0 {
		rep := *repair
		if rep <= 0 {
			rep = *mtbf / 10
		}
		opts = append(opts, taskdrop.WithFailures(taskdrop.FailureConfig{
			MTBF: taskdrop.Tick(*mtbf), MeanRepair: taskdrop.Tick(rep), Seed: *seed,
		}))
	}
	if *progress {
		opts = append(opts, taskdrop.OnTrialDone(func(trial int, res *taskdrop.Result) {
			fmt.Fprintf(os.Stderr, "trial %2d  robustness %6.2f %%\n", trial, res.RobustnessPct)
		}))
	}

	sc, err := taskdrop.NewScenario(*profileSpec, opts...)
	if err != nil {
		log.Fatal(err)
	}
	if *verbose {
		printPET(sc.Matrix())
	}

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt)
	defer stop()

	// With -breakdown, trial 0 runs through an introspectable engine; for a
	// single-trial scenario that engine run IS the result (no re-simulation).
	var eng *taskdrop.Engine
	if *breakdown {
		if eng, err = sc.Engine(0); err != nil {
			log.Fatal(err)
		}
	}

	start := time.Now()
	var single *taskdrop.Result
	var summary taskdrop.Summary
	switch {
	case eng != nil && *trials == 1 && !*progress:
		if single, err = eng.RunContext(ctx); err != nil {
			log.Fatal(err)
		}
	default:
		rr, err := sc.Run(ctx)
		if err != nil {
			log.Fatal(err)
		}
		single, summary = rr.Trials[0], rr.Summary
		if eng != nil {
			if _, err := eng.RunContext(ctx); err != nil {
				log.Fatal(err)
			}
		}
	}
	elapsed := time.Since(start)
	if err := single.Validate(); err != nil {
		log.Fatal(err)
	}

	fmt.Printf("profile=%s mapper=%s dropper=%s tasks=%d window=%dms gamma=%.2f seed=%d trials=%d\n",
		*profileSpec, *mapperSpec, *dropperSpec, cfg.TotalTasks, cfg.Window, cfg.GammaSlack, *seed, *trials)
	if *trials > 1 {
		printSummary(summary)
	} else {
		printTrial(single)
	}
	fmt.Printf("wall clock            %s\n", elapsed.Round(time.Millisecond))

	if eng != nil {
		fmt.Println()
		types, machines := eng.Breakdown()
		taskdrop.FprintBreakdown(os.Stdout, types, machines)
	}
	_ = os.Stdout.Sync()
}

// printTrial renders the detailed metrics of a single trial.
func printTrial(res *taskdrop.Result) {
	fmt.Printf("robustness            %6.2f %% of measured tasks completed on time\n", res.RobustnessPct)
	fmt.Printf("measured window       %d tasks (of %d total)\n", res.Measured, res.Total)
	fmt.Printf("completed on time     %d\n", res.MOnTime)
	fmt.Printf("completed late        %d\n", res.MLate)
	fmt.Printf("dropped reactively    %d\n", res.MDroppedReactive)
	fmt.Printf("dropped proactively   %d\n", res.MDroppedProactive)
	fmt.Printf("reactive drop share   %.1f %% of all drops\n", 100*res.DropReactiveShare())
	fmt.Printf("total cost            $%.4f\n", res.TotalCostUSD)
	fmt.Printf("cost / robustness     %.6f $/%%\n", res.CostPerRobustness)
	fmt.Printf("makespan              %.1f s   utilization %.1f %%\n", float64(res.Makespan)/1000, res.UtilizationPct)
	if res.Failed > 0 {
		fmt.Printf("killed by failures    %d\n", res.MFailed)
	}
}

// printSummary renders the aggregated mean ± 95% CI metrics.
func printSummary(s taskdrop.Summary) {
	fmt.Printf("robustness            %s %% of measured tasks completed on time\n", s.Robustness)
	fmt.Printf("norm. cost            %s $/1000·%%\n", s.NormCost)
	fmt.Printf("proactive dropped     %s %% of measured tasks\n", s.ProactivePct)
	fmt.Printf("reactive dropped      %s %% of measured tasks\n", s.ReactivePct)
	fmt.Printf("reactive drop share   %s %% of all drops\n", s.ReactiveShare)
}

func printPET(m *taskdrop.Matrix) {
	p := m.Profile()
	fmt.Printf("PET matrix %q: %d task types × %d machine types (mean ms)\n",
		p.Name, m.NumTaskTypes(), m.NumMachineTypes())
	for i := 0; i < m.NumTaskTypes(); i++ {
		fmt.Printf("  %-18s", p.TaskTypeNames[i])
		for j := 0; j < m.NumMachineTypes(); j++ {
			fmt.Printf(" %7.1f", m.CellMean(taskdrop.TaskType(i), taskdrop.MachineType(j)))
		}
		fmt.Println()
	}
	fmt.Printf("  avg_all = %.1f ms, machines = %d\n", m.MeanAll(), len(m.Machines()))
}

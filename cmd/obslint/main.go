// Command obslint asserts the observability surface of a running hcserve
// instance from CI: it lints the /metrics exposition against the
// Prometheus text-format grammar (HELP/TYPE present, families contiguous,
// histograms cumulative and complete) and checks /debug/traces for
// complete, monotone stage-timed traces.
//
//	obslint -metrics http://127.0.0.1:9090/metrics
//	obslint -metrics http://127.0.0.1:9090/metrics -require taskdrop_membership_ops_total,taskdrop_rebalance_moves_total
//	obslint -traces http://127.0.0.1:9090/debug/traces -min-traces 1
//
// Exit status 0 means every requested check passed; failures list each
// violation on stderr.
package main

import (
	"bufio"
	"bytes"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"net/http"
	"os"
	"strings"
	"time"

	"github.com/hpcclab/taskdrop/internal/telemetry"
)

// traceSnapshot mirrors the service's /debug/traces payload.
type traceSnapshot struct {
	SampleEvery int               `json:"sample_every"`
	Traces      []telemetry.Trace `json:"traces"`
}

// completeStages are the spans every fully traced decision must carry.
// Dropper is legitimately absent (no mapping event fired during the feed)
// and journal is absent on unjournaled servers.
var completeStages = []telemetry.Stage{
	telemetry.StageRoute, telemetry.StageWait, telemetry.StageCalculus, telemetry.StageAck,
}

// checkTrace validates one trace's span geometry: offsets non-negative,
// every span well-formed (start <= end), spans sorted by start offset.
// Returns the problems found.
func checkTrace(t *telemetry.Trace) []string {
	var issues []string
	prevStart := int64(-1)
	for _, sp := range t.Spans {
		if sp.StartNS < 0 {
			issues = append(issues, fmt.Sprintf("seq %d: span %s starts before the trace origin (%d ns)", t.Seq, sp.Stage, sp.StartNS))
		}
		if sp.EndNS < sp.StartNS {
			issues = append(issues, fmt.Sprintf("seq %d: span %s ends before it starts [%d, %d]", t.Seq, sp.Stage, sp.StartNS, sp.EndNS))
		}
		if sp.StartNS < prevStart {
			issues = append(issues, fmt.Sprintf("seq %d: span %s out of order (start %d after a span starting at %d)", t.Seq, sp.Stage, sp.StartNS, prevStart))
		}
		prevStart = sp.StartNS
	}
	return issues
}

// isComplete reports whether the trace carries every mandatory stage.
func isComplete(t *telemetry.Trace) bool {
	have := make(map[telemetry.Stage]bool, len(t.Spans))
	for _, sp := range t.Spans {
		have[sp.Stage] = true
	}
	for _, st := range completeStages {
		if !have[st] {
			return false
		}
	}
	return true
}

// missingFamilies returns the families named in the comma-separated
// require list that never appear as a sample in the exposition body.
func missingFamilies(body []byte, require string) []string {
	if strings.TrimSpace(require) == "" {
		return nil
	}
	present := make(map[string]bool)
	sc := bufio.NewScanner(bytes.NewReader(body))
	for sc.Scan() {
		line := strings.TrimSpace(sc.Text())
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		name := line
		if i := strings.IndexAny(name, "{ "); i >= 0 {
			name = name[:i]
		}
		present[name] = true
	}
	var missing []string
	for _, want := range strings.Split(require, ",") {
		want = strings.TrimSpace(want)
		if want != "" && !present[want] {
			missing = append(missing, want)
		}
	}
	return missing
}

func main() {
	var (
		metricsURL = flag.String("metrics", "", "lint this Prometheus exposition URL")
		require    = flag.String("require", "", "comma-separated metric families that must be present at -metrics")
		tracesURL  = flag.String("traces", "", "check this /debug/traces URL")
		minTraces  = flag.Int("min-traces", 1, "minimum complete traces required at -traces")
		timeout    = flag.Duration("timeout", 10*time.Second, "per-request timeout")
	)
	flag.Parse()

	if *metricsURL == "" && *tracesURL == "" {
		fmt.Fprintln(os.Stderr, "obslint: nothing to do: pass -metrics and/or -traces")
		os.Exit(2)
	}
	client := &http.Client{Timeout: *timeout}
	failed := false

	if *metricsURL != "" {
		resp, err := client.Get(*metricsURL)
		if err != nil {
			fmt.Fprintf(os.Stderr, "obslint: GET %s: %v\n", *metricsURL, err)
			os.Exit(1)
		}
		body, err := io.ReadAll(resp.Body)
		resp.Body.Close()
		if err != nil {
			fmt.Fprintf(os.Stderr, "obslint: read %s: %v\n", *metricsURL, err)
			os.Exit(1)
		}
		issues := telemetry.Lint(bytes.NewReader(body))
		if resp.StatusCode != http.StatusOK {
			fmt.Fprintf(os.Stderr, "obslint: GET %s: status %d\n", *metricsURL, resp.StatusCode)
			failed = true
		}
		for _, is := range issues {
			fmt.Fprintf(os.Stderr, "obslint: metrics: %s\n", is)
		}
		for _, missing := range missingFamilies(body, *require) {
			fmt.Fprintf(os.Stderr, "obslint: metrics: required family %s absent\n", missing)
			failed = true
		}
		if len(issues) > 0 {
			failed = true
		} else if resp.StatusCode == http.StatusOK && !failed {
			fmt.Printf("metrics lint clean: %s\n", *metricsURL)
		}
	}

	if *tracesURL != "" {
		resp, err := client.Get(*tracesURL)
		if err != nil {
			fmt.Fprintf(os.Stderr, "obslint: GET %s: %v\n", *tracesURL, err)
			os.Exit(1)
		}
		var snap traceSnapshot
		err = json.NewDecoder(resp.Body).Decode(&snap)
		resp.Body.Close()
		if err != nil {
			fmt.Fprintf(os.Stderr, "obslint: decode %s: %v\n", *tracesURL, err)
			os.Exit(1)
		}
		complete := 0
		for i := range snap.Traces {
			t := &snap.Traces[i]
			issues := checkTrace(t)
			for _, is := range issues {
				fmt.Fprintf(os.Stderr, "obslint: traces: %s\n", is)
			}
			if len(issues) > 0 {
				failed = true
				continue
			}
			if isComplete(t) {
				complete++
			}
		}
		if complete < *minTraces {
			fmt.Fprintf(os.Stderr, "obslint: traces: %d complete traces (of %d retained), want >= %d\n",
				complete, len(snap.Traces), *minTraces)
			failed = true
		} else {
			fmt.Printf("traces ok: %d complete of %d retained (sample_every=%d)\n",
				complete, len(snap.Traces), snap.SampleEvery)
		}
	}

	if failed {
		os.Exit(1)
	}
}

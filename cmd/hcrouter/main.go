// Command hcrouter is the router tier of a multi-process deployment: a
// standalone front-end that speaks the same HTTP protocol as a single
// hcserve and fans every decide batch out across N shard-server
// processes, each owning one machine partition of the profile.
//
//	hcserve -addr :8081 -partition 0/2 -journal-dir /var/lib/taskdrop/b0 &
//	hcserve -addr :8082 -partition 1/2 -journal-dir /var/lib/taskdrop/b1 &
//	hcrouter -addr :8080 -backends http://127.0.0.1:8081,http://127.0.0.1:8082
//
// The router polls each backend's /readyz and /v1/stats: a backend joins
// the rotation once ready and its live load and per-class robustness
// estimates feed the routing policy (-router hash|rr|mass|p2c; default
// hash — task-class partitioning). Every proxied sub-request carries a
// router-generated decision ID, so retrying a timed-out-but-committed
// sub-batch against a journaling backend replays the original decisions
// instead of double-admitting; a backend that stays down has its
// sub-batches rerouted to a survivor. Per-backend in-flight windows
// (-window) shed excess load with 429 + Retry-After instead of queueing.
//
// Endpoints match hcserve: POST /v1/decide, POST /v1/drain (fleet drain,
// merged Result), GET /v1/stats (per-backend rotation state), /healthz,
// /readyz (200 once >= 1 backend is in rotation), /metrics
// (taskdrop_router_* families), /debug/traces.
//
// On SIGTERM/SIGINT the router stops its listener and pollers and exits.
// It does NOT drain the backends — a router restart must not destroy
// fleet state; drain explicitly via POST /v1/drain (hcload -drain).
package main

import (
	"context"
	"flag"
	"fmt"
	"net/http"
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"

	"github.com/hpcclab/taskdrop/internal/front"
	"github.com/hpcclab/taskdrop/internal/telemetry"
)

func main() {
	var (
		addr        = flag.String("addr", ":8080", "listen address")
		backends    = flag.String("backends", "", "comma-separated backend base URLs (required), e.g. http://127.0.0.1:8081,http://127.0.0.1:8082")
		profileSpec = flag.String("profile", "spec", "system profile spec; must match every backend's")
		routerSpec  = flag.String("router", "hash", "backend-routing policy spec: hash | rr | mass | p2c[:seed=..]")
		window      = flag.Int("window", 32, "max in-flight decide sub-requests per backend (excess sheds with 429)")
		poll        = flag.Duration("poll", 250*time.Millisecond, "backend health/stats polling period")
		timeout     = flag.Duration("timeout", 5*time.Second, "per-attempt upstream request timeout")
		retries     = flag.Int("retries", 2, "upstream retry budget per sub-request (same backend, same decision ID)")
		backoff     = flag.Duration("backoff", 50*time.Millisecond, "first upstream retry delay (doubles per attempt, jittered)")
		dedupWindow = flag.Int("dedup-window", 0, "client decision-IDs remembered for idempotent retries (0: default 4096, negative disables)")
		traceSample = flag.Int("trace-sample", 0, "stage-trace every Nth routed request (0 disables)")
		traceRing   = flag.Int("trace-ring", telemetry.DefaultRingSize, "completed traces retained for /debug/traces")
		logFormat   = flag.String("log-format", "text", "log output format: text | json")
		logLevel    = flag.String("log-level", "info", "minimum log level: debug | info | warn | error")
	)
	flag.Parse()

	logger, err := telemetry.NewLogger(os.Stderr, *logFormat, *logLevel)
	if err != nil {
		fmt.Fprintln(os.Stderr, "hcrouter:", err)
		os.Exit(2)
	}
	logger = logger.With("component", "hcrouter")

	var urls []string
	for _, u := range strings.Split(*backends, ",") {
		if u = strings.TrimSpace(u); u != "" {
			urls = append(urls, strings.TrimRight(u, "/"))
		}
	}
	if len(urls) == 0 {
		fmt.Fprintln(os.Stderr, "hcrouter: -backends is required")
		os.Exit(2)
	}

	f, err := front.New(front.Config{
		Backends:    urls,
		Profile:     *profileSpec,
		Router:      *routerSpec,
		Window:      *window,
		Poll:        *poll,
		Timeout:     *timeout,
		Retries:     *retries,
		Backoff:     *backoff,
		DedupWindow: *dedupWindow,
		TraceSample: *traceSample,
		TraceRing:   *traceRing,
		// Startup nanoseconds namespace the generated sub-request IDs so a
		// router restart can never collide with IDs a previous incarnation
		// left in the backends' dedup windows.
		IDNonce: fmt.Sprintf("r%x", time.Now().UnixNano()),
		Logger:  logger,
	})
	if err != nil {
		logger.Error("startup failed", "err", err)
		os.Exit(1)
	}
	defer f.Close()

	logger.Info("routing",
		"profile", *profileSpec,
		"router", f.Policy().Name(),
		"backends", len(urls),
		"window", *window,
		"addr", *addr)

	srv := &http.Server{Addr: *addr, Handler: front.NewHandler(f)}
	errCh := make(chan error, 1)
	go func() { errCh <- srv.ListenAndServe() }()

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	select {
	case <-ctx.Done():
		logger.Info("signal received; shutting down")
	case err := <-errCh:
		logger.Error("server failed", "err", err)
		os.Exit(1)
	}

	shCtx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	if err := srv.Shutdown(shCtx); err != nil {
		logger.Warn("http shutdown", "err", err)
	}
}

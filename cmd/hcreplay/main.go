// Command hcreplay audits and verifies the admission service's decision
// journal (hcserve -journal-dir). A shard's log is event-sourced: its
// arrive records alone deterministically re-derive every decision, so the
// logged decisions, terminal events and checkpoints are redundant by
// construction — and therefore checkable.
//
// Verify mode replays every shard's log from scratch through a fresh
// engine built from the journal's manifest and fails on the first record
// or checkpoint where the recomputation disagrees with the recording:
//
//	hcreplay -dir /var/lib/hcserve/journal -verify
//
// Audit mode explains one decision: it replays the shard up to the moment
// the task arrived, prints the queue state the admission saw, the Eq. 1
// completion-time PMF forecast for every queued task and for the arriving
// candidate on every machine, the dropping policy's verdict, and the
// re-derived decision next to the logged one:
//
// Audit output includes the decision's recorded stage timings (route,
// mailbox wait, calculus, dropper, journal, ack) when the server traced it
// (hcserve -trace-sample).
//
//	hcreplay -dir /var/lib/hcserve/journal -shard 0 -decision 421 -v
package main

import (
	"flag"
	"fmt"
	"os"

	"github.com/hpcclab/taskdrop/internal/service"
	"github.com/hpcclab/taskdrop/internal/telemetry"
)

func main() {
	var (
		dir       = flag.String("dir", "", "journal root directory (hcserve -journal-dir)")
		shard     = flag.Int("shard", -1, "shard to operate on (-1 = all shards, verify mode only)")
		verify    = flag.Bool("verify", false, "replay the log from scratch and check it against the recorded decisions, events and checkpoints")
		decision  = flag.Int64("decision", -1, "audit this decision sequence number (requires -shard)")
		verbose   = flag.Bool("v", false, "audit mode: print full completion-time PMFs")
		logFormat = flag.String("log-format", "text", "log output format: text | json")
		logLevel  = flag.String("log-level", "info", "minimum log level: debug | info | warn | error")
	)
	flag.Parse()

	logger, err := telemetry.NewLogger(os.Stderr, *logFormat, *logLevel)
	if err != nil {
		fmt.Fprintln(os.Stderr, "hcreplay:", err)
		os.Exit(2)
	}
	logger = logger.With("component", "hcreplay")

	if *dir == "" {
		logger.Error("missing -dir (the journal root hcserve wrote)")
		os.Exit(1)
	}
	switch {
	case *decision >= 0:
		if *shard < 0 {
			logger.Error("-decision requires -shard (a sequence number is decided by exactly one shard)")
			os.Exit(1)
		}
		if err := service.AuditDecision(os.Stdout, *dir, *shard, *decision, *verbose); err != nil {
			logger.Error("audit failed", "shard", *shard, "decision", *decision, "err", err)
			os.Exit(1)
		}
	case *verify:
		var stats []*service.VerifyStats
		var err error
		if *shard >= 0 {
			var st *service.VerifyStats
			st, err = service.VerifyShard(*dir, *shard)
			if st != nil {
				stats = []*service.VerifyStats{st}
			}
		} else {
			stats, err = service.VerifyAll(*dir)
		}
		for _, st := range stats {
			fmt.Printf("shard %d: %d records (%d arrives, %d derived matched), %d checkpoints verified, watermark %d",
				st.Shard, st.Records, st.Arrives, st.Derived, st.Checkpoints, st.FinalSeqWatermark)
			if st.Membership > 0 {
				fmt.Printf(", %d membership ops applied", st.Membership)
			}
			if st.Traces > 0 {
				fmt.Printf(", %d stage traces skipped", st.Traces)
			}
			if st.Unflushed > 0 {
				fmt.Printf(", %d derived records past the torn tail", st.Unflushed)
			}
			fmt.Println()
		}
		if err != nil {
			logger.Error("verification FAILED", "err", err)
			os.Exit(1)
		}
		fmt.Println("journal verified: every logged decision, event and checkpoint matches the deterministic replay")
	default:
		logger.Error("nothing to do: pass -verify, or -shard and -decision to audit one decision")
		os.Exit(1)
	}
}

// Command hcreplay audits and verifies the admission service's decision
// journal (hcserve -journal-dir). A shard's log is event-sourced: its
// arrive records alone deterministically re-derive every decision, so the
// logged decisions, terminal events and checkpoints are redundant by
// construction — and therefore checkable.
//
// Verify mode replays every shard's log from scratch through a fresh
// engine built from the journal's manifest and fails on the first record
// or checkpoint where the recomputation disagrees with the recording:
//
//	hcreplay -dir /var/lib/hcserve/journal -verify
//
// Audit mode explains one decision: it replays the shard up to the moment
// the task arrived, prints the queue state the admission saw, the Eq. 1
// completion-time PMF forecast for every queued task and for the arriving
// candidate on every machine, the dropping policy's verdict, and the
// re-derived decision next to the logged one:
//
//	hcreplay -dir /var/lib/hcserve/journal -shard 0 -decision 421 -v
package main

import (
	"flag"
	"fmt"
	"log"
	"os"

	"github.com/hpcclab/taskdrop/internal/service"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("hcreplay: ")

	var (
		dir      = flag.String("dir", "", "journal root directory (hcserve -journal-dir)")
		shard    = flag.Int("shard", -1, "shard to operate on (-1 = all shards, verify mode only)")
		verify   = flag.Bool("verify", false, "replay the log from scratch and check it against the recorded decisions, events and checkpoints")
		decision = flag.Int64("decision", -1, "audit this decision sequence number (requires -shard)")
		verbose  = flag.Bool("v", false, "audit mode: print full completion-time PMFs")
	)
	flag.Parse()

	if *dir == "" {
		log.Fatal("missing -dir (the journal root hcserve wrote)")
	}
	switch {
	case *decision >= 0:
		if *shard < 0 {
			log.Fatal("-decision requires -shard (a sequence number is decided by exactly one shard)")
		}
		if err := service.AuditDecision(os.Stdout, *dir, *shard, *decision, *verbose); err != nil {
			log.Fatal(err)
		}
	case *verify:
		var stats []*service.VerifyStats
		var err error
		if *shard >= 0 {
			var st *service.VerifyStats
			st, err = service.VerifyShard(*dir, *shard)
			if st != nil {
				stats = []*service.VerifyStats{st}
			}
		} else {
			stats, err = service.VerifyAll(*dir)
		}
		for _, st := range stats {
			fmt.Printf("shard %d: %d records (%d arrives, %d derived matched), %d checkpoints verified, watermark %d",
				st.Shard, st.Records, st.Arrives, st.Derived, st.Checkpoints, st.FinalSeqWatermark)
			if st.Unflushed > 0 {
				fmt.Printf(", %d derived records past the torn tail", st.Unflushed)
			}
			fmt.Println()
		}
		if err != nil {
			log.Fatalf("verification FAILED: %v", err)
		}
		fmt.Println("journal verified: every logged decision, event and checkpoint matches the deterministic replay")
	default:
		log.Fatal("nothing to do: pass -verify, or -shard and -decision to audit one decision")
	}
}

// Command hcload replays a workload trace against a running hcserve
// instance and closes the loop between the paper's offline evaluation and
// the online admission controller: it generates the exact trace the
// offline simulator would run — same (profile, tasks, window, gamma, seed)
// — streams it to POST /v1/decide at a configurable arrival-rate
// multiplier, drains the server, and reports the achieved robustness next
// to client-observed decision latencies.
//
//	hcload -addr http://localhost:8080 -profile spec -tasks 30000 -seed 1 -speed 0
//
// Because the server's decision loop is deterministic, replaying the same
// (profile, trace, seed) yields the same decisions and the same final
// robustness as `hcsim -profile spec -mapper ... -dropper ...` with
// matching settings (boundary exclusion included).
//
// With -churn the replay doubles as a fault-injection harness: a plan like
// "500:remove:3,1500:revive:3" kills machine 3 after 500 tasks and revives
// it after 1500 — fired through POST /v1/admin/machines at deterministic
// decision boundaries — and the summary reports how many requests the
// degraded server shed (429) and for how long.
package main

import (
	"context"
	"flag"
	"fmt"
	"net/http"
	"os"
	"os/signal"
	"time"

	"github.com/hpcclab/taskdrop/internal/pet"
	"github.com/hpcclab/taskdrop/internal/pmf"
	"github.com/hpcclab/taskdrop/internal/service"
	"github.com/hpcclab/taskdrop/internal/telemetry"
	"github.com/hpcclab/taskdrop/internal/workload"
)

func main() {
	var (
		addr        = flag.String("addr", "http://127.0.0.1:8080", "base URL of the hcserve instance")
		profileSpec = flag.String("profile", "spec", "system profile spec; must match the server's")
		tasks       = flag.Int("tasks", 30000, "number of arriving tasks (oversubscription level)")
		window      = flag.Int64("window", int64(workload.StandardWindow), "arrival window in ms")
		gamma       = flag.Float64("gamma", workload.DefaultGammaSlack, "deadline slack coefficient γ")
		seed        = flag.Int64("seed", 1, "workload seed")
		scale       = flag.Float64("scale", 1.0, "shrink factor in (0,1]: scales tasks and window together")
		batch       = flag.Int("batch", 16, "tasks per decide request")
		speed       = flag.Float64("speed", 0, "arrival-rate multiplier vs the trace clock (1 = real time, 0 = as fast as possible)")
		from        = flag.Int("from", 0, "replay trace tasks starting at this index (resume after a server restart)")
		to          = flag.Int("to", 0, "replay trace tasks up to (excluding) this index; 0 = the end")
		churnPlan   = flag.String("churn", "", "fault-injection plan: comma-separated \"<at>:remove:<machine>[:drop]\" | \"<at>:revive:<machine>\" | \"<at>:add:<shard>:<type>\" fired at task indexes via POST /v1/admin/machines")
		noDrain     = flag.Bool("no-drain", false, "skip POST /v1/drain (leave the server running)")
		timeout     = flag.Duration("timeout", 30*time.Second, "per-attempt request timeout")
		retries     = flag.Int("retries", 0, "retry budget per request (transport errors, 5xx and 429); stamps idempotent decision IDs on every request")
		backoff     = flag.Duration("backoff", 50*time.Millisecond, "first retry delay, doubling per attempt with jitter (server Retry-After wins)")
		logFormat   = flag.String("log-format", "text", "log output format: text | json")
		logLevel    = flag.String("log-level", "info", "minimum log level: debug | info | warn | error")
	)
	flag.Parse()

	logger, err := telemetry.NewLogger(os.Stderr, *logFormat, *logLevel)
	if err != nil {
		fmt.Fprintln(os.Stderr, "hcload:", err)
		os.Exit(2)
	}
	logger = logger.With("component", "hcload")

	if err := workload.CheckScale(*scale); err != nil {
		logger.Error("bad -scale", "err", err)
		os.Exit(1)
	}
	cfg := workload.Config{TotalTasks: *tasks, Window: pmf.Tick(*window), GammaSlack: *gamma}
	if err := cfg.Validate(); err != nil {
		logger.Error("bad workload config", "err", err)
		os.Exit(1)
	}
	if *scale != 1.0 {
		cfg = cfg.Scaled(*scale)
	}
	// The trace must be bit-identical to the server's view of the system:
	// both sides resolve the profile spec through the deterministic cached
	// PET build, so (profile, seed) alone pins the workload.
	m, err := pet.CachedMatrix(*profileSpec)
	if err != nil {
		logger.Error("profile resolution failed", "profile", *profileSpec, "err", err)
		os.Exit(1)
	}
	churn, err := service.ParseChurnPlan(*churnPlan)
	if err != nil {
		logger.Error("bad -churn", "err", err)
		os.Exit(1)
	}
	tr := workload.Generate(m, cfg, *seed)
	rate := tr.ArrivalRate() * 1000
	fmt.Printf("replaying %d tasks over %.1f s (%.0f tasks/s", tr.Len(), float64(cfg.Window)/1000, rate)
	if *speed > 0 {
		fmt.Printf(", %.0fx speed → %.0f req-tasks/s", *speed, rate**speed)
	} else {
		fmt.Printf(", unpaced")
	}
	fmt.Printf(") against %s\n", *addr)

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt)
	defer stop()

	// The retrying client owns per-attempt deadlines; a time-nonced ID
	// prefix keeps separate hcload runs against one server from colliding
	// in its dedup window.
	rep, err := service.Replay(ctx, &http.Client{}, *addr, tr, service.ReplayConfig{
		BatchSize:        *batch,
		Speed:            *speed,
		Drain:            !*noDrain,
		From:             *from,
		To:               *to,
		Timeout:          *timeout,
		Retries:          *retries,
		Backoff:          *backoff,
		Churn:            churn,
		DecisionIDPrefix: fmt.Sprintf("load-%x", time.Now().UnixNano()),
	})
	if err != nil {
		logger.Error("replay failed", "addr", *addr, "err", err)
		os.Exit(1)
	}

	fmt.Printf("decisions             %d in %s (%.0f tasks/s achieved)\n",
		rep.Tasks, rep.Elapsed.Round(time.Millisecond), float64(rep.Tasks)/rep.Elapsed.Seconds())
	fmt.Printf("  mapped              %d\n", rep.Mapped)
	fmt.Printf("  deferred            %d\n", rep.Deferred)
	fmt.Printf("  dropped at arrival  %d\n", rep.Dropped)
	fmt.Printf("decide latency        p50 %s   p99 %s\n",
		rep.LatencyP50.Round(time.Microsecond), rep.LatencyP99.Round(time.Microsecond))
	if rep.ChurnOps > 0 || rep.Shed429 > 0 {
		fmt.Printf("churn ops             %d\n", rep.ChurnOps)
		fmt.Printf("shed (429) requests   %d\n", rep.Shed429)
		fmt.Printf("degraded window       %s\n", rep.DegradedWindow.Round(time.Millisecond))
	}
	if *retries > 0 {
		fmt.Printf("retried requests      %d\n", rep.Retried)
		fmt.Printf("duplicate acks        %d\n", rep.DuplicateAcks)
	}
	if len(rep.PerShard) > 1 {
		for _, sl := range rep.PerShard {
			fmt.Printf("  shard %-3d           p50 %s   p99 %s   (%d requests)\n",
				sl.Shard, sl.P50.Round(time.Microsecond), sl.P99.Round(time.Microsecond), sl.Requests)
		}
	}
	if rep.Final != nil {
		fmt.Printf("achieved robustness   %6.2f %% of measured tasks completed on time\n", rep.Final.RobustnessPct)
		fmt.Printf("  on time / late      %d / %d\n", rep.Final.MOnTime, rep.Final.MLate)
		fmt.Printf("  dropped react/proact %d / %d\n", rep.Final.MDroppedReactive, rep.Final.MDroppedProactive)
		fmt.Printf("  total cost          $%.4f\n", rep.Final.TotalCostUSD)
	}
}

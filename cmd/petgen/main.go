// Command petgen builds and inspects Probabilistic Execution Time (PET)
// matrices: the per-(task type, machine type) execution-time PMFs the
// whole mechanism runs on.
//
//	petgen -profile spec                  # mean matrix + machine list
//	petgen -profile video -stats          # add per-cell stddev / quantiles
//	petgen -profile spec -dump pet.csv    # full impulse dump as CSV
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"log"
	"os"
	"strings"

	"github.com/hpcclab/taskdrop/internal/pet"
	"github.com/hpcclab/taskdrop/internal/pmf"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("petgen: ")

	var (
		profileName = flag.String("profile", "spec", "system profile: spec | video | homog")
		seed        = flag.Int64("seed", pet.DefaultProfileSeed, "build seed")
		samples     = flag.Int("samples", 500, "Gamma samples per PET cell")
		bins        = flag.Int("bins", 25, "histogram bins per PMF")
		stats       = flag.Bool("stats", false, "print per-cell stddev and quantiles")
		dump        = flag.String("dump", "", "write the full PET impulse list to this CSV file")
		save        = flag.String("save", "", "write the matrix as JSON to this file")
		load        = flag.String("load", "", "load the matrix from a JSON file instead of building it")
	)
	flag.Parse()

	var m *pet.Matrix
	if *load != "" {
		data, err := os.ReadFile(*load)
		if err != nil {
			log.Fatal(err)
		}
		m, err = pet.UnmarshalMatrix(data)
		if err != nil {
			log.Fatal(err)
		}
	} else {
		profile, err := pet.ProfileByName(*profileName)
		if err != nil {
			log.Fatal(err)
		}
		m = pet.Build(profile, *seed, pet.BuildOptions{SamplesPerCell: *samples, BinsPerPMF: *bins})
	}
	profile := m.Profile()

	fmt.Printf("PET matrix %q — %d task types × %d machine types, %d machines\n\n",
		profile.Name, m.NumTaskTypes(), m.NumMachineTypes(), len(m.Machines()))

	fmt.Println("machines:")
	for _, spec := range m.Machines() {
		fmt.Printf("  [%d] %-40s $%.3f/h\n", spec.Index, spec.Name, spec.PriceHour)
	}

	fmt.Println("\nmean execution time (ms):")
	fmt.Printf("  %-20s", "task type \\ machine")
	for j := range profile.MachineTypeNames {
		fmt.Printf(" %8s", fmt.Sprintf("mt%d", j))
	}
	fmt.Printf(" %9s\n", "avg_i")
	for i := 0; i < m.NumTaskTypes(); i++ {
		fmt.Printf("  %-20.20s", profile.TaskTypeNames[i])
		for j := 0; j < m.NumMachineTypes(); j++ {
			fmt.Printf(" %8.1f", m.CellMean(pet.TaskType(i), pet.MachineType(j)))
		}
		fmt.Printf(" %9.1f\n", m.TypeMean(pet.TaskType(i)))
	}
	fmt.Printf("\n  avg_all = %.1f ms\n", m.MeanAll())

	if *stats {
		fmt.Println("\nper-cell spread (stddev ms | p50 | p95):")
		for i := 0; i < m.NumTaskTypes(); i++ {
			fmt.Printf("  %-20.20s", profile.TaskTypeNames[i])
			for j := 0; j < m.NumMachineTypes(); j++ {
				cell := m.ExecPMF(pet.TaskType(i), pet.MachineType(j))
				fmt.Printf(" %6.1f|%d|%d", cell.StdDev(), cell.Quantile(0.5), cell.Quantile(0.95))
			}
			fmt.Println()
		}
	}

	if *dump != "" {
		if err := dumpCSV(*dump, m); err != nil {
			log.Fatal(err)
		}
		fmt.Printf("\nwrote impulse dump to %s\n", *dump)
	}
	if *save != "" {
		data, err := json.MarshalIndent(m, "", " ")
		if err != nil {
			log.Fatal(err)
		}
		if err := os.WriteFile(*save, data, 0o644); err != nil {
			log.Fatal(err)
		}
		fmt.Printf("\nwrote matrix JSON to %s\n", *save)
	}
}

// dumpCSV writes every impulse of every PET cell as
// task_type,machine_type,tick,probability rows.
func dumpCSV(path string, m *pet.Matrix) error {
	var b strings.Builder
	b.WriteString("task_type,machine_type,tick_ms,probability\n")
	p := m.Profile()
	for i := 0; i < m.NumTaskTypes(); i++ {
		for j := 0; j < m.NumMachineTypes(); j++ {
			for _, im := range m.ExecPMF(pet.TaskType(i), pet.MachineType(j)).Impulses() {
				fmt.Fprintf(&b, "%s,%s,%d,%.9f\n",
					p.TaskTypeNames[i], p.MachineTypeNames[j], pmf.Tick(im.T), im.P)
			}
		}
	}
	return os.WriteFile(path, []byte(b.String()), 0o644)
}

// Command petgen builds and inspects Probabilistic Execution Time (PET)
// matrices: the per-(task type, machine type) execution-time PMFs the
// whole mechanism runs on.
//
//	petgen -profile spec                  # mean matrix + machine list
//	petgen -profile video -stats          # add per-cell stddev / quantiles
//	petgen -profile spec -dump pet.csv    # full impulse dump as CSV
package main

import (
	"encoding/json"
	"errors"
	"flag"
	"fmt"
	"io"
	"log"
	"os"
	"strings"

	"github.com/hpcclab/taskdrop/internal/pet"
	"github.com/hpcclab/taskdrop/internal/pmf"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("petgen: ")
	if err := run(os.Args[1:], os.Stdout, os.Stderr); err != nil {
		log.Fatal(err)
	}
}

// run is the testable body of the command: it parses args, builds or loads
// a matrix, and writes every report to stdout. Usage and flag-parse
// diagnostics go to stderr so piped report output stays clean.
func run(args []string, stdout, stderr io.Writer) error {
	fs := flag.NewFlagSet("petgen", flag.ContinueOnError)
	fs.SetOutput(stderr)
	var (
		profileName = fs.String("profile", "spec", "system profile: spec | video | homog")
		seed        = fs.Int64("seed", pet.DefaultProfileSeed, "build seed")
		samples     = fs.Int("samples", 500, "Gamma samples per PET cell")
		bins        = fs.Int("bins", 25, "histogram bins per PMF")
		stats       = fs.Bool("stats", false, "print per-cell stddev and quantiles")
		dump        = fs.String("dump", "", "write the full PET impulse list to this CSV file")
		save        = fs.String("save", "", "write the matrix as JSON to this file")
		load        = fs.String("load", "", "load the matrix from a JSON file instead of building it")
	)
	if err := fs.Parse(args); err != nil {
		if errors.Is(err, flag.ErrHelp) {
			return nil // usage already printed; -h is a success
		}
		// The flag package already printed the specific diagnostic.
		return errors.New("invalid arguments")
	}

	var m *pet.Matrix
	if *load != "" {
		data, err := os.ReadFile(*load)
		if err != nil {
			return err
		}
		m, err = pet.UnmarshalMatrix(data)
		if err != nil {
			return err
		}
	} else {
		profile, err := pet.ProfileByName(*profileName)
		if err != nil {
			return err
		}
		if *samples < 1 || *bins < 1 {
			return fmt.Errorf("-samples and -bins must be >= 1")
		}
		m = pet.Build(profile, *seed, pet.BuildOptions{SamplesPerCell: *samples, BinsPerPMF: *bins})
	}
	profile := m.Profile()

	fmt.Fprintf(stdout, "PET matrix %q — %d task types × %d machine types, %d machines\n\n",
		profile.Name, m.NumTaskTypes(), m.NumMachineTypes(), len(m.Machines()))

	fmt.Fprintln(stdout, "machines:")
	for _, spec := range m.Machines() {
		fmt.Fprintf(stdout, "  [%d] %-40s $%.3f/h\n", spec.Index, spec.Name, spec.PriceHour)
	}

	fmt.Fprintln(stdout, "\nmean execution time (ms):")
	fmt.Fprintf(stdout, "  %-20s", "task type \\ machine")
	for j := range profile.MachineTypeNames {
		fmt.Fprintf(stdout, " %8s", fmt.Sprintf("mt%d", j))
	}
	fmt.Fprintf(stdout, " %9s\n", "avg_i")
	for i := 0; i < m.NumTaskTypes(); i++ {
		fmt.Fprintf(stdout, "  %-20.20s", profile.TaskTypeNames[i])
		for j := 0; j < m.NumMachineTypes(); j++ {
			fmt.Fprintf(stdout, " %8.1f", m.CellMean(pet.TaskType(i), pet.MachineType(j)))
		}
		fmt.Fprintf(stdout, " %9.1f\n", m.TypeMean(pet.TaskType(i)))
	}
	fmt.Fprintf(stdout, "\n  avg_all = %.1f ms\n", m.MeanAll())

	if *stats {
		fmt.Fprintln(stdout, "\nper-cell spread (stddev ms | p50 | p95):")
		for i := 0; i < m.NumTaskTypes(); i++ {
			fmt.Fprintf(stdout, "  %-20.20s", profile.TaskTypeNames[i])
			for j := 0; j < m.NumMachineTypes(); j++ {
				cell := m.ExecPMF(pet.TaskType(i), pet.MachineType(j))
				fmt.Fprintf(stdout, " %6.1f|%d|%d", cell.StdDev(), cell.Quantile(0.5), cell.Quantile(0.95))
			}
			fmt.Fprintln(stdout)
		}
	}

	if *dump != "" {
		if err := dumpCSV(*dump, m); err != nil {
			return err
		}
		fmt.Fprintf(stdout, "\nwrote impulse dump to %s\n", *dump)
	}
	if *save != "" {
		data, err := json.MarshalIndent(m, "", " ")
		if err != nil {
			return err
		}
		if err := os.WriteFile(*save, data, 0o644); err != nil {
			return err
		}
		fmt.Fprintf(stdout, "\nwrote matrix JSON to %s\n", *save)
	}
	return nil
}

// dumpCSV writes every impulse of every PET cell as
// task_type,machine_type,tick,probability rows.
func dumpCSV(path string, m *pet.Matrix) error {
	var b strings.Builder
	b.WriteString("task_type,machine_type,tick_ms,probability\n")
	p := m.Profile()
	for i := 0; i < m.NumTaskTypes(); i++ {
		for j := 0; j < m.NumMachineTypes(); j++ {
			for _, im := range m.ExecPMF(pet.TaskType(i), pet.MachineType(j)).Impulses() {
				fmt.Fprintf(&b, "%s,%s,%d,%.9f\n",
					p.TaskTypeNames[i], p.MachineTypeNames[j], pmf.Tick(im.T), im.P)
			}
		}
	}
	return os.WriteFile(path, []byte(b.String()), 0o644)
}

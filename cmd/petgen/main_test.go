package main

import (
	"io"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// TestRunBuildsAndSaves smokes the whole flag surface: build a small
// matrix, print the report, save JSON, dump CSV, and reload the saved
// file.
func TestRunBuildsAndSaves(t *testing.T) {
	dir := t.TempDir()
	saved := filepath.Join(dir, "pet.json")
	dumped := filepath.Join(dir, "pet.csv")

	var out strings.Builder
	err := run([]string{
		"-profile", "video", "-samples", "50", "-bins", "8", "-stats",
		"-save", saved, "-dump", dumped,
	}, &out, io.Discard)
	if err != nil {
		t.Fatal(err)
	}
	report := out.String()
	for _, want := range []string{
		"PET matrix", "machines:", "mean execution time", "avg_all",
		"per-cell spread", "wrote matrix JSON to " + saved, "wrote impulse dump to " + dumped,
	} {
		if !strings.Contains(report, want) {
			t.Errorf("report missing %q", want)
		}
	}
	if data, err := os.ReadFile(dumped); err != nil {
		t.Fatal(err)
	} else if !strings.HasPrefix(string(data), "task_type,machine_type,tick_ms,probability\n") {
		t.Error("CSV dump missing header")
	}

	// Round trip: -load reads the saved JSON back.
	out.Reset()
	if err := run([]string{"-load", saved}, &out, io.Discard); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out.String(), "PET matrix") {
		t.Error("loaded report missing matrix banner")
	}
}

// TestRunHelpIsSuccess: -h prints usage (to stderr, keeping stdout clean)
// and exits cleanly.
func TestRunHelpIsSuccess(t *testing.T) {
	var out, errOut strings.Builder
	if err := run([]string{"-h"}, &out, &errOut); err != nil {
		t.Fatalf("-h returned %v", err)
	}
	if !strings.Contains(errOut.String(), "-profile") {
		t.Error("usage text missing flags")
	}
	if out.Len() != 0 {
		t.Errorf("-h wrote %q to stdout; want clean data stream", out.String())
	}
}

// TestRunRejectsBadFlags covers the failure paths: unknown profile,
// unparsable flags, invalid build options, missing load file.
func TestRunRejectsBadFlags(t *testing.T) {
	for _, args := range [][]string{
		{"-profile", "nosuch"},
		{"-samples", "notanumber"},
		{"-samples", "0"},
		{"-bins", "0"},
		{"-load", filepath.Join(t.TempDir(), "absent.json")},
	} {
		if err := run(args, io.Discard, io.Discard); err == nil {
			t.Errorf("run(%v) succeeded, want error", args)
		}
	}
}

// Command hcexp runs declarative experiment sweeps: the named figures of
// the paper's evaluation section (§V) and arbitrary user-declared grids.
// Each result is an aligned text table (mean ± 95% CI over trials) and,
// optionally, CSV files.
//
//	hcexp                          # run every figure at the configured scale
//	hcexp -fig fig8                # a single figure
//	hcexp -trials 30 -scale 1.0    # paper-faithful (slow)
//	hcexp -csv results/            # also write one CSV per table
//
//	# a custom grid with paired-difference statistics vs a baseline:
//	hcexp -sweep "profile=spec;dropper=reactdrop,heuristic:beta=1.5;tasks=20000,30000,40000;baseline=reactdrop"
//
// Workloads are paired: every combination inside a sweep sees identical
// task traces, so differences between rows are differences between
// policies, not between workloads — and with a baseline= directive they
// are reported as paired mean differences with paired 95% CIs.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"log"
	"os"
	"os/signal"
	"path/filepath"
	"strings"
	"time"

	"github.com/hpcclab/taskdrop/internal/expt"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("hcexp: ")

	var (
		figIDs   = flag.String("fig", "all", "comma-separated figure ids (fig5,fig6,fig7a,fig7b,fig8,fig9,fig10,drops) or 'all'")
		sweepDef = flag.String("sweep", "", `declarative sweep grammar, e.g. "profile=spec;dropper=reactdrop,heuristic:beta=1.5;tasks=20000,30000;baseline=reactdrop"`)
		trials   = flag.Int("trials", 10, "trials per configuration (paper: 30)")
		scale    = flag.Float64("scale", 0.1, "workload scale in (0,1]; 1.0 = paper scale (20k/30k/40k tasks)")
		seed     = flag.Int64("seed", 7, "base seed; trial t uses seed+t")
		workers  = flag.Int("workers", 0, "parallel simulations (0 = GOMAXPROCS)")
		csvDir   = flag.String("csv", "", "directory to also write per-table CSV files")
		quiet    = flag.Bool("q", false, "suppress progress lines")
	)
	flag.Parse()

	opt := expt.DefaultOptions()
	opt.Trials = *trials
	opt.Scale = *scale
	opt.BaseSeed = *seed
	opt.Workers = *workers
	if !*quiet {
		opt.Progress = os.Stderr
	}
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt)
	defer stop()

	fmt.Printf("# taskdrop experiment suite — trials=%d scale=%.2f seed=%d\n",
		opt.Trials, opt.Scale, opt.BaseSeed)
	fmt.Printf("# started %s\n\n", time.Now().Format(time.RFC3339))

	if *sweepDef != "" {
		runSweep(ctx, opt, *sweepDef, *csvDir)
		return
	}

	var figs []expt.Figure
	if *figIDs == "all" {
		figs = expt.All()
	} else {
		for _, id := range strings.Split(*figIDs, ",") {
			f, ok := expt.ByID(strings.TrimSpace(id))
			if !ok {
				log.Fatalf("unknown figure %q (known: fig5 fig6 fig7a fig7b fig8 fig9 fig10 drops)", id)
			}
			figs = append(figs, f)
		}
	}

	for _, fig := range figs {
		start := time.Now()
		fmt.Printf("== %s: %s\n", fig.ID, fig.Title)
		tables, err := fig.Run(ctx, opt)
		if errors.Is(err, context.Canceled) {
			log.Fatal("interrupted")
		}
		if err != nil {
			log.Fatalf("%s: %v", fig.ID, err)
		}
		printTables(tables, *csvDir)
		fmt.Printf("  (%s)\n\n", time.Since(start).Round(time.Second))
	}
}

// runSweep executes one user-declared grid and prints its flat table.
func runSweep(ctx context.Context, opt expt.Options, grammar, csvDir string) {
	start := time.Now()
	tab, err := expt.RunSweep(ctx, opt, grammar)
	if errors.Is(err, context.Canceled) {
		log.Fatal("interrupted")
	}
	if err != nil {
		log.Fatal(err)
	}
	printTables([]expt.Table{*tab}, csvDir)
	fmt.Printf("  (%s)\n", time.Since(start).Round(time.Second))
}

func printTables(tables []expt.Table, csvDir string) {
	for i := range tables {
		tables[i].Fprint(os.Stdout)
		if csvDir != "" {
			if err := writeCSV(csvDir, &tables[i]); err != nil {
				log.Fatalf("%s: %v", tables[i].ID, err)
			}
		}
	}
}

func writeCSV(dir string, t *expt.Table) error {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return err
	}
	path := filepath.Join(dir, t.ID+".csv")
	return os.WriteFile(path, []byte(t.CSV()), 0o644)
}

// Command hcexp runs declarative experiment sweeps: the named figures of
// the paper's evaluation section (§V) and arbitrary user-declared grids.
// Each result is an aligned text table (mean ± 95% CI over trials) and,
// optionally, CSV files.
//
//	hcexp                          # run every figure at the configured scale
//	hcexp -fig fig8                # a single figure
//	hcexp -trials 30 -scale 1.0    # paper-faithful (slow)
//	hcexp -csv results/            # also write one CSV per table
//
//	# a custom grid with paired-difference statistics vs a baseline:
//	hcexp -sweep "profile=spec;dropper=reactdrop,heuristic:beta=1.5;tasks=20000,30000,40000;baseline=reactdrop"
//
//	# pprof captures of the same workload the benchmarks exercise:
//	hcexp -fig fig8 -cpuprofile cpu.out -memprofile mem.out
//
// Workloads are paired: every combination inside a sweep sees identical
// task traces, so differences between rows are differences between
// policies, not between workloads — and with a baseline= directive they
// are reported as paired mean differences with paired 95% CIs.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"log"
	"os"
	"os/signal"
	"path/filepath"
	"runtime"
	"runtime/pprof"
	"strings"
	"time"

	"github.com/hpcclab/taskdrop/internal/expt"
)

// flushProfiles holds the pending -cpuprofile/-memprofile writers. fatalf
// runs them before exiting so a profiling run cut short by Ctrl-C or a
// figure error still leaves valid pprof files (log.Fatal would skip the
// defers via os.Exit).
var flushProfiles []func()

func runFlushProfiles() {
	for _, fn := range flushProfiles {
		fn()
	}
	flushProfiles = nil
}

func fatalf(format string, args ...any) {
	runFlushProfiles()
	log.Fatalf(format, args...)
}

func main() {
	log.SetFlags(0)
	log.SetPrefix("hcexp: ")

	var (
		figIDs   = flag.String("fig", "all", "comma-separated figure ids (fig5,fig6,fig7a,fig7b,fig8,fig9,fig10,drops) or 'all'")
		sweepDef = flag.String("sweep", "", `declarative sweep grammar, e.g. "profile=spec;dropper=reactdrop,heuristic:beta=1.5;tasks=20000,30000;baseline=reactdrop"`)
		trials   = flag.Int("trials", 10, "trials per configuration (paper: 30)")
		scale    = flag.Float64("scale", 0.1, "workload scale in (0,1]; 1.0 = paper scale (20k/30k/40k tasks)")
		seed     = flag.Int64("seed", 7, "base seed; trial t uses seed+t")
		workers  = flag.Int("workers", 0, "parallel simulations (0 = GOMAXPROCS)")
		csvDir   = flag.String("csv", "", "directory to also write per-table CSV files")
		quiet    = flag.Bool("q", false, "suppress progress lines")
		cpuProf  = flag.String("cpuprofile", "", "write a CPU profile of the run to this file")
		memProf  = flag.String("memprofile", "", "write a heap profile taken at the end of the run to this file")
	)
	flag.Parse()

	if *cpuProf != "" {
		f, err := os.Create(*cpuProf)
		if err != nil {
			log.Fatalf("cpuprofile: %v", err)
		}
		if err := pprof.StartCPUProfile(f); err != nil {
			log.Fatalf("cpuprofile: %v", err)
		}
		flushProfiles = append(flushProfiles, func() {
			pprof.StopCPUProfile()
			if err := f.Close(); err != nil {
				log.Printf("cpuprofile: %v", err)
			}
		})
	}
	if *memProf != "" {
		path := *memProf
		flushProfiles = append(flushProfiles, func() {
			f, err := os.Create(path)
			if err != nil {
				log.Printf("memprofile: %v", err)
				return
			}
			defer f.Close()
			runtime.GC() // report live heap, not transient garbage
			if err := pprof.WriteHeapProfile(f); err != nil {
				log.Printf("memprofile: %v", err)
			}
		})
	}
	defer runFlushProfiles()

	opt := expt.DefaultOptions()
	opt.Trials = *trials
	opt.Scale = *scale
	opt.BaseSeed = *seed
	opt.Workers = *workers
	if !*quiet {
		opt.Progress = os.Stderr
	}
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt)
	defer stop()

	fmt.Printf("# taskdrop experiment suite — trials=%d scale=%.2f seed=%d\n",
		opt.Trials, opt.Scale, opt.BaseSeed)
	fmt.Printf("# started %s\n\n", time.Now().Format(time.RFC3339))

	if *sweepDef != "" {
		runSweep(ctx, opt, *sweepDef, *csvDir)
		return
	}

	var figs []expt.Figure
	if *figIDs == "all" {
		figs = expt.All()
	} else {
		for _, id := range strings.Split(*figIDs, ",") {
			f, ok := expt.ByID(strings.TrimSpace(id))
			if !ok {
				fatalf("unknown figure %q (known: fig5 fig6 fig7a fig7b fig8 fig9 fig10 drops)", id)
			}
			figs = append(figs, f)
		}
	}

	for _, fig := range figs {
		start := time.Now()
		fmt.Printf("== %s: %s\n", fig.ID, fig.Title)
		tables, err := fig.Run(ctx, opt)
		if errors.Is(err, context.Canceled) {
			fatalf("interrupted")
		}
		if err != nil {
			fatalf("%s: %v", fig.ID, err)
		}
		printTables(tables, *csvDir)
		fmt.Printf("  (%s)\n\n", time.Since(start).Round(time.Second))
	}
}

// runSweep executes one user-declared grid and prints its flat table.
func runSweep(ctx context.Context, opt expt.Options, grammar, csvDir string) {
	start := time.Now()
	tab, err := expt.RunSweep(ctx, opt, grammar)
	if errors.Is(err, context.Canceled) {
		fatalf("interrupted")
	}
	if err != nil {
		fatalf("%v", err)
	}
	printTables([]expt.Table{*tab}, csvDir)
	fmt.Printf("  (%s)\n", time.Since(start).Round(time.Second))
}

func printTables(tables []expt.Table, csvDir string) {
	for i := range tables {
		tables[i].Fprint(os.Stdout)
		if csvDir != "" {
			if err := writeCSV(csvDir, &tables[i]); err != nil {
				fatalf("%s: %v", tables[i].ID, err)
			}
		}
	}
}

func writeCSV(dir string, t *expt.Table) error {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return err
	}
	path := filepath.Join(dir, t.ID+".csv")
	return os.WriteFile(path, []byte(t.CSV()), 0o644)
}

// Command hcserve hosts the task-dropping mechanism as a long-running
// online admission controller: an HTTP server that keeps live per-machine
// queue state and answers map/drop/defer for every arriving task through
// the same (mapper, dropper, profile) registry specs as the offline
// tools.
//
//	hcserve -addr :8080 -profile spec -mapper PAM -dropper "heuristic:beta=1.5,eta=3"
//
// With -shards N the machines are partitioned into N independent
// admission shards, each with its own single-writer decision loop, behind
// a routing policy (-router rr|mass|p2c) — the sharded cluster
// architecture that multiplies decision throughput while keeping the
// paper's calculus exact per shard.
//
// Endpoints:
//
//	POST /v1/decide   {"tasks":[{"type":3,"arrival":120,"deadline":890,...}]}
//	POST /v1/drain    graceful drain (all shards concurrently); returns the
//	                  merged final trial Result
//	POST /v1/admin/machines  dynamic membership: {"op":"add|remove|revive",...}
//	                  journaled before acknowledgement; see -rebalance-every
//	                  for the automatic variant
//	GET  /v1/stats    per-shard queue depths, robustness estimates, drop counts
//	GET  /healthz     liveness + served configuration
//	GET  /readyz      readiness: 503 while the server boots (journal
//	                  recovery, shard start) or drains, 200 once serving —
//	                  what hcrouter gates rotation membership on
//	GET  /metrics     Prometheus text (decisions/s, drop rate, queue depths,
//	                  decision-latency histogram, per-shard series, calculus
//	                  introspection, Go runtime gauges)
//	GET  /debug/traces  retained stage-timed decision traces (JSON)
//
// The listener binds before the controller boots: during journal recovery
// every endpoint (including /healthz) answers 503 {"status":"booting"},
// so process supervisors and the router tier observe "up but not ready"
// instead of connection refused.
//
// With -partition k/K the server owns only the k-th of K disjoint machine
// partitions of the profile — one process in a multi-process deployment
// fronted by cmd/hcrouter. Decision IDs sent by the router (or any
// client) are remembered in a bounded dedup window (-dedup-window) and a
// retried request replays the originally acknowledged bytes.
//
// With -trace-sample N every Nth decision is traced through its stages
// (route → shard mailbox wait → Eq. 1 calculus → dropper verdict → journal
// commit → ack); completed traces land on /debug/traces, feed the
// per-stage latency histograms on /metrics, and — when journaling — are
// appended to the WAL so `hcreplay -decision N` prints the live stage
// timings next to the replayed audit. Sampling off (the default) costs the
// decide path nothing.
//
// With -debug-addr a second HTTP server exposes net/http/pprof under
// /debug/pprof/ plus the same /metrics and /debug/traces, so profiling
// traffic never competes with admission traffic on the main listener.
//
// Logs are structured (log/slog): -log-format text|json, -log-level
// debug|info|warn|error.
//
// With -journal-dir every admission decision is event-sourced to a
// per-shard write-ahead log (fsync policy -fsync always|interval|never,
// checkpoints every -snapshot-every records): a killed server restarted on
// the same directory recovers its exact pre-crash state by replay, and
// cmd/hcreplay audits or verifies the log offline.
//
// On SIGTERM/SIGINT the server stops accepting work, drains the virtual
// system (flushing a final journal checkpoint so a later restart replays
// nothing), and prints the final robustness accounting before exiting.
package main

import (
	"context"
	"flag"
	"fmt"
	"net"
	"net/http"
	"net/http/pprof"
	"os"
	"os/signal"
	"sync/atomic"
	"syscall"
	"time"

	"github.com/hpcclab/taskdrop/internal/pmf"
	"github.com/hpcclab/taskdrop/internal/service"
	"github.com/hpcclab/taskdrop/internal/telemetry"
)

// handlerBox wraps the live handler so the boot→serving swap stores one
// concrete type in the atomic.Value.
type handlerBox struct{ h http.Handler }

func main() {
	var (
		addr          = flag.String("addr", ":8080", "listen address")
		debugAddr     = flag.String("debug-addr", "", "debug listen address: net/http/pprof, /metrics and /debug/traces on a separate server (empty disables)")
		profileSpec   = flag.String("profile", "spec", "system profile spec: spec | video | homog (e.g. spec:seed=7)")
		mapperSpec    = flag.String("mapper", "PAM", "mapping heuristic spec (MinMin, MSD, PAM, FCFS, SJF, EDF, kpb:percent=30, ...)")
		dropperSpec   = flag.String("dropper", "heuristic", "dropping policy spec: reactdrop | heuristic[:beta=..,eta=..] | optimal | threshold[:base=..,adaptive] | approx[:grace=..]")
		shards        = flag.Int("shards", 1, "admission shards (independent decision loops over partitioned machines)")
		partition     = flag.String("partition", "", "own only machine partition k/K of the profile (e.g. 0/2); empty serves the whole matrix")
		routerSpec    = flag.String("router", "rr", "shard-routing policy spec: rr | mass | p2c[:seed=..] | hash")
		dedupWindow   = flag.Int("dedup-window", 0, "client decision-IDs remembered for idempotent retries (0: default 4096, negative disables)")
		queueCap      = flag.Int("queue", 6, "machine queue capacity incl. running task")
		grace         = flag.Int64("grace", 0, "reactive-drop grace window in ms (approximate-computing extension)")
		dropOnArrival = flag.Bool("drop-on-arrival", false, "engage the proactive dropper on arrival events too (strict Fig. 4)")
		boundary      = flag.Int("boundary", 0, "exclude first/last N tasks from the drain result's measured metrics")
		backlog       = flag.Int("backlog", 256, "decide requests buffered behind the decision loop")
		drainTimeout  = flag.Duration("drain-timeout", 30*time.Second, "graceful shutdown budget")
		journalDir    = flag.String("journal-dir", "", "enable the decision journal: per-shard WAL + snapshots under this directory (crash recovery, hcreplay)")
		fsync         = flag.String("fsync", "interval", "journal durability policy: always | interval | never")
		fsyncInterval = flag.Duration("fsync-interval", 100*time.Millisecond, "background fsync period under -fsync interval")
		snapshotEvery = flag.Int("snapshot-every", 5000, "checkpoint a shard after this many WAL records in a segment (negative: only at drain)")
		rebalEvery    = flag.Duration("rebalance-every", 0, "periodically migrate a machine from the most- to the least-loaded shard (0 disables; needs -shards > 1)")
		rebalThresh   = flag.Float64("rebalance-threshold", 2.0, "queue-mass skew ratio (max/min) that triggers a rebalance move")
		traceSample   = flag.Int("trace-sample", 0, "stage-trace every Nth decision by sequence number (0 disables tracing)")
		traceRing     = flag.Int("trace-ring", telemetry.DefaultRingSize, "completed traces retained per shard for /debug/traces")
		logFormat     = flag.String("log-format", "text", "log output format: text | json")
		logLevel      = flag.String("log-level", "info", "minimum log level: debug | info | warn | error")
	)
	flag.Parse()

	logger, err := telemetry.NewLogger(os.Stderr, *logFormat, *logLevel)
	if err != nil {
		fmt.Fprintln(os.Stderr, "hcserve:", err)
		os.Exit(2)
	}
	logger = logger.With("component", "hcserve")

	// Bind the listener BEFORE booting the controller: journal recovery can
	// take a while, and a probing supervisor (or the router tier's /readyz
	// poll) should see 503 "booting" rather than connection refused. The
	// handler is swapped in atomically once the controller is up.
	ln, err := net.Listen("tcp", *addr)
	if err != nil {
		logger.Error("listen failed", "addr", *addr, "err", err)
		os.Exit(1)
	}
	var live atomic.Value // of handlerBox: atomic.Value wants one concrete type
	live.Store(handlerBox{http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "application/json")
		w.WriteHeader(http.StatusServiceUnavailable)
		fmt.Fprintln(w, `{"ready":false,"status":"booting"}`)
	})})
	srv := &http.Server{Handler: http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		live.Load().(handlerBox).h.ServeHTTP(w, r)
	})}
	errCh := make(chan error, 2)
	go func() { errCh <- srv.Serve(ln) }()

	ctrl, err := service.New(service.Config{
		Profile:            *profileSpec,
		Mapper:             *mapperSpec,
		Dropper:            *dropperSpec,
		Shards:             *shards,
		Partition:          *partition,
		Router:             *routerSpec,
		QueueCap:           *queueCap,
		Grace:              pmf.Tick(*grace),
		DropOnArrival:      *dropOnArrival,
		BoundaryExclusion:  *boundary,
		Backlog:            *backlog,
		DedupWindow:        *dedupWindow,
		RebalanceEvery:     *rebalEvery,
		RebalanceThreshold: *rebalThresh,
		JournalDir:         *journalDir,
		Fsync:              *fsync,
		FsyncInterval:      *fsyncInterval,
		SnapshotEvery:      *snapshotEvery,
		TraceSample:        *traceSample,
		TraceRing:          *traceRing,
		Logger:             logger,
	})
	if err != nil {
		logger.Error("startup failed", "err", err)
		os.Exit(1)
	}
	m := ctrl.Matrix()
	logger.Info("serving",
		"profile", *profileSpec,
		"mapper", *mapperSpec,
		"dropper", *dropperSpec,
		"machines", ctrl.NumMachines(),
		"task_types", m.NumTaskTypes(),
		"shards", ctrl.NumShards(),
		"partition", *partition,
		"router", *routerSpec,
		"addr", *addr)
	if *journalDir != "" {
		logger.Info("journaling decisions",
			"dir", *journalDir, "fsync", *fsync, "snapshot_every", *snapshotEvery)
	}
	if *traceSample > 0 {
		logger.Info("stage tracing enabled", "sample_every", *traceSample, "ring", *traceRing)
	}
	if *rebalEvery > 0 {
		logger.Info("rebalancer enabled", "every", *rebalEvery, "threshold", *rebalThresh)
	}

	handler := service.NewHandler(ctrl)
	live.Store(handlerBox{handler})

	// The debug server shares the controller's observability surface and
	// adds the pprof handlers. A separate listener keeps profile captures
	// (which can run for tens of seconds) off the admission port.
	var dbg *http.Server
	if *debugAddr != "" {
		mux := http.NewServeMux()
		mux.HandleFunc("/debug/pprof/", pprof.Index)
		mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
		mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
		mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
		mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
		mux.Handle("/debug/traces", handler)
		mux.Handle("/metrics", handler)
		dbg = &http.Server{Addr: *debugAddr, Handler: mux}
		logger.Info("debug server listening", "addr", *debugAddr)
		go func() {
			if err := dbg.ListenAndServe(); err != nil && err != http.ErrServerClosed {
				errCh <- err
			}
		}()
	}

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	select {
	case <-ctx.Done():
		logger.Info("signal received; draining")
	case err := <-errCh:
		logger.Error("server failed", "err", err)
		os.Exit(1)
	}

	// Graceful drain: stop accepting connections, then run the virtual
	// system to completion and report what the run achieved.
	shCtx, cancel := context.WithTimeout(context.Background(), *drainTimeout)
	defer cancel()
	if err := srv.Shutdown(shCtx); err != nil {
		logger.Warn("http shutdown", "err", err)
	}
	if dbg != nil {
		if err := dbg.Shutdown(shCtx); err != nil {
			logger.Warn("debug server shutdown", "err", err)
		}
	}
	// If a client already drained via POST /v1/drain, this returns the
	// stored result immediately; the only failure mode left is the
	// drain-timeout budget expiring.
	res, err := ctrl.Drain(shCtx)
	if err != nil {
		logger.Error("drain failed", "err", err)
		os.Exit(1)
	}
	mm := ctrl.Metrics()
	fmt.Printf("drained: %d tasks decided (%.1f/s mean), drop rate %.2f %%\n",
		res.Total, mm.DecisionsPerSecond(), 100*mm.DropRate())
	fmt.Printf("robustness            %6.2f %% of measured tasks completed on time\n", res.RobustnessPct)
	fmt.Printf("completed on time     %d\n", res.MOnTime)
	fmt.Printf("completed late        %d\n", res.MLate)
	fmt.Printf("dropped reactively    %d\n", res.MDroppedReactive)
	fmt.Printf("dropped proactively   %d\n", res.MDroppedProactive)
	fmt.Printf("total cost            $%.4f\n", res.TotalCostUSD)
	fmt.Printf("virtual makespan      %.1f s\n", float64(res.Makespan)/1000)
}

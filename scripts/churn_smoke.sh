#!/usr/bin/env bash
# Dynamic-membership smoke: drive a journaling 2-shard hcserve through
# runtime machine churn and require (1) hcload's -churn fault-injection
# plan to fire remove/revive/add operations mid-replay without wedging the
# load, (2) a fully degraded server (every machine removed) to shed
# decides with 429 + Retry-After instead of accepting work it cannot run,
# (3) the membership and rebalancer metric families to lint clean and be
# present, (4) a kill -9 + restart to recover the exact post-churn
# membership (byte-identical /v1/stats), and (5) `hcreplay -verify` to
# re-derive every logged decision across the membership records.
#
# Usage: scripts/churn_smoke.sh
set -euo pipefail

PROFILE=video
TASKS=30000
SCALE=0.05
SEED=1
CUT=750 # tasks replayed before the churn/crash checkpoint (of 1500)
ADDR=127.0.0.1:18193

BIN="$(mktemp -d)"
JDIR="$(mktemp -d)"
SERVER_PID=""
cleanup() {
    if [ -n "$SERVER_PID" ]; then kill -9 "$SERVER_PID" 2>/dev/null || true; fi
    rm -rf "$BIN" "$JDIR"
}
trap cleanup EXIT

go build -o "$BIN" ./cmd/hcserve ./cmd/hcload ./cmd/hcreplay ./cmd/obslint

serve() {
    "$BIN/hcserve" -addr "$ADDR" -profile "$PROFILE" -mapper PAM -dropper heuristic \
        -shards 2 -router rr -boundary 100 \
        -journal-dir "$JDIR" -fsync always -snapshot-every 400 &
    SERVER_PID=$!
    for _ in $(seq 1 50); do
        curl -sf "http://$ADDR/healthz" >/dev/null 2>&1 && return 0
        sleep 0.2
    done
    echo "server did not come up" >&2
    return 1
}

# admin fires one membership operation and echoes the response.
admin() {
    curl -sf -X POST "http://$ADDR/v1/admin/machines" \
        -H 'Content-Type: application/json' -d "$1"
    echo
}

serve

# Phase 1: replay to the checkpoint with a churn plan — remove machine 2
# (queue handed off), force-drop machine 5's queue, revive 2, and add a
# fresh machine to shard 1. The retry budget rides through any transient
# 429 while capacity is down.
out1=$("$BIN/hcload" -addr "http://$ADDR" -profile "$PROFILE" \
    -tasks "$TASKS" -scale "$SCALE" -seed "$SEED" -to "$CUT" -no-drain -retries 3 \
    -churn "100:remove:2,200:remove:5:drop,400:revive:2,500:add:1:0")
echo "$out1"
echo "$out1" | grep -q "churn ops             4" ||
    { echo "FAIL: hcload did not report 4 churn ops" >&2; exit 1; }

# Fully degrade the server: remove every remaining live machine (0..8
# minus the already-removed 5), including the runtime-added machine 8.
for m in 0 1 2 3 4 6 7 8; do
    admin "{\"op\":\"remove\",\"machine\":$m,\"handoff\":true}" >/dev/null
done

# A decide against a server with zero live capacity must shed 429 with a
# Retry-After pacing hint — not wedge, not accept.
probe="$BIN/probe.out"
code=$(curl -s -o "$probe" -w '%{http_code}' -D "$BIN/probe.hdr" \
    -X POST "http://$ADDR/v1/decide" -H 'Content-Type: application/json' \
    -d '{"tasks":[{"type":0,"arrival":999999999,"deadline":1000000000}]}')
[ "$code" = "429" ] || { echo "FAIL: degraded decide answered $code, want 429" >&2; cat "$probe" >&2; exit 1; }
grep -qi '^Retry-After:' "$BIN/probe.hdr" ||
    { echo "FAIL: degraded 429 carries no Retry-After" >&2; exit 1; }
echo "degraded server sheds decides with 429 + Retry-After"

# The membership/rebalancer observability surface lints clean and reports
# the degradation.
"$BIN/obslint" -metrics "http://$ADDR/metrics" \
    -require taskdrop_membership_ops_total,taskdrop_membership_live_machines,taskdrop_membership_removed_machines,taskdrop_membership_degraded,taskdrop_membership_shed_total,taskdrop_rebalance_moves_total
curl -sf "http://$ADDR/metrics" -o "$BIN/metrics.degraded"
grep -q 'taskdrop_membership_degraded{shard="0"} 1' "$BIN/metrics.degraded" ||
    { echo "FAIL: shard 0 not reported degraded" >&2; exit 1; }

# Revive everything: capacity restored, decides flow again.
for m in 0 1 2 3 4 5 6 7 8; do
    admin "{\"op\":\"revive\",\"machine\":$m}" >/dev/null
done
curl -sf "http://$ADDR/metrics" -o "$BIN/metrics.revived"
grep -q 'taskdrop_membership_degraded{shard="0"} 0' "$BIN/metrics.revived" ||
    { echo "FAIL: shard 0 still degraded after revive" >&2; exit 1; }
curl -sf "http://$ADDR/v1/stats" >"$BIN/pre.json"

# kill -9 + restart: recovery replays the journal — membership records
# included — back to the exact acknowledged state.
echo "killing server (pid $SERVER_PID) with SIGKILL"
kill -9 "$SERVER_PID"
wait "$SERVER_PID" 2>/dev/null || true
SERVER_PID=""

serve
curl -sf "http://$ADDR/v1/stats" >"$BIN/post.json"
if ! diff -u "$BIN/pre.json" "$BIN/post.json"; then
    echo "FAIL: recovered /v1/stats differs from the pre-kill snapshot (membership lost)" >&2
    exit 1
fi
echo "recovered /v1/stats (post-churn membership included) is byte-identical"

# Phase 2: the recovered server finishes the replay and drains.
out2=$("$BIN/hcload" -addr "http://$ADDR" -profile "$PROFILE" \
    -tasks "$TASKS" -scale "$SCALE" -seed "$SEED" -from "$CUT" -retries 3)
echo "$out2"
kill -TERM "$SERVER_PID" 2>/dev/null || true
wait "$SERVER_PID" 2>/dev/null || true
SERVER_PID=""

# The journal re-derives every decision across 21 membership records
# (4 planned churn ops + 8 removes + 9 revives).
verify=$("$BIN/hcreplay" -dir "$JDIR" -verify)
echo "$verify"
echo "$verify" | grep -q "membership ops applied" ||
    { echo "FAIL: hcreplay -verify saw no membership records" >&2; exit 1; }

echo "OK: churn plan fired, degraded shed 429, membership survived kill -9, journal verifies"

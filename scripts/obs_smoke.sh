#!/usr/bin/env bash
# Observability smoke: boot a journaling hcserve with 4 shards, tracing
# every decision and the debug server on, replay a trace through it, and
# require (1) the /metrics exposition to lint clean against the
# Prometheus text-format grammar (every series carries HELP/TYPE), (2)
# /debug/traces to return at least one complete trace whose spans cover
# route/wait/calculus/ack with sane monotone bounds, (3) the pprof
# profile endpoint to respond, and (4) after a graceful SIGTERM,
# `hcreplay -decision N` to print the recorded stage timings next to the
# replayed audit — the full tracing loop from live request to on-disk
# forensics.
#
# Usage: scripts/obs_smoke.sh
set -euo pipefail

PROFILE=video
TASKS=30000
SCALE=0.03
SEED=1
ADDR=127.0.0.1:18191
DEBUG_ADDR=127.0.0.1:18192

BIN="$(mktemp -d)"
JDIR="$(mktemp -d)"
SERVER_PID=""
cleanup() {
    if [ -n "$SERVER_PID" ]; then kill -9 "$SERVER_PID" 2>/dev/null || true; fi
    rm -rf "$BIN" "$JDIR"
}
trap cleanup EXIT

go build -o "$BIN" ./cmd/hcserve ./cmd/hcload ./cmd/hcreplay ./cmd/obslint

"$BIN/hcserve" -addr "$ADDR" -profile "$PROFILE" -mapper PAM -dropper heuristic \
    -shards 4 -router rr -journal-dir "$JDIR" -fsync interval \
    -trace-sample 1 -debug-addr "$DEBUG_ADDR" -log-format json &
SERVER_PID=$!
for _ in $(seq 1 50); do
    curl -sf "http://$ADDR/healthz" >/dev/null 2>&1 && break
    sleep 0.2
done
curl -sf "http://$ADDR/healthz" >/dev/null || { echo "server did not come up" >&2; exit 1; }

"$BIN/hcload" -addr "http://$ADDR" -profile "$PROFILE" \
    -tasks "$TASKS" -scale "$SCALE" -seed "$SEED" -no-drain

# Metrics lint + trace completeness, against both the service listener
# and the debug listener (the debug mux shares the service handler). The
# dynamic-membership and rebalancer families must be present even on a
# server that saw no churn.
REQUIRED_FAMILIES=taskdrop_membership_ops_total,taskdrop_membership_live_machines,taskdrop_membership_removed_machines,taskdrop_membership_degraded,taskdrop_membership_shed_total,taskdrop_rebalance_moves_total,taskdrop_chain_invalidations_total,taskdrop_chain_pinned_bytes
"$BIN/obslint" -metrics "http://$ADDR/metrics" -require "$REQUIRED_FAMILIES" -traces "http://$ADDR/debug/traces" -min-traces 1
"$BIN/obslint" -metrics "http://$DEBUG_ADDR/metrics" -require "$REQUIRED_FAMILIES" -traces "http://$DEBUG_ADDR/debug/traces" -min-traces 1
echo "metrics lint clean; traces complete"

# Steady-state chain-cache effectiveness: the persistent per-machine
# caches must be serving warm roots (signature-stable across events) and
# a healthy share of warm edges. The floors are deliberately loose —
# they catch the cache being disabled or thrashing, not tuning drift.
metrics=$(curl -sf "http://$ADDR/metrics")
read -r root_hits edge_hits edge_misses <<EOF
$(echo "$metrics" | awk '
    /^taskdrop_chain_cache_hits_total\{kind="root"\}/   { rh = $2 }
    /^taskdrop_chain_cache_hits_total\{kind="edge"\}/   { eh = $2 }
    /^taskdrop_chain_cache_misses_total\{kind="edge"\}/ { em = $2 }
    END { print rh+0, eh+0, em+0 }')
EOF
[ "$root_hits" -gt 0 ] || { echo "FAIL: no warm root hits — persistent chain caches never reused" >&2; exit 1; }
rate=$(( 100 * edge_hits / (edge_hits + edge_misses) ))
[ "$rate" -ge 20 ] || { echo "FAIL: chain edge hit rate ${rate}% < 20%" >&2; exit 1; }
echo "chain cache warm: $root_hits root hits, edge hit rate ${rate}%"

# The pprof surface answers on the debug listener only.
curl -sf "http://$DEBUG_ADDR/debug/pprof/profile?seconds=1" -o "$BIN/profile.pb.gz"
[ -s "$BIN/profile.pb.gz" ] || { echo "FAIL: empty CPU profile" >&2; exit 1; }
echo "pprof profile responds ($(wc -c <"$BIN/profile.pb.gz") bytes)"

echo "stopping server (pid $SERVER_PID) with SIGTERM"
kill -TERM "$SERVER_PID"
wait "$SERVER_PID" || true
SERVER_PID=""

# With sample-every-1 tracing, every decision carries stage timings in
# the journal. A sequence number lives on exactly one shard; try all.
audit=""
for s in 0 1 2 3; do
    if out=$("$BIN/hcreplay" -dir "$JDIR" -shard "$s" -decision 100 2>/dev/null); then
        audit="$out"
        break
    fi
done
[ -n "$audit" ] || { echo "FAIL: no shard could audit decision 100" >&2; exit 1; }
echo "$audit"
echo "$audit" | grep -q "recorded stage timings (offsets from request receipt)" ||
    { echo "FAIL: audit printed no recorded stage timings" >&2; exit 1; }
for stage in route wait calculus ack; do
    echo "$audit" | grep -q "  $stage" ||
        { echo "FAIL: audit timings lack stage $stage" >&2; exit 1; }
done

echo "OK: metrics lint clean, traces complete, pprof live, audit shows stage timings"

#!/usr/bin/env bash
# Replay-determinism smoke: run a journaling hcserve through a full load,
# shut it down gracefully with SIGTERM, and require (1) `hcreplay -verify`
# to re-derive every recorded decision, event and checkpoint from scratch
# with nothing left past a torn tail (a clean shutdown writes a final
# checkpoint, so recovery replays nothing), and (2) the audit mode to
# explain a specific decision from the log alone.
#
# Usage: scripts/replay_smoke.sh
set -euo pipefail

PROFILE=video
TASKS=30000
SCALE=0.05
SEED=1
ADDR=127.0.0.1:18190

BIN="$(mktemp -d)"
JDIR="$(mktemp -d)"
SERVER_PID=""
cleanup() {
    if [ -n "$SERVER_PID" ]; then kill -9 "$SERVER_PID" 2>/dev/null || true; fi
    rm -rf "$BIN" "$JDIR"
}
trap cleanup EXIT

go build -o "$BIN" ./cmd/hcserve ./cmd/hcload ./cmd/hcreplay

"$BIN/hcserve" -addr "$ADDR" -profile "$PROFILE" -mapper PAM -dropper heuristic \
    -shards 2 -router rr -journal-dir "$JDIR" -fsync interval -snapshot-every 400 &
SERVER_PID=$!
for _ in $(seq 1 50); do
    curl -sf "http://$ADDR/healthz" >/dev/null 2>&1 && break
    sleep 0.2
done

"$BIN/hcload" -addr "http://$ADDR" -profile "$PROFILE" \
    -tasks "$TASKS" -scale "$SCALE" -seed "$SEED" -no-drain

echo "stopping server (pid $SERVER_PID) with SIGTERM"
kill -TERM "$SERVER_PID"
wait "$SERVER_PID" || true
SERVER_PID=""

verify=$("$BIN/hcreplay" -dir "$JDIR" -verify)
echo "$verify"
if echo "$verify" | grep -q "torn tail"; then
    echo "FAIL: graceful shutdown left uncommitted derived records" >&2
    exit 1
fi
if ! echo "$verify" | grep -q "journal verified"; then
    echo "FAIL: verification did not pass" >&2
    exit 1
fi

# A sequence number lives on exactly one shard; try both.
audit=$("$BIN/hcreplay" -dir "$JDIR" -shard 0 -decision 100 2>/dev/null) ||
    audit=$("$BIN/hcreplay" -dir "$JDIR" -shard 1 -decision 100)
echo "$audit"
echo "$audit" | grep -q "replayed decision:" || { echo "FAIL: audit produced no decision" >&2; exit 1; }
echo "$audit" | grep -q "logged decision:   decision seq=100" || { echo "FAIL: audit found no logged decision" >&2; exit 1; }

#!/usr/bin/env bash
# Shard-matrix smoke: replay a trace through `hcserve -shards 4` with
# `hcload` and require the achieved robustness to match the offline
# simulator within tolerance. Sharding changes the mapper's view (each
# decision scans shard-local machines only), so exact equality is not
# expected; staying within a few robustness points of the global scheduler
# is the architecture's contract (observed gap ≈ 0.3 pp on the reference
# host, tolerance 10 pp absorbs host and profile variance).
#
# Usage: scripts/shard_smoke.sh [shards] [router] [tolerance_pp]
set -euo pipefail

SHARDS="${1:-4}"
ROUTER="${2:-p2c}"
TOL="${3:-10}"
PROFILE=video
TASKS=30000
SCALE=0.05
SEED=1
ADDR=127.0.0.1:18184

BIN="$(mktemp -d)"
SERVER_PID=""
cleanup() {
    if [ -n "$SERVER_PID" ]; then kill "$SERVER_PID" 2>/dev/null || true; fi
    rm -rf "$BIN"
}
trap cleanup EXIT

go build -o "$BIN" ./cmd/hcsim ./cmd/hcserve ./cmd/hcload

offline=$("$BIN/hcsim" -profile "$PROFILE" -mapper PAM -dropper heuristic \
    -tasks "$TASKS" -scale "$SCALE" -seed "$SEED" | awk '/^robustness/{print $2}')
echo "offline robustness:   $offline %"

"$BIN/hcserve" -addr "$ADDR" -profile "$PROFILE" -mapper PAM -dropper heuristic \
    -shards "$SHARDS" -router "$ROUTER" -boundary 100 &
SERVER_PID=$!
for _ in $(seq 1 50); do
    curl -sf "http://$ADDR/healthz" >/dev/null 2>&1 && break
    sleep 0.2
done

out=$("$BIN/hcload" -addr "http://$ADDR" -profile "$PROFILE" \
    -tasks "$TASKS" -scale "$SCALE" -seed "$SEED")
echo "$out"
online=$(echo "$out" | awk '/^achieved robustness/{print $3}')

echo "online ($SHARDS shards, $ROUTER): $online %"
awk -v a="$offline" -v b="$online" -v tol="$TOL" 'BEGIN {
    d = a - b; if (d < 0) d = -d
    printf "robustness gap:       %.2f pp (tolerance %.1f)\n", d, tol
    exit (d <= tol) ? 0 : 1
}'

#!/usr/bin/env bash
# Multi-process smoke: an hcrouter fronting two journaling hcserve
# backends, each owning half the machine partition. Requires (1) a full
# replay through the router to achieve robustness within tolerance of the
# offline simulator, with zero duplicate-acked tasks, (2) a duplicated
# decision-ID request to return the byte-identical original decisions,
# (3) the router's /metrics to lint clean against the Prometheus text
# grammar, and (4) on a fresh fleet, kill -9 of one backend mid-replay to
# shed its traffic onto the survivor — the retried replay must still
# complete with zero duplicate acks.
#
# Usage: scripts/multiproc_smoke.sh [tolerance_pp]
set -euo pipefail

TOL="${1:-10}"
PROFILE=video
TASKS=30000
SCALE=0.05
SEED=1
B0=127.0.0.1:18291
B1=127.0.0.1:18292
FRONT=127.0.0.1:18290

BIN="$(mktemp -d)"
JDIR0="$(mktemp -d)"
JDIR1="$(mktemp -d)"
B0_PID=""
B1_PID=""
ROUTER_PID=""
cleanup() {
    for pid in "$B0_PID" "$B1_PID" "$ROUTER_PID"; do
        [ -n "$pid" ] && kill -9 "$pid" 2>/dev/null || true
    done
    rm -rf "$BIN" "$JDIR0" "$JDIR1"
}
trap cleanup EXIT

go build -o "$BIN" ./cmd/hcsim ./cmd/hcserve ./cmd/hcrouter ./cmd/hcload ./cmd/obslint

offline=$("$BIN/hcsim" -profile "$PROFILE" -mapper PAM -dropper heuristic \
    -tasks "$TASKS" -scale "$SCALE" -seed "$SEED" | awk '/^robustness/{print $2}')
echo "offline robustness:   $offline %"

# wait_ready URL — block until /readyz answers 200 (the boot gate: the
# listener binds before journal recovery, answering 503 until serving).
wait_ready() {
    for _ in $(seq 1 100); do
        curl -sf "http://$1/readyz" >/dev/null 2>&1 && return 0
        sleep 0.2
    done
    echo "no 200 from http://$1/readyz" >&2
    return 1
}

start_backend() { # addr journal_dir partition -> pid
    # The daemon's stdout must not inherit the command-substitution pipe,
    # or $(start_backend ...) blocks until the daemon exits.
    "$BIN/hcserve" -addr "$1" -profile "$PROFILE" -mapper PAM -dropper heuristic \
        -partition "$3" -journal-dir "$2" -fsync always -snapshot-every 400 1>&2 &
    echo $!
}

start_fleet() {
    B0_PID=$(start_backend "$B0" "$JDIR0" 0/2)
    B1_PID=$(start_backend "$B1" "$JDIR1" 1/2)
    wait_ready "$B0"
    wait_ready "$B1"
    "$BIN/hcrouter" -addr "$FRONT" -backends "http://$B0,http://$B1" \
        -profile "$PROFILE" -router hash -poll 100ms -retries 2 &
    ROUTER_PID=$!
    wait_ready "$FRONT"
}

stop_fleet() {
    for pid in "$ROUTER_PID" "$B0_PID" "$B1_PID"; do
        [ -n "$pid" ] && kill -TERM "$pid" 2>/dev/null || true
    done
    for pid in "$ROUTER_PID" "$B0_PID" "$B1_PID"; do
        [ -n "$pid" ] && wait "$pid" 2>/dev/null || true
    done
    ROUTER_PID=""; B0_PID=""; B1_PID=""
}

### Phase 1: healthy fleet — replay, idempotency, metrics lint.
start_fleet
echo "fleet up: router $FRONT over $B0 (0/2) and $B1 (1/2)"

# Duplicate decision-ID probe: the same request POSTed twice must return
# byte-identical bodies (the second served from the router's dedup window).
req='{"decision_id":"smoke-dup-1","tasks":[{"type":0,"arrival":0,"deadline":2000}]}'
curl -sf -H 'Content-Type: application/json' -d "$req" "http://$FRONT/v1/decide" >"$BIN/dup1.json"
curl -sf -H 'Content-Type: application/json' -d "$req" "http://$FRONT/v1/decide" >"$BIN/dup2.json"
if ! diff -u "$BIN/dup1.json" "$BIN/dup2.json"; then
    echo "FAIL: duplicate decision-ID responses differ" >&2
    exit 1
fi
echo "duplicate decision-ID request is byte-identical"

out=$("$BIN/hcload" -addr "http://$FRONT" -profile "$PROFILE" \
    -tasks "$TASKS" -scale "$SCALE" -seed "$SEED" -retries 2)
echo "$out"
online=$(echo "$out" | awk '/^achieved robustness/{print $3}')
dups=$(echo "$out" | awk '/^duplicate acks/{print $3}')
[ "$dups" = "0" ] || { echo "FAIL: $dups duplicate acks on a healthy fleet" >&2; exit 1; }
echo "online (2 backends):  $online %"
awk -v a="$offline" -v b="$online" -v tol="$TOL" 'BEGIN {
    d = a - b; if (d < 0) d = -d
    printf "robustness gap:       %.2f pp (tolerance %.1f)\n", d, tol
    exit (d <= tol) ? 0 : 1
}'

"$BIN/obslint" -metrics "http://$FRONT/metrics"
echo "router /metrics lint clean"

stop_fleet

### Phase 2: fresh fleet — kill -9 one backend mid-replay; the router
### sheds its classes onto the survivor and the replay still completes
### with zero duplicate acks.
rm -rf "$JDIR0" "$JDIR1"
JDIR0="$(mktemp -d)"
JDIR1="$(mktemp -d)"
start_fleet
echo "fresh fleet up for the kill test"

( sleep 2 && kill -9 "$B1_PID" 2>/dev/null && echo "killed backend 1 (pid $B1_PID) with SIGKILL" ) &
KILLER=$!

# -speed 2 paces the replay over ~half the trace window (a few seconds),
# so the 2 s kill below lands while requests are still in flight.
out=$("$BIN/hcload" -addr "http://$FRONT" -profile "$PROFILE" \
    -tasks "$TASKS" -scale "$SCALE" -seed "$SEED" -retries 3 -speed 2)
wait "$KILLER" 2>/dev/null || true
B1_PID=""
echo "$out"
online2=$(echo "$out" | awk '/^achieved robustness/{print $3}')
dups2=$(echo "$out" | awk '/^duplicate acks/{print $3}')
[ "$dups2" = "0" ] || { echo "FAIL: $dups2 duplicate acks through the backend kill" >&2; exit 1; }
echo "online (1 backend killed mid-replay): $online2 %"

up=$(curl -sf "http://$FRONT/metrics" | awk '/^taskdrop_router_backend_up{backend="1"}/{print $2}')
[ "$up" = "0" ] || { echo "FAIL: killed backend still marked up ($up)" >&2; exit 1; }
echo "router marked the killed backend down; survivor carried the load"

echo "OK: replay within ${TOL}pp of offline, idempotent duplicates, clean metrics, zero duplicate acks through a backend kill"

#!/usr/bin/env bash
# Crash-recovery smoke: kill -9 a journaling hcserve mid-load, restart it
# on the same journal, and require (1) the recovered /v1/stats to be
# byte-identical to the snapshot scraped just before the kill, (2) the
# resumed replay to finish with robustness within tolerance of the offline
# simulator, and (3) `hcreplay -verify` to prove the log re-derives every
# recorded decision. This is the journal's end-to-end contract: a crashed
# server recovers every shard to its exact pre-crash state.
#
# Usage: scripts/crash_smoke.sh [shards] [tolerance_pp]
set -euo pipefail

SHARDS="${1:-2}"
TOL="${2:-10}"
PROFILE=video
TASKS=30000
SCALE=0.05
SEED=1
CUT=750 # tasks replayed before the kill (of 1500 at this scale)
ADDR=127.0.0.1:18189

BIN="$(mktemp -d)"
JDIR="$(mktemp -d)"
SERVER_PID=""
cleanup() {
    if [ -n "$SERVER_PID" ]; then kill -9 "$SERVER_PID" 2>/dev/null || true; fi
    rm -rf "$BIN" "$JDIR"
}
trap cleanup EXIT

go build -o "$BIN" ./cmd/hcsim ./cmd/hcserve ./cmd/hcload ./cmd/hcreplay

offline=$("$BIN/hcsim" -profile "$PROFILE" -mapper PAM -dropper heuristic \
    -tasks "$TASKS" -scale "$SCALE" -seed "$SEED" | awk '/^robustness/{print $2}')
echo "offline robustness:   $offline %"

serve() {
    "$BIN/hcserve" -addr "$ADDR" -profile "$PROFILE" -mapper PAM -dropper heuristic \
        -shards "$SHARDS" -router rr -boundary 100 \
        -journal-dir "$JDIR" -fsync always -snapshot-every 400 &
    SERVER_PID=$!
    for _ in $(seq 1 50); do
        curl -sf "http://$ADDR/healthz" >/dev/null 2>&1 && return 0
        sleep 0.2
    done
    echo "server did not come up" >&2
    return 1
}

serve
"$BIN/hcload" -addr "http://$ADDR" -profile "$PROFILE" \
    -tasks "$TASKS" -scale "$SCALE" -seed "$SEED" -to "$CUT" -no-drain
curl -sf "http://$ADDR/v1/stats" >"$BIN/pre.json"

echo "killing server (pid $SERVER_PID) with SIGKILL"
kill -9 "$SERVER_PID"
wait "$SERVER_PID" 2>/dev/null || true
SERVER_PID=""

serve
curl -sf "http://$ADDR/v1/stats" >"$BIN/post.json"
if ! diff -u "$BIN/pre.json" "$BIN/post.json"; then
    echo "FAIL: recovered /v1/stats differs from the pre-kill snapshot" >&2
    exit 1
fi
echo "recovered /v1/stats is byte-identical to the pre-kill snapshot"

out=$("$BIN/hcload" -addr "http://$ADDR" -profile "$PROFILE" \
    -tasks "$TASKS" -scale "$SCALE" -seed "$SEED" -from "$CUT")
echo "$out"
online=$(echo "$out" | awk '/^achieved robustness/{print $3}')
# The drain already ran via POST /v1/drain; SIGTERM just lets the server
# exit (it returns the stored result immediately).
kill -TERM "$SERVER_PID" 2>/dev/null || true
wait "$SERVER_PID" 2>/dev/null || true
SERVER_PID=""

echo "online (crashed + recovered): $online %"
awk -v a="$offline" -v b="$online" -v tol="$TOL" 'BEGIN {
    d = a - b; if (d < 0) d = -d
    printf "robustness gap:       %.2f pp (tolerance %.1f)\n", d, tol
    exit (d <= tol) ? 0 : 1
}'

"$BIN/hcreplay" -dir "$JDIR" -verify

#!/usr/bin/env bash
# bench_gate.sh — CI benchmark-regression gate.
#
# Re-runs the two headline hot-path benchmarks and fails when either
# regresses more than TOLERANCE_PCT in ns/op against the recorded
# figures:
#
#   BenchmarkQueueChain  (package root)            vs BENCH_core.json
#   BenchmarkEngineFeed  (internal/service)        vs BENCH_service.json
#
# Recorded figures follow the min-of-runs convention (see the JSON
# notes): this host is a shared 1-CPU VM with ±20-30% run-to-run noise,
# so the gate also takes the minimum across COUNT runs before comparing,
# and the default tolerance is deliberately wider than a quiet host
# would need. Refresh the recordings (and history notes) whenever an
# intentional change moves the numbers.
#
# Usage: scripts/bench_gate.sh [-t tolerance_pct] [-c count]
set -euo pipefail
cd "$(dirname "$0")/.."

TOLERANCE_PCT=10
COUNT=5
while getopts "t:c:" opt; do
  case "$opt" in
    t) TOLERANCE_PCT="$OPTARG" ;;
    c) COUNT="$OPTARG" ;;
    *) echo "usage: $0 [-t tolerance_pct] [-c count]" >&2; exit 2 ;;
  esac
done

# recorded <json> <benchmark-name>: extract the recorded ns_per_op that
# follows the benchmark's "name" line (the files are formatted one key
# per line, which CI also relies on for diff review).
recorded() {
  awk -v name="\"$2\"" '
    $0 ~ "\"name\": " name { found = 1 }
    found && /"ns_per_op"/ { gsub(/[^0-9]/, ""); print; exit }
  ' "$1"
}

# minbench <pkg> <benchmark-regex>: min ns/op across COUNT runs.
minbench() {
  go test "$1" -run xxx -bench "$2" -benchtime 1s -count "$COUNT" 2>&1 |
    awk '/^Benchmark/ { if (min == "" || $3 < min) min = $3 } END { if (min == "") exit 1; print min }'
}

fail=0
gate() { # gate <label> <recorded> <measured>
  local rec="$2" got="$3"
  local limit=$(( rec + rec * TOLERANCE_PCT / 100 ))
  if [ "$got" -gt "$limit" ]; then
    echo "FAIL $1: $got ns/op vs recorded $rec (limit $limit, +${TOLERANCE_PCT}%)"
    fail=1
  else
    echo "ok   $1: $got ns/op vs recorded $rec (limit $limit)"
  fi
}

rec_chain=$(recorded BENCH_core.json BenchmarkQueueChain)
rec_feed=$(recorded BENCH_service.json BenchmarkEngineFeed)
[ -n "$rec_chain" ] && [ -n "$rec_feed" ] || { echo "bench_gate: recorded figures not found" >&2; exit 2; }

got_chain=$(minbench . 'BenchmarkQueueChain$')
gate BenchmarkQueueChain "$rec_chain" "$got_chain"
got_feed=$(minbench ./internal/service/ 'BenchmarkEngineFeed$')
gate BenchmarkEngineFeed "$rec_feed" "$got_feed"

exit "$fail"

package taskdrop

import (
	"github.com/hpcclab/taskdrop/internal/core"
	"github.com/hpcclab/taskdrop/internal/mapping"
	"github.com/hpcclab/taskdrop/internal/pet"
	"github.com/hpcclab/taskdrop/internal/router"
)

// Unified registries. Every named component of the system — mapping
// heuristics, dropping policies and system profiles — resolves through one
// spec grammar shared by the CLI binaries, the experiment harness and the
// Scenario API:
//
//	name
//	name:key=value,flag,key2=value2
//
// Names and keys are case-insensitive; a bare key is a boolean flag.
// Unknown names, unknown parameters and out-of-range values are errors.

// NewMapper resolves a mapper spec. Recognized components: MinMin (alias
// MM), MSD, PAM, FCFS, SJF, EDF, MCT, MET, Sufferage, KPB and Random;
// parameterized forms:
//
//	kpb:percent=<int in (0,100]>
//	random:seed=<int64>
func NewMapper(spec string) (Mapper, error) { return mapping.FromSpec(spec) }

// NewDropper resolves a dropping-policy spec. Recognized components:
//
//	reactdrop (aliases: reactive, none)
//	heuristic:beta=<float ≥1>,eta=<int ≥1>
//	optimal
//	threshold:base=<float in [0,1]>,adaptive[=bool]
//	approx:grace=<ticks ≥0>,beta=<float ≥1>,eta=<int ≥1>
//
// Omitted parameters take the paper's tuned defaults (β=1, η=2, θ=0.25,
// adaptive threshold). An omitted approx grace follows the engine's
// reactive grace window (WithGrace), keeping policy and engine leeway in
// sync automatically.
func NewDropper(spec string) (DropPolicy, error) { return core.PolicyFromSpec(spec) }

// NewProfile resolves a system-profile spec: "spec" (aliases specint, hc;
// parameterized as spec:seed=<int64>), "video" (alias transcoding), or
// "homog" (aliases homogeneous, homo).
func NewProfile(spec string) (Profile, error) { return pet.ProfileFromSpec(spec) }

// NewRouter resolves a shard-routing-policy spec (see WithShards /
// WithRouter). Recognized components:
//
//	rr (aliases: roundrobin, round-robin)
//	mass (aliases: leastmass, least-queue-mass, lqm)
//	p2c:seed=<int64> (aliases: poweroftwo, power-of-two)
//
// "rr" cycles shards; "mass" routes to the least outstanding work; "p2c"
// samples two shards and admits through the one whose robustness estimate
// for the task's class — the expected on-time probability it recently
// delivered — is higher. Policies carry routing state (cursor, RNG), so
// each call constructs a fresh instance.
func NewRouter(spec string) (RouterPolicy, error) { return router.FromSpec(spec) }

// MapperNames lists the built-in mapping heuristics.
func MapperNames() []string { return mapping.Names() }

// DropperNames lists the built-in dropping policies.
func DropperNames() []string { return core.PolicyNames() }

// ProfileNames lists the built-in system profiles.
func ProfileNames() []string { return pet.ProfileNames() }

// RouterNames lists the built-in shard-routing policies.
func RouterNames() []string { return router.Names() }

// MapperByName constructs a mapping heuristic from a name or spec.
//
// Deprecated: use NewMapper; both resolve through the same registry.
func MapperByName(name string) (Mapper, error) { return NewMapper(name) }

// DropperByName constructs a dropping policy from a name or spec — since
// the registries are parameterized, "threshold:base=0.3,adaptive" works
// here too.
//
// Deprecated: use NewDropper; both resolve through the same registry.
func DropperByName(name string) (DropPolicy, error) { return NewDropper(name) }

// Package taskdrop is a Go reproduction of "Autonomous Task Dropping
// Mechanism to Achieve Robustness in Heterogeneous Computing Systems"
// (Mokhtari, Denninnart, Amini Salehi; IPDPS Workshops 2020,
// arXiv:2005.11050).
//
// It provides, end to end:
//
//   - a probabilistic execution-time (PET) model over discrete PMFs and the
//     completion-time calculus of the paper (Eq. 1–3);
//   - the autonomous proactive task-dropping heuristic (η, β), the optimal
//     subset-enumeration dropper, and the threshold baseline of prior work;
//   - a deterministic discrete-event simulator of the paper's batch-mode
//     resource allocation system (bounded machine queues, reactive drops,
//     mapping events);
//   - the mapping heuristics of the evaluation (MinMin, MSD, PAM, FCFS,
//     SJF, EDF and several classic extras);
//   - workload profiles (SPECint-like inconsistent HC system, video
//     transcoding, homogeneous cluster) and Poisson trace generation;
//   - a concurrent, cancellable Scenario API for repeated-trial
//     experiments, and a declarative Sweep API expanding axis grids into
//     paired scenarios with paired-difference statistics — the form in
//     which every figure of §V is declared;
//   - a sharded cluster architecture (WithShards / WithRouter, the
//     Shards and Routers sweep axes, hcserve -shards): machines
//     partition into shard-scoped engines behind pluggable routing
//     policies (round-robin, least-queue-mass, power-of-two-choices over
//     per-class robustness estimates), multiplying decision throughput
//     while preserving the calculus — pruning is shard-local by
//     construction.
//
// # Quick start
//
// The unit of experimentation is a Scenario: one (profile, mapper,
// dropper, workload) combination run for N seeded trials across a worker
// pool, reported as mean ± 95% CI — the paper evaluates everything this
// way (§V-A):
//
//	sc, err := taskdrop.NewScenario("spec",
//		taskdrop.WithMapper("PAM"),
//		taskdrop.WithDropper("heuristic:beta=1,eta=2"),
//		taskdrop.WithTasks(30000),
//		taskdrop.WithTrials(30),
//	)
//	if err != nil { ... }
//	rr, err := sc.Run(context.Background())
//	if err != nil { ... }
//	fmt.Printf("robustness: %s %%\n", rr.Summary.Robustness)
//
// Trials are paired: two scenarios differing only in policy see identical
// arrivals, so their difference is the policy's effect. Run is
// deterministic for a fixed seed regardless of WithWorkers, and stops
// promptly when its context is cancelled. Stream delivers per-trial
// results incrementally; OnTrialDone hooks progress reporting.
//
// Mappers, dropping policies and profiles are resolved through unified
// string registries with a shared parameterized spec grammar
// ("threshold:base=0.3,adaptive" — see NewMapper, NewDropper, NewProfile),
// so CLI flags, experiment figure definitions and API calls all name
// combinations the same way. Custom Mapper and DropPolicy implementations
// plug in through WithMapperImpl and WithDropperPolicy.
//
// # Sweeps
//
// Whole experiment grids are declared with NewSweep: axes (Profiles,
// Mappers, Droppers, Tasks, …) expand into a cross product of scenarios
// that share trace generation by construction, run over one worker pool,
// and — with a Baseline designated — report every cell as a paired mean
// difference with a paired 95% CI, the correct analysis for comparisons
// on identical traces:
//
//	sw, err := taskdrop.NewSweep(
//		taskdrop.Droppers("heuristic", "reactdrop"),
//		taskdrop.Tasks(20000, 30000, 40000),
//		taskdrop.SweepTrials(30),
//		taskdrop.Baseline("reactdrop"),
//	)
//	if err != nil { ... }
//	res, err := sw.Run(ctx)
//	if err != nil { ... }
//	res.Table().Fprint(os.Stdout)
//
// SweepResult renders itself (Table, CSV, JSON, Pivot); every figure of
// the paper's evaluation (internal/expt, cmd/hcexp) is such a declaration.
//
// For one-off single trials the legacy System facade remains:
//
//	sys := taskdrop.SPECSystem()
//	trace := sys.Workload(20000, taskdrop.StandardWindow, taskdrop.DefaultGammaSlack, 1)
//	res, err := sys.Simulate(trace, "PAM", taskdrop.HeuristicDropper())
//
// The deeper APIs live in the internal packages and are re-exported here
// through type aliases, so the whole system is scriptable from this single
// import.
package taskdrop

import (
	"io"

	"github.com/hpcclab/taskdrop/internal/core"
	"github.com/hpcclab/taskdrop/internal/mapping"
	"github.com/hpcclab/taskdrop/internal/pet"
	"github.com/hpcclab/taskdrop/internal/pmf"
	"github.com/hpcclab/taskdrop/internal/router"
	"github.com/hpcclab/taskdrop/internal/runner"
	"github.com/hpcclab/taskdrop/internal/sim"
	"github.com/hpcclab/taskdrop/internal/stats"
	"github.com/hpcclab/taskdrop/internal/workload"
)

// Aliases of the core model types, so callers need only this package.
type (
	// Tick is one point of the discrete time grid (1 ms).
	Tick = pmf.Tick
	// PMF is a discrete probability mass function over Ticks.
	PMF = pmf.PMF
	// Impulse is one (time, probability) mass point of a PMF.
	Impulse = pmf.Impulse
	// Profile declares an HC system (task types × machine types, means,
	// machine counts, prices).
	Profile = pet.Profile
	// Matrix is a built PET matrix.
	Matrix = pet.Matrix
	// TaskType indexes PET rows; MachineType indexes PET columns.
	TaskType = pet.TaskType
	// MachineType indexes PET columns.
	MachineType = pet.MachineType
	// WorkloadConfig parameterizes trace generation.
	WorkloadConfig = workload.Config
	// Trace is a generated arrival sequence.
	Trace = workload.Trace
	// Task is one arriving task of a trace.
	Task = workload.Task
	// Result summarizes one simulated trial.
	Result = sim.Result
	// Summary is the mean ± 95% CI aggregation of a scenario's trials.
	Summary = runner.Aggregate
	// StatSummary is one mean ± 95% CI statistic within a Summary.
	StatSummary = stats.Summary
	// SimConfig tunes the simulation engine.
	SimConfig = sim.Config
	// FailureConfig enables machine failure injection (see WithFailures).
	FailureConfig = sim.FailureConfig
	// ChurnConfig enables machine churn injection — runtime membership
	// change (see WithChurn).
	ChurnConfig = sim.ChurnConfig
	// ChurnEvent is one timed membership change of a generated churn plan.
	ChurnEvent = sim.ChurnEvent
	// Engine is the single-trial simulation engine (see Scenario.Engine).
	Engine = sim.Engine
	// TypeBreakdown is Engine.Breakdown's per-task-type statistics.
	TypeBreakdown = sim.TypeBreakdown
	// MachineBreakdown is Engine.Breakdown's per-machine statistics.
	MachineBreakdown = sim.MachineBreakdown
	// Mapper assigns batch tasks to machine queues.
	Mapper = sim.Mapper
	// MappingEvent is a Mapper's window onto the system at one event.
	MappingEvent = sim.MappingEvent
	// Machine is one simulated machine with its bounded queue.
	Machine = sim.Machine
	// MachineSpec describes a physical machine (type, name, price).
	MachineSpec = pet.MachineSpec
	// TaskState is the simulator's record of one task.
	TaskState = sim.TaskState
	// QueueTask is the calculus' view of one queue entry.
	QueueTask = core.QueueTask
	// DropPolicy decides proactive drops per machine queue.
	DropPolicy = core.Policy
	// DropContext carries the state a DropPolicy consults.
	DropContext = core.Context
	// Calculus evaluates completion-time PMFs and chances of success.
	Calculus = core.Calculus
	// RouterPolicy picks the admission shard for each arriving task of a
	// sharded cluster (see WithShards / WithRouter / NewRouter).
	RouterPolicy = router.Policy
	// ShardView is the lock-free state a RouterPolicy consults per shard.
	ShardView = router.ShardView
	// Cluster is a set of shard-scoped engines behind a routing policy.
	Cluster = sim.Cluster
)

// Workload and tuning constants of the paper's evaluation.
const (
	// StandardWindow is the arrival window of the standard workloads.
	StandardWindow = workload.StandardWindow
	// DefaultGammaSlack is the deadline slack coefficient γ.
	DefaultGammaSlack = workload.DefaultGammaSlack
	// DefaultEta is the tuned effective depth η = 2 (§V-C).
	DefaultEta = core.DefaultEta
	// DefaultBeta is the tuned robustness improvement factor β = 1 (§V-D).
	DefaultBeta = core.DefaultBeta
)

// System bundles a built PET matrix with engine configuration — the
// legacy single-trial facade, kept as a thin shim over the same internals
// the Scenario API uses. New code should prefer NewScenario.
type System struct {
	// Matrix is the built PET matrix.
	Matrix *Matrix
	// Config is the engine configuration used by Simulate.
	Config SimConfig
}

// NewSystem builds a System from a profile. The seed drives PET sampling,
// making the system fully reproducible.
func NewSystem(p Profile, seed int64) *System {
	return &System{
		Matrix: pet.Build(p, seed, pet.DefaultBuildOptions()),
		Config: sim.DefaultConfig(),
	}
}

// SPECSystem returns the paper's primary evaluation system: twelve
// SPECint-like task types on eight inconsistently heterogeneous machines.
func SPECSystem() *System {
	return NewSystem(pet.SPECProfile(pet.DefaultProfileSeed), pet.DefaultProfileSeed)
}

// VideoSystem returns the §V-H validation system: four video transcoding
// task types on four AWS VM types (two machines each).
func VideoSystem() *System {
	return NewSystem(pet.VideoProfile(), pet.DefaultProfileSeed)
}

// HomogeneousSystem returns the §V-E control system: eight identical
// machines.
func HomogeneousSystem() *System {
	return NewSystem(pet.HomogeneousProfile(), pet.DefaultProfileSeed)
}

// Workload generates a Poisson arrival trace of totalTasks over window
// ticks with deadline slack γ. The same (system, seed) pair always yields
// the same trace, including pre-drawn realized execution times.
func (s *System) Workload(totalTasks int, window Tick, gamma float64, seed int64) *Trace {
	return workload.Generate(s.Matrix, workload.Config{
		TotalTasks: totalTasks,
		Window:     window,
		GammaSlack: gamma,
	}, seed)
}

// Simulate runs one trial with a mapping heuristic chosen by registry
// spec (see NewMapper) and the given dropping policy (nil = reactive
// only). For repeated-trial experiments prefer NewScenario.
func (s *System) Simulate(tr *Trace, mapperSpec string, dropper DropPolicy) (*Result, error) {
	m, err := mapping.FromSpec(mapperSpec)
	if err != nil {
		return nil, err
	}
	return s.SimulateWith(tr, m, dropper), nil
}

// SimulateWith runs one trial with an explicit Mapper implementation —
// the extension point for custom scheduling research.
func (s *System) SimulateWith(tr *Trace, m Mapper, dropper DropPolicy) *Result {
	return sim.New(s.Matrix, tr, m, dropper, s.Config).Run()
}

// HeuristicDropper returns the paper's autonomous proactive dropping
// heuristic with the tuned parameters η=2, β=1.
func HeuristicDropper() DropPolicy { return core.NewHeuristic() }

// HeuristicDropperWith returns the heuristic with explicit β ≥ 1 and
// η ≥ 1.
func HeuristicDropperWith(beta float64, eta int) DropPolicy {
	return core.Heuristic{Beta: beta, Eta: eta}
}

// OptimalDropper returns the optimal subset-enumeration dropper (§IV-D).
func OptimalDropper() DropPolicy { return core.Optimal{} }

// ThresholdDropper returns the prior-work baseline: prune tasks whose
// chance of success falls below base, adapted to load when adaptive.
func ThresholdDropper(base float64, adaptive bool) DropPolicy {
	return core.Threshold{Base: base, Adaptive: adaptive}
}

// ReactiveDropper returns the no-proactive-dropping baseline.
func ReactiveDropper() DropPolicy { return core.ReactiveOnly{} }

// SPECProfile, VideoProfile and HomogeneousProfile re-export the raw
// profile constructors for callers who want to modify them before
// NewSystem.
func SPECProfile(seed int64) Profile { return pet.SPECProfile(seed) }

// VideoProfile returns the video transcoding profile.
func VideoProfile() Profile { return pet.VideoProfile() }

// HomogeneousProfile returns the homogeneous cluster profile.
func HomogeneousProfile() Profile { return pet.HomogeneousProfile() }

// NewCalculus exposes the completion-time calculus over a system's PET for
// callers building custom mappers or droppers. The calculus is not safe
// for concurrent use.
func NewCalculus(m *Matrix) *Calculus { return core.NewCalculus(m) }

// FprintBreakdown renders Engine.Breakdown's per-type and per-machine
// statistics as aligned text.
func FprintBreakdown(w io.Writer, types []TypeBreakdown, machines []MachineBreakdown) {
	sim.FprintBreakdown(w, types, machines)
}

module github.com/hpcclab/taskdrop

go 1.24

package taskdrop

import (
	"context"
	"fmt"
	"sync"

	"github.com/hpcclab/taskdrop/internal/core"
	"github.com/hpcclab/taskdrop/internal/mapping"
	"github.com/hpcclab/taskdrop/internal/pet"
	"github.com/hpcclab/taskdrop/internal/router"
	"github.com/hpcclab/taskdrop/internal/runner"
	"github.com/hpcclab/taskdrop/internal/sim"
	"github.com/hpcclab/taskdrop/internal/workload"
)

// Scenario is a fully specified, repeatable experiment: one system
// profile, one mapper, one dropping policy and one workload shape,
// simulated for a number of seeded trials. Build it with NewScenario and
// execute it with Run (blocking, aggregated) or Stream (incremental).
//
// Trials are paired by construction: trial t always uses seed Seed+t for
// trace generation, so two scenarios differing only in policy see
// identical arrivals — the comparison discipline of the paper's
// evaluation (§V-A). Aggregation is in trial order, which makes a
// scenario's RunResult fully deterministic regardless of WithWorkers.
type Scenario struct {
	profileSpec string

	mapperSpec    string
	mapperSpecSet bool
	mapperImpl    Mapper
	mapperImplSet bool

	dropperSpec    string
	dropperSpecSet bool
	dropperImpl    DropPolicy
	dropperImplSet bool
	dropper        DropPolicy

	trials      int
	seed        int64
	tasks       int
	window      Tick
	gamma       float64
	queueCap    int
	grace       Tick
	failures    FailureConfig
	churn       ChurnConfig
	workers     int
	maxImpulses int
	shards      int
	routerSpec  string
	onTrial     func(trial int, res *Result)

	// genTrace, when set, replaces workload.Generate for trace creation —
	// the trace-pairing hook: a Sweep installs a shared memoizing generator
	// here so every cell with the same (profile, workload, seed) receives
	// the one trace instance, making pairing an object identity instead of
	// a happy accident of determinism.
	genTrace func(profileSpec string, m *Matrix, cfg workload.Config, seed int64) *workload.Trace

	buildOnce sync.Once
	matrix    *Matrix
}

// ScenarioOption configures a Scenario under construction; all validation
// happens in NewScenario.
type ScenarioOption func(*Scenario)

// WithMapper selects the mapping heuristic by registry spec, e.g. "PAM",
// "MinMin" or "kpb:percent=30" (see NewMapper for the grammar).
func WithMapper(spec string) ScenarioOption {
	return func(s *Scenario) { s.mapperSpec = spec; s.mapperSpecSet = true }
}

// WithMapperImpl plugs in a custom Mapper implementation. With more than
// one worker the same value is shared across concurrent trials, so custom
// mappers must be stateless or safe for concurrent use; built-in mappers
// selected by spec are constructed fresh per trial and have no such
// requirement.
func WithMapperImpl(m Mapper) ScenarioOption {
	return func(s *Scenario) { s.mapperImpl = m; s.mapperImplSet = true }
}

// WithDropper selects the dropping policy by registry spec, e.g.
// "heuristic:beta=1.5,eta=3" or "threshold:base=0.3,adaptive" (see
// NewDropper for the grammar). The default is "reactdrop" — no proactive
// dropping.
func WithDropper(spec string) ScenarioOption {
	return func(s *Scenario) { s.dropperSpec = spec; s.dropperSpecSet = true }
}

// WithDropperPolicy plugs in a custom DropPolicy implementation. Like
// WithMapperImpl, the value is shared across concurrent trials and must be
// safe for concurrent use (the built-in policies are stateless values).
func WithDropperPolicy(p DropPolicy) ScenarioOption {
	return func(s *Scenario) { s.dropperImpl = p; s.dropperImplSet = true }
}

// WithTrials sets the number of seeded trials (default 1; the paper
// reports 30).
func WithTrials(n int) ScenarioOption {
	return func(s *Scenario) { s.trials = n }
}

// WithSeed sets the base seed; trial t generates its trace with seed+t
// (default 1).
func WithSeed(seed int64) ScenarioOption {
	return func(s *Scenario) { s.seed = seed }
}

// WithTasks sets the number of arriving tasks per trial — the paper's
// oversubscription level (default 30000).
func WithTasks(n int) ScenarioOption {
	return func(s *Scenario) { s.tasks = n }
}

// WithWindow sets the arrival window in ticks (default StandardWindow).
func WithWindow(w Tick) ScenarioOption {
	return func(s *Scenario) { s.window = w }
}

// WithGamma sets the deadline slack coefficient γ (default
// DefaultGammaSlack).
func WithGamma(gamma float64) ScenarioOption {
	return func(s *Scenario) { s.gamma = gamma }
}

// WithQueueCap sets the machine queue bound, including the running task
// (default 6, the paper's setting).
func WithQueueCap(n int) ScenarioOption {
	return func(s *Scenario) { s.queueCap = n }
}

// WithFailures enables machine failure injection. The config's Seed is
// offset by the trial index so failure schedules vary with the workload
// while staying reproducible.
func WithFailures(fc FailureConfig) ScenarioOption {
	return func(s *Scenario) { s.failures = fc }
}

// WithChurn enables machine churn injection: a deterministic plan of
// remove/revive membership events (GenerateChurn) is applied to the trial
// while it feeds — the offline analogue of the service's runtime machine
// churn, with removed queues handed back to the batch. The config's Seed
// is offset by the trial index, like WithFailures. Churn differs from
// failures: a failed machine's queue is lost and rebuilt by the recovery
// model, a churned machine leaves gracefully with its queue handed off.
func WithChurn(cc ChurnConfig) ScenarioOption {
	return func(s *Scenario) { s.churn = cc }
}

// WithGrace sets the reactive-dropping grace window of the
// approximate-computing extension; pair it with the "approx" dropper so
// policy and engine assume the same leeway.
func WithGrace(g Tick) ScenarioOption {
	return func(s *Scenario) { s.grace = g }
}

// WithWorkers bounds trial parallelism (default 0 = GOMAXPROCS).
func WithWorkers(n int) ScenarioOption {
	return func(s *Scenario) { s.workers = n }
}

// WithMaxImpulses overrides the calculus' PMF compaction budget (default
// 0 = pmf.DefaultMaxImpulses). Smaller budgets trade completion-time
// accuracy for speed; the ext-budget experiment sweeps this knob.
func WithMaxImpulses(n int) ScenarioOption {
	return func(s *Scenario) { s.maxImpulses = n }
}

// WithShards partitions the system's machines into n independent
// admission shards (round-robin by machine, so each shard keeps a
// proportional mix of machine types) with a routing policy in front —
// the sharded cluster architecture (default 1 = the paper's single
// global scheduler; n must not exceed the machine count). Probabilistic
// pruning is shard-local by construction, so the calculus inside each
// shard is the paper's calculus on a smaller system; with n > 1 the
// boundary-exclusion window is split evenly across shards and failure
// seeds are offset per shard. A 1-shard scenario runs the classic engine
// bit-identically.
func WithShards(n int) ScenarioOption {
	return func(s *Scenario) { s.shards = n }
}

// WithRouter selects the shard-routing policy by registry spec: "rr"
// (round-robin), "mass" (least queue mass) or "p2c[:seed=..]"
// (power-of-two-choices over per-class robustness estimates; see
// NewRouter for the grammar). The default is "rr"; irrelevant unless
// WithShards(n > 1).
func WithRouter(spec string) ScenarioOption {
	return func(s *Scenario) { s.routerSpec = spec }
}

// OnTrialDone registers a progress hook invoked once per completed trial,
// possibly concurrently from several workers. The hook must not mutate
// the Result.
func OnTrialDone(fn func(trial int, res *Result)) ScenarioOption {
	return func(s *Scenario) { s.onTrial = fn }
}

// NewScenario builds a Scenario from a profile spec ("spec", "video",
// "homog", or parameterized like "spec:seed=7" — see NewProfile) and
// options, validating every registry spec and numeric range up front.
// Defaults reproduce the paper's primary configuration: PAM mapping, no
// proactive dropping, 30000 tasks over StandardWindow with γ =
// DefaultGammaSlack, queue capacity 6, one trial.
func NewScenario(profile string, opts ...ScenarioOption) (*Scenario, error) {
	s := &Scenario{
		profileSpec: profile,
		mapperSpec:  "PAM",
		dropperSpec: "reactdrop",
		trials:      1,
		seed:        1,
		tasks:       30000,
		window:      StandardWindow,
		gamma:       DefaultGammaSlack,
		queueCap:    6,
		shards:      1,
		routerSpec:  "rr",
	}
	for _, opt := range opts {
		opt(s)
	}
	if err := s.validate(); err != nil {
		return nil, err
	}
	return s, nil
}

// validate resolves every registry spec and checks numeric ranges, so a
// malformed scenario fails at construction instead of mid-run.
func (s *Scenario) validate() error {
	prof, err := pet.ProfileFromSpec(s.profileSpec)
	if err != nil {
		return err
	}
	if s.shards < 1 || s.shards > prof.TotalMachines() {
		return fmt.Errorf("taskdrop: WithShards(%d) for %d machines, want 1..%d",
			s.shards, prof.TotalMachines(), prof.TotalMachines())
	}
	if _, err := router.FromSpec(s.routerSpec); err != nil {
		return err
	}
	if s.mapperSpecSet && s.mapperImplSet {
		return fmt.Errorf("taskdrop: scenario sets both WithMapper and WithMapperImpl")
	}
	if s.mapperImplSet && s.mapperImpl == nil {
		return fmt.Errorf("taskdrop: WithMapperImpl(nil); use a WithMapper spec instead")
	}
	if s.mapperImpl == nil {
		if _, err := mapping.FromSpec(s.mapperSpec); err != nil {
			return err
		}
	}
	if s.dropperSpecSet && s.dropperImplSet {
		return fmt.Errorf("taskdrop: scenario sets both WithDropper and WithDropperPolicy")
	}
	if s.dropperImplSet {
		if s.dropperImpl == nil {
			return fmt.Errorf("taskdrop: WithDropperPolicy(nil); use the default \"reactdrop\" spec instead")
		}
		s.dropper = s.dropperImpl
	} else {
		d, err := core.PolicyFromSpec(s.dropperSpec)
		if err != nil {
			return err
		}
		s.dropper = d
	}
	switch {
	case s.trials < 1:
		return fmt.Errorf("taskdrop: WithTrials(%d), want >= 1", s.trials)
	case s.tasks < 1:
		return fmt.Errorf("taskdrop: WithTasks(%d), want >= 1", s.tasks)
	case s.window < 1:
		return fmt.Errorf("taskdrop: WithWindow(%d), want >= 1", s.window)
	case s.gamma < 0:
		return fmt.Errorf("taskdrop: WithGamma(%v), want >= 0", s.gamma)
	case s.queueCap < 1:
		return fmt.Errorf("taskdrop: WithQueueCap(%d), want >= 1", s.queueCap)
	case s.grace < 0:
		return fmt.Errorf("taskdrop: WithGrace(%d), want >= 0", s.grace)
	case s.churn.MeanInterval < 0 || s.churn.MeanDown < 0:
		return fmt.Errorf("taskdrop: WithChurn mean interval %d / mean down %d, want >= 0",
			s.churn.MeanInterval, s.churn.MeanDown)
	case s.churn.Enabled() && s.churn.MeanDown < 1:
		return fmt.Errorf("taskdrop: WithChurn needs MeanDown >= 1 when enabled (got %d)", s.churn.MeanDown)
	case s.workers < 0:
		return fmt.Errorf("taskdrop: WithWorkers(%d), want >= 0", s.workers)
	case s.maxImpulses < 0:
		return fmt.Errorf("taskdrop: WithMaxImpulses(%d), want >= 0", s.maxImpulses)
	}
	return nil
}

// Matrix returns the scenario's built PET matrix, resolved through the
// process-wide cache in internal/pet (built once per profile spec across
// all scenarios and services; safe for concurrent use).
func (s *Scenario) Matrix() *Matrix {
	s.buildOnce.Do(func() {
		m, err := pet.CachedMatrix(s.profileSpec)
		if err != nil {
			// Unreachable: validate() resolved the same spec at construction.
			panic(err)
		}
		s.matrix = m
	})
	return s.matrix
}

// WorkloadConfig returns the per-trial workload shape.
func (s *Scenario) WorkloadConfig() WorkloadConfig {
	return workload.Config{TotalTasks: s.tasks, Window: s.window, GammaSlack: s.gamma}
}

// newMapper returns the mapper for one trial: custom implementations are
// shared, spec-selected mappers are constructed fresh so stateful built-ins
// (e.g. Random) never race across workers.
func (s *Scenario) newMapper() (Mapper, error) {
	if s.mapperImpl != nil {
		return s.mapperImpl, nil
	}
	return mapping.FromSpec(s.mapperSpec)
}

// simConfig assembles the engine configuration for one trial.
func (s *Scenario) simConfig(trial int) SimConfig {
	cfg := sim.DefaultConfig()
	cfg.QueueCap = s.queueCap
	cfg.ReactiveGrace = s.grace
	if s.failures.Enabled() {
		cfg.Failures = s.failures
		cfg.Failures.Seed = s.failures.Seed + int64(trial)
	}
	return cfg
}

// Trace returns the workload trace trial t runs: generated from the
// scenario's matrix, workload shape and seed+t, through the sweep's
// shared trace cache when the scenario is a sweep cell. Two scenarios
// differing only in policy return identical traces for the same trial —
// the pairing the evaluation methodology rests on.
func (s *Scenario) Trace(trial int) (*Trace, error) {
	if trial < 0 || trial >= s.trials {
		return nil, fmt.Errorf("taskdrop: trial %d out of range [0,%d)", trial, s.trials)
	}
	return s.trace(trial), nil
}

// trace generates (or fetches, under a sweep) the trial's trace.
func (s *Scenario) trace(trial int) *workload.Trace {
	m := s.Matrix()
	cfg := s.WorkloadConfig()
	seed := s.seed + int64(trial)
	if s.genTrace != nil {
		return s.genTrace(s.profileSpec, m, cfg, seed)
	}
	return workload.Generate(m, cfg, seed)
}

// Engine builds the simulation engine for one trial of the scenario, for
// callers that need post-run introspection (per-task states, per-type and
// per-machine breakdowns) beyond what Result carries. The engine is
// always the classic unsharded one — it ignores WithShards; sharded
// introspection goes through sim.Cluster (see WithShards).
func (s *Scenario) Engine(trial int) (*Engine, error) {
	if trial < 0 || trial >= s.trials {
		return nil, fmt.Errorf("taskdrop: trial %d out of range [0,%d)", trial, s.trials)
	}
	mapper, err := s.newMapper()
	if err != nil {
		return nil, err
	}
	eng := sim.New(s.Matrix(), s.trace(trial), mapper, s.dropper, s.simConfig(trial))
	if s.maxImpulses > 0 {
		eng.Calc().MaxImpulses = s.maxImpulses
	}
	return eng, nil
}

// runTrial executes one seeded trial: the classic trace-driven engine for
// the default single-shard scenario, the sharded cluster otherwise.
func (s *Scenario) runTrial(ctx context.Context, trial int) (*Result, error) {
	var res *Result
	var err error
	if s.shards > 1 || s.churn.Enabled() {
		// Churn always runs on the cluster driver, even single-shard: the
		// membership operations live on the open engine underneath it. With
		// an empty plan the 1-shard cluster is bit-identical to the classic
		// engine.
		res, err = s.runClusterTrial(ctx, trial)
	} else {
		var eng *Engine
		eng, err = s.Engine(trial)
		if err != nil {
			return nil, err
		}
		res, err = eng.RunContext(ctx)
	}
	if err != nil {
		return nil, err
	}
	if s.onTrial != nil {
		s.onTrial(trial, res)
	}
	return res, nil
}

// runClusterTrial executes one trial on a sharded cluster: the trace is
// routed task-by-task across shard-scoped open engines by the scenario's
// routing policy, then the shards drain and their results merge. The run
// is single-goroutine and fully deterministic for a fixed (seed, shard
// count, router spec); trial-level parallelism still comes from the
// worker pool.
func (s *Scenario) runClusterTrial(ctx context.Context, trial int) (*Result, error) {
	pol, err := router.FromSpec(s.routerSpec)
	if err != nil {
		return nil, err
	}
	cl, err := sim.NewCluster(s.Matrix(), s.shards, pol, func(int) (sim.Mapper, core.Policy, error) {
		m, err := s.newMapper()
		if err != nil {
			return nil, nil, err
		}
		return m, s.dropper, nil
	}, s.simConfig(trial))
	if err != nil {
		return nil, err
	}
	if s.maxImpulses > 0 {
		for _, eng := range cl.Shards() {
			eng.Calc().MaxImpulses = s.maxImpulses
		}
	}
	// The churn plan is pre-generated per trial (seed offset like failure
	// schedules) and applied at arrival boundaries: every event due at or
	// before a task's arrival fires before that task is routed, so the run
	// stays a pure function of (trace, plan).
	var plan []ChurnEvent
	if s.churn.Enabled() {
		cc := s.churn
		cc.Seed = s.churn.Seed + int64(trial)
		plan = sim.GenerateChurn(len(s.Matrix().Machines()), s.window, cc)
	}
	tr := s.trace(trial)
	done := ctx.Done()
	next := 0
	for i := range tr.Tasks {
		if done != nil && i%256 == 0 {
			select {
			case <-done:
				return nil, ctx.Err()
			default:
			}
		}
		for next < len(plan) && plan[next].At <= tr.Tasks[i].Arrival {
			if err := cl.ApplyChurn(plan[next]); err != nil {
				return nil, err
			}
			next++
		}
		cl.Feed(&tr.Tasks[i])
	}
	// Trailing events (revives past the last arrival) fire before the
	// drain so the drained system reflects the full plan.
	for ; next < len(plan); next++ {
		if err := cl.ApplyChurn(plan[next]); err != nil {
			return nil, err
		}
	}
	return cl.Drain(), nil
}

// RunResult is the outcome of Scenario.Run: the raw per-trial results in
// trial order plus their mean ± 95% CI aggregation.
type RunResult struct {
	Trials  []*Result `json:"trials"`
	Summary Summary   `json:"summary"`
}

// Run executes every trial across the worker pool and blocks until all
// finish. When ctx is cancelled mid-run the in-flight simulations stop
// between events and (nil, ctx.Err()) is returned promptly. The result is
// identical for any WithWorkers value.
func (s *Scenario) Run(ctx context.Context) (*RunResult, error) {
	results := make([]*Result, s.trials)
	s.Matrix() // build once, outside the pool
	err := runner.ForEach(ctx, s.workers, s.trials, func(ctx context.Context, t int) error {
		res, err := s.runTrial(ctx, t)
		if err != nil {
			return err
		}
		results[t] = res
		return nil
	})
	if err != nil {
		return nil, err
	}
	return &RunResult{Trials: results, Summary: runner.Summarize(results)}, nil
}

// TrialOutcome is one element of a Scenario.Stream: a completed trial, or
// (as the final element, with Trial = -1) the error that ended the stream
// early.
type TrialOutcome struct {
	Trial  int     `json:"trial"`
	Result *Result `json:"result,omitempty"`
	Err    error   `json:"-"`
	// Error mirrors Err as text so a streamed outcome survives JSON
	// round-trips (error values don't marshal); empty on success.
	Error string `json:"error,omitempty"`
}

// Stream executes the scenario like Run but delivers each trial's result
// as soon as it completes (in completion order, not trial order). The
// channel is buffered for the whole run — the producer never blocks on a
// slow consumer — and is closed once all trials finish or the run stops
// early; a run that stops early sends a final TrialOutcome carrying the
// error (ctx.Err() on cancellation) before closing.
func (s *Scenario) Stream(ctx context.Context) <-chan TrialOutcome {
	out := make(chan TrialOutcome, s.trials+1)
	go func() {
		defer close(out)
		s.Matrix()
		err := runner.ForEach(ctx, s.workers, s.trials, func(ctx context.Context, t int) error {
			res, err := s.runTrial(ctx, t)
			if err != nil {
				return err
			}
			out <- TrialOutcome{Trial: t, Result: res}
			return nil
		})
		if err != nil {
			out <- TrialOutcome{Trial: -1, Err: err, Error: err.Error()}
		}
	}()
	return out
}

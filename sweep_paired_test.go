package taskdrop

import (
	"bytes"
	"context"
	"encoding/json"
	"testing"

	"github.com/hpcclab/taskdrop/internal/stats"
)

// TestSweepPairedCellsShareTraces is the pairing acceptance test: cells of
// one sweep differing only in policy must see byte-identical traces, and
// the paired-difference CI computed from them must be no wider than the
// independent-samples CI on the same data.
func TestSweepPairedCellsShareTraces(t *testing.T) {
	// Enough trials and tasks that trial-to-trial trace variation (which
	// pairing cancels) dominates: with tiny samples the paired analysis'
	// higher t-critical (df n−1 vs Welch's pooled df) can outweigh weak
	// correlation.
	const trials = 10
	sw, err := NewSweep(
		Profiles("video"),
		Mappers("PAM"),
		Droppers("heuristic", "reactdrop"),
		Tasks(1500),
		Each(WithWindow(10000)),
		SweepTrials(trials),
		SweepSeed(7),
		Baseline("reactdrop"),
	)
	if err != nil {
		t.Fatal(err)
	}
	heur, err := sw.Scenario(0)
	if err != nil {
		t.Fatal(err)
	}
	react, err := sw.Scenario(1)
	if err != nil {
		t.Fatal(err)
	}
	for trial := 0; trial < trials; trial++ {
		ta, err := heur.Trace(trial)
		if err != nil {
			t.Fatal(err)
		}
		tb, err := react.Trace(trial)
		if err != nil {
			t.Fatal(err)
		}
		ba, err := json.Marshal(ta)
		if err != nil {
			t.Fatal(err)
		}
		bb, err := json.Marshal(tb)
		if err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(ba, bb) {
			t.Fatalf("trial %d traces differ between paired cells", trial)
		}
	}
	// Different trials must not share a trace (the pairing is per trial).
	t0, err := heur.Trace(0)
	if err != nil {
		t.Fatal(err)
	}
	t1, err := heur.Trace(1)
	if err != nil {
		t.Fatal(err)
	}
	if t0 == t1 {
		t.Fatal("distinct trials returned the same trace")
	}

	res, err := sw.Run(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	var checked int
	for i := range res.Cells {
		c := &res.Cells[i]
		if c.VsBaseline == nil {
			continue
		}
		base, ok := res.Cell("ReactDrop")
		if !ok {
			t.Fatal("baseline cell missing")
		}
		for _, m := range []Metric{MetricRobustness, MetricNormCost, MetricUtility} {
			paired, _ := c.VsBaseline.Stat(string(m))
			sx, _ := c.Stat(m)
			sy, _ := base.Stat(m)
			indep := stats.IndependentDiff(sx, sy)
			if paired.CI95 > indep.CI95+1e-9 {
				t.Fatalf("metric %s: paired CI %v wider than independent CI %v", m, paired.CI95, indep.CI95)
			}
			checked++
		}
	}
	if checked == 0 {
		t.Fatal("no paired comparisons checked")
	}
}

// TestSweepTraceCacheSharesInstances verifies the trace-pairing hook wires
// paired cells to the one trace instance (identity, not just equality).
func TestSweepTraceCacheSharesInstances(t *testing.T) {
	sw, err := NewSweep(
		Profiles("video"),
		Droppers("heuristic", "optimal", "reactdrop"),
		Tasks(200),
		Each(WithWindow(1500)),
		SweepTrials(2),
	)
	if err != nil {
		t.Fatal(err)
	}
	for trial := 0; trial < 2; trial++ {
		first, err := sw.cells[0].sc.Trace(trial)
		if err != nil {
			t.Fatal(err)
		}
		for _, cell := range sw.cells[1:] {
			tr, err := cell.sc.Trace(trial)
			if err != nil {
				t.Fatal(err)
			}
			if tr != first {
				t.Fatalf("trial %d: cells did not share one trace instance", trial)
			}
		}
	}
	// Run must release the cache — pairing only needs it in flight, and a
	// long-lived Sweep must not pin every generated trace.
	if _, err := sw.Run(context.Background()); err != nil {
		t.Fatal(err)
	}
	sw.traceMu.Lock()
	cached := len(sw.traces)
	sw.traceMu.Unlock()
	if cached != 0 {
		t.Fatalf("trace cache holds %d traces after Run", cached)
	}
}

// TestPivotRejectsDeserializedResult: a SweepResult rebuilt from JSON has
// no grid geometry, so Pivot must fail cleanly instead of panicking.
func TestPivotRejectsDeserializedResult(t *testing.T) {
	sw, err := NewSweep(
		Profiles("video"),
		Droppers("heuristic", "reactdrop"),
		Tasks(100),
		Each(WithWindow(800)),
	)
	if err != nil {
		t.Fatal(err)
	}
	res, err := sw.Run(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	b, err := res.JSON()
	if err != nil {
		t.Fatal(err)
	}
	var decoded SweepResult
	if err := json.Unmarshal(b, &decoded); err != nil {
		t.Fatal(err)
	}
	if _, err := decoded.Pivot(Pivot{Row: "dropper", Col: "tasks"}); err == nil {
		t.Fatal("Pivot on a deserialized result must error")
	}
}

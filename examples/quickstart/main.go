// Quickstart: the paper's flagship comparison as two paired scenarios.
//
// Builds the SPECint-like inconsistently heterogeneous system (12 task
// types × 8 machines) and runs an oversubscribed workload twice — once
// with only reactive dropping and once with the paper's autonomous
// proactive dropping heuristic. Both scenarios share a base seed, so
// every trial sees identical arrivals and the printed delta is the
// paper's headline result, reported as mean ± 95% CI over trials.
//
//	go run ./examples/quickstart
package main

import (
	"context"
	"fmt"
	"log"

	taskdrop "github.com/hpcclab/taskdrop"
)

func main() {
	log.SetFlags(0)

	// 4000 tasks over 26 s ≈ 1.9× the system's capacity — oversubscribed,
	// like the paper's 30k-task level (scaled down 7.5× to finish in
	// seconds).
	scenario := func(dropper string) *taskdrop.Scenario {
		sc, err := taskdrop.NewScenario("spec",
			taskdrop.WithMapper("PAM"),
			taskdrop.WithDropper(dropper),
			taskdrop.WithTasks(4000),
			taskdrop.WithWindow(26_000),
			taskdrop.WithTrials(3),
			taskdrop.WithSeed(1),
		)
		if err != nil {
			log.Fatal(err)
		}
		return sc
	}

	proactive := scenario("heuristic")
	baseline := scenario("reactdrop")

	m := proactive.Matrix()
	fmt.Printf("system: %d task types × %d machines (inconsistent heterogeneity)\n",
		m.NumTaskTypes(), len(m.Machines()))
	fmt.Printf("workload: %d tasks per trial, 3 paired trials\n\n",
		proactive.WorkloadConfig().TotalTasks)

	ctx := context.Background()
	with, err := proactive.Run(ctx)
	if err != nil {
		log.Fatal(err)
	}
	without, err := baseline.Run(ctx)
	if err != nil {
		log.Fatal(err)
	}

	fmt.Println("                          PAM+ReactDrop    PAM+Heuristic")
	fmt.Printf("tasks on time (%%)       %15s  %15s\n",
		without.Summary.Robustness, with.Summary.Robustness)
	fmt.Printf("proactively dropped (%%) %15s  %15s\n",
		without.Summary.ProactivePct, with.Summary.ProactivePct)
	fmt.Printf("reactively dropped (%%)  %15s  %15s\n",
		without.Summary.ReactivePct, with.Summary.ReactivePct)
	fmt.Printf("cost per robustness     %15s  %15s   ($/1000·%%)\n",
		without.Summary.NormCost, with.Summary.NormCost)
	fmt.Printf("\nproactive dropping improved mean robustness by %.1f percentage points\n",
		with.Summary.Robustness.Mean-without.Summary.Robustness.Mean)
}

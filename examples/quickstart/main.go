// Quickstart: simulate the paper's flagship configuration once.
//
// Builds the SPECint-like inconsistently heterogeneous system (12 task
// types × 8 machines), generates one oversubscribed workload, and runs it
// twice on identical arrivals: once with only reactive dropping and once
// with the paper's autonomous proactive dropping heuristic. The printed
// delta is the paper's headline result.
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"log"

	taskdrop "github.com/hpcclab/taskdrop"
)

func main() {
	log.SetFlags(0)

	sys := taskdrop.SPECSystem()
	fmt.Printf("system: %d task types × %d machines (inconsistent heterogeneity)\n",
		sys.Matrix.NumTaskTypes(), len(sys.Matrix.Machines()))

	// 4000 tasks over 26 s ≈ 1.9× the system's capacity — oversubscribed,
	// like the paper's 30k-task level (scaled down 7.5× to finish in
	// seconds).
	trace := sys.Workload(4000, 26_000, taskdrop.DefaultGammaSlack, 1)
	fmt.Printf("workload: %d tasks, %.0f tasks/s, deadline slack γ=%.1f\n\n",
		trace.Len(), trace.ArrivalRate()*1000, taskdrop.DefaultGammaSlack)

	baseline, err := sys.Simulate(trace, "PAM", taskdrop.ReactiveDropper())
	if err != nil {
		log.Fatal(err)
	}
	proactive, err := sys.Simulate(trace, "PAM", taskdrop.HeuristicDropper())
	if err != nil {
		log.Fatal(err)
	}

	fmt.Println("                        PAM+ReactDrop   PAM+Heuristic")
	fmt.Printf("tasks on time (%%)       %12.2f    %12.2f\n",
		baseline.RobustnessPct, proactive.RobustnessPct)
	fmt.Printf("dropped proactively     %12d    %12d\n",
		baseline.MDroppedProactive, proactive.MDroppedProactive)
	fmt.Printf("dropped reactively      %12d    %12d\n",
		baseline.MDroppedReactive, proactive.MDroppedReactive)
	fmt.Printf("cost per robustness     %12.4f    %12.4f   ($/1000·%%)\n",
		baseline.CostPerRobustness*1000, proactive.CostPerRobustness*1000)
	fmt.Printf("\nproactive dropping improved robustness by %.1f percentage points\n",
		proactive.RobustnessPct-baseline.RobustnessPct)
}

// Custom heuristic: extending the Scenario API with your own components.
//
// The dropping mechanism is designed to "cooperate with any mapping
// heuristic" (§V-B). This example demonstrates both extension points:
//
//   - a custom Mapper ("MaxCoS"): assigns the batch task whose best
//     machine yields the highest chance of success, a greedy
//     success-probability scheduler distinct from the built-ins;
//   - a custom DropPolicy ("Panic"): drops every pending task whose chance
//     of success is exactly zero — a conservative, hand-rolled policy.
//
// Both plug into scenarios through WithMapperImpl / WithDropperPolicy and
// are compared against the paper's PAM+Heuristic on identical arrivals
// (all scenarios share the same base seed).
//
//	go run ./examples/customheuristic
package main

import (
	"context"
	"fmt"
	"log"
	"math"

	taskdrop "github.com/hpcclab/taskdrop"
)

// maxCoS is the custom mapping heuristic: one phase, globally greedy on
// the chance of success of the (task, machine) pair. It is stateless, so
// it is safe to share across concurrent trials.
type maxCoS struct{}

func (maxCoS) Name() string { return "MaxCoS" }

func (maxCoS) Map(ev *taskdrop.MappingEvent) {
	for {
		var (
			bestTask *taskdrop.TaskState
			bestMach *taskdrop.Machine
			bestCoS  = -1.0
			bestECT  = math.Inf(1)
		)
		for _, m := range ev.Machines() {
			if ev.FreeSlots(m) == 0 {
				continue
			}
			for _, ts := range ev.Batch() {
				c := ev.CandidateCompletion(ts, m)
				cos := c.MassBefore(ts.Task.Deadline)
				ect := c.Mean()
				if cos > bestCoS+1e-12 || (cos > bestCoS-1e-12 && ect < bestECT) {
					bestTask, bestMach, bestCoS, bestECT = ts, m, cos, ect
				}
			}
		}
		if bestTask == nil {
			return
		}
		ev.Assign(bestTask, bestMach)
	}
}

// panicDropper is the custom dropping policy: prune only tasks that are
// provably doomed (zero chance of success).
type panicDropper struct{}

func (panicDropper) Name() string { return "Panic" }

func (panicDropper) Decide(ctx *taskdrop.DropContext) []int {
	probs := ctx.Calc.SuccessProbs(ctx.Machine, ctx.Now, ctx.Queue)
	first := 0
	if len(ctx.Queue) > 0 && ctx.Queue[0].Running {
		first = 1
	}
	var drops []int
	for i := first; i < len(ctx.Queue); i++ {
		if probs[i] < 1e-9 {
			drops = append(drops, i)
		}
	}
	return drops
}

func main() {
	log.SetFlags(0)

	base := []taskdrop.ScenarioOption{
		taskdrop.WithTasks(3000),
		taskdrop.WithWindow(19_500),
		taskdrop.WithSeed(5),
	}
	combos := []struct {
		label string
		opts  []taskdrop.ScenarioOption
	}{
		{"PAM+Heuristic (paper)", []taskdrop.ScenarioOption{
			taskdrop.WithMapper("PAM"), taskdrop.WithDropper("heuristic")}},
		{"MaxCoS+Heuristic (custom mapper)", []taskdrop.ScenarioOption{
			taskdrop.WithMapperImpl(maxCoS{}), taskdrop.WithDropper("heuristic")}},
		{"PAM+Panic (custom dropper)", []taskdrop.ScenarioOption{
			taskdrop.WithMapper("PAM"), taskdrop.WithDropperPolicy(panicDropper{})}},
		{"MaxCoS+Panic (both custom)", []taskdrop.ScenarioOption{
			taskdrop.WithMapperImpl(maxCoS{}), taskdrop.WithDropperPolicy(panicDropper{})}},
	}

	fmt.Println("3000 tasks on the SPEC system, identical arrivals")
	fmt.Println("\ntasks completed on time (%):")
	for _, c := range combos {
		sc, err := taskdrop.NewScenario("spec", append(append([]taskdrop.ScenarioOption{}, base...), c.opts...)...)
		if err != nil {
			log.Fatal(err)
		}
		rr, err := sc.Run(context.Background())
		if err != nil {
			log.Fatal(err)
		}
		res := rr.Trials[0]
		fmt.Printf("  %-34s %6.2f   (proactive drops: %d)\n",
			c.label, res.RobustnessPct, res.MDroppedProactive)
	}

	fmt.Println("\nany Mapper / DropPolicy pair plugs into the same engine — the")
	fmt.Println("dropping mechanism is an independent component, as the paper argues.")
}

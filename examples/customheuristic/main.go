// Custom heuristic: extending the system through the public API.
//
// The dropping mechanism is designed to "cooperate with any mapping
// heuristic" (§V-B). This example demonstrates both extension points:
//
//   - a custom Mapper ("MaxCoS"): assigns the batch task whose best
//     machine yields the highest chance of success, a greedy
//     success-probability scheduler distinct from the built-ins;
//   - a custom DropPolicy ("Panic"): drops every pending task whose chance
//     of success is exactly zero — a conservative, hand-rolled policy.
//
// Both plug into the simulator unchanged and are compared against the
// paper's PAM+Heuristic on identical arrivals.
//
//	go run ./examples/customheuristic
package main

import (
	"fmt"
	"log"
	"math"

	taskdrop "github.com/hpcclab/taskdrop"
)

// maxCoS is the custom mapping heuristic: one phase, globally greedy on
// the chance of success of the (task, machine) pair.
type maxCoS struct{}

func (maxCoS) Name() string { return "MaxCoS" }

func (maxCoS) Map(ev *taskdrop.MappingEvent) {
	for {
		var (
			bestTask *taskdrop.TaskState
			bestMach *taskdrop.Machine
			bestCoS  = -1.0
			bestECT  = math.Inf(1)
		)
		for _, m := range ev.Machines() {
			if ev.FreeSlots(m) == 0 {
				continue
			}
			for _, ts := range ev.Batch() {
				c := ev.CandidateCompletion(ts, m)
				cos := c.MassBefore(ts.Task.Deadline)
				ect := c.Mean()
				if cos > bestCoS+1e-12 || (cos > bestCoS-1e-12 && ect < bestECT) {
					bestTask, bestMach, bestCoS, bestECT = ts, m, cos, ect
				}
			}
		}
		if bestTask == nil {
			return
		}
		ev.Assign(bestTask, bestMach)
	}
}

// panicDropper is the custom dropping policy: prune only tasks that are
// provably doomed (zero chance of success).
type panicDropper struct{}

func (panicDropper) Name() string { return "Panic" }

func (panicDropper) Decide(ctx *taskdrop.DropContext) []int {
	probs := ctx.Calc.SuccessProbs(ctx.Machine, ctx.Now, ctx.Queue)
	first := 0
	if len(ctx.Queue) > 0 && ctx.Queue[0].Running {
		first = 1
	}
	var drops []int
	for i := first; i < len(ctx.Queue); i++ {
		if probs[i] < 1e-9 {
			drops = append(drops, i)
		}
	}
	return drops
}

func main() {
	log.SetFlags(0)

	sys := taskdrop.SPECSystem()
	trace := sys.Workload(3000, 19_500, taskdrop.DefaultGammaSlack, 5)
	fmt.Printf("workload: %d tasks at %.0f/s on the SPEC system\n\n",
		trace.Len(), trace.ArrivalRate()*1000)

	type combo struct {
		label   string
		mapper  taskdrop.Mapper
		dropper taskdrop.DropPolicy
	}
	pam, err := taskdrop.MapperByName("PAM")
	if err != nil {
		log.Fatal(err)
	}
	combos := []combo{
		{"PAM+Heuristic (paper)", pam, taskdrop.HeuristicDropper()},
		{"MaxCoS+Heuristic (custom mapper)", maxCoS{}, taskdrop.HeuristicDropper()},
		{"PAM+Panic (custom dropper)", pam, panicDropper{}},
		{"MaxCoS+Panic (both custom)", maxCoS{}, panicDropper{}},
	}

	fmt.Println("tasks completed on time (%):")
	for _, c := range combos {
		res := sys.SimulateWith(trace, c.mapper, c.dropper)
		fmt.Printf("  %-34s %6.2f   (proactive drops: %d)\n",
			c.label, res.RobustnessPct, res.MDroppedProactive)
	}

	fmt.Println("\nany Mapper / DropPolicy pair plugs into the same engine — the")
	fmt.Println("dropping mechanism is an independent component, as the paper argues.")
}

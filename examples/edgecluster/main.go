// Edge cluster: proactive dropping on a homogeneous system (§V-E, Fig. 7b).
//
// An edge site runs eight identical nodes (think a disaster-response field
// deployment, the paper's edge-computing motivation [12]): resources cannot
// be scaled out, so oversubscription must be absorbed by scheduling. Even
// without machine heterogeneity, execution times stay uncertain — and the
// dropping mechanism still buys robustness.
//
// The example sweeps the classic homogeneous disciplines (FCFS, SJF, EDF)
// plus PAM, each with and without the proactive dropping heuristic, on
// identical arrivals, then shows how the gain scales with oversubscription.
//
//	go run ./examples/edgecluster
package main

import (
	"fmt"
	"log"

	taskdrop "github.com/hpcclab/taskdrop"
)

func main() {
	log.SetFlags(0)

	sys := taskdrop.HomogeneousSystem()
	fmt.Printf("edge site: %d identical nodes, %d task types\n\n",
		len(sys.Matrix.Machines()), sys.Matrix.NumTaskTypes())

	trace := sys.Workload(3000, 13_000, taskdrop.DefaultGammaSlack, 3)
	fmt.Printf("incident burst: %d tasks at %.0f/s (heavily oversubscribed)\n\n",
		trace.Len(), trace.ArrivalRate()*1000)

	fmt.Println("tasks completed on time (%):")
	fmt.Println("  discipline   +Heuristic   +ReactDrop         gain")
	for _, mapper := range []string{"FCFS", "EDF", "SJF", "PAM"} {
		var with, without float64
		for i, dropper := range []taskdrop.DropPolicy{taskdrop.HeuristicDropper(), taskdrop.ReactiveDropper()} {
			res, err := sys.Simulate(trace, mapper, dropper)
			if err != nil {
				log.Fatal(err)
			}
			if i == 0 {
				with = res.RobustnessPct
			} else {
				without = res.RobustnessPct
			}
		}
		fmt.Printf("  %-10s %12.2f %12.2f %+11.2fpp\n", mapper, with, without, with-without)
	}

	// How does the benefit scale with load? Sweep the arrival intensity.
	fmt.Println("\nPAM robustness vs oversubscription (identical node pool):")
	fmt.Println("  tasks   +Heuristic   +ReactDrop")
	for _, n := range []int{2000, 3000, 4000} {
		tr := sys.Workload(n, 13_000, taskdrop.DefaultGammaSlack, 4)
		a, err := sys.Simulate(tr, "PAM", taskdrop.HeuristicDropper())
		if err != nil {
			log.Fatal(err)
		}
		b, err := sys.Simulate(tr, "PAM", taskdrop.ReactiveDropper())
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("  %5d %12.2f %12.2f\n", n, a.RobustnessPct, b.RobustnessPct)
	}
	fmt.Println("\nthe mechanism needs no heterogeneity: pruning doomed tasks frees")
	fmt.Println("node time for tasks that can still make their deadlines (§V-E).")
}

// Edge cluster: proactive dropping on a homogeneous system (§V-E, Fig. 7b).
//
// An edge site runs eight identical nodes (think a disaster-response field
// deployment, the paper's edge-computing motivation [12]): resources cannot
// be scaled out, so oversubscription must be absorbed by scheduling. Even
// without machine heterogeneity, execution times stay uncertain — and the
// dropping mechanism still buys robustness.
//
// The example sweeps the classic homogeneous disciplines (FCFS, SJF, EDF)
// plus PAM, each with and without the proactive dropping heuristic, on
// identical arrivals (paired scenarios), then shows how the gain scales
// with oversubscription.
//
//	go run ./examples/edgecluster
package main

import (
	"context"
	"fmt"
	"log"

	taskdrop "github.com/hpcclab/taskdrop"
)

// robustness runs one homogeneous-cluster scenario and returns the mean
// on-time percentage.
func robustness(ctx context.Context, mapper, dropper string, tasks int, seed int64) float64 {
	sc, err := taskdrop.NewScenario("homog",
		taskdrop.WithMapper(mapper),
		taskdrop.WithDropper(dropper),
		taskdrop.WithTasks(tasks),
		taskdrop.WithWindow(13_000),
		taskdrop.WithSeed(seed),
		taskdrop.WithTrials(2),
	)
	if err != nil {
		log.Fatal(err)
	}
	rr, err := sc.Run(ctx)
	if err != nil {
		log.Fatal(err)
	}
	return rr.Summary.Robustness.Mean
}

func main() {
	log.SetFlags(0)
	ctx := context.Background()

	fmt.Println("edge site: 8 identical nodes")
	fmt.Println("incident burst: 3000 tasks at ~230/s (heavily oversubscribed)")
	fmt.Println()
	fmt.Println("tasks completed on time (%, mean of 2 paired trials):")
	fmt.Println("  discipline   +Heuristic   +ReactDrop         gain")
	for _, mapper := range []string{"FCFS", "EDF", "SJF", "PAM"} {
		with := robustness(ctx, mapper, "heuristic", 3000, 3)
		without := robustness(ctx, mapper, "reactdrop", 3000, 3)
		fmt.Printf("  %-10s %12.2f %12.2f %+11.2fpp\n", mapper, with, without, with-without)
	}

	// How does the benefit scale with load? Sweep the arrival intensity.
	fmt.Println("\nPAM robustness vs oversubscription (identical node pool):")
	fmt.Println("  tasks   +Heuristic   +ReactDrop")
	for _, n := range []int{2000, 3000, 4000} {
		a := robustness(ctx, "PAM", "heuristic", n, 4)
		b := robustness(ctx, "PAM", "reactdrop", n, 4)
		fmt.Printf("  %5d %12.2f %12.2f\n", n, a, b)
	}
	fmt.Println("\nthe mechanism needs no heterogeneity: pruning doomed tasks frees")
	fmt.Println("node time for tasks that can still make their deadlines (§V-E).")
}

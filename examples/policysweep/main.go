// Policysweep: a declarative experiment grid with paired-difference
// statistics.
//
// Where examples/quickstart wires two scenarios by hand, this example
// declares the whole comparison as one Sweep: dropping policy ×
// oversubscription level on the SPECint-like system, every cell paired on
// identical traces by construction. Designating reactdrop as the baseline
// makes the sweep report each policy's effect as a paired mean difference
// with a *paired* 95% CI — the trace-to-trace noise common to both cells
// cancels in the differences, so the interval is far tighter than
// combining the two cells' own CIs would be.
//
//	go run ./examples/policysweep
package main

import (
	"context"
	"fmt"
	"log"
	"os"

	taskdrop "github.com/hpcclab/taskdrop"
)

func main() {
	log.SetFlags(0)

	// 3000/4000/5000 tasks over 26 s ≈ 1.4×/1.9×/2.4× the system's
	// capacity — the paper's three oversubscription levels, scaled down to
	// finish in seconds.
	sw, err := taskdrop.NewSweep(
		taskdrop.Profiles("spec"),
		taskdrop.Mappers("PAM"),
		taskdrop.Droppers("heuristic:beta=1,eta=2", "reactdrop"),
		taskdrop.Tasks(3000, 4000, 5000),
		taskdrop.Each(taskdrop.WithWindow(26_000)),
		taskdrop.SweepTrials(5),
		taskdrop.SweepSeed(1),
		taskdrop.Baseline("reactdrop"),
		taskdrop.OnCellDone(func(done, total int, cell *taskdrop.CellResult) {
			fmt.Fprintf(os.Stderr, "[%d/%d] %s\n", done, total, cell.Label)
		}),
	)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("sweep: %d cells × 5 paired trials\n\n", sw.Cells())

	res, err := sw.Run(context.Background())
	if err != nil {
		log.Fatal(err)
	}

	// The flat table: every cell plus its paired Δ vs the baseline.
	res.Table().Fprint(os.Stdout)

	// The same data pivoted into the paper's figure layout.
	fmt.Println()
	pivoted, err := res.Pivot(taskdrop.Pivot{
		ID:          "policysweep",
		Title:       "Tasks completed on time (%) — proactive dropping vs oversubscription",
		Row:         "tasks",
		RowHeader:   "level",
		Col:         "dropper",
		ColFmt:      "+%s",
		Metric:      taskdrop.MetricRobustness,
		Delta:       true,
		DeltaHeader: "Δ (pp)",
	})
	if err != nil {
		log.Fatal(err)
	}
	pivoted.Fprint(os.Stdout)

	// Programmatic access: the paired CI is the headline of the redesign.
	fmt.Println()
	for _, level := range []string{"3k", "4k", "5k"} {
		cell, ok := res.Cell("Heuristic", level)
		if !ok {
			log.Fatalf("cell @%s missing", level)
		}
		d := cell.VsBaseline.Robustness
		own, _ := cell.Stat(taskdrop.MetricRobustness)
		fmt.Printf("@%s tasks: Δ robustness %+.2f ± %.2f pp paired (cell's own CI ± %.2f)\n",
			level, d.Mean, d.CI95, own.CI95)
	}
}

// Video transcoding: the paper's motivating scenario (§III, §V-H).
//
// A live-streaming provider transcodes segments (resolution scaling,
// bitrate adjustment, codec conversion, frame-rate interpolation) on a
// heterogeneous pool of cloud VMs (CPU-optimized, memory-optimized, GPU,
// general purpose — two of each). Segments that miss their deadline are
// worthless: the stream has moved on. The example compares the three
// heterogeneous mapping heuristics with and without the autonomous
// proactive dropping heuristic on identical arrivals, consuming the trial
// results incrementally through Scenario.Stream.
//
//	go run ./examples/videotranscoding
package main

import (
	"context"
	"fmt"
	"log"

	taskdrop "github.com/hpcclab/taskdrop"
)

func main() {
	log.SetFlags(0)
	ctx := context.Background()

	// A moderately oversubscribed streaming burst (§V-H: the video traces
	// have a lower arrival rate than the SPEC workload).
	scenario := func(mapper, dropper string) *taskdrop.Scenario {
		sc, err := taskdrop.NewScenario("video",
			taskdrop.WithMapper(mapper),
			taskdrop.WithDropper(dropper),
			taskdrop.WithTasks(3000),
			taskdrop.WithWindow(20_000),
			taskdrop.WithSeed(7),
			taskdrop.WithTrials(2),
		)
		if err != nil {
			log.Fatal(err)
		}
		return sc
	}

	m := scenario("PAM", "heuristic").Matrix()
	profile := m.Profile()
	fmt.Println("transcoding cluster:")
	for _, ms := range m.Machines() {
		fmt.Printf("  %-32s $%.3f/h\n", ms.Name, ms.PriceHour)
	}
	fmt.Println("\nmean execution time (ms) per segment type and VM type:")
	fmt.Printf("  %-20s", "")
	for _, mn := range profile.MachineTypeNames {
		fmt.Printf(" %12.12s", mn)
	}
	fmt.Println()
	for i, tn := range profile.TaskTypeNames {
		fmt.Printf("  %-20s", tn)
		for j := range profile.MachineTypeNames {
			fmt.Printf(" %12.1f", m.CellMean(taskdrop.TaskType(i), taskdrop.MachineType(j)))
		}
		fmt.Println()
	}

	fmt.Println("\nburst: 3000 segments over 20 s, 2 paired trials per combination")
	fmt.Println("\nsegments transcoded before their deadline (%):")
	fmt.Println("  mapper    +Heuristic   +ReactDrop")
	for _, mapper := range []string{"MSD", "MinMin", "PAM"} {
		var row [2]float64
		for i, dropper := range []string{"heuristic", "reactdrop"} {
			// Stream delivers each trial as it completes; aggregate the
			// on-time percentages ourselves.
			var sum float64
			var n int
			for oc := range scenario(mapper, dropper).Stream(ctx) {
				if oc.Err != nil {
					log.Fatal(oc.Err)
				}
				sum += oc.Result.RobustnessPct
				n++
			}
			row[i] = sum / float64(n)
		}
		fmt.Printf("  %-8s %10.2f %12.2f\n", mapper, row[0], row[1])
	}

	fmt.Println("\nwith proactive dropping in place, even the weakest mapper is")
	fmt.Println("competitive — the dropper prunes its doomed decisions (§V-E).")
}

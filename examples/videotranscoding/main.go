// Video transcoding: the paper's motivating scenario (§III, §V-H).
//
// A live-streaming provider transcodes segments (resolution scaling,
// bitrate adjustment, codec conversion, frame-rate interpolation) on a
// heterogeneous pool of cloud VMs (CPU-optimized, memory-optimized, GPU,
// general purpose — two of each). Segments that miss their deadline are
// worthless: the stream has moved on. The example compares the three
// heterogeneous mapping heuristics with and without the autonomous
// proactive dropping heuristic on identical arrivals, and prints the
// per-task-type breakdown that motivates GPU-aware mapping.
//
//	go run ./examples/videotranscoding
package main

import (
	"fmt"
	"log"

	taskdrop "github.com/hpcclab/taskdrop"
)

func main() {
	log.SetFlags(0)

	sys := taskdrop.VideoSystem()
	profile := sys.Matrix.Profile()

	fmt.Println("transcoding cluster:")
	for _, m := range sys.Matrix.Machines() {
		fmt.Printf("  %-32s $%.3f/h\n", m.Name, m.PriceHour)
	}
	fmt.Println("\nmean execution time (ms) per segment type and VM type:")
	fmt.Printf("  %-20s", "")
	for _, mn := range profile.MachineTypeNames {
		fmt.Printf(" %12.12s", mn)
	}
	fmt.Println()
	for i, tn := range profile.TaskTypeNames {
		fmt.Printf("  %-20s", tn)
		for j := range profile.MachineTypeNames {
			fmt.Printf(" %12.1f", sys.Matrix.CellMean(taskdrop.TaskType(i), taskdrop.MachineType(j)))
		}
		fmt.Println()
	}

	// A moderately oversubscribed streaming burst (§V-H: the video traces
	// have a lower arrival rate than the SPEC workload).
	trace := sys.Workload(3000, 20_000, taskdrop.DefaultGammaSlack, 7)
	fmt.Printf("\nburst: %d segments at %.0f/s\n\n", trace.Len(), trace.ArrivalRate()*1000)

	fmt.Println("segments transcoded before their deadline (%):")
	fmt.Println("  mapper    +Heuristic   +ReactDrop")
	for _, mapper := range []string{"MSD", "MinMin", "PAM"} {
		var row [2]float64
		for i, dropper := range []taskdrop.DropPolicy{taskdrop.HeuristicDropper(), taskdrop.ReactiveDropper()} {
			res, err := sys.Simulate(trace, mapper, dropper)
			if err != nil {
				log.Fatal(err)
			}
			row[i] = res.RobustnessPct
		}
		fmt.Printf("  %-8s %10.2f %12.2f\n", mapper, row[0], row[1])
	}

	fmt.Println("\nwith proactive dropping in place, even the weakest mapper is")
	fmt.Println("competitive — the dropper prunes its doomed decisions (§V-E).")
}

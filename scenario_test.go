package taskdrop_test

import (
	"context"
	"encoding/json"
	"errors"
	"reflect"
	"sync/atomic"
	"testing"

	taskdrop "github.com/hpcclab/taskdrop"
)

// tinyScenario builds a fast video-profile scenario for tests.
func tinyScenario(t *testing.T, opts ...taskdrop.ScenarioOption) *taskdrop.Scenario {
	t.Helper()
	base := []taskdrop.ScenarioOption{
		taskdrop.WithMapper("PAM"),
		taskdrop.WithDropper("heuristic"),
		taskdrop.WithTasks(300),
		taskdrop.WithWindow(2000),
		taskdrop.WithTrials(4),
		taskdrop.WithSeed(1),
	}
	sc, err := taskdrop.NewScenario("video", append(base, opts...)...)
	if err != nil {
		t.Fatal(err)
	}
	return sc
}

func TestScenarioRun(t *testing.T) {
	sc := tinyScenario(t)
	rr, err := sc.Run(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if len(rr.Trials) != 4 {
		t.Fatalf("trials = %d", len(rr.Trials))
	}
	for i, res := range rr.Trials {
		if res == nil {
			t.Fatalf("trial %d missing", i)
		}
		if err := res.Validate(); err != nil {
			t.Fatal(err)
		}
		if res.Total != 300 {
			t.Fatalf("trial %d total = %d", i, res.Total)
		}
	}
	if rr.Summary.Robustness.N != 4 {
		t.Fatalf("summary N = %d", rr.Summary.Robustness.N)
	}
	if m := rr.Summary.Robustness.Mean; m <= 0 || m > 100 {
		t.Fatalf("robustness mean = %v", m)
	}
}

func TestScenarioDeterministicAcrossWorkers(t *testing.T) {
	// The acceptance bar of the redesign: same scenario + seed must yield
	// identical per-trial results and aggregated Summary for any worker
	// count.
	var runs []*taskdrop.RunResult
	for _, workers := range []int{1, 2, 8} {
		sc := tinyScenario(t, taskdrop.WithWorkers(workers))
		rr, err := sc.Run(context.Background())
		if err != nil {
			t.Fatal(err)
		}
		runs = append(runs, rr)
	}
	for i := 1; i < len(runs); i++ {
		if !reflect.DeepEqual(runs[0].Summary, runs[i].Summary) {
			t.Fatalf("summary diverged between worker counts:\n%+v\n%+v", runs[0].Summary, runs[i].Summary)
		}
		for tr := range runs[0].Trials {
			if *runs[0].Trials[tr] != *runs[i].Trials[tr] {
				t.Fatalf("trial %d diverged between worker counts", tr)
			}
		}
	}
}

func TestScenarioPairedWorkloads(t *testing.T) {
	// Two scenarios with the same seed and workload but different droppers
	// must see identical traces: running the same dropper twice must agree
	// exactly, trial by trial.
	a, err := tinyScenario(t).Run(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	b, err := tinyScenario(t, taskdrop.WithWorkers(3)).Run(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	for i := range a.Trials {
		if *a.Trials[i] != *b.Trials[i] {
			t.Fatalf("trial %d diverged across scenario instances", i)
		}
	}
}

func TestScenarioCancellation(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	// Large enough that cancelling after the first trial strands real work.
	sc := tinyScenario(t,
		taskdrop.WithTasks(4000),
		taskdrop.WithWindow(26_000),
		taskdrop.WithTrials(16),
		taskdrop.WithWorkers(2),
		taskdrop.OnTrialDone(func(int, *taskdrop.Result) { cancel() }),
	)
	rr, err := sc.Run(ctx)
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	if rr != nil {
		t.Fatal("cancelled run must not return a result")
	}
}

func TestScenarioCancelledBeforeStart(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := tinyScenario(t).Run(ctx); !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
}

func TestScenarioStream(t *testing.T) {
	sc := tinyScenario(t, taskdrop.WithWorkers(2))
	seen := map[int]bool{}
	for oc := range sc.Stream(context.Background()) {
		if oc.Err != nil {
			t.Fatal(oc.Err)
		}
		if oc.Result == nil || seen[oc.Trial] {
			t.Fatalf("bad outcome %+v", oc)
		}
		seen[oc.Trial] = true
	}
	if len(seen) != 4 {
		t.Fatalf("streamed %d trials, want 4", len(seen))
	}
}

func TestScenarioStreamCancellation(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	sc := tinyScenario(t,
		taskdrop.WithTasks(4000),
		taskdrop.WithWindow(26_000),
		taskdrop.WithTrials(16),
		taskdrop.WithWorkers(2),
	)
	var sawErr bool
	for oc := range sc.Stream(ctx) {
		if oc.Err != nil {
			if !errors.Is(oc.Err, context.Canceled) {
				t.Fatalf("stream error = %v", oc.Err)
			}
			sawErr = true
			continue
		}
		cancel()
	}
	if !sawErr {
		t.Fatal("cancelled stream must surface ctx.Err() before closing")
	}
}

func TestTrialOutcomeErrorSerializes(t *testing.T) {
	// A stream that ends early must deliver an outcome whose error
	// survives JSON marshaling (error values themselves don't marshal).
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	sc := tinyScenario(t)
	var last taskdrop.TrialOutcome
	for oc := range sc.Stream(ctx) {
		last = oc
	}
	if !errors.Is(last.Err, context.Canceled) {
		t.Fatalf("final outcome err = %v, want context.Canceled", last.Err)
	}
	if last.Error != last.Err.Error() {
		t.Fatalf("Error field %q does not mirror Err %q", last.Error, last.Err)
	}
	b, err := json.Marshal(last)
	if err != nil {
		t.Fatal(err)
	}
	var decoded struct {
		Trial int    `json:"trial"`
		Error string `json:"error"`
	}
	if err := json.Unmarshal(b, &decoded); err != nil {
		t.Fatal(err)
	}
	if decoded.Trial != -1 || decoded.Error != context.Canceled.Error() {
		t.Fatalf("serialized outcome lost the error: %s", b)
	}
	// Successful outcomes must omit the field entirely.
	ok := taskdrop.TrialOutcome{Trial: 2}
	b, err = json.Marshal(ok)
	if err != nil {
		t.Fatal(err)
	}
	if string(b) != `{"trial":2}` {
		t.Fatalf("success outcome JSON = %s", b)
	}
}

func TestScenarioOnTrialDone(t *testing.T) {
	var calls atomic.Int32
	sc := tinyScenario(t, taskdrop.OnTrialDone(func(trial int, res *taskdrop.Result) {
		if trial < 0 || trial >= 4 || res == nil {
			t.Errorf("bad hook args: %d %v", trial, res)
		}
		calls.Add(1)
	}))
	if _, err := sc.Run(context.Background()); err != nil {
		t.Fatal(err)
	}
	if calls.Load() != 4 {
		t.Fatalf("hook ran %d times, want 4", calls.Load())
	}
}

func TestScenarioOptionValidation(t *testing.T) {
	cases := []struct {
		name string
		opts []taskdrop.ScenarioOption
	}{
		{"unknown mapper", []taskdrop.ScenarioOption{taskdrop.WithMapper("nope")}},
		{"unknown dropper", []taskdrop.ScenarioOption{taskdrop.WithDropper("nope")}},
		{"bad dropper param", []taskdrop.ScenarioOption{taskdrop.WithDropper("heuristic:beta=0.2")}},
		{"zero trials", []taskdrop.ScenarioOption{taskdrop.WithTrials(0)}},
		{"zero tasks", []taskdrop.ScenarioOption{taskdrop.WithTasks(0)}},
		{"zero window", []taskdrop.ScenarioOption{taskdrop.WithWindow(0)}},
		{"negative gamma", []taskdrop.ScenarioOption{taskdrop.WithGamma(-1)}},
		{"zero queue", []taskdrop.ScenarioOption{taskdrop.WithQueueCap(0)}},
		{"negative grace", []taskdrop.ScenarioOption{taskdrop.WithGrace(-1)}},
		{"negative workers", []taskdrop.ScenarioOption{taskdrop.WithWorkers(-1)}},
		{"negative impulse budget", []taskdrop.ScenarioOption{taskdrop.WithMaxImpulses(-1)}},
		{"mapper set twice", []taskdrop.ScenarioOption{
			taskdrop.WithMapper("PAM"), taskdrop.WithMapperImpl(greedy{})}},
		{"dropper set twice", []taskdrop.ScenarioOption{
			taskdrop.WithDropper("optimal"), taskdrop.WithDropperPolicy(taskdrop.OptimalDropper())}},
		{"nil dropper policy", []taskdrop.ScenarioOption{taskdrop.WithDropperPolicy(nil)}},
		{"nil mapper impl", []taskdrop.ScenarioOption{taskdrop.WithMapperImpl(nil)}},
	}
	for _, c := range cases {
		if _, err := taskdrop.NewScenario("video", c.opts...); err == nil {
			t.Errorf("%s: NewScenario should error", c.name)
		}
	}
	if _, err := taskdrop.NewScenario("not-a-profile"); err == nil {
		t.Error("unknown profile: NewScenario should error")
	}
}

func TestScenarioEngineIntrospection(t *testing.T) {
	sc := tinyScenario(t)
	eng, err := sc.Engine(0)
	if err != nil {
		t.Fatal(err)
	}
	res := eng.Run()
	if err := res.Validate(); err != nil {
		t.Fatal(err)
	}
	types, machines := eng.Breakdown()
	if len(types) == 0 || len(machines) == 0 {
		t.Fatal("breakdown empty")
	}
	// The engine path must agree exactly with Run's trial 0.
	rr, err := sc.Run(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if *res != *rr.Trials[0] {
		t.Fatalf("Engine(0) result diverged from Run trial 0:\n%+v\n%+v", res, rr.Trials[0])
	}
	if _, err := sc.Engine(99); err == nil {
		t.Error("out-of-range trial must error")
	}
}

func TestScenarioFailuresAndGrace(t *testing.T) {
	sc := tinyScenario(t,
		taskdrop.WithTrials(1),
		taskdrop.WithDropper("approx:grace=150"),
		taskdrop.WithGrace(150),
		taskdrop.WithFailures(taskdrop.FailureConfig{MTBF: 30, MeanRepair: 20, Seed: 5}),
	)
	rr, err := sc.Run(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	res := rr.Trials[0]
	if res.Failed == 0 {
		t.Fatalf("failure injection inert: %+v", res)
	}
	if res.UtilityPct < res.RobustnessPct-1e-9 {
		t.Fatalf("utility %v < robustness %v with grace", res.UtilityPct, res.RobustnessPct)
	}
}

func TestScenariosShareBuiltMatrices(t *testing.T) {
	// A profile spec fully determines its PET matrix, so scenarios naming
	// the same profile must share one build instead of re-synthesizing.
	a, b := tinyScenario(t), tinyScenario(t, taskdrop.WithDropper("optimal"))
	if a.Matrix() != b.Matrix() {
		t.Fatal("same profile spec should share one built matrix")
	}
}

func TestRunResultSerializes(t *testing.T) {
	rr, err := tinyScenario(t, taskdrop.WithTrials(2)).Run(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	b, err := json.Marshal(rr)
	if err != nil {
		t.Fatal(err)
	}
	var decoded struct {
		Trials  []map[string]any `json:"trials"`
		Summary map[string]any   `json:"summary"`
	}
	if err := json.Unmarshal(b, &decoded); err != nil {
		t.Fatal(err)
	}
	if len(decoded.Trials) != 2 {
		t.Fatalf("serialized trials = %d", len(decoded.Trials))
	}
	if _, ok := decoded.Trials[0]["robustness_pct"]; !ok {
		t.Fatalf("Result JSON missing robustness_pct: %v", decoded.Trials[0])
	}
	if _, ok := decoded.Summary["robustness"]; !ok {
		t.Fatalf("Summary JSON missing robustness: %v", decoded.Summary)
	}
}

func TestScenarioChurnIsDeterministicAndActive(t *testing.T) {
	churn := taskdrop.ChurnConfig{MeanInterval: 200, MeanDown: 100, Seed: 7}
	a, err := tinyScenario(t, taskdrop.WithTrials(2), taskdrop.WithChurn(churn)).Run(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	b, err := tinyScenario(t, taskdrop.WithTrials(2), taskdrop.WithChurn(churn)).Run(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(a.Trials, b.Trials) {
		t.Fatal("churned scenario is not reproducible across runs")
	}
	base, err := tinyScenario(t, taskdrop.WithTrials(2)).Run(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if reflect.DeepEqual(a.Trials, base.Trials) {
		t.Fatal("churn injection inert: churned trials identical to baseline")
	}
	// Distinct trials must draw distinct churn plans (seed offset by trial).
	if *a.Trials[0] == *a.Trials[1] {
		t.Fatal("trial churn plans not independently seeded")
	}
}

func TestScenarioEmptyChurnMatchesBaseline(t *testing.T) {
	// A zero-value churn config must leave the classic single-engine path
	// untouched: results byte-identical to a scenario that never mentioned
	// churn at all.
	base, err := tinyScenario(t, taskdrop.WithTrials(2)).Run(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	churned, err := tinyScenario(t, taskdrop.WithTrials(2), taskdrop.WithChurn(taskdrop.ChurnConfig{})).Run(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	bb, err := json.Marshal(base.Trials)
	if err != nil {
		t.Fatal(err)
	}
	cb, err := json.Marshal(churned.Trials)
	if err != nil {
		t.Fatal(err)
	}
	if string(bb) != string(cb) {
		t.Fatalf("empty churn plan perturbed results:\nbase    %s\nchurned %s", bb, cb)
	}
}

func TestScenarioChurnValidation(t *testing.T) {
	if _, err := taskdrop.NewScenario("video", taskdrop.WithChurn(taskdrop.ChurnConfig{MeanInterval: -1})); err == nil {
		t.Error("negative churn interval must be rejected")
	}
	if _, err := taskdrop.NewScenario("video", taskdrop.WithChurn(taskdrop.ChurnConfig{MeanInterval: 50})); err == nil {
		t.Error("enabled churn with MeanDown < 1 must be rejected")
	}
}

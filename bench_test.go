// Benchmarks regenerating every table and figure of the paper's evaluation
// (§V) at bench scale, plus micro-benchmarks of the hot paths and the
// ablations called out in DESIGN.md.
//
// Figure benches run the same harness as cmd/hcexp with 1 trial at 2%
// scale so `go test -bench=.` completes quickly; the recorded paper-shape
// numbers in EXPERIMENTS.md come from cmd/hcexp at larger scale.
package taskdrop_test

import (
	"context"
	"fmt"
	"io"
	"testing"

	taskdrop "github.com/hpcclab/taskdrop"
	"github.com/hpcclab/taskdrop/internal/core"
	"github.com/hpcclab/taskdrop/internal/expt"
	"github.com/hpcclab/taskdrop/internal/pet"
	"github.com/hpcclab/taskdrop/internal/pmf"
	"github.com/hpcclab/taskdrop/internal/workload"
)

// benchOptions returns harness options at bench scale.
func benchOptions() expt.Options {
	o := expt.DefaultOptions()
	o.Trials = 1
	o.Scale = 0.02
	o.Progress = io.Discard
	return o
}

// benchFigure runs one paper figure end to end per iteration.
func benchFigure(b *testing.B, id string) {
	b.Helper()
	fig, ok := expt.ByID(id)
	if !ok {
		b.Fatalf("unknown figure %q", id)
	}
	for i := 0; i < b.N; i++ {
		tabs, err := fig.Run(context.Background(), benchOptions())
		if err != nil {
			b.Fatal(err)
		}
		if len(tabs) == 0 || len(tabs[0].Rows) == 0 {
			b.Fatal("figure produced no data")
		}
	}
}

// One benchmark per evaluation figure/table of the paper.

func BenchmarkFig5EffectiveDepth(b *testing.B)   { benchFigure(b, "fig5") }
func BenchmarkFig6Beta(b *testing.B)             { benchFigure(b, "fig6") }
func BenchmarkFig7aHeterogeneous(b *testing.B)   { benchFigure(b, "fig7a") }
func BenchmarkFig7bHomogeneous(b *testing.B)     { benchFigure(b, "fig7b") }
func BenchmarkFig8DroppingPolicies(b *testing.B) { benchFigure(b, "fig8") }
func BenchmarkFig9Cost(b *testing.B)             { benchFigure(b, "fig9") }
func BenchmarkFig10Video(b *testing.B)           { benchFigure(b, "fig10") }
func BenchmarkReactiveShare(b *testing.B)        { benchFigure(b, "drops") }

// BenchmarkEngineThroughput measures raw simulated tasks per second for
// the paper's flagship combination (PAM + Heuristic) on the SPEC system.
func BenchmarkEngineThroughput(b *testing.B) {
	sys := taskdrop.SPECSystem()
	tr := sys.Workload(2000, 13000, taskdrop.DefaultGammaSlack, 1)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		res, err := sys.Simulate(tr, "PAM", taskdrop.HeuristicDropper())
		if err != nil {
			b.Fatal(err)
		}
		if err := res.Validate(); err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(float64(2000*b.N)/b.Elapsed().Seconds(), "tasks/s")
}

// benchDecide measures a single dropping decision over a representative
// full queue.
func benchDecide(b *testing.B, policy core.Policy) {
	b.Helper()
	m := pet.Build(pet.SPECProfile(pet.DefaultProfileSeed), pet.DefaultProfileSeed, pet.DefaultBuildOptions())
	calc := core.NewCalculus(m)
	queue := []core.QueueTask{
		{Type: 0, Deadline: 400, Running: true, Elapsed: 30},
		{Type: 3, Deadline: 350},
		{Type: 7, Deadline: 420},
		{Type: 1, Deadline: 380},
		{Type: 9, Deadline: 500},
		{Type: 5, Deadline: 460},
	}
	ctx := &core.Context{Calc: calc, Machine: 2, Now: 100, Queue: queue, BatchPressure: 1.5}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		// Recycle per iteration: each op is one cold decision, as at a
		// fresh mapping event (without this, iterations after the first
		// would measure pure chain-cache hits).
		calc.Recycle()
		_ = policy.Decide(ctx)
	}
}

func BenchmarkDecideHeuristic(b *testing.B) { benchDecide(b, core.NewHeuristic()) }
func BenchmarkDecideOptimal(b *testing.B)   { benchDecide(b, core.Optimal{}) }
func BenchmarkDecideThreshold(b *testing.B) { benchDecide(b, core.NewThreshold()) }

// BenchmarkMapperStep measures one full PAM mapping pass over a loaded
// batch (25 unmapped tasks, one free slot per machine).
func BenchmarkMapperStep(b *testing.B) {
	sys := taskdrop.SPECSystem()
	tr := sys.Workload(1000, 6500, taskdrop.DefaultGammaSlack, 2)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := sys.Simulate(tr, "MinMin", taskdrop.ReactiveDropper()); err != nil {
			b.Fatal(err)
		}
	}
}

// Ablation: compaction budget. DESIGN.md calls out the impulse budget as
// the accuracy/speed lever of the calculus; this bench quantifies the
// speed side (EXPERIMENTS.md records the accuracy side).
func BenchmarkAblationCompactionBudget(b *testing.B) {
	for _, budget := range []int{8, 16, 32, 64} {
		b.Run(fmt.Sprintf("budget=%d", budget), func(b *testing.B) {
			m := pet.Build(pet.SPECProfile(pet.DefaultProfileSeed), pet.DefaultProfileSeed, pet.DefaultBuildOptions())
			calc := core.NewCalculus(m)
			calc.MaxImpulses = budget
			queue := []core.QueueTask{
				{Type: 0, Deadline: 400, Running: true, Elapsed: 30},
				{Type: 3, Deadline: 350},
				{Type: 7, Deadline: 420},
				{Type: 1, Deadline: 380},
				{Type: 9, Deadline: 500},
				{Type: 5, Deadline: 460},
			}
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				calc.Recycle()
				_ = calc.SuccessProbs(2, 100, queue)
			}
		})
	}
}

// Ablation: effective depth η — per-decision cost growth.
func BenchmarkAblationEta(b *testing.B) {
	for eta := 1; eta <= 5; eta++ {
		b.Run(fmt.Sprintf("eta=%d", eta), func(b *testing.B) {
			benchDecide(b, core.Heuristic{Beta: 1, Eta: eta})
		})
	}
}

// BenchmarkWorkloadGeneration measures trace construction (Poisson
// arrivals + per-machine-type Gamma draws).
func BenchmarkWorkloadGeneration(b *testing.B) {
	m := pet.Build(pet.SPECProfile(pet.DefaultProfileSeed), pet.DefaultProfileSeed, pet.DefaultBuildOptions())
	cfg := workload.Config{TotalTasks: 5000, Window: 32500, GammaSlack: workload.DefaultGammaSlack}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = workload.Generate(m, cfg, int64(i))
	}
}

// BenchmarkQueueChain measures the completion-time chain over a full
// six-slot queue — the innermost loop of every dropper and mapper.
func BenchmarkQueueChain(b *testing.B) {
	m := pet.Build(pet.SPECProfile(pet.DefaultProfileSeed), pet.DefaultProfileSeed, pet.DefaultBuildOptions())
	calc := core.NewCalculus(m)
	queue := []core.QueueTask{
		{Type: 0, Deadline: 400, Running: true, Elapsed: 30},
		{Type: 3, Deadline: 350},
		{Type: 7, Deadline: 420},
		{Type: 1, Deadline: 380},
		{Type: 9, Deadline: 500},
		{Type: 5, Deadline: 460},
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		calc.Recycle()
		_ = calc.CompletionPMFs(2, 100, queue)
	}
}

var sinkPMF pmf.PMF

// BenchmarkEq1 measures a single deadline-truncated convolution (Eq. 1)
// through the workspace path used in production.
func BenchmarkEq1(b *testing.B) {
	m := pet.Build(pet.SPECProfile(pet.DefaultProfileSeed), pet.DefaultProfileSeed, pet.DefaultBuildOptions())
	calc := core.NewCalculus(m)
	prev := m.ExecPMF(0, 0).Shift(100)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		calc.Recycle()
		sinkPMF = calc.Append(prev, 3, 450, 0)
	}
}

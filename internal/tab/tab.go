// Package tab renders experiment results as printable tables: aligned
// text and CSV. It is shared by the public sweep API
// (taskdrop.SweepResult) and the figure harness (internal/expt), so both
// layers print results identically.
package tab

import (
	"fmt"
	"io"
	"strings"
)

// Table is one printable experiment result: a title, column headers, and
// string cells. Tables render as aligned text or CSV.
type Table struct {
	ID      string
	Title   string
	Columns []string
	Rows    [][]string
}

// Fprint writes the table as aligned text.
func (t *Table) Fprint(w io.Writer) {
	fmt.Fprintf(w, "%s — %s\n", t.ID, t.Title)
	widths := make([]int, len(t.Columns))
	for i, c := range t.Columns {
		widths[i] = len(c)
	}
	for _, row := range t.Rows {
		for i, cell := range row {
			if i < len(widths) && len(cell) > widths[i] {
				widths[i] = len(cell)
			}
		}
	}
	line := func(cells []string) {
		var b strings.Builder
		for i, cell := range cells {
			if i > 0 {
				b.WriteString("  ")
			}
			pad := 0
			if i < len(widths) {
				pad = widths[i] - len(cell)
			}
			if i == 0 {
				b.WriteString(cell + strings.Repeat(" ", pad))
			} else {
				b.WriteString(strings.Repeat(" ", pad) + cell)
			}
		}
		fmt.Fprintln(w, "  "+b.String())
	}
	line(t.Columns)
	total := 0
	for _, wd := range widths {
		total += wd + 2
	}
	fmt.Fprintln(w, "  "+strings.Repeat("-", total))
	for _, row := range t.Rows {
		line(row)
	}
}

// CSV renders the table as RFC-4180-ish CSV (cells are quoted when they
// contain commas or quotes).
func (t *Table) CSV() string {
	var b strings.Builder
	writeRow := func(cells []string) {
		for i, c := range cells {
			if i > 0 {
				b.WriteByte(',')
			}
			if strings.ContainsAny(c, ",\"\n") {
				b.WriteString(`"` + strings.ReplaceAll(c, `"`, `""`) + `"`)
			} else {
				b.WriteString(c)
			}
		}
		b.WriteByte('\n')
	}
	writeRow(t.Columns)
	for _, row := range t.Rows {
		writeRow(row)
	}
	return b.String()
}

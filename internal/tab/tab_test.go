package tab

import (
	"bytes"
	"strings"
	"testing"
)

func TestTableFprint(t *testing.T) {
	tab := Table{
		ID:      "tX",
		Title:   "demo",
		Columns: []string{"name", "value"},
		Rows:    [][]string{{"alpha", "1.00"}, {"beta-long", "22.5"}},
	}
	var b bytes.Buffer
	tab.Fprint(&b)
	out := b.String()
	for _, want := range []string{"tX — demo", "name", "alpha", "beta-long", "22.5"} {
		if !strings.Contains(out, want) {
			t.Fatalf("output missing %q:\n%s", want, out)
		}
	}
}

func TestTableCSV(t *testing.T) {
	tab := Table{
		ID:      "t1",
		Columns: []string{"a", "b"},
		Rows:    [][]string{{"x,y", `say "hi"`}},
	}
	got := tab.CSV()
	want := "a,b\n\"x,y\",\"say \"\"hi\"\"\"\n"
	if got != want {
		t.Fatalf("CSV = %q, want %q", got, want)
	}
}

// Package workload generates the online task traces the simulator runs:
// Poisson arrivals of uniformly mixed task types over a fixed window, with
// per-task hard deadlines following the paper's rule (§V-A)
//
//	δ_i = arr_i + avg_i + γ·avg_all
//
// where avg_i is the mean execution time of the task's type across machine
// types and avg_all is the grand mean over the PET matrix.
//
// Realized execution times are pre-drawn per machine type from the
// ground-truth Gamma laws, so a trace is identical across schedulers — the
// comparisons in the evaluation are paired, and results are reproducible
// from (profile, seed) alone.
package workload

import (
	"fmt"
	"sort"

	"github.com/hpcclab/taskdrop/internal/pet"
	"github.com/hpcclab/taskdrop/internal/pmf"
	"github.com/hpcclab/taskdrop/internal/stats"
)

// Task is one arriving task instance.
type Task struct {
	ID       int          // arrival-order index, 0-based
	Type     pet.TaskType // row of the PET matrix
	Arrival  pmf.Tick     // arrival time
	Deadline pmf.Tick     // individual hard deadline (absolute)
	// ExecByType[mt] is the realized execution time on a machine of type
	// mt, pre-drawn from the ground-truth law of the (Type, mt) PET cell.
	ExecByType []pmf.Tick
}

// Slack returns the deadline slack at arrival, δ − arr.
func (t *Task) Slack() pmf.Tick { return t.Deadline - t.Arrival }

// Config parameterizes trace generation.
type Config struct {
	// TotalTasks is the number of arrivals (the paper's oversubscription
	// levels: 20k, 30k, 40k over the same window).
	TotalTasks int
	// Window is the arrival window length in ticks; arrivals form a
	// Poisson process with rate TotalTasks/Window.
	Window pmf.Tick
	// GammaSlack is γ of the deadline rule.
	GammaSlack float64
}

// StandardWindow is the arrival window used by the paper-scale
// experiments: 130 s. With the eight-machine SPEC system (whose effective
// service rate under completion-time-aware mapping is ≈120 tasks/s thanks
// to inconsistent heterogeneity) the 20k/30k/40k task counts correspond to
// ≈1.3×, 1.9× and 2.6× the system's capacity — every level oversubscribes
// the system, as §V-A requires.
const StandardWindow pmf.Tick = 130_000

// DefaultGammaSlack is the deadline slack coefficient γ. Calibrated so
// that the robustness bands and orderings of the paper's figures are
// reproduced (≈30–55% tasks on time across the three oversubscription
// levels with PAM; see EXPERIMENTS.md).
const DefaultGammaSlack = 3.0

// Validate checks the configuration.
func (c Config) Validate() error {
	if c.TotalTasks <= 0 {
		return fmt.Errorf("workload: TotalTasks = %d, want > 0", c.TotalTasks)
	}
	if c.Window <= 0 {
		return fmt.Errorf("workload: Window = %d, want > 0", c.Window)
	}
	if c.GammaSlack < 0 {
		return fmt.Errorf("workload: GammaSlack = %v, want >= 0", c.GammaSlack)
	}
	return nil
}

// CheckScale validates a Scaled shrink factor, for callers (the CLI
// flags) that surface configuration errors instead of panicking.
func CheckScale(f float64) error {
	if f <= 0 || f > 1 {
		return fmt.Errorf("workload: scale factor %v out of range (0,1]; raise TotalTasks to increase load", f)
	}
	return nil
}

// Scaled returns the configuration shrunk by factor f in (0, 1]: task count
// and window scale together, preserving the arrival intensity (and hence
// the oversubscription level) while shortening the trial.
func (c Config) Scaled(f float64) Config {
	if err := CheckScale(f); err != nil {
		panic(err)
	}
	out := c
	out.TotalTasks = int(float64(c.TotalTasks)*f + 0.5)
	if out.TotalTasks < 1 {
		out.TotalTasks = 1
	}
	out.Window = pmf.Tick(float64(c.Window)*f + 0.5)
	if out.Window < 1 {
		out.Window = 1
	}
	return out
}

// Trace is a generated arrival sequence, sorted by arrival time.
type Trace struct {
	Tasks []Task
	Cfg   Config
	Seed  int64
}

// Generate builds a trace for the given PET matrix. Every task is
// individually feasible (its slack exceeds its mean execution time on at
// least the average machine, by construction of the deadline rule), while
// the aggregate arrival intensity oversubscribes the system.
func Generate(m *pet.Matrix, cfg Config, seed int64) *Trace {
	if err := cfg.Validate(); err != nil {
		panic(err)
	}
	rng := stats.NewRNG(seed)
	arrivalRNG := rng.Split()
	typeRNG := rng.Split()
	execRNG := rng.Split()

	nTypes := m.NumTaskTypes()
	nMach := m.NumMachineTypes()
	meanGap := float64(cfg.Window) / float64(cfg.TotalTasks)
	avgAll := m.MeanAll()

	tasks := make([]Task, cfg.TotalTasks)
	var now float64
	for i := range tasks {
		now += arrivalRNG.Exponential(meanGap)
		tt := pet.TaskType(typeRNG.Intn(nTypes))
		arr := pmf.Tick(now)
		slack := pmf.Tick(m.TypeMean(tt) + cfg.GammaSlack*avgAll + 0.5)
		if slack < 1 {
			slack = 1
		}
		exec := make([]pmf.Tick, nMach)
		for j := 0; j < nMach; j++ {
			exec[j] = m.Draw(execRNG, tt, pet.MachineType(j))
		}
		tasks[i] = Task{
			ID:         i,
			Type:       tt,
			Arrival:    arr,
			Deadline:   arr + slack,
			ExecByType: exec,
		}
	}
	// A Poisson process emits non-decreasing times already; sorting is a
	// no-op kept as a safety net for future arrival models.
	sort.SliceStable(tasks, func(i, j int) bool { return tasks[i].Arrival < tasks[j].Arrival })
	for i := range tasks {
		tasks[i].ID = i
	}
	return &Trace{Tasks: tasks, Cfg: cfg, Seed: seed}
}

// ArrivalRate returns the configured arrival intensity in tasks per tick.
func (t *Trace) ArrivalRate() float64 {
	return float64(t.Cfg.TotalTasks) / float64(t.Cfg.Window)
}

// Len returns the number of tasks.
func (t *Trace) Len() int { return len(t.Tasks) }

package workload

import (
	"math"
	"testing"

	"github.com/hpcclab/taskdrop/internal/pet"
	"github.com/hpcclab/taskdrop/internal/pmf"
)

func testMatrix(t testing.TB) *pet.Matrix {
	t.Helper()
	return pet.Build(pet.VideoProfile(), 1, pet.BuildOptions{SamplesPerCell: 200, BinsPerPMF: 20})
}

func TestGenerateBasics(t *testing.T) {
	m := testMatrix(t)
	cfg := Config{TotalTasks: 5000, Window: 50_000, GammaSlack: 2}
	tr := Generate(m, cfg, 1)
	if tr.Len() != 5000 {
		t.Fatalf("len = %d", tr.Len())
	}
	for i, task := range tr.Tasks {
		if task.ID != i {
			t.Fatalf("task %d has ID %d", i, task.ID)
		}
		if int(task.Type) < 0 || int(task.Type) >= m.NumTaskTypes() {
			t.Fatalf("task %d type %d out of range", i, task.Type)
		}
		if task.Deadline <= task.Arrival {
			t.Fatalf("task %d deadline %d <= arrival %d", i, task.Deadline, task.Arrival)
		}
		if len(task.ExecByType) != m.NumMachineTypes() {
			t.Fatalf("task %d has %d exec draws", i, len(task.ExecByType))
		}
		for mt, e := range task.ExecByType {
			if e < 1 {
				t.Fatalf("task %d exec on type %d = %d < 1", i, mt, e)
			}
		}
		if i > 0 && task.Arrival < tr.Tasks[i-1].Arrival {
			t.Fatalf("arrivals not sorted at %d", i)
		}
	}
}

func TestDeadlineRule(t *testing.T) {
	m := testMatrix(t)
	cfg := Config{TotalTasks: 2000, Window: 20_000, GammaSlack: 1.5}
	tr := Generate(m, cfg, 2)
	for _, task := range tr.Tasks {
		wantSlack := pmf.Tick(m.TypeMean(task.Type) + cfg.GammaSlack*m.MeanAll() + 0.5)
		if got := task.Slack(); got != wantSlack {
			t.Fatalf("task %d slack = %d, want %d (δ = arr + avg_i + γ·avg_all)", task.ID, got, wantSlack)
		}
	}
}

func TestEveryTaskIndividuallyFeasible(t *testing.T) {
	// §V-A: "every single task is individually feasible": its slack must
	// exceed its mean execution time on at least one machine type.
	m := testMatrix(t)
	tr := Generate(m, Config{TotalTasks: 3000, Window: 30_000, GammaSlack: 1}, 3)
	for _, task := range tr.Tasks {
		best := math.Inf(1)
		for j := 0; j < m.NumMachineTypes(); j++ {
			best = math.Min(best, m.CellMean(task.Type, pet.MachineType(j)))
		}
		if float64(task.Slack()) <= best {
			t.Fatalf("task %d slack %d <= best mean exec %v", task.ID, task.Slack(), best)
		}
	}
}

func TestArrivalRateMatchesConfig(t *testing.T) {
	m := testMatrix(t)
	cfg := Config{TotalTasks: 20_000, Window: 100_000, GammaSlack: 1}
	tr := Generate(m, cfg, 4)
	last := tr.Tasks[len(tr.Tasks)-1].Arrival
	// Poisson process: N arrivals with mean gap Window/N should span
	// roughly the window (within 5%).
	if math.Abs(float64(last)-float64(cfg.Window)) > 0.05*float64(cfg.Window) {
		t.Fatalf("last arrival %d, want ≈%d", last, cfg.Window)
	}
	if got, want := tr.ArrivalRate(), 0.2; math.Abs(got-want) > 1e-12 {
		t.Fatalf("ArrivalRate = %v, want %v", got, want)
	}
}

func TestTaskTypeMixIsUniform(t *testing.T) {
	m := testMatrix(t)
	tr := Generate(m, Config{TotalTasks: 40_000, Window: 100_000, GammaSlack: 1}, 5)
	counts := make([]int, m.NumTaskTypes())
	for _, task := range tr.Tasks {
		counts[task.Type]++
	}
	want := float64(tr.Len()) / float64(m.NumTaskTypes())
	for tt, n := range counts {
		if math.Abs(float64(n)-want) > 0.05*want {
			t.Fatalf("type %d count %d, want ≈%v", tt, n, want)
		}
	}
}

func TestGenerateDeterminism(t *testing.T) {
	m := testMatrix(t)
	cfg := Config{TotalTasks: 1000, Window: 10_000, GammaSlack: 1}
	a := Generate(m, cfg, 42)
	b := Generate(m, cfg, 42)
	for i := range a.Tasks {
		ta, tb := a.Tasks[i], b.Tasks[i]
		if ta.Arrival != tb.Arrival || ta.Type != tb.Type || ta.Deadline != tb.Deadline {
			t.Fatalf("task %d differs across identical generations", i)
		}
		for j := range ta.ExecByType {
			if ta.ExecByType[j] != tb.ExecByType[j] {
				t.Fatalf("task %d exec draw %d differs", i, j)
			}
		}
	}
	c := Generate(m, cfg, 43)
	if c.Tasks[0].Arrival == a.Tasks[0].Arrival && c.Tasks[1].Arrival == a.Tasks[1].Arrival {
		t.Fatal("different seeds produced identical arrivals")
	}
}

func TestExecDrawsFollowPET(t *testing.T) {
	m := testMatrix(t)
	tr := Generate(m, Config{TotalTasks: 30_000, Window: 60_000, GammaSlack: 1}, 6)
	// Realized draws per (type, machine type) must track the ground-truth
	// means.
	sums := make([][]float64, m.NumTaskTypes())
	counts := make([]int, m.NumTaskTypes())
	for i := range sums {
		sums[i] = make([]float64, m.NumMachineTypes())
	}
	for _, task := range tr.Tasks {
		counts[task.Type]++
		for j, e := range task.ExecByType {
			sums[task.Type][j] += float64(e)
		}
	}
	for i := 0; i < m.NumTaskTypes(); i++ {
		for j := 0; j < m.NumMachineTypes(); j++ {
			got := sums[i][j] / float64(counts[i])
			want := m.TrueDist(pet.TaskType(i), pet.MachineType(j)).Mean()
			if math.Abs(got-want) > 0.08*want+1 {
				t.Fatalf("realized mean (%d,%d) = %v, want ≈%v", i, j, got, want)
			}
		}
	}
}

func TestScaled(t *testing.T) {
	cfg := Config{TotalTasks: 20_000, Window: 130_000, GammaSlack: 3}
	s := cfg.Scaled(0.1)
	if s.TotalTasks != 2000 || s.Window != 13_000 {
		t.Fatalf("Scaled = %+v", s)
	}
	if s.GammaSlack != cfg.GammaSlack {
		t.Fatal("Scaled must not change γ")
	}
	// Intensity preserved.
	a := float64(cfg.TotalTasks) / float64(cfg.Window)
	b := float64(s.TotalTasks) / float64(s.Window)
	if math.Abs(a-b) > 1e-6 {
		t.Fatalf("intensity changed: %v -> %v", a, b)
	}
	if tiny := (Config{TotalTasks: 3, Window: 5, GammaSlack: 1}).Scaled(0.01); tiny.TotalTasks < 1 || tiny.Window < 1 {
		t.Fatalf("degenerate scale: %+v", tiny)
	}
}

func TestScaledPanicsOutOfRange(t *testing.T) {
	for _, f := range []float64{0, -1, 1.5} {
		func() {
			defer func() {
				if recover() == nil {
					t.Fatalf("Scaled(%v) should panic", f)
				}
			}()
			Config{TotalTasks: 10, Window: 10, GammaSlack: 1}.Scaled(f)
		}()
	}
}

func TestConfigValidate(t *testing.T) {
	good := Config{TotalTasks: 1, Window: 1, GammaSlack: 0}
	if err := good.Validate(); err != nil {
		t.Fatal(err)
	}
	bad := []Config{
		{TotalTasks: 0, Window: 1, GammaSlack: 1},
		{TotalTasks: 1, Window: 0, GammaSlack: 1},
		{TotalTasks: 1, Window: 1, GammaSlack: -1},
	}
	for i, c := range bad {
		if err := c.Validate(); err == nil {
			t.Errorf("config %d should not validate", i)
		}
	}
}

func TestGeneratePanicsOnInvalidConfig(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	Generate(testMatrix(t), Config{}, 1)
}

package spec

import (
	"reflect"
	"testing"
)

func TestParseSweep(t *testing.T) {
	got, err := ParseSweep("profile=spec;dropper=reactdrop,heuristic:beta=1.5,eta=3;tasks=20000,30000,40000;baseline=reactdrop")
	if err != nil {
		t.Fatal(err)
	}
	want := &SweepSpec{
		Axes: []SweepAxis{
			{Key: "profile", Values: []string{"spec"}},
			{Key: "dropper", Values: []string{"reactdrop", "heuristic:beta=1.5,eta=3"}},
			{Key: "tasks", Values: []string{"20000", "30000", "40000"}},
		},
		Baseline: "reactdrop",
	}
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("ParseSweep = %+v, want %+v", got, want)
	}
}

func TestParseSweepPipeSeparator(t *testing.T) {
	// "|" separates values verbatim, keeping bare-flag parameters intact.
	got, err := ParseSweep("dropper=threshold:base=0.3,adaptive|reactdrop;tasks=100")
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got.Axes[0].Values, []string{"threshold:base=0.3,adaptive", "reactdrop"}) {
		t.Fatalf("pipe-separated values = %v", got.Axes[0].Values)
	}
}

func TestParseSweepWhitespaceAndCase(t *testing.T) {
	got, err := ParseSweep(" Tasks = 100 , 200 ; PROFILE = video ")
	if err != nil {
		t.Fatal(err)
	}
	if got.Axes[0].Key != "tasks" || got.Axes[1].Key != "profile" {
		t.Fatalf("keys = %+v", got.Axes)
	}
	if !reflect.DeepEqual(got.Axes[0].Values, []string{"100", "200"}) {
		t.Fatalf("values = %v", got.Axes[0].Values)
	}
}

func TestParseSweepParameterContinuation(t *testing.T) {
	// A comma-separated segment containing "=" folds into the previous
	// value — it is a spec parameter, not a new grid value.
	got, err := ParseSweep("profile=spec:seed=7;mapper=kpb:percent=30,PAM")
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got.Axes[0].Values, []string{"spec:seed=7"}) {
		t.Fatalf("profile values = %v", got.Axes[0].Values)
	}
	if !reflect.DeepEqual(got.Axes[1].Values, []string{"kpb:percent=30", "PAM"}) {
		t.Fatalf("mapper values = %v", got.Axes[1].Values)
	}
}

func TestParseSweepErrors(t *testing.T) {
	for _, bad := range []string{
		"",                    // no axes
		";;",                  // no axes
		"tasks",               // not key=value
		"=100",                // empty key
		"tasks=100;tasks=200", // duplicate axis
		"tasks=100,,200",      // empty value
		"tasks=|",             // empty values
		"baseline=a,b",        // baseline takes one value
		"baseline=x",          // baseline alone declares no axes
	} {
		if _, err := ParseSweep(bad); err == nil {
			t.Errorf("ParseSweep(%q) should error", bad)
		}
	}
}

package spec

import (
	"fmt"
	"strings"
)

// SweepAxis is one parsed axis of a sweep grammar string: a dimension key
// and the alternative values it ranges over (each value itself a registry
// spec or number in the package grammar).
type SweepAxis struct {
	Key    string
	Values []string
}

// SweepSpec is a parsed sweep grammar string.
type SweepSpec struct {
	Axes []SweepAxis
	// Baseline is the value of the "baseline=<label>" directive ("" when
	// absent).
	Baseline string
}

// ParseSweep parses the declarative sweep grammar of hcexp's -sweep flag:
// semicolon-separated axes, each "key=value,value,...", plus the
// "baseline=<value>" directive, e.g.
//
//	profile=spec;dropper=reactdrop,heuristic:beta=1.5;tasks=20000,30000,40000;baseline=reactdrop
//
// Values may themselves be parameterized registry specs. Because spec
// parameters also use commas, a comma-separated segment containing "=" is
// treated as a parameter continuation of the preceding value, so
// "dropper=reactdrop,heuristic:beta=1.5,eta=3" reads as the two values
// {reactdrop, heuristic:beta=1.5,eta=3}. Alternatively "|" separates
// values unambiguously (required for bare-flag parameters:
// "dropper=threshold:base=0.3,adaptive|reactdrop").
func ParseSweep(s string) (*SweepSpec, error) {
	out := &SweepSpec{}
	seen := map[string]bool{}
	for _, axis := range strings.Split(s, ";") {
		axis = strings.TrimSpace(axis)
		if axis == "" {
			continue
		}
		key, rest, ok := strings.Cut(axis, "=")
		key = strings.ToLower(strings.TrimSpace(key))
		if !ok || key == "" {
			return nil, fmt.Errorf("spec: sweep axis %q is not key=value,...", axis)
		}
		if seen[key] {
			return nil, fmt.Errorf("spec: duplicate sweep axis %q", key)
		}
		seen[key] = true
		vals, err := splitSweepValues(rest)
		if err != nil {
			return nil, fmt.Errorf("spec: sweep axis %q: %w", key, err)
		}
		if key == "baseline" {
			if len(vals) != 1 {
				return nil, fmt.Errorf("spec: baseline takes one value, got %v", vals)
			}
			out.Baseline = vals[0]
			continue
		}
		out.Axes = append(out.Axes, SweepAxis{Key: key, Values: vals})
	}
	if len(out.Axes) == 0 {
		return nil, fmt.Errorf("spec: sweep %q declares no axes", s)
	}
	return out, nil
}

// splitSweepValues splits one axis' value list: on "|" verbatim when
// present, else on "," with parameter segments folded into the preceding
// value. A segment is a parameter continuation (not a new grid value)
// when its first "=" comes before any ":" — "eta=3" continues
// "heuristic:beta=1.5", while "threshold:base=0.3" starts a new value.
func splitSweepValues(s string) ([]string, error) {
	var parts []string
	if strings.Contains(s, "|") {
		parts = strings.Split(s, "|")
	} else {
		for _, seg := range strings.Split(s, ",") {
			eq := strings.Index(seg, "=")
			colon := strings.Index(seg, ":")
			isParam := eq >= 0 && (colon < 0 || eq < colon)
			if len(parts) > 0 && isParam {
				parts[len(parts)-1] += "," + seg
				continue
			}
			parts = append(parts, seg)
		}
	}
	out := make([]string, 0, len(parts))
	for _, p := range parts {
		p = strings.TrimSpace(p)
		if p == "" {
			return nil, fmt.Errorf("empty value in %q", s)
		}
		out = append(out, p)
	}
	if len(out) == 0 {
		return nil, fmt.Errorf("no values in %q", s)
	}
	return out, nil
}

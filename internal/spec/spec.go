// Package spec parses the parameterized registry spec strings shared by
// every name-resolved component of the system (mappers, dropping policies,
// profiles). One grammar serves the CLI flags, the experiment harness and
// the public Scenario API, so a combination is written the same way
// everywhere:
//
//	name
//	name:key=value
//	name:key=value,flag,key2=value2
//
// Names and keys are case-insensitive; a bare key is a boolean flag
// (equivalent to key=true). Registries consume parameters through the
// typed getters and call Finish, which rejects unknown keys and malformed
// values — so "heuristic:betta=2" fails loudly instead of silently running
// the default tuning.
package spec

import (
	"fmt"
	"sort"
	"strconv"
	"strings"
)

// Params holds the parsed key=value parameters of one spec string and
// tracks which keys the registry consumed.
type Params struct {
	spec string
	vals map[string]string
	used map[string]bool
	err  error
}

// Parse splits a spec string into its lowercased component name and
// parameters. An empty name or a malformed parameter list is an error.
func Parse(s string) (string, *Params, error) {
	p := &Params{spec: s, vals: map[string]string{}, used: map[string]bool{}}
	name, rest, hasParams := strings.Cut(strings.TrimSpace(s), ":")
	name = strings.ToLower(strings.TrimSpace(name))
	if name == "" {
		return "", nil, fmt.Errorf("spec: empty component name in %q", s)
	}
	if !hasParams {
		return name, p, nil
	}
	for _, kv := range strings.Split(rest, ",") {
		key, val, hasVal := strings.Cut(kv, "=")
		key = strings.ToLower(strings.TrimSpace(key))
		if key == "" {
			return "", nil, fmt.Errorf("spec: empty parameter key in %q", s)
		}
		if _, dup := p.vals[key]; dup {
			return "", nil, fmt.Errorf("spec: duplicate parameter %q in %q", key, s)
		}
		if !hasVal {
			val = "true" // bare flag
		}
		p.vals[key] = strings.TrimSpace(val)
	}
	return name, p, nil
}

// fail records the first conversion error; later getters still return
// their defaults so registries can build unconditionally and rely on
// Finish.
func (p *Params) fail(key, kind string) {
	if p.err == nil {
		p.err = fmt.Errorf("spec: parameter %s=%q in %q is not a valid %s", key, p.vals[key], p.spec, kind)
	}
}

// Float consumes a float64 parameter, returning def when absent.
func (p *Params) Float(key string, def float64) float64 {
	v, ok := p.vals[key]
	if !ok {
		return def
	}
	p.used[key] = true
	f, err := strconv.ParseFloat(v, 64)
	if err != nil {
		p.fail(key, "number")
		return def
	}
	return f
}

// Int consumes an int parameter, returning def when absent.
func (p *Params) Int(key string, def int) int {
	return int(p.Int64(key, int64(def)))
}

// Int64 consumes an int64 parameter, returning def when absent.
func (p *Params) Int64(key string, def int64) int64 {
	v, ok := p.vals[key]
	if !ok {
		return def
	}
	p.used[key] = true
	n, err := strconv.ParseInt(v, 10, 64)
	if err != nil {
		p.fail(key, "integer")
		return def
	}
	return n
}

// Bool consumes a boolean parameter, returning def when absent. A bare
// key parses as true.
func (p *Params) Bool(key string, def bool) bool {
	v, ok := p.vals[key]
	if !ok {
		return def
	}
	p.used[key] = true
	b, err := strconv.ParseBool(v)
	if err != nil {
		p.fail(key, "boolean")
		return def
	}
	return b
}

// Finish reports the first conversion error, or an error naming any
// parameter the registry did not consume.
func (p *Params) Finish() error {
	if p.err != nil {
		return p.err
	}
	var unknown []string
	for k := range p.vals {
		if !p.used[k] {
			unknown = append(unknown, k)
		}
	}
	if len(unknown) > 0 {
		sort.Strings(unknown)
		return fmt.Errorf("spec: unknown parameter(s) %s in %q", strings.Join(unknown, ", "), p.spec)
	}
	return nil
}

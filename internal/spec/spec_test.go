package spec

import (
	"strings"
	"testing"
)

func TestParseNameOnly(t *testing.T) {
	name, p, err := Parse("  PAM  ")
	if err != nil || name != "pam" {
		t.Fatalf("Parse = %q, %v", name, err)
	}
	if err := p.Finish(); err != nil {
		t.Fatal(err)
	}
}

func TestParseParameters(t *testing.T) {
	name, p, err := Parse("Heuristic:Beta=1.5, eta=3 ,Adaptive")
	if err != nil || name != "heuristic" {
		t.Fatalf("Parse = %q, %v", name, err)
	}
	if got := p.Float("beta", 0); got != 1.5 {
		t.Errorf("beta = %v", got)
	}
	if got := p.Int("eta", 0); got != 3 {
		t.Errorf("eta = %v", got)
	}
	if !p.Bool("adaptive", false) {
		t.Error("bare flag should be true")
	}
	if err := p.Finish(); err != nil {
		t.Fatal(err)
	}
}

func TestParseDefaults(t *testing.T) {
	_, p, err := Parse("x")
	if err != nil {
		t.Fatal(err)
	}
	if p.Float("f", 2.5) != 2.5 || p.Int("i", 7) != 7 || p.Int64("l", -1) != -1 || !p.Bool("b", true) {
		t.Error("absent keys must return defaults")
	}
	if err := p.Finish(); err != nil {
		t.Fatal(err)
	}
}

func TestParseErrors(t *testing.T) {
	for _, bad := range []string{"", "   ", ":x=1", "a:=1", "a:x=1,x=2"} {
		if _, _, err := Parse(bad); err == nil {
			t.Errorf("Parse(%q) should error", bad)
		}
	}
}

func TestFinishRejectsUnknownKeys(t *testing.T) {
	_, p, err := Parse("a:known=1,mystery=2,extra")
	if err != nil {
		t.Fatal(err)
	}
	p.Int("known", 0)
	err = p.Finish()
	if err == nil {
		t.Fatal("unknown keys must fail Finish")
	}
	if !strings.Contains(err.Error(), "extra, mystery") {
		t.Fatalf("error should list unknown keys sorted: %v", err)
	}
}

func TestFinishReportsBadValues(t *testing.T) {
	_, p, _ := Parse("a:f=zzz")
	if got := p.Float("f", 3); got != 3 {
		t.Errorf("bad value should fall back to default, got %v", got)
	}
	if err := p.Finish(); err == nil {
		t.Error("bad float must fail Finish")
	}

	_, p, _ = Parse("a:i=1.5")
	p.Int("i", 0)
	if err := p.Finish(); err == nil {
		t.Error("non-integer must fail Finish")
	}

	_, p, _ = Parse("a:b=maybe")
	p.Bool("b", false)
	if err := p.Finish(); err == nil {
		t.Error("bad bool must fail Finish")
	}
}

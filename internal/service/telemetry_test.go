package service

import (
	"bytes"
	"context"
	"encoding/json"
	"io"
	"net/http"
	"net/http/httptest"
	"reflect"
	"strings"
	"sync"
	"testing"

	"github.com/hpcclab/taskdrop/internal/telemetry"
)

// requireCompleteTrace asserts a finished trace covers the stages every
// decision passes through (route, wait, calculus, ack — dropper and
// journal are conditional) with sane, ordered bounds.
func requireCompleteTrace(t *testing.T, tr *telemetry.Trace) {
	t.Helper()
	seen := make(map[telemetry.Stage]bool, len(tr.Spans))
	prev := int64(-1)
	for _, sp := range tr.Spans {
		if sp.StartNS < 0 || sp.EndNS < sp.StartNS {
			t.Fatalf("seq %d: span %s has bounds [%d, %d]", tr.Seq, sp.Stage, sp.StartNS, sp.EndNS)
		}
		if sp.StartNS < prev {
			t.Fatalf("seq %d: spans not sorted by start", tr.Seq)
		}
		prev = sp.StartNS
		seen[sp.Stage] = true
	}
	for _, st := range []telemetry.Stage{telemetry.StageRoute, telemetry.StageWait, telemetry.StageCalculus, telemetry.StageAck} {
		if !seen[st] {
			t.Fatalf("seq %d: trace lacks stage %s: %+v", tr.Seq, st, tr.Spans)
		}
	}
}

// TestTraceSamplingCapturesStages runs a journaled controller with
// sample-every-1 tracing and checks the full observability loop: the ring
// retains complete traces, the journal carries KindTrace records, and the
// audit prints the recorded stage timings next to the replayed decision.
func TestTraceSamplingCapturesStages(t *testing.T) {
	dir := t.TempDir()
	c, err := New(Config{Profile: "video", Mapper: "PAM", Dropper: "heuristic",
		TraceSample: 1, JournalDir: dir, Fsync: "never"})
	if err != nil {
		t.Fatal(err)
	}
	tr := testTrace(t, 200, 5)
	decisions := decideAll(t, c, tr, 16)

	snap := c.Traces()
	if snap.SampleEvery != 1 {
		t.Fatalf("snapshot sample_every = %d", snap.SampleEvery)
	}
	if len(snap.Traces) == 0 {
		t.Fatal("no traces retained with sampling on")
	}
	for _, tc := range snap.Traces {
		requireCompleteTrace(t, tc)
		if tc.Seq < 0 || tc.Seq >= int64(len(decisions)) {
			t.Fatalf("trace seq %d outside decided range", tc.Seq)
		}
	}
	if got := c.Telemetry().Sampled(); got != uint64(len(decisions)) {
		t.Fatalf("sampled %d decisions, want %d", got, len(decisions))
	}

	if _, err := c.Drain(context.Background()); err != nil {
		t.Fatal(err)
	}

	// The journal now holds one trace record per decision; verify skips
	// them but counts them, and the audit prints their timings.
	st, err := VerifyShard(dir, 0)
	if err != nil {
		t.Fatal(err)
	}
	if st.Traces != len(decisions) {
		t.Fatalf("journal holds %d trace records, want %d", st.Traces, len(decisions))
	}
	var buf bytes.Buffer
	if err := AuditDecision(&buf, dir, 0, 0, false); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	if !strings.Contains(out, "recorded stage timings (offsets from request receipt)") {
		t.Fatalf("audit output lacks stage timings:\n%s", out)
	}
	for _, stage := range []string{"route", "wait", "calculus", "ack"} {
		if !strings.Contains(out, stage) {
			t.Fatalf("audit timings lack stage %q:\n%s", stage, out)
		}
	}
}

// TestSamplingDeterminism pins the observational invariant: tracing every
// decision must not perturb the decision sequence. Two controllers fed
// the identical trace — one sampling everything, one with telemetry off —
// produce identical decisions and identical drain results.
func TestSamplingDeterminism(t *testing.T) {
	tr := testTrace(t, 300, 11)
	base := Config{Profile: "video", Mapper: "PAM", Dropper: "heuristic", Shards: 2}
	off, err := New(base)
	if err != nil {
		t.Fatal(err)
	}
	sampled := base
	sampled.TraceSample = 1
	on, err := New(sampled)
	if err != nil {
		t.Fatal(err)
	}
	dOff := decideAll(t, off, tr, 8)
	dOn := decideAll(t, on, tr, 8)
	if !reflect.DeepEqual(dOff, dOn) {
		t.Fatal("sampling perturbed the decision sequence")
	}
	rOff, err := off.Drain(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	rOn, err := on.Drain(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if *rOff != *rOn {
		t.Fatalf("sampling perturbed the drain result:\noff %+v\non  %+v", rOff, rOn)
	}
}

// TestConcurrentDecideMetricsTraces hammers /v1/decide, /metrics and
// /debug/traces simultaneously (run under -race) and then holds the final
// scrape to the package's own Prometheus linter.
func TestConcurrentDecideMetricsTraces(t *testing.T) {
	c, err := New(Config{Profile: "video", Mapper: "PAM", Dropper: "heuristic",
		Shards: 2, TraceSample: 2})
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	srv := httptest.NewServer(NewHandler(c))
	defer srv.Close()

	tr := testTrace(t, 240, 13)
	const clients = 4
	per := tr.Len() / clients
	var wg sync.WaitGroup
	for w := 0; w < clients; w++ {
		wg.Add(1)
		go func(lo int) {
			defer wg.Done()
			for i := lo; i < lo+per; i += 8 {
				hi := min(i+8, lo+per)
				req := DecideRequest{Tasks: make([]TaskSpec, hi-i)}
				for j, task := range tr.Tasks[i:hi] {
					req.Tasks[j] = TaskSpec{
						Type: int(task.Type), Arrival: task.Arrival,
						Deadline: task.Deadline, ExecByType: task.ExecByType,
					}
				}
				blob, _ := json.Marshal(&req)
				resp, err := http.Post(srv.URL+"/v1/decide", "application/json", bytes.NewReader(blob))
				if err != nil {
					t.Error(err)
					return
				}
				io.Copy(io.Discard, resp.Body)
				resp.Body.Close()
				if resp.StatusCode != http.StatusOK {
					t.Errorf("/v1/decide: %s", resp.Status)
					return
				}
			}
		}(w * per)
	}
	for _, path := range []string{"/metrics", "/debug/traces", "/metrics", "/debug/traces"} {
		wg.Add(1)
		go func(path string) {
			defer wg.Done()
			for i := 0; i < 25; i++ {
				resp, err := http.Get(srv.URL + path)
				if err != nil {
					t.Error(err)
					return
				}
				io.Copy(io.Discard, resp.Body)
				resp.Body.Close()
				if resp.StatusCode != http.StatusOK {
					t.Errorf("%s: %s", path, resp.Status)
					return
				}
			}
		}(path)
	}
	wg.Wait()

	resp, err := http.Get(srv.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	exposition, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	if issues := telemetry.Lint(bytes.NewReader(exposition)); len(issues) > 0 {
		t.Fatalf("final /metrics scrape fails lint:\n%s", strings.Join(issues, "\n"))
	}

	resp, err = http.Get(srv.URL + "/debug/traces")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var snap TraceSnapshot
	if err := json.NewDecoder(resp.Body).Decode(&snap); err != nil {
		t.Fatal(err)
	}
	if snap.SampleEvery != 2 || len(snap.Traces) == 0 {
		t.Fatalf("trace snapshot: every=%d traces=%d", snap.SampleEvery, len(snap.Traces))
	}
	for _, tc := range snap.Traces {
		requireCompleteTrace(t, tc)
	}
}

// TestMetricsChainInvalidationFamilies pins the chain-cache invalidation
// exposition: every reason label is present from the first scrape (zero
// counters included, so rate() works from process start) and the pinned
// gauge exists, before and after traffic.
func TestMetricsChainInvalidationFamilies(t *testing.T) {
	c, err := New(Config{Profile: "video", Mapper: "PAM", Dropper: "heuristic", Shards: 2})
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	srv := httptest.NewServer(NewHandler(c))
	defer srv.Close()

	scrape := func() string {
		t.Helper()
		resp, err := http.Get(srv.URL + "/metrics")
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		blob, err := io.ReadAll(resp.Body)
		if err != nil {
			t.Fatal(err)
		}
		if issues := telemetry.Lint(bytes.NewReader(blob)); len(issues) > 0 {
			t.Fatalf("/metrics fails lint:\n%s", strings.Join(issues, "\n"))
		}
		return string(blob)
	}
	want := []string{
		`taskdrop_chain_invalidations_total{reason="event"} `,
		`taskdrop_chain_invalidations_total{reason="churn"} `,
		`taskdrop_chain_invalidations_total{reason="overflow"} `,
		"taskdrop_chain_pinned_bytes ",
	}
	for pass, body := range map[string]string{"cold": scrape()} {
		for _, line := range want {
			if !strings.Contains(body, line) {
				t.Fatalf("%s scrape lacks %q:\n%s", pass, line, body)
			}
		}
	}
	decideAll(t, c, testTrace(t, 120, 3), 8)
	body := scrape()
	for _, line := range want {
		if !strings.Contains(body, line) {
			t.Fatalf("warm scrape lacks %q", line)
		}
	}
	// Traffic drives mapping events through the per-machine caches; the
	// event-reason counter must have moved.
	if strings.Contains(body, `taskdrop_chain_invalidations_total{reason="event"} 0`+"\n") {
		t.Fatal("event invalidations still zero after a full trace")
	}
}

// TestDecideTelemetryDisabledAllocsSteadyState holds the disabled-sampling
// decide path to the same steady-state allocation budget as the
// pre-telemetry controller: with TraceSample 0 the telemetry wiring must
// add zero allocations (no clock reads, no Active, no span slices). CI's
// alloc-regression job runs this test alongside the controller budget.
func TestDecideTelemetryDisabledAllocsSteadyState(t *testing.T) {
	if raceEnabled {
		t.Skip("allocation counts are skewed under the race detector")
	}
	c, err := New(Config{Profile: "video", Mapper: "PAM", Dropper: "heuristic",
		TraceSample: 0, TraceRing: 64})
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	tasks := benchTasks(t, 4096)
	ctx := context.Background()
	i := 0
	decide := func() {
		task := &tasks[i%len(tasks)]
		i++
		req := DecideRequest{Tasks: []TaskSpec{{
			Type: int(task.Type), Arrival: task.Arrival,
			Deadline: task.Deadline, ExecByType: task.ExecByType,
		}}}
		if _, err := c.Decide(ctx, &req); err != nil {
			t.Fatal(err)
		}
	}
	for k := 0; k < 64; k++ {
		decide()
	}
	if avg := testing.AllocsPerRun(200, decide); avg > maxControllerDecideAllocs {
		t.Fatalf("disabled-telemetry Decide allocates %.1f/op, budget %d — telemetry wiring leaks onto the cold path", avg, maxControllerDecideAllocs)
	}
}

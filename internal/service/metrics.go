package service

import (
	"fmt"
	"io"
	"sync/atomic"
	"time"
)

// latencyBuckets are the upper bounds (seconds) of the decision-latency
// histogram — decision work is convolution-bound and typically lands in
// the tens-of-microseconds to low-milliseconds range.
var latencyBuckets = []float64{
	50e-6, 100e-6, 250e-6, 500e-6,
	1e-3, 2.5e-3, 5e-3, 10e-3, 25e-3, 50e-3, 100e-3, 250e-3, 1,
}

// Metrics aggregates the service's operational counters. Counters are
// atomics: the decision loop is the single writer for decision counters,
// but HTTP handler goroutines record latencies and scrapes read everything
// concurrently.
type Metrics struct {
	start time.Time

	requests  atomic.Int64 // decide requests processed
	tasks     atomic.Int64 // tasks decided
	mapped    atomic.Int64
	deferred  atomic.Int64
	dropped   atomic.Int64 // drop decisions at admission (reactive at arrival)
	rejected  atomic.Int64 // malformed specs rejected before reaching the loop
	shed      atomic.Int64 // sub-batches shed by a degraded shard (429)
	histogram []atomic.Int64
	latSumNS  atomic.Int64
}

func newMetrics() *Metrics {
	return &Metrics{start: time.Now(), histogram: make([]atomic.Int64, len(latencyBuckets)+1)}
}

// countDecision tallies one admission decision.
func (m *Metrics) countDecision(a Action) {
	m.tasks.Add(1)
	switch a {
	case ActionMap:
		m.mapped.Add(1)
	case ActionDefer:
		m.deferred.Add(1)
	case ActionDrop:
		m.dropped.Add(1)
	}
}

// ObserveLatency records one end-to-end decision latency (request receipt
// to decision, including queueing behind the single-writer loop).
func (m *Metrics) ObserveLatency(d time.Duration) {
	s := d.Seconds()
	i := 0
	for ; i < len(latencyBuckets); i++ {
		if s <= latencyBuckets[i] {
			break
		}
	}
	m.histogram[i].Add(1)
	m.latSumNS.Add(int64(d))
}

// DropRate returns the fraction of decided tasks rejected at admission.
func (m *Metrics) DropRate() float64 {
	t := m.tasks.Load()
	if t == 0 {
		return 0
	}
	return float64(m.dropped.Load()) / float64(t)
}

// DecisionsPerSecond returns the mean decision throughput since start.
func (m *Metrics) DecisionsPerSecond() float64 {
	el := time.Since(m.start).Seconds()
	if el <= 0 {
		return 0
	}
	return float64(m.tasks.Load()) / el
}

// WritePrometheus renders the metrics in Prometheus text exposition
// format. Engine gauges (queue depths, live task census) are appended by
// the controller, which owns that state.
func (m *Metrics) WritePrometheus(w io.Writer) {
	p := func(format string, args ...any) { fmt.Fprintf(w, format, args...) }
	p("# HELP taskdrop_decide_requests_total Decide requests processed.\n")
	p("# TYPE taskdrop_decide_requests_total counter\n")
	p("taskdrop_decide_requests_total %d\n", m.requests.Load())
	p("# HELP taskdrop_decisions_total Admission decisions by action.\n")
	p("# TYPE taskdrop_decisions_total counter\n")
	p("taskdrop_decisions_total{action=\"map\"} %d\n", m.mapped.Load())
	p("taskdrop_decisions_total{action=\"defer\"} %d\n", m.deferred.Load())
	p("taskdrop_decisions_total{action=\"drop\"} %d\n", m.dropped.Load())
	p("# HELP taskdrop_rejected_requests_total Requests rejected before decision (validation).\n")
	p("# TYPE taskdrop_rejected_requests_total counter\n")
	p("taskdrop_rejected_requests_total %d\n", m.rejected.Load())
	p("# HELP taskdrop_drop_rate Fraction of decided tasks dropped at admission.\n")
	p("# TYPE taskdrop_drop_rate gauge\n")
	p("taskdrop_drop_rate %g\n", m.DropRate())
	p("# HELP taskdrop_decisions_per_second Mean decision throughput since start.\n")
	p("# TYPE taskdrop_decisions_per_second gauge\n")
	p("taskdrop_decisions_per_second %g\n", m.DecisionsPerSecond())
	p("# HELP taskdrop_decision_latency_seconds Decision latency (receipt to decision).\n")
	p("# TYPE taskdrop_decision_latency_seconds histogram\n")
	var cum int64
	for i, le := range latencyBuckets {
		cum += m.histogram[i].Load()
		p("taskdrop_decision_latency_seconds_bucket{le=\"%g\"} %d\n", le, cum)
	}
	cum += m.histogram[len(latencyBuckets)].Load()
	p("taskdrop_decision_latency_seconds_bucket{le=\"+Inf\"} %d\n", cum)
	p("taskdrop_decision_latency_seconds_sum %g\n", float64(m.latSumNS.Load())/1e9)
	p("taskdrop_decision_latency_seconds_count %d\n", cum)
}

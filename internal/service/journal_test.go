package service

import (
	"context"
	"fmt"
	"io"
	"reflect"
	"strings"
	"testing"

	"github.com/hpcclab/taskdrop/internal/journal"
	"github.com/hpcclab/taskdrop/internal/workload"
)

// crash hard-stops a controller's shard loops without draining, final
// checkpoints or writer closes — the in-process stand-in for kill -9. The
// on-disk journal is left exactly as the last acknowledged commit wrote
// it, which is what recovery must be able to continue from.
func crash(c *Controller) {
	c.mu.Lock()
	c.draining = true
	c.mu.Unlock()
	for _, sh := range c.shards {
		close(sh.cmds)
		<-sh.loopDone
	}
}

// decideRange feeds tasks [lo,hi) of the trace in fixed-size batches.
func decideRange(t testing.TB, c *Controller, tr *workload.Trace, lo, hi, batch int) []Decision {
	t.Helper()
	var out []Decision
	for ; lo < hi; lo += batch {
		end := min(lo+batch, hi)
		req := DecideRequest{Tasks: make([]TaskSpec, end-lo)}
		for i, task := range tr.Tasks[lo:end] {
			req.Tasks[i] = TaskSpec{
				ID:   fmt.Sprintf("t%d", task.ID),
				Type: int(task.Type), Arrival: task.Arrival,
				Deadline: task.Deadline, ExecByType: task.ExecByType,
			}
		}
		resp, err := c.Decide(context.Background(), &req)
		if err != nil {
			t.Fatal(err)
		}
		out = append(out, resp.Decisions...)
	}
	return out
}

// TestJournalCrashRecovery is the tentpole property end to end: kill a
// journaling controller mid-stream, reopen the journal, and the recovered
// controller must (a) report byte-identical shard stats, (b) make exactly
// the decisions an uninterrupted reference controller makes for the rest
// of the stream — sequence numbers included — and (c) drain to the
// identical final Result.
func TestJournalCrashRecovery(t *testing.T) {
	for _, tc := range []struct {
		shards, snapEvery int
	}{
		{1, 60},   // checkpoints + tail replay
		{1, -1},   // no checkpoints: full replay from segment 0
		{2, 60},   // sharded logs recover independently
		{2, 7000}, // cadence never reached: snapshot exists only if drained
	} {
		t.Run(fmt.Sprintf("shards=%d/snap=%d", tc.shards, tc.snapEvery), func(t *testing.T) {
			tr := testTrace(t, 400, 7)
			jcfg := Config{
				Profile: "video", Mapper: "PAM", Dropper: "heuristic",
				Shards: tc.shards, Router: "rr",
				JournalDir: t.TempDir(), Fsync: "never", SnapshotEvery: tc.snapEvery,
			}
			rcfg := jcfg
			rcfg.JournalDir = ""

			ref, err := New(rcfg)
			if err != nil {
				t.Fatal(err)
			}
			jc, err := New(jcfg)
			if err != nil {
				t.Fatal(err)
			}

			const cut = 250
			wantHead := decideRange(t, ref, tr, 0, cut, 8)
			gotHead := decideRange(t, jc, tr, 0, cut, 8)
			if !reflect.DeepEqual(gotHead, wantHead) {
				t.Fatal("journaled controller diverged from reference before the crash")
			}
			pre, err := jc.ShardStats(context.Background())
			if err != nil {
				t.Fatal(err)
			}
			crash(jc)

			jc2, err := New(jcfg)
			if err != nil {
				t.Fatalf("recovery: %v", err)
			}
			post, err := jc2.ShardStats(context.Background())
			if err != nil {
				t.Fatal(err)
			}
			if !reflect.DeepEqual(post, pre) {
				t.Fatalf("recovered shard stats diverged:\n pre %+v\npost %+v", pre, post)
			}

			wantTail := decideRange(t, ref, tr, cut, len(tr.Tasks), 8)
			gotTail := decideRange(t, jc2, tr, cut, len(tr.Tasks), 8)
			if !reflect.DeepEqual(gotTail, wantTail) {
				t.Fatal("recovered controller diverged from reference after the crash")
			}
			if gotTail[0].Seq != cut {
				t.Fatalf("first post-recovery seq = %d, want %d (no reissue, no gap)", gotTail[0].Seq, cut)
			}

			got, err := jc2.Drain(context.Background())
			if err != nil {
				t.Fatal(err)
			}
			want, err := ref.Drain(context.Background())
			if err != nil {
				t.Fatal(err)
			}
			if !reflect.DeepEqual(got, want) {
				t.Fatalf("drained results diverged:\n got %+v\nwant %+v", got, want)
			}
		})
	}
}

// TestJournalGracefulDrainThenReopen drains cleanly (final checkpoint, no
// tail) and reopens the journal: the watermark survives, the drained
// queues are empty, and new decisions continue the sequence.
func TestJournalGracefulDrainThenReopen(t *testing.T) {
	tr := testTrace(t, 150, 9)
	cfg := Config{
		Profile: "video", Mapper: "PAM", Dropper: "heuristic", Shards: 2, Router: "rr",
		JournalDir: t.TempDir(), Fsync: "never", SnapshotEvery: 40,
	}
	c, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	decideRange(t, c, tr, 0, len(tr.Tasks), 8)
	if _, err := c.Drain(context.Background()); err != nil {
		t.Fatal(err)
	}

	c2, err := New(cfg)
	if err != nil {
		t.Fatalf("reopen after drain: %v", err)
	}
	stats, err := c2.ShardStats(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	maxWatermark := int64(-1)
	for _, ss := range stats {
		if ss.Live.Batch != 0 || ss.Live.Queued != 0 || ss.Live.Running != 0 {
			t.Fatalf("shard %d reopened with live work: %+v", ss.Shard, ss.Live)
		}
		if ss.SeqWatermark > maxWatermark {
			maxWatermark = ss.SeqWatermark
		}
	}
	if maxWatermark != int64(len(tr.Tasks))-1 {
		t.Fatalf("recovered watermark %d, want %d", maxWatermark, len(tr.Tasks)-1)
	}

	// New work continues the sequence where the drained run stopped.
	last := tr.Tasks[len(tr.Tasks)-1]
	resp, err := c2.Decide(context.Background(), &DecideRequest{Tasks: []TaskSpec{{
		Type: int(last.Type), Arrival: last.Arrival + 10, Deadline: last.Arrival + 500,
	}}})
	if err != nil {
		t.Fatal(err)
	}
	if resp.Decisions[0].Seq != len(tr.Tasks) {
		t.Fatalf("post-reopen seq = %d, want %d", resp.Decisions[0].Seq, len(tr.Tasks))
	}
	crash(c2)
}

// TestJournalManifestMismatch refuses to continue a journal written under
// a different decision-shaping configuration.
func TestJournalManifestMismatch(t *testing.T) {
	dir := t.TempDir()
	cfg := Config{Profile: "video", Mapper: "PAM", Dropper: "heuristic", JournalDir: dir, Fsync: "never"}
	c, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	crash(c)

	bad := cfg
	bad.QueueCap = 5
	if _, err := New(bad); err == nil || !strings.Contains(err.Error(), "different configuration") {
		t.Fatalf("manifest mismatch accepted: %v", err)
	}

	// A router change is allowed: it shapes future routing, not replay.
	ok := cfg
	ok.Router = "mass"
	c2, err := New(ok)
	if err != nil {
		t.Fatalf("router-only change rejected: %v", err)
	}
	crash(c2)
}

// TestJournalBadFsyncSpec rejects unknown fsync policies up front.
func TestJournalBadFsyncSpec(t *testing.T) {
	_, err := New(Config{Profile: "video", JournalDir: t.TempDir(), Fsync: "sometimes"})
	if err == nil {
		t.Fatal("unknown fsync policy accepted")
	}
}

// TestVerifyShardCleanAndCrashed proves hcreplay's core claim on real
// journals: a drained log and a crashed log both verify — every logged
// decision and event matches the from-scratch deterministic replay — and
// a forged decision record is caught.
func TestVerifyShardCleanAndCrashed(t *testing.T) {
	tr := testTrace(t, 300, 11)
	cfg := Config{
		Profile: "video", Mapper: "PAM", Dropper: "heuristic", Shards: 2, Router: "rr",
		JournalDir: t.TempDir(), Fsync: "never", SnapshotEvery: 50,
	}
	c, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	decideRange(t, c, tr, 0, 200, 8)
	if _, err := c.Drain(context.Background()); err != nil {
		t.Fatal(err)
	}
	stats, err := VerifyAll(cfg.JournalDir)
	if err != nil {
		t.Fatalf("drained journal failed verification: %v", err)
	}
	var arrives int
	for _, st := range stats {
		arrives += st.Arrives
		if st.Checkpoints == 0 {
			t.Errorf("shard %d verified no checkpoints", st.Shard)
		}
		if st.Unflushed != 0 {
			t.Errorf("shard %d: %d unflushed records after a graceful drain", st.Shard, st.Unflushed)
		}
	}
	if arrives != 200 {
		t.Errorf("verified %d arrives, want 200", arrives)
	}

	// Crashed journal: reopen, feed more, kill. Still verifies.
	c2, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	decideRange(t, c2, tr, 200, 300, 8)
	crash(c2)
	if _, err := VerifyAll(cfg.JournalDir); err != nil {
		t.Fatalf("crashed journal failed verification: %v", err)
	}

	// Forge a decision record onto shard 0's log: the replay cannot derive
	// it, so verification must fail.
	w, err := journal.OpenWriter(ShardJournalDir(cfg.JournalDir, 0), journal.WriterOptions{Policy: journal.SyncNever})
	if err != nil {
		t.Fatal(err)
	}
	if err := w.Append(&journal.Record{Kind: journal.KindDecision, Seq: 999999, Action: journal.ActMap, Machine: 2, Tick: 1}); err != nil {
		t.Fatal(err)
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	if _, err := VerifyShard(cfg.JournalDir, 0); err == nil {
		t.Fatal("forged decision record passed verification")
	}
}

// TestVerifyWarmJournalColdReplay is the end-to-end transparency proof
// for the persistent chain caches: the live server records its journal
// with caches warm, and the same log must verify both against a warm
// replay (caches on, hcreplay's default) and against a cold replay
// (ColdChains — every cache invalidated at each event). If signature-gated
// reuse ever changed a single decision, the cold pass would diverge from
// the warm recording on that record.
func TestVerifyWarmJournalColdReplay(t *testing.T) {
	tr := testTrace(t, 260, 17)
	cfg := Config{
		Profile: "video", Mapper: "PAM", Dropper: "heuristic", Shards: 2, Router: "rr",
		JournalDir: t.TempDir(), Fsync: "never", SnapshotEvery: 40,
	}
	c, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	decideRange(t, c, tr, 0, 260, 8)
	// The recording side must actually have been warm.
	var rootHits uint64
	for _, sh := range c.shards {
		rootHits += sh.eng.Calc().Stats().RootHits
	}
	if rootHits == 0 {
		t.Fatal("controller served the trace without a single warm root hit")
	}
	if _, err := c.Drain(context.Background()); err != nil {
		t.Fatal(err)
	}
	if _, err := VerifyAll(cfg.JournalDir); err != nil {
		t.Fatalf("warm replay failed verification: %v", err)
	}
	replayColdChains = true
	defer func() { replayColdChains = false }()
	stats, err := VerifyAll(cfg.JournalDir)
	if err != nil {
		t.Fatalf("cold replay diverged from the warm recording: %v", err)
	}
	var arrives int
	for _, st := range stats {
		arrives += st.Arrives
	}
	if arrives != 260 {
		t.Errorf("cold replay verified %d arrives, want 260", arrives)
	}
}

// TestAuditDecision replays up to one logged decision and explains it.
func TestAuditDecision(t *testing.T) {
	tr := testTrace(t, 120, 13)
	cfg := Config{
		Profile: "video", Mapper: "PAM", Dropper: "heuristic",
		JournalDir: t.TempDir(), Fsync: "never",
	}
	c, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	want := decideRange(t, c, tr, 0, len(tr.Tasks), 6)
	crash(c)

	var buf strings.Builder
	if err := AuditDecision(&buf, cfg.JournalDir, 0, 60, true); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, needle := range []string{
		"decision seq 60", "queues and Eq. 1 forecasts", "candidate: P(on time)=",
		fmt.Sprintf("replayed decision: %s", want[60].Action), "logged decision:   decision seq=60",
	} {
		if !strings.Contains(out, needle) {
			t.Errorf("audit output missing %q:\n%s", needle, out)
		}
	}
	if _, err := VerifyShard(cfg.JournalDir, 99); err == nil {
		t.Error("out-of-range shard accepted")
	}
	if err := AuditDecision(io.Discard, cfg.JournalDir, 0, 99999, false); err == nil {
		t.Error("unknown decision seq accepted")
	}
}

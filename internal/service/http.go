package service

import (
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"time"
)

// maxDecideBody bounds a decide request body (a 10k-task batch is ~1 MB).
const maxDecideBody = 16 << 20

// NewHandler wires the controller's HTTP surface:
//
//	POST /v1/decide  — batch admission decisions
//	POST /v1/drain   — graceful drain; returns the final Result
//	GET  /healthz    — liveness + served (profile, mapper, dropper)
//	GET  /metrics    — Prometheus text exposition
func NewHandler(c *Controller) http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("POST /v1/decide", func(w http.ResponseWriter, r *http.Request) {
		start := time.Now()
		var req DecideRequest
		dec := json.NewDecoder(http.MaxBytesReader(w, r.Body, maxDecideBody))
		dec.DisallowUnknownFields()
		if err := dec.Decode(&req); err != nil {
			c.metrics.rejected.Add(1)
			httpError(w, http.StatusBadRequest, fmt.Errorf("service: bad decide body: %w", err))
			return
		}
		resp, err := c.Decide(r.Context(), &req)
		if err != nil {
			httpError(w, decideStatus(err), err)
			return
		}
		c.metrics.ObserveLatency(time.Since(start))
		writeJSON(w, http.StatusOK, resp)
	})
	mux.HandleFunc("POST /v1/drain", func(w http.ResponseWriter, r *http.Request) {
		res, err := c.Drain(r.Context())
		if err != nil {
			httpError(w, http.StatusServiceUnavailable, err)
			return
		}
		writeJSON(w, http.StatusOK, &DrainResponse{Result: res})
	})
	mux.HandleFunc("GET /healthz", func(w http.ResponseWriter, r *http.Request) {
		st := StatusResponse{
			Status:   "ok",
			Profile:  c.cfg.Profile,
			Mapper:   c.cfg.Mapper,
			Dropper:  c.cfg.Dropper,
			Machines: len(c.matrix.Machines()),
		}
		if c.Draining() {
			st.Status = "draining"
		}
		writeJSON(w, http.StatusOK, &st)
	})
	mux.HandleFunc("GET /metrics", func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
		c.metrics.WritePrometheus(w)
		// Engine gauges come from the decision loop; skip them once drained
		// (counters above still tell the whole story).
		if snap, err := c.Stats(r.Context()); err == nil {
			writeEngineGauges(w, c, snap)
		} else if res, ok := c.FinalResult(); ok {
			fmt.Fprintf(w, "# HELP taskdrop_final_robustness_pct Robustness of the drained run.\n")
			fmt.Fprintf(w, "# TYPE taskdrop_final_robustness_pct gauge\n")
			fmt.Fprintf(w, "taskdrop_final_robustness_pct %g\n", res.RobustnessPct)
		}
	})
	return mux
}

// writeEngineGauges renders the live queue-state gauges.
func writeEngineGauges(w http.ResponseWriter, c *Controller, snap Snapshot) {
	machines := c.matrix.Machines()
	fmt.Fprintf(w, "# HELP taskdrop_virtual_clock_ticks The server's virtual clock.\n")
	fmt.Fprintf(w, "# TYPE taskdrop_virtual_clock_ticks gauge\n")
	fmt.Fprintf(w, "taskdrop_virtual_clock_ticks %d\n", snap.Now)
	fmt.Fprintf(w, "# HELP taskdrop_queue_depth Tasks queued per machine (incl. running).\n")
	fmt.Fprintf(w, "# TYPE taskdrop_queue_depth gauge\n")
	for i, d := range snap.QueueDepths {
		fmt.Fprintf(w, "taskdrop_queue_depth{machine=\"%d\",name=%q} %d\n", i, machines[i].Name, d)
	}
	fmt.Fprintf(w, "# HELP taskdrop_tasks Live task census by state.\n")
	fmt.Fprintf(w, "# TYPE taskdrop_tasks gauge\n")
	fmt.Fprintf(w, "taskdrop_tasks{state=\"batch\"} %d\n", snap.Live.Batch)
	fmt.Fprintf(w, "taskdrop_tasks{state=\"queued\"} %d\n", snap.Live.Queued)
	fmt.Fprintf(w, "taskdrop_tasks{state=\"running\"} %d\n", snap.Live.Running)
	fmt.Fprintf(w, "taskdrop_tasks{state=\"on_time\"} %d\n", snap.Live.OnTime)
	fmt.Fprintf(w, "taskdrop_tasks{state=\"late\"} %d\n", snap.Live.Late)
	fmt.Fprintf(w, "taskdrop_tasks{state=\"dropped_reactive\"} %d\n", snap.Live.DroppedReactive)
	fmt.Fprintf(w, "taskdrop_tasks{state=\"dropped_proactive\"} %d\n", snap.Live.DroppedProactive)
	fmt.Fprintf(w, "taskdrop_tasks{state=\"failed\"} %d\n", snap.Live.Failed)
}

// decideStatus maps controller errors onto HTTP statuses.
func decideStatus(err error) int {
	if errors.Is(err, ErrDraining) {
		return http.StatusServiceUnavailable
	}
	return http.StatusBadRequest
}

type errorBody struct {
	Error string `json:"error"`
}

func httpError(w http.ResponseWriter, code int, err error) {
	writeJSON(w, code, errorBody{Error: err.Error()})
}

func writeJSON(w http.ResponseWriter, code int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	_ = json.NewEncoder(w).Encode(v)
}

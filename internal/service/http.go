package service

import (
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"time"

	"github.com/hpcclab/taskdrop/internal/journal"
	"github.com/hpcclab/taskdrop/internal/telemetry"
)

// maxDecideBody bounds a decide request body (a 10k-task batch is ~1 MB).
const maxDecideBody = 16 << 20

// NewHandler wires the controller's HTTP surface:
//
//	POST /v1/decide  — batch admission decisions (routed across shards)
//	POST /v1/drain   — graceful drain (all shards concurrently); returns
//	                   the merged final Result
//	GET  /v1/stats   — per-shard queue depths, robustness estimates and
//	                   drop counts
//	GET  /healthz    — liveness + served (profile, mapper, dropper,
//	                   shards, router, partition)
//	GET  /readyz     — readiness: 200 once serving, 503 while draining
//	                   (cmd/hcserve additionally 503s during journal
//	                   recovery and shard boot; the router tier gates on it)
//	GET  /metrics    — Prometheus text exposition (aggregate + per-shard)
//	GET  /debug/traces — retained stage-timed decision traces (JSON; empty
//	                   unless Config.TraceSample > 0)
//
// Requests carrying a DecisionID are idempotent: the first request with an
// ID executes and its acknowledged bytes are retained in the controller's
// dedup window; a retry of the same ID replays those exact bytes. A
// duplicate whose task count disagrees with the original — or whose batch
// recovery found torn by a crash — gets 409 Conflict.
func NewHandler(c *Controller) http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("POST /v1/decide", func(w http.ResponseWriter, r *http.Request) {
		start := time.Now()
		var req DecideRequest
		dec := json.NewDecoder(http.MaxBytesReader(w, r.Body, maxDecideBody))
		dec.DisallowUnknownFields()
		if err := dec.Decode(&req); err != nil {
			c.metrics.rejected.Add(1)
			httpError(w, http.StatusBadRequest, fmt.Errorf("service: bad decide body: %w", err))
			return
		}
		if id := req.DecisionID; id != "" && c.dedup != nil {
			e, owner := c.dedup.Begin(id)
			if !owner {
				// Duplicate: wait out a concurrent first attempt if need be,
				// then replay the original acknowledged bytes.
				data, n, err := e.Await(r.Context())
				if err != nil {
					httpError(w, http.StatusConflict, fmt.Errorf("service: duplicate decision id %q: %w", id, err))
					return
				}
				if n != len(req.Tasks) {
					httpError(w, http.StatusConflict, fmt.Errorf(
						"service: decision id %q was acknowledged for %d tasks, retried with %d", id, n, len(req.Tasks)))
					return
				}
				writeRawJSON(w, http.StatusOK, data)
				return
			}
			resp, err := c.Decide(r.Context(), &req)
			if err != nil {
				// A failed Decide left no engine state behind: release the ID
				// so a retry re-executes.
				c.dedup.Fail(id, err)
				decideError(w, err)
				return
			}
			data, err := json.Marshal(resp)
			if err != nil {
				c.dedup.Fail(id, err)
				httpError(w, http.StatusInternalServerError, err)
				return
			}
			data = append(data, '\n')
			// Commit the exact bytes being acknowledged — what makes a
			// replayed duplicate byte-identical to the original response.
			c.dedup.Commit(id, data, len(req.Tasks))
			c.metrics.ObserveLatency(time.Since(start))
			writeRawJSON(w, http.StatusOK, data)
			return
		}
		resp, err := c.Decide(r.Context(), &req)
		if err != nil {
			decideError(w, err)
			return
		}
		c.metrics.ObserveLatency(time.Since(start))
		writeJSON(w, http.StatusOK, resp)
	})
	mux.HandleFunc("POST /v1/admin/machines", func(w http.ResponseWriter, r *http.Request) {
		var req AdminMachineRequest
		dec := json.NewDecoder(http.MaxBytesReader(w, r.Body, 1<<16))
		dec.DisallowUnknownFields()
		if err := dec.Decode(&req); err != nil {
			httpError(w, http.StatusBadRequest, fmt.Errorf("service: bad admin body: %w", err))
			return
		}
		resp, err := c.Admin(r.Context(), &req)
		if err != nil {
			switch {
			case errors.Is(err, ErrDraining):
				httpError(w, http.StatusServiceUnavailable, err)
			case errors.Is(err, errAdminConflict):
				httpError(w, http.StatusConflict, err)
			default:
				httpError(w, http.StatusBadRequest, err)
			}
			return
		}
		writeJSON(w, http.StatusOK, resp)
	})
	mux.HandleFunc("POST /v1/drain", func(w http.ResponseWriter, r *http.Request) {
		res, err := c.Drain(r.Context())
		if err != nil {
			httpError(w, http.StatusServiceUnavailable, err)
			return
		}
		writeJSON(w, http.StatusOK, &DrainResponse{Result: res})
	})
	mux.HandleFunc("GET /v1/stats", func(w http.ResponseWriter, r *http.Request) {
		shards, err := c.ShardStats(r.Context())
		if err != nil {
			httpError(w, http.StatusServiceUnavailable, err)
			return
		}
		writeJSON(w, http.StatusOK, &StatsResponse{Router: c.policy.Name(), Shards: shards})
	})
	mux.HandleFunc("GET /healthz", func(w http.ResponseWriter, r *http.Request) {
		st := StatusResponse{
			Status:    "ok",
			Profile:   c.cfg.Profile,
			Mapper:    c.cfg.Mapper,
			Dropper:   c.cfg.Dropper,
			Machines:  c.cl.NumMachines(),
			Shards:    len(c.shards),
			Router:    c.policy.Name(),
			Partition: c.cfg.Partition,
		}
		if c.Draining() {
			st.Status = "draining"
		}
		writeJSON(w, http.StatusOK, &st)
	})
	mux.HandleFunc("GET /readyz", func(w http.ResponseWriter, r *http.Request) {
		if c.Draining() {
			writeJSON(w, http.StatusServiceUnavailable, &ReadyResponse{Status: "draining"})
			return
		}
		writeJSON(w, http.StatusOK, &ReadyResponse{Ready: true, Status: "ok"})
	})
	mux.HandleFunc("GET /debug/traces", func(w http.ResponseWriter, r *http.Request) {
		writeJSON(w, http.StatusOK, c.Traces())
	})
	mux.HandleFunc("GET /metrics", func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
		c.metrics.WritePrometheus(w)
		writeShardGauges(w, c)
		writeMembershipGauges(w, c)
		writeCalcMetrics(w, c)
		c.tel.WritePrometheus(w)
		telemetry.WriteRuntimeMetrics(w)
		if c.jmetrics != nil {
			writeJournalMetrics(w, c)
		}
		if c.dedup != nil {
			fmt.Fprintf(w, "# HELP taskdrop_dedup_hits_total Duplicate decision-ID requests served from the dedup window.\n")
			fmt.Fprintf(w, "# TYPE taskdrop_dedup_hits_total counter\n")
			fmt.Fprintf(w, "taskdrop_dedup_hits_total %d\n", c.dedup.Hits())
			fmt.Fprintf(w, "# HELP taskdrop_dedup_entries Decision IDs currently retained in the dedup window.\n")
			fmt.Fprintf(w, "# TYPE taskdrop_dedup_entries gauge\n")
			fmt.Fprintf(w, "taskdrop_dedup_entries %d\n", c.dedup.Len())
		}
		// Engine gauges come from the decision loops; skip them once drained
		// (counters above still tell the whole story).
		if snap, err := c.Stats(r.Context()); err == nil {
			writeEngineGauges(w, c, snap)
		} else if res, ok := c.FinalResult(); ok {
			fmt.Fprintf(w, "# HELP taskdrop_final_robustness_pct Robustness of the drained run.\n")
			fmt.Fprintf(w, "# TYPE taskdrop_final_robustness_pct gauge\n")
			fmt.Fprintf(w, "taskdrop_final_robustness_pct %g\n", res.RobustnessPct)
		}
	})
	return mux
}

// writeShardGauges renders the per-shard series: decision counters from
// each shard's metrics and load/robustness gauges from the lock-free
// router views — none of it goes through a decision loop, so the scrape
// stays cheap and never stalls behind admission work.
func writeShardGauges(w http.ResponseWriter, c *Controller) {
	fmt.Fprintf(w, "# HELP taskdrop_shard_decisions_total Admission decisions by shard and action.\n")
	fmt.Fprintf(w, "# TYPE taskdrop_shard_decisions_total counter\n")
	for _, sh := range c.shards {
		fmt.Fprintf(w, "taskdrop_shard_decisions_total{shard=\"%d\",action=\"map\"} %d\n", sh.id, sh.metrics.mapped.Load())
		fmt.Fprintf(w, "taskdrop_shard_decisions_total{shard=\"%d\",action=\"defer\"} %d\n", sh.id, sh.metrics.deferred.Load())
		fmt.Fprintf(w, "taskdrop_shard_decisions_total{shard=\"%d\",action=\"drop\"} %d\n", sh.id, sh.metrics.dropped.Load())
	}
	fmt.Fprintf(w, "# HELP taskdrop_shard_queue_mass Outstanding tasks per shard (machine queues + deferred batch).\n")
	fmt.Fprintf(w, "# TYPE taskdrop_shard_queue_mass gauge\n")
	for _, sh := range c.shards {
		fmt.Fprintf(w, "taskdrop_shard_queue_mass{shard=\"%d\"} %d\n", sh.id, sh.view.QueueMass())
	}
	fmt.Fprintf(w, "# HELP taskdrop_shard_free_slots Open queue slots per shard.\n")
	fmt.Fprintf(w, "# TYPE taskdrop_shard_free_slots gauge\n")
	for _, sh := range c.shards {
		fmt.Fprintf(w, "taskdrop_shard_free_slots{shard=\"%d\"} %d\n", sh.id, sh.view.FreeSlots())
	}
	fmt.Fprintf(w, "# HELP taskdrop_shard_robustness_estimate Mean expected on-time probability across task classes per shard.\n")
	fmt.Fprintf(w, "# TYPE taskdrop_shard_robustness_estimate gauge\n")
	nt := c.matrix.NumTaskTypes()
	for _, sh := range c.shards {
		sum := 0.0
		for class := 0; class < nt; class++ {
			sum += sh.view.ClassRobustness(class)
		}
		fmt.Fprintf(w, "taskdrop_shard_robustness_estimate{shard=\"%d\"} %g\n", sh.id, sum/float64(nt))
	}
}

// writeMembershipGauges renders the dynamic-membership series: operation
// counts, per-shard live/removed machine census, degraded flags, shed
// (429) counters and rebalancer moves. Everything reads atomics or the
// lock-free router views — no decision loop is touched.
func writeMembershipGauges(w io.Writer, c *Controller) {
	p := func(format string, args ...any) { fmt.Fprintf(w, format, args...) }
	p("# HELP taskdrop_membership_ops_total Membership operations applied, by op.\n")
	p("# TYPE taskdrop_membership_ops_total counter\n")
	p("taskdrop_membership_ops_total{op=\"add\"} %d\n", c.memberOps[journal.MemberAdd].Load())
	p("taskdrop_membership_ops_total{op=\"remove\"} %d\n", c.memberOps[journal.MemberRemove].Load())
	p("taskdrop_membership_ops_total{op=\"revive\"} %d\n", c.memberOps[journal.MemberRevive].Load())
	p("# HELP taskdrop_membership_live_machines Machines currently in the live set, per shard.\n")
	p("# TYPE taskdrop_membership_live_machines gauge\n")
	for _, sh := range c.shards {
		p("taskdrop_membership_live_machines{shard=\"%d\"} %d\n", sh.id, sh.liveMachines.Load())
	}
	p("# HELP taskdrop_membership_removed_machines Machines currently removed from the live set, per shard.\n")
	p("# TYPE taskdrop_membership_removed_machines gauge\n")
	for _, sh := range c.shards {
		p("taskdrop_membership_removed_machines{shard=\"%d\"} %d\n", sh.id, sh.removedMachines.Load())
	}
	p("# HELP taskdrop_membership_degraded Whether the shard has no live machines (sheds with 429).\n")
	p("# TYPE taskdrop_membership_degraded gauge\n")
	for _, sh := range c.shards {
		d := 0
		if sh.liveMachines.Load() == 0 {
			d = 1
		}
		p("taskdrop_membership_degraded{shard=\"%d\"} %d\n", sh.id, d)
	}
	p("# HELP taskdrop_membership_shed_total Decide sub-batches shed by a degraded shard (HTTP 429).\n")
	p("# TYPE taskdrop_membership_shed_total counter\n")
	for _, sh := range c.shards {
		p("taskdrop_membership_shed_total{shard=\"%d\"} %d\n", sh.id, sh.metrics.shed.Load())
	}
	p("# HELP taskdrop_rebalance_moves_total Machines migrated between shards by the rebalancer.\n")
	p("# TYPE taskdrop_rebalance_moves_total counter\n")
	p("taskdrop_rebalance_moves_total %d\n", c.rebalanceMoves.Load())
}

// writeEngineGauges renders the live queue-state gauges.
func writeEngineGauges(w http.ResponseWriter, c *Controller, snap Snapshot) {
	machines := c.matrix.Machines()
	fmt.Fprintf(w, "# HELP taskdrop_virtual_clock_ticks The server's virtual clock.\n")
	fmt.Fprintf(w, "# TYPE taskdrop_virtual_clock_ticks gauge\n")
	fmt.Fprintf(w, "taskdrop_virtual_clock_ticks %d\n", snap.Now)
	fmt.Fprintf(w, "# HELP taskdrop_queue_depth Tasks queued per machine (incl. running).\n")
	fmt.Fprintf(w, "# TYPE taskdrop_queue_depth gauge\n")
	for i, d := range snap.QueueDepths {
		name := c.machineName(i)
		if i < len(machines) {
			name = machines[i].Name
		}
		fmt.Fprintf(w, "taskdrop_queue_depth{machine=\"%d\",name=%q} %d\n", i, name, d)
	}
	fmt.Fprintf(w, "# HELP taskdrop_tasks Live task census by state.\n")
	fmt.Fprintf(w, "# TYPE taskdrop_tasks gauge\n")
	fmt.Fprintf(w, "taskdrop_tasks{state=\"batch\"} %d\n", snap.Live.Batch)
	fmt.Fprintf(w, "taskdrop_tasks{state=\"queued\"} %d\n", snap.Live.Queued)
	fmt.Fprintf(w, "taskdrop_tasks{state=\"running\"} %d\n", snap.Live.Running)
	fmt.Fprintf(w, "taskdrop_tasks{state=\"on_time\"} %d\n", snap.Live.OnTime)
	fmt.Fprintf(w, "taskdrop_tasks{state=\"late\"} %d\n", snap.Live.Late)
	fmt.Fprintf(w, "taskdrop_tasks{state=\"dropped_reactive\"} %d\n", snap.Live.DroppedReactive)
	fmt.Fprintf(w, "taskdrop_tasks{state=\"dropped_proactive\"} %d\n", snap.Live.DroppedProactive)
	fmt.Fprintf(w, "taskdrop_tasks{state=\"failed\"} %d\n", snap.Live.Failed)
}

// decideStatus maps controller errors onto HTTP statuses.
func decideStatus(err error) int {
	if errors.Is(err, ErrDraining) {
		return http.StatusServiceUnavailable
	}
	if errors.Is(err, ErrShardDegraded) {
		return http.StatusTooManyRequests
	}
	return http.StatusBadRequest
}

// decideError writes one failed decide. A degraded-shard shed carries a
// Retry-After so well-behaved clients pace their retries.
func decideError(w http.ResponseWriter, err error) {
	code := decideStatus(err)
	if code == http.StatusTooManyRequests {
		w.Header().Set("Retry-After", "1")
	}
	httpError(w, code, err)
}

type errorBody struct {
	Error string `json:"error"`
}

func httpError(w http.ResponseWriter, code int, err error) {
	writeJSON(w, code, errorBody{Error: err.Error()})
}

func writeJSON(w http.ResponseWriter, code int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	_ = json.NewEncoder(w).Encode(v)
}

// writeRawJSON writes pre-encoded JSON bytes (already newline-terminated)
// — the dedup path, where the response must be byte-identical to the
// original acknowledgement.
func writeRawJSON(w http.ResponseWriter, code int, data []byte) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	_, _ = w.Write(data)
}

package service

import (
	"fmt"
	"strconv"
	"strings"
)

// Churn plans: hcload's fault-injection harness. A plan is a schedule of
// admin membership operations fired at task-index points of a replay —
// "kill machine 3 after 500 tasks, revive it after 1500" — driving the
// server through the same churn a production cluster sees, but
// reproducibly.

// ChurnAction is one scheduled membership operation of a churn plan.
type ChurnAction struct {
	// AtTask is the 0-based task index (within the replayed window) the
	// operation fires at: Replay applies it immediately before the decide
	// batch containing that index.
	AtTask int                 `json:"at_task"`
	Req    AdminMachineRequest `json:"req"`
}

// ParseChurnPlan parses hcload's -churn grammar: comma-separated actions
//
//	<at>:remove:<machine>[:drop]   remove (queue handed off; :drop force-drops)
//	<at>:revive:<machine>          revive a removed machine
//	<at>:add:<shard>:<type>        add a machine of <type> to <shard>
//
// where <at> is the 0-based task index the action fires before and
// <machine> is a matrix-wide machine index. Actions may be given in any
// order; Replay fires them sorted by task index.
func ParseChurnPlan(s string) ([]ChurnAction, error) {
	if strings.TrimSpace(s) == "" {
		return nil, nil
	}
	var plan []ChurnAction
	for _, part := range strings.Split(s, ",") {
		fields := strings.Split(strings.TrimSpace(part), ":")
		if len(fields) < 3 {
			return nil, fmt.Errorf("service: churn action %q, want \"<at>:<op>:...\"", part)
		}
		at, err := strconv.Atoi(fields[0])
		if err != nil || at < 0 {
			return nil, fmt.Errorf("service: churn action %q: bad task index %q", part, fields[0])
		}
		a := ChurnAction{AtTask: at}
		switch op := fields[1]; op {
		case AdminOpRemove:
			m, err := strconv.Atoi(fields[2])
			if err != nil {
				return nil, fmt.Errorf("service: churn action %q: bad machine %q", part, fields[2])
			}
			a.Req = AdminMachineRequest{Op: AdminOpRemove, Machine: m, Handoff: true}
			switch {
			case len(fields) == 3:
			case len(fields) == 4 && fields[3] == "drop":
				a.Req.Handoff = false
			default:
				return nil, fmt.Errorf("service: churn action %q, want \"<at>:remove:<machine>[:drop]\"", part)
			}
		case AdminOpRevive:
			if len(fields) != 3 {
				return nil, fmt.Errorf("service: churn action %q, want \"<at>:revive:<machine>\"", part)
			}
			m, err := strconv.Atoi(fields[2])
			if err != nil {
				return nil, fmt.Errorf("service: churn action %q: bad machine %q", part, fields[2])
			}
			a.Req = AdminMachineRequest{Op: AdminOpRevive, Machine: m}
		case AdminOpAdd:
			if len(fields) != 4 {
				return nil, fmt.Errorf("service: churn action %q, want \"<at>:add:<shard>:<type>\"", part)
			}
			sh, err := strconv.Atoi(fields[2])
			if err != nil {
				return nil, fmt.Errorf("service: churn action %q: bad shard %q", part, fields[2])
			}
			mt, err := strconv.Atoi(fields[3])
			if err != nil {
				return nil, fmt.Errorf("service: churn action %q: bad type %q", part, fields[3])
			}
			a.Req = AdminMachineRequest{Op: AdminOpAdd, Shard: sh, Type: mt}
		default:
			return nil, fmt.Errorf("service: churn action %q: op %q, want remove, revive or add", part, op)
		}
		plan = append(plan, a)
	}
	return plan, nil
}

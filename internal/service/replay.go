package service

import (
	"bytes"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"math"
	"time"

	"github.com/hpcclab/taskdrop/internal/core"
	"github.com/hpcclab/taskdrop/internal/journal"
	"github.com/hpcclab/taskdrop/internal/mapping"
	"github.com/hpcclab/taskdrop/internal/pet"
	"github.com/hpcclab/taskdrop/internal/pmf"
	"github.com/hpcclab/taskdrop/internal/router"
	"github.com/hpcclab/taskdrop/internal/sim"
	"github.com/hpcclab/taskdrop/internal/telemetry"
	"github.com/hpcclab/taskdrop/internal/workload"
)

// Offline journal replay (cmd/hcreplay).
//
// The journal's arrive records are the ground truth: a shard engine is
// deterministic, so feeding them through a fresh engine built from the
// manifest re-derives every decision and terminal event. The logged
// decision/event records and the checkpoints are therefore redundant by
// construction — which is exactly what makes the log auditable: VerifyShard
// recomputes the derived stream from scratch and fails on the first record
// where the recomputation and the recording disagree.

// robustnessTol bounds the acceptable divergence when comparing replayed
// router EWMAs against checkpointed ones. Both sides run the same float
// operations in the same order, so anything beyond noise is a real
// divergence.
const robustnessTol = 1e-9

// replayColdChains makes replay engines run with the persistent chain
// caches disabled (sim.Config.ColdChains). The live server always records
// warm; a cold verify pass recomputing the identical decision stream is
// the end-to-end proof the caches are bitwise-transparent. Toggled by the
// warm-vs-cold journal test.
var replayColdChains bool

// shardReplayer drives a from-scratch deterministic replay of one shard's
// journal: a fresh engine (built from the manifest exactly as service.New
// builds it), the shard's router view, and the derived records the replay
// generates for comparison against the log.
type shardReplayer struct {
	man    Manifest
	matrix *pet.Matrix
	eng    *sim.Engine
	view   *router.ShardView
	global []int

	watermark                 int64
	requests                  int64
	mapped, deferred, dropped int64
	drained                   bool

	// gen holds the derived records (decisions, terminal events, drain
	// markers) the replay produces, awaiting match against logged ones.
	gen []journal.Record
}

// newShardReplayer rebuilds shard s's engine from a journal root's
// manifest. The construction mirrors service.New: same cluster partition,
// same per-shard mapper/dropper instances, same config split.
func newShardReplayer(root string, s int) (*shardReplayer, error) {
	man, err := LoadManifest(root)
	if err != nil {
		return nil, err
	}
	if s < 0 || s >= man.Shards {
		return nil, fmt.Errorf("service: shard %d out of range [0,%d)", s, man.Shards)
	}
	matrix, err := pet.CachedMatrix(man.Profile)
	if err != nil {
		return nil, err
	}
	policy, err := router.FromSpec(man.Router)
	if err != nil {
		return nil, err
	}
	simCfg := sim.Config{
		QueueCap:          man.QueueCap,
		BoundaryExclusion: man.BoundaryExclusion,
		DropOnArrival:     man.DropOnArrival,
		ReactiveGrace:     man.Grace,
		ColdChains:        replayColdChains,
	}
	cl, err := buildCluster(matrix, man.Partition, man.Shards, policy, func(int) (sim.Mapper, core.Policy, error) {
		m, err := mapping.FromSpec(man.Mapper)
		if err != nil {
			return nil, nil, err
		}
		d, err := core.PolicyFromSpec(man.Dropper)
		if err != nil {
			return nil, nil, err
		}
		return m, d, nil
	}, simCfg)
	if err != nil {
		return nil, err
	}
	r := &shardReplayer{
		man:       man,
		matrix:    matrix,
		eng:       cl.Shards()[s],
		view:      cl.View(s),
		global:    cl.GlobalMachines(s),
		watermark: -1,
	}
	r.eng.SetJournal(func(ts *sim.TaskState, now pmf.Tick) {
		r.gen = append(r.gen, journal.Record{
			Kind:   journal.KindEvent,
			Seq:    int64(ts.Task.ID),
			Action: uint8(ts.Status),
			Tick:   now,
		})
	})
	return r, nil
}

// task reconstructs the engine task of one arrive record — the inverse of
// journalArrive + makeTask (the recorded Exec already carries the resolved
// execution times, so no PET fallback is needed).
func (r *shardReplayer) task(rec *journal.Record) *workload.Task {
	return &workload.Task{
		ID:         int(rec.Seq),
		Type:       pet.TaskType(rec.Type),
		Arrival:    rec.Tick,
		Deadline:   rec.Deadline,
		ExecByType: rec.Exec,
	}
}

// feed replays one arrive record through the engine, generating the
// decision record the live service would have logged (the engine hook
// generates the terminal events as a side effect of Feed).
func (r *shardReplayer) feed(rec *journal.Record) *sim.TaskState {
	ts := r.eng.Feed(r.task(rec))
	r.eng.ObserveDecision(r.view, ts)
	switch actionOf(ts.Status) {
	case ActionMap:
		r.mapped++
	case ActionDefer:
		r.deferred++
	default:
		r.dropped++
	}
	act := journal.ActDrop
	switch actionOf(ts.Status) {
	case ActionMap:
		act = journal.ActMap
	case ActionDefer:
		act = journal.ActDefer
	}
	r.gen = append(r.gen, journal.Record{
		Kind:    journal.KindDecision,
		Seq:     rec.Seq,
		Action:  act,
		Machine: int32(ts.Machine),
		Tick:    r.eng.Now(),
	})
	if rec.Seq > r.watermark {
		r.watermark = rec.Seq
	}
	return ts
}

// applyMembership re-applies one journaled membership record to the
// replayed engine — membership records are replay inputs like arrives,
// never matched. For adds the global table grows with a -1 sentinel: the
// controller's matrix-wide numbering for added machines spans all shards
// and cannot be re-derived from one shard's log, and nothing the replay
// verifies depends on it (generated records carry local indexes and
// checkpoints compare engine snapshots).
func (r *shardReplayer) applyMembership(rec *journal.Record) error {
	switch rec.Action {
	case journal.MemberAdd:
		if _, err := r.eng.AddMachine(pet.MachineType(rec.Type)); err != nil {
			return fmt.Errorf("membership replay: %w", err)
		}
		r.global = append(r.global, -1)
		return nil
	case journal.MemberRemove:
		if err := r.eng.RemoveMachine(int(rec.Machine), rec.NTasks != 0); err != nil {
			return fmt.Errorf("membership replay: %w", err)
		}
		return nil
	case journal.MemberRevive:
		if err := r.eng.ReviveMachine(int(rec.Machine)); err != nil {
			return fmt.Errorf("membership replay: %w", err)
		}
		return nil
	default:
		return fmt.Errorf("membership replay: op %d", rec.Action)
	}
}

// drain replays a graceful drain: run the engine to completion (the hook
// streams the terminal events) and generate the drain marker.
func (r *shardReplayer) drain() {
	r.eng.Drain()
	r.drained = true
	r.gen = append(r.gen, journal.Record{Kind: journal.KindDrain, Tick: r.eng.Now()})
}

// VerifyStats summarizes one shard's verified log.
type VerifyStats struct {
	Shard       int
	Records     int // logged records consumed
	Arrives     int
	Derived     int // logged decision/event/drain records matched
	Checkpoints int // snapshots compared against the replayed state
	// Traces counts stage-timing trace records skipped: they carry
	// wall-clock observations replay cannot re-derive.
	Traces int
	// Membership counts membership records re-applied as replay inputs.
	Membership int
	// Unflushed counts derived records the replay produced past the end of
	// the log — the suffix a crash cut off before it was committed.
	Unflushed int
	// FinalSeqWatermark is the replayed shard's highest decided sequence.
	FinalSeqWatermark int64
}

// VerifyShard replays shard s's journal from scratch and proves the log
// self-consistent: every logged decision, terminal event and drain marker
// must equal the one the deterministic re-execution derives, and every
// checkpoint must equal the replayed state at its segment boundary. A
// truncated tail (crash) is tolerated — the log is then a prefix of the
// derived stream — but any interior disagreement is an error.
func VerifyShard(root string, s int) (*VerifyStats, error) {
	r, err := newShardReplayer(root, s)
	if err != nil {
		return nil, err
	}
	dir := ShardJournalDir(root, s)
	segs, err := journal.Segments(dir)
	if err != nil {
		return nil, err
	}
	snaps, err := journal.Snapshots(dir)
	if err != nil {
		return nil, err
	}
	hasSnap := make(map[int]bool, len(snaps))
	for _, k := range snaps {
		hasSnap[k] = true
	}

	st := &VerifyStats{Shard: s}
	var logged []journal.Record // unmatched logged derived records
	match := func() error {
		for len(logged) > 0 && len(r.gen) > 0 {
			want, got := logged[0], r.gen[0]
			logged, r.gen = logged[1:], r.gen[1:]
			if want.Kind != got.Kind || want.Seq != got.Seq || want.Tick != got.Tick ||
				want.Action != got.Action || want.Machine != got.Machine {
				return fmt.Errorf("shard %d: record %d: log has %s, replay derives %s",
					s, st.Records, want.String(), got.String())
			}
			st.Derived++
		}
		return nil
	}

	for _, seg := range segs {
		err := journal.ScanSegment(journal.SegmentPath(dir, seg), func(rec *journal.Record) error {
			st.Records++
			switch rec.Kind {
			case journal.KindBatch:
				r.requests++
			case journal.KindArrive:
				st.Arrives++
				r.feed(rec)
			case journal.KindDrain:
				// Logged drain: the derived events for it may still be queued
				// in `logged` (they precede the marker in the log); draining
				// now generates their counterparts.
				r.drain()
				logged = append(logged, *rec)
			case journal.KindTrace:
				// Stage timings are wall-clock observations — replay cannot
				// re-derive them, so verification skips them by design.
				st.Traces++
			case journal.KindMembership:
				st.Membership++
				if err := r.applyMembership(rec); err != nil {
					return err
				}
			default:
				logged = append(logged, *rec)
			}
			return match()
		})
		if err != nil {
			return st, err
		}
		if !hasSnap[seg] {
			continue
		}
		// Snapshot seg captures the state after every record of segment seg
		// (the writer rotates at the checkpoint): compare it field by field
		// against the replayed state at this exact boundary.
		payload, err := journal.ReadSnapshotFile(journal.SnapshotPath(dir, seg))
		if err != nil {
			// A torn snapshot is not a log defect — recovery falls back to an
			// older one and replays a longer tail. Skip it like Recover does.
			continue
		}
		if err := r.compareCheckpoint(payload, s, seg); err != nil {
			return st, err
		}
		st.Checkpoints++
	}

	// A crash may have cut the log after the engine advanced: derived
	// records the replay produced but the log never committed are the
	// expected torn suffix. Logged records the replay cannot explain are
	// not.
	if err := match(); err != nil {
		return st, err
	}
	if len(logged) > 0 {
		return st, fmt.Errorf("shard %d: %d logged records beyond what replay derives (first: %s)",
			s, len(logged), logged[0].String())
	}
	st.Unflushed = len(r.gen)
	st.FinalSeqWatermark = r.watermark
	return st, nil
}

// compareCheckpoint matches one checkpoint payload against the replayed
// state. Engine snapshots are compared through their canonical JSON so
// both sides share one serialization (the stored one already did the
// round trip).
func (r *shardReplayer) compareCheckpoint(payload []byte, s, seg int) error {
	var cp ShardCheckpoint
	if err := json.Unmarshal(payload, &cp); err != nil {
		return fmt.Errorf("shard %d: snapshot %d: %w", s, seg, err)
	}
	if cp.SeqWatermark != r.watermark {
		return fmt.Errorf("shard %d: snapshot %d: watermark %d, replay at %d", s, seg, cp.SeqWatermark, r.watermark)
	}
	if cp.Requests != r.requests || cp.Mapped != r.mapped || cp.Deferred != r.deferred || cp.Dropped != r.dropped {
		return fmt.Errorf("shard %d: snapshot %d: counters (req %d map %d defer %d drop %d), replay (req %d map %d defer %d drop %d)",
			s, seg, cp.Requests, cp.Mapped, cp.Deferred, cp.Dropped, r.requests, r.mapped, r.deferred, r.dropped)
	}
	for class, p := range cp.Robustness {
		if got := r.view.ClassRobustness(class); math.Abs(got-p) > robustnessTol {
			return fmt.Errorf("shard %d: snapshot %d: class %d robustness %g, replay %g", s, seg, class, p, got)
		}
	}
	if cp.Engine == nil {
		return fmt.Errorf("shard %d: snapshot %d: no engine snapshot", s, seg)
	}
	want, err := json.Marshal(cp.Engine)
	if err != nil {
		return err
	}
	got, err := json.Marshal(r.eng.Snapshot())
	if err != nil {
		return err
	}
	if !bytes.Equal(got, want) {
		return fmt.Errorf("shard %d: snapshot %d: engine state diverged from replay", s, seg)
	}
	return nil
}

// VerifyAll verifies every shard of a journal root, in shard order.
func VerifyAll(root string) ([]*VerifyStats, error) {
	man, err := LoadManifest(root)
	if err != nil {
		return nil, err
	}
	out := make([]*VerifyStats, 0, man.Shards)
	for s := 0; s < man.Shards; s++ {
		st, err := VerifyShard(root, s)
		if st != nil {
			out = append(out, st)
		}
		if err != nil {
			return out, err
		}
	}
	return out, nil
}

// errAuditStop aborts the audit's replay scan once the target decision is
// reached.
var errAuditStop = errors.New("audit: stop")

// AuditDecision replays shard s's journal up to (but not including)
// decision seq, then explains that decision: the queue state the admission
// saw, the Eq. 1 completion-time forecast of every queued task and of the
// arriving candidate on every machine, the dropping policy's verdict over
// each queue, and finally the re-derived decision next to the logged one.
// verbose additionally prints the candidate's full completion-time PMFs.
func AuditDecision(w io.Writer, root string, s int, seq int64, verbose bool) error {
	r, err := newShardReplayer(root, s)
	if err != nil {
		return err
	}
	dir := ShardJournalDir(root, s)

	// First pass: find the target arrive and capture the logged derived
	// records for it (they follow the arrive in the log), plus its stage
	// trace if the decision was sampled (trace records trail by a commit).
	var target *journal.Record
	var loggedDecision *journal.Record
	var loggedTrace *journal.Record
	var loggedEvents []journal.Record
	err = journal.ReplayAll(dir, func(rec *journal.Record) error {
		switch rec.Kind {
		case journal.KindArrive:
			if rec.Seq == seq {
				c := *rec
				target = &c
			}
		case journal.KindDecision:
			if rec.Seq == seq {
				c := *rec
				loggedDecision = &c
			}
		case journal.KindTrace:
			if rec.Seq == seq {
				c := *rec
				loggedTrace = &c
			}
		case journal.KindEvent:
			if target != nil && loggedDecision == nil {
				// Terminal events logged between the arrive and its decision:
				// the side effects of admitting this task.
				loggedEvents = append(loggedEvents, *rec)
			}
		}
		return nil
	})
	if err != nil {
		return err
	}
	if target == nil {
		return fmt.Errorf("service: no arrive record with seq %d in shard %d of %s", seq, s, root)
	}

	// Second pass: replay every earlier arrive, stopping just before the
	// target so the engine holds the exact pre-decision state.
	err = journal.ReplayAll(dir, func(rec *journal.Record) error {
		switch rec.Kind {
		case journal.KindArrive:
			if rec.Seq == seq {
				return errAuditStop
			}
			r.feed(rec)
		case journal.KindDrain:
			r.drain()
		case journal.KindMembership:
			return r.applyMembership(rec)
		}
		return nil
	})
	if err != nil && !errors.Is(err, errAuditStop) {
		return err
	}

	t := r.task(target)
	fmt.Fprintf(w, "decision seq %d (shard %d of %s)\n", seq, s, root)
	fmt.Fprintf(w, "task: type=%d arrival=%d deadline=%d exec_by_type=%v\n", t.Type, t.Arrival, t.Deadline, t.ExecByType)

	// The admission pipeline advances the clock to the arrival, runs the
	// reactive sweep and the mapping event; advancing here (without feeding)
	// exposes the queue state the dropper and mapper then consulted.
	r.eng.AdvanceTo(t.Arrival)
	now := r.eng.Now()
	fmt.Fprintf(w, "clock at decision: %d\n", now)

	dropper, err := core.PolicyFromSpec(r.man.Dropper)
	if err != nil {
		return err
	}
	live := r.eng.LiveCounts()
	// Live machines only: removed capacity advertises no slots, so it is
	// out of the pressure denominator (matching the engine's proactive
	// sweep under churn).
	totalSlots := r.man.QueueCap * r.eng.LiveMachines()
	pressure := 0.0
	if totalSlots > 0 {
		pressure = float64(live.Batch) / float64(totalSlots)
	}
	machines := r.matrix.Machines()
	calc := r.eng.Calc()
	out := make(map[int]bool)
	for _, ri := range r.eng.RemovedMachines() {
		out[ri] = true
	}

	fmt.Fprintf(w, "queues and Eq. 1 forecasts (deferred batch %d, pressure %.3f):\n", live.Batch, pressure)
	for i, m := range r.eng.Machines() {
		mt := m.Spec.Type
		g := -1
		if i < len(r.global) {
			g = r.global[i]
		}
		if out[i] {
			fmt.Fprintf(w, "  machine %d %q (local %d): removed from the live set\n", g, m.Spec.Name, i)
			continue
		}
		q := r.eng.CoreQueue(i)
		fmt.Fprintf(w, "  machine %d %q (local %d):\n", g, m.Spec.Name, i)
		probs := calc.SuccessProbs(mt, now, q)
		for j, qt := range q {
			state := "pending"
			if qt.Running {
				state = fmt.Sprintf("running %d ticks", qt.Elapsed)
			}
			fmt.Fprintf(w, "    slot %d: type=%d deadline=%d %s  P(on time)=%.4f\n", j, qt.Type, qt.Deadline, state, probs[j])
		}
		// The candidate appended at the tail: its Eq. 1 completion-time PMF
		// chained over the queue, and the Eq. 2 mass before its deadline.
		cq := append(append([]core.QueueTask(nil), q...), core.QueueTask{Type: t.Type, Deadline: t.Deadline})
		cs := calc.CompletionPMFs(mt, now, cq)
		cand := cs[len(cs)-1]
		fmt.Fprintf(w, "    candidate: P(on time)=%.4f mean=%.1f span=[%d,%d]\n",
			cand.MassBefore(t.Deadline), cand.Mean(), cand.Min(), cand.Max())
		if verbose {
			fmt.Fprintf(w, "    candidate PMF: %s\n", cand.String())
		}
		verdict := dropper.Decide(&core.Context{
			Calc: calc, Machine: mt, Now: now, Queue: q,
			BatchPressure: pressure, Grace: r.man.Grace,
		})
		if len(verdict) > 0 {
			fmt.Fprintf(w, "    dropper %q would drop slots %v\n", dropper.Name(), verdict)
		}
	}

	// Re-derive the decision and set it against the logged record.
	ts := r.feed(target)
	d := Decision{Seq: int(seq), Shard: s, Machine: -1, Action: actionOf(ts.Status)}
	if d.Action == ActionMap {
		d.Machine = r.global[ts.Machine]
		if d.Machine >= 0 && d.Machine < len(machines) {
			d.MachineName = machines[d.Machine].Name
		} else {
			d.MachineName = r.eng.Machines()[ts.Machine].Spec.Name
		}
	}
	if d.Action == ActionMap {
		fmt.Fprintf(w, "replayed decision: %s -> machine %d %q\n", d.Action, d.Machine, d.MachineName)
	} else {
		fmt.Fprintf(w, "replayed decision: %s\n", d.Action)
	}
	for _, ev := range loggedEvents {
		fmt.Fprintf(w, "logged side effect: %s\n", ev.String())
	}
	if loggedDecision != nil {
		fmt.Fprintf(w, "logged decision:   %s\n", loggedDecision.String())
	} else {
		fmt.Fprintf(w, "logged decision:   (not committed — the log ends before it)\n")
	}

	// Stage timings of the live decision, if it was sampled: the one part
	// of the audit replay cannot re-derive (wall clocks do not replay).
	if loggedTrace != nil {
		fmt.Fprintf(w, "recorded stage timings (offsets from request receipt):\n")
		for _, sp := range loggedTrace.Spans {
			fmt.Fprintf(w, "  %-8s %12s  [+%s, +%s]\n",
				telemetry.Stage(sp.Stage).String(),
				time.Duration(sp.EndNS-sp.StartNS),
				time.Duration(sp.StartNS),
				time.Duration(sp.EndNS))
		}
	} else {
		fmt.Fprintf(w, "recorded stage timings: none (trace sampling off, seq unsampled, or the trace record was not committed)\n")
	}
	return nil
}

package service

import (
	"context"
	"errors"
	"fmt"
	"sync"

	"github.com/hpcclab/taskdrop/internal/journal"
	"github.com/hpcclab/taskdrop/internal/pet"
	"github.com/hpcclab/taskdrop/internal/pmf"
)

// Dynamic membership: POST /v1/admin/machines changes a running
// controller's machine set. Each operation executes on the target shard's
// decision loop — serialized against admissions exactly like a decide
// sub-batch — and is journaled as a KindMembership record and committed
// before it is acknowledged, so a crashed server recovers its post-churn
// membership and hcreplay re-derives the decision stream across it.

// Admin operations on the wire (AdminMachineRequest.Op).
const (
	AdminOpAdd    = "add"
	AdminOpRemove = "remove"
	AdminOpRevive = "revive"
)

// ErrShardDegraded is returned for a decide batch routed to a shard with
// no live machines. The HTTP layer maps it to 429 with a Retry-After so
// clients back off and retry instead of wedging behind a shard that can
// run nothing.
var ErrShardDegraded = errors.New("service: shard has no live machines")

// errAdminConflict marks a membership operation rejected by the engine's
// current state (machine already removed, not removed, ...) — 409 on the
// wire, distinguishing it from malformed requests (400).
var errAdminConflict = errors.New("service: membership conflict")

// AdminMachineRequest is the body of POST /v1/admin/machines.
type AdminMachineRequest struct {
	// Op is "add", "remove" or "revive".
	Op string `json:"op"`
	// Machine is the matrix-wide machine index to remove or revive.
	Machine int `json:"machine,omitempty"`
	// Shard is the shard a new machine joins (add only).
	Shard int `json:"shard,omitempty"`
	// Type is the new machine's type (add only; must be a type the served
	// profile already prices).
	Type int `json:"type,omitempty"`
	// Handoff controls what removal does with the machine's pending queue:
	// true hands the tasks back to the deferred batch for remapping, false
	// force-drops them as failed.
	Handoff bool `json:"handoff,omitempty"`
}

// AdminMachineResponse is the body returned by POST /v1/admin/machines.
type AdminMachineResponse struct {
	Op string `json:"op"`
	// Shard is the shard the operation executed on.
	Shard int `json:"shard"`
	// Machine is the affected machine's matrix-wide index (for add, the
	// index the new machine was assigned).
	Machine     int    `json:"machine"`
	MachineName string `json:"machine_name,omitempty"`
	// Now is the shard's virtual clock at the operation.
	Now pmf.Tick `json:"now"`
	// LiveMachines is the shard's live machine count afterwards.
	LiveMachines int `json:"live_machines"`
}

// machineDir is the controller's directory of every machine it knows by
// matrix-wide index: the profile's machines plus runtime-added ones (which
// get fresh indexes past the matrix). It exists so HTTP goroutines can
// translate global indexes without touching loop-owned shard state.
type machineDir struct {
	mu    sync.Mutex
	names []string
	types []int
	// shardOf/localOf map a global index to its owning shard and the
	// shard-local machine index; shardOf is -1 for machines another
	// partition process owns.
	shardOf []int
	localOf []int
}

func newMachineDir(machines []pet.MachineSpec) *machineDir {
	d := &machineDir{
		names:   make([]string, len(machines)),
		types:   make([]int, len(machines)),
		shardOf: make([]int, len(machines)),
		localOf: make([]int, len(machines)),
	}
	for i, m := range machines {
		d.names[i] = m.Name
		d.types[i] = int(m.Type)
		d.shardOf[i] = -1
		d.localOf[i] = -1
	}
	return d
}

// claim records that shard s owns global machine g at local index.
func (d *machineDir) claim(g, s, local int) {
	d.mu.Lock()
	defer d.mu.Unlock()
	d.shardOf[g] = s
	d.localOf[g] = local
}

// add registers a runtime-added machine and returns its global index.
func (d *machineDir) add(name string, mt, s, local int) int {
	d.mu.Lock()
	defer d.mu.Unlock()
	g := len(d.names)
	d.names = append(d.names, name)
	d.types = append(d.types, mt)
	d.shardOf = append(d.shardOf, s)
	d.localOf = append(d.localOf, local)
	return g
}

// locate resolves a global index to its owning shard and local index.
func (d *machineDir) locate(g int) (s, local int, ok bool) {
	d.mu.Lock()
	defer d.mu.Unlock()
	if g < 0 || g >= len(d.shardOf) || d.shardOf[g] < 0 {
		return 0, 0, false
	}
	return d.shardOf[g], d.localOf[g], true
}

// name returns the machine's display name ("" when unknown).
func (d *machineDir) name(g int) string {
	d.mu.Lock()
	defer d.mu.Unlock()
	if g < 0 || g >= len(d.names) {
		return ""
	}
	return d.names[g]
}

// typeOf returns the machine's type (-1 when unknown).
func (d *machineDir) typeOf(g int) int {
	d.mu.Lock()
	defer d.mu.Unlock()
	if g < 0 || g >= len(d.types) {
		return -1
	}
	return d.types[g]
}

// size returns the number of known machines (matrix + runtime-added).
func (d *machineDir) size() int {
	d.mu.Lock()
	defer d.mu.Unlock()
	return len(d.names)
}

// machineName resolves a matrix-wide machine index to its name.
func (c *Controller) machineName(g int) string { return c.dir.name(g) }

// Admin applies one membership operation. The operation runs on the
// target shard's decision loop, is journaled and committed before the
// acknowledgement, and updates the shard's router view so the routing
// tier steers around (or back to) the changed capacity immediately.
func (c *Controller) Admin(ctx context.Context, req *AdminMachineRequest) (*AdminMachineResponse, error) {
	if req == nil {
		return nil, fmt.Errorf("service: empty admin request")
	}
	if c.Draining() {
		return nil, ErrDraining
	}
	switch req.Op {
	case AdminOpAdd:
		if req.Shard < 0 || req.Shard >= len(c.shards) {
			return nil, fmt.Errorf("service: admin shard %d of %d", req.Shard, len(c.shards))
		}
		if req.Type < 0 || req.Type >= c.matrix.NumMachineTypes() {
			return nil, fmt.Errorf("service: admin machine type %d of %d", req.Type, c.matrix.NumMachineTypes())
		}
		return c.adminOn(ctx, c.shards[req.Shard], req)
	case AdminOpRemove, AdminOpRevive:
		s, local, ok := c.dir.locate(req.Machine)
		if !ok {
			return nil, fmt.Errorf("service: machine %d is not owned by this server", req.Machine)
		}
		r := *req
		r.Shard = s
		r.Machine = local // shard-local from here on
		return c.adminOn(ctx, c.shards[s], &r)
	default:
		return nil, fmt.Errorf("service: admin op %q, want %q, %q or %q", req.Op, AdminOpAdd, AdminOpRemove, AdminOpRevive)
	}
}

// adminOn executes one validated membership operation on sh's loop. For
// remove/revive req.Machine is already shard-local.
func (c *Controller) adminOn(ctx context.Context, sh *shard, req *AdminMachineRequest) (*AdminMachineResponse, error) {
	var resp *AdminMachineResponse
	var aerr error
	err := sh.do(ctx, func() {
		if sh.stopped {
			aerr = ErrDraining
			return
		}
		var local int
		var action uint8
		var mt int
		switch req.Op {
		case AdminOpAdd:
			i, err := sh.eng.AddMachine(pet.MachineType(req.Type))
			if err != nil {
				aerr = fmt.Errorf("%w: %v", errAdminConflict, err)
				return
			}
			local, action, mt = i, journal.MemberAdd, req.Type
			g := c.dir.add(sh.eng.Machines()[i].Spec.Name, mt, sh.id, i)
			sh.global = append(sh.global, g)
		case AdminOpRemove:
			if err := sh.eng.RemoveMachine(req.Machine, req.Handoff); err != nil {
				aerr = fmt.Errorf("%w: %v", errAdminConflict, err)
				return
			}
			local, action, mt = req.Machine, journal.MemberRemove, c.dir.typeOf(sh.global[req.Machine])
		case AdminOpRevive:
			if err := sh.eng.ReviveMachine(req.Machine); err != nil {
				aerr = fmt.Errorf("%w: %v", errAdminConflict, err)
				return
			}
			local, action, mt = req.Machine, journal.MemberRevive, c.dir.typeOf(sh.global[req.Machine])
		}
		if sh.jw != nil {
			// Commit-before-ack, like a decide sub-batch: the membership
			// record is durable before the client sees the acknowledgement,
			// so recovery always restores the acknowledged membership.
			sh.journalMembership(action, local, mt, req.Handoff)
			if err := sh.commitJournal(); err != nil {
				aerr = err
				return
			}
		}
		sh.eng.PublishLoad(sh.view)
		sh.updateMembershipGauges()
		c.memberOps[action].Add(1)
		resp = &AdminMachineResponse{
			Op:           req.Op,
			Shard:        sh.id,
			Machine:      sh.global[local],
			MachineName:  c.machineName(sh.global[local]),
			Now:          sh.eng.Now(),
			LiveMachines: sh.eng.LiveMachines(),
		}
	})
	if err != nil {
		return nil, err
	}
	if aerr != nil {
		return nil, aerr
	}
	if resp == nil {
		return nil, ErrDraining
	}
	return resp, nil
}

// journalMembership logs one membership operation. NTasks carries the
// remove handoff flag (1 = pending queue handed back to the batch).
func (sh *shard) journalMembership(action uint8, local, mt int, handoff bool) {
	h := int32(0)
	if handoff {
		h = 1
	}
	_ = sh.jw.Append(&journal.Record{
		Kind:    journal.KindMembership,
		Action:  action,
		Machine: int32(local),
		Type:    int32(mt),
		NTasks:  h,
		Tick:    sh.eng.Now(),
	})
}

// applyMembership re-applies one journaled membership record to the
// shard's engine during recovery — membership records are replay inputs
// like arrives. Runs before the shard loop starts.
func (sh *shard) applyMembership(r *journal.Record) error {
	switch r.Action {
	case journal.MemberAdd:
		i, err := sh.eng.AddMachine(pet.MachineType(r.Type))
		if err != nil {
			return fmt.Errorf("membership replay: %w", err)
		}
		g := sh.c.dir.add(sh.eng.Machines()[i].Spec.Name, int(r.Type), sh.id, i)
		sh.global = append(sh.global, g)
	case journal.MemberRemove:
		if err := sh.eng.RemoveMachine(int(r.Machine), r.NTasks != 0); err != nil {
			return fmt.Errorf("membership replay: %w", err)
		}
	case journal.MemberRevive:
		if err := sh.eng.ReviveMachine(int(r.Machine)); err != nil {
			return fmt.Errorf("membership replay: %w", err)
		}
	}
	return nil
}

// registerAdded reconciles the shard's global index table with an engine
// that grew machines through a checkpoint restore (RestoreSnapshot
// re-attaches runtime-added machines before recovery sees any membership
// record for them).
func (sh *shard) registerAdded() {
	ms := sh.eng.Machines()
	for len(sh.global) < len(ms) {
		i := len(sh.global)
		g := sh.c.dir.add(ms[i].Spec.Name, int(ms[i].Spec.Type), sh.id, i)
		sh.global = append(sh.global, g)
	}
}

// updateMembershipGauges refreshes the shard's lock-free membership
// gauges from the engine. Runs on the decision loop (or during recovery,
// before the loop starts).
func (sh *shard) updateMembershipGauges() {
	sh.liveMachines.Store(int64(sh.eng.LiveMachines()))
	sh.removedMachines.Store(int64(len(sh.eng.RemovedMachines())))
}

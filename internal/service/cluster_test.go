package service

import (
	"context"
	"errors"
	"net/http"
	"net/http/httptest"
	"reflect"
	"strings"
	"sync"
	"testing"
	"time"

	"github.com/hpcclab/taskdrop/internal/core"
	"github.com/hpcclab/taskdrop/internal/mapping"
	"github.com/hpcclab/taskdrop/internal/pet"
	"github.com/hpcclab/taskdrop/internal/router"
	"github.com/hpcclab/taskdrop/internal/sim"
)

func newShardedController(t testing.TB, shards int, routerSpec string) *Controller {
	t.Helper()
	c, err := New(Config{Profile: "video", Mapper: "PAM", Dropper: "heuristic", Shards: shards, Router: routerSpec})
	if err != nil {
		t.Fatal(err)
	}
	return c
}

// TestShardedControllerConserves: a 4-shard controller decides a full
// trace, every decision carries a valid shard and matrix-wide machine,
// request order is preserved, and the merged drain Result conserves every
// task.
func TestShardedControllerConserves(t *testing.T) {
	tr := testTrace(t, 500, 3)
	for _, routerSpec := range []string{"rr", "mass", "p2c:seed=4"} {
		c := newShardedController(t, 4, routerSpec)
		decisions := decideAll(t, c, tr, 16)
		if len(decisions) != tr.Len() {
			t.Fatalf("%s: got %d decisions, want %d", routerSpec, len(decisions), tr.Len())
		}
		nm := len(c.matrix.Machines())
		shardsSeen := map[int]int{}
		for i, d := range decisions {
			if d.Seq != i {
				t.Fatalf("%s: decision %d has seq %d; request order broken", routerSpec, i, d.Seq)
			}
			if d.Shard < 0 || d.Shard >= 4 {
				t.Fatalf("%s: decision %d routed to shard %d", routerSpec, i, d.Shard)
			}
			shardsSeen[d.Shard]++
			if d.Action == ActionMap {
				if d.Machine < 0 || d.Machine >= nm || d.MachineName == "" {
					t.Fatalf("%s: mapped decision without matrix-wide machine: %+v", routerSpec, d)
				}
				// The machine must belong to the decision's shard under the
				// round-robin partition (machine i lives on shard i mod 4).
				if d.Machine%4 != d.Shard {
					t.Fatalf("%s: decision %+v maps outside its shard", routerSpec, d)
				}
			}
		}
		if len(shardsSeen) != 4 {
			t.Fatalf("%s: only %d of 4 shards used: %v", routerSpec, len(shardsSeen), shardsSeen)
		}
		res, err := c.Drain(context.Background())
		if err != nil {
			t.Fatal(err)
		}
		if res.Total != tr.Len() {
			t.Fatalf("%s: drain total %d, want %d", routerSpec, res.Total, tr.Len())
		}
		if err := res.Validate(); err != nil {
			t.Fatalf("%s: %v", routerSpec, err)
		}
	}
}

// TestShardedControllerDeterminism: two 4-shard controllers fed the
// identical sequential request sequence produce the identical decision
// sequence (routing included) and merged final Result.
func TestShardedControllerDeterminism(t *testing.T) {
	tr := testTrace(t, 400, 9)
	a := newShardedController(t, 4, "p2c:seed=7")
	b := newShardedController(t, 4, "p2c:seed=7")
	da := decideAll(t, a, tr, 8)
	db := decideAll(t, b, tr, 8)
	if !reflect.DeepEqual(da, db) {
		t.Fatal("decision sequences diverged for identical (spec, trace, seed)")
	}
	ra, err := a.Drain(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	rb, err := b.Drain(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if *ra != *rb {
		t.Fatalf("drain results diverged: %+v vs %+v", ra, rb)
	}
}

// TestShardedControllerMatchesOfflineCluster closes the loop for the
// sharded architecture exactly as the unsharded service does against the
// unsharded engine: the online sharded controller must land on the same
// routing and the same merged Result as the offline sim.Cluster for the
// same (profile, specs, trace, router).
func TestShardedControllerMatchesOfflineCluster(t *testing.T) {
	tr := testTrace(t, 500, 5)
	c := newShardedController(t, 4, "p2c:seed=2")
	decisions := decideAll(t, c, tr, 1)
	got, err := c.Drain(context.Background())
	if err != nil {
		t.Fatal(err)
	}

	cl := newOfflineCluster(t, 4, "p2c:seed=2")
	for i := range tr.Tasks {
		shard, _ := cl.Feed(&tr.Tasks[i])
		if shard != decisions[i].Shard {
			t.Fatalf("task %d: offline shard %d, online %d", i, shard, decisions[i].Shard)
		}
	}
	want := cl.Drain()
	if *got != *want {
		t.Fatalf("online merged Result = %+v\nwant (offline cluster) %+v", got, want)
	}
}

// TestShardedConcurrentClients hammers a 4-shard controller from many
// goroutines (run under -race): decisions interleave nondeterministically
// across shards, but totals conserve and the merged drain accounts for
// every task.
func TestShardedConcurrentClients(t *testing.T) {
	tr := testTrace(t, 300, 4)
	c := newShardedController(t, 4, "mass")
	const clients = 8
	per := tr.Len() / clients
	var wg sync.WaitGroup
	for w := 0; w < clients; w++ {
		wg.Add(1)
		go func(lo int) {
			defer wg.Done()
			for i := lo; i < lo+per; i++ {
				task := tr.Tasks[i]
				req := DecideRequest{Tasks: []TaskSpec{{
					Type: int(task.Type), Arrival: task.Arrival,
					Deadline: task.Deadline, ExecByType: task.ExecByType,
				}}}
				if _, err := c.Decide(context.Background(), &req); err != nil {
					t.Error(err)
					return
				}
			}
		}(w * per)
	}
	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := 0; i < 20; i++ {
			if _, err := c.ShardStats(context.Background()); err != nil {
				t.Error(err)
				return
			}
		}
	}()
	wg.Wait()
	if got := c.metrics.tasks.Load(); got != int64(clients*per) {
		t.Fatalf("decided %d tasks, want %d", got, clients*per)
	}
	res, err := c.Drain(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if res.Total != clients*per {
		t.Fatalf("drain total %d, want %d", res.Total, clients*per)
	}
	if err := res.Validate(); err != nil {
		t.Fatal(err)
	}
}

// TestStatsEndpointAndShardMetrics covers GET /v1/stats and the per-shard
// Prometheus series on a sharded server.
func TestStatsEndpointAndShardMetrics(t *testing.T) {
	tr := testTrace(t, 200, 2)
	c := newShardedController(t, 2, "rr")
	srv := newTestServerFor(t, c)
	ctx := context.Background()

	rep, err := Replay(ctx, srv.Client(), srv.URL, tr, ReplayConfig{BatchSize: 4})
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.PerShard) != 2 {
		t.Fatalf("per-shard latencies for %d shards, want 2: %+v", len(rep.PerShard), rep.PerShard)
	}
	for _, sl := range rep.PerShard {
		if sl.Requests == 0 || sl.P99 < sl.P50 {
			t.Fatalf("per-shard latency inconsistent: %+v", sl)
		}
	}

	var st StatsResponse
	getJSON(t, srv, "/v1/stats", &st)
	if st.Router != "rr" || len(st.Shards) != 2 {
		t.Fatalf("stats = router %q, %d shards", st.Router, len(st.Shards))
	}
	nt := c.matrix.NumTaskTypes()
	totalArrived := 0
	for s, ss := range st.Shards {
		if ss.Shard != s {
			t.Fatalf("shard %d reports id %d", s, ss.Shard)
		}
		if len(ss.QueueDepths) != len(ss.Machines) || len(ss.QueueDepths) == 0 {
			t.Fatalf("shard %d: %d queue depths vs %d machines", s, len(ss.QueueDepths), len(ss.Machines))
		}
		if len(ss.Robustness) != nt {
			t.Fatalf("shard %d: %d robustness classes, want %d", s, len(ss.Robustness), nt)
		}
		if ss.Mapped+ss.Deferred+ss.Dropped == 0 {
			t.Fatalf("shard %d decided nothing", s)
		}
		totalArrived += ss.Live.Arrived
	}
	if totalArrived != tr.Len() {
		t.Fatalf("shards arrived %d, want %d", totalArrived, tr.Len())
	}

	body := getText(t, srv, "/metrics")
	for _, want := range []string{
		`taskdrop_shard_decisions_total{shard="0",action="map"}`,
		`taskdrop_shard_decisions_total{shard="1",action="map"}`,
		`taskdrop_shard_queue_mass{shard="0"}`,
		`taskdrop_shard_free_slots{shard="1"}`,
		`taskdrop_shard_robustness_estimate{shard="0"}`,
	} {
		if !strings.Contains(body, want) {
			t.Errorf("metrics missing %q", want)
		}
	}

	// healthz reports the sharded topology.
	var hs StatusResponse
	getJSON(t, srv, "/healthz", &hs)
	if hs.Shards != 2 || hs.Router != "rr" {
		t.Fatalf("healthz = %+v", hs)
	}

	// After drain, /v1/stats fails fast with 503.
	if _, err := c.Drain(ctx); err != nil {
		t.Fatal(err)
	}
	resp, err := srv.Client().Get(srv.URL + "/v1/stats")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("stats after drain: HTTP %d, want 503", resp.StatusCode)
	}
}

// TestShardedDrainRejectsAndRetains mirrors the unsharded drain contract
// on a sharded controller: repeat drains return the same merged result
// pointer and new work is rejected.
func TestShardedDrainRejectsAndRetains(t *testing.T) {
	tr := testTrace(t, 60, 1)
	c := newShardedController(t, 3, "rr")
	decideAll(t, c, tr, 10)
	res1, err := c.Drain(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if _, err := c.Decide(context.Background(), &DecideRequest{Tasks: []TaskSpec{{Arrival: 1, Deadline: 2}}}); !errors.Is(err, ErrDraining) {
		t.Fatalf("Decide after drain: err = %v, want ErrDraining", err)
	}
	if _, err := c.ShardStats(context.Background()); !errors.Is(err, ErrDraining) {
		t.Fatalf("ShardStats after drain: err = %v, want ErrDraining", err)
	}
	res2, err := c.Drain(context.Background())
	if err != nil || res1 != res2 {
		t.Fatalf("second drain = (%p, %v), want same result pointer", res2, err)
	}
	if err := res1.Validate(); err != nil {
		t.Fatal(err)
	}
}

// TestShardConfigValidation rejects invalid shard/router configurations.
func TestShardConfigValidation(t *testing.T) {
	for _, cfg := range []Config{
		{Profile: "video", Shards: -1},
		{Profile: "video", Shards: 9}, // video system has 8 machines
		{Profile: "video", Router: "nosuch"},
		{Profile: "video", Router: "p2c:sede=2"},
	} {
		if _, err := New(cfg); err == nil {
			t.Errorf("New(%+v) accepted", cfg)
		}
	}
}

// TestPercentileInterpolation pins the small-sample fix: quantiles
// interpolate between order statistics instead of truncating to one.
func TestPercentileInterpolation(t *testing.T) {
	if got := percentile(nil, 0.99); got != 0 {
		t.Fatalf("empty percentile = %v", got)
	}
	one := []time.Duration{42}
	if got := percentile(one, 0.5); got != 42 {
		t.Fatalf("single-sample p50 = %v", got)
	}
	two := []time.Duration{100, 200}
	if got := percentile(two, 0.50); got != 150 {
		t.Fatalf("p50 of {100,200} = %v, want interpolated 150", got)
	}
	if got := percentile(two, 0.99); got != 199 {
		t.Fatalf("p99 of {100,200} = %v, want 199", got)
	}
	if got := percentile(two, 1.0); got != 200 {
		t.Fatalf("p100 of {100,200} = %v, want 200", got)
	}
	// Ten samples 10..100: p99 sits 0.91 of the way from 90 to 100.
	ten := make([]time.Duration, 10)
	for i := range ten {
		ten[i] = time.Duration((i + 1) * 10)
	}
	if got := percentile(ten, 0.99); got != 99 {
		t.Fatalf("p99 of 10..100 = %v, want 99", got)
	}
	if got := percentile(ten, 0.50); got != 55 {
		t.Fatalf("p50 of 10..100 = %v, want 55", got)
	}
}

// newTestServerFor wraps an existing controller in an HTTP test server.
func newTestServerFor(t testing.TB, c *Controller) *httptest.Server {
	t.Helper()
	srv := httptest.NewServer(NewHandler(c))
	t.Cleanup(srv.Close)
	return srv
}

// newOfflineCluster builds the offline twin of newShardedController: the
// same matrix, partition, specs and router seed, driven directly instead
// of through per-shard loops.
func newOfflineCluster(t testing.TB, shards int, routerSpec string) *sim.Cluster {
	t.Helper()
	m, err := pet.CachedMatrix("video")
	if err != nil {
		t.Fatal(err)
	}
	pol, err := router.FromSpec(routerSpec)
	if err != nil {
		t.Fatal(err)
	}
	cl, err := sim.NewCluster(m, shards, pol, func(int) (sim.Mapper, core.Policy, error) {
		mp, err := mapping.FromSpec("PAM")
		if err != nil {
			return nil, nil, err
		}
		dp, err := core.PolicyFromSpec("heuristic")
		if err != nil {
			return nil, nil, err
		}
		return mp, dp, nil
	}, sim.Config{QueueCap: 6})
	if err != nil {
		t.Fatal(err)
	}
	return cl
}

package service

import (
	"context"
	"time"
)

// Background rebalancer: when shard queue masses skew past the configured
// ratio, one machine's worth of capacity migrates from the most loaded
// shard to the least loaded one — a handoff removal on the donor (its
// pending tasks go back to the donor's batch for remapping) followed by an
// add of the same machine type on the receiver. Both halves go through
// Admin, so they execute on the shard loops, are journaled as membership
// records, and steer the router views immediately.

// rebalanceLoop drives RebalanceOnce on the configured cadence until the
// controller drains.
func (c *Controller) rebalanceLoop() {
	t := time.NewTicker(c.cfg.RebalanceEvery)
	defer t.Stop()
	for {
		select {
		case <-c.rebalStop:
			return
		case <-t.C:
			moved, err := c.RebalanceOnce(context.Background())
			if err != nil {
				c.log.Warn("rebalance pass failed", "err", err)
			} else if moved {
				c.log.Info("rebalanced one machine", "moves_total", c.rebalanceMoves.Load())
			}
		}
	}
}

// RebalanceOnce runs one rebalance pass: if the busiest shard's queue mass
// exceeds RebalanceThreshold times the idlest shard's (and by at least one
// queue's worth), migrate one machine of capacity between them. Returns
// whether a migration happened. Exported for tests and operational tools;
// safe to call concurrently with admissions.
func (c *Controller) RebalanceOnce(ctx context.Context) (bool, error) {
	if len(c.shards) < 2 || c.Draining() {
		return false, nil
	}
	src, dst := -1, -1
	var maxMass, minMass int64
	for s, sh := range c.shards {
		mass := sh.view.QueueMass()
		if src < 0 || mass > maxMass {
			src, maxMass = s, mass
		}
		if dst < 0 || mass < minMass {
			dst, minMass = s, mass
		}
	}
	if src == dst {
		return false, nil
	}
	if float64(maxMass) < c.cfg.RebalanceThreshold*float64(minMass) ||
		maxMass-minMass < int64(c.cfg.QueueCap) {
		return false, nil
	}
	snap, err := c.shards[src].snapshot(ctx)
	if err != nil {
		return false, err
	}
	if snap.LiveMachines < 2 {
		// Never strand a shard: the donor keeps at least one live machine.
		return false, nil
	}
	removed := make(map[int]bool, len(snap.Removed))
	for _, g := range snap.Removed {
		removed[g] = true
	}
	// Donate the live machine with the shortest queue — the least work to
	// hand back to the donor's batch.
	pick, pickDepth := -1, 0
	for local, g := range snap.Machines {
		if removed[g] {
			continue
		}
		if pick < 0 || snap.QueueDepths[local] < pickDepth {
			pick, pickDepth = g, snap.QueueDepths[local]
		}
	}
	if pick < 0 {
		return false, nil
	}
	mt := c.dir.typeOf(pick)
	if mt < 0 {
		return false, nil
	}
	if _, err := c.Admin(ctx, &AdminMachineRequest{Op: AdminOpRemove, Machine: pick, Handoff: true}); err != nil {
		return false, err
	}
	if _, err := c.Admin(ctx, &AdminMachineRequest{Op: AdminOpAdd, Shard: dst, Type: mt}); err != nil {
		// Capacity must not vanish on a half-failed move: put the donor back.
		if _, rerr := c.Admin(ctx, &AdminMachineRequest{Op: AdminOpRevive, Machine: pick}); rerr != nil {
			c.log.Error("rebalance revive after failed add", "machine", pick, "err", rerr)
		}
		return false, err
	}
	c.rebalanceMoves.Add(1)
	c.log.Info("machine migrated",
		"from_shard", src, "to_shard", dst,
		"machine", pick, "type", mt,
		"src_mass", maxMass, "dst_mass", minMass)
	return true, nil
}

package service

import (
	"context"
	"sync/atomic"
	"time"

	"github.com/hpcclab/taskdrop/internal/journal"
	"github.com/hpcclab/taskdrop/internal/pmf"
	"github.com/hpcclab/taskdrop/internal/router"
	"github.com/hpcclab/taskdrop/internal/sim"
	"github.com/hpcclab/taskdrop/internal/telemetry"
)

// shard is one admission shard: a shard-scoped open engine owned by one
// single-writer decision loop, plus the shard's operational counters and
// its lock-free router view. It is the old single-engine controller's
// concurrency unit, multiplied: all determinism arguments (decisions are a
// pure function of the shard's request sequence) hold per shard.
type shard struct {
	id   int
	c    *Controller
	eng  *sim.Engine
	view *router.ShardView
	// global translates shard-local machine indexes to matrix-wide ones
	// for wire decisions and merged gauges.
	global  []int
	metrics *Metrics
	// rec is the shard's trace recorder (always non-nil; inert when
	// sampling is off).
	rec *telemetry.ShardRecorder

	cmds     chan func()
	loopDone chan struct{}

	// liveMachines/removedMachines mirror the engine's membership census
	// for lock-free scrapes; the loop refreshes them after every
	// membership operation (updateMembershipGauges).
	liveMachines    atomic.Int64
	removedMachines atomic.Int64

	// jw is the shard's write-ahead log; nil when journaling is off.
	// Written only by the shard loop (and recovery, before the loop
	// starts); the writer synchronizes its background syncer internally.
	jw *journal.Writer

	// Loop-owned state: touched only by the goroutine running loop().
	stopped bool
	final   *sim.Result
	// watermark is the highest cluster-wide sequence number this shard has
	// decided (-1 before the first decision). Journal checkpoints persist
	// it so a restart never reissues a sequence number.
	watermark int64
	// recovered holds the ID-carrying sub-batches journal recovery
	// re-derived; initJournal drains it into the dedup window before the
	// loop starts.
	recovered []recoveredBatch
}

// loop is the shard's single writer: it executes submitted closures in
// submission order until the drain command flips stopped.
func (sh *shard) loop() {
	defer close(sh.loopDone)
	for fn := range sh.cmds {
		fn()
		if sh.stopped {
			return
		}
	}
}

// do runs fn on the shard's decision loop and waits for it to finish.
func (sh *shard) do(ctx context.Context, fn func()) error {
	done := make(chan struct{})
	wrapped := func() { defer close(done); fn() }
	select {
	case sh.cmds <- wrapped:
	case <-sh.loopDone:
		return ErrDraining
	case <-ctx.Done():
		return ctx.Err()
	}
	select {
	case <-done:
		return nil
	case <-sh.loopDone:
		// The loop exited with wrapped still queued; it will never run.
		select {
		case <-done:
			return nil
		default:
			return ErrDraining
		}
	case <-ctx.Done():
		return ctx.Err()
	}
}

// decide admits the request tasks selected by idxs (nil = all, the
// single-shard fast path) through this shard's engine, writing each
// decision into its request slot of resp. seqs carries the cluster-wide
// sequence number per request index; traces the sampled in-flight traces
// (nil when tracing is off — the loop then reads no clock for telemetry).
// Returns the shard clock after the sub-batch, and ErrDraining if the
// shard drained before processing.
func (sh *shard) decide(ctx context.Context, req *DecideRequest, resp *DecideResponse, idxs []int, seqs []int64, traces []*telemetry.Active) (pmf.Tick, error) {
	var now pmf.Tick
	var jerr error
	committed := false
	degraded := false
	var submit time.Time
	if traces != nil {
		// Route span: origin (request receipt) to shard-loop submission.
		submit = time.Now()
		markRoute(traces, idxs, len(req.Tasks), submit)
	}
	err := sh.do(ctx, func() {
		if sh.stopped || ctx.Err() != nil {
			// Drained, or the submitter already gave up: leave the engine
			// untouched so the failed request has no effect.
			return
		}
		if sh.eng.LiveMachines() == 0 {
			// Degraded: every machine of this shard has been removed.
			// Admitting would defer the tasks into a batch nothing can ever
			// run — shed the sub-batch instead (429 on the wire) and let the
			// client retry after a revive or rebalance.
			sh.metrics.shed.Add(1)
			sh.c.metrics.shed.Add(1)
			degraded = true
			return
		}
		if traces != nil {
			// Wait span: submission until the single-writer loop picked the
			// sub-batch up.
			markSpans(traces, idxs, len(req.Tasks), telemetry.StageWait, submit, time.Now())
		}
		sh.metrics.requests.Add(1)
		if sh.jw != nil {
			n := len(idxs)
			if idxs == nil {
				n = len(req.Tasks)
			}
			sh.journalBatch(n, req.DecisionID)
		}
		machines := sh.c.matrix.Machines()
		decideOne := func(i int) {
			spec := &req.Tasks[i]
			a := traceAt(traces, i)
			task := sh.c.makeTask(spec, int(seqs[i]))
			if sh.jw != nil {
				// The arrive record precedes Feed so the terminal events the
				// feed triggers (via the engine hook) land after it in the log.
				if a != nil {
					js := time.Now()
					sh.journalArrive(seqs[i], task, spec.ID)
					a.Extend(telemetry.StageJournal, js, time.Now())
				} else {
					sh.journalArrive(seqs[i], task, spec.ID)
				}
			}
			var feedStart time.Time
			if a != nil {
				// Publish the trace to nested instrumentation (TimedPolicy
				// carves the dropper span out of the feed).
				sh.rec.Begin(a)
				feedStart = time.Now()
			}
			ts := sh.eng.Feed(task)
			if a != nil {
				a.Mark(telemetry.StageCalculus, feedStart, time.Now())
				sh.rec.End()
			}
			d := Decision{ID: spec.ID, Seq: int(seqs[i]), Shard: sh.id, Machine: -1}
			switch st := ts.Status; {
			case st == sim.StatusQueued || st == sim.StatusRunning:
				d.Action = ActionMap
				d.Machine = sh.global[ts.Machine]
				if d.Machine < len(machines) {
					d.MachineName = machines[d.Machine].Name
				} else {
					// Runtime-added machine: past the matrix, named by the
					// controller's directory.
					d.MachineName = sh.c.machineName(d.Machine)
				}
			case st == sim.StatusBatch:
				d.Action = ActionDefer
			default:
				d.Action = ActionDrop
			}
			sh.eng.ObserveDecision(sh.view, ts)
			sh.metrics.countDecision(d.Action)
			sh.c.metrics.countDecision(d.Action)
			if sh.jw != nil {
				if a != nil {
					js := time.Now()
					sh.journalDecision(seqs[i], d.Action, ts.Machine)
					a.Extend(telemetry.StageJournal, js, time.Now())
				} else {
					sh.journalDecision(seqs[i], d.Action, ts.Machine)
				}
			}
			if seqs[i] > sh.watermark {
				sh.watermark = seqs[i]
			}
			resp.Decisions[i] = d
		}
		if idxs == nil {
			for i := range req.Tasks {
				decideOne(i)
			}
		} else {
			for _, i := range idxs {
				decideOne(i)
			}
		}
		if sh.jw != nil {
			// Durability before acknowledgement: the sub-batch is committed
			// (and fsynced, under SyncAlways) before the client sees it. A
			// journal failure fails the request — the decisions happened, but
			// the service must not keep acking onto a log losing writes.
			if traces != nil {
				cs := time.Now()
				jerr = sh.commitJournal()
				extendSpans(traces, idxs, len(req.Tasks), telemetry.StageJournal, cs, time.Now())
			} else {
				jerr = sh.commitJournal()
			}
		}
		now = sh.eng.Now()
		committed = true
		if traces != nil && jerr == nil {
			sh.finishTraces(resp, idxs, len(req.Tasks), traces)
		}
	})
	if err != nil {
		return 0, err
	}
	if jerr != nil {
		return 0, jerr
	}
	if degraded {
		return 0, ErrShardDegraded
	}
	if !committed {
		// The closure skipped: either the submitter's ctx was cancelled as
		// it ran (a client problem, not a server state) or the shard drained
		// underneath it.
		if err := ctx.Err(); err != nil {
			return 0, err
		}
		return 0, ErrDraining
	}
	return now, nil
}

// snapshot reads the shard's live engine state through its decision loop.
func (sh *shard) snapshot(ctx context.Context) (ShardSnapshot, error) {
	var snap ShardSnapshot
	ok := false
	err := sh.do(ctx, func() {
		if sh.stopped {
			return
		}
		snap = ShardSnapshot{
			Shard:       sh.id,
			Now:         sh.eng.Now(),
			Live:        sh.eng.LiveCounts(),
			QueueDepths: sh.eng.QueueDepths(),
			// Copied: membership operations append to sh.global on the loop
			// while earlier snapshots may still be marshaling.
			Machines:     append([]int(nil), sh.global...),
			LiveMachines: sh.eng.LiveMachines(),
			SeqWatermark: sh.watermark,
		}
		for _, ri := range sh.eng.RemovedMachines() {
			snap.Removed = append(snap.Removed, sh.global[ri])
		}
		ok = true
	})
	if err != nil {
		return ShardSnapshot{}, err
	}
	if !ok {
		return ShardSnapshot{}, ErrDraining
	}
	// Lock-free annotations: router view and shard counters.
	snap.QueueMass = sh.view.QueueMass()
	snap.FreeSlots = sh.view.FreeSlots()
	nt := sh.c.matrix.NumTaskTypes()
	snap.Robustness = make([]float64, nt)
	for class := 0; class < nt; class++ {
		snap.Robustness[class] = sh.view.ClassRobustness(class)
	}
	snap.Requests = sh.metrics.requests.Load()
	snap.Mapped = sh.metrics.mapped.Load()
	snap.Deferred = sh.metrics.deferred.Load()
	snap.Dropped = sh.metrics.dropped.Load()
	return snap, nil
}

// drainCmd runs the shard's virtual system to completion on the loop and
// stops it. Executed as the loop's final command. With journaling on, the
// drain's terminal events stream into the WAL (via the engine hook), a
// drain marker and a final checkpoint make the log self-contained —
// recovery after a graceful shutdown restores the checkpoint and replays
// nothing — and the writer closes with a last fsync.
func (sh *shard) drainCmd() {
	sh.final = sh.eng.Drain()
	if sh.jw != nil {
		_ = sh.jw.Append(&journal.Record{Kind: journal.KindDrain, Tick: sh.eng.Now()})
		_ = sh.jw.Commit()
		_ = sh.checkpoint(true)
		_ = sh.jw.Close()
	}
	sh.stopped = true
}

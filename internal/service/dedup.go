package service

import (
	"context"
	"fmt"
	"sync"
)

// DedupWindow is the serve-side half of idempotent decision IDs: a bounded
// map from decision ID to the byte-exact response the server first
// acknowledged under that ID. A retried request (same ID) replays the
// stored bytes instead of re-feeding the engine, which is what makes
// at-least-once delivery through the router tier safe — a timeout whose
// request actually committed cannot double-admit.
//
// Entries move through three states:
//
//   - in-flight: the first request with the ID owns execution; concurrent
//     duplicates block on the entry until the owner commits or fails.
//   - committed: the response bytes are stored; duplicates replay them.
//     Committed entries are evicted FIFO once the window exceeds its
//     capacity (a retry older than the window re-executes — by then the
//     journal already holds the original, and the client gave up long ago).
//   - poisoned: recovery found the ID's journaled batch torn by a crash
//     (some arrivals re-applied, the rest lost), so neither replaying nor
//     re-executing is safe; duplicates get a permanent error.
type DedupWindow struct {
	mu      sync.Mutex
	cap     int
	entries map[string]*dedupEntry
	// order is the FIFO eviction queue of committed/poisoned IDs.
	order []string
	hits  int64
}

// dedupEntry is one decision ID's lifecycle. done is closed when the entry
// leaves the in-flight state; data/n/err are immutable afterwards.
type dedupEntry struct {
	done chan struct{}
	data []byte // stored response bytes (committed entries)
	n    int    // task count of the original request
	err  error  // permanent failure (poisoned entries)
}

// DefaultDedupWindow is the retained-response capacity when the caller
// does not choose one (Config.DedupWindow = 0).
const DefaultDedupWindow = 4096

// NewDedupWindow builds a window retaining up to capacity committed
// responses.
func NewDedupWindow(capacity int) *DedupWindow {
	if capacity < 1 {
		capacity = DefaultDedupWindow
	}
	return &DedupWindow{cap: capacity, entries: make(map[string]*dedupEntry)}
}

// Begin claims an ID. The first caller becomes the owner (owner = true)
// and must finish with Commit or Fail; later callers get the existing
// entry to Await.
func (w *DedupWindow) Begin(id string) (e *dedupEntry, owner bool) {
	w.mu.Lock()
	defer w.mu.Unlock()
	if e, ok := w.entries[id]; ok {
		w.hits++
		return e, false
	}
	e = &dedupEntry{done: make(chan struct{})}
	w.entries[id] = e
	return e, true
}

// Await blocks until the entry's owner resolved it, returning the stored
// response bytes and original task count, or the entry's permanent error.
func (e *dedupEntry) Await(ctx context.Context) (data []byte, n int, err error) {
	select {
	case <-e.done:
		return e.data, e.n, e.err
	case <-ctx.Done():
		return nil, 0, ctx.Err()
	}
}

// Commit stores the acknowledged response bytes for the ID and releases
// any waiting duplicates. Owner-only.
func (w *DedupWindow) Commit(id string, data []byte, n int) {
	w.mu.Lock()
	defer w.mu.Unlock()
	e, ok := w.entries[id]
	if !ok {
		return
	}
	e.data, e.n = data, n
	close(e.done)
	w.retain(id)
}

// Fail abandons an in-flight ID after a clean error: the entry is removed
// so a retry re-executes (an errored Decide left no state behind), and
// waiting duplicates get the error once. Owner-only.
func (w *DedupWindow) Fail(id string, err error) {
	w.mu.Lock()
	defer w.mu.Unlock()
	e, ok := w.entries[id]
	if !ok {
		return
	}
	delete(w.entries, id)
	e.err = err
	close(e.done)
}

// Seed installs a recovered response — journal recovery re-deriving the
// decisions of a fully-journaled batch. Pre-serving only; not
// concurrency-safe with live traffic.
func (w *DedupWindow) Seed(id string, data []byte, n int) {
	w.mu.Lock()
	defer w.mu.Unlock()
	if _, ok := w.entries[id]; ok {
		return
	}
	e := &dedupEntry{done: make(chan struct{}), data: data, n: n}
	close(e.done)
	w.entries[id] = e
	w.retain(id)
}

// Poison permanently fails an ID — recovery found its journaled batch
// torn, so a retry must not re-execute. Pre-serving only.
func (w *DedupWindow) Poison(id string, err error) {
	w.mu.Lock()
	defer w.mu.Unlock()
	if _, ok := w.entries[id]; ok {
		return
	}
	e := &dedupEntry{done: make(chan struct{}), err: fmt.Errorf("service: decision id %q: %w", id, err)}
	close(e.done)
	w.entries[id] = e
	w.retain(id)
}

// retain enqueues a resolved ID for FIFO eviction and evicts past
// capacity. Callers hold w.mu.
func (w *DedupWindow) retain(id string) {
	w.order = append(w.order, id)
	for len(w.order) > w.cap {
		old := w.order[0]
		w.order = w.order[1:]
		delete(w.entries, old)
	}
}

// Hits returns how many duplicate IDs were served from the window.
func (w *DedupWindow) Hits() int64 {
	w.mu.Lock()
	defer w.mu.Unlock()
	return w.hits
}

// Len returns the number of retained entries (in-flight ones included).
func (w *DedupWindow) Len() int {
	w.mu.Lock()
	defer w.mu.Unlock()
	return len(w.entries)
}

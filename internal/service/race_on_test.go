//go:build race

package service

// raceEnabled reports that the race detector is active; allocation-budget
// assertions are skipped because instrumentation changes alloc counts.
const raceEnabled = true

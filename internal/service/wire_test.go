package service

import (
	"encoding/json"
	"reflect"
	"strings"
	"testing"

	"github.com/hpcclab/taskdrop/internal/pmf"
	"github.com/hpcclab/taskdrop/internal/sim"
)

// TestWireRoundTrip encodes every wire type, decodes it back, and requires
// equality — the service's JSON contract.
func TestWireRoundTrip(t *testing.T) {
	roundTrip := func(t *testing.T, in, out any) {
		t.Helper()
		data, err := json.Marshal(in)
		if err != nil {
			t.Fatal(err)
		}
		if err := json.Unmarshal(data, out); err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(in, out) {
			t.Fatalf("round trip mismatch:\n in: %+v\nout: %+v\njson: %s", in, out, data)
		}
	}

	req := &DecideRequest{Tasks: []TaskSpec{
		{ID: "a", Type: 2, Arrival: 10, Deadline: 450, ExecByType: []pmf.Tick{30, 70}},
		{Type: 0, Arrival: 11, Deadline: 99},
	}}
	roundTrip(t, req, &DecideRequest{})

	resp := &DecideResponse{Now: 42, Decisions: []Decision{
		{ID: "a", Seq: 0, Action: ActionMap, Machine: 3, MachineName: "fast#0"},
		{Seq: 1, Action: ActionDefer, Machine: -1},
		{Seq: 2, Action: ActionDrop, Machine: -1},
	}}
	roundTrip(t, resp, &DecideResponse{})

	dr := &DrainResponse{Result: &sim.Result{Total: 9, Measured: 9, OnTime: 5, Late: 1,
		DroppedReactive: 1, DroppedProactive: 2, MOnTime: 5, MLate: 1, MDroppedReactive: 1,
		MDroppedProactive: 2, RobustnessPct: 55.5, Makespan: 1234}}
	roundTrip(t, dr, &DrainResponse{})

	st := &StatusResponse{Status: "ok", Profile: "spec", Mapper: "PAM", Dropper: "heuristic", Machines: 8}
	roundTrip(t, st, &StatusResponse{})

	rd := &ReadyResponse{Ready: true, Status: "ok"}
	roundTrip(t, rd, &ReadyResponse{})
}

// TestWireGoldenFixtures pins the exact serialized form of the wire types
// that cross process boundaries in a multi-process deployment. These
// bytes are the protocol between hcrouter, hcserve and hcload built at
// different versions: a marshalling change that alters them is a
// compatibility break and must be deliberate.
func TestWireGoldenFixtures(t *testing.T) {
	golden := func(t *testing.T, v any, want string) {
		t.Helper()
		data, err := json.Marshal(v)
		if err != nil {
			t.Fatal(err)
		}
		if string(data) != want {
			t.Errorf("golden mismatch for %T:\n got: %s\nwant: %s", v, data, want)
		}
		// The fixture must also decode back into an equal value — no
		// write-only fields.
		out := reflect.New(reflect.TypeOf(v).Elem()).Interface()
		if err := json.Unmarshal([]byte(want), out); err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(v, out) {
			t.Errorf("golden fixture for %T does not decode back:\n got: %+v\nwant: %+v", v, out, v)
		}
	}

	golden(t,
		&DecideRequest{DecisionID: "r1a-42", Tasks: []TaskSpec{
			{ID: "t7", Type: 2, Arrival: 120, Deadline: 890, ExecByType: []pmf.Tick{30, 70}},
			{Type: 0, Arrival: 121, Deadline: 400},
		}},
		`{"decision_id":"r1a-42","tasks":[`+
			`{"id":"t7","type":2,"arrival":120,"deadline":890,"exec_by_type":[30,70]},`+
			`{"type":0,"arrival":121,"deadline":400}]}`)

	// A decision without router involvement omits backend; one proxied by
	// hcrouter carries it.
	golden(t,
		&Decision{ID: "t7", Seq: 3, Action: ActionMap, Shard: 1, Machine: 5, MachineName: "fast#1"},
		`{"id":"t7","seq":3,"action":"map","shard":1,"machine":5,"machine_name":"fast#1"}`)
	golden(t,
		&Decision{ID: "t8", Seq: 0, Action: ActionDrop, Shard: 0, Backend: 1, Machine: -1},
		`{"id":"t8","seq":0,"action":"drop","shard":0,"backend":1,"machine":-1}`)

	golden(t,
		&StatsResponse{Router: "hash", Shards: []ShardSnapshot{{
			Shard:        0,
			Now:          512,
			Live:         sim.Live{Arrived: 9, Batch: 1, Queued: 4, Running: 2, OnTime: 1, Late: 1},
			QueueDepths:  []int{2, 3},
			Machines:     []int{0, 2},
			LiveMachines: 2,
			QueueMass:    5,
			FreeSlots:    7,
			Robustness:   []float64{0.9, 0.5},
			Requests:     3,
			Mapped:       6,
			Deferred:     2,
			Dropped:      1,
			SeqWatermark: 8,
		}}},
		`{"router":"hash","shards":[{"shard":0,"now":512,`+
			`"live":{"arrived":9,"batch":1,"queued":4,"running":2,"on_time":1,"late":1,`+
			`"dropped_reactive":0,"dropped_proactive":0,"failed":0},`+
			`"queue_depths":[2,3],"machines":[0,2],"live_machines":2,"queue_mass":5,"free_slots":7,`+
			`"robustness_by_class":[0.9,0.5],"requests":3,"mapped":6,"deferred":2,"dropped":1,`+
			`"seq_watermark":8}]}`)

	golden(t,
		&ReadyResponse{Ready: false, Status: "booting"},
		`{"ready":false,"status":"booting"}`)

	// Admin membership operations (dynamic membership): hcload's churn
	// plans and operational tooling speak these across versions.
	golden(t,
		&AdminMachineRequest{Op: AdminOpRemove, Machine: 3, Handoff: true},
		`{"op":"remove","machine":3,"handoff":true}`)
	golden(t,
		&AdminMachineRequest{Op: AdminOpAdd, Shard: 1, Type: 2},
		`{"op":"add","shard":1,"type":2}`)
	golden(t,
		&AdminMachineResponse{Op: AdminOpRemove, Shard: 1, Machine: 3, MachineName: "fast#1", Now: 512, LiveMachines: 3},
		`{"op":"remove","shard":1,"machine":3,"machine_name":"fast#1","now":512,"live_machines":3}`)
}

// TestWireTagsAreSnakeCase keeps the wire vocabulary consistent with
// sim.Result / runner.Aggregate: every JSON key is lower snake_case.
func TestWireTagsAreSnakeCase(t *testing.T) {
	for _, typ := range []reflect.Type{
		reflect.TypeOf(TaskSpec{}),
		reflect.TypeOf(DecideRequest{}),
		reflect.TypeOf(Decision{}),
		reflect.TypeOf(DecideResponse{}),
		reflect.TypeOf(DrainResponse{}),
		reflect.TypeOf(StatusResponse{}),
		reflect.TypeOf(ReadyResponse{}),
		reflect.TypeOf(Snapshot{}),
		reflect.TypeOf(ShardSnapshot{}),
		reflect.TypeOf(StatsResponse{}),
		reflect.TypeOf(ShardLatency{}),
		reflect.TypeOf(ReplayReport{}),
		reflect.TypeOf(AdminMachineRequest{}),
		reflect.TypeOf(AdminMachineResponse{}),
		reflect.TypeOf(ChurnAction{}),
	} {
		for i := 0; i < typ.NumField(); i++ {
			f := typ.Field(i)
			tag := strings.Split(f.Tag.Get("json"), ",")[0]
			if tag == "" {
				t.Errorf("%s.%s has no json tag", typ.Name(), f.Name)
				continue
			}
			if tag != strings.ToLower(tag) || strings.Contains(tag, "-") {
				t.Errorf("%s.%s json tag %q is not snake_case", typ.Name(), f.Name, tag)
			}
		}
	}
}

// TestTaskSpecValidate exercises the request validation boundary.
func TestTaskSpecValidate(t *testing.T) {
	good := TaskSpec{Type: 1, Arrival: 5, Deadline: 50, ExecByType: []pmf.Tick{3, 4}}
	if err := good.Validate(2, 2); err != nil {
		t.Fatalf("valid spec rejected: %v", err)
	}
	cases := []TaskSpec{
		{Type: -1, Arrival: 1, Deadline: 2},
		{Type: 2, Arrival: 1, Deadline: 2},
		{Type: 0, Arrival: -1, Deadline: 2},
		{Type: 0, Arrival: 1, Deadline: -2},
		{Type: 0, Arrival: 1, Deadline: 2, ExecByType: []pmf.Tick{1}},
		{Type: 0, Arrival: 1, Deadline: 2, ExecByType: []pmf.Tick{0, 1}},
	}
	for i, c := range cases {
		if err := c.Validate(2, 2); err == nil {
			t.Errorf("case %d: invalid spec %+v accepted", i, c)
		}
	}
}

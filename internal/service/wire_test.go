package service

import (
	"encoding/json"
	"reflect"
	"strings"
	"testing"

	"github.com/hpcclab/taskdrop/internal/pmf"
	"github.com/hpcclab/taskdrop/internal/sim"
)

// TestWireRoundTrip encodes every wire type, decodes it back, and requires
// equality — the service's JSON contract.
func TestWireRoundTrip(t *testing.T) {
	roundTrip := func(t *testing.T, in, out any) {
		t.Helper()
		data, err := json.Marshal(in)
		if err != nil {
			t.Fatal(err)
		}
		if err := json.Unmarshal(data, out); err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(in, out) {
			t.Fatalf("round trip mismatch:\n in: %+v\nout: %+v\njson: %s", in, out, data)
		}
	}

	req := &DecideRequest{Tasks: []TaskSpec{
		{ID: "a", Type: 2, Arrival: 10, Deadline: 450, ExecByType: []pmf.Tick{30, 70}},
		{Type: 0, Arrival: 11, Deadline: 99},
	}}
	roundTrip(t, req, &DecideRequest{})

	resp := &DecideResponse{Now: 42, Decisions: []Decision{
		{ID: "a", Seq: 0, Action: ActionMap, Machine: 3, MachineName: "fast#0"},
		{Seq: 1, Action: ActionDefer, Machine: -1},
		{Seq: 2, Action: ActionDrop, Machine: -1},
	}}
	roundTrip(t, resp, &DecideResponse{})

	dr := &DrainResponse{Result: &sim.Result{Total: 9, Measured: 9, OnTime: 5, Late: 1,
		DroppedReactive: 1, DroppedProactive: 2, MOnTime: 5, MLate: 1, MDroppedReactive: 1,
		MDroppedProactive: 2, RobustnessPct: 55.5, Makespan: 1234}}
	roundTrip(t, dr, &DrainResponse{})

	st := &StatusResponse{Status: "ok", Profile: "spec", Mapper: "PAM", Dropper: "heuristic", Machines: 8}
	roundTrip(t, st, &StatusResponse{})
}

// TestWireTagsAreSnakeCase keeps the wire vocabulary consistent with
// sim.Result / runner.Aggregate: every JSON key is lower snake_case.
func TestWireTagsAreSnakeCase(t *testing.T) {
	for _, typ := range []reflect.Type{
		reflect.TypeOf(TaskSpec{}),
		reflect.TypeOf(DecideRequest{}),
		reflect.TypeOf(Decision{}),
		reflect.TypeOf(DecideResponse{}),
		reflect.TypeOf(DrainResponse{}),
		reflect.TypeOf(StatusResponse{}),
		reflect.TypeOf(Snapshot{}),
		reflect.TypeOf(ShardSnapshot{}),
		reflect.TypeOf(StatsResponse{}),
		reflect.TypeOf(ShardLatency{}),
		reflect.TypeOf(ReplayReport{}),
	} {
		for i := 0; i < typ.NumField(); i++ {
			f := typ.Field(i)
			tag := strings.Split(f.Tag.Get("json"), ",")[0]
			if tag == "" {
				t.Errorf("%s.%s has no json tag", typ.Name(), f.Name)
				continue
			}
			if tag != strings.ToLower(tag) || strings.Contains(tag, "-") {
				t.Errorf("%s.%s json tag %q is not snake_case", typ.Name(), f.Name, tag)
			}
		}
	}
}

// TestTaskSpecValidate exercises the request validation boundary.
func TestTaskSpecValidate(t *testing.T) {
	good := TaskSpec{Type: 1, Arrival: 5, Deadline: 50, ExecByType: []pmf.Tick{3, 4}}
	if err := good.Validate(2, 2); err != nil {
		t.Fatalf("valid spec rejected: %v", err)
	}
	cases := []TaskSpec{
		{Type: -1, Arrival: 1, Deadline: 2},
		{Type: 2, Arrival: 1, Deadline: 2},
		{Type: 0, Arrival: -1, Deadline: 2},
		{Type: 0, Arrival: 1, Deadline: -2},
		{Type: 0, Arrival: 1, Deadline: 2, ExecByType: []pmf.Tick{1}},
		{Type: 0, Arrival: 1, Deadline: 2, ExecByType: []pmf.Tick{0, 1}},
	}
	for i, c := range cases {
		if err := c.Validate(2, 2); err == nil {
			t.Errorf("case %d: invalid spec %+v accepted", i, c)
		}
	}
}

package service

import (
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"sort"
	"sync/atomic"
	"time"

	"github.com/hpcclab/taskdrop/internal/journal"
	"github.com/hpcclab/taskdrop/internal/pet"
	"github.com/hpcclab/taskdrop/internal/pmf"
	"github.com/hpcclab/taskdrop/internal/sim"
	"github.com/hpcclab/taskdrop/internal/telemetry"
	"github.com/hpcclab/taskdrop/internal/workload"
)

// Journal layout under Config.JournalDir:
//
//	manifest.json      the served configuration (validated on reopen)
//	shard-000/         shard 0's segmented WAL + snapshots (internal/journal)
//	shard-001/         ...
//
// Every shard loop appends its admission events (batch boundaries,
// arrivals, decisions, terminal task events, drain) to its own WAL and
// commits before acknowledging a decide sub-batch. Because a shard engine
// is deterministic, the arrive records alone reconstruct its exact state
// by replay; decision and event records make the log auditable
// (cmd/hcreplay re-derives and compares them).

// manifestName is the manifest file inside the journal root.
const manifestName = "manifest.json"

// Manifest pins the configuration a journal was written under. Reopening
// a journal with a different engine configuration would replay arrivals
// into a different system and silently diverge, so New refuses a manifest
// mismatch on every field that shapes decisions. Router is recorded for
// hcreplay but not matched: it only affects how future arrivals are
// routed, never how logged ones replay (each shard's log is already
// routed).
type Manifest struct {
	Profile           string   `json:"profile"`
	Mapper            string   `json:"mapper"`
	Dropper           string   `json:"dropper"`
	Shards            int      `json:"shards"`
	Router            string   `json:"router"`
	QueueCap          int      `json:"queue_cap"`
	Grace             pmf.Tick `json:"grace"`
	DropOnArrival     bool     `json:"drop_on_arrival"`
	BoundaryExclusion int      `json:"boundary_exclusion"`
	// Partition is the machine partition the journal's server owned
	// ("k/K"; empty = the whole matrix). Matched: replaying a partition
	// log into a differently-partitioned system would feed arrivals to
	// machines the log's decisions never saw.
	Partition string `json:"partition,omitempty"`
}

// manifestFor derives the manifest of a resolved configuration.
func manifestFor(cfg Config) Manifest {
	return Manifest{
		Profile:           cfg.Profile,
		Mapper:            cfg.Mapper,
		Dropper:           cfg.Dropper,
		Shards:            cfg.Shards,
		Router:            cfg.Router,
		QueueCap:          cfg.QueueCap,
		Grace:             cfg.Grace,
		DropOnArrival:     cfg.DropOnArrival,
		BoundaryExclusion: cfg.BoundaryExclusion,
		Partition:         cfg.Partition,
	}
}

// matches reports whether two manifests agree on every decision-shaping
// field (Router intentionally excluded).
func (m Manifest) matches(o Manifest) bool {
	m.Router, o.Router = "", ""
	return m == o
}

// LoadManifest reads the manifest of a journal root directory.
func LoadManifest(root string) (Manifest, error) {
	var m Manifest
	blob, err := os.ReadFile(filepath.Join(root, manifestName))
	if err != nil {
		return m, err
	}
	if err := json.Unmarshal(blob, &m); err != nil {
		return m, fmt.Errorf("service: journal manifest: %w", err)
	}
	return m, nil
}

// ShardJournalDir returns shard s's log directory under a journal root.
func ShardJournalDir(root string, s int) string {
	return filepath.Join(root, fmt.Sprintf("shard-%03d", s))
}

// ShardCheckpoint is the snapshot payload a shard writes at every journal
// checkpoint: the full engine snapshot plus the shard-level state replay
// cannot re-derive from the engine alone (sequence watermark, decision
// counters, router robustness EWMAs).
type ShardCheckpoint struct {
	Shard int `json:"shard"`
	// SeqWatermark is the highest cluster-wide sequence number the shard
	// has decided; a restart resumes issuing from max(watermarks)+1 so
	// decision sequence numbers are never reused.
	SeqWatermark int64 `json:"seq_watermark"`
	Requests     int64 `json:"requests"`
	Mapped       int64 `json:"mapped"`
	Deferred     int64 `json:"deferred"`
	Dropped      int64 `json:"dropped"`
	// Robustness[class] is the router view's per-class EWMA.
	Robustness []float64 `json:"robustness_by_class"`
	// Drained marks the final checkpoint of a graceful drain: the log is
	// complete and recovery needs no tail replay.
	Drained bool                `json:"drained,omitempty"`
	Engine  *sim.EngineSnapshot `json:"engine"`
}

// journalFsyncBuckets are the upper bounds (seconds) of the fsync-latency
// histogram — fdatasync on a local disk lands between tens of
// microseconds (NVMe, battery-backed cache) and tens of milliseconds
// (spinning rust, saturated device).
var journalFsyncBuckets = []float64{
	100e-6, 250e-6, 500e-6, 1e-3, 2.5e-3, 5e-3, 10e-3, 25e-3, 100e-3, 1,
}

// journalMetrics aggregates journal observability across shards. The
// fsync histogram is fed by writer callbacks (decide loops under
// SyncAlways, background syncers under SyncInterval); totals are read
// straight off the writers at scrape time.
type journalMetrics struct {
	histogram []atomic.Int64
	sumNS     atomic.Int64
}

func newJournalMetrics() *journalMetrics {
	return &journalMetrics{histogram: make([]atomic.Int64, len(journalFsyncBuckets)+1)}
}

// observeFsync records one fdatasync duration (concurrency-safe).
func (jm *journalMetrics) observeFsync(d time.Duration) {
	s := d.Seconds()
	i := 0
	for ; i < len(journalFsyncBuckets); i++ {
		if s <= journalFsyncBuckets[i] {
			break
		}
	}
	jm.histogram[i].Add(1)
	jm.sumNS.Add(int64(d))
}

// writeJournalMetrics renders the journal's Prometheus series.
func writeJournalMetrics(w io.Writer, c *Controller) {
	var records, bytes, fsyncs, snaps, lag int64
	for _, sh := range c.shards {
		records += sh.jw.Appended()
		bytes += sh.jw.Bytes()
		fsyncs += sh.jw.Fsyncs()
		snaps += sh.jw.Checkpoints()
		lag += sh.jw.Lag()
	}
	p := func(format string, args ...any) { fmt.Fprintf(w, format, args...) }
	p("# HELP taskdrop_journal_records_total Journal records appended across shards.\n")
	p("# TYPE taskdrop_journal_records_total counter\n")
	p("taskdrop_journal_records_total %d\n", records)
	p("# HELP taskdrop_journal_bytes_total Journal bytes appended across shards.\n")
	p("# TYPE taskdrop_journal_bytes_total counter\n")
	p("taskdrop_journal_bytes_total %d\n", bytes)
	p("# HELP taskdrop_journal_fsyncs_total Completed journal fdatasyncs.\n")
	p("# TYPE taskdrop_journal_fsyncs_total counter\n")
	p("taskdrop_journal_fsyncs_total %d\n", fsyncs)
	p("# HELP taskdrop_journal_snapshots_total Journal checkpoints written.\n")
	p("# TYPE taskdrop_journal_snapshots_total counter\n")
	p("taskdrop_journal_snapshots_total %d\n", snaps)
	p("# HELP taskdrop_journal_lag_records Appended records not yet covered by an fsync.\n")
	p("# TYPE taskdrop_journal_lag_records gauge\n")
	p("taskdrop_journal_lag_records %d\n", lag)
	jm := c.jmetrics
	p("# HELP taskdrop_journal_fsync_latency_seconds Journal fdatasync latency.\n")
	p("# TYPE taskdrop_journal_fsync_latency_seconds histogram\n")
	var cum int64
	for i, le := range journalFsyncBuckets {
		cum += jm.histogram[i].Load()
		p("taskdrop_journal_fsync_latency_seconds_bucket{le=\"%g\"} %d\n", le, cum)
	}
	cum += jm.histogram[len(journalFsyncBuckets)].Load()
	p("taskdrop_journal_fsync_latency_seconds_bucket{le=\"+Inf\"} %d\n", cum)
	p("taskdrop_journal_fsync_latency_seconds_sum %g\n", float64(jm.sumNS.Load())/1e9)
	p("taskdrop_journal_fsync_latency_seconds_count %d\n", cum)
}

// initJournal brings the controller's journal up before the shard loops
// start: validate (or create) the manifest, recover every shard from its
// log — restore the newest checkpoint, then re-feed the tail's arrive
// records through the deterministic engine — and only then open the
// writers and install the terminal-event hooks. Returns an error rather
// than serving over a log it cannot continue safely.
func (c *Controller) initJournal() error {
	root := c.cfg.JournalDir
	if err := os.MkdirAll(root, 0o755); err != nil {
		return err
	}
	want := manifestFor(c.cfg)
	switch have, err := LoadManifest(root); {
	case err == nil:
		if !have.matches(want) {
			return fmt.Errorf("service: journal %s was written under a different configuration (%+v); refusing to continue it with %+v", root, have, want)
		}
	case os.IsNotExist(err):
		blob, merr := json.MarshalIndent(want, "", "  ")
		if merr != nil {
			return merr
		}
		if werr := os.WriteFile(filepath.Join(root, manifestName), append(blob, '\n'), 0o644); werr != nil {
			return werr
		}
	default:
		return err
	}

	policy, err := journal.ParseSyncPolicy(c.cfg.Fsync)
	if err != nil {
		return err
	}
	c.jmetrics = newJournalMetrics()

	maxSeq := int64(-1)
	for _, sh := range c.shards {
		start := time.Now()
		if err := sh.recover(); err != nil {
			c.log.Error("journal recovery failed", "shard", sh.id, "dir", ShardJournalDir(root, sh.id), "err", err)
			return fmt.Errorf("service: shard %d recovery: %w", sh.id, err)
		}
		c.log.Info("shard recovered from journal",
			"shard", sh.id,
			"seq_watermark", sh.watermark,
			"clock", int64(sh.eng.Now()),
			"elapsed", time.Since(start))
		if sh.watermark > maxSeq {
			maxSeq = sh.watermark
		}
	}
	c.seq.Store(maxSeq + 1)

	// Aggregate counters: decision counts re-derive exactly from the shard
	// recoveries; the aggregate request counter is approximated by the sum
	// of shard sub-batches (a multi-shard batch counted once per shard).
	var reqs, mapped, deferred, dropped int64
	for _, sh := range c.shards {
		reqs += sh.metrics.requests.Load()
		mapped += sh.metrics.mapped.Load()
		deferred += sh.metrics.deferred.Load()
		dropped += sh.metrics.dropped.Load()
	}
	c.metrics.requests.Store(reqs)
	c.metrics.mapped.Store(mapped)
	c.metrics.deferred.Store(deferred)
	c.metrics.dropped.Store(dropped)
	c.metrics.tasks.Store(mapped + deferred + dropped)

	// Re-seed the dedup window from the recovered batches: a request that
	// committed before the crash answers its retry with its original
	// decisions; a torn batch poisons its ID so a retry cannot double-feed
	// the partially-applied arrivals. Seeding only covers batches after the
	// newest checkpoint — older ones are beyond any sane retry window.
	if c.dedup != nil {
		c.seedDedup()
	}

	// Writers open after recovery: OpenWriter truncates any torn tail, so
	// it must not run until the replay has consumed the valid prefix.
	for _, sh := range c.shards {
		w, err := journal.OpenWriter(ShardJournalDir(root, sh.id), journal.WriterOptions{
			Policy:   policy,
			Interval: c.cfg.FsyncInterval,
			OnFsync:  c.jmetrics.observeFsync,
		})
		if err != nil {
			return err
		}
		sh.jw = w
		sh.installJournalHook()
	}
	return nil
}

// seedDedup merges the shards' recovered batches per decision ID and
// installs each ID's original response (or its poison) in the dedup
// window. A multi-shard request journaled one sub-batch per shard under
// the same ID; its decisions merge back into request order by sequence
// number (Decide assigns them contiguously in request order). Runs before
// the shard loops start.
func (c *Controller) seedDedup() {
	type mergedBatch struct {
		decisions []Decision
		now       pmf.Tick
		err       error
	}
	byID := make(map[string]*mergedBatch)
	var order []string
	for _, sh := range c.shards {
		for i := range sh.recovered {
			rb := &sh.recovered[i]
			m := byID[rb.id]
			if m == nil {
				m = &mergedBatch{}
				byID[rb.id] = m
				order = append(order, rb.id)
			}
			if rb.err != nil && m.err == nil {
				m.err = rb.err
			}
			m.decisions = append(m.decisions, rb.decisions...)
			if rb.now > m.now {
				m.now = rb.now
			}
		}
		sh.recovered = nil
	}
	seeded, poisoned := 0, 0
	for _, id := range order {
		m := byID[id]
		if m.err != nil {
			c.dedup.Poison(id, m.err)
			poisoned++
			continue
		}
		sort.Slice(m.decisions, func(i, j int) bool { return m.decisions[i].Seq < m.decisions[j].Seq })
		data, err := json.Marshal(&DecideResponse{Now: m.now, Decisions: m.decisions})
		if err != nil {
			continue
		}
		// The trailing newline matches the live ack path (one Encode/Marshal
		// write), keeping a replayed duplicate byte-identical.
		c.dedup.Seed(id, append(data, '\n'), len(m.decisions))
		seeded++
	}
	if seeded+poisoned > 0 {
		c.log.Info("dedup window re-seeded from journal", "seeded", seeded, "poisoned", poisoned)
	}
}

// recoveredBatch is one journaled decide sub-batch carrying a decision ID,
// re-derived during recovery: the decisions the shard acknowledged under
// the ID, or the tear a crash left mid-batch. initJournal merges the
// per-shard parts of each ID and re-seeds the dedup window, so a client
// retrying across the crash still gets its original decisions back.
type recoveredBatch struct {
	id        string
	expect    int
	decisions []Decision
	now       pmf.Tick
	err       error // non-nil: the batch is torn (poison the ID)
}

// errTornBatch marks a journaled batch the crash cut mid-write: some of
// its arrivals were re-applied during recovery, the rest never reached the
// log, so neither replaying nor re-executing the request is safe.
var errTornBatch = errors.New("batch torn by crash (journaled arrivals incomplete)")

// recover rebuilds one shard's state from its log: restore the newest
// checkpoint (engine snapshot, counters, robustness EWMAs, watermark),
// then re-feed the tail segments' arrive records through the engine —
// decisions re-derive deterministically, so the engine, the router view
// and the counters land exactly where the crash left them. Runs before
// the shard loop starts; no synchronization needed.
func (sh *shard) recover() error {
	dir := ShardJournalDir(sh.c.cfg.JournalDir, sh.id)
	rec, err := journal.Recover(dir)
	if err != nil {
		return err
	}
	sh.watermark = -1
	if rec.Snapshot != nil {
		var cp ShardCheckpoint
		if err := json.Unmarshal(rec.Snapshot, &cp); err != nil {
			return fmt.Errorf("checkpoint decode: %w", err)
		}
		if cp.Engine == nil {
			return fmt.Errorf("checkpoint without engine snapshot")
		}
		if err := sh.eng.RestoreSnapshot(cp.Engine); err != nil {
			return err
		}
		// The checkpoint may carry runtime-added machines the directory has
		// never seen; register them before any tail record references one.
		sh.registerAdded()
		sh.watermark = cp.SeqWatermark
		sh.metrics.requests.Store(cp.Requests)
		sh.metrics.mapped.Store(cp.Mapped)
		sh.metrics.deferred.Store(cp.Deferred)
		sh.metrics.dropped.Store(cp.Dropped)
		sh.metrics.tasks.Store(cp.Mapped + cp.Deferred + cp.Dropped)
		for class, p := range cp.Robustness {
			sh.view.SetClassRobustness(class, p)
		}
		sh.eng.PublishLoad(sh.view)
	}
	// open tracks the decide sub-batch currently being replayed, when it
	// carries a decision ID; closeOpen retires it (complete or torn) into
	// sh.recovered for dedup re-seeding.
	var open *recoveredBatch
	closeOpen := func() {
		if open == nil {
			return
		}
		if open.err == nil && len(open.decisions) < open.expect {
			open.err = errTornBatch
		}
		sh.recovered = append(sh.recovered, *open)
		open = nil
	}
	machines := sh.c.matrix.Machines()
	err = rec.Replay(dir, func(r *journal.Record) error {
		switch r.Kind {
		case journal.KindBatch:
			closeOpen()
			sh.metrics.requests.Add(1)
			if r.ID != "" {
				open = &recoveredBatch{id: r.ID, expect: int(r.NTasks)}
			}
		case journal.KindArrive:
			ts := sh.eng.Feed(&workload.Task{
				ID:         int(r.Seq),
				Type:       pet.TaskType(r.Type),
				Arrival:    r.Tick,
				Deadline:   r.Deadline,
				ExecByType: r.Exec,
			})
			sh.metrics.countDecision(actionOf(ts.Status))
			sh.eng.ObserveDecision(sh.view, ts)
			if r.Seq > sh.watermark {
				sh.watermark = r.Seq
			}
			if open != nil {
				// Re-derive the wire decision the live server acknowledged —
				// the same status mapping decide() applies.
				d := Decision{ID: r.ID, Seq: int(r.Seq), Shard: sh.id, Machine: -1, Action: actionOf(ts.Status)}
				if d.Action == ActionMap {
					d.Machine = sh.global[ts.Machine]
					if d.Machine < len(machines) {
						d.MachineName = machines[d.Machine].Name
					} else {
						d.MachineName = sh.c.machineName(d.Machine)
					}
				}
				open.decisions = append(open.decisions, d)
				open.now = sh.eng.Now()
				if len(open.decisions) == open.expect {
					closeOpen()
				}
			}
		case journal.KindMembership:
			// Membership records are replay inputs like arrives: re-apply
			// the operation so the engine crosses the churn point exactly as
			// the live server did.
			if err := sh.applyMembership(r); err != nil {
				return err
			}
		}
		// Decision, event and drain records re-derive from the arrives;
		// hcreplay -verify consumes them, recovery does not.
		return nil
	})
	// A log ending mid-batch is the torn tail of a crash.
	closeOpen()
	// Republish after the tail: membership may have changed mid-log, and
	// PublishLoad marks a fully-removed shard down so the router steers
	// around it from the first post-recovery request.
	sh.updateMembershipGauges()
	sh.eng.PublishLoad(sh.view)
	return err
}

// actionOf maps a just-fed task's status onto the wire admission action —
// the same mapping decide() applies.
func actionOf(st sim.Status) Action {
	switch st {
	case sim.StatusQueued, sim.StatusRunning:
		return ActionMap
	case sim.StatusBatch:
		return ActionDefer
	default:
		return ActionDrop
	}
}

// installJournalHook wires the engine's terminal transitions (completion,
// failure, reactive/proactive drop) into the shard's WAL. The hook runs
// inside the decision loop (Feed, checkpointed drains), so appends are
// single-writer like every other journal write.
func (sh *shard) installJournalHook() {
	sh.eng.SetJournal(func(ts *sim.TaskState, now pmf.Tick) {
		_ = sh.jw.Append(&journal.Record{
			Kind:   journal.KindEvent,
			Seq:    int64(ts.Task.ID),
			Action: uint8(ts.Status),
			Tick:   now,
		})
	})
}

// journalBatch logs a decide sub-batch boundary; id carries the request's
// idempotent decision ID (empty when the client sent none), which recovery
// uses to re-seed the dedup window.
func (sh *shard) journalBatch(n int, id string) {
	_ = sh.jw.Append(&journal.Record{Kind: journal.KindBatch, NTasks: int32(n), ID: id})
}

// journalArrive logs one admitted arrival before it is fed.
func (sh *shard) journalArrive(seq int64, t *workload.Task, id string) {
	_ = sh.jw.Append(&journal.Record{
		Kind:     journal.KindArrive,
		Seq:      seq,
		Type:     int32(t.Type),
		Tick:     t.Arrival,
		Deadline: t.Deadline,
		Exec:     t.ExecByType,
		ID:       id,
	})
}

// journalDecision logs the acknowledged admission outcome (machine index
// shard-local, matching what replay re-derives).
func (sh *shard) journalDecision(seq int64, a Action, localMachine int) {
	act := journal.ActDrop
	switch a {
	case ActionMap:
		act = journal.ActMap
	case ActionDefer:
		act = journal.ActDefer
	}
	_ = sh.jw.Append(&journal.Record{
		Kind:    journal.KindDecision,
		Seq:     seq,
		Action:  act,
		Machine: int32(localMachine),
		Tick:    sh.eng.Now(),
	})
}

// journalTrace logs one completed stage trace. It runs after the
// sub-batch's commit (the trace's journal span must include the fsync),
// so the record rides the next commit — or the writer's closing flush —
// one batch later. Traces are observational; losing a tail of them in a
// crash loses nothing recovery or verification needs.
func (sh *shard) journalTrace(tr *telemetry.Trace) {
	rec := journal.Record{
		Kind:  journal.KindTrace,
		Seq:   tr.Seq,
		Spans: make([]journal.SpanRec, len(tr.Spans)),
	}
	for i, sp := range tr.Spans {
		rec.Spans[i] = journal.SpanRec{Stage: uint8(sp.Stage), StartNS: uint64(sp.StartNS), EndNS: uint64(sp.EndNS)}
	}
	_ = sh.jw.Append(&rec)
}

// commitJournal makes the sub-batch durable per the fsync policy and
// checkpoints when the segment has grown past the snapshot cadence. Called
// on the decision loop before the sub-batch is acknowledged.
func (sh *shard) commitJournal() error {
	if err := sh.jw.Commit(); err != nil {
		return err
	}
	if every := sh.c.cfg.SnapshotEvery; every > 0 && sh.jw.RecordsInSegment() >= every {
		return sh.checkpoint(false)
	}
	return nil
}

// checkpoint writes the shard's full state as a journal snapshot and
// rotates the segment. Runs on the decision loop.
func (sh *shard) checkpoint(drained bool) error {
	nt := sh.c.matrix.NumTaskTypes()
	cp := ShardCheckpoint{
		Shard:        sh.id,
		SeqWatermark: sh.watermark,
		Requests:     sh.metrics.requests.Load(),
		Mapped:       sh.metrics.mapped.Load(),
		Deferred:     sh.metrics.deferred.Load(),
		Dropped:      sh.metrics.dropped.Load(),
		Robustness:   make([]float64, nt),
		Drained:      drained,
		Engine:       sh.eng.Snapshot(),
	}
	for class := 0; class < nt; class++ {
		cp.Robustness[class] = sh.view.ClassRobustness(class)
	}
	blob, err := json.Marshal(&cp)
	if err != nil {
		return err
	}
	return sh.jw.Checkpoint(blob)
}

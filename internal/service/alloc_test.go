package service

import (
	"context"
	"testing"
)

// maxControllerDecideAllocs bounds the steady-state allocation count of
// one full Controller.Decide round trip (request validation, event-loop
// hand-off, engine feed including the completion-time calculus, decision
// assembly). The calculus itself is allocation-free once warm; what
// remains is the per-request wiring (task state, response, channel
// closures). The pre-arena baseline was ~250 allocs/op, so this budget
// catches any regression that reintroduces per-convolution slices. CI's
// alloc-regression job runs this test.
const maxControllerDecideAllocs = 48

func TestControllerDecideAllocsSteadyState(t *testing.T) {
	if raceEnabled {
		t.Skip("allocation counts are skewed under the race detector")
	}
	c, err := New(Config{Profile: "video", Mapper: "PAM", Dropper: "heuristic"})
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	tasks := benchTasks(t, 4096)
	ctx := context.Background()
	i := 0
	decide := func() {
		task := &tasks[i%len(tasks)]
		i++
		req := DecideRequest{Tasks: []TaskSpec{{
			Type: int(task.Type), Arrival: task.Arrival,
			Deadline: task.Deadline, ExecByType: task.ExecByType,
		}}}
		if _, err := c.Decide(ctx, &req); err != nil {
			t.Fatal(err)
		}
	}
	for k := 0; k < 64; k++ { // warm the engine, arena and scratch pools
		decide()
	}
	if avg := testing.AllocsPerRun(200, decide); avg > maxControllerDecideAllocs {
		t.Fatalf("steady-state Controller.Decide allocates %.1f/op, budget %d", avg, maxControllerDecideAllocs)
	}
}

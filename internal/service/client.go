package service

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"sort"
	"time"

	"github.com/hpcclab/taskdrop/internal/sim"
	"github.com/hpcclab/taskdrop/internal/workload"
)

// ReplayConfig tunes a trace replay against a running admission server.
type ReplayConfig struct {
	// BatchSize is the number of tasks per decide request (default 16).
	BatchSize int
	// Speed is the arrival-rate multiplier relative to the trace's own
	// clock (ticks are milliseconds): 1 replays in real time, 50 replays
	// fifty times faster, and <= 0 replays as fast as the server answers.
	Speed float64
	// Drain issues POST /v1/drain after the last task and collects the
	// final Result (default on through cmd/hcload).
	Drain bool
	// From and To bound the replay to trace tasks [From, To) (To <= 0 means
	// the end). Splitting one trace across a server restart — replay -to N,
	// restart, replay -from N — feeds the journaled server the same total
	// stream as one uninterrupted replay, which is how the crash-recovery
	// smoke proves recovered state equals live state.
	From, To int
}

// ShardLatency is the client-observed decide latency attributed to one
// admission shard: a request's latency counts toward every shard that
// decided part of it, so with single-task batches the attribution is
// exact and with larger batches it bounds each shard's contribution.
type ShardLatency struct {
	Shard    int           `json:"shard"`
	Requests int           `json:"requests"`
	P50      time.Duration `json:"latency_p50_ns"`
	P99      time.Duration `json:"latency_p99_ns"`
}

// ReplayReport is the client-side account of one replayed trace.
type ReplayReport struct {
	Requests int `json:"requests"`
	Tasks    int `json:"tasks"`
	Mapped   int `json:"mapped"`
	Deferred int `json:"deferred"`
	Dropped  int `json:"dropped"`
	// Decisions is the full decision sequence, in arrival order.
	Decisions []Decision `json:"decisions"`
	// LatencyP50/P99 are client-observed decide-request latencies.
	LatencyP50 time.Duration `json:"latency_p50_ns"`
	LatencyP99 time.Duration `json:"latency_p99_ns"`
	// PerShard breaks the latencies down by the shard(s) that served each
	// request, in shard order (one entry on an unsharded server).
	PerShard []ShardLatency `json:"per_shard,omitempty"`
	Elapsed  time.Duration  `json:"elapsed_ns"`
	// Final is the server's drain Result (nil unless ReplayConfig.Drain).
	Final *sim.Result `json:"final,omitempty"`
}

// Robustness returns the achieved on-time completion ratio (%) reported by
// the server's drain, or -1 when the replay did not drain.
func (r *ReplayReport) Robustness() float64 {
	if r.Final == nil {
		return -1
	}
	return r.Final.RobustnessPct
}

// Replay feeds a workload trace through a server's /v1/decide endpoint in
// arrival order, pacing by the trace's arrival gaps scaled by cfg.Speed,
// and reports decisions, latency percentiles and (when draining) the
// server's final Result. The same (trace, batch size) always produces the
// same request sequence, so replays are reproducible end to end.
func Replay(ctx context.Context, client *http.Client, baseURL string, tr *workload.Trace, cfg ReplayConfig) (*ReplayReport, error) {
	if client == nil {
		client = http.DefaultClient
	}
	if cfg.BatchSize < 1 {
		cfg.BatchSize = 16
	}
	tasks := tr.Tasks
	if cfg.To > 0 && cfg.To < len(tasks) {
		tasks = tasks[:cfg.To]
	}
	if cfg.From < 0 || cfg.From > len(tasks) {
		return nil, fmt.Errorf("service: replay window [%d,%d) outside trace of %d tasks", cfg.From, len(tasks), tr.Len())
	}
	tasks = tasks[cfg.From:]
	rep := &ReplayReport{Tasks: len(tasks)}
	lats := make([]time.Duration, 0, (len(tasks)+cfg.BatchSize-1)/cfg.BatchSize)
	shardLats := map[int][]time.Duration{}
	start := time.Now()

	for lo := 0; lo < len(tasks); lo += cfg.BatchSize {
		hi := lo + cfg.BatchSize
		if hi > len(tasks) {
			hi = len(tasks)
		}
		req := DecideRequest{Tasks: make([]TaskSpec, hi-lo)}
		for i, t := range tasks[lo:hi] {
			req.Tasks[i] = TaskSpec{
				ID:         fmt.Sprintf("t%d", t.ID),
				Type:       int(t.Type),
				Arrival:    t.Arrival,
				Deadline:   t.Deadline,
				ExecByType: t.ExecByType,
			}
		}
		if cfg.Speed > 0 {
			// Pace so the batch's first arrival lands on the scaled clock.
			due := start.Add(time.Duration(float64(tasks[lo].Arrival-tasks[0].Arrival) / cfg.Speed * float64(time.Millisecond)))
			if wait := time.Until(due); wait > 0 {
				select {
				case <-time.After(wait):
				case <-ctx.Done():
					return nil, ctx.Err()
				}
			}
		}
		t0 := time.Now()
		var resp DecideResponse
		if err := postJSON(ctx, client, baseURL+"/v1/decide", &req, &resp); err != nil {
			return nil, err
		}
		lat := time.Since(t0)
		lats = append(lats, lat)
		rep.Requests++
		seen := map[int]bool{}
		for _, d := range resp.Decisions {
			switch d.Action {
			case ActionMap:
				rep.Mapped++
			case ActionDefer:
				rep.Deferred++
			case ActionDrop:
				rep.Dropped++
			}
			if !seen[d.Shard] {
				seen[d.Shard] = true
				shardLats[d.Shard] = append(shardLats[d.Shard], lat)
			}
		}
		rep.Decisions = append(rep.Decisions, resp.Decisions...)
	}

	// Elapsed covers decision traffic only, so achieved tasks/s stays
	// comparable to the decide benchmarks; the drain below runs the whole
	// virtual system to completion and is not decision throughput.
	rep.Elapsed = time.Since(start)
	if cfg.Drain {
		var dr DrainResponse
		if err := postJSON(ctx, client, baseURL+"/v1/drain", nil, &dr); err != nil {
			return nil, err
		}
		rep.Final = dr.Result
	}
	sort.Slice(lats, func(i, j int) bool { return lats[i] < lats[j] })
	rep.LatencyP50 = percentile(lats, 0.50)
	rep.LatencyP99 = percentile(lats, 0.99)
	shardIDs := make([]int, 0, len(shardLats))
	for s := range shardLats {
		shardIDs = append(shardIDs, s)
	}
	sort.Ints(shardIDs)
	for _, s := range shardIDs {
		sl := shardLats[s]
		sort.Slice(sl, func(i, j int) bool { return sl[i] < sl[j] })
		rep.PerShard = append(rep.PerShard, ShardLatency{
			Shard:    s,
			Requests: len(sl),
			P50:      percentile(sl, 0.50),
			P99:      percentile(sl, 0.99),
		})
	}
	return rep, nil
}

// percentile reads the q-quantile from an ascending latency slice by
// linear interpolation between the bracketing order statistics (Hyndman &
// Fan type 7, the default of R and numpy). The earlier nearest-rank
// definition collapsed small samples onto single order statistics — at
// n < 100 every q > (n-1)/n reads the maximum and the median of two
// samples reads the faster one — biasing reported tails whichever way the
// truncation fell; interpolation converges smoothly from tiny replay runs
// up.
func percentile(sorted []time.Duration, q float64) time.Duration {
	n := len(sorted)
	switch {
	case n == 0:
		return 0
	case n == 1:
		return sorted[0]
	}
	r := q * float64(n-1)
	i := int(r)
	if i >= n-1 {
		return sorted[n-1]
	}
	if i < 0 {
		i = 0
	}
	frac := r - float64(i)
	return sorted[i] + time.Duration(frac*float64(sorted[i+1]-sorted[i])+0.5)
}

// postJSON posts body (nil for an empty body) and decodes the response
// into out, surfacing the server's error string on non-2xx statuses.
func postJSON(ctx context.Context, client *http.Client, url string, body, out any) error {
	var rd io.Reader
	if body != nil {
		data, err := json.Marshal(body)
		if err != nil {
			return err
		}
		rd = bytes.NewReader(data)
	}
	req, err := http.NewRequestWithContext(ctx, http.MethodPost, url, rd)
	if err != nil {
		return err
	}
	req.Header.Set("Content-Type", "application/json")
	resp, err := client.Do(req)
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	if resp.StatusCode/100 != 2 {
		var eb errorBody
		if json.NewDecoder(io.LimitReader(resp.Body, 1<<16)).Decode(&eb) == nil && eb.Error != "" {
			return fmt.Errorf("service: %s: %s (HTTP %d)", url, eb.Error, resp.StatusCode)
		}
		return fmt.Errorf("service: %s: HTTP %d", url, resp.StatusCode)
	}
	return json.NewDecoder(resp.Body).Decode(out)
}

package service

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"net/url"
	"sort"
	"strconv"
	"sync/atomic"
	"time"

	"github.com/hpcclab/taskdrop/internal/sim"
	"github.com/hpcclab/taskdrop/internal/workload"
)

// ClientConfig tunes the retrying service client.
type ClientConfig struct {
	// Timeout bounds each individual attempt (not the whole call); 0 means
	// no per-attempt timeout beyond the caller's ctx.
	Timeout time.Duration
	// Retries is the retry budget after the first attempt (default 0: one
	// attempt, the pre-retry behavior). Only transport errors, 5xx and 429
	// are retried — a 4xx is the caller's bug and repeats identically.
	Retries int
	// Backoff is the first retry's delay, doubling per attempt up to
	// maxBackoff, each sleep stretched by up to 50% deterministic jitter
	// (default 50ms). A server's Retry-After overrides the computed delay.
	Backoff time.Duration
}

// Client wraps an http.Client with bounded retries and exponential
// backoff for the service's POST endpoints. Safe for concurrent use.
//
// Retrying a decide is only harmless when the request carries a
// DecisionID (the server then deduplicates); Replay stamps one on every
// request whenever retries are enabled.
type Client struct {
	http *http.Client
	cfg  ClientConfig
	// jitterState drives a counter-based splitmix64 stream — deterministic
	// jitter, no wall-clock randomness, same idiom as router.PowerOfTwo.
	jitterState atomic.Uint64
	// attempts counts every HTTP attempt (first tries and retries alike).
	attempts atomic.Int64
	// shed429 counts attempts answered 429 — a degraded shard shedding
	// load (or a router's backpressure).
	shed429 atomic.Int64
}

// Backoff defaults and cap.
const (
	defaultBackoff = 50 * time.Millisecond
	maxBackoff     = 2 * time.Second
)

// NewClient builds a retrying client over hc (nil means
// http.DefaultClient).
func NewClient(hc *http.Client, cfg ClientConfig) *Client {
	if hc == nil {
		hc = http.DefaultClient
	}
	if cfg.Retries < 0 {
		cfg.Retries = 0
	}
	if cfg.Backoff <= 0 {
		cfg.Backoff = defaultBackoff
	}
	return &Client{http: hc, cfg: cfg}
}

// HTTPError is a non-2xx response, carrying the status and the server's
// Retry-After hint (0 when absent).
type HTTPError struct {
	Status     int
	URL        string
	Msg        string
	RetryAfter time.Duration
}

// Error implements error.
func (e *HTTPError) Error() string {
	if e.Msg != "" {
		return fmt.Sprintf("service: %s: %s (HTTP %d)", e.URL, e.Msg, e.Status)
	}
	return fmt.Sprintf("service: %s: HTTP %d", e.URL, e.Status)
}

// retryable reports whether err is worth another attempt: transport
// failures, server errors and backpressure (429). Client errors (other
// 4xx) and JSON decode failures repeat identically, so they are final.
func retryable(err error) bool {
	var he *HTTPError
	if errors.As(err, &he) {
		return he.Status >= 500 || he.Status == http.StatusTooManyRequests
	}
	// Transport-level failure (connection refused, reset, per-attempt
	// timeout): http.Client.Do wraps them all in *url.Error.
	var ue *url.Error
	return errors.As(err, &ue)
}

// PostJSON posts body (nil for empty) to url and decodes the response
// into out, retrying per the client's config. The sleep before attempt k
// is Backoff·2^(k-1) stretched by up to 50% deterministic jitter and
// capped at 2s — unless the server sent Retry-After, which wins.
func (cl *Client) PostJSON(ctx context.Context, url string, body, out any) error {
	var data []byte
	if body != nil {
		var err error
		if data, err = json.Marshal(body); err != nil {
			return err
		}
	}
	var lastErr error
	for attempt := 0; ; attempt++ {
		lastErr = cl.post(ctx, url, data, out)
		if lastErr == nil || attempt >= cl.cfg.Retries || !retryable(lastErr) {
			return lastErr
		}
		delay := cl.cfg.Backoff << attempt
		if delay > maxBackoff {
			delay = maxBackoff
		}
		// Up to +50% jitter desynchronizes retry storms across clients
		// without reading a wall clock for randomness.
		delay += time.Duration(cl.jitter() % uint64(delay/2+1))
		var he *HTTPError
		if errors.As(lastErr, &he) && he.RetryAfter > 0 {
			delay = he.RetryAfter
		}
		select {
		case <-time.After(delay):
		case <-ctx.Done():
			return lastErr
		}
	}
}

// Attempts returns the total HTTP attempts made (first tries + retries).
func (cl *Client) Attempts() int64 { return cl.attempts.Load() }

// Shed429 returns the number of attempts answered HTTP 429.
func (cl *Client) Shed429() int64 { return cl.shed429.Load() }

// GetJSON fetches url and decodes the response into out, in a single
// attempt under the per-attempt timeout — no retries. Health and stats
// probes want fast failure, not a retry budget: the caller polls anyway.
func (cl *Client) GetJSON(ctx context.Context, u string, out any) error {
	cl.attempts.Add(1)
	if cl.cfg.Timeout > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, cl.cfg.Timeout)
		defer cancel()
	}
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, u, nil)
	if err != nil {
		return err
	}
	resp, err := cl.http.Do(req)
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	if resp.StatusCode/100 != 2 {
		he := &HTTPError{Status: resp.StatusCode, URL: u}
		var eb errorBody
		if json.NewDecoder(io.LimitReader(resp.Body, 1<<16)).Decode(&eb) == nil {
			he.Msg = eb.Error
		}
		return he
	}
	if out == nil {
		return nil
	}
	return json.NewDecoder(resp.Body).Decode(out)
}

// post runs one attempt under the per-attempt timeout.
func (cl *Client) post(ctx context.Context, u string, data []byte, out any) error {
	cl.attempts.Add(1)
	if cl.cfg.Timeout > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, cl.cfg.Timeout)
		defer cancel()
	}
	var rd io.Reader
	if data != nil {
		rd = bytes.NewReader(data)
	}
	req, err := http.NewRequestWithContext(ctx, http.MethodPost, u, rd)
	if err != nil {
		return err
	}
	req.Header.Set("Content-Type", "application/json")
	resp, err := cl.http.Do(req)
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	if resp.StatusCode/100 != 2 {
		if resp.StatusCode == http.StatusTooManyRequests {
			cl.shed429.Add(1)
		}
		he := &HTTPError{Status: resp.StatusCode, URL: u}
		var eb errorBody
		if json.NewDecoder(io.LimitReader(resp.Body, 1<<16)).Decode(&eb) == nil {
			he.Msg = eb.Error
		}
		if s := resp.Header.Get("Retry-After"); s != "" {
			if secs, err := strconv.Atoi(s); err == nil && secs >= 0 {
				he.RetryAfter = time.Duration(secs) * time.Second
			}
		}
		return he
	}
	if out == nil {
		return nil
	}
	return json.NewDecoder(resp.Body).Decode(out)
}

// jitter advances the deterministic splitmix64 stream by one draw.
func (cl *Client) jitter() uint64 {
	x := cl.jitterState.Add(0x9E3779B97F4A7C15)
	x ^= x >> 30
	x *= 0xBF58476D1CE4E5B9
	x ^= x >> 27
	x *= 0x94D049BB133111EB
	return x ^ (x >> 31)
}

// ReplayConfig tunes a trace replay against a running admission server.
type ReplayConfig struct {
	// BatchSize is the number of tasks per decide request (default 16).
	BatchSize int
	// Speed is the arrival-rate multiplier relative to the trace's own
	// clock (ticks are milliseconds): 1 replays in real time, 50 replays
	// fifty times faster, and <= 0 replays as fast as the server answers.
	Speed float64
	// Drain issues POST /v1/drain after the last task and collects the
	// final Result (default on through cmd/hcload).
	Drain bool
	// From and To bound the replay to trace tasks [From, To) (To <= 0 means
	// the end). Splitting one trace across a server restart — replay -to N,
	// restart, replay -from N — feeds the journaled server the same total
	// stream as one uninterrupted replay, which is how the crash-recovery
	// smoke proves recovered state equals live state.
	From, To int
	// Timeout, Retries and Backoff configure the retrying client (see
	// ClientConfig). With Retries > 0 every decide request is stamped with
	// a DecisionID so a retry of a timed-out-but-committed request replays
	// the original decisions instead of double-feeding.
	Timeout time.Duration
	Retries int
	Backoff time.Duration
	// DecisionIDPrefix namespaces the stamped DecisionIDs (default
	// "replay"). Distinct replays against one server must use distinct
	// prefixes, or their IDs collide in the server's dedup window.
	DecisionIDPrefix string
	// Churn schedules admin membership operations at task-index points of
	// the replay (see ParseChurnPlan) — the fault-injection harness.
	// Indexes are relative to the replayed window (after From/To).
	Churn []ChurnAction
}

// ShardLatency is the client-observed decide latency attributed to one
// admission shard: a request's latency counts toward every shard that
// decided part of it, so with single-task batches the attribution is
// exact and with larger batches it bounds each shard's contribution.
type ShardLatency struct {
	Shard    int           `json:"shard"`
	Requests int           `json:"requests"`
	P50      time.Duration `json:"latency_p50_ns"`
	P99      time.Duration `json:"latency_p99_ns"`
}

// ReplayReport is the client-side account of one replayed trace.
type ReplayReport struct {
	Requests int `json:"requests"`
	Tasks    int `json:"tasks"`
	Mapped   int `json:"mapped"`
	Deferred int `json:"deferred"`
	Dropped  int `json:"dropped"`
	// Decisions is the full decision sequence, in arrival order.
	Decisions []Decision `json:"decisions"`
	// LatencyP50/P99 are client-observed decide-request latencies.
	LatencyP50 time.Duration `json:"latency_p50_ns"`
	LatencyP99 time.Duration `json:"latency_p99_ns"`
	// PerShard breaks the latencies down by the shard(s) that served each
	// request, in shard order (one entry on an unsharded server).
	PerShard []ShardLatency `json:"per_shard,omitempty"`
	// Retried counts decide requests that needed more than one attempt.
	Retried int `json:"retried,omitempty"`
	// ChurnOps counts the churn-plan membership operations applied.
	ChurnOps int `json:"churn_ops,omitempty"`
	// Shed429 counts decide attempts a degraded shard shed with HTTP 429.
	Shed429 int `json:"shed_429,omitempty"`
	// DegradedWindow is the cumulative wall time spent on decide requests
	// that saw at least one 429 — how long the replay ran against degraded
	// capacity before the request got through (or failed).
	DegradedWindow time.Duration `json:"degraded_window_ns,omitempty"`
	// DuplicateAcks counts trace tasks acknowledged more than once — a
	// nonzero value means a retry double-fed the server (the idempotency
	// machinery failed).
	DuplicateAcks int           `json:"duplicate_acks,omitempty"`
	Elapsed       time.Duration `json:"elapsed_ns"`
	// Final is the server's drain Result (nil unless ReplayConfig.Drain).
	Final *sim.Result `json:"final,omitempty"`
}

// Robustness returns the achieved on-time completion ratio (%) reported by
// the server's drain, or -1 when the replay did not drain.
func (r *ReplayReport) Robustness() float64 {
	if r.Final == nil {
		return -1
	}
	return r.Final.RobustnessPct
}

// Replay feeds a workload trace through a server's /v1/decide endpoint in
// arrival order, pacing by the trace's arrival gaps scaled by cfg.Speed,
// and reports decisions, latency percentiles and (when draining) the
// server's final Result. The same (trace, batch size) always produces the
// same request sequence, so replays are reproducible end to end. With
// cfg.Retries > 0, failed requests are retried with backoff under stamped
// decision IDs (idempotent against dedup-aware servers).
func Replay(ctx context.Context, client *http.Client, baseURL string, tr *workload.Trace, cfg ReplayConfig) (*ReplayReport, error) {
	cl := NewClient(client, ClientConfig{Timeout: cfg.Timeout, Retries: cfg.Retries, Backoff: cfg.Backoff})
	if cfg.BatchSize < 1 {
		cfg.BatchSize = 16
	}
	if cfg.DecisionIDPrefix == "" {
		cfg.DecisionIDPrefix = "replay"
	}
	tasks := tr.Tasks
	if cfg.To > 0 && cfg.To < len(tasks) {
		tasks = tasks[:cfg.To]
	}
	if cfg.From < 0 || cfg.From > len(tasks) {
		return nil, fmt.Errorf("service: replay window [%d,%d) outside trace of %d tasks", cfg.From, len(tasks), tr.Len())
	}
	tasks = tasks[cfg.From:]
	rep := &ReplayReport{Tasks: len(tasks)}
	lats := make([]time.Duration, 0, (len(tasks)+cfg.BatchSize-1)/cfg.BatchSize)
	shardLats := map[int][]time.Duration{}
	acked := make(map[string]bool, len(tasks))

	// Churn plan, ordered by firing point. Actions fire between batches so
	// every membership change lands at a deterministic decision boundary.
	churn := append([]ChurnAction(nil), cfg.Churn...)
	sort.SliceStable(churn, func(i, j int) bool { return churn[i].AtTask < churn[j].AtTask })
	fireChurn := func(upto int) error {
		for len(churn) > 0 && churn[0].AtTask <= upto {
			a := churn[0]
			churn = churn[1:]
			if err := cl.PostJSON(ctx, baseURL+"/v1/admin/machines", &a.Req, nil); err != nil {
				return fmt.Errorf("service: churn action at task %d (%s): %w", a.AtTask, a.Req.Op, err)
			}
			rep.ChurnOps++
		}
		return nil
	}
	start := time.Now()

	for lo := 0; lo < len(tasks); lo += cfg.BatchSize {
		if err := fireChurn(lo); err != nil {
			return nil, err
		}
		hi := lo + cfg.BatchSize
		if hi > len(tasks) {
			hi = len(tasks)
		}
		req := DecideRequest{Tasks: make([]TaskSpec, hi-lo)}
		if cfg.Retries > 0 {
			// A stable per-request ID makes the retry idempotent: a repeat
			// after a timed-out-but-committed attempt replays the original.
			req.DecisionID = fmt.Sprintf("%s-%d-%06d", cfg.DecisionIDPrefix, cfg.From, rep.Requests)
		}
		for i, t := range tasks[lo:hi] {
			req.Tasks[i] = TaskSpec{
				ID:         fmt.Sprintf("t%d", t.ID),
				Type:       int(t.Type),
				Arrival:    t.Arrival,
				Deadline:   t.Deadline,
				ExecByType: t.ExecByType,
			}
		}
		if cfg.Speed > 0 {
			// Pace so the batch's first arrival lands on the scaled clock.
			due := start.Add(time.Duration(float64(tasks[lo].Arrival-tasks[0].Arrival) / cfg.Speed * float64(time.Millisecond)))
			if wait := time.Until(due); wait > 0 {
				select {
				case <-time.After(wait):
				case <-ctx.Done():
					return nil, ctx.Err()
				}
			}
		}
		t0 := time.Now()
		attemptsBefore := cl.Attempts()
		shedBefore := cl.Shed429()
		var resp DecideResponse
		if err := cl.PostJSON(ctx, baseURL+"/v1/decide", &req, &resp); err != nil {
			return nil, err
		}
		if cl.Attempts() > attemptsBefore+1 {
			rep.Retried++
		}
		lat := time.Since(t0)
		if shed := cl.Shed429() - shedBefore; shed > 0 {
			// The request crossed a degraded window: some attempts were shed
			// with 429 before one got through.
			rep.Shed429 += int(shed)
			rep.DegradedWindow += lat
		}
		lats = append(lats, lat)
		rep.Requests++
		seen := map[int]bool{}
		for _, d := range resp.Decisions {
			switch d.Action {
			case ActionMap:
				rep.Mapped++
			case ActionDefer:
				rep.Deferred++
			case ActionDrop:
				rep.Dropped++
			}
			if d.ID != "" {
				if acked[d.ID] {
					rep.DuplicateAcks++
				}
				acked[d.ID] = true
			}
			if !seen[d.Shard] {
				seen[d.Shard] = true
				shardLats[d.Shard] = append(shardLats[d.Shard], lat)
			}
		}
		rep.Decisions = append(rep.Decisions, resp.Decisions...)
	}

	// Trailing churn actions (scheduled at or past the end of the window)
	// fire before the drain so they still reach the journal.
	if err := fireChurn(int(^uint(0) >> 1)); err != nil {
		return nil, err
	}
	// Elapsed covers decision traffic only, so achieved tasks/s stays
	// comparable to the decide benchmarks; the drain below runs the whole
	// virtual system to completion and is not decision throughput.
	rep.Elapsed = time.Since(start)
	if cfg.Drain {
		var dr DrainResponse
		if err := cl.PostJSON(ctx, baseURL+"/v1/drain", nil, &dr); err != nil {
			return nil, err
		}
		rep.Final = dr.Result
	}
	sort.Slice(lats, func(i, j int) bool { return lats[i] < lats[j] })
	rep.LatencyP50 = percentile(lats, 0.50)
	rep.LatencyP99 = percentile(lats, 0.99)
	shardIDs := make([]int, 0, len(shardLats))
	for s := range shardLats {
		shardIDs = append(shardIDs, s)
	}
	sort.Ints(shardIDs)
	for _, s := range shardIDs {
		sl := shardLats[s]
		sort.Slice(sl, func(i, j int) bool { return sl[i] < sl[j] })
		rep.PerShard = append(rep.PerShard, ShardLatency{
			Shard:    s,
			Requests: len(sl),
			P50:      percentile(sl, 0.50),
			P99:      percentile(sl, 0.99),
		})
	}
	return rep, nil
}

// percentile reads the q-quantile from an ascending latency slice by
// linear interpolation between the bracketing order statistics (Hyndman &
// Fan type 7, the default of R and numpy). The earlier nearest-rank
// definition collapsed small samples onto single order statistics — at
// n < 100 every q > (n-1)/n reads the maximum and the median of two
// samples reads the faster one — biasing reported tails whichever way the
// truncation fell; interpolation converges smoothly from tiny replay runs
// up.
func percentile(sorted []time.Duration, q float64) time.Duration {
	n := len(sorted)
	switch {
	case n == 0:
		return 0
	case n == 1:
		return sorted[0]
	}
	r := q * float64(n-1)
	i := int(r)
	if i >= n-1 {
		return sorted[n-1]
	}
	if i < 0 {
		i = 0
	}
	frac := r - float64(i)
	return sorted[i] + time.Duration(frac*float64(sorted[i+1]-sorted[i])+0.5)
}

// Package service hosts the paper's dropper + mapper as a long-running
// online admission controller — the serving layer over the same machinery
// the offline simulator uses.
//
// # Concurrency model: per-shard single-writer loops behind a router
//
// The cluster's machines are partitioned into N shards (default 1). Each
// shard owns all mutable state for its machines — a shard-scoped open
// simulation engine, its machine queues, the completion-time calculus with
// its convolution workspace — inside ONE goroutine; HTTP handlers submit
// closures over the shard's channel and wait for the reply. A lock-free
// router front-end (internal/router) picks the shard for every arriving
// task by policy (round-robin, least-queue-mass, or power-of-two-choices
// over per-class robustness estimates), reading only atomics the shard
// loops publish. The single-writer core remains the unit of determinism:
//
//   - each calculus reuses a pmf.Workspace whose dense scratch array is
//     inherently single-threaded — sharding gives every loop its own;
//   - probabilistic pruning is shard-local by construction (a task's
//     completion-time PMF depends only on the queues of the machines it
//     may run on), so the paper's calculus inside a shard is exactly the
//     calculus on a smaller system;
//   - decisions within a shard are serialized in submission order, so for
//     a sequential client the decision sequence — routing included — is a
//     pure function of the request sequence, which lets the online
//     controller be validated against the offline cluster simulator.
//
// Decide throughput multiplies twice over: per-decision work shrinks with
// the shard's machine count (the mapper and dropper scan shard-local
// queues only), and on multi-core hosts the loops advance in parallel.
//
// # Memory model
//
// Each shard retains one small task record per decision so the drain
// Result can account for the full run exactly like an offline trial
// (including per-task utility and boundary exclusion). Live gauges are
// O(1) — each engine maintains its lifecycle census incrementally — but
// memory grows linearly with tasks served (~100 B/task). For multi-day
// deployments, drain and restart per epoch to bound the history a
// controller accounts for.
package service

import (
	"context"
	"errors"
	"fmt"
	"log/slog"
	"sync"
	"sync/atomic"
	"time"

	"github.com/hpcclab/taskdrop/internal/core"
	"github.com/hpcclab/taskdrop/internal/journal"
	"github.com/hpcclab/taskdrop/internal/mapping"
	"github.com/hpcclab/taskdrop/internal/pet"
	"github.com/hpcclab/taskdrop/internal/pmf"
	"github.com/hpcclab/taskdrop/internal/router"
	"github.com/hpcclab/taskdrop/internal/sim"
	"github.com/hpcclab/taskdrop/internal/telemetry"
	"github.com/hpcclab/taskdrop/internal/workload"
)

// ErrDraining is returned for work submitted after Drain has begun.
var ErrDraining = errors.New("service: controller is draining")

// Config assembles an admission controller. Profile, Mapper, Dropper and
// Router are registry specs — the same grammar as the CLI flags and the
// Scenario API (see internal/spec).
type Config struct {
	// Profile is the system profile spec (e.g. "spec", "video", "spec:seed=7").
	Profile string
	// Mapper is the mapping heuristic spec (default "PAM").
	Mapper string
	// Dropper is the dropping policy spec (default "heuristic").
	Dropper string
	// Shards partitions the machines into independent admission shards,
	// each with its own single-writer decision loop (default 1; must not
	// exceed the profile's machine count).
	Shards int
	// Router is the shard-routing policy spec: "rr", "mass",
	// "p2c[:seed=..]" or "hash[:seed=..]" (default "rr"; irrelevant with
	// one shard).
	Router string
	// Partition scopes the controller to one machine partition of the
	// profile, written "k/K": the matrix's machines are dealt round-robin
	// into K parts (sim.PartitionMachines) and this controller owns part k,
	// sub-sharding it per Shards. Empty (the default) owns the whole
	// matrix. K sibling processes with partitions 0/K..K-1/K cover the
	// matrix exactly once — the multi-process deployment behind cmd/hcrouter.
	Partition string
	// DedupWindow bounds the idempotent-decision window: how many
	// acknowledged responses the server retains, keyed by the request's
	// DecisionID, so a retried request replays its original decisions
	// byte-for-byte instead of re-admitting. 0 means DefaultDedupWindow;
	// negative disables deduplication (DecisionIDs are still journaled).
	DedupWindow int
	// QueueCap bounds each machine queue, including the running task
	// (default 6, the paper's setting).
	QueueCap int
	// Grace is the reactive-dropping grace window (approximate-computing
	// extension; default 0 = the paper's model).
	Grace pmf.Tick
	// DropOnArrival engages the proactive dropper on arrival events too
	// (see sim.Config.DropOnArrival).
	DropOnArrival bool
	// BoundaryExclusion excludes the first and last N tasks from the final
	// drain Result's measured metrics, split evenly across shards. The
	// service default is 0 (account for everything served); set 100 to
	// mirror the paper's offline runs.
	BoundaryExclusion int
	// Backlog bounds decide requests queued behind each shard's decision
	// loop before submitters block (default 256).
	Backlog int
	// JournalDir enables the event-sourced decision journal: every shard
	// appends its admission events to a per-shard WAL under this directory
	// and commits before acknowledging, so a crashed server recovers its
	// exact pre-crash state by replay. Empty disables journaling.
	JournalDir string
	// Fsync is the journal durability policy: "always" (fsync before every
	// ack), "interval" (background fsync every FsyncInterval; the default),
	// or "never" (flush to the OS only).
	Fsync string
	// FsyncInterval is the background fsync period under the "interval"
	// policy (default 100ms).
	FsyncInterval time.Duration
	// SnapshotEvery checkpoints a shard's full state after this many
	// records in the current WAL segment, bounding recovery replay
	// (default 5000). Negative checkpoints only at drain.
	SnapshotEvery int
	// TraceSample enables stage-timed decision tracing: every Nth decision
	// (by cluster-wide sequence number) is traced through route, mailbox
	// wait, calculus, dropper, journal and ack. 0 (the default) disables
	// tracing — the decide path then reads no clock and allocates nothing
	// for telemetry.
	TraceSample int
	// TraceRing bounds retained completed traces per shard (default
	// telemetry.DefaultRingSize).
	TraceRing int
	// RebalanceEvery enables the background rebalancer: every period the
	// controller compares per-shard queue mass and migrates one machine
	// worth of capacity from the most to the least loaded shard (remove
	// with queue handoff + add of the same type). 0 (the default) disables
	// rebalancing; it only acts with 2+ shards.
	RebalanceEvery time.Duration
	// RebalanceThreshold is the queue-mass ratio (max/min) that triggers a
	// migration (default 2; must be >= 1).
	RebalanceThreshold float64
	// Logger receives the controller's structured diagnostics (journal
	// recovery, drain). Defaults to a discard logger; the CLIs pass their
	// telemetry.NewLogger.
	Logger *slog.Logger
}

func (c Config) withDefaults() Config {
	if c.Profile == "" {
		c.Profile = "spec"
	}
	if c.Mapper == "" {
		c.Mapper = "PAM"
	}
	if c.Dropper == "" {
		c.Dropper = "heuristic"
	}
	if c.Shards == 0 {
		c.Shards = 1
	}
	if c.Router == "" {
		c.Router = "rr"
	}
	if c.QueueCap == 0 {
		c.QueueCap = 6
	}
	if c.Backlog == 0 {
		c.Backlog = 256
	}
	if c.Fsync == "" {
		c.Fsync = "interval"
	}
	if c.SnapshotEvery == 0 {
		c.SnapshotEvery = 5000
	}
	if c.RebalanceThreshold == 0 {
		c.RebalanceThreshold = 2
	}
	if c.Logger == nil {
		c.Logger = slog.New(slog.DiscardHandler)
	}
	return c
}

// Controller is the online admission service: a cluster of shard-scoped
// open engines, each keeping live queue state and incrementally-maintained
// completion-time PMFs behind its own single-writer decision loop, fronted
// by a lock-free shard router. It decides map/defer/drop for every
// arriving task.
type Controller struct {
	cfg     Config
	matrix  *pet.Matrix
	metrics *Metrics
	policy  router.Policy
	cl      *sim.Cluster
	shards  []*shard
	tel     *telemetry.Telemetry
	log     *slog.Logger

	// dedup retains acknowledged responses by decision ID for idempotent
	// retries; nil when Config.DedupWindow is negative. The HTTP layer
	// consults it (Decide itself stays dedup-free so embedded callers and
	// the alloc budget are untouched).
	dedup *DedupWindow

	// seq issues cluster-wide arrival sequence numbers at routing time.
	seq atomic.Int64

	// jmetrics aggregates journal observability; nil when journaling is
	// off (Config.JournalDir empty).
	jmetrics *journalMetrics

	// dir is the matrix-wide machine directory (names, types, shard
	// ownership), covering runtime-added machines past the matrix.
	dir *machineDir
	// memberOps counts membership operations by journal action
	// (MemberAdd/MemberRemove/MemberRevive).
	memberOps [3]atomic.Int64
	// rebalanceMoves counts machine migrations by the background
	// rebalancer; rebalStop (non-nil when enabled) stops its loop.
	rebalanceMoves atomic.Int64
	rebalStop      chan struct{}
	rebalOnce      sync.Once

	mu       sync.Mutex // guards draining flag and final result
	draining bool
	final    *sim.Result
	drained  chan struct{} // closed once every shard drained and results merged
}

// New resolves the specs, obtains the (cached) PET matrix, partitions the
// machines into shards and starts one decision loop per shard.
func New(cfg Config) (*Controller, error) {
	cfg = cfg.withDefaults()
	matrix, err := pet.CachedMatrix(cfg.Profile)
	if err != nil {
		return nil, err
	}
	policy, err := router.FromSpec(cfg.Router)
	if err != nil {
		return nil, err
	}
	owned, err := partitionSize(cfg.Partition, len(matrix.Machines()))
	if err != nil {
		return nil, err
	}
	if cfg.Shards < 1 || cfg.Shards > owned {
		return nil, fmt.Errorf("service: %d shards for %d machines, want 1..%d",
			cfg.Shards, owned, owned)
	}
	if cfg.QueueCap < 1 {
		return nil, fmt.Errorf("service: queue cap %d, want >= 1", cfg.QueueCap)
	}
	if cfg.Grace < 0 {
		return nil, fmt.Errorf("service: grace %d, want >= 0", cfg.Grace)
	}
	if cfg.BoundaryExclusion < 0 {
		return nil, fmt.Errorf("service: boundary exclusion %d, want >= 0", cfg.BoundaryExclusion)
	}
	if cfg.Backlog < 1 {
		return nil, fmt.Errorf("service: backlog %d, want >= 1", cfg.Backlog)
	}
	if cfg.TraceSample < 0 {
		return nil, fmt.Errorf("service: trace sample %d, want >= 0", cfg.TraceSample)
	}
	if cfg.TraceRing < 0 {
		return nil, fmt.Errorf("service: trace ring %d, want >= 0", cfg.TraceRing)
	}
	if cfg.RebalanceEvery < 0 {
		return nil, fmt.Errorf("service: rebalance period %v, want >= 0", cfg.RebalanceEvery)
	}
	if cfg.RebalanceThreshold < 1 {
		return nil, fmt.Errorf("service: rebalance threshold %g, want >= 1", cfg.RebalanceThreshold)
	}
	if cfg.JournalDir != "" {
		if _, err := journal.ParseSyncPolicy(cfg.Fsync); err != nil {
			return nil, err
		}
		if cfg.FsyncInterval < 0 {
			return nil, fmt.Errorf("service: fsync interval %v, want >= 0", cfg.FsyncInterval)
		}
	}
	simCfg := sim.Config{
		QueueCap:          cfg.QueueCap,
		BoundaryExclusion: cfg.BoundaryExclusion,
		DropOnArrival:     cfg.DropOnArrival,
		ReactiveGrace:     cfg.Grace,
	}
	tel := telemetry.New(cfg.Shards, cfg.TraceSample, cfg.TraceRing)
	// Each shard resolves its own mapper and dropper instances: shard loops
	// advance concurrently and must not share stateful components. The
	// dropper is wrapped with the shard's trace recorder so a sampled
	// decision attributes the verdict time to its dropper span (a pure
	// pass-through; verdicts are unchanged).
	cl, err := buildCluster(matrix, cfg.Partition, cfg.Shards, policy, func(s int) (sim.Mapper, core.Policy, error) {
		m, err := mapping.FromSpec(cfg.Mapper)
		if err != nil {
			return nil, nil, err
		}
		d, err := core.PolicyFromSpec(cfg.Dropper)
		if err != nil {
			return nil, nil, err
		}
		return m, telemetry.TimedPolicy{Inner: d, Rec: tel.Shard(s)}, nil
	}, simCfg)
	if err != nil {
		return nil, err
	}
	c := &Controller{
		cfg:     cfg,
		matrix:  matrix,
		metrics: newMetrics(),
		policy:  policy,
		cl:      cl,
		shards:  make([]*shard, cfg.Shards),
		tel:     tel,
		log:     cfg.Logger,
		drained: make(chan struct{}),
	}
	if cfg.DedupWindow >= 0 {
		c.dedup = NewDedupWindow(cfg.DedupWindow)
	}
	for s := 0; s < cfg.Shards; s++ {
		sh := &shard{
			id:        s,
			c:         c,
			eng:       cl.Shards()[s],
			view:      cl.View(s),
			global:    cl.GlobalMachines(s),
			metrics:   newMetrics(),
			rec:       tel.Shard(s),
			cmds:      make(chan func(), cfg.Backlog),
			loopDone:  make(chan struct{}),
			watermark: -1,
		}
		c.shards[s] = sh
	}
	c.dir = newMachineDir(matrix.Machines())
	for s, sh := range c.shards {
		for local, g := range sh.global {
			c.dir.claim(g, s, local)
		}
		sh.updateMembershipGauges()
	}
	// Recovery runs before the loops start: each shard restores its newest
	// checkpoint and replays its log tail single-threaded, then the writers
	// open (truncating any torn tail) and the loops take over.
	if cfg.JournalDir != "" {
		if err := c.initJournal(); err != nil {
			return nil, err
		}
	}
	for _, sh := range c.shards {
		go sh.loop()
	}
	if cfg.RebalanceEvery > 0 && len(c.shards) > 1 {
		c.rebalStop = make(chan struct{})
		go c.rebalanceLoop()
	}
	return c, nil
}

// parsePartition parses a "k/K" partition spec against the profile's
// machine count, returning the owned part index and the part count.
func parsePartition(s string, machines int) (k, total int, err error) {
	if _, err := fmt.Sscanf(s, "%d/%d", &k, &total); err != nil {
		return 0, 0, fmt.Errorf("service: partition %q, want \"k/K\" (e.g. \"0/2\")", s)
	}
	if total < 1 || total > machines {
		return 0, 0, fmt.Errorf("service: partition %q splits %d machines into %d parts, want 1..%d",
			s, machines, total, machines)
	}
	if k < 0 || k >= total {
		return 0, 0, fmt.Errorf("service: partition %q owns part %d, want 0..%d", s, k, total-1)
	}
	return k, total, nil
}

// partitionSize returns the machine count of the owned partition (the
// whole matrix when the spec is empty).
func partitionSize(s string, machines int) (int, error) {
	if s == "" {
		return machines, nil
	}
	k, total, err := parsePartition(s, machines)
	if err != nil {
		return 0, err
	}
	// Round-robin deal: part k gets one extra machine while k < machines%total.
	size := machines / total
	if k < machines%total {
		size++
	}
	return size, nil
}

// buildCluster constructs the controller's shard cluster — shared by New
// and the offline replayer so a journaled partition server replays over
// the exact same topology. An empty partition owns the whole matrix
// (bit-identical to the pre-partition construction); "k/K" takes part k
// of the matrix-wide round-robin deal and sub-shards it locally, with the
// failure seeds displaced per part so sibling processes never share a
// failure stream.
func buildCluster(matrix *pet.Matrix, partition string, shards int, pol router.Policy, build sim.ShardBuilder, simCfg sim.Config) (*sim.Cluster, error) {
	if partition == "" {
		return sim.NewCluster(matrix, shards, pol, build, simCfg)
	}
	k, total, err := parsePartition(partition, len(matrix.Machines()))
	if err != nil {
		return nil, err
	}
	parts, globals := sim.PartitionMachines(matrix, total)
	// 1009 (prime, far above any realistic shard count) spreads the
	// per-part seed bases so part k's shards and part k+1's never collide.
	return sim.NewClusterOver(matrix, parts[k], globals[k], shards, pol, build, simCfg, int64(k)*1009)
}

// Config returns the resolved configuration.
func (c *Controller) Config() Config { return c.cfg }

// Matrix returns the served system's PET matrix.
func (c *Controller) Matrix() *pet.Matrix { return c.matrix }

// Metrics returns the controller's aggregate operational counters.
func (c *Controller) Metrics() *Metrics { return c.metrics }

// NumShards returns the number of admission shards.
func (c *Controller) NumShards() int { return len(c.shards) }

// NumMachines returns the number of machines this controller owns — the
// whole matrix, or just its partition under Config.Partition.
func (c *Controller) NumMachines() int { return c.cl.NumMachines() }

// Decide routes one batch of arriving tasks across the shards and admits
// each through its shard's pipeline (reactive drop of expired tasks,
// proactive dropping policy, mapping heuristic), returning one decision
// per task in request order. Routing reads only lock-free shard views;
// per-shard sub-batches are processed by the shard loops concurrently.
// For a sequential client the whole sequence — routing included — is
// deterministic.
//
// A request whose ctx is cancelled while still queued is skipped — an
// errored Decide on a single shard leaves no state behind, so clients may
// safely retry. A cancellation racing the processing itself, or an error
// on one shard of a multi-shard batch, can commit a sub-batch the client
// never saw; resubmitting after such a race double-feeds.
func (c *Controller) Decide(ctx context.Context, req *DecideRequest) (*DecideResponse, error) {
	if req == nil || len(req.Tasks) == 0 {
		return nil, fmt.Errorf("service: empty decide request")
	}
	nt, nm := c.matrix.NumTaskTypes(), c.matrix.NumMachineTypes()
	for i := range req.Tasks {
		if err := req.Tasks[i].Validate(nt, nm); err != nil {
			c.metrics.rejected.Add(1)
			return nil, err
		}
	}
	c.mu.Lock()
	draining := c.draining
	c.mu.Unlock()
	if draining {
		return nil, ErrDraining
	}
	c.metrics.requests.Add(1)

	n := len(req.Tasks)
	base := c.seq.Add(int64(n)) - int64(n)
	seqs := make([]int64, n)
	for i := range seqs {
		seqs[i] = base + int64(i)
	}
	resp := &DecideResponse{Decisions: make([]Decision, n)}

	// Stage tracing: sampled requests get an Active trace whose origin is
	// taken once per batch (one clock read amortized over the sub-batches).
	// traces stays nil when sampling is off or no sequence hit the period —
	// the common path carries a nil slice and nothing else.
	var traces []*telemetry.Active
	if c.tel.Enabled() {
		origin := time.Now()
		for i := range seqs {
			if a := c.tel.Begin(seqs[i], origin); a != nil {
				if traces == nil {
					traces = make([]*telemetry.Active, n)
				}
				traces[i] = a
			}
		}
	}

	if len(c.shards) == 1 {
		now, err := c.shards[0].decide(ctx, req, resp, nil, seqs, traces)
		if err != nil {
			return nil, err
		}
		resp.Now = now
		return resp, nil
	}

	// Route every task up front (deterministic for a sequential client),
	// then fan the per-shard sub-batches out to their loops.
	byShard := make([][]int, len(c.shards))
	for i := range req.Tasks {
		t := &req.Tasks[i]
		s := c.cl.Route(pet.TaskType(t.Type), t.Arrival, t.Deadline)
		byShard[s] = append(byShard[s], i)
	}
	type result struct {
		now pmf.Tick
		err error
	}
	results := make([]result, len(c.shards))
	var wg sync.WaitGroup
	for s, idxs := range byShard {
		if len(idxs) == 0 {
			continue
		}
		wg.Add(1)
		go func(s int, idxs []int) {
			defer wg.Done()
			now, err := c.shards[s].decide(ctx, req, resp, idxs, seqs, traces)
			results[s] = result{now: now, err: err}
		}(s, idxs)
	}
	wg.Wait()
	for s := range results {
		if err := results[s].err; err != nil {
			return nil, err
		}
		if results[s].now > resp.Now {
			resp.Now = results[s].now
		}
	}
	return resp, nil
}

// makeTask converts a wire spec into an engine task, filling missing
// realized execution times with the PET cell means (rounded to ticks) so
// generic clients need not carry a trace. The id is the cluster-wide
// arrival sequence number.
func (c *Controller) makeTask(spec *TaskSpec, id int) *workload.Task {
	exec := spec.ExecByType
	if len(exec) == 0 {
		nm := c.matrix.NumMachineTypes()
		exec = make([]pmf.Tick, nm)
		for j := 0; j < nm; j++ {
			e := pmf.Tick(c.matrix.CellMean(pet.TaskType(spec.Type), pet.MachineType(j)) + 0.5)
			if e < 1 {
				e = 1
			}
			exec[j] = e
		}
	}
	return &workload.Task{
		ID:         id,
		Type:       pet.TaskType(spec.Type),
		Arrival:    spec.Arrival,
		Deadline:   spec.Deadline,
		ExecByType: exec,
	}
}

// Snapshot is a point-in-time view of the controller's live state, merged
// across shards: the most advanced shard clock, the summed lifecycle
// census, and per-machine queue depths in matrix-wide machine order.
type Snapshot struct {
	Now         pmf.Tick `json:"now"`
	Live        sim.Live `json:"live"`
	QueueDepths []int    `json:"queue_depths"`
}

// Stats snapshots the merged engine state through the shard loops. Once
// draining it fails fast with ErrDraining rather than queueing behind the
// (potentially long) drain commands — a metrics scrape must not stall on
// shutdown.
func (c *Controller) Stats(ctx context.Context) (Snapshot, error) {
	shards, err := c.ShardStats(ctx)
	if err != nil {
		return Snapshot{}, err
	}
	// Sized by the directory, not the matrix: runtime-added machines get
	// indexes past the matrix.
	snap := Snapshot{QueueDepths: make([]int, c.dir.size())}
	for _, ss := range shards {
		if ss.Now > snap.Now {
			snap.Now = ss.Now
		}
		snap.Live.Arrived += ss.Live.Arrived
		snap.Live.Batch += ss.Live.Batch
		snap.Live.Queued += ss.Live.Queued
		snap.Live.Running += ss.Live.Running
		snap.Live.OnTime += ss.Live.OnTime
		snap.Live.Late += ss.Live.Late
		snap.Live.DroppedReactive += ss.Live.DroppedReactive
		snap.Live.DroppedProactive += ss.Live.DroppedProactive
		snap.Live.Failed += ss.Live.Failed
		for local, depth := range ss.QueueDepths {
			g := ss.Machines[local]
			for g >= len(snap.QueueDepths) {
				// An add raced the directory read; grow to cover it.
				snap.QueueDepths = append(snap.QueueDepths, 0)
			}
			snap.QueueDepths[g] = depth
		}
	}
	return snap, nil
}

// ShardStats snapshots every shard: live census and clock through the
// shard's decision loop, plus the lock-free router view (queue mass, free
// slots, per-class robustness estimates) and the shard's decision
// counters. Fails fast with ErrDraining once a drain has begun.
func (c *Controller) ShardStats(ctx context.Context) ([]ShardSnapshot, error) {
	if c.Draining() {
		return nil, ErrDraining
	}
	// Fan out like Drain does: a scrape pays the slowest shard's loop
	// queue wait, not the sum across shards.
	out := make([]ShardSnapshot, len(c.shards))
	errs := make([]error, len(c.shards))
	var wg sync.WaitGroup
	for s, sh := range c.shards {
		wg.Add(1)
		go func(s int, sh *shard) {
			defer wg.Done()
			out[s], errs[s] = sh.snapshot(ctx)
		}(s, sh)
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			return nil, err
		}
	}
	return out, nil
}

// Drain gracefully shuts the controller down: new Decide calls are
// rejected immediately, every shard's virtual system runs its queued work
// to completion concurrently, and the merged trial Result (robustness,
// drops, cost) is returned. Draining is committed the moment Drain is
// first called: whatever happens to ctx afterwards, the drain commands are
// enqueued (in the background if need be) and run to completion, so a
// caller whose ctx expires still finds the result later through
// FinalResult or another Drain call — and concurrent waiters can rely on
// every loop terminating.
func (c *Controller) Drain(ctx context.Context) (*sim.Result, error) {
	c.mu.Lock()
	first := !c.draining
	c.draining = true
	c.mu.Unlock()

	if first {
		c.log.Info("drain initiated", "shards", len(c.shards))
		if c.rebalStop != nil {
			c.rebalOnce.Do(func() { close(c.rebalStop) })
		}
		// The sends are unbounded-blocking by design: each loop is consuming
		// its queue, so it always eventually accepts, and only this command
		// can stop it. Goroutines decouple the waits from ctx and drain the
		// shards concurrently.
		for _, sh := range c.shards {
			go func(sh *shard) { sh.cmds <- sh.drainCmd }(sh)
		}
		go func() {
			parts := make([]*sim.Result, len(c.shards))
			for s, sh := range c.shards {
				<-sh.loopDone // loop exit happens after drainCmd stored sh.final
				parts[s] = sh.final
			}
			merged := sim.MergeResults(parts, c.cl.NumMachines())
			c.mu.Lock()
			c.final = merged
			c.mu.Unlock()
			close(c.drained)
		}()
	}

	select {
	case <-c.drained:
		if final, ok := c.FinalResult(); ok {
			return final, nil
		}
		return nil, ErrDraining
	case <-ctx.Done():
		return nil, ctx.Err()
	}
}

// Draining reports whether Drain has been initiated.
func (c *Controller) Draining() bool {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.draining
}

// FinalResult returns the merged drain result once available.
func (c *Controller) FinalResult() (*sim.Result, bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.final, c.final != nil
}

// Close drains the controller with a timeout, for callers that only need
// teardown.
func (c *Controller) Close() error {
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	_, err := c.Drain(ctx)
	return err
}

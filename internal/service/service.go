// Package service hosts the paper's dropper + mapper as a long-running
// online admission controller — the serving layer over the same machinery
// the offline simulator uses.
//
// # Concurrency model: single-writer event loop
//
// All mutable state (the open simulation engine, its machine queues, the
// completion-time calculus with its convolution workspace) is owned by ONE
// goroutine; HTTP handlers submit closures over a channel and wait for the
// reply. This choice, rather than sharding or locking, is deliberate:
//
//   - the calculus reuses a pmf.Workspace whose dense scratch array is
//     inherently single-threaded — sharing it under a lock would serialize
//     anyway, and per-request workspaces would defeat its purpose;
//   - queue state is tiny (machines × queue-cap entries), so the loop's
//     critical path is microseconds of convolution, not contention;
//   - serializing decisions in request order makes the decision sequence a
//     pure function of the request sequence — the determinism guarantee
//     ("same spec, same trace, same seed ⇒ same decisions") that lets the
//     online controller be validated against the offline simulator.
//
// Scaling beyond one loop is a matter of running one Controller per
// machine-group shard behind a task-type router; the single-writer core
// stays the unit of determinism.
//
// # Memory model
//
// The controller retains one small task record per decision so the drain
// Result can account for the full run exactly like an offline trial
// (including per-task utility and boundary exclusion). Live gauges are
// O(1) — the engine maintains its lifecycle census incrementally — but
// memory grows linearly with tasks served (~100 B/task). For multi-day
// deployments, drain and restart per epoch (or shard by epoch) to bound
// the history a single controller accounts for.
package service

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"time"

	"github.com/hpcclab/taskdrop/internal/core"
	"github.com/hpcclab/taskdrop/internal/mapping"
	"github.com/hpcclab/taskdrop/internal/pet"
	"github.com/hpcclab/taskdrop/internal/pmf"
	"github.com/hpcclab/taskdrop/internal/sim"
	"github.com/hpcclab/taskdrop/internal/workload"
)

// ErrDraining is returned for work submitted after Drain has begun.
var ErrDraining = errors.New("service: controller is draining")

// Config assembles an admission controller. Profile, Mapper and Dropper
// are registry specs — the same grammar as the CLI flags and the Scenario
// API (see internal/spec).
type Config struct {
	// Profile is the system profile spec (e.g. "spec", "video", "spec:seed=7").
	Profile string
	// Mapper is the mapping heuristic spec (default "PAM").
	Mapper string
	// Dropper is the dropping policy spec (default "heuristic").
	Dropper string
	// QueueCap bounds each machine queue, including the running task
	// (default 6, the paper's setting).
	QueueCap int
	// Grace is the reactive-dropping grace window (approximate-computing
	// extension; default 0 = the paper's model).
	Grace pmf.Tick
	// DropOnArrival engages the proactive dropper on arrival events too
	// (see sim.Config.DropOnArrival).
	DropOnArrival bool
	// BoundaryExclusion excludes the first and last N tasks from the final
	// drain Result's measured metrics. The service default is 0 (account
	// for everything served); set 100 to mirror the paper's offline runs.
	BoundaryExclusion int
	// Backlog bounds decide requests queued behind the decision loop
	// before submitters block (default 256).
	Backlog int
}

func (c Config) withDefaults() Config {
	if c.Profile == "" {
		c.Profile = "spec"
	}
	if c.Mapper == "" {
		c.Mapper = "PAM"
	}
	if c.Dropper == "" {
		c.Dropper = "heuristic"
	}
	if c.QueueCap == 0 {
		c.QueueCap = 6
	}
	if c.Backlog == 0 {
		c.Backlog = 256
	}
	return c
}

// Controller is the online admission service: it keeps live per-machine
// queue state inside an open simulation engine, incrementally maintains
// completion-time PMFs through the engine's calculus (reusing its
// convolution workspace and tail-PMF caches), and decides map/defer/drop
// for every arriving task.
type Controller struct {
	cfg     Config
	matrix  *pet.Matrix
	metrics *Metrics

	cmds     chan func()
	loopDone chan struct{}

	mu       sync.Mutex // guards draining flag and final result
	draining bool
	final    *sim.Result

	// Loop-owned state: touched only by the goroutine running loop().
	eng     *sim.Engine
	seq     int
	stopped bool
}

// New resolves the specs, obtains the (cached) PET matrix, builds the open
// engine and starts the decision loop.
func New(cfg Config) (*Controller, error) {
	cfg = cfg.withDefaults()
	matrix, err := pet.CachedMatrix(cfg.Profile)
	if err != nil {
		return nil, err
	}
	mapper, err := mapping.FromSpec(cfg.Mapper)
	if err != nil {
		return nil, err
	}
	dropper, err := core.PolicyFromSpec(cfg.Dropper)
	if err != nil {
		return nil, err
	}
	if cfg.QueueCap < 1 {
		return nil, fmt.Errorf("service: queue cap %d, want >= 1", cfg.QueueCap)
	}
	if cfg.Grace < 0 {
		return nil, fmt.Errorf("service: grace %d, want >= 0", cfg.Grace)
	}
	if cfg.BoundaryExclusion < 0 {
		return nil, fmt.Errorf("service: boundary exclusion %d, want >= 0", cfg.BoundaryExclusion)
	}
	if cfg.Backlog < 1 {
		return nil, fmt.Errorf("service: backlog %d, want >= 1", cfg.Backlog)
	}
	simCfg := sim.Config{
		QueueCap:          cfg.QueueCap,
		BoundaryExclusion: cfg.BoundaryExclusion,
		DropOnArrival:     cfg.DropOnArrival,
		ReactiveGrace:     cfg.Grace,
	}
	c := &Controller{
		cfg:      cfg,
		matrix:   matrix,
		metrics:  newMetrics(),
		cmds:     make(chan func(), cfg.Backlog),
		loopDone: make(chan struct{}),
		eng:      sim.NewOpen(matrix, mapper, dropper, simCfg),
	}
	go c.loop()
	return c, nil
}

// Config returns the resolved configuration.
func (c *Controller) Config() Config { return c.cfg }

// Matrix returns the served system's PET matrix.
func (c *Controller) Matrix() *pet.Matrix { return c.matrix }

// Metrics returns the controller's operational counters.
func (c *Controller) Metrics() *Metrics { return c.metrics }

// loop is the single writer: it executes submitted closures in arrival
// order until the drain command flips stopped.
func (c *Controller) loop() {
	defer close(c.loopDone)
	for fn := range c.cmds {
		fn()
		if c.stopped {
			return
		}
	}
}

// do runs fn on the decision loop and waits for it to finish.
func (c *Controller) do(ctx context.Context, fn func()) error {
	done := make(chan struct{})
	wrapped := func() { defer close(done); fn() }
	select {
	case c.cmds <- wrapped:
	case <-c.loopDone:
		return ErrDraining
	case <-ctx.Done():
		return ctx.Err()
	}
	select {
	case <-done:
		return nil
	case <-c.loopDone:
		// The loop exited with wrapped still queued; it will never run.
		select {
		case <-done:
			return nil
		default:
			return ErrDraining
		}
	case <-ctx.Done():
		return ctx.Err()
	}
}

// Decide processes one batch of arriving tasks through the admission
// pipeline (reactive drop of expired tasks, proactive dropping policy,
// mapping heuristic) and returns one decision per task, in order.
// Decisions are serialized: for a fixed request sequence the decision
// sequence is deterministic.
//
// A request whose ctx is cancelled while still queued is skipped — an
// errored Decide leaves no state behind, so clients may safely retry.
// Only a cancellation racing the processing itself can commit a batch
// the client never saw; resubmitting after such a race double-feeds.
func (c *Controller) Decide(ctx context.Context, req *DecideRequest) (*DecideResponse, error) {
	if req == nil || len(req.Tasks) == 0 {
		return nil, fmt.Errorf("service: empty decide request")
	}
	nt, nm := c.matrix.NumTaskTypes(), c.matrix.NumMachineTypes()
	for i := range req.Tasks {
		if err := req.Tasks[i].Validate(nt, nm); err != nil {
			c.metrics.rejected.Add(1)
			return nil, err
		}
	}
	c.mu.Lock()
	draining := c.draining
	c.mu.Unlock()
	if draining {
		return nil, ErrDraining
	}
	var resp *DecideResponse
	err := c.do(ctx, func() {
		if c.stopped || ctx.Err() != nil {
			// Drained, or the submitter already gave up: leave the engine
			// untouched so the failed request has no effect.
			return
		}
		resp = c.decideLocked(req)
	})
	if err != nil {
		return nil, err
	}
	if resp == nil {
		// The closure skipped: either the submitter's ctx was cancelled as
		// it ran (a client problem, not a server state) or the controller
		// drained underneath it.
		if err := ctx.Err(); err != nil {
			return nil, err
		}
		return nil, ErrDraining
	}
	return resp, nil
}

// decideLocked runs on the decision loop.
func (c *Controller) decideLocked(req *DecideRequest) *DecideResponse {
	c.metrics.requests.Add(1)
	machines := c.matrix.Machines()
	out := &DecideResponse{Decisions: make([]Decision, len(req.Tasks))}
	for i := range req.Tasks {
		spec := &req.Tasks[i]
		ts := c.eng.Feed(c.makeTask(spec))
		d := Decision{ID: spec.ID, Seq: c.seq, Machine: -1}
		c.seq++
		switch st := ts.Status; {
		case st == sim.StatusQueued || st == sim.StatusRunning:
			d.Action = ActionMap
			d.Machine = ts.Machine
			d.MachineName = machines[ts.Machine].Name
		case st == sim.StatusBatch:
			d.Action = ActionDefer
		default:
			d.Action = ActionDrop
		}
		c.metrics.countDecision(d.Action)
		out.Decisions[i] = d
	}
	out.Now = c.eng.Now()
	return out
}

// makeTask converts a wire spec into an engine task, filling missing
// realized execution times with the PET cell means (rounded to ticks) so
// generic clients need not carry a trace.
func (c *Controller) makeTask(spec *TaskSpec) *workload.Task {
	exec := spec.ExecByType
	if len(exec) == 0 {
		nm := c.matrix.NumMachineTypes()
		exec = make([]pmf.Tick, nm)
		for j := 0; j < nm; j++ {
			e := pmf.Tick(c.matrix.CellMean(pet.TaskType(spec.Type), pet.MachineType(j)) + 0.5)
			if e < 1 {
				e = 1
			}
			exec[j] = e
		}
	}
	return &workload.Task{
		ID:         c.seq,
		Type:       pet.TaskType(spec.Type),
		Arrival:    spec.Arrival,
		Deadline:   spec.Deadline,
		ExecByType: exec,
	}
}

// Snapshot is a point-in-time view of the controller's live state.
type Snapshot struct {
	Now         pmf.Tick `json:"now"`
	Live        sim.Live `json:"live"`
	QueueDepths []int    `json:"queue_depths"`
}

// Stats snapshots the engine state through the decision loop. Once
// draining it fails fast with ErrDraining rather than queueing behind the
// (potentially long) drain command — a metrics scrape must not stall on
// shutdown.
func (c *Controller) Stats(ctx context.Context) (Snapshot, error) {
	if c.Draining() {
		return Snapshot{}, ErrDraining
	}
	var snap Snapshot
	ok := false
	err := c.do(ctx, func() {
		if c.stopped {
			return
		}
		snap = Snapshot{Now: c.eng.Now(), Live: c.eng.LiveCounts(), QueueDepths: c.eng.QueueDepths()}
		ok = true
	})
	if err != nil {
		return Snapshot{}, err
	}
	if !ok {
		return Snapshot{}, ErrDraining
	}
	return snap, nil
}

// Drain gracefully shuts the controller down: new Decide calls are
// rejected immediately, the virtual system runs its queued work to
// completion, and the final trial Result (robustness, drops, cost) is
// returned. Draining is committed the moment Drain is first called:
// whatever happens to ctx afterwards, the drain command is enqueued (in
// the background if need be) and runs to completion, so a caller whose
// ctx expires still finds the result later through FinalResult or another
// Drain call — and concurrent waiters can rely on the loop terminating.
func (c *Controller) Drain(ctx context.Context) (*sim.Result, error) {
	c.mu.Lock()
	first := !c.draining
	c.draining = true
	c.mu.Unlock()

	if first {
		// The send is unbounded-blocking by design: the loop is consuming
		// the queue, so it always eventually accepts, and only this command
		// can stop it. The goroutine decouples that wait from ctx.
		drainCmd := func() {
			res := c.eng.Drain()
			c.mu.Lock()
			c.final = res
			c.mu.Unlock()
			c.stopped = true
		}
		go func() { c.cmds <- drainCmd }()
	}

	// drainCmd stores the result before the loop exits, so once loopDone
	// closes the result is ready.
	select {
	case <-c.loopDone:
		if final, ok := c.FinalResult(); ok {
			return final, nil
		}
		return nil, ErrDraining
	case <-ctx.Done():
		return nil, ctx.Err()
	}
}

// Draining reports whether Drain has been initiated.
func (c *Controller) Draining() bool {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.draining
}

// FinalResult returns the drain result once available.
func (c *Controller) FinalResult() (*sim.Result, bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.final, c.final != nil
}

// Close drains the controller with a timeout, for callers that only need
// teardown.
func (c *Controller) Close() error {
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	_, err := c.Drain(ctx)
	return err
}

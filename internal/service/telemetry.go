package service

import (
	"fmt"
	"io"
	"time"

	"github.com/hpcclab/taskdrop/internal/core"
	"github.com/hpcclab/taskdrop/internal/telemetry"
)

// Stage-trace plumbing between the controller and internal/telemetry.
//
// traces is always a full-length slice indexed by request slot (nil when
// nothing in the batch is sampled), so the shard helpers below walk the
// same idxs selection decide() uses and skip unsampled slots. All of this
// runs only on the sampled path — the unsampled path carries a nil slice
// through one pointer check.

// traceAt returns request slot i's in-flight trace, nil-safe.
func traceAt(traces []*telemetry.Active, i int) *telemetry.Active {
	if traces == nil {
		return nil
	}
	return traces[i]
}

// eachTrace applies fn to every sampled trace of the sub-batch selected
// by idxs (nil = the first n request slots, the single-shard fast path).
func eachTrace(traces []*telemetry.Active, idxs []int, n int, fn func(*telemetry.Active)) {
	if idxs == nil {
		for i := 0; i < n; i++ {
			if a := traces[i]; a != nil {
				fn(a)
			}
		}
		return
	}
	for _, i := range idxs {
		if a := traces[i]; a != nil {
			fn(a)
		}
	}
}

// markRoute closes the route span of every sampled trace in the
// sub-batch: trace origin (request receipt) to shard-loop submission.
func markRoute(traces []*telemetry.Active, idxs []int, n int, end time.Time) {
	eachTrace(traces, idxs, n, func(a *telemetry.Active) {
		a.Mark(telemetry.StageRoute, a.Origin(), end)
	})
}

// markSpans records stage st as [start, end) on every sampled trace of
// the sub-batch.
func markSpans(traces []*telemetry.Active, idxs []int, n int, st telemetry.Stage, start, end time.Time) {
	eachTrace(traces, idxs, n, func(a *telemetry.Active) { a.Mark(st, start, end) })
}

// extendSpans widens stage st by [start, end) on every sampled trace of
// the sub-batch (the journal span accumulates appends and the commit).
func extendSpans(traces []*telemetry.Active, idxs []int, n int, st telemetry.Stage, start, end time.Time) {
	eachTrace(traces, idxs, n, func(a *telemetry.Active) { a.Extend(st, start, end) })
}

// finishTraces seals the sub-batch's sampled traces after the commit:
// marks the ack span, publishes each into the shard's ring and appends
// its journal trace record. Runs on the decision loop.
func (sh *shard) finishTraces(resp *DecideResponse, idxs []int, n int, traces []*telemetry.Active) {
	ackStart := time.Now()
	finish := func(i int) {
		a := traceAt(traces, i)
		if a == nil {
			return
		}
		a.Mark(telemetry.StageAck, ackStart, time.Now())
		tr := sh.rec.Finish(a, sh.id, string(resp.Decisions[i].Action))
		if sh.jw != nil {
			sh.journalTrace(tr)
		}
	}
	if idxs == nil {
		for i := 0; i < n; i++ {
			finish(i)
		}
		return
	}
	for _, i := range idxs {
		finish(i)
	}
}

// TraceSnapshot is the GET /debug/traces payload: the sampling period and
// the retained completed traces, newest decision first.
type TraceSnapshot struct {
	SampleEvery int                `json:"sample_every"`
	Traces      []*telemetry.Trace `json:"traces"`
}

// Telemetry returns the controller's tracer.
func (c *Controller) Telemetry() *telemetry.Telemetry { return c.tel }

// Traces snapshots the retained stage-timed traces across all shards.
// Lock-free: reads the per-shard rings only.
func (c *Controller) Traces() TraceSnapshot {
	return TraceSnapshot{SampleEvery: c.tel.SampleEvery(), Traces: c.tel.Traces()}
}

// writeCalcMetrics renders the completion-time calculus' introspection
// series, aggregated across the shard calculi (chain-trie effectiveness,
// impulse-width distribution) plus the per-shard arena high-water gauge.
// Reads only atomics — never goes through a decision loop.
func writeCalcMetrics(w io.Writer, c *Controller) {
	var agg core.CalcStats
	shardHW := make([]int64, len(c.shards))
	for s, sh := range c.shards {
		st := sh.eng.Calc().Stats()
		agg.ChainHits += st.ChainHits
		agg.ChainMisses += st.ChainMisses
		agg.RootHits += st.RootHits
		agg.RootMisses += st.RootMisses
		agg.InvalidationsEvent += st.InvalidationsEvent
		agg.InvalidationsChurn += st.InvalidationsChurn
		agg.InvalidationsOverflow += st.InvalidationsOverflow
		agg.PinnedBytes += st.PinnedBytes
		agg.WidthSum += st.WidthSum
		for i := range st.Widths {
			agg.Widths[i] += st.Widths[i]
		}
		shardHW[s] = st.ArenaHighWaterBytes
	}
	p := func(format string, args ...any) { fmt.Fprintf(w, format, args...) }
	p("# HELP taskdrop_chain_cache_hits_total Eq. 1 chain evaluations served from the shared-prefix trie, by node kind.\n")
	p("# TYPE taskdrop_chain_cache_hits_total counter\n")
	p("taskdrop_chain_cache_hits_total{kind=\"edge\"} %d\n", agg.ChainHits)
	p("taskdrop_chain_cache_hits_total{kind=\"root\"} %d\n", agg.RootHits)
	p("# HELP taskdrop_chain_cache_misses_total Eq. 1 chain evaluations freshly convolved, by node kind.\n")
	p("# TYPE taskdrop_chain_cache_misses_total counter\n")
	p("taskdrop_chain_cache_misses_total{kind=\"edge\"} %d\n", agg.ChainMisses)
	p("taskdrop_chain_cache_misses_total{kind=\"root\"} %d\n", agg.RootMisses)
	p("# HELP taskdrop_chain_invalidations_total Persistent per-machine chain-cache resets, by reason: event = root signature drift, churn = membership change or snapshot restore, overflow = pinned-arena budget exceeded.\n")
	p("# TYPE taskdrop_chain_invalidations_total counter\n")
	p("taskdrop_chain_invalidations_total{reason=\"event\"} %d\n", agg.InvalidationsEvent)
	p("taskdrop_chain_invalidations_total{reason=\"churn\"} %d\n", agg.InvalidationsChurn)
	p("taskdrop_chain_invalidations_total{reason=\"overflow\"} %d\n", agg.InvalidationsOverflow)
	p("# HELP taskdrop_chain_pinned_bytes Impulse storage currently pinned across all persistent chain caches.\n")
	p("# TYPE taskdrop_chain_pinned_bytes gauge\n")
	p("taskdrop_chain_pinned_bytes %d\n", agg.PinnedBytes)
	p("# HELP taskdrop_arena_high_water_bytes Peak committed impulse-arena footprint per shard calculus.\n")
	p("# TYPE taskdrop_arena_high_water_bytes gauge\n")
	for s, hw := range shardHW {
		p("taskdrop_arena_high_water_bytes{shard=\"%d\"} %d\n", s, hw)
	}
	p("# HELP taskdrop_pmf_impulse_width Impulse count of freshly computed Eq. 1 completion PMFs (post-compaction).\n")
	p("# TYPE taskdrop_pmf_impulse_width histogram\n")
	var cum uint64
	for i := 0; i < core.NumWidthBuckets; i++ {
		cum += agg.Widths[i]
		if b := core.WidthBucketBound(i); b >= 0 {
			p("taskdrop_pmf_impulse_width_bucket{le=\"%d\"} %d\n", b, cum)
		} else {
			p("taskdrop_pmf_impulse_width_bucket{le=\"+Inf\"} %d\n", cum)
		}
	}
	p("taskdrop_pmf_impulse_width_sum %d\n", agg.WidthSum)
	p("taskdrop_pmf_impulse_width_count %d\n", cum)
}

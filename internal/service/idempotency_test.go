package service

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"testing"
)

// postDecide POSTs one decide request and returns the raw response bytes.
func postDecide(t testing.TB, srv *httptest.Server, req *DecideRequest) (int, []byte) {
	t.Helper()
	body, err := json.Marshal(req)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := srv.Client().Post(srv.URL+"/v1/decide", "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	data, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	return resp.StatusCode, data
}

// TestHTTPIdempotentDecisionIDs is the PR's acceptance criterion at the
// single-server level: a repeated decide request with the same DecisionID
// must return the byte-identical original response and must not advance
// the engine.
func TestHTTPIdempotentDecisionIDs(t *testing.T) {
	tr := testTrace(t, 64, 11)
	_, srv := newTestServer(t)

	var responses [][]byte
	for lo := 0; lo < 32; lo += 8 {
		req := DecideRequest{DecisionID: fmt.Sprintf("idem-%d", lo/8), Tasks: make([]TaskSpec, 8)}
		for i, task := range tr.Tasks[lo : lo+8] {
			req.Tasks[i] = TaskSpec{ID: fmt.Sprintf("t%d", task.ID), Type: int(task.Type),
				Arrival: task.Arrival, Deadline: task.Deadline, ExecByType: task.ExecByType}
		}
		code, first := postDecide(t, srv, &req)
		if code != http.StatusOK {
			t.Fatalf("decide %d: HTTP %d: %s", lo/8, code, first)
		}
		responses = append(responses, first)

		// Retry the identical request twice: byte-identical both times.
		for retry := 0; retry < 2; retry++ {
			code, again := postDecide(t, srv, &req)
			if code != http.StatusOK {
				t.Fatalf("duplicate decide %d retry %d: HTTP %d: %s", lo/8, retry, code, again)
			}
			if !bytes.Equal(again, first) {
				t.Fatalf("duplicate decide %d retry %d not byte-identical:\nfirst %s\nretry %s", lo/8, retry, first, again)
			}
		}
	}

	// A duplicate with a different task count is a protocol violation.
	bad := DecideRequest{DecisionID: "idem-0", Tasks: make([]TaskSpec, 3)}
	for i, task := range tr.Tasks[:3] {
		bad.Tasks[i] = TaskSpec{Type: int(task.Type), Arrival: task.Arrival, Deadline: task.Deadline, ExecByType: task.ExecByType}
	}
	if code, body := postDecide(t, srv, &bad); code != http.StatusConflict {
		t.Fatalf("count-mismatched duplicate: HTTP %d (want 409): %s", code, body)
	}

	// The duplicates must not have advanced the engine: the next fresh
	// batch continues the sequence exactly where the originals left it.
	req := DecideRequest{Tasks: make([]TaskSpec, 1)}
	task := tr.Tasks[32]
	req.Tasks[0] = TaskSpec{Type: int(task.Type), Arrival: task.Arrival, Deadline: task.Deadline, ExecByType: task.ExecByType}
	code, data := postDecide(t, srv, &req)
	if code != http.StatusOK {
		t.Fatalf("follow-up decide: HTTP %d", code)
	}
	var out DecideResponse
	if err := json.Unmarshal(data, &out); err != nil {
		t.Fatal(err)
	}
	if out.Decisions[0].Seq != 32 {
		t.Fatalf("follow-up seq = %d, want 32 — duplicates advanced the engine", out.Decisions[0].Seq)
	}
}

// TestJournalReseedsDedupAfterCrash proves idempotency survives a process
// crash: decision IDs acknowledged before a kill -9 are re-seeded from the
// journal on recovery, and a post-restart retry returns the byte-identical
// pre-crash response.
func TestJournalReseedsDedupAfterCrash(t *testing.T) {
	tr := testTrace(t, 80, 13)
	cfg := Config{
		Profile: "video", Mapper: "PAM", Dropper: "heuristic", Shards: 2, Router: "rr",
		JournalDir: t.TempDir(), Fsync: "never", SnapshotEvery: -1,
	}
	c1, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	srv1 := httptest.NewServer(NewHandler(c1))

	originals := map[string][]byte{}
	for lo := 0; lo < 40; lo += 10 {
		id := fmt.Sprintf("crash-idem-%d", lo/10)
		req := DecideRequest{DecisionID: id, Tasks: make([]TaskSpec, 10)}
		for i, task := range tr.Tasks[lo : lo+10] {
			req.Tasks[i] = TaskSpec{ID: fmt.Sprintf("t%d", task.ID), Type: int(task.Type),
				Arrival: task.Arrival, Deadline: task.Deadline, ExecByType: task.ExecByType}
		}
		code, data := postDecide(t, srv1, &req)
		if code != http.StatusOK {
			t.Fatalf("decide %s: HTTP %d: %s", id, code, data)
		}
		originals[id] = data
	}
	srv1.Close()
	crash(c1)

	c2, err := New(cfg)
	if err != nil {
		t.Fatalf("recovery: %v", err)
	}
	srv2 := httptest.NewServer(NewHandler(c2))
	defer srv2.Close()

	for lo := 0; lo < 40; lo += 10 {
		id := fmt.Sprintf("crash-idem-%d", lo/10)
		req := DecideRequest{DecisionID: id, Tasks: make([]TaskSpec, 10)}
		for i, task := range tr.Tasks[lo : lo+10] {
			req.Tasks[i] = TaskSpec{ID: fmt.Sprintf("t%d", task.ID), Type: int(task.Type),
				Arrival: task.Arrival, Deadline: task.Deadline, ExecByType: task.ExecByType}
		}
		code, data := postDecide(t, srv2, &req)
		if code != http.StatusOK {
			t.Fatalf("post-crash retry %s: HTTP %d: %s", id, code, data)
		}
		if !bytes.Equal(data, originals[id]) {
			t.Fatalf("post-crash retry %s not byte-identical:\n pre %s\npost %s", id, originals[id], data)
		}
	}

	// Fresh work continues normally after the reseeded window.
	tail := decideRange(t, c2, tr, 40, len(tr.Tasks), 8)
	if tail[0].Seq != 40 {
		t.Fatalf("post-recovery seq = %d, want 40", tail[0].Seq)
	}
}

// TestPartitionedControllersCoverMatrix builds two controllers over the
// halves of the video matrix and checks the ownership arithmetic the
// multi-process deployment relies on.
func TestPartitionedControllersCoverMatrix(t *testing.T) {
	var owned int
	var total int
	for k := 0; k < 2; k++ {
		c, err := New(Config{
			Profile: "video", Mapper: "PAM", Dropper: "heuristic",
			Partition: fmt.Sprintf("%d/2", k), Shards: 2, Router: "rr",
		})
		if err != nil {
			t.Fatal(err)
		}
		total = len(c.Matrix().Machines())
		if c.NumMachines() >= total {
			t.Fatalf("partition %d/2 owns the whole matrix (%d machines)", k, c.NumMachines())
		}
		owned += c.NumMachines()
	}
	if owned != total {
		t.Fatalf("partitions own %d machines, matrix has %d", owned, total)
	}

	for _, bad := range []string{"2/2", "-1/2", "0/0", "x/2", "0/", "1"} {
		if _, err := New(Config{Profile: "video", Mapper: "PAM", Dropper: "heuristic", Partition: bad}); err == nil {
			t.Errorf("partition %q accepted", bad)
		}
	}
}

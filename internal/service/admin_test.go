package service

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"net/http"
	"reflect"
	"strings"
	"testing"
)

// admin applies one membership operation and fails the test on error.
func admin(t testing.TB, c *Controller, req AdminMachineRequest) *AdminMachineResponse {
	t.Helper()
	resp, err := c.Admin(context.Background(), &req)
	if err != nil {
		t.Fatalf("admin %+v: %v", req, err)
	}
	return resp
}

// TestAdminMembershipLifecycle drives the controller through the full
// remove → degraded shed → revive → recover cycle, plus the add path and
// the conflict/validation surface.
func TestAdminMembershipLifecycle(t *testing.T) {
	c := newTestController(t)
	tr := testTrace(t, 60, 21)
	decideRange(t, c, tr, 0, 20, 5)

	nm := len(c.matrix.Machines())
	// Remove every machine: the shard degrades to zero live capacity.
	for m := 0; m < nm; m++ {
		resp := admin(t, c, AdminMachineRequest{Op: AdminOpRemove, Machine: m, Handoff: true})
		if resp.LiveMachines != nm-1-m {
			t.Fatalf("live after removing %d machines = %d, want %d", m+1, resp.LiveMachines, nm-1-m)
		}
	}
	// Removing twice is a state conflict, not a malformed request.
	if _, err := c.Admin(context.Background(), &AdminMachineRequest{Op: AdminOpRemove, Machine: 0}); !errors.Is(err, errAdminConflict) {
		t.Fatalf("double remove: %v, want errAdminConflict", err)
	}

	// A degraded shard sheds decides with ErrShardDegraded.
	req := DecideRequest{Tasks: []TaskSpec{{
		Type: int(tr.Tasks[20].Type), Arrival: tr.Tasks[20].Arrival,
		Deadline: tr.Tasks[20].Deadline, ExecByType: tr.Tasks[20].ExecByType,
	}}}
	if _, err := c.Decide(context.Background(), &req); !errors.Is(err, ErrShardDegraded) {
		t.Fatalf("decide on degraded shard: %v, want ErrShardDegraded", err)
	}

	// Revive one machine: capacity is back and decides flow again.
	if resp := admin(t, c, AdminMachineRequest{Op: AdminOpRevive, Machine: 3}); resp.LiveMachines != 1 {
		t.Fatalf("live after revive = %d, want 1", resp.LiveMachines)
	}
	if _, err := c.Decide(context.Background(), &req); err != nil {
		t.Fatalf("decide after revive: %v", err)
	}

	// Add a machine of an existing type: fresh global index past the matrix.
	resp := admin(t, c, AdminMachineRequest{Op: AdminOpAdd, Shard: 0, Type: 1})
	if resp.Machine != nm {
		t.Fatalf("added machine global index = %d, want %d", resp.Machine, nm)
	}
	if resp.MachineName == "" || resp.LiveMachines != 2 {
		t.Fatalf("add response %+v, want a name and 2 live machines", resp)
	}
	// The added machine is addressable for removal by its new index.
	if got := admin(t, c, AdminMachineRequest{Op: AdminOpRemove, Machine: nm, Handoff: true}); got.LiveMachines != 1 {
		t.Fatalf("live after removing added machine = %d, want 1", got.LiveMachines)
	}

	// Validation surface: unknown ops, out-of-range targets.
	for _, bad := range []AdminMachineRequest{
		{Op: "explode"},
		{Op: AdminOpRemove, Machine: 999},
		{Op: AdminOpAdd, Shard: 9, Type: 0},
		{Op: AdminOpAdd, Shard: 0, Type: 99},
	} {
		if _, err := c.Admin(context.Background(), &bad); err == nil {
			t.Errorf("admin accepted %+v", bad)
		}
	}
	if _, err := c.Drain(context.Background()); err != nil {
		t.Fatal(err)
	}
}

// TestAdminHTTP exercises the wire surface: 200 on success, 429 +
// Retry-After on a degraded-shard decide, 409 on conflicts, 400 on junk.
func TestAdminHTTP(t *testing.T) {
	c, srv := newTestServer(t)
	nm := len(c.matrix.Machines())

	post := func(body any) (*http.Response, []byte) {
		t.Helper()
		b, err := json.Marshal(body)
		if err != nil {
			t.Fatal(err)
		}
		resp, err := http.Post(srv.URL+"/v1/admin/machines", "application/json", bytes.NewReader(b))
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		var buf bytes.Buffer
		if _, err := buf.ReadFrom(resp.Body); err != nil {
			t.Fatal(err)
		}
		return resp, buf.Bytes()
	}

	for m := 0; m < nm; m++ {
		resp, body := post(AdminMachineRequest{Op: AdminOpRemove, Machine: m, Handoff: true})
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("remove machine %d: %d %s", m, resp.StatusCode, body)
		}
		var ar AdminMachineResponse
		if err := json.Unmarshal(body, &ar); err != nil {
			t.Fatal(err)
		}
		if ar.Op != AdminOpRemove || ar.Machine != m {
			t.Fatalf("admin response %+v", ar)
		}
	}

	// Degraded decide sheds 429 with a Retry-After hint.
	dreq, _ := json.Marshal(DecideRequest{Tasks: []TaskSpec{{Type: 0, Arrival: 1, Deadline: 500}}})
	dresp, err := http.Post(srv.URL+"/v1/decide", "application/json", bytes.NewReader(dreq))
	if err != nil {
		t.Fatal(err)
	}
	dresp.Body.Close()
	if dresp.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("degraded decide status = %d, want 429", dresp.StatusCode)
	}
	if dresp.Header.Get("Retry-After") == "" {
		t.Fatal("degraded decide missing Retry-After")
	}

	// Conflict → 409; junk body → 400; unknown field → 400.
	if resp, _ := post(AdminMachineRequest{Op: AdminOpRevive, Machine: 0}); resp.StatusCode != http.StatusOK {
		t.Fatalf("revive status = %d", resp.StatusCode)
	}
	if resp, _ := post(AdminMachineRequest{Op: AdminOpRevive, Machine: 0}); resp.StatusCode != http.StatusConflict {
		t.Fatalf("double revive status = %d, want 409", resp.StatusCode)
	}
	junk, err := http.Post(srv.URL+"/v1/admin/machines", "application/json", strings.NewReader(`{"op":`))
	if err != nil {
		t.Fatal(err)
	}
	junk.Body.Close()
	if junk.StatusCode != http.StatusBadRequest {
		t.Fatalf("junk body status = %d, want 400", junk.StatusCode)
	}

	// The metrics page exports the membership families.
	mresp, err := http.Get(srv.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	var mbuf bytes.Buffer
	if _, err := mbuf.ReadFrom(mresp.Body); err != nil {
		t.Fatal(err)
	}
	mresp.Body.Close()
	for _, family := range []string{
		"taskdrop_membership_live_machines",
		"taskdrop_membership_removed_machines",
		"taskdrop_membership_ops_total",
		"taskdrop_membership_shed_total",
		"taskdrop_membership_degraded",
	} {
		if !strings.Contains(mbuf.String(), family) {
			t.Errorf("metrics page missing %s", family)
		}
	}
}

// TestJournalCrashRecoveryWithMembership extends the crash-recovery
// tentpole across churn: membership operations mid-trace are journaled
// inputs, so a killed server recovers its post-churn machine set and the
// decision stream re-derives identically to an uninterrupted reference
// that saw the same operations.
func TestJournalCrashRecoveryWithMembership(t *testing.T) {
	tr := testTrace(t, 400, 23)
	jcfg := Config{
		Profile: "video", Mapper: "PAM", Dropper: "heuristic",
		Shards: 2, Router: "rr",
		JournalDir: t.TempDir(), Fsync: "never", SnapshotEvery: 60,
	}
	rcfg := jcfg
	rcfg.JournalDir = ""

	ref, err := New(rcfg)
	if err != nil {
		t.Fatal(err)
	}
	jc, err := New(jcfg)
	if err != nil {
		t.Fatal(err)
	}

	// churn applies the same operation to both controllers.
	churn := func(req AdminMachineRequest) {
		t.Helper()
		admin(t, ref, req)
		admin(t, jc, req)
	}

	const cut = 250
	wantHead := decideRange(t, ref, tr, 0, 100, 8)
	gotHead := decideRange(t, jc, tr, 0, 100, 8)
	if !reflect.DeepEqual(gotHead, wantHead) {
		t.Fatal("journaled controller diverged before any churn")
	}

	churn(AdminMachineRequest{Op: AdminOpRemove, Machine: 2, Handoff: true})
	churn(AdminMachineRequest{Op: AdminOpRemove, Machine: 5})
	churn(AdminMachineRequest{Op: AdminOpAdd, Shard: 1, Type: 0})
	wantHead = decideRange(t, ref, tr, 100, cut, 8)
	gotHead = decideRange(t, jc, tr, 100, cut, 8)
	if !reflect.DeepEqual(gotHead, wantHead) {
		t.Fatal("journaled controller diverged after churn")
	}
	churn(AdminMachineRequest{Op: AdminOpRevive, Machine: 2})

	pre, err := jc.ShardStats(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	crash(jc)

	jc2, err := New(jcfg)
	if err != nil {
		t.Fatalf("recovery across membership ops: %v", err)
	}
	post, err := jc2.ShardStats(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(post, pre) {
		t.Fatalf("recovered shard stats diverged:\n pre %+v\npost %+v", pre, post)
	}
	for _, ss := range post {
		if ss.LiveMachines == 0 {
			t.Fatalf("shard %d recovered with no live machines: %+v", ss.Shard, ss)
		}
	}

	// The recovered controller continues the stream exactly — the removed
	// machine stays removed, the added machine keeps its place, and the
	// revived machine is schedulable again.
	wantTail := decideRange(t, ref, tr, cut, len(tr.Tasks), 8)
	gotTail := decideRange(t, jc2, tr, cut, len(tr.Tasks), 8)
	if !reflect.DeepEqual(gotTail, wantTail) {
		t.Fatal("recovered controller diverged from reference after the crash")
	}

	// Post-recovery membership operations still resolve global indexes —
	// including the runtime-added machine re-registered during recovery.
	nm := len(jc2.matrix.Machines())
	if resp := admin(t, jc2, AdminMachineRequest{Op: AdminOpRemove, Machine: nm, Handoff: true}); resp.Shard != 1 {
		t.Fatalf("recovered added machine on shard %d, want 1", resp.Shard)
	}
	admin(t, ref, AdminMachineRequest{Op: AdminOpRemove, Machine: nm, Handoff: true})

	got, err := jc2.Drain(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	want, err := ref.Drain(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("drained results diverged:\n got %+v\nwant %+v", got, want)
	}

	// hcreplay's verifier re-derives the stream across the membership ops.
	stats, err := VerifyAll(jcfg.JournalDir)
	if err != nil {
		t.Fatalf("journal with membership ops failed verification: %v", err)
	}
	var members int
	for _, st := range stats {
		members += st.Membership
	}
	if members != 5 {
		t.Errorf("verified %d membership records, want 5", members)
	}
}

// TestParseChurnPlan covers the hcload fault-injection grammar.
func TestParseChurnPlan(t *testing.T) {
	plan, err := ParseChurnPlan("100:remove:2:drop,50:revive:2,200:add:1:3")
	if err != nil {
		t.Fatal(err)
	}
	if len(plan) != 3 {
		t.Fatalf("plan length = %d, want 3", len(plan))
	}
	if plan[0].AtTask != 100 || plan[0].Req.Op != AdminOpRemove || plan[0].Req.Handoff {
		t.Fatalf("plan[0] = %+v, want remove@100 with drop", plan[0])
	}
	if plan[1].AtTask != 50 || plan[1].Req.Op != AdminOpRevive || plan[1].Req.Machine != 2 {
		t.Fatalf("plan[1] = %+v, want revive@50 machine 2", plan[1])
	}
	if plan[2].Req.Op != AdminOpAdd || plan[2].Req.Shard != 1 || plan[2].Req.Type != 3 {
		t.Fatalf("plan[2] = %+v, want add shard 1 type 3", plan[2])
	}
	// A plain remove defaults to handing the queue off.
	if p, err := ParseChurnPlan("7:remove:0"); err != nil || !p[0].Req.Handoff {
		t.Fatalf("plain remove = %+v, %v; want handoff default", p, err)
	}
	if p, err := ParseChurnPlan(""); err != nil || p != nil {
		t.Fatalf("empty plan = %v, %v", p, err)
	}
	for _, bad := range []string{"x:remove:1", "10:frob:1", "10:add:1", "10:remove", "-5:revive:0"} {
		if _, err := ParseChurnPlan(bad); err == nil {
			t.Errorf("ParseChurnPlan(%q) accepted", bad)
		}
	}
}

// TestRebalanceOnce skews queue mass onto one shard and checks that a
// rebalance pass migrates exactly one machine from the loaded shard to the
// idle one — journaled through the same admin path as operator churn.
func TestRebalanceOnce(t *testing.T) {
	c, err := New(Config{
		Profile: "video", Mapper: "PAM", Dropper: "heuristic",
		Shards: 2, Router: "hash:seed=1",
		RebalanceThreshold: 1.5,
	})
	if err != nil {
		t.Fatal(err)
	}

	// With nothing queued the pass is a no-op.
	if moved, err := c.RebalanceOnce(context.Background()); err != nil || moved {
		t.Fatalf("idle rebalance = %v, %v; want no move", moved, err)
	}

	// The class-hash router pins every task of one class to one shard, so a
	// single-class burst piles its queue mass there.
	tr := testTrace(t, 300, 31)
	req := DecideRequest{}
	for _, task := range tr.Tasks {
		if int(task.Type) != 0 {
			continue
		}
		req.Tasks = append(req.Tasks, TaskSpec{
			Type: int(task.Type), Arrival: 1,
			Deadline: 100000, ExecByType: task.ExecByType,
		})
	}
	if _, err := c.Decide(context.Background(), &req); err != nil {
		t.Fatal(err)
	}

	moved, err := c.RebalanceOnce(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if !moved {
		t.Fatal("skewed shards did not trigger a migration")
	}
	if got := c.rebalanceMoves.Load(); got != 1 {
		t.Fatalf("rebalance moves counter = %d, want 1", got)
	}
	stats, err := c.ShardStats(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	var live [2]int
	for _, ss := range stats {
		live[ss.Shard] = ss.LiveMachines
	}
	if live[0]+live[1] != len(c.matrix.Machines()) {
		t.Fatalf("total live machines = %d, want %d (capacity conserved)", live[0]+live[1], len(c.matrix.Machines()))
	}
	if live[0] == live[1] {
		t.Fatalf("live split %v unchanged by migration", live)
	}
	if _, err := c.Drain(context.Background()); err != nil {
		t.Fatal(err)
	}
}

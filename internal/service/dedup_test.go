package service

import (
	"context"
	"errors"
	"fmt"
	"testing"
	"time"
)

func TestDedupOwnerThenDuplicate(t *testing.T) {
	w := NewDedupWindow(8)
	e, owner := w.Begin("a")
	if !owner {
		t.Fatal("first Begin is not the owner")
	}
	w.Commit("a", []byte("{\"x\":1}\n"), 3)
	dup, owner := w.Begin("a")
	if owner {
		t.Fatal("second Begin claims ownership")
	}
	data, n, err := dup.Await(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if string(data) != "{\"x\":1}\n" || n != 3 {
		t.Fatalf("Await = (%q, %d), want the committed bytes for 3 tasks", data, n)
	}
	if w.Hits() != 1 {
		t.Fatalf("Hits = %d, want 1", w.Hits())
	}
	_ = e
}

func TestDedupAwaitBlocksUntilCommit(t *testing.T) {
	w := NewDedupWindow(8)
	w.Begin("a")
	dup, _ := w.Begin("a")
	done := make(chan error, 1)
	go func() {
		_, _, err := dup.Await(context.Background())
		done <- err
	}()
	select {
	case <-done:
		t.Fatal("Await returned before Commit")
	case <-time.After(20 * time.Millisecond):
	}
	w.Commit("a", []byte("ok\n"), 1)
	if err := <-done; err != nil {
		t.Fatal(err)
	}
}

func TestDedupAwaitHonorsContext(t *testing.T) {
	w := NewDedupWindow(8)
	w.Begin("a")
	dup, _ := w.Begin("a")
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Millisecond)
	defer cancel()
	if _, _, err := dup.Await(ctx); !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("Await under a dead owner = %v, want deadline exceeded", err)
	}
}

func TestDedupFailReleasesID(t *testing.T) {
	w := NewDedupWindow(8)
	w.Begin("a")
	dup, _ := w.Begin("a")
	boom := errors.New("boom")
	w.Fail("a", boom)
	if _, _, err := dup.Await(context.Background()); !errors.Is(err, boom) {
		t.Fatalf("duplicate of a failed owner = %v, want the owner's error", err)
	}
	// The ID is released: a retry becomes a fresh owner and can commit.
	if _, owner := w.Begin("a"); !owner {
		t.Fatal("Begin after Fail is not the owner — the ID leaked")
	}
	w.Commit("a", []byte("ok\n"), 1)
}

func TestDedupPoisonIsPermanent(t *testing.T) {
	w := NewDedupWindow(8)
	w.Poison("torn", errors.New("batch torn by crash"))
	dup, owner := w.Begin("torn")
	if owner {
		t.Fatal("Begin on a poisoned ID claims ownership")
	}
	if _, _, err := dup.Await(context.Background()); err == nil {
		t.Fatal("poisoned ID answered without error")
	}
}

func TestDedupSeedSkipsExistingAndServes(t *testing.T) {
	w := NewDedupWindow(8)
	w.Seed("a", []byte("original\n"), 2)
	w.Seed("a", []byte("imposter\n"), 2)
	dup, owner := w.Begin("a")
	if owner {
		t.Fatal("Begin on a seeded ID claims ownership")
	}
	data, n, err := dup.Await(context.Background())
	if err != nil || string(data) != "original\n" || n != 2 {
		t.Fatalf("seeded Await = (%q, %d, %v), want the first seed", data, n, err)
	}
}

func TestDedupFIFOEviction(t *testing.T) {
	w := NewDedupWindow(3)
	for i := 0; i < 5; i++ {
		id := fmt.Sprintf("id-%d", i)
		w.Begin(id)
		w.Commit(id, []byte("x\n"), 1)
	}
	if got := w.Len(); got != 3 {
		t.Fatalf("Len = %d after 5 commits into a window of 3", got)
	}
	// The two oldest are gone: retrying them re-executes.
	for _, id := range []string{"id-0", "id-1"} {
		if _, owner := w.Begin(id); !owner {
			t.Fatalf("evicted %s still present", id)
		}
		w.Fail(id, errors.New("cleanup"))
	}
	// The newest survive.
	if _, owner := w.Begin("id-4"); owner {
		t.Fatal("id-4 evicted out of FIFO order")
	}
}

package service

import (
	"context"
	"errors"
	"fmt"
	"net/http"
	"net/http/httptest"
	"sync/atomic"
	"testing"
	"time"
)

// flakyServer fails the first n requests with status, then succeeds.
func flakyServer(t *testing.T, n int, status int, retryAfter string) (*httptest.Server, *atomic.Int64) {
	t.Helper()
	var calls atomic.Int64
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if calls.Add(1) <= int64(n) {
			if retryAfter != "" {
				w.Header().Set("Retry-After", retryAfter)
			}
			w.WriteHeader(status)
			fmt.Fprintln(w, `{"error":"induced failure"}`)
			return
		}
		w.Header().Set("Content-Type", "application/json")
		fmt.Fprintln(w, `{"ok":true}`)
	}))
	t.Cleanup(srv.Close)
	return srv, &calls
}

func TestClientRetriesServerErrors(t *testing.T) {
	srv, calls := flakyServer(t, 2, http.StatusInternalServerError, "")
	cl := NewClient(srv.Client(), ClientConfig{Retries: 3, Backoff: time.Millisecond})
	var out struct {
		OK bool `json:"ok"`
	}
	if err := cl.PostJSON(context.Background(), srv.URL, nil, &out); err != nil {
		t.Fatal(err)
	}
	if !out.OK {
		t.Fatal("success response not decoded")
	}
	if got := calls.Load(); got != 3 {
		t.Fatalf("server saw %d attempts, want 3 (2 failures + success)", got)
	}
	if got := cl.Attempts(); got != 3 {
		t.Fatalf("Attempts() = %d, want 3", got)
	}
}

func TestClientStopsWhenBudgetSpent(t *testing.T) {
	srv, calls := flakyServer(t, 100, http.StatusInternalServerError, "")
	cl := NewClient(srv.Client(), ClientConfig{Retries: 2, Backoff: time.Millisecond})
	err := cl.PostJSON(context.Background(), srv.URL, nil, nil)
	var he *HTTPError
	if !errors.As(err, &he) || he.Status != http.StatusInternalServerError {
		t.Fatalf("err = %v, want the final 500", err)
	}
	if he.Msg != "induced failure" {
		t.Fatalf("error body not surfaced: %q", he.Msg)
	}
	if got := calls.Load(); got != 3 {
		t.Fatalf("server saw %d attempts, want 3 (1 + 2 retries)", got)
	}
}

func TestClientDoesNotRetryClientErrors(t *testing.T) {
	srv, calls := flakyServer(t, 100, http.StatusBadRequest, "")
	cl := NewClient(srv.Client(), ClientConfig{Retries: 5, Backoff: time.Millisecond})
	err := cl.PostJSON(context.Background(), srv.URL, nil, nil)
	var he *HTTPError
	if !errors.As(err, &he) || he.Status != http.StatusBadRequest {
		t.Fatalf("err = %v, want 400", err)
	}
	if got := calls.Load(); got != 1 {
		t.Fatalf("a 400 was retried: %d attempts", got)
	}
}

func TestClientHonorsRetryAfterOn429(t *testing.T) {
	srv, calls := flakyServer(t, 1, http.StatusTooManyRequests, "1")
	// Backoff would be instant; Retry-After must stretch the sleep to ~1s.
	cl := NewClient(srv.Client(), ClientConfig{Retries: 1, Backoff: time.Millisecond})
	start := time.Now()
	if err := cl.PostJSON(context.Background(), srv.URL, nil, nil); err != nil {
		t.Fatal(err)
	}
	if waited := time.Since(start); waited < 900*time.Millisecond {
		t.Fatalf("retried after %s; Retry-After: 1 ignored", waited)
	}
	if got := calls.Load(); got != 2 {
		t.Fatalf("server saw %d attempts, want 2", got)
	}
}

func TestClientRetriesTransportErrors(t *testing.T) {
	// A server that is down: connection refused is retryable, and the
	// retries are observable through Attempts.
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {}))
	url := srv.URL
	srv.Close()
	cl := NewClient(nil, ClientConfig{Retries: 2, Backoff: time.Millisecond})
	if err := cl.PostJSON(context.Background(), url, nil, nil); err == nil {
		t.Fatal("dead server answered")
	}
	if got := cl.Attempts(); got != 3 {
		t.Fatalf("Attempts() = %d, want 3", got)
	}
}

func TestClientPerAttemptTimeout(t *testing.T) {
	release := make(chan struct{})
	var calls atomic.Int64
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if calls.Add(1) == 1 {
			<-release // first attempt hangs past the per-attempt timeout
		}
		fmt.Fprintln(w, `{}`)
	}))
	defer srv.Close()
	defer close(release)
	cl := NewClient(srv.Client(), ClientConfig{Timeout: 50 * time.Millisecond, Retries: 1, Backoff: time.Millisecond})
	if err := cl.PostJSON(context.Background(), srv.URL, nil, nil); err != nil {
		t.Fatalf("second attempt should have succeeded: %v", err)
	}
	if got := calls.Load(); got != 2 {
		t.Fatalf("server saw %d attempts, want 2 (timeout + success)", got)
	}
}

func TestClientContextCancelsBackoffSleep(t *testing.T) {
	srv, _ := flakyServer(t, 100, http.StatusInternalServerError, "60")
	cl := NewClient(srv.Client(), ClientConfig{Retries: 1, Backoff: time.Millisecond})
	ctx, cancel := context.WithTimeout(context.Background(), 50*time.Millisecond)
	defer cancel()
	start := time.Now()
	if err := cl.PostJSON(ctx, srv.URL, nil, nil); err == nil {
		t.Fatal("expected failure")
	}
	if waited := time.Since(start); waited > 5*time.Second {
		t.Fatalf("context cancellation did not cut the Retry-After sleep (%s)", waited)
	}
}

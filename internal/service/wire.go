package service

import (
	"fmt"

	"github.com/hpcclab/taskdrop/internal/pmf"
	"github.com/hpcclab/taskdrop/internal/sim"
)

// Wire types of the admission service's HTTP API. JSON tags follow the
// snake_case convention of sim.Result / runner.Aggregate so server
// responses, offline trial dumps and experiment CSVs share one vocabulary.

// TaskSpec is one arriving task in a decide request. Times are absolute
// ticks (1 ms) on the client's trace clock; the server's virtual clock
// follows the arrival ticks it is fed, which is what makes a replayed
// trace reproduce the offline simulation exactly.
type TaskSpec struct {
	// ID is an optional client-chosen label echoed back in the decision.
	ID string `json:"id,omitempty"`
	// Type is the task's PET row.
	Type int `json:"type"`
	// Arrival is the task's arrival tick. Arrivals must be non-decreasing
	// across requests; an arrival behind the server clock is treated as
	// arriving now.
	Arrival pmf.Tick `json:"arrival"`
	// Deadline is the task's absolute hard deadline tick.
	Deadline pmf.Tick `json:"deadline"`
	// ExecByType optionally carries the realized execution time per machine
	// type (as pre-drawn in a workload trace). When omitted the server
	// falls back to the PET cell means, which keeps the run deterministic
	// but loses execution-time variance.
	ExecByType []pmf.Tick `json:"exec_by_type,omitempty"`
}

// DecideRequest is the body of POST /v1/decide: a batch of tasks arriving
// in order.
type DecideRequest struct {
	// DecisionID, when set, makes the request idempotent: the server
	// journals it with the batch, remembers the response in a bounded dedup
	// window, and answers a repeat of the same ID with the byte-identical
	// original decisions instead of re-admitting. This is what lets a
	// client (or the router tier) retry a timed-out request at-least-once
	// without double-feeding the engine.
	DecisionID string     `json:"decision_id,omitempty"`
	Tasks      []TaskSpec `json:"tasks"`
}

// Action is the admission outcome for one arriving task.
type Action string

// The three admission outcomes.
const (
	// ActionMap: admitted and assigned to a machine queue.
	ActionMap Action = "map"
	// ActionDefer: not admitted now (every queue slot is full); the server
	// keeps the task in its batch and maps or drops it at a later event.
	ActionDefer Action = "defer"
	// ActionDrop: rejected — the task's deadline (plus grace) had already
	// passed at arrival, so per Eq. 1 it can deliver no value.
	ActionDrop Action = "drop"
)

// Decision is the admission outcome of one task.
type Decision struct {
	ID string `json:"id,omitempty"`
	// Seq is the server-assigned arrival sequence number (0-based,
	// cluster-wide).
	Seq    int    `json:"seq"`
	Action Action `json:"action"`
	// Shard is the admission shard the task was routed to (0 on an
	// unsharded server).
	Shard int `json:"shard"`
	// Backend is the shard-server process the router tier proxied the task
	// to (0 when decided in-process). Sequence numbers are per backend, so
	// behind a router tier a decision's identity is (backend, seq).
	Backend int `json:"backend,omitempty"`
	// Machine is the admitted machine's matrix-wide index, or -1 when not
	// mapped.
	Machine     int    `json:"machine"`
	MachineName string `json:"machine_name,omitempty"`
}

// DecideResponse is the body returned by POST /v1/decide.
type DecideResponse struct {
	// Now is the server's virtual clock after processing the batch.
	Now       pmf.Tick   `json:"now"`
	Decisions []Decision `json:"decisions"`
}

// DrainResponse is the body returned by POST /v1/drain: the final trial
// accounting after every queued task has executed or been dropped.
type DrainResponse struct {
	Result *sim.Result `json:"result"`
}

// StatusResponse is the body returned by GET /healthz.
type StatusResponse struct {
	Status   string `json:"status"` // "ok" or "draining"
	Profile  string `json:"profile"`
	Mapper   string `json:"mapper"`
	Dropper  string `json:"dropper"`
	Machines int    `json:"machines"`
	Shards   int    `json:"shards"`
	Router   string `json:"router"`
	// Partition is the machine partition this server owns ("k/K", empty
	// when the server owns the whole matrix). Machines counts only the
	// owned partition.
	Partition string `json:"partition,omitempty"`
}

// ReadyResponse is the body returned by GET /readyz. Ready is false while
// the server boots (journal recovery, shard start) or drains; the router
// tier admits a backend into its rotation only once Ready is true.
type ReadyResponse struct {
	Ready  bool   `json:"ready"`
	Status string `json:"status"` // "booting", "ok" or "draining"
}

// ShardSnapshot is one shard's entry in GET /v1/stats: the live engine
// state read through the shard's decision loop, the lock-free router view
// (queue mass, free slots, per-class robustness estimates), and the
// shard's decision counters.
type ShardSnapshot struct {
	Shard int      `json:"shard"`
	Now   pmf.Tick `json:"now"`
	Live  sim.Live `json:"live"`
	// QueueDepths[i] is the queue length (incl. running) of the shard's
	// i-th local machine; Machines[i] is that machine's matrix-wide index.
	QueueDepths []int `json:"queue_depths"`
	Machines    []int `json:"machines"`
	// LiveMachines is the shard's live machine count; Removed lists the
	// matrix-wide indexes currently removed from the live set (dynamic
	// membership, POST /v1/admin/machines).
	LiveMachines int   `json:"live_machines"`
	Removed      []int `json:"removed_machines,omitempty"`
	// QueueMass and FreeSlots are the router's load gauges for the shard.
	QueueMass int64 `json:"queue_mass"`
	FreeSlots int64 `json:"free_slots"`
	// Robustness[class] is the shard's expected on-time probability for
	// the task class (EWMA of admission-time chances of success).
	Robustness []float64 `json:"robustness_by_class"`
	// Decision counters since start.
	Requests int64 `json:"requests"`
	Mapped   int64 `json:"mapped"`
	Deferred int64 `json:"deferred"`
	Dropped  int64 `json:"dropped"`
	// SeqWatermark is the highest cluster-wide sequence number the shard
	// has decided (-1 before the first decision). It survives restarts:
	// the journal checkpoints it so recovered servers never reissue a
	// sequence number.
	SeqWatermark int64 `json:"seq_watermark"`
}

// StatsResponse is the body returned by GET /v1/stats.
type StatsResponse struct {
	Router string          `json:"router"`
	Shards []ShardSnapshot `json:"shards"`
}

// Validate checks one task spec against the served system.
func (t *TaskSpec) Validate(numTaskTypes, numMachineTypes int) error {
	if t.Type < 0 || t.Type >= numTaskTypes {
		return fmt.Errorf("service: task type %d out of range [0,%d)", t.Type, numTaskTypes)
	}
	if t.Arrival < 0 {
		return fmt.Errorf("service: negative arrival %d", t.Arrival)
	}
	if t.Deadline < 0 {
		return fmt.Errorf("service: negative deadline %d", t.Deadline)
	}
	if len(t.ExecByType) != 0 && len(t.ExecByType) != numMachineTypes {
		return fmt.Errorf("service: exec_by_type has %d entries, want %d (or none)",
			len(t.ExecByType), numMachineTypes)
	}
	for _, x := range t.ExecByType {
		if x < 1 {
			return fmt.Errorf("service: exec_by_type entry %d, want >= 1", x)
		}
	}
	return nil
}

package service

import (
	"context"
	"errors"
	"reflect"
	"sync"
	"testing"

	"github.com/hpcclab/taskdrop/internal/core"
	"github.com/hpcclab/taskdrop/internal/mapping"
	"github.com/hpcclab/taskdrop/internal/pet"
	"github.com/hpcclab/taskdrop/internal/sim"
	"github.com/hpcclab/taskdrop/internal/workload"
)

// testTrace generates a small oversubscribed trace on the (cached) video
// system — every decision path shows up within a few hundred tasks.
func testTrace(t testing.TB, tasks int, seed int64) *workload.Trace {
	t.Helper()
	m, err := pet.CachedMatrix("video")
	if err != nil {
		t.Fatal(err)
	}
	cfg := workload.Config{TotalTasks: 30000, Window: workload.StandardWindow, GammaSlack: workload.DefaultGammaSlack}
	return workload.Generate(m, cfg.Scaled(float64(tasks)/30000), seed)
}

func newTestController(t testing.TB) *Controller {
	t.Helper()
	c, err := New(Config{Profile: "video", Mapper: "PAM", Dropper: "heuristic"})
	if err != nil {
		t.Fatal(err)
	}
	return c
}

func decideAll(t testing.TB, c *Controller, tr *workload.Trace, batch int) []Decision {
	t.Helper()
	var out []Decision
	for lo := 0; lo < len(tr.Tasks); lo += batch {
		hi := min(lo+batch, len(tr.Tasks))
		req := DecideRequest{Tasks: make([]TaskSpec, hi-lo)}
		for i, task := range tr.Tasks[lo:hi] {
			req.Tasks[i] = TaskSpec{
				Type: int(task.Type), Arrival: task.Arrival,
				Deadline: task.Deadline, ExecByType: task.ExecByType,
			}
		}
		resp, err := c.Decide(context.Background(), &req)
		if err != nil {
			t.Fatal(err)
		}
		out = append(out, resp.Decisions...)
	}
	return out
}

// TestControllerMatchesOfflineSimulation is the closing of the loop: the
// online controller fed a trace must land on exactly the Result the
// offline simulator computes for the same (profile, mapper, dropper,
// trace) — robustness, drop counts, cost, makespan, everything.
func TestControllerMatchesOfflineSimulation(t *testing.T) {
	tr := testTrace(t, 500, 3)
	c := newTestController(t)
	decisions := decideAll(t, c, tr, 16)
	if len(decisions) != tr.Len() {
		t.Fatalf("got %d decisions, want %d", len(decisions), tr.Len())
	}
	got, err := c.Drain(context.Background())
	if err != nil {
		t.Fatal(err)
	}

	m, _ := pet.CachedMatrix("video")
	mapper, err := mapping.FromSpec("PAM")
	if err != nil {
		t.Fatal(err)
	}
	dropper, err := core.PolicyFromSpec("heuristic")
	if err != nil {
		t.Fatal(err)
	}
	offline := sim.New(m, tr, mapper, dropper, sim.Config{QueueCap: 6})
	want := offline.Run()

	if *got != *want {
		t.Fatalf("online Result = %+v\nwant (offline)   %+v", got, want)
	}
	// Decision-mix consistency: a trace task's deadline always lies beyond
	// its arrival, so admission-time drops cannot occur here — the
	// oversubscribed trace must instead produce both mapped and deferred
	// decisions, and later in-queue drops must appear in the drain result.
	var mapped, deferred, dropped int
	for _, d := range decisions {
		switch d.Action {
		case ActionMap:
			mapped++
			if d.Machine < 0 || d.Machine >= len(m.Machines()) || d.MachineName == "" {
				t.Fatalf("mapped decision without machine: %+v", d)
			}
		case ActionDefer:
			deferred++
		case ActionDrop:
			dropped++
		}
	}
	if dropped > got.DroppedReactive {
		t.Fatalf("admission drops %d exceed total reactive drops %d", dropped, got.DroppedReactive)
	}
	if mapped == 0 || deferred == 0 {
		t.Fatalf("decision mix too degenerate to be a real test: mapped=%d deferred=%d", mapped, deferred)
	}
	if got.DroppedReactive+got.DroppedProactive == 0 {
		t.Fatal("oversubscribed trace produced no drops; test workload too easy")
	}
}

// TestControllerDeterminism: two controllers fed the identical request
// sequence produce the identical decision sequence and final Result.
func TestControllerDeterminism(t *testing.T) {
	tr := testTrace(t, 400, 9)
	a, b := newTestController(t), newTestController(t)
	da := decideAll(t, a, tr, 8)
	db := decideAll(t, b, tr, 8)
	if !reflect.DeepEqual(da, db) {
		t.Fatal("decision sequences diverged for identical (spec, trace, seed)")
	}
	ra, err := a.Drain(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	rb, err := b.Drain(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if *ra != *rb {
		t.Fatalf("drain results diverged: %+v vs %+v", ra, rb)
	}
}

// TestDrainRejectsNewWork: after Drain starts, Decide and Stats fail with
// ErrDraining, repeated Drain returns the same result, and the final
// result is retained.
func TestDrainRejectsNewWork(t *testing.T) {
	tr := testTrace(t, 50, 1)
	c := newTestController(t)
	decideAll(t, c, tr, 10)
	res1, err := c.Drain(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if _, err := c.Decide(context.Background(), &DecideRequest{Tasks: []TaskSpec{{Arrival: 1, Deadline: 2}}}); !errors.Is(err, ErrDraining) {
		t.Fatalf("Decide after drain: err = %v, want ErrDraining", err)
	}
	if _, err := c.Stats(context.Background()); !errors.Is(err, ErrDraining) {
		t.Fatalf("Stats after drain: err = %v, want ErrDraining", err)
	}
	res2, err := c.Drain(context.Background())
	if err != nil || res1 != res2 {
		t.Fatalf("second drain = (%p, %v), want same result pointer", res2, err)
	}
	if final, ok := c.FinalResult(); !ok || final != res1 {
		t.Fatal("FinalResult not retained")
	}
	if err := res1.Validate(); err != nil {
		t.Fatal(err)
	}
}

// TestControllerConcurrentClients drives the controller from many
// goroutines at once — decisions interleave nondeterministically, but
// totals must conserve and nothing may race (run under -race).
func TestControllerConcurrentClients(t *testing.T) {
	tr := testTrace(t, 300, 4)
	c := newTestController(t)
	const clients = 8
	per := tr.Len() / clients
	var wg sync.WaitGroup
	for w := 0; w < clients; w++ {
		wg.Add(1)
		go func(lo int) {
			defer wg.Done()
			for i := lo; i < lo+per; i++ {
				task := tr.Tasks[i]
				req := DecideRequest{Tasks: []TaskSpec{{
					Type: int(task.Type), Arrival: task.Arrival,
					Deadline: task.Deadline, ExecByType: task.ExecByType,
				}}}
				if _, err := c.Decide(context.Background(), &req); err != nil {
					t.Error(err)
					return
				}
			}
		}(w * per)
	}
	// Concurrent observers.
	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := 0; i < 20; i++ {
			if _, err := c.Stats(context.Background()); err != nil {
				t.Error(err)
				return
			}
			c.metrics.DropRate()
		}
	}()
	wg.Wait()
	if got := c.metrics.tasks.Load(); got != int64(clients*per) {
		t.Fatalf("decided %d tasks, want %d", got, clients*per)
	}
	res, err := c.Drain(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if res.Total != clients*per {
		t.Fatalf("drain total %d, want %d", res.Total, clients*per)
	}
	if err := res.Validate(); err != nil {
		t.Fatal(err)
	}
}

// TestDrainCancelledCallerStillCompletes: a drain whose context is
// cancelled returns promptly, but draining is committed — the drain
// completes in the background, no concurrent waiter is stranded, and the
// result stays retrievable.
func TestDrainCancelledCallerStillCompletes(t *testing.T) {
	tr := testTrace(t, 40, 6)
	c := newTestController(t)
	decideAll(t, c, tr, 10)

	cancelled, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := c.Drain(cancelled); !errors.Is(err, context.Canceled) {
		t.Fatalf("drain with cancelled ctx: err = %v", err)
	}
	// Committed: the drain finishes in the background; a patient waiter
	// (e.g. hcserve's SIGTERM path) gets the result.
	res, err := c.Drain(context.Background())
	if err != nil || res == nil {
		t.Fatalf("follow-up drain = (%v, %v)", res, err)
	}
	if res.Total != tr.Len() {
		t.Fatalf("drain total %d, want %d", res.Total, tr.Len())
	}
	if _, err := c.Decide(context.Background(), &DecideRequest{Tasks: []TaskSpec{{Arrival: 1, Deadline: 2}}}); !errors.Is(err, ErrDraining) {
		t.Fatalf("decide after committed drain: err = %v, want ErrDraining", err)
	}
}

// TestControllerRejectsBadSpecs covers construction and request
// validation failures.
func TestControllerRejectsBadSpecs(t *testing.T) {
	for _, cfg := range []Config{
		{Profile: "nosuch"},
		{Profile: "video", Mapper: "nosuch"},
		{Profile: "video", Dropper: "nosuch"},
		{Profile: "video", Dropper: "heuristic:betta=2"},
		{Profile: "video", QueueCap: -1},
		{Profile: "video", Grace: -5},
		{Profile: "video", Backlog: -1},
	} {
		if _, err := New(cfg); err == nil {
			t.Errorf("New(%+v) accepted", cfg)
		}
	}
	c := newTestController(t)
	defer c.Close()
	if _, err := c.Decide(context.Background(), &DecideRequest{}); err == nil {
		t.Error("empty request accepted")
	}
	bad := &DecideRequest{Tasks: []TaskSpec{{Type: 99, Arrival: 1, Deadline: 2}}}
	if _, err := c.Decide(context.Background(), bad); err == nil {
		t.Error("out-of-range task type accepted")
	}
}

// TestMakeTaskFillsExecFromPET: clients without a trace get deterministic
// PET-mean execution times.
func TestMakeTaskFillsExecFromPET(t *testing.T) {
	c := newTestController(t)
	defer c.Close()
	task := c.makeTask(&TaskSpec{Type: 1, Arrival: 10, Deadline: 100_000}, 0)
	if len(task.ExecByType) != c.matrix.NumMachineTypes() {
		t.Fatalf("exec len %d", len(task.ExecByType))
	}
	for j, e := range task.ExecByType {
		if e < 1 {
			t.Fatalf("exec[%d] = %d", j, e)
		}
	}
}

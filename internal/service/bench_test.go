package service

import (
	"context"
	"fmt"
	"sync/atomic"
	"testing"

	"github.com/hpcclab/taskdrop/internal/core"
	"github.com/hpcclab/taskdrop/internal/mapping"
	"github.com/hpcclab/taskdrop/internal/pet"
	"github.com/hpcclab/taskdrop/internal/pmf"
	"github.com/hpcclab/taskdrop/internal/sim"
	"github.com/hpcclab/taskdrop/internal/workload"
)

// benchTasks pre-generates an oversubscribed arrival sequence long enough
// for b.N decisions by tiling a base trace along the time axis, so the
// system stays under continuous load however many iterations run.
func benchTasks(b testing.TB, n int) []workload.Task {
	b.Helper()
	m, err := pet.CachedMatrix("video")
	if err != nil {
		b.Fatal(err)
	}
	cfg := workload.Config{TotalTasks: 2000, Window: workload.StandardWindow / 15, GammaSlack: workload.DefaultGammaSlack}
	base := workload.Generate(m, cfg, 1)
	span := base.Tasks[len(base.Tasks)-1].Arrival + 1
	out := make([]workload.Task, n)
	for i := range out {
		t := base.Tasks[i%len(base.Tasks)]
		shift := pmf.Tick(i/len(base.Tasks)) * span
		t.ID = i
		t.Arrival += shift
		t.Deadline += shift
		out[i] = t
	}
	return out
}

// BenchmarkEngineFeed measures the incremental PMF-update hot path with no
// service overhead: one open-engine Feed per op (advance virtual clock,
// reactive/proactive dropping, PAM mapping over tail-completion PMFs
// chained through the shared convolution workspace).
func BenchmarkEngineFeed(b *testing.B) {
	m, err := pet.CachedMatrix("video")
	if err != nil {
		b.Fatal(err)
	}
	mapper, _ := mapping.FromSpec("PAM")
	dropper, _ := core.PolicyFromSpec("heuristic")
	tasks := benchTasks(b, b.N)
	eng := sim.NewOpen(m, mapper, dropper, sim.Config{QueueCap: 6})
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		eng.Feed(&tasks[i])
	}
}

// BenchmarkControllerDecide measures the full decision path — request
// validation, event-loop round trip, decision assembly — one task per
// request.
func BenchmarkControllerDecide(b *testing.B) {
	benchDecide(b, 1)
}

// BenchmarkControllerDecideBatch16 amortizes the loop round trip over a
// 16-task batch (the load generator's default shape). ns/op is per task.
func BenchmarkControllerDecideBatch16(b *testing.B) {
	benchDecide(b, 16)
}

// BenchmarkServiceDecide is the shard-scaling run: the full decision path
// (routing, per-shard loop hand-off, engine feed, decision assembly) at
// 1/2/4/8 shards over the 8-machine video system, driven concurrently so
// multi-core hosts also exercise loop parallelism. ns/op is per task;
// aggregate decide throughput is its inverse. Scaling has two sources:
// per-decision work shrinks with the shard's machine count (the mapper
// and dropper scan shard-local queues only — the shard-local calculus
// argument), and on multi-core hosts the shard loops advance in parallel.
func BenchmarkServiceDecide(b *testing.B) {
	for _, shards := range []int{1, 2, 4, 8} {
		b.Run(fmt.Sprintf("shards=%d", shards), func(b *testing.B) {
			c, err := New(Config{Profile: "video", Mapper: "PAM", Dropper: "heuristic", Shards: shards, Router: "rr"})
			if err != nil {
				b.Fatal(err)
			}
			defer c.Close()
			tasks := benchTasks(b, b.N)
			var idx atomic.Int64
			b.ReportAllocs()
			b.ResetTimer()
			b.RunParallel(func(pb *testing.PB) {
				ctx := context.Background()
				for pb.Next() {
					t := &tasks[int(idx.Add(1)-1)]
					req := DecideRequest{Tasks: []TaskSpec{{
						Type: int(t.Type), Arrival: t.Arrival,
						Deadline: t.Deadline, ExecByType: t.ExecByType,
					}}}
					if _, err := c.Decide(ctx, &req); err != nil {
						b.Fatal(err)
					}
				}
			})
		})
	}
}

// BenchmarkServiceDecideJournal is BenchmarkServiceDecide/shards=1 with
// the decision journal on: every decision appends its WAL records and
// commits before acknowledging. The fsync=interval sub-run is the deployed
// default (buffered flush per ack, background fdatasync). Its absolute
// overhead (~25-30 us/op: record encoding, bufio flush, amortized
// checkpoint) has been stable across recordings; its *percentage* over
// the unjournaled baseline grows every time the decision path itself gets
// faster (the original <= 15% bar was set against a ~155 us decision; see
// the BENCH_service.json notes for the history). fsync=always pays an
// fdatasync inside every ack and is bounded by the storage device, not
// the calculus; it is recorded for the durability-cost table, not gated.
// Checkpoint cost (engine-snapshot marshal every SnapshotEvery records)
// amortizes into the per-op figure at the default cadence.
func BenchmarkServiceDecideJournal(b *testing.B) {
	for _, fsync := range []string{"interval", "always"} {
		b.Run("fsync="+fsync, func(b *testing.B) {
			c, err := New(Config{
				Profile: "video", Mapper: "PAM", Dropper: "heuristic", Shards: 1, Router: "rr",
				JournalDir: b.TempDir(), Fsync: fsync,
			})
			if err != nil {
				b.Fatal(err)
			}
			defer c.Close()
			tasks := benchTasks(b, b.N)
			var idx atomic.Int64
			b.ReportAllocs()
			b.ResetTimer()
			b.RunParallel(func(pb *testing.PB) {
				ctx := context.Background()
				for pb.Next() {
					t := &tasks[int(idx.Add(1)-1)]
					req := DecideRequest{Tasks: []TaskSpec{{
						Type: int(t.Type), Arrival: t.Arrival,
						Deadline: t.Deadline, ExecByType: t.ExecByType,
					}}}
					if _, err := c.Decide(ctx, &req); err != nil {
						b.Fatal(err)
					}
				}
			})
		})
	}
}

// BenchmarkServiceDecideTelemetry is BenchmarkServiceDecide/shards=1
// under the three tracing regimes: sample=0 (telemetry compiled in but
// disabled — the deployed default, gated at <= 2% over the PR-6 baseline),
// sample=128 (the hcserve flag's suggested production cadence) and
// sample=1 (trace everything; the worst case, recorded not gated). The
// journal stays off so the delta isolates tracing cost: clock reads, one
// Active allocation per sampled decision, span marks and the ring store.
func BenchmarkServiceDecideTelemetry(b *testing.B) {
	for _, sample := range []int{0, 128, 1} {
		b.Run(fmt.Sprintf("sample=%d", sample), func(b *testing.B) {
			c, err := New(Config{Profile: "video", Mapper: "PAM", Dropper: "heuristic",
				Shards: 1, Router: "rr", TraceSample: sample})
			if err != nil {
				b.Fatal(err)
			}
			defer c.Close()
			tasks := benchTasks(b, b.N)
			var idx atomic.Int64
			b.ReportAllocs()
			b.ResetTimer()
			b.RunParallel(func(pb *testing.PB) {
				ctx := context.Background()
				for pb.Next() {
					t := &tasks[int(idx.Add(1)-1)]
					req := DecideRequest{Tasks: []TaskSpec{{
						Type: int(t.Type), Arrival: t.Arrival,
						Deadline: t.Deadline, ExecByType: t.ExecByType,
					}}}
					if _, err := c.Decide(ctx, &req); err != nil {
						b.Fatal(err)
					}
				}
			})
		})
	}
}

func benchDecide(b *testing.B, batch int) {
	c, err := New(Config{Profile: "video", Mapper: "PAM", Dropper: "heuristic"})
	if err != nil {
		b.Fatal(err)
	}
	defer c.Close()
	tasks := benchTasks(b, b.N+batch)
	ctx := context.Background()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i += batch {
		req := DecideRequest{Tasks: make([]TaskSpec, batch)}
		for j := 0; j < batch; j++ {
			t := &tasks[i+j]
			req.Tasks[j] = TaskSpec{
				Type: int(t.Type), Arrival: t.Arrival,
				Deadline: t.Deadline, ExecByType: t.ExecByType,
			}
		}
		if _, err := c.Decide(ctx, &req); err != nil {
			b.Fatal(err)
		}
	}
}

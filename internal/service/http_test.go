package service

import (
	"context"
	"encoding/json"
	"io"
	"net/http"
	"net/http/httptest"
	"reflect"
	"strings"
	"testing"

	"github.com/hpcclab/taskdrop/internal/core"
	"github.com/hpcclab/taskdrop/internal/mapping"
	"github.com/hpcclab/taskdrop/internal/pet"
	"github.com/hpcclab/taskdrop/internal/sim"
)

func newTestServer(t testing.TB) (*Controller, *httptest.Server) {
	t.Helper()
	c := newTestController(t)
	srv := httptest.NewServer(NewHandler(c))
	t.Cleanup(srv.Close)
	return c, srv
}

// TestEndToEndReplay is the acceptance test of the serving layer: a
// replayed workload trace sustained over HTTP, graceful drain, a final
// Result identical to the offline simulator, and an identical decision
// sequence on a second replay of the same (spec, trace, seed).
func TestEndToEndReplay(t *testing.T) {
	tr := testTrace(t, 600, 7)
	ctx := context.Background()

	_, srv1 := newTestServer(t)
	rep1, err := Replay(ctx, srv1.Client(), srv1.URL, tr, ReplayConfig{BatchSize: 32, Drain: true})
	if err != nil {
		t.Fatal(err)
	}
	if rep1.Tasks != tr.Len() || len(rep1.Decisions) != tr.Len() {
		t.Fatalf("replay covered %d/%d decisions", len(rep1.Decisions), tr.Len())
	}
	if rep1.Final == nil {
		t.Fatal("no drain result")
	}
	if err := rep1.Final.Validate(); err != nil {
		t.Fatal(err)
	}

	// Online == offline.
	m, _ := pet.CachedMatrix("video")
	mapper, err := mapping.FromSpec("PAM")
	if err != nil {
		t.Fatal(err)
	}
	dropper, err := core.PolicyFromSpec("heuristic")
	if err != nil {
		t.Fatal(err)
	}
	want := sim.New(m, tr, mapper, dropper, sim.Config{QueueCap: 6}).Run()
	if *rep1.Final != *want {
		t.Fatalf("online drain Result = %+v\nwant (offline)       %+v", rep1.Final, want)
	}
	if rep1.Robustness() != want.RobustnessPct {
		t.Fatalf("robustness %v != %v", rep1.Robustness(), want.RobustnessPct)
	}

	// Determinism holds online: a fresh server replaying the same trace
	// yields the identical decision sequence.
	_, srv2 := newTestServer(t)
	rep2, err := Replay(ctx, srv2.Client(), srv2.URL, tr, ReplayConfig{BatchSize: 32, Drain: true})
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(rep1.Decisions, rep2.Decisions) {
		t.Fatal("decision sequences diverged across identical replays")
	}
	if *rep1.Final != *rep2.Final {
		t.Fatal("final results diverged across identical replays")
	}
	if rep1.LatencyP50 < 0 || rep1.LatencyP99 < rep1.LatencyP50 {
		t.Fatalf("latency percentiles inconsistent: p50=%v p99=%v", rep1.LatencyP50, rep1.LatencyP99)
	}
}

// TestHealthzAndMetrics checks the observability surface before and after
// drain.
func TestHealthzAndMetrics(t *testing.T) {
	tr := testTrace(t, 80, 2)
	c, srv := newTestServer(t)
	ctx := context.Background()

	var st StatusResponse
	getJSON(t, srv, "/healthz", &st)
	if st.Status != "ok" || st.Profile != "video" || st.Machines != len(c.matrix.Machines()) {
		t.Fatalf("healthz = %+v", st)
	}

	if _, err := Replay(ctx, srv.Client(), srv.URL, tr, ReplayConfig{BatchSize: 8}); err != nil {
		t.Fatal(err)
	}
	body := getText(t, srv, "/metrics")
	for _, want := range []string{
		"taskdrop_decide_requests_total 10",
		`taskdrop_decisions_total{action="map"}`,
		"taskdrop_decision_latency_seconds_bucket",
		"taskdrop_decisions_per_second",
		`taskdrop_queue_depth{machine="0"`,
		`taskdrop_tasks{state="running"}`,
		"taskdrop_virtual_clock_ticks",
	} {
		if !strings.Contains(body, want) {
			t.Errorf("metrics missing %q", want)
		}
	}

	// Drain over HTTP, then the surface reports draining + final gauge.
	resp, err := srv.Client().Post(srv.URL+"/v1/drain", "application/json", nil)
	if err != nil {
		t.Fatal(err)
	}
	var dr DrainResponse
	if err := json.NewDecoder(resp.Body).Decode(&dr); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if dr.Result == nil || dr.Result.Total != tr.Len() {
		t.Fatalf("drain result = %+v", dr.Result)
	}
	getJSON(t, srv, "/healthz", &st)
	if st.Status != "draining" {
		t.Fatalf("healthz after drain = %+v", st)
	}
	body = getText(t, srv, "/metrics")
	if !strings.Contains(body, "taskdrop_final_robustness_pct") {
		t.Error("metrics after drain missing final robustness gauge")
	}

	// Decide after drain: 503.
	dresp, err := srv.Client().Post(srv.URL+"/v1/decide", "application/json",
		strings.NewReader(`{"tasks":[{"type":0,"arrival":1,"deadline":2}]}`))
	if err != nil {
		t.Fatal(err)
	}
	io.Copy(io.Discard, dresp.Body)
	dresp.Body.Close()
	if dresp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("decide after drain: HTTP %d, want 503", dresp.StatusCode)
	}
}

// TestDecideHTTPValidation: malformed bodies and unknown fields are 400s.
func TestDecideHTTPValidation(t *testing.T) {
	c, srv := newTestServer(t)
	defer c.Close()
	for _, body := range []string{
		"",
		"{",
		`{"tasks":[]}`,
		`{"tasks":[{"type":0,"arrival":1,"deadline":2}],"bogus":1}`,
		`{"tasks":[{"type":-3,"arrival":1,"deadline":2}]}`,
	} {
		resp, err := srv.Client().Post(srv.URL+"/v1/decide", "application/json", strings.NewReader(body))
		if err != nil {
			t.Fatal(err)
		}
		io.Copy(io.Discard, resp.Body)
		resp.Body.Close()
		if resp.StatusCode != http.StatusBadRequest {
			t.Errorf("body %q: HTTP %d, want 400", body, resp.StatusCode)
		}
	}
	if got := getText(t, srv, "/metrics"); !strings.Contains(got, "taskdrop_rejected_requests_total") {
		t.Error("rejected counter missing")
	}
}

func getJSON(t testing.TB, srv *httptest.Server, path string, out any) {
	t.Helper()
	resp, err := srv.Client().Get(srv.URL + path)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if err := json.NewDecoder(resp.Body).Decode(out); err != nil {
		t.Fatal(err)
	}
}

func getText(t testing.TB, srv *httptest.Server, path string) string {
	t.Helper()
	resp, err := srv.Client().Get(srv.URL + path)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	data, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	return string(data)
}

package pmf

// Workspace provides allocation- and sort-free convolution for the hot
// paths of the completion-time calculus. It accumulates impulse masses
// into a reusable dense array indexed by time offset, then harvests the
// non-zero cells in order — O(n1·n2 + span) instead of the
// O(n1·n2 · log(n1·n2)) sort-merge of the portable implementation.
//
// A Workspace is not safe for concurrent use; each simulation engine owns
// one.
type Workspace struct {
	dense []float64
}

// maxDenseSpan bounds the dense window. Completion PMFs in this system
// span at most a few thousand ticks (bounded queues × bounded execution
// times); anything wider falls back to the portable sort-based path.
const maxDenseSpan = 1 << 17

// grow ensures capacity for span cells and returns the zeroed window.
func (w *Workspace) grow(span int) []float64 {
	if cap(w.dense) < span {
		w.dense = make([]float64, span)
	}
	d := w.dense[:span]
	clear(d)
	return d
}

// NextCompletion is the workspace-backed equivalent of
// PMF.NextCompletion (Eq. 1). Results are identical up to floating-point
// addition order.
func (w *Workspace) NextCompletion(prev, exec PMF, dl Tick) PMF {
	if prev.IsZero() {
		return Zero()
	}
	if exec.IsZero() {
		// No execution mass at all: every scenario carries through.
		return prev
	}
	// Output bounds. Impulses below dl expand by the execution span;
	// impulses at or above dl carry through unchanged.
	lastExec := lastBelow(prev.imp, dl)
	var lo, hi Tick
	switch {
	case lastExec < 0:
		// Everything carries through.
		return prev
	case lastExec == len(prev.imp)-1:
		// Everything executes.
		lo = prev.imp[0].T + exec.imp[0].T
		hi = prev.imp[lastExec].T + exec.imp[len(exec.imp)-1].T
	default:
		lo = prev.imp[0].T + exec.imp[0].T
		if c := prev.imp[lastExec+1].T; c < lo {
			lo = c
		}
		hi = prev.imp[len(prev.imp)-1].T
		if h := prev.imp[lastExec].T + exec.imp[len(exec.imp)-1].T; h > hi {
			hi = h
		}
	}
	span := int(hi-lo) + 1
	if span <= 0 || span > maxDenseSpan {
		return prev.NextCompletion(exec, dl)
	}
	d := w.grow(span)
	for _, a := range prev.imp {
		if a.T < dl {
			for _, b := range exec.imp {
				d[a.T+b.T-lo] += a.P * b.P
			}
		} else {
			d[a.T-lo] += a.P
		}
	}
	return harvest(d, lo)
}

// Convolve is the workspace-backed equivalent of PMF.Convolve.
func (w *Workspace) Convolve(p, q PMF) PMF {
	if p.IsZero() || q.IsZero() {
		return Zero()
	}
	lo := p.imp[0].T + q.imp[0].T
	hi := p.imp[len(p.imp)-1].T + q.imp[len(q.imp)-1].T
	span := int(hi-lo) + 1
	if span <= 0 || span > maxDenseSpan {
		return p.Convolve(q)
	}
	d := w.grow(span)
	for _, a := range p.imp {
		for _, b := range q.imp {
			d[a.T+b.T-lo] += a.P * b.P
		}
	}
	return harvest(d, lo)
}

// lastBelow returns the index of the last impulse with time < dl, or −1.
func lastBelow(imps []Impulse, dl Tick) int {
	for i := len(imps) - 1; i >= 0; i-- {
		if imps[i].T < dl {
			return i
		}
	}
	return -1
}

// harvest collects non-negligible cells of the dense window into a PMF.
func harvest(d []float64, lo Tick) PMF {
	n := 0
	for _, v := range d {
		if v > massEps {
			n++
		}
	}
	out := make([]Impulse, 0, n)
	for i, v := range d {
		if v > massEps {
			out = append(out, Impulse{T: lo + Tick(i), P: v})
		}
	}
	return PMF{imp: out}
}

package pmf

import (
	mathbits "math/bits"
	"sync/atomic"
)

// Workspace provides allocation-free convolution for the hot paths of the
// completion-time calculus. It owns an arena of impulse storage: every
// result it returns aliases arena memory and stays valid until the next
// Reset, so a chain of Eq. 1 evaluations runs with zero steady-state
// allocations. Reset recycles the arena in O(1); the owner (one calculus
// per simulation engine) calls it once per dropping decision.
//
// Two accumulation kernels replace the append-then-sort of the portable
// PMF methods, chosen by output shape:
//
//   - dense: masses accumulate into a reusable time-indexed window, whose
//     non-zero cells are harvested in order into the arena — O(n1·n2 +
//     span). Completion PMFs in this system span a few thousand ticks, so
//     this is the cache-friendly common case. When the window is tight
//     relative to the contribution count (linearFillFactor) the kernel
//     skips the touched-cell bitmap entirely: accumulation is a pure
//     strided load-add-store loop and the harvest is one range scan.
//   - merge: both operands are already time-sorted, so the output is the
//     union of one sorted run per left-hand impulse (the right-hand PMF
//     shifted and scaled); a k-way merge produces sorted, deduplicated
//     output directly in O(n1·n2 · log n1) with no dependence on the time
//     span. It takes over where a dense window would be too wide.
//
// Both kernels accumulate equal-time contributions in ascending left-
// impulse order — the floating-point addition order of the naive nested
// loop — so their results are bit-identical to each other. Against the
// portable PMF methods they are equal up to the summation order of
// equal-time ties (the portable accumulator sorts contributions with an
// unstable sort, so its tie order is unspecified): identical impulse
// times, masses within ULPs.
//
// A Workspace is not safe for concurrent use; each simulation engine owns
// one.
type Workspace struct {
	block   []Impulse // current arena block; results alias this (or older, still-referenced blocks)
	used    int       // committed impulses in block
	lastOff int       // offset of the most recent allocation, for in-place compaction
	dense   []float64 // dense accumulation window, reused across calls
	touched []uint64  // bitmap of written dense cells, so harvest skips zero runs
	ebits   []uint64  // per-call bitmap of the exec impulse pattern, reused
	curs    []cursor  // merge cursors, reused across calls
	heap    []int32   // k-way merge heap of cursor indexes, reused

	// peak is the arena high-water mark in impulses, and peakBytes its
	// byte value published for concurrent metrics scrapes. commit guards
	// the atomic store behind a plain compare on peak — the peak plateaus
	// after warm-up, so the kernel hot path pays one predictable branch,
	// not an atomic, per result. Because a Workspace embeds an atomic it
	// must not be copied after first use; owners hold it by pointer.
	peak      int
	peakBytes atomic.Int64
}

// impulseBytes is the arena accounting unit: one Impulse (Tick + float64).
const impulseBytes = 16

// HighWaterBytes returns the peak committed arena footprint in bytes —
// how much impulse storage the busiest decision epoch actually used.
// Safe to call concurrently with kernel operations.
func (w *Workspace) HighWaterBytes() int64 { return w.peakBytes.Load() }

// Arena block sizing, in impulses (16 B each). Blocks double until the cap;
// a workspace that is never Reset then degrades to one block allocation per
// ~1 MiB of results instead of growing without bound.
const (
	minBlockImpulses = 4 << 10
	maxBlockImpulses = 64 << 10
)

// maxDenseSpan bounds the dense window (one float64 per tick of output
// span); anything wider uses the merge kernel, which is span-independent.
const maxDenseSpan = 1 << 17

// linearFillFactor selects between the two dense harvests: when the
// window averages at least this many contributions per cell, nearly every
// cell is occupied, so the straight window scan (no bitmap maintenance in
// the accumulation loop, branch-predictable range passes to harvest) beats
// flagging and walking touched words. Sparser windows keep the bitmap:
// there the harvest cost tracks the contribution count, not the span.
const linearFillFactor = 2

// Reset recycles the arena. Every PMF previously returned by this
// workspace (and everything derived from one by in-place compaction) is
// invalidated: its storage will be overwritten by subsequent calls.
func (w *Workspace) Reset() {
	w.used = 0
	w.lastOff = 0
}

// ensure makes room for n more impulses at the arena tail, switching to a
// fresh block when the current one is full. Old blocks stay alive for as
// long as previously returned PMFs reference them.
func (w *Workspace) ensure(n int) {
	if w.used+n <= len(w.block) {
		return
	}
	size := 2 * len(w.block)
	if size > maxBlockImpulses {
		size = maxBlockImpulses
	}
	if size < minBlockImpulses {
		size = minBlockImpulses
	}
	if size < n {
		size = n
	}
	w.block = make([]Impulse, size)
	w.used = 0
	w.lastOff = 0
}

// commit finalizes the n-impulse allocation starting at base and returns
// the aliasing PMF (capacity-clamped so nothing can append past it).
func (w *Workspace) commit(base, n int) PMF {
	w.lastOff = base
	w.used = base + n
	if w.used > w.peak {
		w.peak = w.used
		w.peakBytes.Store(int64(w.used) * impulseBytes)
	}
	return PMF{imp: w.block[base : base+n : base+n]}
}

// cursor walks one sorted run of output impulses: src shifted by shift and
// scaled by scale. Its position in Workspace.curs is the merge tie-break.
type cursor struct {
	src   []Impulse
	shift Tick
	scale float64
	pos   int
	t     Tick // src[pos].T + shift, cached for the heap
}

// NextCompletion implements Eq. 1 of the paper with arena storage: given
// the completion-time PMF of the predecessor task (prev, c_{i-1}) and the
// execution-time PMF of the pending task (exec, e_i) with hard deadline dl
// (δ_i), it returns the completion-time PMF of the pending task, c_i.
// Results match PMF.NextCompletion up to the floating-point summation
// order of equal-time ties (see the package comment on Workspace).
//
// The returned PMF may alias workspace memory; it is valid until Reset.
func (w *Workspace) NextCompletion(prev, exec PMF, dl Tick) PMF {
	return w.nextCompletion(prev, exec, dl, 0, nil)
}

// nextCompletion is NextCompletion with an optional compaction budget:
// with maxN > 0 the dense kernel bins over-budget output directly from the
// accumulation window (identical to harvesting then compacting, without
// materializing the intermediate impulses). maxN <= 0 harvests raw. The
// merge kernel, the single-impulse shift-scale path and the pass-through
// fast paths ignore maxN; the caller compacts those. pat, when non-nil,
// is exec's precomputed occupancy pattern (see Pattern) — callers chaining
// the same immutable exec PMFs repeatedly (the calculus, whose exec PMFs
// are PET matrix cells) build each pattern once instead of per call.
func (w *Workspace) nextCompletion(prev, exec PMF, dl Tick, maxN int, pat []uint64) PMF {
	if prev.IsZero() {
		return Zero()
	}
	if exec.IsZero() {
		// No execution mass at all: every scenario carries through.
		return prev
	}
	// Impulses are time-sorted, so the predecessors completing before dl
	// (those whose successor executes) form a prefix.
	k := searchImpulses(prev.imp, dl)
	if k == 0 {
		// Everything carries through.
		return prev
	}
	if k == 1 && len(prev.imp) == 1 {
		// One executing predecessor and nothing carrying through: the
		// output is exec shifted and scaled — a single copy pass, same
		// contribution order and massEps drops as the general kernels.
		// This is every chain's first append off an idle (delta) root.
		a := prev.imp[0]
		w.ensure(len(exec.imp))
		base := w.used
		out := w.block[base:base]
		for _, b := range exec.imp {
			if v := a.P * b.P; v > massEps {
				out = append(out, Impulse{T: a.T + b.T, P: v})
			}
		}
		return w.commit(base, len(out))
	}
	// Output bounds. Impulses below dl expand by the execution span;
	// impulses at or above dl carry through unchanged.
	var lo, hi Tick
	if k == len(prev.imp) {
		// Everything executes.
		lo = prev.imp[0].T + exec.imp[0].T
		hi = prev.imp[k-1].T + exec.imp[len(exec.imp)-1].T
	} else {
		lo = prev.imp[0].T + exec.imp[0].T
		if c := prev.imp[k].T; c < lo {
			lo = c
		}
		hi = prev.imp[len(prev.imp)-1].T
		if h := prev.imp[k-1].T + exec.imp[len(exec.imp)-1].T; h > hi {
			hi = h
		}
	}
	total := k*len(exec.imp) + (len(prev.imp) - k)
	if span := int(hi-lo) + 1; span > 0 && span <= maxDenseSpan {
		if span*linearFillFactor <= total {
			// Tight window: accumulate without bitmap maintenance. The
			// inner loop strides one subslice of the window per
			// predecessor (row), so the generated code is a plain
			// load-fma-store sequence the CPU pipelines well.
			d := w.denseLinearWindow(span)
			e0 := exec.imp[0].T
			for _, a := range prev.imp[:k] {
				row := d[a.T+e0-lo:]
				ap := a.P
				for _, b := range exec.imp {
					row[b.T-e0] += ap * b.P
				}
			}
			for _, a := range prev.imp[k:] {
				d[a.T-lo] += a.P
			}
			if maxN > 0 {
				return w.harvestCompactLinear(d, lo, maxN)
			}
			return w.harvestLinear(d, lo, total)
		}
		d, bits := w.denseWindow(span)
		// Every executing predecessor touches the same exec-shaped cell
		// pattern, shifted by its completion time. Accumulate row-wise (a
		// strided load-fma-store loop, as in the linear path) and OR the
		// pattern's precomputed bitmap into the touched words — a handful of
		// word operations per row instead of one read-modify-write per
		// contribution.
		eb := pat
		if eb == nil {
			eb = w.execPattern(exec)
		}
		e0 := exec.imp[0].T
		for _, a := range prev.imp[:k] {
			row := d[a.T+e0-lo:]
			ap := a.P
			for _, b := range exec.imp {
				row[b.T-e0] += ap * b.P
			}
			orShifted(bits, eb, int(a.T+e0-lo))
		}
		for _, a := range prev.imp[k:] {
			i := uint(a.T - lo)
			d[i] += a.P
			bits[i>>6] |= 1 << (i & 63)
		}
		if maxN > 0 {
			return w.harvestCompact(d, bits, lo, maxN, total)
		}
		return w.harvest(d, bits, lo, total)
	}
	// Wide output: k-way merge, one run per executing predecessor.
	w.curs = w.curs[:0]
	for _, a := range prev.imp[:k] {
		w.curs = append(w.curs, cursor{src: exec.imp, shift: a.T, scale: a.P, t: exec.imp[0].T + a.T})
	}
	if k < len(prev.imp) {
		// Predecessors completing at or after dl carry through unchanged.
		// They form one sorted run whose times all exceed every executing
		// predecessor's, so giving it the highest cursor index reproduces
		// the nested-loop accumulation order exactly.
		carry := prev.imp[k:]
		w.curs = append(w.curs, cursor{src: carry, shift: 0, scale: 1, t: carry[0].T})
	}
	return w.mergeRuns(total)
}

// Convolve returns the distribution of X+Y for independent X ~ p and Y ~ q
// with arena storage. Results are identical to PMF.Convolve up to
// floating-point addition order (contributions accumulate in ascending
// p-impulse order). The returned PMF is valid until Reset.
func (w *Workspace) Convolve(p, q PMF) PMF {
	if p.IsZero() || q.IsZero() {
		return Zero()
	}
	lo := p.imp[0].T + q.imp[0].T
	hi := p.imp[len(p.imp)-1].T + q.imp[len(q.imp)-1].T
	total := len(p.imp) * len(q.imp)
	if span := int(hi-lo) + 1; span > 0 && span <= maxDenseSpan {
		if span*linearFillFactor <= total {
			d := w.denseLinearWindow(span)
			q0 := q.imp[0].T
			for _, a := range p.imp {
				row := d[a.T+q0-lo:]
				ap := a.P
				for _, b := range q.imp {
					row[b.T-q0] += ap * b.P
				}
			}
			return w.harvestLinear(d, lo, total)
		}
		d, bits := w.denseWindow(span)
		for _, a := range p.imp {
			for _, b := range q.imp {
				i := uint(a.T + b.T - lo)
				d[i] += a.P * b.P
				bits[i>>6] |= 1 << (i & 63)
			}
		}
		return w.harvest(d, bits, lo, total)
	}
	w.curs = w.curs[:0]
	for _, a := range p.imp {
		w.curs = append(w.curs, cursor{src: q.imp, shift: a.T, scale: a.P, t: q.imp[0].T + a.T})
	}
	return w.mergeRuns(total)
}

// denseWindow returns the zeroed span-cell accumulation window and its
// touched-cell bitmap.
func (w *Workspace) denseWindow(span int) ([]float64, []uint64) {
	d := w.denseLinearWindow(span)
	bits := w.touched[:(span+63)/64]
	clear(bits)
	return d, bits
}

// denseLinearWindow returns the zeroed span-cell accumulation window alone,
// for the linear (bitmap-free) dense path.
func (w *Workspace) denseLinearWindow(span int) []float64 {
	if cap(w.dense) < span {
		w.dense = make([]float64, span)
		w.touched = make([]uint64, (cap(w.dense)+63)/64)
	}
	d := w.dense[:span]
	clear(d)
	return d
}

// Pattern builds the occupancy bitmap of p's impulse times relative to its
// first impulse, in fresh storage: the form the dense kernel ORs into its
// touched-word bitmap once per accumulation row. Callers that convolve the
// same immutable PMF repeatedly (execution-time PMFs are matrix constants)
// build the pattern once and pass it to NextCompletionCompactPattern.
func Pattern(p PMF) []uint64 {
	if p.IsZero() {
		return []uint64{}
	}
	p0 := p.imp[0].T
	out := make([]uint64, int(p.imp[len(p.imp)-1].T-p0)>>6+1)
	for _, b := range p.imp {
		i := uint(b.T - p0)
		out[i>>6] |= 1 << (i & 63)
	}
	return out
}

// execPattern builds the occupancy bitmap of exec's impulse times relative
// to its first impulse, reused word-wise by every accumulation row.
func (w *Workspace) execPattern(exec PMF) []uint64 {
	e0 := exec.imp[0].T
	words := int(exec.imp[len(exec.imp)-1].T-e0)>>6 + 1
	if cap(w.ebits) < words {
		w.ebits = make([]uint64, words)
	}
	eb := w.ebits[:words]
	clear(eb)
	for _, b := range exec.imp {
		i := uint(b.T - e0)
		eb[i>>6] |= 1 << (i & 63)
	}
	return eb
}

// orShifted ORs the pattern src, shifted left by off cells, into dst. The
// caller guarantees every shifted bit lands inside dst.
func orShifted(dst, src []uint64, off int) {
	base, sh := off>>6, uint(off&63)
	if sh == 0 {
		for i, s := range src {
			dst[base+i] |= s
		}
		return
	}
	carry := uint64(0)
	for i, s := range src {
		dst[base+i] |= s<<sh | carry
		carry = s >> (64 - sh)
	}
	if carry != 0 {
		dst[base+len(src)] |= carry
	}
}

// harvest collects the non-negligible cells of the dense window, in time
// order, into fresh arena space. Only cells flagged in the touched bitmap
// are inspected, so the cost scales with the contribution count, not the
// window span. total bounds the number of non-zero cells.
func (w *Workspace) harvest(d []float64, bits []uint64, lo Tick, total int) PMF {
	if total > len(d) {
		total = len(d)
	}
	w.ensure(total)
	base := w.used
	out := w.block[base:base]
	for wi, word := range bits {
		for word != 0 {
			i := wi<<6 + mathbits.TrailingZeros64(word)
			word &= word - 1
			if v := d[i]; v > massEps {
				out = append(out, Impulse{T: lo + Tick(i), P: v})
			}
		}
	}
	return w.commit(base, len(out))
}

// harvestLinear is harvest for the bitmap-free dense path: one ascending
// range pass over the window (bounds-check-free — the loop variable is the
// slice's own index) appending every non-negligible cell. Untouched cells
// are exactly zero, so the output is identical to the bitmap harvest.
func (w *Workspace) harvestLinear(d []float64, lo Tick, total int) PMF {
	if total > len(d) {
		total = len(d)
	}
	w.ensure(total)
	base := w.used
	out := w.block[base:base]
	for i, v := range d {
		if v > massEps {
			out = append(out, Impulse{T: lo + Tick(i), P: v})
		}
	}
	return w.commit(base, len(out))
}

// harvestCompactLinear is harvestCompact for the bitmap-free dense path:
// the same fused windowed compaction, with the support-bound and window
// walks as straight range scans. Bit-identical to harvestCompact over the
// same window.
func (w *Workspace) harvestCompactLinear(d []float64, lo Tick, maxN int) PMF {
	first, last := 0, len(d)-1
	for first < len(d) && d[first] <= massEps {
		first++
	}
	if first == len(d) {
		return Zero()
	}
	for d[last] <= massEps {
		last--
	}
	w.ensure(last - first + 1)
	base := w.used
	out := w.block[base:base]
	span := Tick(last-first) + 1
	width := span / Tick(maxN)
	if span%Tick(maxN) != 0 {
		width++
	}
	if width < 1 {
		width = 1
	}
	count := 0
	var mass, weighted float64
	flush := func() {
		if mass > massEps {
			out = append(out, Impulse{T: Tick(weighted/mass + 0.5), P: mass})
		}
		mass, weighted = 0, 0
	}
	nextBound := first // the first cell always opens a window
	for j, v := range d[first : last+1] {
		if v <= massEps {
			continue
		}
		count++
		i := first + j
		if i >= nextBound {
			flush()
			nextBound = first + (int(Tick(i-first)/width)+1)*int(width)
		}
		t := lo + Tick(i)
		mass += v
		weighted += float64(t) * v
	}
	flush()
	if count <= maxN {
		// Within budget after all: Compact would have left the impulses
		// alone, so discard the windowed merge and harvest plain.
		out = out[:0]
		for i, v := range d[first : last+1] {
			if v > massEps {
				out = append(out, Impulse{T: lo + Tick(first+i), P: v})
			}
		}
		return w.commit(base, len(out))
	}
	// Fold adjacent windows rounded to the same tick, as Compact does.
	merged := out[:0]
	for _, im := range out {
		if n := len(merged); n > 0 && merged[n-1].T == im.T {
			merged[n-1].P += im.P
		} else {
			merged = append(merged, im)
		}
	}
	return w.commit(base, len(merged))
}

// harvestCompact harvests the dense window and compacts to at most maxN
// impulses in a single arena allocation, without materializing the raw
// impulse list. The result is identical to harvest followed by Compact.
// The support bounds come from two short directional scans; one bitmap
// walk then accumulates Compact's equal-width windows while counting the
// non-negligible cells, and the rare within-budget outcome (count ≤ maxN)
// re-walks as a plain harvest. total bounds the number of non-zero cells.
func (w *Workspace) harvestCompact(d []float64, bits []uint64, lo Tick, maxN, total int) PMF {
	first, last, ok := supportBounds(d, bits)
	if !ok {
		return Zero()
	}
	if total > len(d) {
		total = len(d)
	}
	w.ensure(total)
	base := w.used
	out := w.block[base:base]
	// The windowed merge of compactInto, reading cells instead of
	// impulses. Same window arithmetic, same accumulation and flush
	// order, bit-identical results.
	span := Tick(last-first) + 1
	width := span / Tick(maxN)
	if span%Tick(maxN) != 0 {
		width++
	}
	if width < 1 {
		width = 1
	}
	count := 0
	var mass, weighted float64
	flush := func() {
		if mass > massEps {
			out = append(out, Impulse{T: Tick(weighted/mass + 0.5), P: mass})
		}
		mass, weighted = 0, 0
	}
	nextBound := first // the first cell always opens a window
	for wi := first >> 6; wi <= last>>6; wi++ {
		word := bits[wi]
		for word != 0 {
			i := wi<<6 + mathbits.TrailingZeros64(word)
			word &= word - 1
			v := d[i]
			if v <= massEps {
				continue
			}
			count++
			if i >= nextBound {
				flush()
				nextBound = first + (int(Tick(i-first)/width)+1)*int(width)
			}
			t := lo + Tick(i)
			mass += v
			weighted += float64(t) * v
		}
	}
	flush()
	if count <= maxN {
		// Within budget after all: Compact would have left the impulses
		// alone, so discard the windowed merge and harvest plain.
		out = out[:0]
		for wi := first >> 6; wi <= last>>6; wi++ {
			word := bits[wi]
			for word != 0 {
				i := wi<<6 + mathbits.TrailingZeros64(word)
				word &= word - 1
				if v := d[i]; v > massEps {
					out = append(out, Impulse{T: lo + Tick(i), P: v})
				}
			}
		}
		return w.commit(base, len(out))
	}
	// Fold adjacent windows rounded to the same tick, as Compact does.
	merged := out[:0]
	for _, im := range out {
		if n := len(merged); n > 0 && merged[n-1].T == im.T {
			merged[n-1].P += im.P
		} else {
			merged = append(merged, im)
		}
	}
	return w.commit(base, len(merged))
}

// supportBounds finds the first and last window cells above massEps via
// two directional bitmap scans; ok is false when no cell qualifies.
func supportBounds(d []float64, bits []uint64) (first, last int, ok bool) {
	for wi, word := range bits {
		for word != 0 {
			i := wi<<6 + mathbits.TrailingZeros64(word)
			word &= word - 1
			if d[i] > massEps {
				first = i
				goto forward
			}
		}
	}
	return 0, 0, false
forward:
	for wi := len(bits) - 1; wi >= 0; wi-- {
		word := bits[wi]
		for word != 0 {
			i := wi<<6 + 63 - mathbits.LeadingZeros64(word)
			if d[i] > massEps {
				return first, i, true
			}
			word &^= 1 << uint(i&63)
		}
	}
	return first, first, true
}

// mergeRuns k-way-merges the prepared cursors into fresh arena space.
// total bounds the output size (the sum of run lengths). Ties on time pop
// in ascending cursor order, fixing the accumulation order; accumulated
// cells at or below massEps are dropped, as in the portable kernel.
func (w *Workspace) mergeRuns(total int) PMF {
	w.ensure(total)
	base := w.used
	out := w.block[base:base]

	// Build the heap of cursor indexes keyed by (current time, index).
	h := w.heap[:0]
	for i := range w.curs {
		h = append(h, int32(i))
	}
	for i := len(h)/2 - 1; i >= 0; i-- {
		w.siftDown(h, i)
	}

	for len(h) > 0 {
		ci := h[0]
		c := &w.curs[ci]
		t := c.t
		v := c.scale * c.src[c.pos].P
		c.pos++
		if c.pos < len(c.src) {
			c.t = c.src[c.pos].T + c.shift
		} else {
			h[0] = h[len(h)-1]
			h = h[:len(h)-1]
		}
		if len(h) > 0 {
			w.siftDown(h, 0)
		}
		if n := len(out); n > 0 && out[n-1].T == t {
			out[n-1].P += v
		} else {
			if n > 0 && out[n-1].P <= massEps {
				// The previous cell is complete and negligible: drop it.
				out = out[:n-1]
			}
			out = append(out, Impulse{T: t, P: v})
		}
	}
	if n := len(out); n > 0 && out[n-1].P <= massEps {
		out = out[:n-1]
	}
	w.heap = h[:0]
	return w.commit(base, len(out))
}

// siftDown restores the heap property at index i. Ordering is by cursor
// time, ties broken by cursor index (ascending), which is what pins the
// floating-point accumulation order.
func (w *Workspace) siftDown(h []int32, i int) {
	for {
		l := 2*i + 1
		if l >= len(h) {
			return
		}
		m := l
		if r := l + 1; r < len(h) && w.cursLess(h[r], h[l]) {
			m = r
		}
		if !w.cursLess(h[m], h[i]) {
			return
		}
		h[i], h[m] = h[m], h[i]
		i = m
	}
}

func (w *Workspace) cursLess(a, b int32) bool {
	ca, cb := &w.curs[a], &w.curs[b]
	return ca.t < cb.t || (ca.t == cb.t && a < b)
}

// NextCompletionCompact fuses NextCompletion with compaction to maxN
// impulses — the per-task step of every completion chain. The dense kernel
// bins its accumulation window straight into the arena; other paths
// compact their result afterwards, in place when the kernel freshly
// produced it. The distinction matters when the fast paths return prev
// itself (all mass carries through, or exec is empty): prev's storage
// belongs to the caller — it may be a cached chain state other evaluations
// still read — so an over-budget pass-through is compacted into fresh
// storage instead of being mutated in place.
func (w *Workspace) NextCompletionCompact(prev, exec PMF, dl Tick, maxN int) PMF {
	return w.NextCompletionCompactPattern(prev, exec, dl, maxN, nil)
}

// NextCompletionCompactPattern is NextCompletionCompact with exec's
// precomputed occupancy pattern (Pattern). The pattern must have been
// built from this exact exec PMF; callers that chain immutable execution
// PMFs repeatedly amortize the pattern across every append.
func (w *Workspace) NextCompletionCompactPattern(prev, exec PMF, dl Tick, maxN int, pat []uint64) PMF {
	if maxN <= 0 {
		panic("pmf: non-positive impulse budget")
	}
	next := w.nextCompletion(prev, exec, dl, maxN, pat)
	if len(next.imp) <= maxN {
		return next
	}
	if len(prev.imp) == len(next.imp) && &prev.imp[0] == &next.imp[0] {
		return next.Compact(maxN)
	}
	return w.CompactTail(next, maxN)
}

// CompactTail compacts p to at most maxN impulses, preserving total mass
// exactly (see PMF.Compact). If p is the most recent allocation of this
// workspace, compaction happens in place and the freed arena space is
// reclaimed; otherwise it falls back to the portable allocating Compact.
//
// In-place compaction overwrites p's storage: it must only be applied to
// a result the caller exclusively owns (fresh kernel output), never to a
// PMF shared with other live readers — see NextCompletionCompact.
func (w *Workspace) CompactTail(p PMF, maxN int) PMF {
	if maxN <= 0 {
		panic("pmf: non-positive impulse budget")
	}
	if len(p.imp) <= maxN {
		return p
	}
	if !w.ownsTail(p) {
		return p.Compact(maxN)
	}
	out := compactInto(p.imp[:0:len(p.imp)], p.imp, maxN)
	return w.commit(w.lastOff, len(out))
}

// ownsTail reports whether p is exactly the workspace's most recent
// allocation (and therefore safe to mutate in place).
func (w *Workspace) ownsTail(p PMF) bool {
	if len(p.imp) == 0 || w.lastOff+len(p.imp) != w.used {
		return false
	}
	return &p.imp[0] == &w.block[w.lastOff]
}

// Delta returns the deterministic PMF with all mass at t, stored in the
// arena (valid until Reset).
func (w *Workspace) Delta(t Tick) PMF {
	w.ensure(1)
	base := w.used
	w.block[base] = Impulse{T: t, P: 1}
	return w.commit(base, 1)
}

// ConditionalRemainingShift is the fused availability operation of the
// calculus: it returns p.ConditionalRemaining(elapsed).Shift(now) — the
// absolute completion time of a task that has been running for elapsed
// ticks as of now — with arena storage and identical arithmetic. The
// returned PMF is valid until Reset.
func (w *Workspace) ConditionalRemainingShift(p PMF, elapsed, now Tick) PMF {
	if elapsed <= 0 {
		if p.IsZero() {
			return Zero()
		}
		w.ensure(len(p.imp))
		base := w.used
		for i, im := range p.imp {
			w.block[base+i] = Impulse{T: im.T + now, P: im.P}
		}
		return w.commit(base, len(p.imp))
	}
	w.ensure(len(p.imp))
	base := w.used
	n := 0
	mass := 0.0
	for _, im := range p.imp {
		if im.T > elapsed {
			w.block[base+n] = Impulse{T: im.T - elapsed + now, P: im.P}
			mass += im.P
			n++
		}
	}
	if mass <= massEps {
		// The task has outlived its model; assume completion on the next
		// tick (see PMF.ConditionalRemaining).
		return w.Delta(now + 1)
	}
	inv := 1 / mass
	for i := base; i < base+n; i++ {
		w.block[i].P *= inv
	}
	return w.commit(base, n)
}

// searchImpulses returns the smallest index i with imps[i].T >= t (so
// imps[:i] is the strictly-before-t prefix).
func searchImpulses(imps []Impulse, t Tick) int {
	lo, hi := 0, len(imps)
	for lo < hi {
		mid := int(uint(lo+hi) >> 1)
		if imps[mid].T < t {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	return lo
}

package pmf

import (
	"math/rand"
	"testing"
)

// This file differentially tests the workspace kernels (dense counting
// accumulation, k-way run merge, fused harvest-compaction, in-place tail
// compaction) against the naive portable implementations on randomized
// sub-probability PMFs: equal impulse times, masses within 1e-12.

// randomSubPMF builds a random sub-probability PMF with up to maxImp
// impulses spread over span ticks starting near base. Total mass is drawn
// in (0, 1]; a zero impulse count (empty PMF) is possible.
func randomSubPMF(r *rand.Rand, maxImp int, base, span Tick) PMF {
	n := r.Intn(maxImp + 1)
	imps := make([]Impulse, 0, n)
	total := r.Float64()
	if n > 0 {
		weights := make([]float64, n)
		sum := 0.0
		for i := range weights {
			weights[i] = r.Float64() + 1e-6
			sum += weights[i]
		}
		for i := range weights {
			imps = append(imps, Impulse{
				T: base + Tick(r.Int63n(int64(span))),
				P: total * weights[i] / sum,
			})
		}
	}
	return FromImpulses(imps)
}

// randomExecPMF builds a non-empty execution-time PMF. Exec operands are
// kept non-empty because the portable and workspace kernels intentionally
// differ on that degenerate input (the workspace carries every scenario
// through, see Workspace.NextCompletion; the engine only ever supplies
// mass-1 histograms).
func randomExecPMF(r *rand.Rand, maxImp int, span Tick) PMF {
	for {
		if p := randomSubPMF(r, maxImp, 1, span); !p.IsZero() {
			return p
		}
	}
}

// diffCase runs one randomized operand pair through every optimized kernel
// path and cross-checks each against its portable reference.
func diffCase(t *testing.T, r *rand.Rand, ws *Workspace, span Tick) {
	t.Helper()
	prev := randomSubPMF(r, 40, Tick(r.Int63n(500)), span)
	exec := randomExecPMF(r, 30, span/2+1)
	dl := Tick(r.Int63n(int64(span) + 500))

	wantNC := prev.NextCompletion(exec, dl)
	if got := ws.NextCompletion(prev, exec, dl); !got.ApproxEqual(wantNC, 1e-12) {
		t.Fatalf("NextCompletion mismatch (dl=%d):\n got %v\nwant %v", dl, got, wantNC)
	}

	wantCV := prev.Convolve(exec)
	if got := ws.Convolve(prev, exec); !got.ApproxEqual(wantCV, 1e-12) {
		t.Fatalf("Convolve mismatch:\n got %v\nwant %v", got, wantCV)
	}

	// Fused harvest-compaction vs naive chain step at a random budget.
	budget := 1 + r.Intn(48)
	want := wantNC.Compact(budget)
	if got := ws.NextCompletionCompact(prev, exec, dl, budget); !got.ApproxEqual(want, 1e-12) {
		t.Fatalf("NextCompletionCompact mismatch (dl=%d budget=%d):\n got %v\nwant %v", dl, budget, got, want)
	}

	// In-place tail compaction of a fresh kernel result.
	raw := ws.NextCompletion(prev, exec, dl)
	if got := ws.CompactTail(raw, budget); !got.ApproxEqual(want, 1e-12) {
		t.Fatalf("CompactTail mismatch (budget=%d):\n got %v\nwant %v", budget, got, want)
	}
}

// TestKernelDifferentialDense drives the dense accumulation path (narrow
// spans) against the portable reference.
func TestKernelDifferentialDense(t *testing.T) {
	r := rand.New(rand.NewSource(71))
	var ws Workspace
	for i := 0; i < 2000; i++ {
		diffCase(t, r, &ws, 2000)
		if i%64 == 0 {
			ws.Reset()
		}
	}
}

// TestKernelDifferentialMerge drives the k-way merge path: operand spans
// wide enough that the output span exceeds the dense window bound.
func TestKernelDifferentialMerge(t *testing.T) {
	r := rand.New(rand.NewSource(72))
	var ws Workspace
	for i := 0; i < 300; i++ {
		diffCase(t, r, &ws, 3*maxDenseSpan)
		if i%16 == 0 {
			ws.Reset()
		}
	}
}

// TestKernelDenseMergeAgree pins the two kernels against each other on the
// same operands: dense and merge accumulate equal-time contributions in
// the same order, so their outputs must be bit-identical, not just close.
func TestKernelDenseMergeAgree(t *testing.T) {
	r := rand.New(rand.NewSource(73))
	var wide, narrow Workspace
	// Shrink the merge workspace indirectly: feed operands whose output
	// span straddles the dense bound so the same call exercises dense in
	// one workspace invocation and merge in another via span choice.
	for i := 0; i < 400; i++ {
		// Narrow operands evaluated by the dense kernel...
		prev := randomSubPMF(r, 30, 100, 1500)
		exec := randomSubPMF(r, 20, 1, 400)
		dl := Tick(r.Int63n(2200))
		dense := narrow.NextCompletion(prev, exec, dl)
		// ...and the same operands forced through the merge kernel by
		// translating them far apart is not possible without changing
		// times, so instead force merge by building the cursors directly:
		wide.curs = wide.curs[:0]
		k := searchImpulses(prev.Impulses(), dl)
		if prev.IsZero() || exec.IsZero() || k == 0 {
			continue
		}
		for _, a := range prev.Impulses()[:k] {
			wide.curs = append(wide.curs, cursor{src: exec.Impulses(), shift: a.T, scale: a.P, t: exec.Impulses()[0].T + a.T})
		}
		total := k * exec.Len()
		if k < prev.Len() {
			carry := prev.Impulses()[k:]
			wide.curs = append(wide.curs, cursor{src: carry, shift: 0, scale: 1, t: carry[0].T})
			total += len(carry)
		}
		merged := wide.mergeRuns(total)
		if !merged.Equal(dense) {
			t.Fatalf("case %d: dense and merge kernels disagree (dl=%d):\ndense %v\nmerge %v", i, dl, dense, merged)
		}
		if i%16 == 0 {
			narrow.Reset()
			wide.Reset()
		}
	}
}

// FuzzNextCompletionDifferential is the fuzz-harness form of the
// differential check: the fuzzer mutates raw operand bytes which are
// decoded into sub-probability PMFs and run through both kernels.
func FuzzNextCompletionDifferential(f *testing.F) {
	f.Add(int64(1), int64(100), uint8(8), uint8(8))
	f.Add(int64(42), int64(5000), uint8(32), uint8(25))
	f.Add(int64(7), int64(1), uint8(1), uint8(0))
	f.Fuzz(func(t *testing.T, seed, dlRaw int64, nPrev, nExec uint8) {
		r := rand.New(rand.NewSource(seed))
		prev := randomSubPMF(r, int(nPrev%64), Tick(r.Int63n(300)), 3000)
		exec := randomExecPMF(r, int(nExec%64)+1, 800)
		dl := Tick(dlRaw%4000 + 1)
		if dl < 0 {
			dl = -dl
		}
		var ws Workspace
		want := prev.NextCompletion(exec, dl)
		if got := ws.NextCompletion(prev, exec, dl); !got.ApproxEqual(want, 1e-12) {
			t.Fatalf("NextCompletion mismatch (dl=%d):\n got %v\nwant %v", dl, got, want)
		}
		budget := 1 + int(nPrev%32)
		wantC := want.Compact(budget)
		if got := ws.NextCompletionCompact(prev, exec, dl, budget); !got.ApproxEqual(wantC, 1e-12) {
			t.Fatalf("NextCompletionCompact mismatch (dl=%d budget=%d):\n got %v\nwant %v", dl, budget, got, wantC)
		}
	})
}

// TestCloneIntoPinsAcrossReset exercises the pinning primitive of the
// arena memory contract: a clone of an arena-backed result must survive a
// Reset and the arena being overwritten by new work, while reusing the
// caller's buffer across pins.
func TestCloneIntoPinsAcrossReset(t *testing.T) {
	r := rand.New(rand.NewSource(75))
	var ws Workspace
	var buf []Impulse
	for i := 0; i < 50; i++ {
		prev := randomSubPMF(r, 30, 10, 1500)
		exec := randomExecPMF(r, 20, 300)
		dl := Tick(r.Int63n(2000))
		got := ws.NextCompletionCompact(prev, exec, dl, DefaultMaxImpulses)
		want := prev.NextCompletion(exec, dl).Compact(DefaultMaxImpulses)

		var pinned PMF
		pinned, buf = got.CloneInto(buf)
		if !pinned.Equal(got) {
			t.Fatalf("case %d: clone differs from original:\n got %v\nwant %v", i, pinned, got)
		}
		// Recycle the arena and scribble over it with unrelated work; the
		// pinned clone must be unaffected.
		ws.Reset()
		for j := 0; j < 4; j++ {
			_ = ws.NextCompletionCompact(randomSubPMF(r, 30, 10, 1500), randomExecPMF(r, 20, 300),
				Tick(r.Int63n(2000)), DefaultMaxImpulses)
		}
		if !pinned.ApproxEqual(want, 1e-12) {
			t.Fatalf("case %d: pinned clone corrupted after Reset:\n got %v\nwant %v", i, pinned, want)
		}
	}
}

// TestChainDifferential chains many random Eq. 1 steps through one
// workspace (as the calculus does) and cross-checks every intermediate
// against the portable chain — guarding the arena bookkeeping, not just a
// single call.
func TestChainDifferential(t *testing.T) {
	r := rand.New(rand.NewSource(74))
	var ws Workspace
	for trial := 0; trial < 100; trial++ {
		ws.Reset()
		got := Delta(Tick(r.Int63n(100)))
		want := got
		for step := 0; step < 8; step++ {
			exec := randomExecPMF(r, 25, 400)
			dl := Tick(r.Int63n(3000))
			got = ws.NextCompletionCompact(got, exec, dl, DefaultMaxImpulses)
			want = want.NextCompletion(exec, dl).Compact(DefaultMaxImpulses)
			if !got.ApproxEqual(want, 1e-12) {
				t.Fatalf("trial %d step %d (dl=%d):\n got %v\nwant %v", trial, step, dl, got, want)
			}
		}
	}
}

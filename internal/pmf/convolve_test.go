package pmf

import (
	"math"
	"math/rand"
	"testing"
)

func TestConvolveSimple(t *testing.T) {
	a := FromImpulses([]Impulse{{T: 1, P: 0.5}, {T: 2, P: 0.5}})
	b := FromImpulses([]Impulse{{T: 10, P: 0.5}, {T: 20, P: 0.5}})
	c := a.Convolve(b)
	want := FromImpulses([]Impulse{
		{T: 11, P: 0.25}, {T: 12, P: 0.25}, {T: 21, P: 0.25}, {T: 22, P: 0.25},
	})
	if !c.ApproxEqual(want, 1e-12) {
		t.Fatalf("Convolve = %v, want %v", c, want)
	}
}

func TestConvolveDeltaFastPath(t *testing.T) {
	p := FromImpulses([]Impulse{{T: 3, P: 0.4}, {T: 5, P: 0.6}})
	if got := Delta(10).Convolve(p); !got.Equal(p.Shift(10)) {
		t.Fatalf("Delta⊛p = %v", got)
	}
	if got := p.Convolve(Delta(10)); !got.Equal(p.Shift(10)) {
		t.Fatalf("p⊛Delta = %v", got)
	}
}

func TestConvolveProperties(t *testing.T) {
	r := rand.New(rand.NewSource(11))
	for i := 0; i < 200; i++ {
		a := randomPMF(r, 15, 400)
		b := randomPMF(r, 15, 400)
		c := a.Convolve(b)
		// Mass multiplies.
		if !almost(c.TotalMass(), a.TotalMass()*b.TotalMass(), 1e-9) {
			t.Fatalf("mass: %v != %v*%v", c.TotalMass(), a.TotalMass(), b.TotalMass())
		}
		// Means add (for normalized means of sub-probability PMFs this
		// still holds because every cross term scales uniformly).
		if !almost(c.Mean(), a.Mean()+b.Mean(), 1e-6) {
			t.Fatalf("mean: %v != %v+%v", c.Mean(), a.Mean(), b.Mean())
		}
		// Variances add.
		if !almost(c.Variance(), a.Variance()+b.Variance(), 1e-4) {
			t.Fatalf("variance: %v != %v+%v", c.Variance(), a.Variance(), b.Variance())
		}
		// Commutativity.
		if !c.ApproxEqual(b.Convolve(a), 1e-12) {
			t.Fatal("convolution not commutative")
		}
		// Support bounds.
		if c.Min() != a.Min()+b.Min() || c.Max() != a.Max()+b.Max() {
			t.Fatalf("support [%d,%d], want [%d,%d]", c.Min(), c.Max(), a.Min()+b.Min(), a.Max()+b.Max())
		}
	}
}

// TestNextCompletionPaperExample reproduces the worked example of Fig. 2 in
// the paper: exec(i) = {1:0.6, 2:0.4}, completion(i−1) = {10:0.6, 11:0.3,
// 12:0.05, 13:0.05}, δ_i = 13 → completion(i) = {11:0.36, 12:0.42, 13:0.20,
// 14:0.02}, chance of success 0.78.
func TestNextCompletionPaperExample(t *testing.T) {
	exec := FromImpulses([]Impulse{{T: 1, P: 0.6}, {T: 2, P: 0.4}})
	prev := FromImpulses([]Impulse{{T: 10, P: 0.6}, {T: 11, P: 0.3}, {T: 12, P: 0.05}, {T: 13, P: 0.05}})
	const dl = Tick(13)

	got := prev.NextCompletion(exec, dl)
	want := FromImpulses([]Impulse{{T: 11, P: 0.36}, {T: 12, P: 0.42}, {T: 13, P: 0.20}, {T: 14, P: 0.02}})
	if !got.ApproxEqual(want, 1e-12) {
		t.Fatalf("NextCompletion = %v, want %v", got, want)
	}
	if cos := got.MassBefore(dl); !almost(cos, 0.78, 1e-12) {
		t.Fatalf("chance of success = %v, want 0.78", cos)
	}
}

func TestNextCompletionAllCarry(t *testing.T) {
	// Deadline before every predecessor completion: the task is always
	// dropped and the PMF passes through unchanged.
	prev := FromImpulses([]Impulse{{T: 10, P: 0.7}, {T: 12, P: 0.3}})
	exec := FromImpulses([]Impulse{{T: 5, P: 1}})
	got := prev.NextCompletion(exec, 10)
	if !got.ApproxEqual(prev, 1e-12) {
		t.Fatalf("all-carry NextCompletion = %v, want %v", got, prev)
	}
}

func TestNextCompletionNoCarry(t *testing.T) {
	// Deadline after everything: plain convolution.
	prev := FromImpulses([]Impulse{{T: 10, P: 0.5}, {T: 12, P: 0.5}})
	exec := FromImpulses([]Impulse{{T: 2, P: 0.5}, {T: 4, P: 0.5}})
	got := prev.NextCompletion(exec, 1000)
	want := prev.Convolve(exec)
	if !got.ApproxEqual(want, 1e-12) {
		t.Fatalf("no-carry = %v, want convolution %v", got, want)
	}
}

func TestNextCompletionMassConservation(t *testing.T) {
	r := rand.New(rand.NewSource(12))
	for i := 0; i < 300; i++ {
		prev := randomPMF(r, 20, 600)
		exec := randomPMF(r, 10, 100).Normalize()
		dl := Tick(r.Int63n(800))
		got := prev.NextCompletion(exec, dl)
		if !almost(got.TotalMass(), prev.TotalMass(), 1e-9) {
			t.Fatalf("mass not conserved: %v -> %v (dl=%d)", prev.TotalMass(), got.TotalMass(), dl)
		}
	}
}

func TestNextCompletionSplitIdentity(t *testing.T) {
	// NextCompletion = conv(prev<dl, exec) + prev≥dl, verified piecewise.
	r := rand.New(rand.NewSource(13))
	for i := 0; i < 200; i++ {
		prev := randomPMF(r, 20, 500)
		exec := randomPMF(r, 10, 80).Normalize()
		dl := Tick(r.Int63n(600))
		var below, atOrAbove []Impulse
		for _, im := range prev.Impulses() {
			if im.T < dl {
				below = append(below, im)
			} else {
				atOrAbove = append(atOrAbove, im)
			}
		}
		want := FromImpulses(below).Convolve(exec).Add(FromImpulses(atOrAbove))
		got := prev.NextCompletion(exec, dl)
		if !got.ApproxEqual(want, 1e-9) {
			t.Fatalf("split identity failed (dl=%d):\n got %v\nwant %v", dl, got, want)
		}
	}
}

func TestConditionalRemaining(t *testing.T) {
	e := FromImpulses([]Impulse{{T: 10, P: 0.25}, {T: 20, P: 0.5}, {T: 30, P: 0.25}})

	// No elapsed time: unchanged.
	if got := e.ConditionalRemaining(0); !got.Equal(e) {
		t.Fatalf("elapsed=0 changed PMF: %v", got)
	}
	// elapsed=10 removes the first impulse and renormalizes.
	got := e.ConditionalRemaining(10)
	want := FromImpulses([]Impulse{{T: 10, P: 0.5 / 0.75}, {T: 20, P: 0.25 / 0.75}})
	if !got.ApproxEqual(want, 1e-12) {
		t.Fatalf("ConditionalRemaining(10) = %v, want %v", got, want)
	}
	// elapsed beyond the support: optimistic Delta(1).
	if got := e.ConditionalRemaining(100); !got.Equal(Delta(1)) {
		t.Fatalf("ConditionalRemaining beyond support = %v, want Delta(1)", got)
	}
}

func TestConditionalRemainingProperties(t *testing.T) {
	r := rand.New(rand.NewSource(14))
	for i := 0; i < 200; i++ {
		e := randomPMF(r, 15, 300).Normalize()
		elapsed := Tick(r.Int63n(350))
		got := e.ConditionalRemaining(elapsed)
		if !almost(got.TotalMass(), 1, 1e-9) {
			t.Fatalf("conditional mass = %v", got.TotalMass())
		}
		if got.Min() < 1 {
			t.Fatalf("remaining time %d < 1", got.Min())
		}
	}
}

func TestConvolveAssociativityApprox(t *testing.T) {
	r := rand.New(rand.NewSource(15))
	for i := 0; i < 50; i++ {
		a := randomPMF(r, 8, 100)
		b := randomPMF(r, 8, 100)
		c := randomPMF(r, 8, 100)
		left := a.Convolve(b).Convolve(c)
		right := a.Convolve(b.Convolve(c))
		if !left.ApproxEqual(right, 1e-9) {
			t.Fatal("convolution not associative")
		}
	}
}

func TestConvolveHugeMassStaysFinite(t *testing.T) {
	// Repeated self-convolution must not produce NaN/Inf.
	p := FromImpulses([]Impulse{{T: 1, P: 0.5}, {T: 2, P: 0.5}})
	acc := p
	for i := 0; i < 10; i++ {
		acc = acc.Convolve(p).Compact(DefaultMaxImpulses)
	}
	if math.IsNaN(acc.Mean()) || math.IsInf(acc.Mean(), 0) {
		t.Fatalf("mean degenerated: %v", acc.Mean())
	}
	if !almost(acc.TotalMass(), 1, 1e-9) {
		t.Fatalf("mass = %v", acc.TotalMass())
	}
}

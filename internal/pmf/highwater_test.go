package pmf

import (
	"math/rand"
	"testing"
)

// TestWorkspaceHighWater exercises the arena accounting: the high-water
// mark rises with committed impulses, survives Reset (it is a lifetime
// peak, not a live gauge), and matches used*16 bytes exactly for a known
// commit.
func TestWorkspaceHighWater(t *testing.T) {
	var ws Workspace
	if ws.HighWaterBytes() != 0 {
		t.Fatalf("fresh workspace high-water = %d", ws.HighWaterBytes())
	}

	exec := FromImpulses([]Impulse{{T: 1, P: 0.5}, {T: 2, P: 0.5}})
	prev := FromImpulses([]Impulse{{T: 10, P: 1}})
	out := ws.NextCompletion(prev, exec, 100)
	if out.Len() != 2 {
		t.Fatalf("convolution width = %d, want 2", out.Len())
	}
	hw := ws.HighWaterBytes()
	if want := int64(out.Len()) * 16; hw != want {
		t.Fatalf("high-water = %d bytes, want %d (= %d impulses)", hw, want, out.Len())
	}

	// A larger epoch raises the peak; Reset does not lower it.
	r := rand.New(rand.NewSource(7))
	acc := randomPMF(r, 25, 2000)
	for i := 0; i < 8; i++ {
		acc = ws.NextCompletionCompact(acc, randomPMF(r, 20, 400).Normalize(), 1<<30, DefaultMaxImpulses)
	}
	grown := ws.HighWaterBytes()
	if grown <= hw {
		t.Fatalf("high-water did not grow: %d -> %d", hw, grown)
	}
	ws.Reset()
	if ws.HighWaterBytes() != grown {
		t.Fatalf("Reset lowered the high-water mark: %d -> %d", grown, ws.HighWaterBytes())
	}
	// A smaller post-reset epoch keeps the old peak.
	ws.NextCompletion(prev, exec, 100)
	if ws.HighWaterBytes() != grown {
		t.Fatalf("small epoch moved the peak: %d -> %d", grown, ws.HighWaterBytes())
	}
}

package pmf

import (
	"math/rand"
	"testing"
)

// TestWorkspaceMatchesPortable cross-checks the dense-array fast path
// against the portable sort-merge implementation over many random inputs —
// the two must agree impulse for impulse.
func TestWorkspaceMatchesPortable(t *testing.T) {
	r := rand.New(rand.NewSource(21))
	var ws Workspace
	for i := 0; i < 500; i++ {
		prev := randomPMF(r, 25, 2000)
		exec := randomPMF(r, 20, 400).Normalize()
		dl := Tick(r.Int63n(2500))

		want := prev.NextCompletion(exec, dl)
		got := ws.NextCompletion(prev, exec, dl)
		if !got.ApproxEqual(want, 1e-9) {
			t.Fatalf("NextCompletion mismatch (dl=%d):\n got %v\nwant %v", dl, got, want)
		}

		wantC := prev.Convolve(exec)
		gotC := ws.Convolve(prev, exec)
		if !gotC.ApproxEqual(wantC, 1e-9) {
			t.Fatalf("Convolve mismatch:\n got %v\nwant %v", gotC, wantC)
		}
	}
}

func TestWorkspacePaperExample(t *testing.T) {
	var ws Workspace
	exec := FromImpulses([]Impulse{{T: 1, P: 0.6}, {T: 2, P: 0.4}})
	prev := FromImpulses([]Impulse{{T: 10, P: 0.6}, {T: 11, P: 0.3}, {T: 12, P: 0.05}, {T: 13, P: 0.05}})
	got := ws.NextCompletion(prev, exec, 13)
	want := FromImpulses([]Impulse{{T: 11, P: 0.36}, {T: 12, P: 0.42}, {T: 13, P: 0.20}, {T: 14, P: 0.02}})
	if !got.ApproxEqual(want, 1e-12) {
		t.Fatalf("workspace NextCompletion = %v, want %v", got, want)
	}
}

func TestWorkspaceEdgeCases(t *testing.T) {
	var ws Workspace
	p := FromImpulses([]Impulse{{T: 5, P: 0.5}, {T: 9, P: 0.5}})
	exec := FromImpulses([]Impulse{{T: 3, P: 1}})

	if got := ws.NextCompletion(Zero(), exec, 10); !got.IsZero() {
		t.Fatalf("zero prev = %v", got)
	}
	// Empty exec: everything carries (degenerate but must not panic).
	if got := ws.NextCompletion(p, Zero(), 100); !got.Equal(p) {
		t.Fatalf("zero exec = %v, want pass-through", got)
	}
	// All mass carried (deadline at/below support).
	if got := ws.NextCompletion(p, exec, 5); !got.Equal(p) {
		t.Fatalf("all-carry = %v, want %v", p, got)
	}
	// Carried impulse below prevMin+execMin: dl=6 → impulse 9 carries to 9,
	// executed path starts at 5+3=8; lo must cover both.
	got := ws.NextCompletion(p, exec, 6)
	want := FromImpulses([]Impulse{{T: 8, P: 0.5}, {T: 9, P: 0.5}})
	if !got.ApproxEqual(want, 1e-12) {
		t.Fatalf("mixed-carry = %v, want %v", got, want)
	}
}

func TestWorkspaceCarryBelowExecPath(t *testing.T) {
	// Regression: carried impulse time smaller than prevMin+execMin.
	var ws Workspace
	prev := FromImpulses([]Impulse{{T: 10, P: 0.5}, {T: 11, P: 0.5}})
	exec := FromImpulses([]Impulse{{T: 5, P: 1}})
	got := ws.NextCompletion(prev, exec, 11) // 10 executes → 15; 11 carries → 11
	want := FromImpulses([]Impulse{{T: 11, P: 0.5}, {T: 15, P: 0.5}})
	if !got.ApproxEqual(want, 1e-12) {
		t.Fatalf("got %v, want %v", got, want)
	}
}

func TestWorkspaceReuseDoesNotLeakState(t *testing.T) {
	var ws Workspace
	a := FromImpulses([]Impulse{{T: 1, P: 1}})
	b := FromImpulses([]Impulse{{T: 2, P: 1}})
	first := ws.Convolve(a, b)
	// A second, wider convolution reusing the buffer.
	c := FromImpulses([]Impulse{{T: 1, P: 0.5}, {T: 100, P: 0.5}})
	second := ws.Convolve(c, c)
	if !first.Equal(FromImpulses([]Impulse{{T: 3, P: 1}})) {
		t.Fatalf("first = %v", first)
	}
	want := FromImpulses([]Impulse{{T: 2, P: 0.25}, {T: 101, P: 0.5}, {T: 200, P: 0.25}})
	if !second.ApproxEqual(want, 1e-12) {
		t.Fatalf("second = %v, want %v", second, want)
	}
	// And the first result must be unaffected by buffer reuse.
	if !first.Equal(FromImpulses([]Impulse{{T: 3, P: 1}})) {
		t.Fatalf("first mutated after reuse: %v", first)
	}
}

func BenchmarkNextCompletionPortable(b *testing.B) {
	r := rand.New(rand.NewSource(31))
	prev := randomPMF(r, 32, 2000)
	exec := randomPMF(r, 25, 300).Normalize()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		_ = prev.NextCompletion(exec, 1500)
	}
}

func BenchmarkNextCompletionWorkspace(b *testing.B) {
	r := rand.New(rand.NewSource(31))
	prev := randomPMF(r, 32, 2000)
	exec := randomPMF(r, 25, 300).Normalize()
	var ws Workspace
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		ws.Reset()
		_ = ws.NextCompletion(prev, exec, 1500)
	}
}

func BenchmarkNextCompletionCompactWorkspace(b *testing.B) {
	r := rand.New(rand.NewSource(31))
	prev := randomPMF(r, 32, 2000)
	exec := randomPMF(r, 25, 300).Normalize()
	var ws Workspace
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		ws.Reset()
		_ = ws.NextCompletionCompact(prev, exec, 1500, DefaultMaxImpulses)
	}
}

func BenchmarkCompact(b *testing.B) {
	r := rand.New(rand.NewSource(32))
	p := randomPMF(r, 200, 5000)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		_ = p.Compact(DefaultMaxImpulses)
	}
}

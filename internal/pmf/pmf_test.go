package pmf

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func almost(a, b, tol float64) bool { return math.Abs(a-b) <= tol }

// randomPMF builds a random sub-probability PMF for property tests:
// up to maxImp impulses in [0, spread), total mass in (0, 1].
func randomPMF(r *rand.Rand, maxImp int, spread int64) PMF {
	n := 1 + r.Intn(maxImp)
	imps := make([]Impulse, n)
	total := 0.0
	for i := range imps {
		imps[i] = Impulse{T: Tick(r.Int63n(spread)), P: r.Float64() + 1e-6}
		total += imps[i].P
	}
	// Normalize to a random total mass in (0.2, 1].
	target := 0.2 + 0.8*r.Float64()
	for i := range imps {
		imps[i].P *= target / total
	}
	return FromImpulses(imps)
}

func TestFromImpulsesSortsAndMerges(t *testing.T) {
	p := FromImpulses([]Impulse{{T: 5, P: 0.25}, {T: 2, P: 0.5}, {T: 5, P: 0.25}})
	want := []Impulse{{T: 2, P: 0.5}, {T: 5, P: 0.5}}
	got := p.Impulses()
	if len(got) != len(want) {
		t.Fatalf("impulses = %v, want %v", got, want)
	}
	for i := range want {
		if got[i].T != want[i].T || !almost(got[i].P, want[i].P, 1e-12) {
			t.Fatalf("impulse %d = %v, want %v", i, got[i], want[i])
		}
	}
}

func TestFromImpulsesDropsNonPositive(t *testing.T) {
	p := FromImpulses([]Impulse{{T: 1, P: 0}, {T: 2, P: -0.5}, {T: 3, P: 0.5}})
	if p.Len() != 1 || p.Impulses()[0].T != 3 {
		t.Fatalf("got %v, want single impulse at 3", p)
	}
}

func TestDelta(t *testing.T) {
	d := Delta(7)
	if d.Len() != 1 || d.At(7) != 1 || d.TotalMass() != 1 {
		t.Fatalf("Delta(7) = %v", d)
	}
	if d.Mean() != 7 || d.Variance() != 0 {
		t.Fatalf("Delta(7) mean=%v var=%v", d.Mean(), d.Variance())
	}
}

func TestZeroPMF(t *testing.T) {
	z := Zero()
	if !z.IsZero() || z.TotalMass() != 0 || z.Len() != 0 {
		t.Fatalf("Zero() = %v", z)
	}
	if z.Mean() != 0 || z.Variance() != 0 {
		t.Fatalf("empty PMF moments should be 0")
	}
	if got := z.Convolve(Delta(3)); !got.IsZero() {
		t.Fatalf("Zero ⊛ Delta = %v, want zero", got)
	}
}

func TestAtAndMassQueries(t *testing.T) {
	p := FromImpulses([]Impulse{{T: 10, P: 0.2}, {T: 20, P: 0.3}, {T: 30, P: 0.5}})
	if got := p.At(20); got != 0.3 {
		t.Fatalf("At(20) = %v", got)
	}
	if got := p.At(15); got != 0 {
		t.Fatalf("At(15) = %v, want 0", got)
	}
	if got := p.MassBefore(20); !almost(got, 0.2, 1e-12) {
		t.Fatalf("MassBefore(20) = %v, want 0.2 (strictly before)", got)
	}
	if got := p.MassBefore(21); !almost(got, 0.5, 1e-12) {
		t.Fatalf("MassBefore(21) = %v, want 0.5", got)
	}
	if got := p.MassAtOrAfter(20); !almost(got, 0.8, 1e-12) {
		t.Fatalf("MassAtOrAfter(20) = %v, want 0.8", got)
	}
	if p.Min() != 10 || p.Max() != 30 {
		t.Fatalf("Min/Max = %d/%d", p.Min(), p.Max())
	}
}

// TestMassQueryBoundaryTicks pins the binary-searched MassBefore and
// MassAtOrAfter at every boundary: below, at, between, and above the
// impulse support, plus the empty PMF.
func TestMassQueryBoundaryTicks(t *testing.T) {
	p := FromImpulses([]Impulse{{T: 10, P: 0.2}, {T: 20, P: 0.3}, {T: 30, P: 0.5}})
	cases := []struct {
		t             Tick
		before, after float64
	}{
		{-5, 0, 1}, // far below the support
		{9, 0, 1},  // one tick below the first impulse
		{10, 0, 1}, // exactly at the first impulse (strictly-before excludes it)
		{11, 0.2, 0.8},
		{19, 0.2, 0.8},
		{20, 0.2, 0.8}, // exactly at a middle impulse
		{21, 0.5, 0.5},
		{30, 0.5, 0.5}, // exactly at the last impulse
		{31, 1, 0},     // one past the last impulse
		{1000, 1, 0},   // far above the support
	}
	for _, c := range cases {
		if got := p.MassBefore(c.t); !almost(got, c.before, 1e-12) {
			t.Errorf("MassBefore(%d) = %v, want %v", c.t, got, c.before)
		}
		if got := p.MassAtOrAfter(c.t); !almost(got, c.after, 1e-12) {
			t.Errorf("MassAtOrAfter(%d) = %v, want %v", c.t, got, c.after)
		}
	}
	var zero PMF
	if zero.MassBefore(10) != 0 || zero.MassAtOrAfter(10) != 0 {
		t.Errorf("empty PMF mass queries = %v/%v, want 0/0",
			zero.MassBefore(10), zero.MassAtOrAfter(10))
	}
}

// TestMassQueriesMatchLinearScan cross-checks the binary-searched queries
// against the straightforward linear scans on random PMFs, at random cuts
// and at every exact impulse tick and its neighbours.
func TestMassQueriesMatchLinearScan(t *testing.T) {
	linBefore := func(p PMF, cut Tick) float64 {
		s := 0.0
		for _, im := range p.Impulses() {
			if im.T >= cut {
				break
			}
			s += im.P
		}
		return s
	}
	linAtOrAfter := func(p PMF, cut Tick) float64 {
		s := 0.0
		for i := p.Len() - 1; i >= 0; i-- {
			if p.Impulses()[i].T < cut {
				break
			}
			s += p.Impulses()[i].P
		}
		return s
	}
	r := rand.New(rand.NewSource(3))
	for i := 0; i < 200; i++ {
		p := randomPMF(r, 25, 1000)
		cuts := []Tick{Tick(r.Int63n(1200)) - 100}
		for _, im := range p.Impulses() {
			cuts = append(cuts, im.T-1, im.T, im.T+1)
		}
		for _, cut := range cuts {
			if got, want := p.MassBefore(cut), linBefore(p, cut); got != want {
				t.Fatalf("MassBefore(%d) = %v, linear scan %v (pmf %v)", cut, got, want, p)
			}
			if got, want := p.MassAtOrAfter(cut), linAtOrAfter(p, cut); got != want {
				t.Fatalf("MassAtOrAfter(%d) = %v, linear scan %v (pmf %v)", cut, got, want, p)
			}
		}
	}
}

func TestMassPartitionProperty(t *testing.T) {
	r := rand.New(rand.NewSource(1))
	for i := 0; i < 200; i++ {
		p := randomPMF(r, 20, 1000)
		cut := Tick(r.Int63n(1200))
		sum := p.MassBefore(cut) + p.MassAtOrAfter(cut)
		if !almost(sum, p.TotalMass(), 1e-12) {
			t.Fatalf("partition at %d: %v + %v != %v",
				cut, p.MassBefore(cut), p.MassAtOrAfter(cut), p.TotalMass())
		}
	}
}

func TestMeanAndVariance(t *testing.T) {
	p := FromImpulses([]Impulse{{T: 1, P: 0.5}, {T: 3, P: 0.5}})
	if !almost(p.Mean(), 2, 1e-12) {
		t.Fatalf("Mean = %v, want 2", p.Mean())
	}
	if !almost(p.Variance(), 1, 1e-12) {
		t.Fatalf("Variance = %v, want 1", p.Variance())
	}
	if !almost(p.StdDev(), 1, 1e-12) {
		t.Fatalf("StdDev = %v, want 1", p.StdDev())
	}
}

func TestMeanIsMassNormalized(t *testing.T) {
	// Sub-probability PMFs report the conditional mean.
	p := FromImpulses([]Impulse{{T: 10, P: 0.1}, {T: 20, P: 0.1}})
	if !almost(p.Mean(), 15, 1e-12) {
		t.Fatalf("Mean = %v, want 15", p.Mean())
	}
}

func TestQuantile(t *testing.T) {
	p := FromImpulses([]Impulse{{T: 1, P: 0.25}, {T: 2, P: 0.25}, {T: 3, P: 0.5}})
	cases := []struct {
		q    float64
		want Tick
	}{{0.1, 1}, {0.25, 1}, {0.5, 2}, {0.75, 3}, {1.0, 3}}
	for _, c := range cases {
		if got := p.Quantile(c.q); got != c.want {
			t.Errorf("Quantile(%v) = %d, want %d", c.q, got, c.want)
		}
	}
}

func TestQuantileMonotoneProperty(t *testing.T) {
	r := rand.New(rand.NewSource(2))
	for i := 0; i < 100; i++ {
		p := randomPMF(r, 15, 500)
		q1, q2 := r.Float64(), r.Float64()
		if q1 > q2 {
			q1, q2 = q2, q1
		}
		if q1 == 0 {
			q1 = 0.01
		}
		if p.Quantile(q1) > p.Quantile(q2) {
			t.Fatalf("quantile not monotone: Q(%v)=%d > Q(%v)=%d",
				q1, p.Quantile(q1), q2, p.Quantile(q2))
		}
	}
}

func TestShift(t *testing.T) {
	p := FromImpulses([]Impulse{{T: 5, P: 0.4}, {T: 8, P: 0.6}})
	s := p.Shift(10)
	if s.Min() != 15 || s.Max() != 18 {
		t.Fatalf("Shift bounds = [%d,%d]", s.Min(), s.Max())
	}
	if !almost(s.Mean(), p.Mean()+10, 1e-12) {
		t.Fatalf("Shift mean = %v", s.Mean())
	}
	if !p.Shift(0).Equal(p) {
		t.Fatalf("Shift(0) should be identity")
	}
}

func TestScale(t *testing.T) {
	p := FromImpulses([]Impulse{{T: 1, P: 0.5}, {T: 2, P: 0.5}})
	s := p.Scale(0.5)
	if !almost(s.TotalMass(), 0.5, 1e-12) {
		t.Fatalf("Scale mass = %v", s.TotalMass())
	}
	if got := p.Scale(0); !got.IsZero() {
		t.Fatalf("Scale(0) = %v, want zero", got)
	}
	defer func() {
		if recover() == nil {
			t.Fatal("Scale(-1) should panic")
		}
	}()
	p.Scale(-1)
}

func TestAdd(t *testing.T) {
	a := FromImpulses([]Impulse{{T: 1, P: 0.2}, {T: 3, P: 0.3}})
	b := FromImpulses([]Impulse{{T: 2, P: 0.1}, {T: 3, P: 0.2}})
	sum := a.Add(b)
	if !almost(sum.TotalMass(), 0.8, 1e-12) {
		t.Fatalf("Add mass = %v", sum.TotalMass())
	}
	if !almost(sum.At(3), 0.5, 1e-12) {
		t.Fatalf("Add At(3) = %v", sum.At(3))
	}
	if !a.Add(Zero()).Equal(a) || !Zero().Add(b).Equal(b) {
		t.Fatal("Add with zero should be identity")
	}
}

func TestNormalize(t *testing.T) {
	p := FromImpulses([]Impulse{{T: 1, P: 0.2}, {T: 2, P: 0.2}})
	n := p.Normalize()
	if !almost(n.TotalMass(), 1, 1e-12) {
		t.Fatalf("Normalize mass = %v", n.TotalMass())
	}
	if !almost(n.At(1), 0.5, 1e-12) {
		t.Fatalf("Normalize At(1) = %v", n.At(1))
	}
	if !Zero().Normalize().IsZero() {
		t.Fatal("Normalize of zero should stay zero")
	}
}

func TestEqualAndApproxEqual(t *testing.T) {
	a := FromImpulses([]Impulse{{T: 1, P: 0.5}, {T: 2, P: 0.5}})
	b := FromImpulses([]Impulse{{T: 1, P: 0.5 + 1e-10}, {T: 2, P: 0.5 - 1e-10}})
	if a.Equal(b) {
		t.Fatal("Equal should be exact")
	}
	if !a.ApproxEqual(b, 1e-9) {
		t.Fatal("ApproxEqual within tolerance")
	}
	if a.ApproxEqual(b.Shift(1), 1) {
		t.Fatal("ApproxEqual must require equal times")
	}
}

func TestString(t *testing.T) {
	p := FromImpulses([]Impulse{{T: 10, P: 0.6}, {T: 11, P: 0.4}})
	if got, want := p.String(), "{10:0.600 11:0.400}"; got != want {
		t.Fatalf("String = %q, want %q", got, want)
	}
}

func TestUniform(t *testing.T) {
	u := Uniform(10, 19, 10)
	if u.Len() != 10 {
		t.Fatalf("Uniform len = %d", u.Len())
	}
	if !almost(u.TotalMass(), 1, 1e-9) {
		t.Fatalf("Uniform mass = %v", u.TotalMass())
	}
	if u.Min() != 10 || u.Max() != 19 {
		t.Fatalf("Uniform bounds [%d,%d]", u.Min(), u.Max())
	}
	if one := Uniform(5, 5, 3); one.Len() != 1 || one.Min() != 5 {
		t.Fatalf("degenerate Uniform = %v", one)
	}
}

func TestFromSamplesBasics(t *testing.T) {
	samples := []Tick{10, 10, 20, 20, 30, 30}
	p := FromSamples(samples, 3)
	if !almost(p.TotalMass(), 1, 1e-9) {
		t.Fatalf("mass = %v", p.TotalMass())
	}
	if p.Len() > 3 {
		t.Fatalf("len = %d > bins", p.Len())
	}
	if !almost(p.Mean(), 20, 0.51) {
		t.Fatalf("mean = %v, want ≈20", p.Mean())
	}
}

func TestFromSamplesClampsToOneTick(t *testing.T) {
	p := FromSamples([]Tick{0, -5, 3}, 4)
	if p.Min() < 1 {
		t.Fatalf("Min = %d, want >= 1", p.Min())
	}
}

func TestFromSamplesMeanProperty(t *testing.T) {
	err := quick.Check(func(raw []uint16, binsRaw uint8) bool {
		if len(raw) == 0 {
			return true
		}
		bins := int(binsRaw%40) + 1
		samples := make([]Tick, len(raw))
		var sum float64
		for i, v := range raw {
			s := Tick(v%5000) + 1
			samples[i] = s
			sum += float64(s)
		}
		p := FromSamples(samples, bins)
		wantMean := sum / float64(len(samples))
		// Each merge rounds to the grid: mean error ≤ 1 tick.
		return almost(p.TotalMass(), 1, 1e-9) && almost(p.Mean(), wantMean, 1.0) && p.Len() <= bins
	}, &quick.Config{MaxCount: 200})
	if err != nil {
		t.Fatal(err)
	}
}

func TestCompactPreservesMassAndMean(t *testing.T) {
	r := rand.New(rand.NewSource(3))
	for i := 0; i < 300; i++ {
		p := randomPMF(r, 60, 3000)
		budget := 4 + r.Intn(20)
		c := p.Compact(budget)
		if c.Len() > budget {
			t.Fatalf("Compact len = %d > %d", c.Len(), budget)
		}
		if !almost(c.TotalMass(), p.TotalMass(), 1e-9) {
			t.Fatalf("Compact mass %v != %v", c.TotalMass(), p.TotalMass())
		}
		// Merged impulses sit at mass-weighted means rounded to the grid;
		// each bin shifts the global mean by at most half a bin width + 1.
		span := float64(p.Max() - p.Min() + 1)
		tol := span/float64(budget) + 1
		if !almost(c.Mean(), p.Mean(), tol) {
			t.Fatalf("Compact mean %v vs %v (tol %v)", c.Mean(), p.Mean(), tol)
		}
		if c.Min() < p.Min() || c.Max() > p.Max() {
			t.Fatalf("Compact support [%d,%d] escapes [%d,%d]", c.Min(), c.Max(), p.Min(), p.Max())
		}
	}
}

func TestCompactNoOpWithinBudget(t *testing.T) {
	p := FromImpulses([]Impulse{{T: 1, P: 0.3}, {T: 2, P: 0.7}})
	if got := p.Compact(5); !got.Equal(p) {
		t.Fatalf("Compact within budget changed PMF: %v", got)
	}
}

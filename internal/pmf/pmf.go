// Package pmf implements sparse probability mass functions (PMFs) over a
// discrete integer time grid, together with the completion-time calculus the
// task-dropping model is built on.
//
// A PMF is a finite set of impulses (t, p): the probability that the modeled
// random variable (an execution or completion time) equals tick t is p.
// PMFs are allowed to carry total mass below 1 ("sub-probability" PMFs);
// they arise naturally during the deadline-truncated convolution of Eq. 1 in
// the paper, where part of the mass of a completion time represents
// scenarios in which a task was reactively dropped.
//
// The zero value of PMF is the empty PMF (no impulses, zero mass).
package pmf

import (
	"fmt"
	"math"
	"sort"
	"strings"
)

// Tick is a point on the discrete simulation time grid. One tick is one
// millisecond throughout this repository.
type Tick int64

// Impulse is a single probability mass point: P(X == T) = P.
type Impulse struct {
	T Tick
	P float64
}

// PMF is a discrete probability mass function with impulses sorted by
// strictly increasing time. All impulse masses are positive. Total mass is
// at most 1 (up to floating-point error).
type PMF struct {
	imp []Impulse
}

// massEps is the smallest impulse mass worth tracking. Impulses below this
// threshold are discarded during construction and compaction; the discarded
// mass is negligible relative to the 1e-9 tolerances used by callers.
const massEps = 1e-12

// FromImpulses builds a PMF from the given impulses. Impulses may be
// unsorted and may contain duplicate times (masses at equal times are
// summed). Impulses with non-positive mass are dropped. The input slice is
// not retained.
func FromImpulses(imps []Impulse) PMF {
	cp := make([]Impulse, 0, len(imps))
	for _, im := range imps {
		if im.P > massEps {
			cp = append(cp, im)
		}
	}
	sort.Slice(cp, func(i, j int) bool { return cp[i].T < cp[j].T })
	// Merge duplicates in place.
	out := cp[:0]
	for _, im := range cp {
		if n := len(out); n > 0 && out[n-1].T == im.T {
			out[n-1].P += im.P
		} else {
			out = append(out, im)
		}
	}
	return PMF{imp: out}
}

// Delta returns the deterministic PMF with all mass at t.
func Delta(t Tick) PMF {
	return PMF{imp: []Impulse{{T: t, P: 1}}}
}

// Zero returns the empty PMF (no impulses, zero total mass).
func Zero() PMF { return PMF{} }

// Len reports the number of impulses.
func (p PMF) Len() int { return len(p.imp) }

// IsZero reports whether the PMF carries no mass.
func (p PMF) IsZero() bool { return len(p.imp) == 0 }

// Impulses returns the impulses in ascending time order. The returned slice
// is shared with the PMF and must not be modified.
func (p PMF) Impulses() []Impulse { return p.imp }

// Rank returns the number of impulses with time at or before t. For an
// execution-time PMF and an elapsed running time it is the conditioning
// cut of ConditionalRemainingShift: the impulses the condition T > elapsed
// removes. The cut (not the clock) is what determines the bit pattern of a
// conditional availability, which is how the persistent chain cache knows
// a cached root is still exact.
func (p PMF) Rank(t Tick) int { return searchImpulses(p.imp, t+1) }

// At returns the mass at exactly tick t (zero if no impulse there).
func (p PMF) At(t Tick) float64 {
	i := searchImpulses(p.imp, t)
	if i < len(p.imp) && p.imp[i].T == t {
		return p.imp[i].P
	}
	return 0
}

// TotalMass returns the sum of all impulse masses.
func (p PMF) TotalMass() float64 {
	s := 0.0
	for _, im := range p.imp {
		s += im.P
	}
	return s
}

// MassBefore returns the probability mass strictly before tick t.
// This is the "chance of success" of Eq. 2 when t is a deadline.
// The boundary index is located by binary search; only the in-range
// impulses are touched.
func (p PMF) MassBefore(t Tick) float64 {
	s := 0.0
	for _, im := range p.imp[:searchImpulses(p.imp, t)] {
		s += im.P
	}
	return s
}

// MassAtOrAfter returns the probability mass at or after tick t. The
// summation runs latest-impulse-first, matching the historical scan order
// bit for bit.
func (p PMF) MassAtOrAfter(t Tick) float64 {
	s := 0.0
	tail := p.imp[searchImpulses(p.imp, t):]
	for i := len(tail) - 1; i >= 0; i-- {
		s += tail[i].P
	}
	return s
}

// Min returns the earliest impulse time. It panics on an empty PMF.
func (p PMF) Min() Tick {
	if len(p.imp) == 0 {
		panic("pmf: Min of empty PMF")
	}
	return p.imp[0].T
}

// Max returns the latest impulse time. It panics on an empty PMF.
func (p PMF) Max() Tick {
	if len(p.imp) == 0 {
		panic("pmf: Max of empty PMF")
	}
	return p.imp[len(p.imp)-1].T
}

// Mean returns the expected value E[X] normalized by the total mass, i.e.
// the conditional mean given that the event occurs. Returns 0 for an empty
// PMF.
func (p PMF) Mean() float64 {
	var sum, mass float64
	for _, im := range p.imp {
		sum += float64(im.T) * im.P
		mass += im.P
	}
	if mass == 0 {
		return 0
	}
	return sum / mass
}

// Variance returns the variance of the mass-normalized distribution.
func (p PMF) Variance() float64 {
	m := p.Mean()
	var sum, mass float64
	for _, im := range p.imp {
		d := float64(im.T) - m
		sum += d * d * im.P
		mass += im.P
	}
	if mass == 0 {
		return 0
	}
	return sum / mass
}

// StdDev returns the standard deviation of the mass-normalized distribution.
func (p PMF) StdDev() float64 { return math.Sqrt(p.Variance()) }

// Quantile returns the smallest tick t such that the normalized cumulative
// mass up to and including t is at least q, with q in (0, 1]. It panics on
// an empty PMF.
func (p PMF) Quantile(q float64) Tick {
	if len(p.imp) == 0 {
		panic("pmf: Quantile of empty PMF")
	}
	total := p.TotalMass()
	target := q * total
	cum := 0.0
	for _, im := range p.imp {
		cum += im.P
		if cum >= target-massEps {
			return im.T
		}
	}
	return p.imp[len(p.imp)-1].T
}

// Shift returns the PMF translated by dt ticks.
func (p PMF) Shift(dt Tick) PMF {
	if len(p.imp) == 0 || dt == 0 {
		return p
	}
	out := make([]Impulse, len(p.imp))
	for i, im := range p.imp {
		out[i] = Impulse{T: im.T + dt, P: im.P}
	}
	return PMF{imp: out}
}

// Scale returns the PMF with every mass multiplied by f (f ≥ 0). Scaling by
// zero yields the empty PMF.
func (p PMF) Scale(f float64) PMF {
	if f < 0 {
		panic("pmf: negative scale factor")
	}
	out := make([]Impulse, 0, len(p.imp))
	for _, im := range p.imp {
		if q := im.P * f; q > massEps {
			out = append(out, Impulse{T: im.T, P: q})
		}
	}
	return PMF{imp: out}
}

// Add returns the pointwise sum of the two PMFs' masses. The result may
// have total mass above 1; callers use Add to accumulate mixture components
// and are responsible for the final mass being a valid (sub-)probability.
func (p PMF) Add(q PMF) PMF {
	if p.IsZero() {
		return q
	}
	if q.IsZero() {
		return p
	}
	out := make([]Impulse, 0, len(p.imp)+len(q.imp))
	i, j := 0, 0
	for i < len(p.imp) && j < len(q.imp) {
		switch {
		case p.imp[i].T < q.imp[j].T:
			out = append(out, p.imp[i])
			i++
		case p.imp[i].T > q.imp[j].T:
			out = append(out, q.imp[j])
			j++
		default:
			out = append(out, Impulse{T: p.imp[i].T, P: p.imp[i].P + q.imp[j].P})
			i++
			j++
		}
	}
	out = append(out, p.imp[i:]...)
	out = append(out, q.imp[j:]...)
	return PMF{imp: out}
}

// Normalize returns the PMF rescaled to total mass 1. Returns the empty PMF
// unchanged.
func (p PMF) Normalize() PMF {
	m := p.TotalMass()
	if m == 0 || math.Abs(m-1) < massEps {
		return p
	}
	return p.Scale(1 / m)
}

// CloneInto copies p's impulses into buf (reusing its capacity when
// sufficient) and returns both the copy and the possibly-grown buffer for
// the caller to reuse. It is the pinning operation of the calculus' memory
// contract: results that alias workspace arena memory are only valid until
// the next recycle, so a caller caching one across decisions clones it
// into storage it owns.
func (p PMF) CloneInto(buf []Impulse) (PMF, []Impulse) {
	buf = append(buf[:0], p.imp...)
	return PMF{imp: buf}, buf
}

// Equal reports exact equality of impulse lists.
func (p PMF) Equal(q PMF) bool {
	if len(p.imp) != len(q.imp) {
		return false
	}
	for i := range p.imp {
		if p.imp[i] != q.imp[i] {
			return false
		}
	}
	return true
}

// ApproxEqual reports whether the two PMFs have the same impulse times and
// masses within tol.
func (p PMF) ApproxEqual(q PMF, tol float64) bool {
	if len(p.imp) != len(q.imp) {
		return false
	}
	for i := range p.imp {
		if p.imp[i].T != q.imp[i].T || math.Abs(p.imp[i].P-q.imp[i].P) > tol {
			return false
		}
	}
	return true
}

// String renders the PMF compactly, e.g. "{10:0.600 11:0.400}".
func (p PMF) String() string {
	var b strings.Builder
	b.WriteByte('{')
	for i, im := range p.imp {
		if i > 0 {
			b.WriteByte(' ')
		}
		fmt.Fprintf(&b, "%d:%.3f", im.T, im.P)
	}
	b.WriteByte('}')
	return b.String()
}

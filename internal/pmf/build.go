package pmf

import "sort"

// FromSamples discretizes empirical duration samples into a PMF with at
// most bins impulses, mirroring §V-A of the paper ("we applied a histogram
// to discretize the result and produce PMFs"). Each histogram bin
// contributes one impulse at the bin's mass-weighted mean sample, so the
// PMF mean matches the sample mean up to rounding. Non-positive samples are
// clamped to one tick (a task always takes at least one tick). It panics if
// no samples are given.
func FromSamples(samples []Tick, bins int) PMF {
	if len(samples) == 0 {
		panic("pmf: FromSamples with no samples")
	}
	if bins <= 0 {
		panic("pmf: FromSamples with non-positive bin count")
	}
	cp := make([]Tick, len(samples))
	for i, s := range samples {
		if s < 1 {
			s = 1
		}
		cp[i] = s
	}
	sort.Slice(cp, func(i, j int) bool { return cp[i] < cp[j] })

	lo, hi := cp[0], cp[len(cp)-1]
	span := hi - lo + 1
	width := span / Tick(bins)
	if span%Tick(bins) != 0 {
		width++
	}
	if width < 1 {
		width = 1
	}
	per := 1 / float64(len(cp))
	out := make([]Impulse, 0, bins)
	var (
		curBin   Tick = -1
		mass     float64
		weighted float64
	)
	flush := func() {
		if mass > 0 {
			out = append(out, Impulse{T: Tick(weighted/mass + 0.5), P: mass})
		}
		mass, weighted = 0, 0
	}
	for _, s := range cp {
		bin := (s - lo) / width
		if bin != curBin {
			flush()
			curBin = bin
		}
		mass += per
		weighted += float64(s) * per
	}
	flush()
	return FromImpulses(out)
}

// Uniform returns a PMF with n equally likely impulses spanning [lo, hi]
// inclusive. It panics if n < 1 or hi < lo.
func Uniform(lo, hi Tick, n int) PMF {
	if n < 1 {
		panic("pmf: Uniform with n < 1")
	}
	if hi < lo {
		panic("pmf: Uniform with hi < lo")
	}
	if n == 1 || hi == lo {
		return Delta((lo + hi) / 2)
	}
	imps := make([]Impulse, n)
	step := float64(hi-lo) / float64(n-1)
	p := 1 / float64(n)
	for i := range imps {
		imps[i] = Impulse{T: lo + Tick(float64(i)*step+0.5), P: p}
	}
	return FromImpulses(imps)
}

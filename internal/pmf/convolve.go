package pmf

import "sort"

// Convolve returns the distribution of X+Y for independent X ~ p and Y ~ q.
// Total mass of the result is the product of the input masses.
func (p PMF) Convolve(q PMF) PMF {
	if p.IsZero() || q.IsZero() {
		return Zero()
	}
	// Fast paths for deterministic operands.
	if len(p.imp) == 1 && p.imp[0].P == 1 {
		return q.Shift(p.imp[0].T)
	}
	if len(q.imp) == 1 && q.imp[0].P == 1 {
		return p.Shift(q.imp[0].T)
	}
	acc := newAccumulator(len(p.imp) * len(q.imp))
	for _, a := range p.imp {
		for _, b := range q.imp {
			acc.add(a.T+b.T, a.P*b.P)
		}
	}
	return acc.finish()
}

// NextCompletion implements Eq. 1 of the paper: given the completion-time
// PMF of the predecessor task (the receiver, c_{i-1}) and the execution-time
// PMF of the pending task (exec, e_i) with hard deadline dl (δ_i), it
// returns the completion-time PMF of the pending task, c_i.
//
// Semantics: if the predecessor completes at tick k < dl, the task starts
// and completes at k + e (e drawn from exec). If the predecessor completes
// at k ≥ dl, the task is reactively dropped — its execution contributes
// zero time, and the predecessor's completion mass carries through
// unchanged. Total mass is preserved (assuming exec has mass 1).
func (p PMF) NextCompletion(exec PMF, dl Tick) PMF {
	if p.IsZero() {
		return Zero()
	}
	acc := newAccumulator(len(p.imp) * (exec.Len() + 1))
	for _, a := range p.imp {
		if a.T < dl {
			for _, b := range exec.imp {
				acc.add(a.T+b.T, a.P*b.P)
			}
		} else {
			acc.add(a.T, a.P)
		}
	}
	return acc.finish()
}

// ConditionalRemaining returns the distribution of the remaining execution
// time of a task that has already been running for `elapsed` ticks:
// P(X − elapsed = r | X > elapsed), normalized to mass 1.
//
// If the task has outlived every impulse of its execution-time model (no
// conditioning mass remains), the model has been proven wrong by
// observation; we return Delta(1), i.e. "completes on the next tick", the
// most optimistic consistent belief.
func (p PMF) ConditionalRemaining(elapsed Tick) PMF {
	if elapsed <= 0 {
		return p
	}
	var tail []Impulse
	mass := 0.0
	for _, im := range p.imp {
		if im.T > elapsed {
			tail = append(tail, Impulse{T: im.T - elapsed, P: im.P})
			mass += im.P
		}
	}
	if mass <= massEps {
		return Delta(1)
	}
	inv := 1 / mass
	for i := range tail {
		tail[i].P *= inv
	}
	return PMF{imp: tail}
}

// accumulator gathers (time, mass) contributions and merges them into a
// sorted PMF. It collects into a slice and sort-merges once at the end,
// which profiles faster than a map for the impulse counts seen here.
type accumulator struct {
	buf []Impulse
}

func newAccumulator(capHint int) *accumulator {
	return &accumulator{buf: make([]Impulse, 0, capHint)}
}

func (a *accumulator) add(t Tick, p float64) {
	if p > 0 {
		a.buf = append(a.buf, Impulse{T: t, P: p})
	}
}

func (a *accumulator) finish() PMF {
	if len(a.buf) == 0 {
		return Zero()
	}
	sort.Slice(a.buf, func(i, j int) bool { return a.buf[i].T < a.buf[j].T })
	out := a.buf[:0]
	for _, im := range a.buf {
		if n := len(out); n > 0 && out[n-1].T == im.T {
			out[n-1].P += im.P
		} else {
			out = append(out, im)
		}
	}
	// Drop negligible impulses produced by repeated convolution.
	clean := out[:0]
	for _, im := range out {
		if im.P > massEps {
			clean = append(clean, im)
		}
	}
	return PMF{imp: clean}
}

package pmf

// DefaultMaxImpulses is the impulse budget used by the completion-time
// calculus. The paper (§IV-F) observes that the impulse count produced by
// convolution stays far below the |N1|·|N2| worst case; bounding it keeps
// every convolution O(N²) for a small constant N while preserving total
// mass exactly and distribution shape closely.
const DefaultMaxImpulses = 32

// Compact returns a PMF with at most maxN impulses that preserves the total
// mass exactly and the mean approximately (each merge places the combined
// impulse at the mass-weighted mean time, rounded to the grid).
//
// The reduction partitions the time span into maxN equal-width windows and
// merges the impulses within each window. If the PMF already fits the
// budget it is returned unchanged.
func (p PMF) Compact(maxN int) PMF {
	if maxN <= 0 {
		panic("pmf: non-positive impulse budget")
	}
	if len(p.imp) <= maxN {
		return p
	}
	return PMF{imp: compactInto(make([]Impulse, 0, maxN), p.imp, maxN)}
}

// compactInto performs the windowed merge of Compact, appending the result
// to the empty slice dst. dst may alias src[:0] (in-place compaction):
// every completed window consumed at least one source impulse before its
// merged impulse is written, so writes never overtake reads.
func compactInto(dst, src []Impulse, maxN int) []Impulse {
	lo, hi := src[0].T, src[len(src)-1].T
	span := hi - lo + 1
	width := span / Tick(maxN)
	if span%Tick(maxN) != 0 {
		width++
	}
	if width < 1 {
		width = 1
	}
	var (
		mass     float64
		weighted float64
	)
	flush := func() {
		if mass > massEps {
			t := Tick(weighted/mass + 0.5)
			dst = append(dst, Impulse{T: t, P: mass})
		}
		mass, weighted = 0, 0
	}
	// src is time-sorted, so the window index is non-decreasing: tracking
	// the next window boundary needs one division per window change
	// instead of one per impulse.
	nextBound := lo // the first impulse (at lo) always opens a window
	for _, im := range src {
		if im.T >= nextBound {
			flush()
			nextBound = lo + ((im.T-lo)/width+1)*width
		}
		mass += im.P
		weighted += float64(im.T) * im.P
	}
	flush()
	// Windowed merging can still round two adjacent bins to the same tick;
	// fold duplicates.
	merged := dst[:0]
	for _, im := range dst {
		if n := len(merged); n > 0 && merged[n-1].T == im.T {
			merged[n-1].P += im.P
		} else {
			merged = append(merged, im)
		}
	}
	return merged
}

package journal

import (
	"bufio"
	"encoding/binary"
	"fmt"
	"hash/crc32"
	"io"
	"os"
	"sync"
	"sync/atomic"
	"time"
)

// SyncPolicy decides when appended records are fdatasynced to stable
// storage. See ParseSyncPolicy for the spec strings.
type SyncPolicy uint8

// The three durability policies.
const (
	// SyncAlways fsyncs inside every Commit, before the decision is
	// acknowledged: a power loss can never cost an acked decision.
	SyncAlways SyncPolicy = iota
	// SyncInterval flushes on every Commit and fsyncs on a background
	// interval: a power loss costs at most the last interval's decisions;
	// an OS crash-free process kill costs nothing (the flush reached the
	// page cache).
	SyncInterval
	// SyncNever flushes on every Commit and never fsyncs; the OS page
	// cache writes back on its own schedule.
	SyncNever
)

// String implements fmt.Stringer.
func (p SyncPolicy) String() string {
	switch p {
	case SyncAlways:
		return "always"
	case SyncInterval:
		return "interval"
	case SyncNever:
		return "never"
	default:
		return fmt.Sprintf("SyncPolicy(%d)", uint8(p))
	}
}

// ParseSyncPolicy resolves a policy spec: "always", "interval" or
// "never".
func ParseSyncPolicy(s string) (SyncPolicy, error) {
	switch s {
	case "always":
		return SyncAlways, nil
	case "interval":
		return SyncInterval, nil
	case "never":
		return SyncNever, nil
	default:
		return 0, fmt.Errorf("journal: unknown fsync policy %q (want always, interval or never)", s)
	}
}

// WriterOptions tunes a Writer.
type WriterOptions struct {
	// Policy is the fsync policy (default SyncAlways).
	Policy SyncPolicy
	// Interval is the background fsync period under SyncInterval
	// (default 100ms).
	Interval time.Duration
	// OnFsync, when set, observes the duration of every fdatasync — the
	// service feeds its fsync-latency histogram through it. Called from
	// the committing goroutine (SyncAlways) or the background syncer
	// (SyncInterval); implementations must be concurrency-safe.
	OnFsync func(time.Duration)
}

// Writer appends framed records to a shard's segmented WAL. It is owned
// by one goroutine (the shard's decision loop): Append, Commit,
// Checkpoint and Close must not race each other. The background interval
// syncer is the only concurrent toucher and is synchronized internally.
type Writer struct {
	dir  string
	opts WriterOptions

	// fmu guards f against the interval syncer: rotation and close swap
	// or nil the file while the syncer may be fsyncing it.
	fmu sync.Mutex
	f   *os.File

	bw  *bufio.Writer
	seg int
	// recsInSeg counts records appended to the current segment — the
	// snapshot cadence is measured in records, not bytes, because replay
	// cost scales with records.
	recsInSeg int
	buf       []byte

	appended atomic.Int64 // records appended (flushed or not)
	durable  atomic.Int64 // records covered by the last completed fsync
	fsyncs   atomic.Int64
	bytes    atomic.Int64
	snaps    atomic.Int64
	closed   chan struct{}
	syncDone chan struct{}

	// err latches the first append/flush/sync failure: a WAL with a lost
	// write must not silently keep acknowledging decisions.
	err error
}

// OpenWriter opens (or creates) a shard log directory for appending. An
// existing log is continued: the writer scans the last segment, truncates
// any torn tail left by a crash, and appends after the last valid record.
// Call Recover first to rebuild state from the log — opening the writer
// does not replay anything.
func OpenWriter(dir string, opts WriterOptions) (*Writer, error) {
	if opts.Interval <= 0 {
		opts.Interval = 100 * time.Millisecond
	}
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, err
	}
	segs, err := Segments(dir)
	if err != nil {
		return nil, err
	}
	snaps, err := Snapshots(dir)
	if err != nil {
		return nil, err
	}
	w := &Writer{dir: dir, opts: opts, closed: make(chan struct{}), syncDone: make(chan struct{})}

	// The appending segment is the last one on disk; a snapshot written
	// without its successor segment (crash between snapshot and rotation)
	// starts the successor now.
	w.seg = 0
	if n := len(segs); n > 0 {
		w.seg = segs[n-1]
	}
	if n := len(snaps); n > 0 && snaps[n-1] >= w.seg {
		w.seg = snaps[n-1] + 1
	}

	path := SegmentPath(dir, w.seg)
	f, err := os.OpenFile(path, os.O_CREATE|os.O_RDWR, 0o644)
	if err != nil {
		return nil, err
	}
	// Truncate a torn tail so appends continue at a record boundary.
	valid, nrec, err := scanValidPrefix(f)
	if err != nil {
		f.Close()
		return nil, err
	}
	if err := f.Truncate(valid); err != nil {
		f.Close()
		return nil, err
	}
	if _, err := f.Seek(valid, io.SeekStart); err != nil {
		f.Close()
		return nil, err
	}
	w.f = f
	w.bw = bufio.NewWriterSize(f, 64<<10)
	w.recsInSeg = nrec
	syncDir(dir)

	if opts.Policy == SyncInterval {
		go w.syncLoop()
	} else {
		close(w.syncDone)
	}
	return w, nil
}

// Dir returns the log directory.
func (w *Writer) Dir() string { return w.dir }

// Segment returns the index of the segment currently being appended.
func (w *Writer) Segment() int { return w.seg }

// RecordsInSegment returns the number of records in the current segment —
// the tail a crash right now would replay.
func (w *Writer) RecordsInSegment() int { return w.recsInSeg }

// Appended returns the total records appended through this writer.
func (w *Writer) Appended() int64 { return w.appended.Load() }

// Lag returns the number of appended records not yet covered by a
// completed fsync — the journal's durability lag. Zero under SyncAlways
// (between commits); grows with the interval under SyncInterval; counts
// everything appended under SyncNever.
func (w *Writer) Lag() int64 { return w.appended.Load() - w.durable.Load() }

// Fsyncs returns the number of completed fdatasyncs.
func (w *Writer) Fsyncs() int64 { return w.fsyncs.Load() }

// Bytes returns the total bytes appended.
func (w *Writer) Bytes() int64 { return w.bytes.Load() }

// Checkpoints returns the number of snapshots written.
func (w *Writer) Checkpoints() int64 { return w.snaps.Load() }

// Err returns the writer's latched failure, if any.
func (w *Writer) Err() error { return w.err }

// Append buffers one record. Records become readable by a concurrent
// scan only after Commit and durable per the sync policy.
func (w *Writer) Append(r *Record) error {
	if w.err != nil {
		return w.err
	}
	w.buf = AppendRecord(w.buf[:0], r)
	n, err := w.bw.Write(w.buf)
	w.bytes.Add(int64(n))
	if err != nil {
		w.err = fmt.Errorf("journal: append: %w", err)
		return w.err
	}
	w.recsInSeg++
	w.appended.Add(1)
	return nil
}

// Commit makes everything appended so far crash-safe per the sync
// policy: flush to the OS always, plus an inline fdatasync under
// SyncAlways. The admission loop calls Commit after journaling a decide
// sub-batch and before acknowledging it.
func (w *Writer) Commit() error {
	if w.err != nil {
		return w.err
	}
	if err := w.bw.Flush(); err != nil {
		w.err = fmt.Errorf("journal: flush: %w", err)
		return w.err
	}
	if w.opts.Policy == SyncAlways {
		if err := w.fsync(); err != nil {
			w.err = err
			return w.err
		}
	}
	return nil
}

// fsync pins the current file's written data and accounts it.
func (w *Writer) fsync() error {
	mark := w.appended.Load()
	w.fmu.Lock()
	f := w.f
	var err error
	start := time.Now()
	if f != nil {
		err = f.Sync()
	}
	d := time.Since(start)
	w.fmu.Unlock()
	if err != nil {
		return fmt.Errorf("journal: fsync: %w", err)
	}
	w.fsyncs.Add(1)
	if mark > w.durable.Load() {
		w.durable.Store(mark)
	}
	if w.opts.OnFsync != nil {
		w.opts.OnFsync(d)
	}
	return nil
}

// syncLoop is the SyncInterval background syncer. It only ever syncs
// data the loop already flushed; records still in the bufio buffer wait
// for the next Commit.
func (w *Writer) syncLoop() {
	defer close(w.syncDone)
	t := time.NewTicker(w.opts.Interval)
	defer t.Stop()
	for {
		select {
		case <-w.closed:
			return
		case <-t.C:
			if w.durable.Load() < w.appended.Load() {
				_ = w.fsync() // the next Commit surfaces persistent failures
			}
		}
	}
}

// Checkpoint writes the caller's snapshot payload as snapshot K (K = the
// current segment), then rotates to segment K+1. The sequence is
// crash-ordered: the old segment is flushed and fsynced before the
// snapshot, the snapshot is written to a temp file, fsynced and renamed,
// and only then does the new segment open — so at every instant the
// directory holds a consistent (snapshot, tail) pair.
func (w *Writer) Checkpoint(payload []byte) error {
	if w.err != nil {
		return w.err
	}
	if err := w.bw.Flush(); err != nil {
		w.err = fmt.Errorf("journal: flush: %w", err)
		return w.err
	}
	if err := w.fsync(); err != nil {
		w.err = err
		return w.err
	}

	if err := writeSnapshotFile(w.dir, w.seg, payload); err != nil {
		w.err = err
		return w.err
	}
	w.snaps.Add(1)

	// Rotate.
	next, err := os.OpenFile(SegmentPath(w.dir, w.seg+1), os.O_CREATE|os.O_TRUNC|os.O_WRONLY, 0o644)
	if err != nil {
		w.err = fmt.Errorf("journal: rotate: %w", err)
		return w.err
	}
	w.fmu.Lock()
	old := w.f
	w.f = next
	w.fmu.Unlock()
	_ = old.Close()
	w.bw.Reset(next)
	w.seg++
	w.recsInSeg = 0
	syncDir(w.dir)
	return nil
}

// writeSnapshotFile frames payload (length + CRC, same framing as WAL
// records) into snap-<seg> via a fsynced temp-and-rename.
func writeSnapshotFile(dir string, seg int, payload []byte) error {
	if len(payload) > maxSnapshotPayload {
		return fmt.Errorf("journal: snapshot payload %d bytes exceeds %d", len(payload), maxSnapshotPayload)
	}
	tmp, err := os.CreateTemp(dir, "snap-*.tmp")
	if err != nil {
		return err
	}
	defer os.Remove(tmp.Name())
	var hdr [frameHeader]byte
	binary.LittleEndian.PutUint32(hdr[:], uint32(len(payload)))
	binary.LittleEndian.PutUint32(hdr[4:], crc32.Checksum(payload, crcTable))
	if _, err := tmp.Write(hdr[:]); err == nil {
		_, err = tmp.Write(payload)
	}
	if err == nil {
		err = tmp.Sync()
	}
	if cerr := tmp.Close(); err == nil {
		err = cerr
	}
	if err != nil {
		return fmt.Errorf("journal: snapshot write: %w", err)
	}
	if err := os.Rename(tmp.Name(), SnapshotPath(dir, seg)); err != nil {
		return fmt.Errorf("journal: snapshot rename: %w", err)
	}
	syncDir(dir)
	return nil
}

// Close flushes, fsyncs (under any policy — closing is the final commit)
// and stops the background syncer.
func (w *Writer) Close() error {
	select {
	case <-w.closed:
		return w.err
	default:
	}
	close(w.closed)
	<-w.syncDone
	ferr := w.bw.Flush()
	serr := w.fsync()
	w.fmu.Lock()
	cerr := w.f.Close()
	w.f = nil
	w.fmu.Unlock()
	for _, err := range []error{ferr, serr, cerr} {
		if err != nil && w.err == nil {
			w.err = err
		}
	}
	return w.err
}

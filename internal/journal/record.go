package journal

import (
	"encoding/binary"
	"fmt"
	"hash/crc32"

	"github.com/hpcclab/taskdrop/internal/pmf"
)

// Kind discriminates journal records.
type Kind uint8

// Record kinds. The numeric values are the on-disk format; never reorder.
const (
	// KindBatch marks a decide sub-batch boundary: NTasks arrivals follow.
	// Replay counts one shard request per batch record. ID optionally
	// carries the request's idempotent decision ID (an encoding-level
	// trailing field: absent in logs written before decision IDs existed),
	// which lets recovery re-seed the server's dedup window so a retried
	// request straddling a crash still gets its original decisions back.
	KindBatch Kind = 1
	// KindArrive is one admitted arrival: the cluster-wide sequence number
	// and the full task (type, arrival, deadline, realized execution times,
	// optional client label). Arrive records alone drive recovery — the
	// shard engine is deterministic, so re-feeding them reconstructs every
	// queue, clock and pending decision.
	KindArrive Kind = 2
	// KindDecision is the admission outcome the shard acknowledged for one
	// arrival: action, shard-local machine (-1 when unmapped) and the shard
	// clock after the decision. Redundant given the arrives (replay
	// re-derives it) — which is exactly what makes the log auditable:
	// hcreplay -verify recomputes and compares.
	KindDecision Kind = 3
	// KindEvent is a terminal task transition after admission: completion
	// (on time or late), failure, or a reactive/proactive drop, with the
	// tick it happened at. Seq is the task's cluster-wide sequence number;
	// Action carries the sim.Status code.
	KindEvent Kind = 4
	// KindDrain marks a graceful drain: the shard ran its queued work to
	// completion at Tick and wrote a final snapshot. A log ending in a
	// drain record never needs tail replay.
	KindDrain Kind = 5
	// KindTrace is the observational stage timing of one sampled decision
	// (internal/telemetry): per-stage [start, end) wall-clock offsets in
	// nanoseconds from the decision's request receipt. Purely diagnostic —
	// wall time is not derivable from replay, so recovery ignores these
	// records and hcreplay -verify skips them; the audit mode prints them
	// next to the replayed decision.
	KindTrace Kind = 6
	// KindMembership is one runtime membership change applied to the shard
	// engine between arrivals: Action carries the op (MemberAdd /
	// MemberRemove / MemberRevive), Machine the shard-local machine index
	// (for adds, the index the new machine was assigned), Type the machine
	// type (adds only), NTasks the remove handoff flag (1 = pending queue
	// handed back to the batch, 0 = force-dropped), and Tick the shard
	// clock the op executed at. Membership records are replay *inputs* like
	// arrives — recovery and hcreplay -verify re-apply them to the engine
	// at the recorded point, re-deriving the decision stream across churn.
	KindMembership Kind = 7
)

// Decision actions on the wire (KindDecision.Action).
const (
	ActMap   uint8 = 0
	ActDefer uint8 = 1
	ActDrop  uint8 = 2
)

// Membership ops on the wire (KindMembership.Action).
const (
	MemberAdd    uint8 = 0
	MemberRemove uint8 = 1
	MemberRevive uint8 = 2
)

// Record is one journal entry. It is a flat union over the kinds: only
// the fields relevant to a record's Kind are encoded (see the Kind docs).
type Record struct {
	Kind Kind
	// Seq is the cluster-wide arrival sequence number (arrive, decision,
	// event records).
	Seq int64
	// Tick is the record's time: arrival tick, decision-time shard clock,
	// event tick, or drain tick.
	Tick pmf.Tick
	// Deadline is the task's absolute deadline (arrive records).
	Deadline pmf.Tick
	// Type is the task's PET row (arrive records).
	Type int32
	// Action is the decision action (decision records) or the terminal
	// sim.Status code (event records).
	Action uint8
	// Machine is the shard-local machine index, -1 when unmapped
	// (decision records).
	Machine int32
	// NTasks is the sub-batch size (batch records).
	NTasks int32
	// Exec is the realized execution time per machine type (arrive
	// records).
	Exec []pmf.Tick
	// ID is the optional client-chosen decision label (arrive records) or
	// the request's idempotent decision ID (batch records).
	ID string
	// Spans is the per-stage timing of a sampled decision (trace records).
	Spans []SpanRec
}

// SpanRec is one stage span of a trace record: the stage code (the
// numeric value of internal/telemetry.Stage) and its [start, end) offsets
// in nanoseconds from the decision's request receipt.
type SpanRec struct {
	Stage   uint8
	StartNS uint64
	EndNS   uint64
}

// Frame and payload limits. A record payload is tiny (an arrive with
// a dozen machine types and a long label stays under 300 bytes); the caps
// exist so a corrupt length field cannot make the reader allocate wildly.
const (
	frameHeader   = 8       // u32 length + u32 crc
	maxPayload    = 1 << 20 // 1 MiB
	maxExecTypes  = 4096
	maxIDLen      = 1 << 16
	maxSpans      = 64
	recordVersion = 1 // payload leading byte, bumped on incompatible change
)

var crcTable = crc32.MakeTable(crc32.Castagnoli)

// AppendRecord appends the framed encoding of r to buf and returns the
// extended slice. It allocates only when buf lacks capacity, so a
// single-writer loop reusing its buffer appends allocation-free.
func AppendRecord(buf []byte, r *Record) []byte {
	start := len(buf)
	buf = append(buf, 0, 0, 0, 0, 0, 0, 0, 0) // frame header placeholder
	p := len(buf)

	buf = append(buf, recordVersion, byte(r.Kind))
	switch r.Kind {
	case KindBatch:
		buf = binary.LittleEndian.AppendUint32(buf, uint32(r.NTasks))
		// The decision ID is a trailing optional field: old logs (and
		// ID-less batches) end after NTasks, and the decoder only reads the
		// length prefix when payload bytes remain — no version bump needed.
		if r.ID != "" {
			buf = binary.LittleEndian.AppendUint16(buf, uint16(len(r.ID)))
			buf = append(buf, r.ID...)
		}
	case KindArrive:
		buf = binary.LittleEndian.AppendUint64(buf, uint64(r.Seq))
		buf = binary.LittleEndian.AppendUint32(buf, uint32(r.Type))
		buf = binary.LittleEndian.AppendUint64(buf, uint64(r.Tick))
		buf = binary.LittleEndian.AppendUint64(buf, uint64(r.Deadline))
		buf = binary.LittleEndian.AppendUint16(buf, uint16(len(r.Exec)))
		for _, x := range r.Exec {
			buf = binary.LittleEndian.AppendUint64(buf, uint64(x))
		}
		buf = binary.LittleEndian.AppendUint16(buf, uint16(len(r.ID)))
		buf = append(buf, r.ID...)
	case KindDecision:
		buf = binary.LittleEndian.AppendUint64(buf, uint64(r.Seq))
		buf = append(buf, r.Action)
		buf = binary.LittleEndian.AppendUint32(buf, uint32(r.Machine))
		buf = binary.LittleEndian.AppendUint64(buf, uint64(r.Tick))
	case KindEvent:
		buf = binary.LittleEndian.AppendUint64(buf, uint64(r.Seq))
		buf = append(buf, r.Action)
		buf = binary.LittleEndian.AppendUint64(buf, uint64(r.Tick))
	case KindDrain:
		buf = binary.LittleEndian.AppendUint64(buf, uint64(r.Tick))
	case KindMembership:
		buf = append(buf, r.Action)
		buf = binary.LittleEndian.AppendUint32(buf, uint32(r.Machine))
		buf = binary.LittleEndian.AppendUint32(buf, uint32(r.Type))
		buf = binary.LittleEndian.AppendUint32(buf, uint32(r.NTasks))
		buf = binary.LittleEndian.AppendUint64(buf, uint64(r.Tick))
	case KindTrace:
		if len(r.Spans) > maxSpans {
			panic(fmt.Sprintf("journal: trace record with %d spans, cap %d", len(r.Spans), maxSpans))
		}
		buf = binary.LittleEndian.AppendUint64(buf, uint64(r.Seq))
		buf = append(buf, uint8(len(r.Spans)))
		for _, sp := range r.Spans {
			buf = append(buf, sp.Stage)
			buf = binary.LittleEndian.AppendUint64(buf, sp.StartNS)
			buf = binary.LittleEndian.AppendUint64(buf, sp.EndNS)
		}
	default:
		panic(fmt.Sprintf("journal: encoding unknown record kind %d", r.Kind))
	}

	payload := buf[p:]
	binary.LittleEndian.PutUint32(buf[start:], uint32(len(payload)))
	binary.LittleEndian.PutUint32(buf[start+4:], crc32.Checksum(payload, crcTable))
	return buf
}

// DecodeRecord parses one record payload (the bytes after the frame
// header, CRC already verified). It never panics on hostile input; any
// structural violation returns an error.
func DecodeRecord(payload []byte) (Record, error) {
	var r Record
	d := decoder{buf: payload}
	ver := d.u8()
	if ver != recordVersion {
		return r, fmt.Errorf("journal: record version %d, want %d", ver, recordVersion)
	}
	r.Kind = Kind(d.u8())
	switch r.Kind {
	case KindBatch:
		r.NTasks = int32(d.u32())
		if r.NTasks < 0 {
			return r, fmt.Errorf("journal: batch record with %d tasks", r.NTasks)
		}
		if d.err == nil && d.remaining() > 0 {
			idLen := int(d.u16())
			if idLen > maxIDLen {
				return r, fmt.Errorf("journal: batch record with %d-byte id", idLen)
			}
			r.ID = string(d.bytes(idLen))
		}
	case KindArrive:
		r.Seq = int64(d.u64())
		r.Type = int32(d.u32())
		r.Tick = pmf.Tick(d.u64())
		r.Deadline = pmf.Tick(d.u64())
		n := int(d.u16())
		if n > maxExecTypes {
			return r, fmt.Errorf("journal: arrive record with %d exec entries", n)
		}
		if d.err == nil && n > 0 {
			if d.remaining() < 8*n {
				return r, fmt.Errorf("journal: arrive record truncated in exec entries")
			}
			r.Exec = make([]pmf.Tick, n)
			for i := range r.Exec {
				r.Exec[i] = pmf.Tick(d.u64())
			}
		}
		idLen := int(d.u16())
		if idLen > maxIDLen {
			return r, fmt.Errorf("journal: arrive record with %d-byte id", idLen)
		}
		r.ID = string(d.bytes(idLen))
	case KindDecision:
		r.Seq = int64(d.u64())
		r.Action = d.u8()
		r.Machine = int32(d.u32())
		r.Tick = pmf.Tick(d.u64())
	case KindEvent:
		r.Seq = int64(d.u64())
		r.Action = d.u8()
		r.Tick = pmf.Tick(d.u64())
	case KindDrain:
		r.Tick = pmf.Tick(d.u64())
	case KindMembership:
		r.Action = d.u8()
		r.Machine = int32(d.u32())
		r.Type = int32(d.u32())
		r.NTasks = int32(d.u32())
		r.Tick = pmf.Tick(d.u64())
		if r.Action > MemberRevive {
			return r, fmt.Errorf("journal: membership record with op %d", r.Action)
		}
	case KindTrace:
		r.Seq = int64(d.u64())
		n := int(d.u8())
		if n > maxSpans {
			return r, fmt.Errorf("journal: trace record with %d spans", n)
		}
		if d.err == nil && n > 0 {
			if d.remaining() < 17*n {
				return r, fmt.Errorf("journal: trace record truncated in spans")
			}
			r.Spans = make([]SpanRec, n)
			for i := range r.Spans {
				r.Spans[i] = SpanRec{Stage: d.u8(), StartNS: d.u64(), EndNS: d.u64()}
			}
		}
	default:
		return r, fmt.Errorf("journal: unknown record kind %d", r.Kind)
	}
	if d.err != nil {
		return r, d.err
	}
	if d.remaining() != 0 {
		return r, fmt.Errorf("journal: %d trailing bytes after %v record", d.remaining(), r.Kind)
	}
	return r, nil
}

// decoder is a bounds-checked little-endian cursor: reads past the end
// set err instead of panicking, so DecodeRecord survives any input.
type decoder struct {
	buf []byte
	off int
	err error
}

func (d *decoder) remaining() int { return len(d.buf) - d.off }

func (d *decoder) fail() {
	if d.err == nil {
		d.err = fmt.Errorf("journal: record payload truncated at byte %d", d.off)
	}
}

func (d *decoder) u8() uint8 {
	if d.remaining() < 1 {
		d.fail()
		return 0
	}
	v := d.buf[d.off]
	d.off++
	return v
}

func (d *decoder) u16() uint16 {
	if d.remaining() < 2 {
		d.fail()
		return 0
	}
	v := binary.LittleEndian.Uint16(d.buf[d.off:])
	d.off += 2
	return v
}

func (d *decoder) u32() uint32 {
	if d.remaining() < 4 {
		d.fail()
		return 0
	}
	v := binary.LittleEndian.Uint32(d.buf[d.off:])
	d.off += 4
	return v
}

func (d *decoder) u64() uint64 {
	if d.remaining() < 8 {
		d.fail()
		return 0
	}
	v := binary.LittleEndian.Uint64(d.buf[d.off:])
	d.off += 8
	return v
}

func (d *decoder) bytes(n int) []byte {
	if n < 0 || d.remaining() < n {
		d.fail()
		return nil
	}
	v := d.buf[d.off : d.off+n]
	d.off += n
	return v
}

// String renders a record for logs and the hcreplay audit listing.
func (r *Record) String() string {
	switch r.Kind {
	case KindBatch:
		if r.ID != "" {
			return fmt.Sprintf("batch n=%d id=%q", r.NTasks, r.ID)
		}
		return fmt.Sprintf("batch n=%d", r.NTasks)
	case KindArrive:
		return fmt.Sprintf("arrive seq=%d type=%d t=%d deadline=%d id=%q", r.Seq, r.Type, r.Tick, r.Deadline, r.ID)
	case KindDecision:
		act := [...]string{"map", "defer", "drop"}
		a := "?"
		if int(r.Action) < len(act) {
			a = act[r.Action]
		}
		return fmt.Sprintf("decision seq=%d action=%s machine=%d now=%d", r.Seq, a, r.Machine, r.Tick)
	case KindEvent:
		return fmt.Sprintf("event seq=%d status=%d t=%d", r.Seq, r.Action, r.Tick)
	case KindDrain:
		return fmt.Sprintf("drain t=%d", r.Tick)
	case KindMembership:
		ops := [...]string{"add", "remove", "revive"}
		op := "?"
		if int(r.Action) < len(ops) {
			op = ops[r.Action]
		}
		return fmt.Sprintf("membership op=%s machine=%d type=%d handoff=%d t=%d", op, r.Machine, r.Type, r.NTasks, r.Tick)
	case KindTrace:
		return fmt.Sprintf("trace seq=%d spans=%d", r.Seq, len(r.Spans))
	default:
		return fmt.Sprintf("record kind=%d", r.Kind)
	}
}

package journal

import (
	"bufio"
	"encoding/binary"
	"fmt"
	"hash/crc32"
	"io"
	"os"
)

// maxSnapshotPayload bounds a snapshot file; engine snapshots grow with
// the served task history (~100 B/task serialized), so the cap is
// generous.
const maxSnapshotPayload = 256 << 20

// scanValidPrefix reads framed records from the start of f and returns
// the byte offset and record count of the longest valid prefix: the scan
// stops at EOF, a partial frame, an over-limit length, or a CRC mismatch
// — the torn-tail signatures of a crash mid-write. Only I/O failures
// return an error.
func scanValidPrefix(f *os.File) (offset int64, records int, err error) {
	if _, err := f.Seek(0, io.SeekStart); err != nil {
		return 0, 0, err
	}
	br := bufio.NewReaderSize(f, 64<<10)
	var hdr [frameHeader]byte
	var payload []byte
	for {
		if _, err := io.ReadFull(br, hdr[:]); err != nil {
			return offset, records, nil // EOF or partial header: prefix ends
		}
		n := binary.LittleEndian.Uint32(hdr[:])
		crc := binary.LittleEndian.Uint32(hdr[4:])
		if n > maxPayload {
			return offset, records, nil
		}
		if cap(payload) < int(n) {
			payload = make([]byte, n)
		}
		payload = payload[:n]
		if _, err := io.ReadFull(br, payload); err != nil {
			return offset, records, nil
		}
		if crc32.Checksum(payload, crcTable) != crc {
			return offset, records, nil
		}
		if _, err := DecodeRecord(payload); err != nil {
			// Structurally invalid but checksummed: not a torn write — the
			// format itself is off (foreign file, incompatible version).
			return offset, records, fmt.Errorf("journal: %s: record %d: %w", f.Name(), records, err)
		}
		offset += frameHeader + int64(n)
		records++
	}
}

// ScanSegment streams every valid record of one segment file through fn,
// stopping silently at a torn tail. fn errors abort the scan.
func ScanSegment(path string, fn func(*Record) error) error {
	f, err := os.Open(path)
	if err != nil {
		return err
	}
	defer f.Close()
	br := bufio.NewReaderSize(f, 64<<10)
	var hdr [frameHeader]byte
	var payload []byte
	for {
		if _, err := io.ReadFull(br, hdr[:]); err != nil {
			return nil
		}
		n := binary.LittleEndian.Uint32(hdr[:])
		crc := binary.LittleEndian.Uint32(hdr[4:])
		if n > maxPayload {
			return nil
		}
		if cap(payload) < int(n) {
			payload = make([]byte, n)
		}
		payload = payload[:n]
		if _, err := io.ReadFull(br, payload); err != nil {
			return nil
		}
		if crc32.Checksum(payload, crcTable) != crc {
			return nil
		}
		rec, err := DecodeRecord(payload)
		if err != nil {
			return fmt.Errorf("journal: %s: %w", path, err)
		}
		if err := fn(&rec); err != nil {
			return err
		}
	}
}

// ReadSnapshotFile reads and CRC-verifies one snapshot payload.
func ReadSnapshotFile(path string) ([]byte, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	if len(data) < frameHeader {
		return nil, fmt.Errorf("journal: %s: snapshot truncated (%d bytes)", path, len(data))
	}
	n := binary.LittleEndian.Uint32(data)
	crc := binary.LittleEndian.Uint32(data[4:])
	if int(n) > maxSnapshotPayload || frameHeader+int(n) > len(data) {
		return nil, fmt.Errorf("journal: %s: snapshot length %d exceeds file", path, n)
	}
	payload := data[frameHeader : frameHeader+int(n)]
	if crc32.Checksum(payload, crcTable) != crc {
		return nil, fmt.Errorf("journal: %s: snapshot CRC mismatch", path)
	}
	return payload, nil
}

// Recovery describes how to rebuild a shard's state from its log: the
// newest snapshot that decodes cleanly (nil payload when replaying from
// scratch) and the ordered tail segments to replay after it.
type Recovery struct {
	// SnapshotSeg is the snapshot's segment index, -1 without one.
	SnapshotSeg int
	// Snapshot is the verified snapshot payload (nil without one).
	Snapshot []byte
	// TailSegments are the segment indexes to replay, ascending.
	TailSegments []int
}

// Empty reports whether there is nothing to recover.
func (r *Recovery) Empty() bool { return r.Snapshot == nil && len(r.TailSegments) == 0 }

// Replay streams the tail segments' records through fn in order.
func (r *Recovery) Replay(dir string, fn func(*Record) error) error {
	for _, seg := range r.TailSegments {
		if err := ScanSegment(SegmentPath(dir, seg), fn); err != nil {
			return err
		}
	}
	return nil
}

// Recover plans a shard's recovery: it picks the newest snapshot whose
// payload verifies (falling back to older ones — a torn snapshot just
// means replaying a longer tail) and lists the segments after it. An
// absent or empty directory recovers to the empty plan.
func Recover(dir string) (*Recovery, error) {
	segs, err := Segments(dir)
	if err != nil {
		return nil, err
	}
	snaps, err := Snapshots(dir)
	if err != nil {
		return nil, err
	}
	r := &Recovery{SnapshotSeg: -1}
	for i := len(snaps) - 1; i >= 0; i-- {
		payload, err := ReadSnapshotFile(SnapshotPath(dir, snaps[i]))
		if err != nil {
			continue // fall back to the previous snapshot
		}
		r.SnapshotSeg = snaps[i]
		r.Snapshot = payload
		break
	}
	for _, s := range segs {
		if s > r.SnapshotSeg {
			r.TailSegments = append(r.TailSegments, s)
		}
	}
	return r, nil
}

// ReplayAll streams every record of every segment in dir through fn, from
// segment 0 — the from-scratch replay hcreplay -verify uses to prove the
// log re-derives the recorded decisions.
func ReplayAll(dir string, fn func(*Record) error) error {
	segs, err := Segments(dir)
	if err != nil {
		return err
	}
	for _, seg := range segs {
		if err := ScanSegment(SegmentPath(dir, seg), fn); err != nil {
			return err
		}
	}
	return nil
}

// Package journal implements the event-sourced decision log of the
// admission service: a per-shard append-only write-ahead log (WAL) of
// immutable, length-prefixed, CRC-checked records, with periodic state
// snapshots so recovery replays only the log tail.
//
// Every admission shard is a deterministic single-writer loop — decisions
// are a pure function of the fed task sequence — which is precisely the
// event-sourcing sweet spot: journaling the arrivals (plus the decisions
// and terminal task events they caused, for audit) is enough to
// reconstruct the exact pre-crash engine by replay. The package is
// deliberately generic: it stores framed Records and opaque snapshot
// payloads; what goes inside them is the caller's contract
// (internal/service encodes shard checkpoints, cmd/hcreplay re-derives
// past decisions).
//
// # On-disk layout
//
// A shard's log directory holds numbered WAL segments and snapshots:
//
//	seg-0000000000.wal      records appended before the first snapshot
//	snap-0000000000.snap    one framed snapshot payload: state after seg 0
//	seg-0000000001.wal      records appended after that snapshot
//	...
//
// Snapshot K captures the state after every record of segments <= K; the
// writer rotates to segment K+1 immediately after writing snapshot K.
// Recovery restores the highest snapshot that decodes cleanly and replays
// only the segments after it; with no usable snapshot it replays from
// segment 0. Snapshots are written to a temp file, fsynced and renamed,
// so a crash mid-snapshot leaves the previous one intact.
//
// # Record framing
//
// Each record is framed as
//
//	u32 payload length | u32 CRC-32C of payload | payload
//
// (little-endian). A torn tail — a partial frame or a CRC mismatch from a
// crash mid-write — is detected on open; the reader surfaces the valid
// prefix and the writer truncates the tail before appending again.
//
// # Durability policies
//
// The fsync cost is tunable per deployment (SyncAlways / SyncInterval /
// SyncNever): every Commit flushes records to the OS, and the policy
// decides when fdatasync pins them to the platter — always before the
// decision is acknowledged, on a background interval, or never (the OS
// page cache decides). The log is prefix-consistent under all three; the
// policy only bounds how much acknowledged tail a power loss can cost.
package journal

import (
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"strconv"
	"strings"
)

const (
	segPrefix  = "seg-"
	segSuffix  = ".wal"
	snapPrefix = "snap-"
	snapSuffix = ".snap"
)

// SegmentPath returns the path of WAL segment n inside dir.
func SegmentPath(dir string, n int) string {
	return filepath.Join(dir, fmt.Sprintf("%s%010d%s", segPrefix, n, segSuffix))
}

// SnapshotPath returns the path of snapshot n inside dir.
func SnapshotPath(dir string, n int) string {
	return filepath.Join(dir, fmt.Sprintf("%s%010d%s", snapPrefix, n, snapSuffix))
}

// listNumbered collects the sorted indexes of files named
// <prefix><number><suffix> in dir. A missing directory lists empty.
func listNumbered(dir, prefix, suffix string) ([]int, error) {
	ents, err := os.ReadDir(dir)
	if os.IsNotExist(err) {
		return nil, nil
	}
	if err != nil {
		return nil, err
	}
	var out []int
	for _, e := range ents {
		name := e.Name()
		if e.IsDir() || !strings.HasPrefix(name, prefix) || !strings.HasSuffix(name, suffix) {
			continue
		}
		num := strings.TrimSuffix(strings.TrimPrefix(name, prefix), suffix)
		n, err := strconv.Atoi(num)
		if err != nil {
			continue
		}
		out = append(out, n)
	}
	sort.Ints(out)
	return out, nil
}

// Segments returns the sorted indexes of the WAL segments present in dir.
func Segments(dir string) ([]int, error) { return listNumbered(dir, segPrefix, segSuffix) }

// Snapshots returns the sorted indexes of the snapshots present in dir.
func Snapshots(dir string) ([]int, error) { return listNumbered(dir, snapPrefix, snapSuffix) }

// syncDir fsyncs a directory so renames and creates inside it survive a
// crash. Best effort: some filesystems reject directory fsync.
func syncDir(dir string) {
	if d, err := os.Open(dir); err == nil {
		_ = d.Sync()
		_ = d.Close()
	}
}

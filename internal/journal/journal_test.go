package journal

import (
	"bytes"
	"math/rand"
	"os"
	"path/filepath"
	"reflect"
	"testing"

	"github.com/hpcclab/taskdrop/internal/pmf"
)

// sampleRecords builds a deterministic mixed-kind record sequence.
func sampleRecords(n int, seed int64) []Record {
	rng := rand.New(rand.NewSource(seed))
	out := make([]Record, n)
	for i := range out {
		switch rng.Intn(7) {
		case 0:
			out[i] = Record{Kind: KindBatch, NTasks: int32(1 + rng.Intn(32))}
		case 1:
			exec := make([]pmf.Tick, 1+rng.Intn(4))
			for j := range exec {
				exec[j] = pmf.Tick(1 + rng.Intn(1000))
			}
			out[i] = Record{
				Kind: KindArrive, Seq: int64(i), Type: int32(rng.Intn(30)),
				Tick: pmf.Tick(rng.Intn(100000)), Deadline: pmf.Tick(rng.Intn(200000)),
				Exec: exec, ID: "t-abc",
			}
		case 2:
			out[i] = Record{Kind: KindDecision, Seq: int64(i), Action: uint8(rng.Intn(3)),
				Machine: int32(rng.Intn(8) - 1), Tick: pmf.Tick(rng.Intn(100000))}
		case 3:
			out[i] = Record{Kind: KindEvent, Seq: int64(i), Action: uint8(3 + rng.Intn(5)),
				Tick: pmf.Tick(rng.Intn(100000))}
		case 4:
			spans := make([]SpanRec, 1+rng.Intn(6))
			off := uint64(0)
			for j := range spans {
				start := off + uint64(rng.Intn(1000))
				end := start + uint64(rng.Intn(100000))
				spans[j] = SpanRec{Stage: uint8(j), StartNS: start, EndNS: end}
				off = start
			}
			out[i] = Record{Kind: KindTrace, Seq: int64(i), Spans: spans}
		case 5:
			out[i] = Record{Kind: KindMembership, Action: uint8(rng.Intn(3)),
				Machine: int32(rng.Intn(16)), Type: int32(rng.Intn(8)),
				NTasks: int32(rng.Intn(2)), Tick: pmf.Tick(rng.Intn(100000))}
		default:
			out[i] = Record{Kind: KindDrain, Tick: pmf.Tick(rng.Intn(100000))}
		}
	}
	return out
}

func TestRecordRoundTrip(t *testing.T) {
	for _, r := range sampleRecords(200, 1) {
		buf := AppendRecord(nil, &r)
		got, err := DecodeRecord(buf[frameHeader:])
		if err != nil {
			t.Fatalf("decode %v: %v", r.Kind, err)
		}
		if !reflect.DeepEqual(r, got) {
			t.Fatalf("round trip mismatch:\n in %+v\nout %+v", r, got)
		}
	}
}

// TestBatchDecisionIDRoundTrip pins the trailing optional decision-ID
// field of batch records: an ID survives the round trip, an ID-less batch
// encodes exactly as the pre-ID format did (so old logs stay readable and
// new ID-less logs stay readable by old builds), and both render in
// String for hcreplay audits.
func TestBatchDecisionIDRoundTrip(t *testing.T) {
	with := Record{Kind: KindBatch, NTasks: 16, ID: "replay-0-000042"}
	buf := AppendRecord(nil, &with)
	got, err := DecodeRecord(buf[frameHeader:])
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(with, got) {
		t.Fatalf("batch ID round trip mismatch:\n in %+v\nout %+v", with, got)
	}
	if s := got.String(); !bytes.Contains([]byte(s), []byte("replay-0-000042")) {
		t.Fatalf("String() omits the decision ID: %q", s)
	}

	without := Record{Kind: KindBatch, NTasks: 16}
	plain := AppendRecord(nil, &without)
	if len(plain) >= len(buf) {
		t.Fatalf("ID-less batch (%d bytes) not shorter than ID-carrying batch (%d bytes): the ID is not a trailing optional field", len(plain), len(buf))
	}
	back, err := DecodeRecord(plain[frameHeader:])
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(without, back) {
		t.Fatalf("ID-less batch round trip mismatch:\n in %+v\nout %+v", without, back)
	}
}

// TestMembershipRecordRoundTrip pins the dynamic-membership record kind:
// every op survives the round trip, an out-of-range op byte is rejected,
// and String renders the op name for hcreplay audits.
func TestMembershipRecordRoundTrip(t *testing.T) {
	for _, r := range []Record{
		{Kind: KindMembership, Action: MemberAdd, Machine: 4, Type: 2, Tick: 512},
		{Kind: KindMembership, Action: MemberRemove, Machine: 3, NTasks: 1, Tick: 99},
		{Kind: KindMembership, Action: MemberRemove, Machine: 0, NTasks: 0, Tick: 0},
		{Kind: KindMembership, Action: MemberRevive, Machine: 3, Tick: 100000},
	} {
		buf := AppendRecord(nil, &r)
		got, err := DecodeRecord(buf[frameHeader:])
		if err != nil {
			t.Fatalf("decode %+v: %v", r, err)
		}
		if !reflect.DeepEqual(r, got) {
			t.Fatalf("membership round trip mismatch:\n in %+v\nout %+v", r, got)
		}
	}
	rm := Record{Kind: KindMembership, Action: MemberRemove, Machine: 7, NTasks: 1, Tick: 42}
	if s := rm.String(); !bytes.Contains([]byte(s), []byte("remove")) || !bytes.Contains([]byte(s), []byte("machine=7")) {
		t.Fatalf("String() = %q, want the op and machine", s)
	}
	forged := AppendRecord(nil, &rm)[frameHeader:]
	forged = append([]byte(nil), forged...)
	forged[2] = MemberRevive + 1 // version u8 + kind u8, then the op byte
	if _, err := DecodeRecord(forged); err == nil {
		t.Fatal("out-of-range membership op decoded")
	}
}

// TestTraceRecordBounds pins the span-count cap: the encoder accepts
// exactly maxSpans, panics past it, and the decoder rejects both an
// oversized count byte and a payload truncated mid-span.
func TestTraceRecordBounds(t *testing.T) {
	spans := make([]SpanRec, maxSpans)
	for i := range spans {
		spans[i] = SpanRec{Stage: uint8(i), StartNS: uint64(i * 10), EndNS: uint64(i*10 + 5)}
	}
	r := Record{Kind: KindTrace, Seq: 9, Spans: spans}
	buf := AppendRecord(nil, &r)
	got, err := DecodeRecord(buf[frameHeader:])
	if err != nil {
		t.Fatalf("decode at cap: %v", err)
	}
	if !reflect.DeepEqual(r, got) {
		t.Fatal("round trip at cap mismatched")
	}

	over := Record{Kind: KindTrace, Seq: 1, Spans: make([]SpanRec, maxSpans+1)}
	func() {
		defer func() {
			if recover() == nil {
				t.Fatal("AppendRecord accepted a trace past the span cap")
			}
		}()
		AppendRecord(nil, &over)
	}()

	small := Record{Kind: KindTrace, Seq: 2, Spans: []SpanRec{{Stage: 1, StartNS: 10, EndNS: 20}}}
	payload := AppendRecord(nil, &small)[frameHeader:]
	if _, err := DecodeRecord(payload[:len(payload)-5]); err == nil {
		t.Fatal("truncated trace payload decoded")
	}
	// Patch the count byte (version u8 + kind u8 + seq u64 = offset 10)
	// past the cap.
	forged := append([]byte(nil), payload...)
	forged[10] = maxSpans + 1
	if _, err := DecodeRecord(forged); err == nil {
		t.Fatal("forged span count decoded")
	}
}

func TestWriterAppendScan(t *testing.T) {
	dir := t.TempDir()
	w, err := OpenWriter(dir, WriterOptions{Policy: SyncNever})
	if err != nil {
		t.Fatal(err)
	}
	recs := sampleRecords(100, 2)
	for i := range recs {
		if err := w.Append(&recs[i]); err != nil {
			t.Fatal(err)
		}
	}
	if err := w.Commit(); err != nil {
		t.Fatal(err)
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	var got []Record
	if err := ReplayAll(dir, func(r *Record) error { got = append(got, *r); return nil }); err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(recs, got) {
		t.Fatalf("scan mismatch: %d in, %d out", len(recs), len(got))
	}
	if w.Lag() != 0 {
		t.Fatalf("lag %d after Close, want 0", w.Lag())
	}
}

// TestTornTailRecovery cuts a segment at every possible byte length and
// checks that (a) the scan recovers exactly the records whose frames
// survived intact and (b) a writer reopening the cut log truncates the
// tail and appends cleanly after it.
func TestTornTailRecovery(t *testing.T) {
	recs := sampleRecords(12, 3)
	var full []byte
	var bounds []int // byte offset after each record
	for i := range recs {
		full = AppendRecord(full, &recs[i])
		bounds = append(bounds, len(full))
	}
	wholeAt := func(cut int) int {
		n := 0
		for _, b := range bounds {
			if b <= cut {
				n++
			}
		}
		return n
	}
	for cut := 0; cut <= len(full); cut += 7 {
		dir := t.TempDir()
		path := SegmentPath(dir, 0)
		if err := os.WriteFile(path, full[:cut], 0o644); err != nil {
			t.Fatal(err)
		}
		var got []Record
		if err := ScanSegment(path, func(r *Record) error { got = append(got, *r); return nil }); err != nil {
			t.Fatalf("cut %d: %v", cut, err)
		}
		want := wholeAt(cut)
		if len(got) != want {
			t.Fatalf("cut %d: recovered %d records, want %d", cut, len(got), want)
		}
		if !reflect.DeepEqual(got, recs[:want]) && want > 0 {
			t.Fatalf("cut %d: recovered wrong prefix", cut)
		}

		// Reopen for append: the torn bytes must be truncated, and a fresh
		// record must land right after the valid prefix.
		w, err := OpenWriter(dir, WriterOptions{Policy: SyncNever})
		if err != nil {
			t.Fatalf("cut %d: reopen: %v", cut, err)
		}
		extra := Record{Kind: KindDrain, Tick: 42}
		if err := w.Append(&extra); err != nil {
			t.Fatal(err)
		}
		if err := w.Close(); err != nil {
			t.Fatal(err)
		}
		got = got[:0]
		if err := ScanSegment(path, func(r *Record) error { got = append(got, *r); return nil }); err != nil {
			t.Fatal(err)
		}
		if len(got) != want+1 || !reflect.DeepEqual(got[want], extra) {
			t.Fatalf("cut %d: after reopen got %d records, want %d + drain", cut, len(got), want+1)
		}
	}
}

// TestCorruptedMiddleStopsScan flips a byte inside an early record: the
// scan must stop at the corruption and surface only the prefix.
func TestCorruptedMiddleStopsScan(t *testing.T) {
	recs := sampleRecords(10, 4)
	var full []byte
	firstLen := 0
	for i := range recs {
		full = AppendRecord(full, &recs[i])
		if i == 0 {
			firstLen = len(full)
		}
	}
	full[firstLen+frameHeader+1] ^= 0xFF // corrupt record 1's payload
	dir := t.TempDir()
	path := SegmentPath(dir, 0)
	if err := os.WriteFile(path, full, 0o644); err != nil {
		t.Fatal(err)
	}
	var got []Record
	if err := ScanSegment(path, func(r *Record) error { got = append(got, *r); return nil }); err != nil {
		t.Fatal(err)
	}
	if len(got) != 1 {
		t.Fatalf("scan past corruption: got %d records, want 1", len(got))
	}
}

func TestCheckpointRotationAndRecover(t *testing.T) {
	dir := t.TempDir()
	w, err := OpenWriter(dir, WriterOptions{Policy: SyncNever})
	if err != nil {
		t.Fatal(err)
	}
	recs := sampleRecords(30, 5)
	for i := 0; i < 10; i++ {
		if err := w.Append(&recs[i]); err != nil {
			t.Fatal(err)
		}
	}
	if err := w.Checkpoint([]byte("state-after-10")); err != nil {
		t.Fatal(err)
	}
	if w.Segment() != 1 || w.RecordsInSegment() != 0 {
		t.Fatalf("after checkpoint: seg %d recs %d, want 1/0", w.Segment(), w.RecordsInSegment())
	}
	for i := 10; i < 20; i++ {
		if err := w.Append(&recs[i]); err != nil {
			t.Fatal(err)
		}
	}
	if err := w.Checkpoint([]byte("state-after-20")); err != nil {
		t.Fatal(err)
	}
	for i := 20; i < 30; i++ {
		if err := w.Append(&recs[i]); err != nil {
			t.Fatal(err)
		}
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}

	rec, err := Recover(dir)
	if err != nil {
		t.Fatal(err)
	}
	if string(rec.Snapshot) != "state-after-20" || rec.SnapshotSeg != 1 {
		t.Fatalf("recover picked snapshot %d %q", rec.SnapshotSeg, rec.Snapshot)
	}
	var tail []Record
	if err := rec.Replay(dir, func(r *Record) error { tail = append(tail, *r); return nil }); err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(tail, recs[20:30]) {
		t.Fatalf("tail replay got %d records, want 10", len(tail))
	}

	// Corrupt the newest snapshot: recovery must fall back to the older
	// one and replay a longer tail.
	if err := os.WriteFile(SnapshotPath(dir, 1), []byte("garbage"), 0o644); err != nil {
		t.Fatal(err)
	}
	rec, err = Recover(dir)
	if err != nil {
		t.Fatal(err)
	}
	if string(rec.Snapshot) != "state-after-10" || rec.SnapshotSeg != 0 {
		t.Fatalf("fallback picked snapshot %d %q", rec.SnapshotSeg, rec.Snapshot)
	}
	tail = tail[:0]
	if err := rec.Replay(dir, func(r *Record) error { tail = append(tail, *r); return nil }); err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(tail, recs[10:30]) {
		t.Fatalf("fallback tail got %d records, want 20", len(tail))
	}

	// From-scratch replay sees everything.
	var all []Record
	if err := ReplayAll(dir, func(r *Record) error { all = append(all, *r); return nil }); err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(all, recs) {
		t.Fatalf("ReplayAll got %d records, want %d", len(all), len(recs))
	}
}

// TestReopenAfterSnapshotWithoutSuccessor models a crash between writing
// snapshot K and opening segment K+1: the writer must start K+1 itself.
func TestReopenAfterSnapshotWithoutSuccessor(t *testing.T) {
	dir := t.TempDir()
	w, err := OpenWriter(dir, WriterOptions{Policy: SyncNever})
	if err != nil {
		t.Fatal(err)
	}
	r := Record{Kind: KindDrain, Tick: 1}
	if err := w.Append(&r); err != nil {
		t.Fatal(err)
	}
	if err := w.Checkpoint([]byte("s0")); err != nil {
		t.Fatal(err)
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	// Simulate the crash: remove the successor segment the rotation made.
	if err := os.Remove(SegmentPath(dir, 1)); err != nil {
		t.Fatal(err)
	}
	w, err = OpenWriter(dir, WriterOptions{Policy: SyncNever})
	if err != nil {
		t.Fatal(err)
	}
	if w.Segment() != 1 {
		t.Fatalf("reopened into segment %d, want 1", w.Segment())
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
}

func TestSnapshotFileCRC(t *testing.T) {
	dir := t.TempDir()
	if err := writeSnapshotFile(dir, 0, []byte("hello snapshot")); err != nil {
		t.Fatal(err)
	}
	got, err := ReadSnapshotFile(SnapshotPath(dir, 0))
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, []byte("hello snapshot")) {
		t.Fatalf("snapshot payload %q", got)
	}
	// Flip one payload byte: the CRC must catch it.
	raw, _ := os.ReadFile(SnapshotPath(dir, 0))
	raw[frameHeader] ^= 1
	bad := filepath.Join(dir, "bad.snap")
	if err := os.WriteFile(bad, raw, 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := ReadSnapshotFile(bad); err == nil {
		t.Fatal("corrupted snapshot read back without error")
	}
}

func TestParseSyncPolicy(t *testing.T) {
	for s, want := range map[string]SyncPolicy{"always": SyncAlways, "interval": SyncInterval, "never": SyncNever} {
		got, err := ParseSyncPolicy(s)
		if err != nil || got != want {
			t.Fatalf("ParseSyncPolicy(%q) = %v, %v", s, got, err)
		}
		if got.String() != s {
			t.Fatalf("String() = %q, want %q", got.String(), s)
		}
	}
	if _, err := ParseSyncPolicy("sometimes"); err == nil {
		t.Fatal("unknown policy accepted")
	}
}

package journal

import (
	"reflect"
	"testing"
)

// FuzzDecodeRecord hammers the payload decoder with arbitrary bytes: it
// must never panic, and any payload it accepts must re-encode to an
// identical payload (the format is canonical).
func FuzzDecodeRecord(f *testing.F) {
	for _, r := range sampleRecords(32, 9) {
		buf := AppendRecord(nil, &r)
		f.Add(buf[frameHeader:])
	}
	f.Add([]byte{})
	f.Add([]byte{recordVersion})
	f.Add([]byte{recordVersion, byte(KindArrive)})
	f.Fuzz(func(t *testing.T, payload []byte) {
		r, err := DecodeRecord(payload)
		if err != nil {
			return
		}
		re := AppendRecord(nil, &r)
		if !reflect.DeepEqual(re[frameHeader:], payload) {
			t.Fatalf("accepted payload is not canonical:\n in  %x\n out %x", payload, re[frameHeader:])
		}
	})
}

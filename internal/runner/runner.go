// Package runner holds the concurrent-execution and aggregation machinery
// shared by the public Scenario API and the experiment harness
// (internal/expt): a cancellable worker pool over an index space, and the
// mean ± 95% CI aggregation of repeated-trial results that every figure of
// the paper's evaluation reports.
package runner

import (
	"context"
	"fmt"
	"runtime"
	"sync"

	"github.com/hpcclab/taskdrop/internal/sim"
	"github.com/hpcclab/taskdrop/internal/stats"
)

// ForEach runs fn(i) for every i in [0, n) across a pool of workers
// goroutines (workers <= 0 means GOMAXPROCS). It stops scheduling new
// work on the first error or when ctx is cancelled, waits for in-flight
// calls to wind down, and returns ctx.Err() if the context was cancelled,
// else the first fn error, else nil.
//
// The ctx passed to fn is cancelled as soon as any call fails or the
// parent is cancelled, so long-running fn bodies can abort promptly.
func ForEach(ctx context.Context, workers, n int, fn func(ctx context.Context, i int) error) error {
	if n <= 0 {
		return ctx.Err()
	}
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers > n {
		workers = n
	}
	inner, cancel := context.WithCancel(ctx)
	defer cancel()

	var (
		wg       sync.WaitGroup
		mu       sync.Mutex
		firstErr error
	)
	jobs := make(chan int)
	go func() {
		defer close(jobs)
		for i := 0; i < n; i++ {
			select {
			case jobs <- i:
			case <-inner.Done():
				return
			}
		}
	}()
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := range jobs {
				if inner.Err() != nil {
					return
				}
				if err := fn(inner, i); err != nil {
					mu.Lock()
					if firstErr == nil {
						firstErr = err
					}
					mu.Unlock()
					cancel()
					return
				}
			}
		}()
	}
	wg.Wait()
	if err := ctx.Err(); err != nil {
		return err
	}
	mu.Lock()
	defer mu.Unlock()
	return firstErr
}

// Aggregate is the mean ± 95% CI aggregation of one spec's repeated
// trials — the form in which the paper reports every experimental result
// (§V-A).
type Aggregate struct {
	// Robustness is % of measured tasks completed on time (the paper's
	// headline metric).
	Robustness stats.Summary `json:"robustness"`
	// NormCost is Fig. 9's cost divided by robustness, scaled ×1000 for
	// readability ($ per 1000 robustness-percent).
	NormCost stats.Summary `json:"norm_cost"`
	// ReactiveShare is the % of drops that were reactive (§V-F).
	ReactiveShare stats.Summary `json:"reactive_share"`
	// Utility is the approximate-computing value metric (% of measured
	// tasks' maximum utility realized; equals Robustness at zero grace).
	Utility stats.Summary `json:"utility"`
	// ProactivePct / ReactivePct are % of measured tasks dropped each way.
	ProactivePct stats.Summary `json:"proactive_pct"`
	ReactivePct  stats.Summary `json:"reactive_pct"`
}

// metricFields is the single enumeration of the Aggregate's metrics: the
// JSON-tag name (Stat's lookup key), how to extract each per-trial
// observation, and which summary field the metric lives in. ok=false
// excludes a trial from that metric's series (a zero-measured trial has
// no drop percentages).
var metricFields = []struct {
	name  string
	get   func(*sim.Result) (v float64, ok bool)
	field func(*Aggregate) *stats.Summary
}{
	{"robustness",
		func(r *sim.Result) (float64, bool) { return r.RobustnessPct, true },
		func(a *Aggregate) *stats.Summary { return &a.Robustness }},
	{"norm_cost",
		func(r *sim.Result) (float64, bool) { return r.CostPerRobustness * 1000, true },
		func(a *Aggregate) *stats.Summary { return &a.NormCost }},
	{"reactive_share",
		func(r *sim.Result) (float64, bool) { return 100 * r.DropReactiveShare(), true },
		func(a *Aggregate) *stats.Summary { return &a.ReactiveShare }},
	{"utility",
		func(r *sim.Result) (float64, bool) { return r.UtilityPct, true },
		func(a *Aggregate) *stats.Summary { return &a.Utility }},
	{"proactive_pct",
		func(r *sim.Result) (float64, bool) {
			return 100 * float64(r.MDroppedProactive) / float64(max(r.Measured, 1)), r.Measured > 0
		},
		func(a *Aggregate) *stats.Summary { return &a.ProactivePct }},
	{"reactive_pct",
		func(r *sim.Result) (float64, bool) {
			return 100 * float64(r.MDroppedReactive) / float64(max(r.Measured, 1)), r.Measured > 0
		},
		func(a *Aggregate) *stats.Summary { return &a.ReactivePct }},
}

// Stat returns the summary of one named metric. Recognized names are the
// Aggregate's JSON tags: robustness, norm_cost, reactive_share, utility,
// proactive_pct, reactive_pct.
func (a Aggregate) Stat(metric string) (stats.Summary, bool) {
	for _, f := range metricFields {
		if f.name == metric {
			return *f.field(&a), true
		}
	}
	return stats.Summary{}, false
}

// Summarize aggregates per-trial results (nil entries are skipped) into
// mean ± 95% CI summaries.
func Summarize(results []*sim.Result) Aggregate {
	var agg Aggregate
	for _, f := range metricFields {
		var xs []float64
		for _, res := range results {
			if res == nil {
				continue
			}
			if v, ok := f.get(res); ok {
				xs = append(xs, v)
			}
		}
		*f.field(&agg) = stats.Summarize(xs)
	}
	return agg
}

// SummarizeDiff aggregates the paired per-trial differences xs[t] − ys[t]
// into mean ± 95% CI summaries — the correct analysis when both series
// ran trial t on the same trace, where the common workload noise cancels
// and the CI tightens accordingly. The slices must be index-aligned by
// trial; trials where either side is missing are skipped pairwise.
func SummarizeDiff(xs, ys []*sim.Result) (Aggregate, error) {
	if len(xs) != len(ys) {
		return Aggregate{}, fmt.Errorf("runner: paired result series of unequal length (%d vs %d)", len(xs), len(ys))
	}
	var agg Aggregate
	for _, f := range metricFields {
		var ax, ay []float64
		for t := range xs {
			if xs[t] == nil || ys[t] == nil {
				continue
			}
			vx, okx := f.get(xs[t])
			vy, oky := f.get(ys[t])
			if okx && oky {
				ax = append(ax, vx)
				ay = append(ay, vy)
			}
		}
		d, err := stats.PairedDiff(ax, ay)
		if err != nil {
			return Aggregate{}, err
		}
		*f.field(&agg) = d
	}
	return agg, nil
}

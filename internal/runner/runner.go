// Package runner holds the concurrent-execution and aggregation machinery
// shared by the public Scenario API and the experiment harness
// (internal/expt): a cancellable worker pool over an index space, and the
// mean ± 95% CI aggregation of repeated-trial results that every figure of
// the paper's evaluation reports.
package runner

import (
	"context"
	"runtime"
	"sync"

	"github.com/hpcclab/taskdrop/internal/sim"
	"github.com/hpcclab/taskdrop/internal/stats"
)

// ForEach runs fn(i) for every i in [0, n) across a pool of workers
// goroutines (workers <= 0 means GOMAXPROCS). It stops scheduling new
// work on the first error or when ctx is cancelled, waits for in-flight
// calls to wind down, and returns ctx.Err() if the context was cancelled,
// else the first fn error, else nil.
//
// The ctx passed to fn is cancelled as soon as any call fails or the
// parent is cancelled, so long-running fn bodies can abort promptly.
func ForEach(ctx context.Context, workers, n int, fn func(ctx context.Context, i int) error) error {
	if n <= 0 {
		return ctx.Err()
	}
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers > n {
		workers = n
	}
	inner, cancel := context.WithCancel(ctx)
	defer cancel()

	var (
		wg       sync.WaitGroup
		mu       sync.Mutex
		firstErr error
	)
	jobs := make(chan int)
	go func() {
		defer close(jobs)
		for i := 0; i < n; i++ {
			select {
			case jobs <- i:
			case <-inner.Done():
				return
			}
		}
	}()
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := range jobs {
				if inner.Err() != nil {
					return
				}
				if err := fn(inner, i); err != nil {
					mu.Lock()
					if firstErr == nil {
						firstErr = err
					}
					mu.Unlock()
					cancel()
					return
				}
			}
		}()
	}
	wg.Wait()
	if err := ctx.Err(); err != nil {
		return err
	}
	mu.Lock()
	defer mu.Unlock()
	return firstErr
}

// Aggregate is the mean ± 95% CI aggregation of one spec's repeated
// trials — the form in which the paper reports every experimental result
// (§V-A).
type Aggregate struct {
	// Robustness is % of measured tasks completed on time (the paper's
	// headline metric).
	Robustness stats.Summary `json:"robustness"`
	// NormCost is Fig. 9's cost divided by robustness, scaled ×1000 for
	// readability ($ per 1000 robustness-percent).
	NormCost stats.Summary `json:"norm_cost"`
	// ReactiveShare is the % of drops that were reactive (§V-F).
	ReactiveShare stats.Summary `json:"reactive_share"`
	// Utility is the approximate-computing value metric (% of measured
	// tasks' maximum utility realized; equals Robustness at zero grace).
	Utility stats.Summary `json:"utility"`
	// ProactivePct / ReactivePct are % of measured tasks dropped each way.
	ProactivePct stats.Summary `json:"proactive_pct"`
	ReactivePct  stats.Summary `json:"reactive_pct"`
}

// Summarize aggregates per-trial results (nil entries are skipped) into
// mean ± 95% CI summaries.
func Summarize(results []*sim.Result) Aggregate {
	var rob, cost, share, util, pro, rea []float64
	for _, res := range results {
		if res == nil {
			continue
		}
		rob = append(rob, res.RobustnessPct)
		cost = append(cost, res.CostPerRobustness*1000)
		share = append(share, 100*res.DropReactiveShare())
		util = append(util, res.UtilityPct)
		if res.Measured > 0 {
			pro = append(pro, 100*float64(res.MDroppedProactive)/float64(res.Measured))
			rea = append(rea, 100*float64(res.MDroppedReactive)/float64(res.Measured))
		}
	}
	return Aggregate{
		Robustness:    stats.Summarize(rob),
		NormCost:      stats.Summarize(cost),
		ReactiveShare: stats.Summarize(share),
		Utility:       stats.Summarize(util),
		ProactivePct:  stats.Summarize(pro),
		ReactivePct:   stats.Summarize(rea),
	}
}

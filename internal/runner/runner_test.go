package runner

import (
	"context"
	"errors"
	"math"
	"sync/atomic"
	"testing"

	"github.com/hpcclab/taskdrop/internal/sim"
)

func TestForEachRunsEveryIndex(t *testing.T) {
	for _, workers := range []int{0, 1, 3, 64} {
		n := 50
		seen := make([]int32, n)
		err := ForEach(context.Background(), workers, n, func(_ context.Context, i int) error {
			atomic.AddInt32(&seen[i], 1)
			return nil
		})
		if err != nil {
			t.Fatalf("workers=%d: %v", workers, err)
		}
		for i, c := range seen {
			if c != 1 {
				t.Fatalf("workers=%d: index %d ran %d times", workers, i, c)
			}
		}
	}
}

func TestForEachEmpty(t *testing.T) {
	if err := ForEach(context.Background(), 4, 0, nil); err != nil {
		t.Fatal(err)
	}
}

func TestForEachStopsOnFirstError(t *testing.T) {
	boom := errors.New("boom")
	var ran atomic.Int32
	err := ForEach(context.Background(), 2, 1000, func(_ context.Context, i int) error {
		ran.Add(1)
		if i == 3 {
			return boom
		}
		return nil
	})
	if !errors.Is(err, boom) {
		t.Fatalf("err = %v, want boom", err)
	}
	if n := ran.Load(); n >= 1000 {
		t.Fatalf("pool did not stop early: %d calls", n)
	}
}

func TestForEachHonorsCancelledContext(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	var ran atomic.Int32
	err := ForEach(ctx, 2, 100, func(_ context.Context, _ int) error {
		ran.Add(1)
		return nil
	})
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	if n := ran.Load(); n > 2 {
		t.Fatalf("cancelled pool ran %d jobs", n)
	}
}

func TestForEachCancelPropagatesToJobContext(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	err := ForEach(ctx, 2, 10, func(inner context.Context, i int) error {
		cancel()
		<-inner.Done() // must unblock: the pool cancels the per-job context
		return inner.Err()
	})
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
}

func TestSummarize(t *testing.T) {
	results := []*sim.Result{
		{Measured: 100, MOnTime: 60, MDroppedProactive: 20, MDroppedReactive: 10, RobustnessPct: 60, UtilityPct: 60, CostPerRobustness: 0.001},
		nil, // skipped trials must not poison the aggregation
		{Measured: 100, MOnTime: 40, MDroppedProactive: 30, MDroppedReactive: 10, RobustnessPct: 40, UtilityPct: 40, CostPerRobustness: 0.002},
	}
	agg := Summarize(results)
	if agg.Robustness.N != 2 || agg.Robustness.Mean != 50 {
		t.Fatalf("robustness = %+v", agg.Robustness)
	}
	if agg.ProactivePct.Mean != 25 {
		t.Fatalf("proactive = %+v", agg.ProactivePct)
	}
	if agg.NormCost.Mean != 1.5 {
		t.Fatalf("norm cost = %+v", agg.NormCost)
	}
}

func TestSummarizeEdgeCases(t *testing.T) {
	// No results at all.
	if agg := Summarize(nil); agg.Robustness.N != 0 || agg.Robustness.Mean != 0 {
		t.Fatalf("empty = %+v", agg)
	}
	// Every entry nil.
	if agg := Summarize([]*sim.Result{nil, nil, nil}); agg.Robustness.N != 0 || agg.NormCost.N != 0 {
		t.Fatalf("all-nil = %+v", agg)
	}
	// A single trial: degenerate CI (no spread to estimate).
	agg := Summarize([]*sim.Result{{Measured: 10, MOnTime: 5, RobustnessPct: 50, UtilityPct: 50}})
	if agg.Robustness.N != 1 || agg.Robustness.Mean != 50 || agg.Robustness.CI95 != 0 {
		t.Fatalf("single trial = %+v", agg.Robustness)
	}
	// Zero-measured trials carry no drop percentages but still report the
	// other metrics.
	agg = Summarize([]*sim.Result{{Measured: 0}})
	if agg.ProactivePct.N != 0 || agg.ReactivePct.N != 0 {
		t.Fatalf("zero-measured drop pcts = %+v", agg)
	}
	if agg.Robustness.N != 1 {
		t.Fatalf("zero-measured robustness = %+v", agg.Robustness)
	}
}

func TestAggregateStat(t *testing.T) {
	agg := Summarize([]*sim.Result{
		{Measured: 100, MOnTime: 60, MDroppedProactive: 20, RobustnessPct: 60, UtilityPct: 70, CostPerRobustness: 0.001},
	})
	for name, want := range map[string]float64{
		"robustness":     60,
		"utility":        70,
		"norm_cost":      1,
		"proactive_pct":  20,
		"reactive_pct":   0,
		"reactive_share": 0,
	} {
		s, ok := agg.Stat(name)
		if !ok || s.Mean != want {
			t.Errorf("Stat(%q) = %+v, %v; want mean %v", name, s, ok, want)
		}
	}
	if _, ok := agg.Stat("bogus"); ok {
		t.Error("Stat must reject unknown metric names")
	}
}

func TestSummarizeDiff(t *testing.T) {
	xs := []*sim.Result{
		{Measured: 100, MOnTime: 60, RobustnessPct: 60, UtilityPct: 60},
		{Measured: 100, MOnTime: 50, RobustnessPct: 50, UtilityPct: 50},
		{Measured: 100, MOnTime: 70, RobustnessPct: 70, UtilityPct: 70},
	}
	ys := []*sim.Result{
		{Measured: 100, MOnTime: 40, RobustnessPct: 40, UtilityPct: 40},
		{Measured: 100, MOnTime: 35, RobustnessPct: 35, UtilityPct: 35},
		{Measured: 100, MOnTime: 45, RobustnessPct: 45, UtilityPct: 45},
	}
	diff, err := SummarizeDiff(xs, ys)
	if err != nil {
		t.Fatal(err)
	}
	// Differences: 20, 15, 25 → mean 20, sd 5, CI = t(2)·5/√3.
	if diff.Robustness.N != 3 || diff.Robustness.Mean != 20 {
		t.Fatalf("diff robustness = %+v", diff.Robustness)
	}
	wantCI := 4.303 * 5 / math.Sqrt(3)
	if math.Abs(diff.Robustness.CI95-wantCI) > 1e-9 {
		t.Fatalf("diff CI = %v, want %v", diff.Robustness.CI95, wantCI)
	}
	// The paired mean always equals the difference of means on shared
	// index sets.
	agg := Summarize(xs)
	base := Summarize(ys)
	if got := agg.Robustness.Mean - base.Robustness.Mean; math.Abs(diff.Robustness.Mean-got) > 1e-12 {
		t.Fatalf("paired mean %v != mean difference %v", diff.Robustness.Mean, got)
	}
}

func TestSummarizeDiffSkipsUnpairedTrials(t *testing.T) {
	xs := []*sim.Result{{Measured: 10, RobustnessPct: 60}, nil, {Measured: 10, RobustnessPct: 50}}
	ys := []*sim.Result{{Measured: 10, RobustnessPct: 40}, {Measured: 10, RobustnessPct: 99}, nil}
	diff, err := SummarizeDiff(xs, ys)
	if err != nil {
		t.Fatal(err)
	}
	if diff.Robustness.N != 1 || diff.Robustness.Mean != 20 {
		t.Fatalf("unpaired trials not skipped pairwise: %+v", diff.Robustness)
	}
}

func TestSummarizeDiffLengthMismatch(t *testing.T) {
	if _, err := SummarizeDiff(make([]*sim.Result, 2), make([]*sim.Result, 3)); err == nil {
		t.Fatal("length mismatch must error")
	}
}

package runner

import (
	"context"
	"errors"
	"sync/atomic"
	"testing"

	"github.com/hpcclab/taskdrop/internal/sim"
)

func TestForEachRunsEveryIndex(t *testing.T) {
	for _, workers := range []int{0, 1, 3, 64} {
		n := 50
		seen := make([]int32, n)
		err := ForEach(context.Background(), workers, n, func(_ context.Context, i int) error {
			atomic.AddInt32(&seen[i], 1)
			return nil
		})
		if err != nil {
			t.Fatalf("workers=%d: %v", workers, err)
		}
		for i, c := range seen {
			if c != 1 {
				t.Fatalf("workers=%d: index %d ran %d times", workers, i, c)
			}
		}
	}
}

func TestForEachEmpty(t *testing.T) {
	if err := ForEach(context.Background(), 4, 0, nil); err != nil {
		t.Fatal(err)
	}
}

func TestForEachStopsOnFirstError(t *testing.T) {
	boom := errors.New("boom")
	var ran atomic.Int32
	err := ForEach(context.Background(), 2, 1000, func(_ context.Context, i int) error {
		ran.Add(1)
		if i == 3 {
			return boom
		}
		return nil
	})
	if !errors.Is(err, boom) {
		t.Fatalf("err = %v, want boom", err)
	}
	if n := ran.Load(); n >= 1000 {
		t.Fatalf("pool did not stop early: %d calls", n)
	}
}

func TestForEachHonorsCancelledContext(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	var ran atomic.Int32
	err := ForEach(ctx, 2, 100, func(_ context.Context, _ int) error {
		ran.Add(1)
		return nil
	})
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	if n := ran.Load(); n > 2 {
		t.Fatalf("cancelled pool ran %d jobs", n)
	}
}

func TestForEachCancelPropagatesToJobContext(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	err := ForEach(ctx, 2, 10, func(inner context.Context, i int) error {
		cancel()
		<-inner.Done() // must unblock: the pool cancels the per-job context
		return inner.Err()
	})
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
}

func TestSummarize(t *testing.T) {
	results := []*sim.Result{
		{Measured: 100, MOnTime: 60, MDroppedProactive: 20, MDroppedReactive: 10, RobustnessPct: 60, UtilityPct: 60, CostPerRobustness: 0.001},
		nil, // skipped trials must not poison the aggregation
		{Measured: 100, MOnTime: 40, MDroppedProactive: 30, MDroppedReactive: 10, RobustnessPct: 40, UtilityPct: 40, CostPerRobustness: 0.002},
	}
	agg := Summarize(results)
	if agg.Robustness.N != 2 || agg.Robustness.Mean != 50 {
		t.Fatalf("robustness = %+v", agg.Robustness)
	}
	if agg.ProactivePct.Mean != 25 {
		t.Fatalf("proactive = %+v", agg.ProactivePct)
	}
	if agg.NormCost.Mean != 1.5 {
		t.Fatalf("norm cost = %+v", agg.NormCost)
	}
}

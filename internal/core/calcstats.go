package core

import mathbits "math/bits"

// Calculus introspection: cheap always-on counters behind the service's
// /metrics series (chain-cache effectiveness, PMF impulse widths, arena
// high-water). They are the before-picture any calculus optimization —
// per-machine chain invalidation in particular — will be judged against.

// NumWidthBuckets is the number of impulse-width histogram buckets:
// powers of two 1,2,4,8,16,32 plus an overflow bucket. The default
// compaction budget (pmf.DefaultMaxImpulses = 32) means steady-state
// chains should never land in the overflow bucket.
const NumWidthBuckets = 7

// WidthBucketBound returns the inclusive upper bound of width bucket i,
// or -1 for the overflow (+Inf) bucket.
func WidthBucketBound(i int) int {
	if i >= NumWidthBuckets-1 {
		return -1
	}
	return 1 << i
}

// widthBucket maps an impulse count onto its histogram bucket.
func widthBucket(n int) int {
	if n <= 1 {
		return 0
	}
	b := mathbits.Len(uint(n - 1)) // 2->1, 3..4->2, 5..8->3, 9..16->4, 17..32->5, 33..64->6
	if b >= NumWidthBuckets {
		b = NumWidthBuckets - 1
	}
	return b
}

// observeWidth records the impulse count of one freshly computed (not
// memoized) Eq. 1 completion PMF.
func (c *Calculus) observeWidth(n int) {
	c.widths[widthBucket(n)].Add(1)
	c.widthSum.Add(uint64(n))
}

// CalcStats is a point-in-time snapshot of a calculus' introspection
// counters. Counts are cumulative since construction (Recycle does not
// reset them).
type CalcStats struct {
	// ChainHits/ChainMisses count Eq. 1 chain transitions served from the
	// shared-prefix trie vs freshly convolved (ChainState.Append).
	ChainHits   uint64
	ChainMisses uint64
	// RootHits/RootMisses count availability-root lookups (ChainStart).
	RootHits   uint64
	RootMisses uint64
	// Widths[i] counts freshly computed completion PMFs whose impulse
	// count fell in bucket i (see WidthBucketBound); WidthSum is the total
	// impulse count over all of them.
	Widths   [NumWidthBuckets]uint64
	WidthSum uint64
	// ArenaHighWaterBytes is the convolution workspace's peak committed
	// arena footprint (see pmf.Workspace.HighWaterBytes).
	ArenaHighWaterBytes int64
	// InvalidationsEvent/Churn/Overflow count persistent chain-cache
	// resets by reason (see InvalidationReason).
	InvalidationsEvent    uint64
	InvalidationsChurn    uint64
	InvalidationsOverflow uint64
	// PinnedBytes is the impulse storage currently pinned across every
	// ChainCache bound to this calculus — what survives a Recycle.
	PinnedBytes int64
}

// Stats snapshots the calculus' introspection counters. Safe to call from
// any goroutine while the owning loop keeps deciding.
func (c *Calculus) Stats() CalcStats {
	st := CalcStats{
		ChainHits:             c.chainHits.Load(),
		ChainMisses:           c.chainMisses.Load(),
		RootHits:              c.rootHits.Load(),
		RootMisses:            c.rootMisses.Load(),
		WidthSum:              c.widthSum.Load(),
		ArenaHighWaterBytes:   c.ws.HighWaterBytes(),
		InvalidationsEvent:    c.invEvent.Load(),
		InvalidationsChurn:    c.invChurn.Load(),
		InvalidationsOverflow: c.invOverflow.Load(),
		PinnedBytes:           c.pinnedBytes.Load(),
	}
	for i := range st.Widths {
		st.Widths[i] = c.widths[i].Load()
	}
	return st
}

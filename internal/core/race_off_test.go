//go:build !race

package core

// raceEnabled reports that the race detector is active; allocation-budget
// assertions are skipped because instrumentation changes alloc counts.
const raceEnabled = false

package core

import (
	"fmt"

	"github.com/hpcclab/taskdrop/internal/pmf"
)

// This file implements the approximate-computing extension the paper names
// as future work (§VI): "we plan to extend the probabilistic analysis to
// consider approximately computing tasks, in addition to task dropping."
//
// In approximate computing, a task that finishes shortly after its
// deadline still delivers partial value (a video segment transcoded a
// little late can still be spliced in at reduced quality). We model value
// as a linear ramp: completing strictly before the deadline is worth 1,
// completing at deadline+grace or later is worth 0, and completions inside
// the grace window interpolate linearly.

// ExpectedUtility returns the expected value of a completion-time PMF
// against a deadline with a linear grace window:
//
//	U = P(C < δ) + Σ_{δ ≤ t < δ+g} c(t) · (1 − (t−δ)/g)
//
// With g = 0 it degenerates to the chance of success (Eq. 2).
func ExpectedUtility(cp pmf.PMF, deadline pmf.Tick, grace pmf.Tick) float64 {
	if grace <= 0 {
		return cp.MassBefore(deadline)
	}
	u := 0.0
	g := float64(grace)
	for _, im := range cp.Impulses() {
		switch {
		case im.T < deadline:
			u += im.P
		case im.T < deadline+grace:
			u += im.P * (1 - float64(im.T-deadline)/g)
		}
	}
	return u
}

// FollowEngineGrace, as ApproxHeuristic.Grace, makes the policy adopt the
// engine's reactive grace window (Context.Grace) at every decision — so
// policy and engine always assume the same leeway without the caller
// keeping two knobs in sync. It is the default of the "approx" spec when
// no explicit grace parameter is given.
const FollowEngineGrace pmf.Tick = -1

// ApproxHeuristic is the proactive dropping heuristic driven by expected
// utility instead of the chance of success: with a non-zero grace window a
// slightly-late task retains value, so the policy drops less aggressively
// than the strict-deadline heuristic. Consistently, its completion-time
// chains truncate Eq. 1 at deadline+Grace — a task is only "reactively
// dropped" in the forecast once it can no longer earn any value. With
// Grace = 0 its decisions are identical to Heuristic.
//
// Grace = FollowEngineGrace (the spec default) tracks the engine's
// sim.Config.ReactiveGrace automatically; an explicit Grace ≥ 0 overrides
// it, in which case pair it with the engine's grace yourself.
type ApproxHeuristic struct {
	Beta  float64  // robustness improvement factor (β), ≥ 1
	Eta   int      // effective depth (η), ≥ 1
	Grace pmf.Tick // linear value decay window after the deadline
}

// NewApproxHeuristic returns the utility-driven heuristic with the tuned
// η=2, β=1 and the given grace window.
func NewApproxHeuristic(grace pmf.Tick) ApproxHeuristic {
	return ApproxHeuristic{Beta: DefaultBeta, Eta: DefaultEta, Grace: grace}
}

// Name implements Policy.
func (ApproxHeuristic) Name() string { return "ApproxHeuristic" }

// StableDecision implements StableDecider: Context.Grace is an engine
// constant, so the walk's inputs reduce to the availability root, the
// queue's types and deadlines, and β/η/grace.
func (ApproxHeuristic) StableDecision() bool { return true }

// Decide implements Policy.
func (a ApproxHeuristic) Decide(ctx *Context) []int {
	grace := a.Grace
	if grace == FollowEngineGrace {
		grace = ctx.Grace
	}
	if a.Beta < 1 || a.Eta < 1 || grace < 0 {
		panic(fmt.Sprintf("core: invalid approx heuristic parameters β=%v η=%d g=%d", a.Beta, a.Eta, grace))
	}
	value := func(cp pmf.PMF, qt QueueTask) float64 {
		return ExpectedUtility(cp, qt.Deadline, grace)
	}
	graced := func(qt QueueTask) pmf.Tick { return qt.Deadline + grace }
	return heuristicWalk(ctx, a.Beta, a.Eta, value, graced)
}

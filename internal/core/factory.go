package core

import (
	"fmt"
	"strings"
)

// PolicyByName constructs a dropping policy with its default tuning from a
// (case-insensitive) name: "ReactDrop" (aliases "reactive", "none"),
// "Heuristic", "Optimal", "Threshold".
func PolicyByName(name string) (Policy, error) {
	switch strings.ToLower(name) {
	case "reactdrop", "reactive", "none":
		return ReactiveOnly{}, nil
	case "heuristic":
		return NewHeuristic(), nil
	case "optimal":
		return Optimal{}, nil
	case "threshold":
		return NewThreshold(), nil
	default:
		return nil, fmt.Errorf("core: unknown dropping policy %q", name)
	}
}

// PolicyNames lists the constructible policy names.
func PolicyNames() []string {
	return []string{"ReactDrop", "Heuristic", "Optimal", "Threshold"}
}

package core

import (
	"fmt"

	"github.com/hpcclab/taskdrop/internal/pmf"
	"github.com/hpcclab/taskdrop/internal/spec"
)

// PolicyFromSpec constructs a dropping policy from a parameterized spec
// string (see package spec for the grammar). Recognized components and
// their parameters:
//
//	reactdrop (aliases: reactive, none)
//	heuristic:beta=<float ≥1>,eta=<int ≥1>
//	optimal
//	threshold:base=<float in [0,1]>,adaptive[=bool]
//	approx:grace=<ticks ≥0>,beta=<float ≥1>,eta=<int ≥1>
//
// An omitted approx grace (or the explicit sentinel grace=-1) yields
// FollowEngineGrace: the policy adopts the engine's reactive grace window.
// Other omitted parameters take the paper's tuned defaults. Unknown names,
// unknown parameters and out-of-range values are errors, so every
// resolution path (CLI, experiment harness, Scenario API) fails loudly on
// a mistyped spec.
func PolicyFromSpec(s string) (Policy, error) {
	name, params, err := spec.Parse(s)
	if err != nil {
		return nil, err
	}
	var p Policy
	switch name {
	case "reactdrop", "reactive", "none":
		p = ReactiveOnly{}
	case "heuristic":
		h := Heuristic{Beta: params.Float("beta", DefaultBeta), Eta: params.Int("eta", DefaultEta)}
		if h.Beta < 1 || h.Eta < 1 {
			return nil, fmt.Errorf("core: heuristic requires beta >= 1 and eta >= 1, got %q", s)
		}
		p = h
	case "optimal":
		p = Optimal{}
	case "threshold":
		t := Threshold{Base: params.Float("base", DefaultThresholdBase), Adaptive: params.Bool("adaptive", true)}
		if t.Base < 0 || t.Base > 1 {
			return nil, fmt.Errorf("core: threshold base must be in [0,1], got %q", s)
		}
		p = t
	case "approx":
		a := ApproxHeuristic{
			Beta:  params.Float("beta", DefaultBeta),
			Eta:   params.Int("eta", DefaultEta),
			Grace: pmf.Tick(params.Int64("grace", int64(FollowEngineGrace))),
		}
		if a.Beta < 1 || a.Eta < 1 || (a.Grace < 0 && a.Grace != FollowEngineGrace) {
			return nil, fmt.Errorf("core: approx requires beta >= 1, eta >= 1 and grace >= 0 (or -1 to follow the engine grace), got %q", s)
		}
		p = a
	default:
		return nil, fmt.Errorf("core: unknown dropping policy %q", s)
	}
	if err := params.Finish(); err != nil {
		return nil, err
	}
	return p, nil
}

// PolicyByName constructs a dropping policy from a (case-insensitive)
// name or parameterized spec; it is the same resolution path as
// PolicyFromSpec and is kept for callers that predate the spec grammar.
func PolicyByName(name string) (Policy, error) { return PolicyFromSpec(name) }

// PolicyNames lists the constructible policy names.
func PolicyNames() []string {
	return []string{"ReactDrop", "Heuristic", "Optimal", "Threshold", "Approx"}
}

package core

import (
	"github.com/hpcclab/taskdrop/internal/pet"
	"github.com/hpcclab/taskdrop/internal/pmf"
)

// Persistent per-machine chain cache.
//
// Recycle wipes the calculus' per-event trie and arena because their
// storage is shared across machines and events. But the Eq. 1 chains of a
// single machine are a pure function of (availability root, appended
// (type, deadline) sequence): if the root PMF is bitwise the inputs cold
// evaluation would use, every memoized transition under it is bitwise what
// cold evaluation would produce. A ChainCache exploits that: it owns a
// machine's trie and pins the trie's PMFs in its own arena, so the whole
// structure survives Recycle; it is invalidated — wholesale, per machine —
// only when the machine's root signature drifts.
//
// The root signature is where the time-shift tolerance lives. A running
// head's availability is ConditionalRemainingShift(exec, elapsed, now):
// impulses with T > elapsed survive, shifted to T - elapsed + now =
// T + start and renormalized by the surviving mass. Between events, now
// and elapsed both advance, but start = now - elapsed is constant and the
// surviving set only changes when elapsed crosses an impulse of exec. So
// the availability is a step function of the clock, bit-stable while
// (head type, start, conditioning cut) hold — the cache revalidates by
// recomputing that cheap signature, not the PMF. Idle machines
// (availability Delta(now)) and degenerate tails (Delta(now+1)) do depend
// on the clock and carry now in their signature; they go cold on every
// clock advance, which is also exactly when their cached chains would be
// wrong.
//
// This is the delta-maintenance discipline of the queue-head transition:
// when a head completes and its successor starts, the new availability is
// one conditional shift/renormalize pass over the successor's execution
// PMF (the availability operation itself — never a re-convolution), and
// the chain suffix behind it rebuilds through memoized appends. The
// fallback to cold evaluation is the signature mismatch: any event that
// changes what cold evaluation would compute — head start, cut drift,
// clock drift on a now-dependent root — resets the machine's cache, so
// the delta path can never change results.
type ChainCache struct {
	c    *Calculus
	trie chainTrie
	pin  pinArena

	valid bool
	sig   rootSig
	root  int32
	// gen increments on every reset; external memos (a machine's tail-chain
	// state) key on it.
	gen uint64
	// checked is 1 + the epoch of the last ChainStartCached validation
	// (0 = never): the deferred-overflow guard, see ChainStartCached.
	checked uint64
	// overflowed defers an over-budget reset to the next epoch boundary so
	// the decision in flight keeps its pinned PMFs.
	overflowed bool
	maxPinned  int
}

// rootSig captures, bitwise, everything a machine's availability root PMF
// depends on. Two equal signatures guarantee cold evaluation would produce
// the identical bit pattern, so a cached root (and every chain under it)
// may be reused.
type rootSig struct {
	// running distinguishes the idle root Delta(now) from a conditional
	// completion root.
	running bool
	// nowDep marks roots whose bits depend on the clock itself: idle
	// deltas and degenerate tails (cut == len(exec) → Delta(now+1)). For
	// those, now joins the signature and the cache goes cold on every
	// clock advance.
	nowDep bool
	rt     pet.TaskType
	// start is the running head's absolute start tick (now - elapsed):
	// surviving impulses land at T + start regardless of the clock.
	start pmf.Tick
	// cut is the number of exec impulses removed by conditioning
	// (T <= elapsed), which fixes both the surviving set and the
	// renormalization factor; -1 flags the elapsed <= 0 branch, which
	// shifts without renormalizing and is a different bit pattern even
	// when the cut would be 0.
	cut int32
	now pmf.Tick
}

// InvalidationReason labels why a machine's persistent chain cache was
// reset; the service exports the counts as
// taskdrop_chain_invalidations_total{reason}.
type InvalidationReason uint8

const (
	// InvalidateEvent: the root signature drifted — a mapping event or
	// clock advance changed the availability inputs (head started or
	// finished, conditioning cut crossed an impulse, now-dependent root
	// saw a new tick).
	InvalidateEvent InvalidationReason = iota
	// InvalidateChurn: the machine left or rejoined the live set
	// (membership ops, snapshot restore).
	InvalidateChurn
	// InvalidateOverflow: the pinned arena outgrew its budget and the
	// cache was recycled wholesale at the next epoch boundary.
	InvalidateOverflow
)

// DefaultMaxPinnedImpulses bounds the impulse storage one machine's chain
// cache pins before it is recycled wholesale (reason "overflow"): 16Ki
// impulses = 256 KiB, roughly 500 budget-width chain nodes — far beyond
// what a queue-bounded machine accumulates between natural signature
// drifts, but a hard stop against deadline-diverse candidate edges pinning
// memory without bound.
const DefaultMaxPinnedImpulses = 16 << 10

// NewChainCache returns an empty persistent chain cache bound to c. The
// engine owns one per machine and passes it to ChainStartCached (directly
// or via Context.ChainStart); a nil *ChainCache everywhere degrades to the
// per-event trie.
func (c *Calculus) NewChainCache() *ChainCache {
	return &ChainCache{c: c, maxPinned: DefaultMaxPinnedImpulses}
}

// Gen returns the cache generation, incremented by every reset. External
// memos holding a ChainState from this cache must revalidate on it.
func (cc *ChainCache) Gen() uint64 {
	if cc == nil {
		return 0
	}
	return cc.gen
}

// PinnedImpulses returns the impulse count currently pinned.
func (cc *ChainCache) PinnedImpulses() int {
	if cc == nil {
		return 0
	}
	return cc.pin.committed
}

// Invalidate resets the cache, dropping every pinned chain, and records
// the reason. Callers use it for lifecycle transitions the signature
// cannot see (machine churn, snapshot restore). Invalidating an empty
// cache is a no-op and not counted. PMFs previously obtained through the
// cache become invalid.
func (cc *ChainCache) Invalidate(reason InvalidationReason) {
	if cc == nil || (!cc.valid && cc.pin.committed == 0) {
		return
	}
	cc.resetFor(reason)
}

// resetFor drops the trie and pinned arena, bumps the generation and
// counts the reason on the owning calculus.
func (cc *ChainCache) resetFor(reason InvalidationReason) {
	cc.trie.reset()
	cc.pin.reset(cc.c)
	cc.valid = false
	cc.overflowed = false
	cc.gen++
	switch reason {
	case InvalidateEvent:
		cc.c.invEvent.Add(1)
	case InvalidateChurn:
		cc.c.invChurn.Add(1)
	case InvalidateOverflow:
		cc.c.invOverflow.Add(1)
	}
}

// adopt moves a freshly convolved chain PMF into pinned storage. A
// pass-through result (Eq. 1 carried the predecessor through unchanged,
// e.g. a task already past its truncation deadline) aliases the
// predecessor's pinned storage and is kept as is — the common case in
// oversubscribed queues, where long carry chains would otherwise pin one
// copy per node.
func (cc *ChainCache) adopt(prev, cp pmf.PMF) pmf.PMF {
	if sameStorage(prev, cp) {
		return prev
	}
	out := cc.pin.pin(cc.c, cp)
	if cc.pin.committed > cc.maxPinned {
		cc.overflowed = true
	}
	return out
}

// sameStorage reports whether two PMFs alias the identical impulse slice.
func sameStorage(a, b pmf.PMF) bool {
	ai, bi := a.Impulses(), b.Impulses()
	return len(ai) == len(bi) && (len(ai) == 0 || &ai[0] == &bi[0])
}

// RootStable reports whether cc's cached availability root is still
// bitwise the root that (mt, now, q) would produce — i.e. whether chain
// states and decisions derived under cc's current generation remain
// current. It is a pure signature comparison: no chains are evaluated, no
// state changes, and a pending overflow recycle is not triggered (an
// overflowed cache still holds bitwise-correct chains until it is reset).
func (c *Calculus) RootStable(cc *ChainCache, mt pet.MachineType, now pmf.Tick, q []QueueTask) bool {
	if cc == nil || !cc.valid {
		return false
	}
	sig, _, _ := c.rootSignature(mt, now, q)
	return sig == cc.sig
}

// rootSignature derives the cache signature, the first-pending index and
// the per-event root key for (mt, now, q).
func (c *Calculus) rootSignature(mt pet.MachineType, now pmf.Tick, q []QueueTask) (rootSig, int, chainRootKey) {
	key := chainRootKey{mt: mt, now: now}
	first := 0
	var sig rootSig
	if len(q) > 0 && q[0].Running {
		key.running, key.rt, key.elapsed = true, q[0].Type, q[0].Elapsed
		first = 1
		sig.running = true
		sig.rt = q[0].Type
		sig.start = now - q[0].Elapsed
		if q[0].Elapsed <= 0 {
			sig.cut = -1
		} else {
			exec := c.exec(q[0].Type, mt)
			cut := exec.Rank(q[0].Elapsed)
			sig.cut = int32(cut)
			if cut == exec.Len() {
				// Tail mass gone: availability degenerates to Delta(now+1).
				sig.nowDep, sig.now = true, now
			}
		}
	} else {
		sig.nowDep, sig.now = true, now
	}
	return sig, first, key
}

// ChainStartCached is ChainStart routed through a machine's persistent
// cache: it revalidates the cached root against the current signature,
// resetting the cache when the signature drifted (reason "event") or a
// deferred overflow is pending, and returns a ChainState whose appends
// memoize into — and pin inside — the cache. With cc == nil it falls back
// to the per-event trie. Cached results are bitwise identical to cold
// evaluation (see the ChainCache comment); hit/miss accounting uses the
// same root/edge counters as the per-event trie.
func (c *Calculus) ChainStartCached(cc *ChainCache, mt pet.MachineType, now pmf.Tick, q []QueueTask) (ChainState, int) {
	if cc == nil {
		return c.ChainStart(mt, now, q)
	}
	sig, first, key := c.rootSignature(mt, now, q)
	if cc.overflowed && cc.checked != c.epoch+1 {
		// The budget blew during an earlier epoch; reset now that no
		// decision holds the pinned PMFs.
		cc.resetFor(InvalidateOverflow)
	}
	if cc.valid && cc.sig != sig {
		cc.resetFor(InvalidateEvent)
	}
	cc.checked = c.epoch + 1
	if cc.valid {
		c.rootHits.Add(1)
		return ChainState{c: c, cc: cc, mt: mt, node: cc.root}, first
	}
	c.rootMisses.Add(1)
	avail := cc.pin.pin(c, c.availability(key))
	if cc.pin.committed > cc.maxPinned {
		cc.overflowed = true
	}
	cc.root = cc.trie.newNode(avail)
	cc.sig = sig
	cc.valid = true
	return ChainState{c: c, cc: cc, mt: mt, node: cc.root}, first
}

// pinArena is a ChainCache's impulse store: append-only blocks holding
// CloneInto copies of chain PMFs. pin is the only way storage enters;
// reset is the only way it leaves (whole-cache invalidation) — there is no
// per-PMF free, which is what makes pinning O(n) copy with zero
// bookkeeping. Blocks double up to a cap, like the workspace arena.
type pinArena struct {
	block     []pmf.Impulse
	old       [][]pmf.Impulse // full blocks still referenced by trie nodes
	used      int
	committed int // impulses pinned since the last reset, across all blocks
}

const (
	minPinBlockImpulses = 512
	maxPinBlockImpulses = 16 << 10
	pinImpulseBytes     = 16
)

// pin copies p into arena storage and returns the pinned PMF. Empty PMFs
// need no storage and pass through.
func (a *pinArena) pin(c *Calculus, p pmf.PMF) pmf.PMF {
	n := p.Len()
	if n == 0 {
		return p
	}
	if a.used+n > len(a.block) {
		if a.block != nil {
			a.old = append(a.old, a.block)
		}
		size := 2 * len(a.block)
		if size > maxPinBlockImpulses {
			size = maxPinBlockImpulses
		}
		if size < minPinBlockImpulses {
			size = minPinBlockImpulses
		}
		if size < n {
			size = n
		}
		a.block = make([]pmf.Impulse, size)
		a.used = 0
	}
	out, _ := p.CloneInto(a.block[a.used : a.used : a.used+n])
	a.used += n
	a.committed += n
	c.pinnedBytes.Add(int64(n) * pinImpulseBytes)
	return out
}

// reset drops all pinned storage. The current block is kept for reuse;
// full blocks are released to the collector once no stale ChainState
// references them (stale states are fenced off by the generation bump).
func (a *pinArena) reset(c *Calculus) {
	if a.committed > 0 {
		c.pinnedBytes.Add(-int64(a.committed) * pinImpulseBytes)
	}
	a.old = nil
	a.used = 0
	a.committed = 0
}

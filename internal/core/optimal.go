package core

import "math/bits"

// Optimal is the optimal proactive dropping policy of §IV-D: at each
// mapping event it enumerates every subset of droppable tasks (2^(q−1)
// cases for a queue of q pending tasks — the final task is excluded, its
// influence zone being empty) and drops the subset that maximizes the
// queue's instantaneous robustness (Eq. 3). Exponential in the queue bound,
// which the paper keeps small (6 slots including the running task).
//
// The enumeration walks the keep/drop decision tree depth-first so that
// shared queue prefixes are convolved once, not once per subset.
//
// Ties are broken toward fewer drops (so the keep-everything baseline
// survives exact ties), then toward the first subset found in drop-first
// order.
type Optimal struct{}

// Name implements Policy.
func (Optimal) Name() string { return "Optimal" }

// StableDecision implements StableDecider: the subset enumeration reads
// only the availability root and the queue's types and deadlines.
func (Optimal) StableDecision() bool { return true }

// optimalSearch carries the shared state of one decision-tree walk.
type optimalSearch struct {
	cands []QueueTask // droppable tasks (queue[first:last])
	tail  []QueueTask // tasks after the candidates (at least the final one)

	bestR    float64
	bestMask uint32
	bestSize int
	haveBest bool
}

// Decide implements Policy.
func (Optimal) Decide(ctx *Context) []int {
	q := ctx.Queue
	first, last := droppableBounds(q)
	if last-first <= 0 {
		return nil
	}
	start, _ := ctx.ChainStart()
	s := &optimalSearch{
		cands: q[first:last],
		tail:  q[last:],
	}
	s.walk(0, start, 0, 0)
	if !s.haveBest || s.bestMask == 0 {
		return nil
	}
	drops := make([]int, 0, s.bestSize)
	for b := range s.cands {
		if s.bestMask&(1<<b) != 0 {
			drops = append(drops, first+b)
		}
	}
	return drops
}

// walk explores keep/drop decisions for candidate i given the chain state.
// Chain states are memoized in the calculus trie, so beyond the explicit
// prefix sharing of the depth-first walk, the tail chains behind identical
// survivor sets are also convolved only once per decision.
func (s *optimalSearch) walk(i int, prev ChainState, sum float64, mask uint32) {
	if i == len(s.cands) {
		for _, qt := range s.tail {
			prev = prev.AppendTask(qt)
			sum += prev.PMF().MassBefore(qt.Deadline)
		}
		size := bits.OnesCount32(mask)
		if !s.haveBest || sum > s.bestR+1e-12 || (sum >= s.bestR-1e-12 && size < s.bestSize) {
			s.bestR, s.bestMask, s.bestSize, s.haveBest = sum, mask, size, true
		}
		return
	}
	qt := s.cands[i]
	// Keep candidate i.
	kept := prev.AppendTask(qt)
	s.walk(i+1, kept, sum+kept.PMF().MassBefore(qt.Deadline), mask)
	// Drop candidate i: the chain passes through unchanged.
	s.walk(i+1, prev, sum, mask|1<<i)
}

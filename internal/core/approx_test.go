package core

import (
	"math"
	"math/rand"
	"reflect"
	"testing"

	"github.com/hpcclab/taskdrop/internal/pmf"
)

func TestExpectedUtilityZeroGraceIsCoS(t *testing.T) {
	cp := pmf.FromImpulses([]pmf.Impulse{{T: 10, P: 0.4}, {T: 20, P: 0.6}})
	if got, want := ExpectedUtility(cp, 15, 0), cp.MassBefore(15); got != want {
		t.Fatalf("grace=0 utility %v != CoS %v", got, want)
	}
}

func TestExpectedUtilityLinearRamp(t *testing.T) {
	// Mass at deadline+5 with grace 10 → 0.5 value.
	cp := pmf.FromImpulses([]pmf.Impulse{{T: 105, P: 1}})
	if got := ExpectedUtility(cp, 100, 10); math.Abs(got-0.5) > 1e-12 {
		t.Fatalf("utility = %v, want 0.5", got)
	}
	// Exactly at the deadline: full ramp value 1·(1−0) = 1? No: at t = δ
	// the task is late; the ramp gives 1 − 0/g = 1 only at t = δ itself.
	at := pmf.FromImpulses([]pmf.Impulse{{T: 100, P: 1}})
	if got := ExpectedUtility(at, 100, 10); math.Abs(got-1.0) > 1e-12 {
		t.Fatalf("utility at deadline = %v, want 1.0 (zero lateness)", got)
	}
	// Beyond the grace window: worthless.
	lateCp := pmf.FromImpulses([]pmf.Impulse{{T: 110, P: 1}})
	if got := ExpectedUtility(lateCp, 100, 10); got != 0 {
		t.Fatalf("utility beyond grace = %v, want 0", got)
	}
}

func TestExpectedUtilityMixture(t *testing.T) {
	cp := pmf.FromImpulses([]pmf.Impulse{
		{T: 90, P: 0.5},  // on time → 0.5
		{T: 104, P: 0.3}, // 4/8 into the ramp → 0.3·0.5 = 0.15
		{T: 200, P: 0.2}, // worthless
	})
	want := 0.5 + 0.3*(1-4.0/8.0)
	if got := ExpectedUtility(cp, 100, 8); math.Abs(got-want) > 1e-12 {
		t.Fatalf("utility = %v, want %v", got, want)
	}
}

func TestExpectedUtilityBounds(t *testing.T) {
	r := rand.New(rand.NewSource(61))
	for i := 0; i < 200; i++ {
		m, q, now := randomQueueCase(r)
		c := NewCalculus(m)
		cps := c.CompletionPMFs(0, now, q)
		for k, cp := range cps {
			grace := pmf.Tick(r.Intn(100))
			u := ExpectedUtility(cp, q[k].Deadline, grace)
			cos := cp.MassBefore(q[k].Deadline)
			if u < cos-1e-9 || u > cp.TotalMass()+1e-9 {
				t.Fatalf("utility %v outside [CoS %v, mass %v]", u, cos, cp.TotalMass())
			}
		}
	}
}

func TestApproxHeuristicZeroGraceMatchesHeuristic(t *testing.T) {
	r := rand.New(rand.NewSource(62))
	h := NewHeuristic()
	a := NewApproxHeuristic(0)
	for i := 0; i < 300; i++ {
		m, q, now := randomQueueCase(r)
		c := NewCalculus(m)
		ctx := &Context{Calc: c, Machine: 0, Now: now, Queue: q}
		got := a.Decide(ctx)
		want := h.Decide(ctx)
		if !reflect.DeepEqual(normalizeNil(got), normalizeNil(want)) {
			t.Fatalf("case %d: approx(g=0) %v != heuristic %v", i, got, want)
		}
	}
}

func TestApproxHeuristicSparesSlightlyLateTasks(t *testing.T) {
	// Task 0 finishes at 100 against deadline 90 (CoS 0) and starves task
	// 1 (deadline 50) completely: the strict heuristic drops task 0
	// (gain 1 > loss 0). With a generous grace window of 200 ticks both
	// tasks retain most of their value when kept (0.95 + 0.75 = 1.70 vs
	// 1.00 for dropping), so the approximate policy keeps task 0.
	m := testMatrix(t, [][]pmf.PMF{{delta(100)}, {delta(10)}})
	c := NewCalculus(m)
	q := []QueueTask{
		{Type: 0, Deadline: 90},
		{Type: 1, Deadline: 50},
	}
	strict := NewHeuristic().Decide(&Context{Calc: c, Machine: 0, Now: 0, Queue: q})
	if !reflect.DeepEqual(strict, []int{0}) {
		t.Fatalf("strict heuristic: got %v, want [0]", strict)
	}
	approx := NewApproxHeuristic(200).Decide(&Context{Calc: c, Machine: 0, Now: 0, Queue: q})
	if approx != nil {
		t.Fatalf("approx heuristic dropped %v; grace should spare task 0", approx)
	}
}

func TestApproxHeuristicFollowsEngineGrace(t *testing.T) {
	// With Grace = FollowEngineGrace the policy must behave exactly like an
	// explicit-grace policy given the same window through Context.Grace.
	r := rand.New(rand.NewSource(63))
	follower := ApproxHeuristic{Beta: DefaultBeta, Eta: DefaultEta, Grace: FollowEngineGrace}
	for i := 0; i < 200; i++ {
		m, q, now := randomQueueCase(r)
		c := NewCalculus(m)
		grace := pmf.Tick(r.Intn(300))
		ctx := &Context{Calc: c, Machine: 0, Now: now, Queue: q, Grace: grace}
		got := follower.Decide(ctx)
		want := NewApproxHeuristic(grace).Decide(ctx)
		if !reflect.DeepEqual(normalizeNil(got), normalizeNil(want)) {
			t.Fatalf("case %d (grace %d): follower %v != explicit %v", i, grace, got, want)
		}
	}
}

func TestApproxHeuristicPanicsOnBadParams(t *testing.T) {
	m := testMatrix(t, [][]pmf.PMF{{delta(10)}, {delta(10)}})
	ctx := &Context{Calc: NewCalculus(m), Machine: 0, Now: 0,
		Queue: []QueueTask{{Type: 0, Deadline: 100}, {Type: 1, Deadline: 100}}}
	for _, a := range []ApproxHeuristic{
		{Beta: 0.5, Eta: 2, Grace: 10},
		{Beta: 1, Eta: 0, Grace: 10},
		{Beta: 1, Eta: 2, Grace: -2},
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Fatalf("approx %+v should panic", a)
				}
			}()
			a.Decide(ctx)
		}()
	}
}

func TestApproxHeuristicName(t *testing.T) {
	if NewApproxHeuristic(10).Name() != "ApproxHeuristic" {
		t.Fatal("bad name")
	}
}

package core

import (
	"fmt"
	"math"
	"math/rand"
	"testing"

	"github.com/hpcclab/taskdrop/internal/pet"
	"github.com/hpcclab/taskdrop/internal/pmf"
)

// testMatrix builds a PET matrix from explicit cell PMFs, one machine type
// per column, so tests control every number exactly.
func testMatrix(t testing.TB, cells [][]pmf.PMF) *pet.Matrix {
	t.Helper()
	nt, nm := len(cells), len(cells[0])
	p := pet.Profile{
		Name:             "test",
		TaskTypeNames:    make([]string, nt),
		MachineTypeNames: make([]string, nm),
		MeanMS:           make([][]float64, nt),
		MachinesPerType:  make([]int, nm),
		PriceHour:        make([]float64, nm),
		GammaScaleRange:  [2]float64{1, 2},
	}
	for i := range p.TaskTypeNames {
		p.TaskTypeNames[i] = fmt.Sprintf("t%d", i)
		p.MeanMS[i] = make([]float64, nm)
		for j := range p.MeanMS[i] {
			p.MeanMS[i][j] = cells[i][j].Mean()
		}
	}
	for j := range p.MachineTypeNames {
		p.MachineTypeNames[j] = fmt.Sprintf("m%d", j)
		p.MachinesPerType[j] = 1
		p.PriceHour[j] = 0.1
	}
	return pet.FromPMFs(p, cells)
}

// delta returns a deterministic exec PMF.
func delta(t pmf.Tick) pmf.PMF { return pmf.Delta(t) }

// twoPoint returns a {t1: p, t2: 1−p} PMF.
func twoPoint(t1 pmf.Tick, p float64, t2 pmf.Tick) pmf.PMF {
	return pmf.FromImpulses([]pmf.Impulse{{T: t1, P: p}, {T: t2, P: 1 - p}})
}

func TestAvailabilityIdle(t *testing.T) {
	m := testMatrix(t, [][]pmf.PMF{{delta(10)}})
	c := NewCalculus(m)
	avail, first := c.Availability(0, 100, nil)
	if first != 0 || !avail.Equal(pmf.Delta(100)) {
		t.Fatalf("idle availability = %v (first %d)", avail, first)
	}
}

func TestAvailabilityRunning(t *testing.T) {
	m := testMatrix(t, [][]pmf.PMF{{twoPoint(10, 0.5, 20)}})
	c := NewCalculus(m)
	q := []QueueTask{{Type: 0, Deadline: 1000, Running: true, Elapsed: 12}}
	avail, first := c.Availability(0, 100, q)
	if first != 1 {
		t.Fatalf("first pending = %d, want 1", first)
	}
	// Elapsed 12 rules out the 10 branch: remaining = 20−12 = 8 with mass
	// 1, so availability = Delta(108).
	if !avail.Equal(pmf.Delta(108)) {
		t.Fatalf("availability = %v, want Delta(108)", avail)
	}
}

func TestCompletionPMFsDeterministicChain(t *testing.T) {
	m := testMatrix(t, [][]pmf.PMF{{delta(10)}, {delta(30)}})
	c := NewCalculus(m)
	q := []QueueTask{
		{Type: 0, Deadline: 1000},
		{Type: 1, Deadline: 1000},
		{Type: 0, Deadline: 1000},
	}
	cs := c.CompletionPMFs(0, 0, q)
	wants := []pmf.Tick{10, 40, 50}
	for i, w := range wants {
		if !cs[i].Equal(pmf.Delta(w)) {
			t.Fatalf("completion %d = %v, want Delta(%d)", i, cs[i], w)
		}
	}
}

func TestCompletionPMFsReactiveCarry(t *testing.T) {
	// Second task's deadline precedes the first task's completion: per
	// Eq. 1 it is dropped, and its completion PMF carries the
	// predecessor's.
	m := testMatrix(t, [][]pmf.PMF{{delta(100)}, {delta(10)}})
	c := NewCalculus(m)
	q := []QueueTask{
		{Type: 0, Deadline: 1000},
		{Type: 1, Deadline: 50},
	}
	cs := c.CompletionPMFs(0, 0, q)
	if !cs[1].Equal(pmf.Delta(100)) {
		t.Fatalf("dropped task completion = %v, want carried Delta(100)", cs[1])
	}
	ps := c.SuccessProbs(0, 0, q)
	if ps[0] != 1 || ps[1] != 0 {
		t.Fatalf("success probs = %v, want [1 0]", ps)
	}
}

func TestSuccessProbsPartial(t *testing.T) {
	// 50/50 exec of 10 or 60 against deadline 50 → CoS 0.5.
	m := testMatrix(t, [][]pmf.PMF{{twoPoint(10, 0.5, 60)}})
	c := NewCalculus(m)
	q := []QueueTask{{Type: 0, Deadline: 50}}
	ps := c.SuccessProbs(0, 0, q)
	if math.Abs(ps[0]-0.5) > 1e-12 {
		t.Fatalf("CoS = %v, want 0.5", ps[0])
	}
}

func TestInstantaneousRobustnessIsSumOfCoS(t *testing.T) {
	m := testMatrix(t, [][]pmf.PMF{{twoPoint(10, 0.5, 60)}, {delta(20)}})
	c := NewCalculus(m)
	q := []QueueTask{
		{Type: 0, Deadline: 50},
		{Type: 1, Deadline: 35},
	}
	// Task 0: CoS 0.5. Task 1: starts at 10 (p=.5) → ends 30 < 35 ok;
	// starts at 60 ≥ 35 → dropped. CoS = 0.5.
	got := c.InstantaneousRobustness(0, 0, q)
	if math.Abs(got-1.0) > 1e-12 {
		t.Fatalf("R = %v, want 1.0", got)
	}
}

func TestAppendMatchesManualEq1(t *testing.T) {
	exec := twoPoint(1, 0.6, 2)
	m := testMatrix(t, [][]pmf.PMF{{exec}})
	c := NewCalculus(m)
	prev := pmf.FromImpulses([]pmf.Impulse{{T: 10, P: 0.6}, {T: 11, P: 0.3}, {T: 12, P: 0.05}, {T: 13, P: 0.05}})
	got := c.Append(prev, 0, 13, 0)
	want := prev.NextCompletion(exec, 13)
	if !got.ApproxEqual(want, 1e-12) {
		t.Fatalf("Append = %v, want %v", got, want)
	}
}

// randomQueueCase builds a random PET (nt task types on one machine type)
// and a random queue against it for property tests.
func randomQueueCase(r *rand.Rand) (*pet.Matrix, []QueueTask, pmf.Tick) {
	nt := 2 + r.Intn(3)
	cells := make([][]pmf.PMF, nt)
	for i := range cells {
		n := 1 + r.Intn(4)
		imps := make([]pmf.Impulse, n)
		total := 0.0
		for k := range imps {
			imps[k] = pmf.Impulse{T: 1 + pmf.Tick(r.Intn(80)), P: r.Float64() + 0.05}
			total += imps[k].P
		}
		for k := range imps {
			imps[k].P /= total
		}
		cells[i] = []pmf.PMF{pmf.FromImpulses(imps)}
	}
	now := pmf.Tick(r.Intn(50))
	qlen := 1 + r.Intn(5)
	q := make([]QueueTask, qlen)
	for i := range q {
		q[i] = QueueTask{
			Type:     pet.TaskType(r.Intn(nt)),
			Deadline: now + 1 + pmf.Tick(r.Intn(300)),
		}
	}
	if r.Intn(2) == 0 {
		q[0].Running = true
		q[0].Elapsed = pmf.Tick(r.Intn(40))
	}
	dummy := &pet.Matrix{}
	_ = dummy
	return testMatrixFromCells(cells), q, now
}

// testMatrixFromCells is randomQueueCase's non-testing.TB variant of
// testMatrix.
func testMatrixFromCells(cells [][]pmf.PMF) *pet.Matrix {
	nt, nm := len(cells), len(cells[0])
	p := pet.Profile{
		Name:             "prop",
		TaskTypeNames:    make([]string, nt),
		MachineTypeNames: make([]string, nm),
		MeanMS:           make([][]float64, nt),
		MachinesPerType:  make([]int, nm),
		PriceHour:        make([]float64, nm),
		GammaScaleRange:  [2]float64{1, 2},
	}
	for i := range p.TaskTypeNames {
		p.TaskTypeNames[i] = fmt.Sprintf("t%d", i)
		p.MeanMS[i] = make([]float64, nm)
		for j := range p.MeanMS[i] {
			p.MeanMS[i][j] = cells[i][j].Mean()
		}
	}
	for j := range p.MachineTypeNames {
		p.MachineTypeNames[j] = fmt.Sprintf("m%d", j)
		p.MachinesPerType[j] = 1
		p.PriceHour[j] = 0.1
	}
	return pet.FromPMFs(p, cells)
}

// refCompletions is an independent reference implementation of the queue
// completion chain (Eq. 1) using only the portable pmf operations.
func refCompletions(m *pet.Matrix, mt pet.MachineType, now pmf.Tick, q []QueueTask, budget int) []pmf.PMF {
	out := make([]pmf.PMF, len(q))
	var prev pmf.PMF
	start := 0
	if len(q) > 0 && q[0].Running {
		prev = m.ExecPMF(q[0].Type, mt).ConditionalRemaining(q[0].Elapsed).Shift(now)
		out[0] = prev
		start = 1
	} else {
		prev = pmf.Delta(now)
	}
	for i := start; i < len(q); i++ {
		prev = prev.NextCompletion(m.ExecPMF(q[i].Type, mt), q[i].Deadline).Compact(budget)
		out[i] = prev
	}
	return out
}

func TestCompletionPMFsMatchReference(t *testing.T) {
	r := rand.New(rand.NewSource(41))
	for i := 0; i < 300; i++ {
		m, q, now := randomQueueCase(r)
		c := NewCalculus(m)
		got := c.CompletionPMFs(0, now, q)
		want := refCompletions(m, 0, now, q, c.MaxImpulses)
		for k := range q {
			if !got[k].ApproxEqual(want[k], 1e-9) {
				t.Fatalf("case %d task %d:\n got %v\nwant %v", i, k, got[k], want[k])
			}
		}
	}
}

func TestCompletionMassConservedAlongQueue(t *testing.T) {
	r := rand.New(rand.NewSource(42))
	for i := 0; i < 300; i++ {
		m, q, now := randomQueueCase(r)
		c := NewCalculus(m)
		cs := c.CompletionPMFs(0, now, q)
		for k, cp := range cs {
			if math.Abs(cp.TotalMass()-1) > 1e-6 {
				t.Fatalf("case %d task %d mass = %v", i, k, cp.TotalMass())
			}
		}
	}
}

package core

import (
	"github.com/hpcclab/taskdrop/internal/pet"
	"github.com/hpcclab/taskdrop/internal/pmf"
)

// Context carries everything a dropping policy may consult when deciding
// which tasks to proactively drop from one machine queue at a mapping
// event.
type Context struct {
	Calc *Calculus
	// Cache is the machine's persistent chain cache when the caller owns
	// one (the engine passes each machine's); policies route their chain
	// roots through it via ChainStart. Nil falls back to the per-event
	// trie with identical results.
	Cache   *ChainCache
	Machine pet.MachineType
	Now     pmf.Tick
	Queue   []QueueTask
	// BatchPressure is the ratio of unmapped batch tasks to total machine
	// queue slots — a cheap oversubscription signal. Only the threshold
	// baseline consults it (its published form adapts a predetermined
	// threshold to system load); the paper's autonomous policies ignore it.
	BatchPressure float64
	// Grace is the engine's reactive grace window (sim.Config.ReactiveGrace):
	// how long past its deadline a waiting task is still kept. Policies that
	// value late completions (ApproxHeuristic with FollowEngineGrace)
	// consult it so their forecasts match the engine's leeway.
	Grace pmf.Tick
}

// ChainStart returns the chain state at the context queue's availability
// root and the index of the first pending entry, through the persistent
// per-machine cache when the context carries one.
func (ctx *Context) ChainStart() (ChainState, int) {
	return ctx.Calc.ChainStartCached(ctx.Cache, ctx.Machine, ctx.Now, ctx.Queue)
}

// Policy decides, for one machine queue, which pending tasks to
// proactively drop. Decide returns indexes into ctx.Queue, in ascending
// order. Policies must never return the index of a running task.
type Policy interface {
	// Name identifies the policy in experiment tables (e.g. "Heuristic").
	Name() string
	Decide(ctx *Context) []int
}

// StableDecider is an optional Policy refinement. A policy advertises a
// stable decision when Decide is a pure function of the machine's
// availability root, the queued tasks' types and deadlines, and the
// policy's own (engine-constant) parameters — in particular, it must not
// read Context.BatchPressure or any other per-event input. The engine
// exploits this: when none of those inputs changed bitwise since a
// decision that dropped nothing, re-consulting the policy would reproduce
// the identical empty decision, so the engine skips it outright.
type StableDecider interface {
	// StableDecision reports that repeated decisions over unchanged
	// inputs are identical.
	StableDecision() bool
}

// ReactiveOnly is the no-proactive-dropping baseline ("+ReactDrop" in the
// figures): only the engine's reactive dropping of already-missed tasks
// takes place.
type ReactiveOnly struct{}

// Name implements Policy.
func (ReactiveOnly) Name() string { return "ReactDrop" }

// Decide implements Policy; it never drops anything.
func (ReactiveOnly) Decide(*Context) []int { return nil }

// droppableBounds returns the index range [first, last) of queue entries a
// proactive policy may drop: pending tasks only, and excluding the final
// queue entry whose influence zone is empty (§IV-D).
func droppableBounds(q []QueueTask) (first, last int) {
	first = 0
	if len(q) > 0 && q[0].Running {
		first = 1
	}
	last = len(q) - 1 // the final task is never a candidate
	if last < first {
		last = first
	}
	return first, last
}

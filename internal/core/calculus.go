// Package core implements the paper's primary contribution: the
// probabilistic completion-time calculus over machine queues (§IV-B/C), the
// instantaneous-robustness objective (Eq. 3), and the three proactive
// task-dropping policies evaluated in §V — the autonomous heuristic
// (§IV-E), the optimal subset search (§IV-D), and the threshold baseline of
// prior work.
package core

import (
	"sync/atomic"

	"github.com/hpcclab/taskdrop/internal/pet"
	"github.com/hpcclab/taskdrop/internal/pmf"
)

// QueueTask is the calculus' view of one entry in a machine queue.
type QueueTask struct {
	Type     pet.TaskType
	Deadline pmf.Tick
	// Running marks the task currently executing; only the queue head may
	// be running. Running tasks can never be dropped.
	Running bool
	// Elapsed is how long a running task has been executing, in ticks.
	Elapsed pmf.Tick
}

// Calculus evaluates completion-time PMFs and chances of success for
// machine queues against a PET matrix. MaxImpulses bounds the impulse count
// of intermediate completion PMFs (mass-preserving compaction); see
// pmf.DefaultMaxImpulses.
//
// # Memory contract
//
// Every PMF the calculus returns (from Append, Availability,
// CompletionPMFs, ChainState.PMF, ...) may alias the calculus' internal
// arena. Such PMFs stay valid until the next call to Recycle, which
// reclaims all arena storage in O(1). The simulation engine recycles once
// per mapping event, so within one dropping/mapping decision everything
// composes freely; a caller that caches a PMF across decisions must pin it
// first with pmf.PMF.CloneInto. A Calculus that is never recycled keeps
// working (storage is then reclaimed by the garbage collector), it just
// isn't allocation-free.
//
// The one exception is PMFs obtained through a persistent ChainCache
// (ChainStartCached and appends descending from it): those are already
// pinned in the cache's own arena and survive Recycle, staying valid
// until the cache invalidates — which any mapping event may trigger. The
// only safe lifetime across events therefore remains a CloneInto copy the
// caller owns.
//
// # Shared-prefix chain cache
//
// Within one recycle epoch the calculus memoizes every Eq. 1 chain it
// evaluates as a trie: ChainStart returns the (cached) availability root
// for a (machine, now, running-head) triple and ChainState.Append walks or
// extends the trie one task at a time. Policies evaluating many
// drop-candidate scenarios over one queue — "the queue with task i
// removed" — therefore share all common prefix convolutions instead of
// rechaining from availability, and the mapper's tail-completion chains
// reuse the prefixes the dropper already computed at the same event.
// ChainStartCached extends the same sharing across events through a
// per-machine persistent trie (see ChainCache in chaincache.go).
//
// A Calculus owns a convolution workspace and is therefore not safe for
// concurrent use; give each simulation engine (or test goroutine) its own.
type Calculus struct {
	PET         *pet.Matrix
	MaxImpulses int
	ws          pmf.Workspace

	// Per-event chain trie, recycled per epoch. Persistent per-machine
	// tries live in ChainCaches (see chaincache.go) and survive Recycle.
	epoch uint64
	eph   chainTrie
	roots []chainRoot

	// execPat lazily caches one kernel occupancy pattern per PET cell
	// (task type × machine type): execution PMFs are matrix constants, so
	// every Eq. 1 append reuses the pattern instead of rebuilding it.
	execPat [][]uint64

	// Policy scratch, reused across Decide calls (see heuristicWalk,
	// CompletionPMFs, SuccessProbs).
	scratchQ []QueueTask
	scratchI []int
	scratchP []pmf.PMF
	scratchF []float64

	// Introspection counters (see Stats). Atomics because metrics scrapes
	// read them while the owning decision loop writes; uncontended adds on
	// the single writer cost a few nanoseconds against microseconds per
	// convolution.
	chainHits   atomic.Uint64
	chainMisses atomic.Uint64
	rootHits    atomic.Uint64
	rootMisses  atomic.Uint64
	widths      [NumWidthBuckets]atomic.Uint64
	widthSum    atomic.Uint64
	invEvent    atomic.Uint64
	invChurn    atomic.Uint64
	invOverflow atomic.Uint64
	pinnedBytes atomic.Int64
}

// chainKey identifies one Eq. 1 transition out of a chain node: appending
// a task of type t with truncation deadline dl. The machine type is fixed
// by the root the node descends from.
type chainKey struct {
	t  pet.TaskType
	dl pmf.Tick
}

// chainEdge is one memoized transition.
type chainEdge struct {
	key  chainKey
	node int32
}

// chainNode is one memoized chain state: the completion PMF of its prefix
// plus the transitions already taken from it. Queues hold at most a
// handful of tasks, so edges stay tiny and are scanned linearly (hits
// transpose the found edge one slot forward, so a persistent root's
// hottest candidate edges bubble ahead of stale deadlines).
type chainNode struct {
	cp    pmf.PMF
	edges []chainEdge
}

// chainTrie is one arena of memoized chain nodes. The calculus owns an
// ephemeral one (wiped by Recycle); every ChainCache owns a persistent
// one (wiped only by invalidation).
type chainTrie struct {
	nodes []chainNode
}

func (t *chainTrie) reset() { t.nodes = t.nodes[:0] }

// newNode appends a trie node, reusing the edge storage of a node
// recycled by an earlier reset when available.
func (t *chainTrie) newNode(cp pmf.PMF) int32 {
	if len(t.nodes) < cap(t.nodes) {
		t.nodes = t.nodes[:len(t.nodes)+1]
		nd := &t.nodes[len(t.nodes)-1]
		nd.cp = cp
		nd.edges = nd.edges[:0]
	} else {
		t.nodes = append(t.nodes, chainNode{cp: cp})
	}
	return int32(len(t.nodes) - 1)
}

// chainRootKey identifies an availability root: machine type, event time
// and the running head (if any). Everything Availability depends on.
type chainRootKey struct {
	mt      pet.MachineType
	now     pmf.Tick
	running bool
	rt      pet.TaskType
	elapsed pmf.Tick
}

type chainRoot struct {
	key  chainRootKey
	node int32
}

// NewCalculus returns a calculus over the given PET with the default
// compaction budget.
func NewCalculus(m *pet.Matrix) *Calculus {
	return &Calculus{PET: m, MaxImpulses: pmf.DefaultMaxImpulses}
}

// Recycle starts a new decision epoch: it reclaims the impulse arena and
// the per-event chain trie in O(1), invalidating every PMF previously
// returned by this calculus through them. The owning engine calls it once
// per mapping event; steady-state chain evaluation after warm-up then
// allocates nothing. Persistent ChainCaches — and every PMF pinned in
// them — survive Recycle untouched; they are reclaimed per machine, by
// invalidation.
func (c *Calculus) Recycle() {
	c.ws.Reset()
	c.epoch++
	c.eph.reset()
	c.roots = c.roots[:0]
}

// Epoch returns the recycle epoch, incremented by every Recycle. Callers
// caching a ChainState (e.g. a machine's tail-completion state) key the
// cache on it: a state from an older epoch points into recycled storage
// and must not be used.
func (c *Calculus) Epoch() uint64 { return c.epoch }

// exec returns the execution-time PMF for (t, mt).
func (c *Calculus) exec(t pet.TaskType, mt pet.MachineType) pmf.PMF {
	return c.PET.ExecPMF(t, mt)
}

// pattern returns the cached kernel occupancy pattern for (t, mt),
// building it on first use.
func (c *Calculus) pattern(t pet.TaskType, mt pet.MachineType) []uint64 {
	nm := c.PET.NumMachineTypes()
	if c.execPat == nil {
		c.execPat = make([][]uint64, c.PET.NumTaskTypes()*nm)
	}
	i := int(t)*nm + int(mt)
	if c.execPat[i] == nil {
		c.execPat[i] = pmf.Pattern(c.exec(t, mt))
	}
	return c.execPat[i]
}

// appendPMF chains Eq. 1 once through the workspace kernel and compacts
// the result (in place when freshly produced) to the calculus budget.
func (c *Calculus) appendPMF(prev pmf.PMF, t pet.TaskType, dl pmf.Tick, mt pet.MachineType) pmf.PMF {
	cp := c.ws.NextCompletionCompactPattern(prev, c.exec(t, mt), dl, c.MaxImpulses, c.pattern(t, mt))
	c.observeWidth(cp.Len())
	return cp
}

// Append chains Eq. 1 once: the completion PMF of a task of type t with
// deadline dl on machine type mt, whose predecessor completes according to
// prev. The result is compacted to the calculus budget. It may alias the
// calculus arena (see the memory contract above).
func (c *Calculus) Append(prev pmf.PMF, t pet.TaskType, dl pmf.Tick, mt pet.MachineType) pmf.PMF {
	return c.appendPMF(prev, t, dl, mt)
}

// availability computes the root PMF for the given key.
func (c *Calculus) availability(key chainRootKey) pmf.PMF {
	if key.running {
		return c.ws.ConditionalRemainingShift(c.exec(key.rt, key.mt), key.elapsed, key.now)
	}
	return c.ws.Delta(key.now)
}

// rootFor returns the (cached) per-event trie root for the given
// availability key.
func (c *Calculus) rootFor(key chainRootKey) int32 {
	for _, r := range c.roots {
		if r.key == key {
			c.rootHits.Add(1)
			return r.node
		}
	}
	c.rootMisses.Add(1)
	id := c.eph.newNode(c.availability(key))
	c.roots = append(c.roots, chainRoot{key: key, node: id})
	return id
}

// ChainState is a memoized position in a completion-time chain: the
// completion PMF of some prefix of kept tasks, rooted at a machine's
// availability. Appending the same task (type and truncation deadline) to
// the same state twice computes the convolution once. A state from the
// per-event trie (cc == nil) is invalidated by Recycle, like the PMFs it
// holds; a state from a persistent ChainCache is invalidated by the
// cache's reset instead.
type ChainState struct {
	c    *Calculus
	cc   *ChainCache // nil: per-event trie
	mt   pet.MachineType
	node int32
}

// trie returns the node storage the state lives in.
func (s ChainState) trie() *chainTrie {
	if s.cc != nil {
		return &s.cc.trie
	}
	return &s.c.eph
}

// ChainStart returns the chain state at machine mt's availability for
// queue q at time now, together with the index of the first pending
// (droppable) entry in q. If the head of q is running, the availability is
// its conditional completion time; otherwise the machine is free now.
func (c *Calculus) ChainStart(mt pet.MachineType, now pmf.Tick, q []QueueTask) (ChainState, int) {
	key := chainRootKey{mt: mt, now: now}
	first := 0
	if len(q) > 0 && q[0].Running {
		key.running, key.rt, key.elapsed = true, q[0].Type, q[0].Elapsed
		first = 1
	}
	return ChainState{c: c, mt: mt, node: c.rootFor(key)}, first
}

// PMF returns the completion PMF of the state's prefix. A per-event
// state's PMF may alias the calculus arena (valid until Recycle); a
// cached state's PMF is pinned (valid until the cache invalidates).
func (s ChainState) PMF() pmf.PMF { return s.trie().nodes[s.node].cp }

// Append chains one task of type t with truncation deadline dl onto the
// state, reusing the memoized result if this transition was already
// evaluated — within the current epoch for per-event states, since the
// last invalidation for cached states. Fresh results under a cache are
// pinned so they survive Recycle.
func (s ChainState) Append(t pet.TaskType, dl pmf.Tick) ChainState {
	c := s.c
	tr := s.trie()
	key := chainKey{t: t, dl: dl}
	edges := tr.nodes[s.node].edges
	for i, e := range edges {
		if e.key == key {
			c.chainHits.Add(1)
			if i > 0 {
				edges[i-1], edges[i] = edges[i], edges[i-1]
			}
			return ChainState{c: c, cc: s.cc, mt: s.mt, node: e.node}
		}
	}
	c.chainMisses.Add(1)
	prev := tr.nodes[s.node].cp
	cp := c.appendPMF(prev, t, dl, s.mt)
	if s.cc != nil {
		cp = s.cc.adopt(prev, cp)
	}
	id := tr.newNode(cp) // may grow tr.nodes; re-take the parent below
	nd := &tr.nodes[s.node]
	nd.edges = append(nd.edges, chainEdge{key: key, node: id})
	return ChainState{c: c, cc: s.cc, mt: s.mt, node: id}
}

// AppendTask is Append for a QueueTask (strict-deadline truncation).
func (s ChainState) AppendTask(qt QueueTask) ChainState {
	return s.Append(qt.Type, qt.Deadline)
}

// Availability returns the PMF of the absolute time at which the machine
// becomes free for the first pending task, together with the index of the
// first pending (droppable) entry in q. If the head of q is running, the
// availability is its conditional completion time; otherwise the machine is
// free now. The PMF may alias the calculus arena (valid until Recycle).
func (c *Calculus) Availability(mt pet.MachineType, now pmf.Tick, q []QueueTask) (avail pmf.PMF, firstPending int) {
	s, first := c.ChainStart(mt, now, q)
	return s.PMF(), first
}

// CompletionPMFs returns the completion-time PMF of every task in the
// queue, in queue order, per Eq. 1. Index 0 of a running head is its
// conditional completion time. Each PMF is compacted to the calculus
// budget; all of them may alias the calculus arena (valid until Recycle).
// The returned slice is calculus-owned scratch, overwritten by the next
// CompletionPMFs call (same contract as scratchQ): consume it within one
// decision, or copy it out.
func (c *Calculus) CompletionPMFs(mt pet.MachineType, now pmf.Tick, q []QueueTask) []pmf.PMF {
	if cap(c.scratchP) < len(q) {
		c.scratchP = make([]pmf.PMF, len(q))
	}
	out := c.scratchP[:len(q)]
	s, start := c.ChainStart(mt, now, q)
	if start == 1 {
		out[0] = s.PMF()
	}
	for i := start; i < len(q); i++ {
		s = s.AppendTask(q[i])
		out[i] = s.PMF()
	}
	return out
}

// SuccessProbs returns the chance of success (Eq. 2) of every task in the
// queue: the mass of its completion PMF strictly before its deadline.
// The returned slice is calculus-owned scratch, overwritten by the next
// SuccessProbs call (same contract as scratchQ).
func (c *Calculus) SuccessProbs(mt pet.MachineType, now pmf.Tick, q []QueueTask) []float64 {
	if cap(c.scratchF) < len(q) {
		c.scratchF = make([]float64, len(q))
	}
	ps := c.scratchF[:len(q)]
	s, start := c.ChainStart(mt, now, q)
	if start == 1 {
		ps[0] = s.PMF().MassBefore(q[0].Deadline)
	}
	for i := start; i < len(q); i++ {
		s = s.AppendTask(q[i])
		ps[i] = s.PMF().MassBefore(q[i].Deadline)
	}
	return ps
}

// InstantaneousRobustness returns R_j of Eq. 3: the sum of the chances of
// success of every task in the queue.
func (c *Calculus) InstantaneousRobustness(mt pet.MachineType, now pmf.Tick, q []QueueTask) float64 {
	sum := 0.0
	s, start := c.ChainStart(mt, now, q)
	if start == 1 {
		sum += s.PMF().MassBefore(q[0].Deadline)
	}
	for i := start; i < len(q); i++ {
		s = s.AppendTask(q[i])
		sum += s.PMF().MassBefore(q[i].Deadline)
	}
	return sum
}

// Package core implements the paper's primary contribution: the
// probabilistic completion-time calculus over machine queues (§IV-B/C), the
// instantaneous-robustness objective (Eq. 3), and the three proactive
// task-dropping policies evaluated in §V — the autonomous heuristic
// (§IV-E), the optimal subset search (§IV-D), and the threshold baseline of
// prior work.
package core

import (
	"github.com/hpcclab/taskdrop/internal/pet"
	"github.com/hpcclab/taskdrop/internal/pmf"
)

// QueueTask is the calculus' view of one entry in a machine queue.
type QueueTask struct {
	Type     pet.TaskType
	Deadline pmf.Tick
	// Running marks the task currently executing; only the queue head may
	// be running. Running tasks can never be dropped.
	Running bool
	// Elapsed is how long a running task has been executing, in ticks.
	Elapsed pmf.Tick
}

// Calculus evaluates completion-time PMFs and chances of success for
// machine queues against a PET matrix. MaxImpulses bounds the impulse count
// of intermediate completion PMFs (mass-preserving compaction); see
// pmf.DefaultMaxImpulses.
//
// A Calculus owns a convolution workspace and is therefore not safe for
// concurrent use; give each simulation engine (or test goroutine) its own.
type Calculus struct {
	PET         *pet.Matrix
	MaxImpulses int
	ws          pmf.Workspace
}

// NewCalculus returns a calculus over the given PET with the default
// compaction budget.
func NewCalculus(m *pet.Matrix) *Calculus {
	return &Calculus{PET: m, MaxImpulses: pmf.DefaultMaxImpulses}
}

// exec returns the execution-time PMF for (t, mt).
func (c *Calculus) exec(t pet.TaskType, mt pet.MachineType) pmf.PMF {
	return c.PET.ExecPMF(t, mt)
}

// Append chains Eq. 1 once: the completion PMF of a task of type t with
// deadline dl on machine type mt, whose predecessor completes according to
// prev. The result is compacted to the calculus budget.
func (c *Calculus) Append(prev pmf.PMF, t pet.TaskType, dl pmf.Tick, mt pet.MachineType) pmf.PMF {
	return c.ws.NextCompletion(prev, c.exec(t, mt), dl).Compact(c.MaxImpulses)
}

// appendTask is Append for a QueueTask.
func (c *Calculus) appendTask(prev pmf.PMF, qt QueueTask, mt pet.MachineType) pmf.PMF {
	return c.Append(prev, qt.Type, qt.Deadline, mt)
}

// Availability returns the PMF of the absolute time at which the machine
// becomes free for the first pending task, together with the index of the
// first pending (droppable) entry in q. If the head of q is running, the
// availability is its conditional completion time; otherwise the machine is
// free now.
func (c *Calculus) Availability(mt pet.MachineType, now pmf.Tick, q []QueueTask) (avail pmf.PMF, firstPending int) {
	if len(q) > 0 && q[0].Running {
		rem := c.exec(q[0].Type, mt).ConditionalRemaining(q[0].Elapsed)
		return rem.Shift(now), 1
	}
	return pmf.Delta(now), 0
}

// CompletionPMFs returns the completion-time PMF of every task in the
// queue, in queue order, per Eq. 1. Index 0 of a running head is its
// conditional completion time. Each PMF is compacted to the calculus
// budget.
func (c *Calculus) CompletionPMFs(mt pet.MachineType, now pmf.Tick, q []QueueTask) []pmf.PMF {
	out := make([]pmf.PMF, len(q))
	prev, start := c.Availability(mt, now, q)
	if start == 1 {
		out[0] = prev
	}
	for i := start; i < len(q); i++ {
		prev = c.appendTask(prev, q[i], mt)
		out[i] = prev
	}
	return out
}

// SuccessProbs returns the chance of success (Eq. 2) of every task in the
// queue: the mass of its completion PMF strictly before its deadline.
func (c *Calculus) SuccessProbs(mt pet.MachineType, now pmf.Tick, q []QueueTask) []float64 {
	cs := c.CompletionPMFs(mt, now, q)
	ps := make([]float64, len(q))
	for i, cp := range cs {
		ps[i] = cp.MassBefore(q[i].Deadline)
	}
	return ps
}

// InstantaneousRobustness returns R_j of Eq. 3: the sum of the chances of
// success of every task in the queue.
func (c *Calculus) InstantaneousRobustness(mt pet.MachineType, now pmf.Tick, q []QueueTask) float64 {
	sum := 0.0
	for _, p := range c.SuccessProbs(mt, now, q) {
		sum += p
	}
	return sum
}

// chainFrom computes completion PMFs for tasks, starting the chain from the
// given predecessor-completion PMF, stopping after limit tasks (limit < 0
// means all). Used by the dropping policies to evaluate scenarios.
func (c *Calculus) chainFrom(prev pmf.PMF, mt pet.MachineType, tasks []QueueTask, limit int) []pmf.PMF {
	n := len(tasks)
	if limit >= 0 && limit < n {
		n = limit
	}
	out := make([]pmf.PMF, n)
	for i := 0; i < n; i++ {
		prev = c.appendTask(prev, tasks[i], mt)
		out[i] = prev
	}
	return out
}

// successSum returns the summed chance of success of tasks[i] under the
// completion PMFs cs (len(cs) ≤ len(tasks)).
func successSum(cs []pmf.PMF, tasks []QueueTask) float64 {
	sum := 0.0
	for i, cp := range cs {
		sum += cp.MassBefore(tasks[i].Deadline)
	}
	return sum
}

package core

import (
	"testing"

	"github.com/hpcclab/taskdrop/internal/pmf"
)

func TestWidthBucketBounds(t *testing.T) {
	cases := []struct{ n, bucket int }{
		{0, 0}, {1, 0}, {2, 1}, {3, 2}, {4, 2}, {5, 3}, {8, 3},
		{9, 4}, {16, 4}, {17, 5}, {32, 5}, {33, 6}, {1000, 6},
	}
	for _, c := range cases {
		if got := widthBucket(c.n); got != c.bucket {
			t.Fatalf("widthBucket(%d) = %d, want %d", c.n, got, c.bucket)
		}
		b := widthBucket(c.n)
		if bound := WidthBucketBound(b); bound >= 0 && c.n > bound {
			t.Fatalf("width %d landed in bucket %d with bound %d", c.n, b, bound)
		}
	}
	if WidthBucketBound(NumWidthBuckets-1) != -1 {
		t.Fatal("last bucket is not +Inf")
	}
	if WidthBucketBound(5) != 32 {
		t.Fatalf("bucket 5 bound = %d, want 32 (= pmf.DefaultMaxImpulses)", WidthBucketBound(5))
	}
}

// TestCalcStatsCountsChainReuse drives the same chain twice within one
// epoch and checks the hit/miss accounting: first walk misses (fresh
// convolutions, widths observed), second walk hits edge for edge.
func TestCalcStatsCountsChainReuse(t *testing.T) {
	m := testMatrix(t, [][]pmf.PMF{{twoPoint(10, 0.5, 20)}, {twoPoint(30, 0.25, 40)}})
	c := NewCalculus(m)
	q := []QueueTask{
		{Type: 0, Deadline: 1000},
		{Type: 1, Deadline: 1000},
		{Type: 0, Deadline: 900},
	}

	if st := c.Stats(); st != (CalcStats{}) {
		t.Fatalf("fresh calculus has non-zero stats: %+v", st)
	}

	c.SuccessProbs(0, 100, q)
	st1 := c.Stats()
	if st1.RootMisses != 1 || st1.RootHits != 0 {
		t.Fatalf("after first walk: root hits/misses = %d/%d, want 0/1", st1.RootHits, st1.RootMisses)
	}
	if st1.ChainMisses != uint64(len(q)) || st1.ChainHits != 0 {
		t.Fatalf("after first walk: chain hits/misses = %d/%d, want 0/%d", st1.ChainHits, st1.ChainMisses, len(q))
	}
	var widthObs uint64
	for _, w := range st1.Widths {
		widthObs += w
	}
	if widthObs != uint64(len(q)) || st1.WidthSum == 0 {
		t.Fatalf("after first walk: %d width observations (sum %d), want %d fresh PMFs", widthObs, st1.WidthSum, len(q))
	}
	if st1.ArenaHighWaterBytes <= 0 {
		t.Fatalf("arena high-water = %d after convolutions", st1.ArenaHighWaterBytes)
	}

	// Same queue, same epoch: everything is memoized.
	c.SuccessProbs(0, 100, q)
	st2 := c.Stats()
	if st2.RootHits != 1 || st2.ChainHits != uint64(len(q)) {
		t.Fatalf("after second walk: root hits %d chain hits %d, want 1 and %d", st2.RootHits, st2.ChainHits, len(q))
	}
	if st2.ChainMisses != st1.ChainMisses || st2.WidthSum != st1.WidthSum {
		t.Fatalf("second walk convolved freshly: %+v vs %+v", st2, st1)
	}

	// Recycle starts a new epoch but preserves the cumulative counters.
	c.Recycle()
	st3 := c.Stats()
	if st3.ChainHits != st2.ChainHits || st3.ChainMisses != st2.ChainMisses {
		t.Fatalf("Recycle reset the counters: %+v", st3)
	}
	c.SuccessProbs(0, 100, q)
	st4 := c.Stats()
	if st4.ChainMisses != st2.ChainMisses+uint64(len(q)) {
		t.Fatalf("post-recycle walk should re-convolve: misses %d, want %d", st4.ChainMisses, st2.ChainMisses+uint64(len(q)))
	}
}

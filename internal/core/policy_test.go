package core

import (
	"math"
	"math/rand"
	"reflect"
	"testing"

	"github.com/hpcclab/taskdrop/internal/pet"
	"github.com/hpcclab/taskdrop/internal/pmf"
)

func TestReactiveOnlyNeverDrops(t *testing.T) {
	m := testMatrix(t, [][]pmf.PMF{{delta(100)}})
	ctx := &Context{
		Calc:    NewCalculus(m),
		Machine: 0,
		Now:     0,
		Queue: []QueueTask{
			{Type: 0, Deadline: 10}, // hopeless, but reactive-only won't touch it
			{Type: 0, Deadline: 20},
		},
	}
	if got := (ReactiveOnly{}).Decide(ctx); got != nil {
		t.Fatalf("ReactiveOnly dropped %v", got)
	}
}

func TestHeuristicDropsHopelessHead(t *testing.T) {
	// Task 0 (exec 100, dl 150) completes at 100 on time, but it starves
	// task 1 (exec 10, dl 30): keeping → p0=1, p1=0. Dropping task 0 →
	// task 1 completes at 10 < 30 → pDrop=1 vs β·(p0+p1)=1. Not strictly
	// greater, so NO drop (β=1 requires strict improvement).
	m := testMatrix(t, [][]pmf.PMF{{delta(100)}, {delta(10)}})
	c := NewCalculus(m)
	q := []QueueTask{
		{Type: 0, Deadline: 150},
		{Type: 1, Deadline: 30},
	}
	h := NewHeuristic()
	if got := h.Decide(&Context{Calc: c, Machine: 0, Now: 0, Queue: q}); got != nil {
		t.Fatalf("tie must not drop, got %v", got)
	}

	// Now make task 0 itself doomed (dl 90 < exec 100): keeping → p0=0,
	// p1=0; dropping → p1=1 > 0 → drop index 0.
	q[0].Deadline = 90
	got := h.Decide(&Context{Calc: c, Machine: 0, Now: 0, Queue: q})
	if !reflect.DeepEqual(got, []int{0}) {
		t.Fatalf("got %v, want [0]", got)
	}
}

func TestHeuristicNeverDropsRunningOrLast(t *testing.T) {
	m := testMatrix(t, [][]pmf.PMF{{delta(100)}})
	c := NewCalculus(m)
	q := []QueueTask{
		{Type: 0, Deadline: 90, Running: true, Elapsed: 5},
		{Type: 0, Deadline: 95}, // doomed but last → empty influence zone
	}
	if got := NewHeuristic().Decide(&Context{Calc: c, Machine: 0, Now: 50, Queue: q}); got != nil {
		t.Fatalf("dropped %v; running and last tasks are not candidates", got)
	}
}

func TestHeuristicLargeBetaDropsOnlyHopelessWindows(t *testing.T) {
	// Eq. 8 with a huge β can only fire when the kept window's summed
	// chance of success is (numerically) zero — dropping a task that
	// contributes nothing harms nothing. Any drop from a window with
	// positive robustness would violate β→∞ disabling proactive dropping.
	r := rand.New(rand.NewSource(51))
	h := Heuristic{Beta: 1e12, Eta: 2}
	for i := 0; i < 200; i++ {
		m, q, now := randomQueueCase(r)
		c := NewCalculus(m)
		drops := h.Decide(&Context{Calc: c, Machine: 0, Now: now, Queue: q})
		if len(drops) == 0 {
			continue
		}
		// Every dropped task must itself have had zero chance of success.
		ps := c.SuccessProbs(0, now, q)
		for _, d := range drops {
			if ps[d] > 1e-10 {
				t.Fatalf("case %d: β→∞ dropped task %d with CoS %v", i, d, ps[d])
			}
		}
	}
}

func TestHeuristicPanicsOnBadParams(t *testing.T) {
	m := testMatrix(t, [][]pmf.PMF{{delta(10)}, {delta(10)}})
	ctx := &Context{Calc: NewCalculus(m), Machine: 0, Now: 0,
		Queue: []QueueTask{{Type: 0, Deadline: 100}, {Type: 1, Deadline: 100}}}
	for _, h := range []Heuristic{{Beta: 0.5, Eta: 2}, {Beta: 1, Eta: 0}} {
		func() {
			defer func() {
				if recover() == nil {
					t.Fatalf("heuristic %+v should panic", h)
				}
			}()
			h.Decide(ctx)
		}()
	}
}

// refHeuristic is an independent single-pass implementation of Fig. 4 /
// Eq. 8 built directly on the portable pmf operations.
func refHeuristic(m *pet.Matrix, mt pet.MachineType, now pmf.Tick, q []QueueTask, beta float64, eta, budget int) []int {
	first := 0
	var prev pmf.PMF
	if len(q) > 0 && q[0].Running {
		prev = m.ExecPMF(q[0].Type, mt).ConditionalRemaining(q[0].Elapsed).Shift(now)
		first = 1
	} else {
		prev = pmf.Delta(now)
	}
	work := append([]QueueTask(nil), q[first:]...)
	orig := make([]int, len(work))
	for i := range orig {
		orig[i] = first + i
	}
	var drops []int
	i := 0
	chain := func(start pmf.PMF, tasks []QueueTask, n int) (float64, pmf.PMF) {
		sum := 0.0
		cur := start
		var head pmf.PMF
		for k := 0; k < n && k < len(tasks); k++ {
			cur = cur.NextCompletion(m.ExecPMF(tasks[k].Type, mt), tasks[k].Deadline).Compact(budget)
			if k == 0 {
				head = cur
			}
			sum += cur.MassBefore(tasks[k].Deadline)
		}
		return sum, head
	}
	for i < len(work)-1 {
		w := eta
		if rest := len(work) - 1 - i; rest < w {
			w = rest
		}
		pKeep, headPMF := chain(prev, work[i:], w+1)
		pDrop, _ := chain(prev, work[i+1:], w)
		if pDrop > beta*pKeep {
			drops = append(drops, orig[i])
			work = append(work[:i], work[i+1:]...)
			orig = append(orig[:i], orig[i+1:]...)
			continue
		}
		prev = headPMF
		i++
	}
	return drops
}

func TestHeuristicMatchesReference(t *testing.T) {
	r := rand.New(rand.NewSource(52))
	for i := 0; i < 400; i++ {
		m, q, now := randomQueueCase(r)
		c := NewCalculus(m)
		beta := 1 + r.Float64()*2
		eta := 1 + r.Intn(3)
		h := Heuristic{Beta: beta, Eta: eta}
		got := h.Decide(&Context{Calc: c, Machine: 0, Now: now, Queue: q})
		want := refHeuristic(m, 0, now, q, beta, eta, c.MaxImpulses)
		if !reflect.DeepEqual(normalizeNil(got), normalizeNil(want)) {
			t.Fatalf("case %d (β=%.2f η=%d queue=%d): got %v, want %v", i, beta, eta, len(q), got, want)
		}
	}
}

// refOptimalRobustness brute-forces the best achievable instantaneous
// robustness over all droppable subsets, with portable pmf operations.
func refOptimalRobustness(m *pet.Matrix, mt pet.MachineType, now pmf.Tick, q []QueueTask, budget int) float64 {
	first := 0
	var avail pmf.PMF
	if len(q) > 0 && q[0].Running {
		avail = m.ExecPMF(q[0].Type, mt).ConditionalRemaining(q[0].Elapsed).Shift(now)
		first = 1
	} else {
		avail = pmf.Delta(now)
	}
	last := len(q) - 1
	if last < first {
		last = first
	}
	n := last - first
	best := math.Inf(-1)
	for mask := 0; mask < 1<<n; mask++ {
		prev := avail
		sum := 0.0
		for i := first; i < len(q); i++ {
			if b := i - first; b >= 0 && i < last && mask&(1<<b) != 0 {
				continue
			}
			prev = prev.NextCompletion(m.ExecPMF(q[i].Type, mt), q[i].Deadline).Compact(budget)
			sum += prev.MassBefore(q[i].Deadline)
		}
		if sum > best {
			best = sum
		}
	}
	return best
}

// applyDrops removes the given queue indexes.
func applyDrops(q []QueueTask, drops []int) []QueueTask {
	dropSet := map[int]bool{}
	for _, d := range drops {
		dropSet[d] = true
	}
	var out []QueueTask
	for i, qt := range q {
		if !dropSet[i] {
			out = append(out, qt)
		}
	}
	return out
}

// pendingRobustness evaluates Eq. 3 over the pending tasks of q.
func pendingRobustness(c *Calculus, mt pet.MachineType, now pmf.Tick, q []QueueTask) float64 {
	ps := c.SuccessProbs(mt, now, q)
	start := 0
	if len(q) > 0 && q[0].Running {
		start = 1
	}
	sum := 0.0
	for _, p := range ps[start:] {
		sum += p
	}
	return sum
}

func TestOptimalAchievesBruteForceOptimum(t *testing.T) {
	r := rand.New(rand.NewSource(53))
	for i := 0; i < 200; i++ {
		m, q, now := randomQueueCase(r)
		c := NewCalculus(m)
		drops := (Optimal{}).Decide(&Context{Calc: c, Machine: 0, Now: now, Queue: q})
		got := pendingRobustness(c, 0, now, applyDrops(q, drops))
		want := refOptimalRobustness(m, 0, now, q, c.MaxImpulses)
		if got < want-1e-9 {
			t.Fatalf("case %d: optimal achieved %v < brute force %v (drops %v, queue %d)",
				i, got, want, drops, len(q))
		}
	}
}

func TestOptimalAtLeastHeuristic(t *testing.T) {
	// §V-F: optimal and heuristic perform nearly the same, with optimal
	// never worse in instantaneous robustness at the decision point.
	r := rand.New(rand.NewSource(54))
	h := NewHeuristic()
	for i := 0; i < 200; i++ {
		m, q, now := randomQueueCase(r)
		c := NewCalculus(m)
		ctxO := &Context{Calc: c, Machine: 0, Now: now, Queue: q}
		rOpt := pendingRobustness(c, 0, now, applyDrops(q, (Optimal{}).Decide(ctxO)))
		rHeu := pendingRobustness(c, 0, now, applyDrops(q, h.Decide(ctxO)))
		if rOpt < rHeu-1e-9 {
			t.Fatalf("case %d: optimal %v < heuristic %v", i, rOpt, rHeu)
		}
	}
}

func TestOptimalNeverDropsRunningOrLast(t *testing.T) {
	r := rand.New(rand.NewSource(55))
	for i := 0; i < 200; i++ {
		m, q, now := randomQueueCase(r)
		c := NewCalculus(m)
		drops := (Optimal{}).Decide(&Context{Calc: c, Machine: 0, Now: now, Queue: q})
		for _, d := range drops {
			if d == 0 && q[0].Running {
				t.Fatalf("case %d dropped running task", i)
			}
			if d == len(q)-1 {
				t.Fatalf("case %d dropped last task", i)
			}
		}
	}
}

func TestThresholdDropsLowCoS(t *testing.T) {
	// Head CoS = 0 (exec 100, dl 50): threshold 0.25 must drop it; the
	// next task then succeeds and survives.
	m := testMatrix(t, [][]pmf.PMF{{delta(100)}, {delta(10)}})
	c := NewCalculus(m)
	q := []QueueTask{
		{Type: 0, Deadline: 50},
		{Type: 1, Deadline: 40},
	}
	th := Threshold{Base: 0.25}
	got := th.Decide(&Context{Calc: c, Machine: 0, Now: 0, Queue: q})
	if !reflect.DeepEqual(got, []int{0}) {
		t.Fatalf("got %v, want [0]", got)
	}
}

func TestThresholdKeepsHighCoS(t *testing.T) {
	m := testMatrix(t, [][]pmf.PMF{{delta(10)}})
	c := NewCalculus(m)
	q := []QueueTask{
		{Type: 0, Deadline: 100},
		{Type: 0, Deadline: 100},
	}
	if got := (Threshold{Base: 0.25}).Decide(&Context{Calc: c, Machine: 0, Now: 0, Queue: q}); got != nil {
		t.Fatalf("dropped %v from an all-feasible queue", got)
	}
}

func TestThresholdAdaptsToPressure(t *testing.T) {
	// CoS of the head is 0.5; base threshold 0.4. Under low pressure the
	// effective threshold falls to 0.2 → keep; under heavy pressure it
	// rises to 0.8 → drop.
	m := testMatrix(t, [][]pmf.PMF{{twoPoint(10, 0.5, 60)}})
	c := NewCalculus(m)
	q := []QueueTask{
		{Type: 0, Deadline: 50},
		{Type: 0, Deadline: 500},
	}
	th := Threshold{Base: 0.4, Adaptive: true}
	low := th.Decide(&Context{Calc: c, Machine: 0, Now: 0, Queue: q, BatchPressure: 0.1})
	if low != nil {
		t.Fatalf("low pressure dropped %v", low)
	}
	high := th.Decide(&Context{Calc: c, Machine: 0, Now: 0, Queue: q, BatchPressure: 5})
	if !reflect.DeepEqual(high, []int{0}) {
		t.Fatalf("high pressure got %v, want [0]", high)
	}
}

func TestThresholdZeroDisables(t *testing.T) {
	m := testMatrix(t, [][]pmf.PMF{{delta(100)}, {delta(100)}})
	c := NewCalculus(m)
	q := []QueueTask{{Type: 0, Deadline: 10}, {Type: 1, Deadline: 10}}
	if got := (Threshold{Base: 0}).Decide(&Context{Calc: c, Machine: 0, Now: 0, Queue: q}); got != nil {
		t.Fatalf("zero threshold dropped %v", got)
	}
}

func TestPolicyByName(t *testing.T) {
	for _, name := range []string{"reactdrop", "Reactive", "none", "heuristic", "OPTIMAL", "threshold"} {
		p, err := PolicyByName(name)
		if err != nil || p == nil {
			t.Errorf("PolicyByName(%q): %v", name, err)
		}
	}
	if _, err := PolicyByName("bogus"); err == nil {
		t.Error("unknown policy should error")
	}
	if len(PolicyNames()) != 5 {
		t.Errorf("PolicyNames = %v", PolicyNames())
	}
}

func TestPolicyFromSpec(t *testing.T) {
	cases := []struct {
		spec string
		want Policy
	}{
		{"heuristic", NewHeuristic()},
		{"heuristic:beta=1.5,eta=3", Heuristic{Beta: 1.5, Eta: 3}},
		{"Heuristic:ETA=4", Heuristic{Beta: DefaultBeta, Eta: 4}},
		{"threshold", NewThreshold()},
		{"threshold:base=0.3,adaptive", Threshold{Base: 0.3, Adaptive: true}},
		{"threshold:base=0.3,adaptive=false", Threshold{Base: 0.3}},
		{"approx:grace=200,beta=2,eta=3", ApproxHeuristic{Beta: 2, Eta: 3, Grace: 200}},
		{"approx", ApproxHeuristic{Beta: DefaultBeta, Eta: DefaultEta, Grace: FollowEngineGrace}},
		{"approx:grace=-1", ApproxHeuristic{Beta: DefaultBeta, Eta: DefaultEta, Grace: FollowEngineGrace}},
		{"optimal", Optimal{}},
		{"none", ReactiveOnly{}},
	}
	for _, c := range cases {
		got, err := PolicyFromSpec(c.spec)
		if err != nil {
			t.Errorf("PolicyFromSpec(%q): %v", c.spec, err)
			continue
		}
		if got != c.want {
			t.Errorf("PolicyFromSpec(%q) = %#v, want %#v", c.spec, got, c.want)
		}
	}
	for _, bad := range []string{
		"",
		"bogus",
		"heuristic:bogus=1",       // unknown parameter
		"heuristic:beta=x",        // malformed value
		"heuristic:beta=0.5",      // out of range
		"heuristic:eta=0",         // out of range
		"threshold:base=1.5",      // out of range
		"approx:grace=-2",         // out of range (−1 is the follow-engine sentinel)
		"optimal:anything=1",      // parameters on a parameterless policy
		"heuristic:beta=1,beta=2", // duplicate key
	} {
		if _, err := PolicyFromSpec(bad); err == nil {
			t.Errorf("PolicyFromSpec(%q) should error", bad)
		}
	}
}

func TestPolicyNamesMatch(t *testing.T) {
	cases := map[string]Policy{
		"ReactDrop":       ReactiveOnly{},
		"Heuristic":       NewHeuristic(),
		"Optimal":         Optimal{},
		"Threshold":       NewThreshold(),
		"ApproxHeuristic": NewApproxHeuristic(0),
	}
	for want, p := range cases {
		if got := p.Name(); got != want {
			t.Errorf("%T.Name() = %q, want %q", p, got, want)
		}
	}
}

func TestDroppableBounds(t *testing.T) {
	cases := []struct {
		q           []QueueTask
		first, last int
	}{
		{nil, 0, 0},
		{[]QueueTask{{}}, 0, 0},
		{[]QueueTask{{Running: true}}, 1, 1},
		{[]QueueTask{{}, {}}, 0, 1},
		{[]QueueTask{{Running: true}, {}, {}}, 1, 2},
	}
	for i, c := range cases {
		f, l := droppableBounds(c.q)
		if f != c.first || l != c.last {
			t.Errorf("case %d: bounds (%d,%d), want (%d,%d)", i, f, l, c.first, c.last)
		}
	}
}

func normalizeNil(xs []int) []int {
	if len(xs) == 0 {
		return nil
	}
	return xs
}

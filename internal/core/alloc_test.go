package core

import (
	"testing"

	"github.com/hpcclab/taskdrop/internal/pet"
)

// Allocation budgets for the steady-state hot paths, enforced by CI's
// alloc-regression job. Steady state means after warm-up: the calculus
// arena, trie node pool and policy scratch have reached their high-water
// marks and are recycled in place, so chain evaluation should allocate
// nothing at all. The budgets leave one-allocation slack for runtime
// noise; a regression that reintroduces per-append slices blows through
// them immediately (the pre-arena kernel cost ~240 allocs per decision).
const (
	maxChainEvalAllocs = 1
	maxDecideAllocs    = 4 // a Decide that drops returns a fresh index slice
	// The warm persistent-cache path must be allocation-free outright: a
	// stable root signature means every append is a trie hit, and hits
	// touch no arena at all.
	maxCachedChainEvalAllocs = 0
)

// allocQueue is a representative full queue (the paper's six slots,
// running head included).
func allocQueue() []QueueTask {
	return []QueueTask{
		{Type: 0, Deadline: 400, Running: true, Elapsed: 30},
		{Type: 3, Deadline: 350},
		{Type: 7, Deadline: 420},
		{Type: 1, Deadline: 380},
		{Type: 9, Deadline: 500},
		{Type: 5, Deadline: 460},
	}
}

func allocCalculus(t testing.TB) *Calculus {
	t.Helper()
	m := pet.Build(pet.SPECProfile(pet.DefaultProfileSeed), pet.DefaultProfileSeed, pet.DefaultBuildOptions())
	return NewCalculus(m)
}

// TestChainEvalAllocsSteadyState asserts that one full recycle-and-chain
// epoch — the per-event pattern of the simulation engine — allocates
// nothing once warm.
func TestChainEvalAllocsSteadyState(t *testing.T) {
	if raceEnabled {
		t.Skip("allocation counts are skewed under the race detector")
	}
	calc := allocCalculus(t)
	queue := allocQueue()
	eval := func() {
		calc.Recycle()
		s, start := calc.ChainStart(2, 100, queue)
		for i := start; i < len(queue); i++ {
			s = s.AppendTask(queue[i])
		}
		if s.PMF().IsZero() {
			t.Fatal("chain evaluated to zero mass")
		}
	}
	for i := 0; i < 8; i++ { // warm the arena and node pool
		eval()
	}
	if avg := testing.AllocsPerRun(200, eval); avg > maxChainEvalAllocs {
		t.Fatalf("steady-state chain evaluation allocates %.1f/op, budget %d", avg, maxChainEvalAllocs)
	}
}

// TestCachedChainEvalAllocsSteadyState asserts the persistent-cache path:
// once a machine's chain cache is warm and its root signature stable, a
// full chain walk across recycles is pure trie traversal — zero
// allocations, zero arena traffic.
func TestCachedChainEvalAllocsSteadyState(t *testing.T) {
	if raceEnabled {
		t.Skip("allocation counts are skewed under the race detector")
	}
	calc := allocCalculus(t)
	cc := calc.NewChainCache()
	queue := allocQueue()
	eval := func() {
		calc.Recycle()
		s, start := calc.ChainStartCached(cc, 2, 100, queue)
		for i := start; i < len(queue); i++ {
			s = s.AppendTask(queue[i])
		}
		if s.PMF().IsZero() {
			t.Fatal("chain evaluated to zero mass")
		}
	}
	for i := 0; i < 8; i++ {
		eval()
	}
	if avg := testing.AllocsPerRun(200, eval); avg > maxCachedChainEvalAllocs {
		t.Fatalf("warm cached chain evaluation allocates %.1f/op, budget %d", avg, maxCachedChainEvalAllocs)
	}
	if st := calc.Stats(); st.RootMisses != 1 {
		t.Fatalf("warm loop re-derived the root %d times, want 1", st.RootMisses)
	}
}

// TestPolicyDecideAllocsSteadyState asserts the same for full policy
// decisions over a recycled calculus.
func TestPolicyDecideAllocsSteadyState(t *testing.T) {
	if raceEnabled {
		t.Skip("allocation counts are skewed under the race detector")
	}
	calc := allocCalculus(t)
	for _, policy := range []Policy{NewHeuristic(), NewThreshold(), Optimal{}} {
		t.Run(policy.Name(), func(t *testing.T) {
			ctx := &Context{Calc: calc, Machine: 2, Now: 100, Queue: allocQueue(), BatchPressure: 1.5}
			decide := func() {
				calc.Recycle()
				_ = policy.Decide(ctx)
			}
			for i := 0; i < 8; i++ {
				decide()
			}
			if avg := testing.AllocsPerRun(200, decide); avg > maxDecideAllocs {
				t.Fatalf("steady-state %s decision allocates %.1f/op, budget %d", policy.Name(), avg, maxDecideAllocs)
			}
		})
	}
}

package core

import (
	"fmt"

	"github.com/hpcclab/taskdrop/internal/pmf"
)

// Default tuning of the proactive dropping heuristic, as established
// experimentally in §V-C (effective depth) and §V-D (robustness
// improvement factor) of the paper.
const (
	DefaultEta  = 2
	DefaultBeta = 1.0
)

// Heuristic is the paper's autonomous proactive task-dropping heuristic
// (§IV-E, Fig. 4). It walks each machine queue head to tail once; for every
// droppable task i it compares the instantaneous robustness of the next Eta
// tasks (the "effective depth" of i's influence zone) with task i
// provisionally dropped against the robustness of the window including i
// when kept, and confirms the drop iff Eq. 8 holds:
//
//	Σ_{n=i+1..i+η} p⁽ⁱ⁾_n  >  β · Σ_{n=i..i+η} p_n
//
// Beta ≥ 1 is the robustness improvement factor: β→1 drops on any
// improvement, β→∞ disables proactive dropping.
type Heuristic struct {
	Beta float64 // robustness improvement factor (β), ≥ 1
	Eta  int     // effective depth (η), ≥ 1
}

// NewHeuristic returns the heuristic with the paper's tuned parameters
// (η=2, β=1).
func NewHeuristic() Heuristic { return Heuristic{Beta: DefaultBeta, Eta: DefaultEta} }

// Name implements Policy.
func (h Heuristic) Name() string { return "Heuristic" }

// StableDecision implements StableDecider: the walk reads only the
// availability root, the queue's types and deadlines, and β/η.
func (h Heuristic) StableDecision() bool { return true }

// Decide implements Policy.
func (h Heuristic) Decide(ctx *Context) []int {
	if h.Beta < 1 || h.Eta < 1 {
		panic(fmt.Sprintf("core: invalid heuristic parameters β=%v η=%d", h.Beta, h.Eta))
	}
	return heuristicWalk(ctx, h.Beta, h.Eta, chanceOfSuccess, strictDeadline)
}

// valueFunc scores one task's completion PMF; the heuristic maximizes the
// window sum of this value. The paper's heuristic uses the chance of
// success (Eq. 2); the approximate-computing extension uses expected
// utility.
type valueFunc func(cp pmf.PMF, qt QueueTask) float64

// chanceOfSuccess is Eq. 2 as a valueFunc.
func chanceOfSuccess(cp pmf.PMF, qt QueueTask) float64 {
	return cp.MassBefore(qt.Deadline)
}

// deadlineFunc yields the Eq. 1 truncation point for a queued task: the
// latest start time after which executing it has no value. The paper's
// model truncates at the task deadline; the approximate-computing
// extension pushes it out by the grace window.
type deadlineFunc func(qt QueueTask) pmf.Tick

// strictDeadline is the paper's truncation rule.
func strictDeadline(qt QueueTask) pmf.Tick { return qt.Deadline }

// heuristicWalk is the single head-to-tail pass of Fig. 4 parameterized by
// the per-task value function and truncation rule. Chains run through the
// calculus' shared-prefix cache, so the keep/drop scenario windows of
// consecutive candidates — which overlap heavily — convolve each distinct
// prefix only once, and the walk's working slices live in calculus-owned
// scratch: a steady-state decision allocates nothing until it drops.
func heuristicWalk(ctx *Context, beta float64, eta int, value valueFunc, dlOf deadlineFunc) []int {
	q := ctx.Queue
	first, _ := droppableBounds(q)
	if len(q)-first < 2 {
		// Zero or one pending task: nothing droppable (a sole pending task
		// is the last task, whose influence zone is empty).
		return nil
	}
	calc := ctx.Calc
	start, _ := ctx.ChainStart()

	// work holds the not-yet-decided pending suffix of the queue; orig maps
	// its entries back to original queue indexes.
	work := append(calc.scratchQ[:0], q[first:]...)
	orig := calc.scratchI[:0]
	for i := range work {
		orig = append(orig, first+i)
	}
	calc.scratchQ, calc.scratchI = work, orig

	// chainValue evaluates the first n tasks of the given slice starting
	// from s, returning the summed value and the chain state after the
	// first appended task.
	chainValue := func(s ChainState, tasks []QueueTask, n int) (float64, ChainState) {
		sum := 0.0
		head := s
		for k := 0; k < n && k < len(tasks); k++ {
			s = s.Append(tasks[k].Type, dlOf(tasks[k]))
			if k == 0 {
				head = s
			}
			sum += value(s.PMF(), tasks[k])
		}
		return sum, head
	}

	var drops []int
	prev := start
	i := 0
	for i < len(work)-1 { // the final task is never a candidate
		window := eta
		if rest := len(work) - 1 - i; rest < window {
			window = rest
		}
		// Keep scenario: tasks i..i+window; drop scenario: i+1..i+window.
		vKeep, head := chainValue(prev, work[i:], window+1)
		vDrop, _ := chainValue(prev, work[i+1:], window)

		if vDrop > beta*vKeep {
			drops = append(drops, orig[i])
			work = append(work[:i], work[i+1:]...)
			orig = append(orig[:i], orig[i+1:]...)
			// prev unchanged: the chain still starts after task i−1.
			continue
		}
		// Advance: the chain state of kept task i heads the next window.
		prev = head
		i++
	}
	return drops
}

package core

// Threshold is the prior-work baseline ("+Threshold" in Fig. 8, after
// Gentry et al., IPDPS'19): a pending task is pruned when its chance of
// success falls below a predetermined threshold. The published mechanism
// adjusts the user-chosen threshold at each mapping event according to
// system load; we reproduce that with a batch-pressure multiplier bounded
// to [0.5, 2] — under heavy oversubscription the effective threshold rises
// (more aggressive pruning), under light load it falls.
//
// This is exactly the kind of fine-grained, user-supplied parameter the
// paper's autonomous mechanism exists to remove.
type Threshold struct {
	// Base is the predetermined chance-of-success threshold θ (default
	// 0.25 via NewThreshold).
	Base float64
	// Adaptive enables the per-event load adjustment.
	Adaptive bool
}

// DefaultThresholdBase is the predetermined threshold used by the baseline
// when the user provides none.
const DefaultThresholdBase = 0.25

// NewThreshold returns the adaptive baseline with the default threshold.
func NewThreshold() Threshold { return Threshold{Base: DefaultThresholdBase, Adaptive: true} }

// Name implements Policy.
func (Threshold) Name() string { return "Threshold" }

// Decide implements Policy. It walks the queue head to tail; each pending
// task whose chance of success under the current (post-drop) chain falls
// below the effective threshold is dropped, which immediately improves the
// odds of the tasks behind it.
func (t Threshold) Decide(ctx *Context) []int {
	theta := t.Base
	if t.Adaptive {
		f := ctx.BatchPressure
		if f < 0.5 {
			f = 0.5
		} else if f > 2 {
			f = 2
		}
		theta *= f
	}
	if theta <= 0 {
		return nil
	}
	q := ctx.Queue
	first, _ := droppableBounds(q)
	if len(q)-first < 1 {
		return nil
	}
	prev, _ := ctx.ChainStart()

	var drops []int
	// Unlike the paper's heuristic, the threshold baseline may prune any
	// pending task including the last: its criterion is the task's own
	// chance of success, not its influence zone.
	for i := first; i < len(q); i++ {
		next := prev.AppendTask(q[i])
		if next.PMF().MassBefore(q[i].Deadline) < theta {
			drops = append(drops, i)
			// prev unchanged: the chain skips the dropped task.
			continue
		}
		prev = next
	}
	return drops
}

package router

import (
	"math"
	"sync"
	"testing"

	"github.com/hpcclab/taskdrop/internal/pmf"
)

func TestClassHashDeterministicAndInRange(t *testing.T) {
	p := NewClassHash(7)
	vs := views(5)
	for class := 0; class < 64; class++ {
		first := p.Route(Task{Class: class}, vs)
		if first < 0 || first >= len(vs) {
			t.Fatalf("class %d routed to %d, outside [0,%d)", class, first, len(vs))
		}
		for i := 0; i < 10; i++ {
			if got := p.Route(Task{Class: class, Arrival: pmf.Tick(i)}, vs); got != first {
				t.Fatalf("class %d route changed: %d then %d (must be a pure function of the class)", class, first, got)
			}
		}
	}
}

func TestClassHashSpreadsClasses(t *testing.T) {
	p := NewClassHash(1)
	vs := views(4)
	counts := make([]int, 4)
	for class := 0; class < 400; class++ {
		counts[p.Route(Task{Class: class}, vs)]++
	}
	for s, n := range counts {
		if n == 0 {
			t.Fatalf("shard %d received no classes: %v", s, counts)
		}
	}
}

func TestClassHashSeedsDiffer(t *testing.T) {
	a, b := NewClassHash(1), NewClassHash(2)
	vs := views(8)
	same := 0
	for class := 0; class < 256; class++ {
		if a.Route(Task{Class: class}, vs) == b.Route(Task{Class: class}, vs) {
			same++
		}
	}
	if same == 256 {
		t.Fatal("seeds 1 and 2 produce identical class assignments")
	}
}

func TestRemoteViewApplyStats(t *testing.T) {
	r := NewRemoteView(3)
	r.ApplyStats(2, 5, 7, []float64{0.9, 0.1, 0.5})
	v := r.View()
	if got := v.QueueMass(); got != 7 {
		t.Fatalf("QueueMass = %d, want 7 (batch 2 + queued 5)", got)
	}
	if got := v.FreeSlots(); got != 7 {
		t.Fatalf("FreeSlots = %d, want 7", got)
	}
	for class, want := range []float64{0.9, 0.1, 0.5} {
		if got := v.ClassRobustness(class); math.Abs(got-want) > 1e-9 {
			t.Fatalf("class %d robustness = %v, want %v", class, got, want)
		}
	}
	// A later snapshot overwrites, it does not blend.
	r.ApplyStats(0, 0, 12, []float64{0.2, 0.2, 0.2})
	if got := v.QueueMass(); got != 0 {
		t.Fatalf("QueueMass after second snapshot = %d, want 0", got)
	}
	if got := v.ClassRobustness(0); math.Abs(got-0.2) > 1e-9 {
		t.Fatalf("class 0 robustness after second snapshot = %v, want 0.2", got)
	}
}

func TestRemoteViewConcurrentWriters(t *testing.T) {
	// ShardView's writes are single-writer by contract; RemoteView must
	// make concurrent pollers and admission observers safe. Run under
	// -race to catch regressions.
	r := NewRemoteView(2)
	var wg sync.WaitGroup
	for w := 0; w < 4; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < 500; i++ {
				if w%2 == 0 {
					r.ApplyStats(i, i, i, []float64{0.5, 0.5})
				} else {
					r.ObserveAdmission(i%2, float64(i%2))
				}
				_ = r.View().ClassRobustness(0)
			}
		}(w)
	}
	wg.Wait()
}

package router

import "sync"

// RemoteView adapts a ShardView to a remote backend whose state arrives
// over the wire instead of from an in-process decision loop: the router
// tier (internal/front) polls each shard server's /v1/stats and folds the
// aggregated load gauges and per-class robustness estimates into the view,
// and nudges the estimates with its own admission observations between
// polls. The wrapped ShardView feeds the exact same Policy interface the
// in-process cluster uses, so rr/mass/p2c/hash route identically whether
// the shards live in this process or behind HTTP.
//
// ShardView's EWMA setters are single-writer by contract; a front-end has
// many goroutines observing admissions concurrently with the poller, so
// RemoteView serializes all writes behind a mutex. Policies still read the
// inner view's atomics lock-free.
type RemoteView struct {
	mu sync.Mutex
	v  *ShardView
}

// NewRemoteView builds a remote-fed view for a backend serving numClasses
// task classes. Like NewShardView, estimates start optimistic (1.0) so
// fresh backends attract work until real observations arrive.
func NewRemoteView(numClasses int) *RemoteView {
	return &RemoteView{v: NewShardView(numClasses)}
}

// View returns the inner ShardView for policy routing. Reads are lock-free.
func (r *RemoteView) View() *ShardView { return r.v }

// ApplyStats overwrites the view with an authoritative remote snapshot:
// the backend's aggregated load gauges (deferred batch, queued tasks, free
// slots summed over its shards) and per-class robustness estimates. Called
// by the backend's poller after each /v1/stats round trip.
func (r *RemoteView) ApplyStats(batch, queued, free int, robustness []float64) {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.v.SetLoad(batch, queued, free)
	for class, p := range robustness {
		r.v.SetClassRobustness(class, p)
	}
}

// ObserveAdmission folds one proxied admission outcome into the per-class
// EWMA — the front-end's between-polls signal: p is 1 for a mapped task, 0
// for a deferred or dropped one (the backend could not give the class a
// timely slot). The next ApplyStats overwrites it with the backend's own
// Eq. 2 estimate.
func (r *RemoteView) ObserveAdmission(class int, p float64) {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.v.ObserveAdmission(class, p)
}

// SetDown publishes whether the backend can currently admit anything —
// false when it is unreachable or every shard it serves is degraded to
// zero live machines. The flag is a single atomic on the inner view, so it
// needs no writer lock.
func (r *RemoteView) SetDown(down bool) { r.v.SetDown(down) }

// EnableDecay turns on read-side staleness decay on the inner view (see
// ShardView.EnableDecay). Call before the view is shared.
func (r *RemoteView) EnableDecay(halfLife int64, now func() int64) {
	r.v.EnableDecay(halfLife, now)
}

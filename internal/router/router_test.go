package router

import (
	"math"
	"testing"
)

func views(n int) []*ShardView {
	out := make([]*ShardView, n)
	for i := range out {
		out[i] = NewShardView(4)
	}
	return out
}

func TestFromSpec(t *testing.T) {
	for spec, want := range map[string]string{
		"rr":               "rr",
		"RoundRobin":       "rr",
		"round-robin":      "rr",
		"mass":             "mass",
		"leastmass":        "mass",
		"least-queue-mass": "mass",
		"lqm":              "mass",
		"p2c":              "p2c",
		"p2c:seed=42":      "p2c",
		"PowerOfTwo":       "p2c",
	} {
		p, err := FromSpec(spec)
		if err != nil {
			t.Fatalf("FromSpec(%q): %v", spec, err)
		}
		if p.Name() != want {
			t.Errorf("FromSpec(%q).Name() = %q, want %q", spec, p.Name(), want)
		}
	}
	for _, bad := range []string{"", "nosuch", "rr:seed=1", "p2c:sede=1", "p2c:seed=x"} {
		if _, err := FromSpec(bad); err == nil {
			t.Errorf("FromSpec(%q) accepted", bad)
		}
	}
}

func TestFromSpecFreshState(t *testing.T) {
	a, _ := FromSpec("rr")
	b, _ := FromSpec("rr")
	vs := views(3)
	a.Route(Task{}, vs)
	if got := b.Route(Task{}, vs); got != 0 {
		t.Fatalf("second rr instance started at %d; routing state is shared", got)
	}
}

func TestRoundRobinCycles(t *testing.T) {
	p := NewRoundRobin()
	vs := views(3)
	for i := 0; i < 9; i++ {
		if got := p.Route(Task{}, vs); got != i%3 {
			t.Fatalf("route %d = %d, want %d", i, got, i%3)
		}
	}
}

func TestLeastMassPicksLightestWithDeterministicTies(t *testing.T) {
	vs := views(4)
	vs[0].SetLoad(1, 5, 0) // mass 6
	vs[1].SetLoad(0, 4, 2) // mass 4
	vs[2].SetLoad(2, 2, 2) // mass 4
	vs[3].SetLoad(3, 4, 0) // mass 7
	if got := (LeastMass{}).Route(Task{}, vs); got != 1 {
		t.Fatalf("least mass = %d, want 1 (lowest index among ties)", got)
	}
}

func TestPowerOfTwoDeterministicAndPrefersRobustShard(t *testing.T) {
	mk := func() []*ShardView {
		vs := views(2)
		// Shard 0 has been failing class 2; shard 1 delivering it on time.
		for i := 0; i < 100; i++ {
			vs[0].ObserveAdmission(2, 0.05)
			vs[1].ObserveAdmission(2, 0.95)
		}
		return vs
	}
	a, b := NewPowerOfTwo(7), NewPowerOfTwo(7)
	vsA, vsB := mk(), mk()
	toOne := 0
	for i := 0; i < 200; i++ {
		ra := a.Route(Task{Class: 2}, vsA)
		rb := b.Route(Task{Class: 2}, vsB)
		if ra != rb {
			t.Fatalf("route %d diverged for equal seeds: %d vs %d", i, ra, rb)
		}
		if ra == 1 {
			toOne++
		}
	}
	// With two shards, every route compares both; the robust shard must
	// win essentially always.
	if toOne < 190 {
		t.Fatalf("p2c sent only %d/200 class-2 tasks to the robust shard", toOne)
	}
}

func TestPowerOfTwoSecondChoiceDistinct(t *testing.T) {
	// Robustness strictly increasing with shard index: the winner of any
	// pair is the max of two draws, so the distribution across 2000 routes
	// pins the sampling: shard 0 can win only if both draws landed on it —
	// impossible with distinct choices — and shard 4 wins every pair that
	// samples it (expected ≈ 2/5 of routes).
	p := NewPowerOfTwo(3)
	vs := views(5)
	for s, v := range vs {
		for i := 0; i < 100; i++ {
			v.ObserveAdmission(1, float64(s)/10)
		}
	}
	counts := make([]int, 5)
	for i := 0; i < 2000; i++ {
		counts[p.Route(Task{Class: 1}, vs)]++
	}
	if counts[0] != 0 {
		t.Fatalf("shard 0 won %d pairs; the two choices are not distinct: %v", counts[0], counts)
	}
	for s := 1; s < 5; s++ {
		if counts[s] == 0 {
			t.Fatalf("shard %d never won a pair: %v", s, counts)
		}
	}
	if counts[4] < 600 {
		t.Fatalf("best shard won only %d/2000 (want ≈ 800): %v", counts[4], counts)
	}
}

func TestShardViewEWMA(t *testing.T) {
	v := NewShardView(2)
	if got := v.ClassRobustness(0); got != 1.0 {
		t.Fatalf("cold estimate = %v, want optimistic 1.0", got)
	}
	for i := 0; i < 400; i++ {
		v.ObserveAdmission(0, 0.25)
	}
	if got := v.ClassRobustness(0); math.Abs(got-0.25) > 1e-6 {
		t.Fatalf("converged estimate = %v, want 0.25", got)
	}
	// Out-of-range classes are ignored and read optimistic.
	v.ObserveAdmission(9, 0.0)
	if got := v.ClassRobustness(9); got != 1.0 {
		t.Fatalf("unknown class estimate = %v, want 1.0", got)
	}
	if got := v.ClassRobustness(1); got != 1.0 {
		t.Fatalf("untouched class estimate = %v, want 1.0", got)
	}
}

// maxRouteAllocs bounds the allocation count of one Route call on the
// router hot path — the front-end consults the policy for every arriving
// task, concurrently with shard loops, and must not generate garbage. The
// built-in policies allocate nothing; the budget of 2 leaves headroom for
// instrumentation without letting per-route slices creep in. CI's
// alloc-regression job runs this test.
const maxRouteAllocs = 2

func TestRouterRouteAllocsSteadyState(t *testing.T) {
	vs := views(8)
	for i, v := range vs {
		v.SetLoad(i, 2*i, 8-i)
	}
	for _, spec := range []string{"rr", "mass", "p2c:seed=5"} {
		p, err := FromSpec(spec)
		if err != nil {
			t.Fatal(err)
		}
		task := Task{Class: 1, Arrival: 100, Deadline: 900}
		p.Route(task, vs) // warm
		if avg := testing.AllocsPerRun(200, func() { p.Route(task, vs) }); avg > maxRouteAllocs {
			t.Errorf("%s: Route allocates %.1f/op, budget %d", spec, avg, maxRouteAllocs)
		}
	}
}

func TestShardViewDecayTowardPrior(t *testing.T) {
	const half = 100
	clock := int64(0)
	v := NewShardView(2)
	v.EnableDecay(half, func() int64 { return clock })
	for i := 0; i < 400; i++ {
		v.ObserveAdmission(0, 0.25)
	}
	if got := v.ClassRobustness(0); math.Abs(got-0.25) > 1e-6 {
		t.Fatalf("fresh estimate = %v, want 0.25", got)
	}
	// One half-life of silence: halfway from the estimate to the 0.5 prior.
	clock += half
	if got, want := v.ClassRobustness(0), 0.375; math.Abs(got-want) > 1e-6 {
		t.Fatalf("estimate after one half-life = %v, want %v", got, want)
	}
	// A long outage: the stale view reads as the neutral prior, not the
	// last-good 0.25, so p2c stops preferring a dead backend.
	clock += 20 * half
	if got := v.ClassRobustness(0); math.Abs(got-0.5) > 1e-4 {
		t.Fatalf("estimate after long outage = %v, want ≈ 0.5", got)
	}
	// A fresh observation re-arms the clock: the decayed value is gone and
	// reads track the EWMA again.
	for i := 0; i < 400; i++ {
		v.ObserveAdmission(0, 0.25)
	}
	if got := v.ClassRobustness(0); math.Abs(got-0.25) > 1e-6 {
		t.Fatalf("estimate after re-observation = %v, want 0.25", got)
	}
	clock += half / 2
	mid := v.ClassRobustness(0)
	if mid <= 0.25 || mid >= 0.375 {
		t.Fatalf("partial-half-life estimate = %v, want in (0.25, 0.375)", mid)
	}
	// Untouched classes decay from the optimistic cold start too.
	if got := v.ClassRobustness(1); got >= 1.0 {
		t.Fatalf("cold class with decay = %v, want < 1.0", got)
	}
}

func TestShardViewDecayOffByDefault(t *testing.T) {
	v := NewShardView(1)
	for i := 0; i < 400; i++ {
		v.ObserveAdmission(0, 0.25)
	}
	// Without EnableDecay the estimate is clock-free and sticky — exactly
	// the deterministic offline behavior the cluster path depends on.
	if got := v.ClassRobustness(0); math.Abs(got-0.25) > 1e-6 {
		t.Fatalf("estimate = %v, want sticky 0.25", got)
	}
}

func TestPoliciesSteerAroundDownShards(t *testing.T) {
	for _, spec := range []string{"rr", "mass", "p2c:seed=3", "hash:seed=3"} {
		p, err := FromSpec(spec)
		if err != nil {
			t.Fatal(err)
		}
		vs := views(4)
		for i, v := range vs {
			v.SetLoad(i, i, 4)
		}
		vs[1].SetDown(true)
		vs[2].SetDown(true)
		for i := 0; i < 200; i++ {
			task := Task{Class: i % 4}
			if got := p.Route(task, vs); got == 1 || got == 2 {
				t.Fatalf("%s routed task %d to down shard %d", spec, i, got)
			}
		}
		// Recovery: once back up — and now lightest — the shard re-enters
		// rotation under every policy.
		vs[1].SetDown(false)
		vs[2].SetDown(false)
		vs[0].SetLoad(0, 100, 4)
		vs[3].SetLoad(3, 100, 4)
		vs[1].SetLoad(1, 0, 4)
		vs[2].SetLoad(2, 0, 4)
		hit := make(map[int]bool)
		for i := 0; i < 200; i++ {
			hit[p.Route(Task{Class: i % 4}, vs)] = true
		}
		if !hit[1] && !hit[2] {
			t.Fatalf("%s never routed to revived shards: %v", spec, hit)
		}
	}
}

func TestAllShardsDownStillRoutes(t *testing.T) {
	for _, spec := range []string{"rr", "mass", "p2c:seed=3", "hash:seed=3"} {
		p, err := FromSpec(spec)
		if err != nil {
			t.Fatal(err)
		}
		vs := views(3)
		for _, v := range vs {
			v.SetDown(true)
		}
		for i := 0; i < 50; i++ {
			got := p.Route(Task{Class: i % 3}, vs)
			if got < 0 || got >= 3 {
				t.Fatalf("%s returned out-of-range shard %d with all down", spec, got)
			}
		}
	}
}

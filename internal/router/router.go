// Package router implements the shard-routing layer of the clustered
// admission architecture: given N independent shard engines (each owning a
// disjoint subset of the machines, see sim.PartitionMachines), a routing
// policy picks the shard every arriving task is admitted through.
//
// Probabilistic pruning is shard-local by construction — a task's
// completion-time PMF (Eq. 1) depends only on the queues of the machines
// it may run on — so routing a task to a shard and running the paper's
// calculus inside that shard preserves the dropping semantics exactly
// while the shards advance independently.
//
// # Concurrency model
//
// Policies are consulted by a lock-free front-end: many goroutines may
// call Route concurrently while shard decision loops publish their state
// through ShardView atomics. No policy takes a lock; the mutable ones
// (round-robin cursor, power-of-two RNG) advance a single atomic word.
// The route hot path is budgeted at ≤ 2 allocations (all built-in
// policies allocate zero); CI asserts the budget.
//
// Policies resolve through the same parameterized spec grammar as
// mappers, droppers and profiles (internal/spec):
//
//	rr                          round-robin (aliases roundrobin, round-robin)
//	mass                        least queue mass (aliases leastmass, least-queue-mass, lqm)
//	p2c[:seed=<int64>]          power-of-two-choices over per-class
//	                            robustness estimates (aliases poweroftwo,
//	                            power-of-two)
//	hash[:seed=<int64>]         task class partitioning: every task of one
//	                            class lands on the same shard (aliases
//	                            class, class-hash)
package router

import (
	"fmt"
	"math"
	"sort"
	"strings"
	"sync/atomic"

	"github.com/hpcclab/taskdrop/internal/pmf"
	"github.com/hpcclab/taskdrop/internal/spec"
)

// EWMAAlpha is the smoothing factor of the per-class robustness estimate:
// each admission folds its observed chance of success into the running
// estimate as new = (1-α)·old + α·observed. 1/8 forgets roughly the last
// twenty decisions — fast enough to track load swings, slow enough not to
// thrash on one unlucky placement.
const EWMAAlpha = 0.125

// Task is the router's view of one arriving task: just enough to pick a
// shard, nothing that would require parsing the full wire spec on the hot
// path.
type Task struct {
	// Class is the task's PET row (task type).
	Class int
	// Arrival and Deadline are the task's absolute ticks.
	Arrival  pmf.Tick
	Deadline pmf.Tick
}

// ShardView is the router-visible state of one shard, published lock-free:
// the shard's single-writer decision loop stores into the atomics after
// every event, and any number of front-end goroutines read them when
// routing. It carries the two signals the built-in policies consume —
// queue-mass load gauges and a per-task-class EWMA of the on-time
// probability the shard recently delivered at admission.
type ShardView struct {
	batch  atomic.Int64 // deferred tasks waiting unmapped
	queued atomic.Int64 // tasks in machine queues (incl. running)
	free   atomic.Int64 // open queue slots across the shard

	// down marks a shard that cannot currently admit anything — every
	// machine removed, or its backend unreachable. Policies steer around
	// down views and only land on one when every view is down.
	down atomic.Bool

	// robustness[class] holds math.Float64bits of the per-class EWMA.
	robustness []atomic.Uint64

	// Optional read-side decay (EnableDecay): lastObs[class] is the
	// decayNow() stamp of the class's latest observation, decayHalf the
	// half-life in the same units. Nil lastObs disables decay entirely,
	// keeping the default view deterministic for offline simulation.
	lastObs   []atomic.Int64
	decayHalf float64
	decayNow  func() int64
}

// NewShardView builds a view for a shard serving numClasses task types.
// Robustness estimates start optimistic (1.0) so cold shards attract work
// until real observations arrive.
func NewShardView(numClasses int) *ShardView {
	v := &ShardView{robustness: make([]atomic.Uint64, numClasses)}
	one := math.Float64bits(1.0)
	for i := range v.robustness {
		v.robustness[i].Store(one)
	}
	return v
}

// SetLoad publishes the shard's load gauges (single writer: the shard's
// decision loop).
func (v *ShardView) SetLoad(batch, queued, free int) {
	v.batch.Store(int64(batch))
	v.queued.Store(int64(queued))
	v.free.Store(int64(free))
}

// SetDown publishes whether the shard is unable to admit work (degraded to
// zero live machines, or its backend gone). Single writer per transition;
// any goroutine may read concurrently.
func (v *ShardView) SetDown(down bool) { v.down.Store(down) }

// Down reports whether the shard is currently marked unable to admit work.
func (v *ShardView) Down() bool { return v.down.Load() }

// QueueMass returns the shard's outstanding work: tasks in machine queues
// plus deferred tasks waiting in the batch.
func (v *ShardView) QueueMass() int64 { return v.queued.Load() + v.batch.Load() }

// FreeSlots returns the shard's open queue slots.
func (v *ShardView) FreeSlots() int64 { return v.free.Load() }

// ObserveAdmission folds one admission outcome for a task of the given
// class into the per-class robustness EWMA: p is the chance of success the
// shard gave the task at admission (0 for a deferred or dropped task).
// Single writer: the shard's decision loop.
func (v *ShardView) ObserveAdmission(class int, p float64) {
	if class < 0 || class >= len(v.robustness) {
		return
	}
	old := math.Float64frombits(v.robustness[class].Load())
	next := (1-EWMAAlpha)*old + EWMAAlpha*p
	// Clamp accumulated rounding drift: estimates are probabilities.
	next = math.Max(0, math.Min(1, next))
	v.robustness[class].Store(math.Float64bits(next))
	v.touch(class)
}

// SetClassRobustness overwrites one class's robustness estimate — the
// recovery path restoring a persisted EWMA after a restart. Single writer:
// the shard's decision loop (or its constructor, before the loop starts).
func (v *ShardView) SetClassRobustness(class int, p float64) {
	if class < 0 || class >= len(v.robustness) {
		return
	}
	v.robustness[class].Store(math.Float64bits(math.Max(0, math.Min(1, p))))
	v.touch(class)
}

// decayPrior is the neutral estimate a stale view slides toward under
// EnableDecay. 0.5 — not the optimistic 1.0 cold-start — so a dead
// backend's last-good (or never-observed) estimate stops beating live
// shards that are reporting real numbers.
const decayPrior = 0.5

// EnableDecay turns on read-side staleness decay for the robustness
// estimates: a class whose estimate has not been refreshed for one
// half-life (in now()'s units) reads as halfway between its stored value
// and the neutral prior 0.5, and slides the rest of the way exponentially.
// Without decay a view nobody updates — a dead backend, an outage — keeps
// its last-good estimate forever and p2c keeps preferring it. Decay is off
// by default (offline simulation must stay a pure function of the decision
// stream); the front tier enables it with a wall clock. Call before the
// view is shared; every class reads as freshly observed at that instant.
func (v *ShardView) EnableDecay(halfLife int64, now func() int64) {
	if halfLife <= 0 || now == nil {
		panic("router: EnableDecay needs a positive half-life and a clock")
	}
	v.lastObs = make([]atomic.Int64, len(v.robustness))
	v.decayHalf = float64(halfLife)
	v.decayNow = now
	t := now()
	for i := range v.lastObs {
		v.lastObs[i].Store(t)
	}
}

// touch stamps a class's estimate as freshly observed.
func (v *ShardView) touch(class int) {
	if v.lastObs != nil {
		v.lastObs[class].Store(v.decayNow())
	}
}

// ClassRobustness returns the shard's current expected on-time probability
// for the given task class (1.0 before any observation, or for an unknown
// class), decayed toward the neutral prior when EnableDecay is on and the
// class has gone unobserved.
func (v *ShardView) ClassRobustness(class int) float64 {
	if class < 0 || class >= len(v.robustness) {
		return 1.0
	}
	est := math.Float64frombits(v.robustness[class].Load())
	if v.lastObs == nil {
		return est
	}
	elapsed := v.decayNow() - v.lastObs[class].Load()
	if elapsed <= 0 {
		return est
	}
	f := math.Exp2(-float64(elapsed) / v.decayHalf)
	return decayPrior + (est-decayPrior)*f
}

// Policy picks the shard an arriving task is admitted through. Route is
// called concurrently by the front-end and must not block or allocate more
// than the documented budget (≤ 2 allocs; built-ins allocate zero). The
// returned index must lie in [0, len(views)).
type Policy interface {
	// Name identifies the policy in logs and experiment tables.
	Name() string
	// Route picks a shard for task t given the published shard views.
	Route(t Task, views []*ShardView) int
}

// RoundRobin cycles through the shards in order, ignoring their state —
// the zero-information baseline. The cursor is a single atomic, so
// concurrent fronts interleave without locking.
type RoundRobin struct {
	next atomic.Uint64
}

// NewRoundRobin returns a round-robin policy starting at shard 0.
func NewRoundRobin() *RoundRobin { return &RoundRobin{} }

// Name implements Policy.
func (*RoundRobin) Name() string { return "rr" }

// Route implements Policy.
func (p *RoundRobin) Route(_ Task, views []*ShardView) int {
	base := p.next.Add(1) - 1
	n := uint64(len(views))
	// Walk forward past down shards; with nothing down this is exactly the
	// plain cursor. When everything is down, land on the cursor's shard.
	for k := uint64(0); k < n; k++ {
		i := int((base + k) % n)
		if !views[i].Down() {
			return i
		}
	}
	return int(base % n)
}

// LeastMass routes to the shard with the least outstanding work (machine
// queues plus deferred batch), breaking ties toward the lower shard index
// so the policy is a pure function of the published views.
type LeastMass struct{}

// Name implements Policy.
func (LeastMass) Name() string { return "mass" }

// Route implements Policy.
func (LeastMass) Route(_ Task, views []*ShardView) int {
	best, bestMass := -1, int64(0)
	for i := 0; i < len(views); i++ {
		if views[i].Down() {
			continue
		}
		if m := views[i].QueueMass(); best < 0 || m < bestMass {
			best, bestMass = i, m
		}
	}
	if best < 0 {
		best = 0 // everything down: shard 0 sheds the request
	}
	return best
}

// PowerOfTwo samples two distinct shards and admits through the one whose
// robustness estimate for the task's class — the expected on-time
// probability the shard has recently delivered to that class — is higher,
// breaking ties toward the lighter queue and then the lower index. Two
// choices give most of the benefit of a full scan at O(1) cost, and the
// sampling keeps a persistently-misestimated shard from starving
// (Mitzenmacher's power of two choices, applied to robustness instead of
// queue length).
//
// The RNG is a counter-based splitmix64 advanced with one atomic add, so
// concurrent routes never lock and a fixed seed makes a sequential request
// stream reproducible.
type PowerOfTwo struct {
	state atomic.Uint64
}

// NewPowerOfTwo returns a power-of-two-choices policy seeded for
// reproducible routing.
func NewPowerOfTwo(seed int64) *PowerOfTwo {
	p := &PowerOfTwo{}
	p.state.Store(uint64(seed))
	return p
}

// Name implements Policy.
func (*PowerOfTwo) Name() string { return "p2c" }

// rand64 advances the counter-based splitmix64 stream by one draw.
func (p *PowerOfTwo) rand64() uint64 {
	x := p.state.Add(0x9E3779B97F4A7C15)
	x ^= x >> 30
	x *= 0xBF58476D1CE4E5B9
	x ^= x >> 27
	x *= 0x94D049BB133111EB
	return x ^ (x >> 31)
}

// Route implements Policy.
func (p *PowerOfTwo) Route(t Task, views []*ShardView) int {
	n := uint64(len(views))
	if n == 1 {
		return 0
	}
	r := p.rand64()
	i := int(r % n)
	j := int((r >> 32) % (n - 1))
	if j >= i {
		j++ // distinct second choice, uniform over the rest
	}
	// A down shard loses to any live one; if both picks are down, fall back
	// to the first live shard so churn never routes into a dead end.
	if views[i].Down() || views[j].Down() {
		switch {
		case views[j].Down() && !views[i].Down():
			return i
		case views[i].Down() && !views[j].Down():
			return j
		default:
			for k := 0; k < int(n); k++ {
				if !views[k].Down() {
					return k
				}
			}
		}
	}
	if better(t, views, j, i) {
		return j
	}
	return i
}

// ClassHash partitions the task classes across the shards: every task of
// one class always routes to the same shard (splitmix64 of the class,
// seeded, modulo the shard count). This is the router tier's default —
// with task classes as partition keys, each backend's per-class EWMAs and
// queue state see a stable workload mix, and a sequential client's routing
// is a pure function of the task stream regardless of shard load. The
// policy is stateless, so concurrent routes share nothing.
type ClassHash struct {
	seed uint64
}

// NewClassHash returns a class-partitioning policy. Different seeds pick
// different (still deterministic) class→shard assignments.
func NewClassHash(seed int64) ClassHash { return ClassHash{seed: uint64(seed)} }

// Name implements Policy.
func (ClassHash) Name() string { return "hash" }

// Route implements Policy.
func (p ClassHash) Route(t Task, views []*ShardView) int {
	x := (uint64(t.Class)+p.seed+1)*0x9E3779B97F4A7C15 + 0x9E3779B97F4A7C15
	x ^= x >> 30
	x *= 0xBF58476D1CE4E5B9
	x ^= x >> 27
	x *= 0x94D049BB133111EB
	x ^= x >> 31
	n := uint64(len(views))
	home := int(x % n)
	// A class whose home shard is down spills to the next live shard so its
	// traffic sheds somewhere useful; the partition is restored the moment
	// the home shard comes back.
	for k := uint64(0); k < n; k++ {
		i := int((uint64(home) + k) % n)
		if !views[i].Down() {
			return i
		}
	}
	return home
}

// better reports whether shard a beats shard b for task t: higher
// robustness estimate for the class, then lighter queue, then lower index.
func better(t Task, views []*ShardView, a, b int) bool {
	ra, rb := views[a].ClassRobustness(t.Class), views[b].ClassRobustness(t.Class)
	if ra != rb {
		return ra > rb
	}
	ma, mb := views[a].QueueMass(), views[b].QueueMass()
	if ma != mb {
		return ma < mb
	}
	return a < b
}

// FromSpec resolves a routing-policy spec (see the package comment for the
// grammar). Mutable policies (round-robin cursor, p2c RNG) are constructed
// fresh per call, so two clusters never share routing state.
func FromSpec(s string) (Policy, error) {
	name, params, err := spec.Parse(s)
	if err != nil {
		return nil, err
	}
	var p Policy
	switch name {
	case "rr", "roundrobin", "round-robin":
		p = NewRoundRobin()
	case "mass", "leastmass", "least-queue-mass", "lqm":
		p = LeastMass{}
	case "p2c", "poweroftwo", "power-of-two":
		p = NewPowerOfTwo(params.Int64("seed", 1))
	case "hash", "class", "class-hash":
		p = NewClassHash(params.Int64("seed", 1))
	default:
		return nil, fmt.Errorf("router: unknown routing policy %q (known: %s)", name, strings.Join(Names(), ", "))
	}
	if err := params.Finish(); err != nil {
		return nil, err
	}
	return p, nil
}

// Names lists the canonical routing-policy names.
func Names() []string {
	out := []string{"rr", "mass", "p2c", "hash"}
	sort.Strings(out)
	return out
}

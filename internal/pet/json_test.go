package pet

import (
	"encoding/json"
	"strings"
	"testing"

	"github.com/hpcclab/taskdrop/internal/pmf"
	"github.com/hpcclab/taskdrop/internal/stats"
)

func TestMatrixJSONRoundTrip(t *testing.T) {
	orig := Build(VideoProfile(), 5, BuildOptions{SamplesPerCell: 200, BinsPerPMF: 20})
	data, err := json.Marshal(orig)
	if err != nil {
		t.Fatal(err)
	}
	back, err := UnmarshalMatrix(data)
	if err != nil {
		t.Fatal(err)
	}
	if back.NumTaskTypes() != orig.NumTaskTypes() || back.NumMachineTypes() != orig.NumMachineTypes() {
		t.Fatal("dimensions changed")
	}
	for i := 0; i < orig.NumTaskTypes(); i++ {
		for j := 0; j < orig.NumMachineTypes(); j++ {
			a := orig.ExecPMF(TaskType(i), MachineType(j))
			b := back.ExecPMF(TaskType(i), MachineType(j))
			if !a.Equal(b) {
				t.Fatalf("cell (%d,%d) not preserved exactly", i, j)
			}
			if orig.TrueDist(TaskType(i), MachineType(j)) != back.TrueDist(TaskType(i), MachineType(j)) {
				t.Fatalf("gamma dist (%d,%d) not preserved", i, j)
			}
		}
	}
	if orig.MeanAll() != back.MeanAll() {
		t.Fatalf("MeanAll %v != %v", orig.MeanAll(), back.MeanAll())
	}
	if len(back.Machines()) != len(orig.Machines()) {
		t.Fatal("machine list changed")
	}
}

func TestMatrixJSONRoundTripFromPMFs(t *testing.T) {
	// Matrices without Gamma ground truth round-trip too, and Draw keeps
	// sampling from the PMFs.
	src := Build(VideoProfile(), 6, BuildOptions{SamplesPerCell: 100, BinsPerPMF: 10})
	cells := make([][]pmf.PMF, src.NumTaskTypes())
	for i := range cells {
		cells[i] = make([]pmf.PMF, src.NumMachineTypes())
		for j := range cells[i] {
			cells[i][j] = src.ExecPMF(TaskType(i), MachineType(j))
		}
	}
	m := FromPMFs(src.Profile(), cells)
	data, err := json.Marshal(m)
	if err != nil {
		t.Fatal(err)
	}
	if strings.Contains(string(data), "gamma_dists") {
		t.Fatal("FromPMFs matrix should omit gamma_dists")
	}
	back, err := UnmarshalMatrix(data)
	if err != nil {
		t.Fatal(err)
	}
	rng := stats.NewRNG(1)
	if v := back.Draw(rng, 0, 0); v < 1 {
		t.Fatalf("draw from PMF-backed matrix = %d", v)
	}
}

func TestUnmarshalMatrixRejectsGarbage(t *testing.T) {
	cases := []string{
		`{`,
		`{"version":99,"profile":{},"cells":[]}`,
		`{"version":1,"profile":{},"cells":[]}`,
	}
	for i, c := range cases {
		if _, err := UnmarshalMatrix([]byte(c)); err == nil {
			t.Errorf("case %d accepted", i)
		}
	}
}

func TestUnmarshalMatrixRejectsShapeMismatch(t *testing.T) {
	m := Build(VideoProfile(), 7, BuildOptions{SamplesPerCell: 100, BinsPerPMF: 10})
	data, err := json.Marshal(m)
	if err != nil {
		t.Fatal(err)
	}
	// Drop one row of cells.
	var raw map[string]json.RawMessage
	if err := json.Unmarshal(data, &raw); err != nil {
		t.Fatal(err)
	}
	var cells []json.RawMessage
	if err := json.Unmarshal(raw["cells"], &cells); err != nil {
		t.Fatal(err)
	}
	trimmed, err := json.Marshal(cells[:len(cells)-1])
	if err != nil {
		t.Fatal(err)
	}
	raw["cells"] = trimmed
	mutated, err := json.Marshal(raw)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := UnmarshalMatrix(mutated); err == nil {
		t.Fatal("row mismatch accepted")
	}
}

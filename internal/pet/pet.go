// Package pet implements the Probabilistic Execution Time (PET) matrix of
// the paper: for every (task type, machine type) pair it stores a discrete
// PMF modelling the uncertain execution time, learned by sampling a Gamma
// law and histogramming the samples exactly as described in §V-A.
//
// The package also ships the three workload profiles used in the
// evaluation: a 12-task-type × 8-machine inconsistently heterogeneous
// system seeded from SPECint-like means, a 4-task-type × 4-VM-type video
// transcoding system, and a homogeneous 8-machine system.
package pet

import (
	"fmt"

	"github.com/hpcclab/taskdrop/internal/pmf"
	"github.com/hpcclab/taskdrop/internal/stats"
)

// TaskType indexes a task type (row of the PET matrix).
type TaskType int

// MachineType indexes a machine type (column of the PET matrix).
type MachineType int

// GammaDist is the ground-truth execution time law of one PET cell. The
// simulator draws realized execution times from it; the scheduler only ever
// sees the histogram PMF estimated from samples of it.
type GammaDist struct {
	Shape float64
	Scale float64
}

// Mean returns the expected value Shape·Scale.
func (g GammaDist) Mean() float64 { return g.Shape * g.Scale }

// MachineSpec is one physical machine of the system.
type MachineSpec struct {
	Index     int         // position in the flattened machine list
	Type      MachineType // column of the PET matrix
	Name      string      // display name, e.g. "GPU (g4dn)#0"
	PriceHour float64     // cost of one busy hour, USD
}

// Profile is the declarative description of an HC system: task and machine
// type names, the mean execution time (in ms) of every task type on every
// machine type, how many physical machines exist per type, and pricing.
type Profile struct {
	Name             string
	TaskTypeNames    []string
	MachineTypeNames []string
	// MeanMS[i][j] is the mean execution time of task type i on machine
	// type j, in milliseconds.
	MeanMS [][]float64
	// MachinesPerType[j] is the number of physical machines of type j.
	MachinesPerType []int
	// PriceHour[j] is the hourly price of a machine of type j, USD.
	PriceHour []float64
	// GammaScaleRange bounds the per-cell Gamma scale parameter θ, drawn
	// uniformly per cell at Build time (paper: U[1,20]).
	GammaScaleRange [2]float64
}

// Validate checks internal consistency of the profile.
func (p *Profile) Validate() error {
	nt, nm := len(p.TaskTypeNames), len(p.MachineTypeNames)
	if nt == 0 || nm == 0 {
		return fmt.Errorf("pet: profile %q has no task or machine types", p.Name)
	}
	if len(p.MeanMS) != nt {
		return fmt.Errorf("pet: profile %q MeanMS has %d rows, want %d", p.Name, len(p.MeanMS), nt)
	}
	for i, row := range p.MeanMS {
		if len(row) != nm {
			return fmt.Errorf("pet: profile %q MeanMS row %d has %d cols, want %d", p.Name, i, len(row), nm)
		}
		for j, v := range row {
			if v <= 0 {
				return fmt.Errorf("pet: profile %q MeanMS[%d][%d] = %v, want > 0", p.Name, i, j, v)
			}
		}
	}
	if len(p.MachinesPerType) != nm {
		return fmt.Errorf("pet: profile %q MachinesPerType has %d entries, want %d", p.Name, len(p.MachinesPerType), nm)
	}
	for j, n := range p.MachinesPerType {
		if n < 1 {
			return fmt.Errorf("pet: profile %q MachinesPerType[%d] = %d, want >= 1", p.Name, j, n)
		}
	}
	if len(p.PriceHour) != nm {
		return fmt.Errorf("pet: profile %q PriceHour has %d entries, want %d", p.Name, len(p.PriceHour), nm)
	}
	lo, hi := p.GammaScaleRange[0], p.GammaScaleRange[1]
	if lo <= 0 || hi < lo {
		return fmt.Errorf("pet: profile %q has invalid Gamma scale range [%v,%v]", p.Name, lo, hi)
	}
	return nil
}

// TotalMachines returns the number of physical machines across all types.
func (p *Profile) TotalMachines() int {
	n := 0
	for _, m := range p.MachinesPerType {
		n += m
	}
	return n
}

// BuildOptions tunes PET construction.
type BuildOptions struct {
	// SamplesPerCell is the number of Gamma samples histogrammed per PET
	// cell (paper: 500).
	SamplesPerCell int
	// BinsPerPMF bounds the impulse count of each execution-time PMF.
	BinsPerPMF int
}

// DefaultBuildOptions mirrors §V-A of the paper.
func DefaultBuildOptions() BuildOptions {
	return BuildOptions{SamplesPerCell: 500, BinsPerPMF: 25}
}

// Matrix is a built PET matrix: per-cell execution-time PMFs, their means,
// and the ground-truth Gamma laws the cells were sampled from.
type Matrix struct {
	profile  Profile
	dists    [][]GammaDist
	pmfs     [][]pmf.PMF
	cellMean [][]float64 // mean of the estimated PMF, ms
	typeMean []float64   // avg_i: mean over machine types, ms
	meanAll  float64     // avg_all: mean over all cells, ms
	machines []MachineSpec
}

// Build samples and histograms every PET cell. The seed makes the matrix
// fully reproducible; all randomness (scale draws and execution-time
// samples) derives from it. It panics on an invalid profile so that a
// malformed hard-coded profile fails loudly at startup.
func Build(p Profile, seed int64, opt BuildOptions) *Matrix {
	if err := p.Validate(); err != nil {
		panic(err)
	}
	if opt.SamplesPerCell <= 0 || opt.BinsPerPMF <= 0 {
		panic("pet: BuildOptions fields must be positive")
	}
	rng := stats.NewRNG(seed)
	nt, nm := len(p.TaskTypeNames), len(p.MachineTypeNames)
	m := &Matrix{
		profile:  p,
		dists:    make([][]GammaDist, nt),
		pmfs:     make([][]pmf.PMF, nt),
		cellMean: make([][]float64, nt),
		typeMean: make([]float64, nt),
	}
	var grand float64
	for i := 0; i < nt; i++ {
		m.dists[i] = make([]GammaDist, nm)
		m.pmfs[i] = make([]pmf.PMF, nm)
		m.cellMean[i] = make([]float64, nm)
		var rowSum float64
		for j := 0; j < nm; j++ {
			scale := rng.UniformRange(p.GammaScaleRange[0], p.GammaScaleRange[1])
			mean := p.MeanMS[i][j]
			d := GammaDist{Shape: mean / scale, Scale: scale}
			m.dists[i][j] = d
			samples := make([]pmf.Tick, opt.SamplesPerCell)
			for k := range samples {
				samples[k] = tickFromMS(rng.Gamma(d.Shape, d.Scale))
			}
			cell := pmf.FromSamples(samples, opt.BinsPerPMF)
			m.pmfs[i][j] = cell
			m.cellMean[i][j] = cell.Mean()
			rowSum += cell.Mean()
		}
		m.typeMean[i] = rowSum / float64(nm)
		grand += rowSum
	}
	m.meanAll = grand / float64(nt*nm)
	idx := 0
	for j := 0; j < nm; j++ {
		for k := 0; k < p.MachinesPerType[j]; k++ {
			m.machines = append(m.machines, MachineSpec{
				Index:     idx,
				Type:      MachineType(j),
				Name:      fmt.Sprintf("%s#%d", p.MachineTypeNames[j], k),
				PriceHour: p.PriceHour[j],
			})
			idx++
		}
	}
	return m
}

// tickFromMS rounds a millisecond duration to the tick grid, clamping to a
// minimum of one tick.
func tickFromMS(ms float64) pmf.Tick {
	t := pmf.Tick(ms + 0.5)
	if t < 1 {
		t = 1
	}
	return t
}

// Profile returns the profile the matrix was built from.
func (m *Matrix) Profile() Profile { return m.profile }

// NumTaskTypes returns the number of task types (PET rows).
func (m *Matrix) NumTaskTypes() int { return len(m.profile.TaskTypeNames) }

// NumMachineTypes returns the number of machine types (PET columns).
func (m *Matrix) NumMachineTypes() int { return len(m.profile.MachineTypeNames) }

// Machines returns the flattened physical machine list. The returned slice
// is shared and must not be modified.
func (m *Matrix) Machines() []MachineSpec { return m.machines }

// ExecPMF returns the estimated execution-time PMF of task type t on
// machine type mt. The PMF is shared; callers must not modify it.
func (m *Matrix) ExecPMF(t TaskType, mt MachineType) pmf.PMF { return m.pmfs[t][mt] }

// CellMean returns the mean (ms) of the estimated PMF for (t, mt).
func (m *Matrix) CellMean(t TaskType, mt MachineType) float64 { return m.cellMean[t][mt] }

// TypeMean returns avg_i of the deadline rule: the mean execution time of
// task type t across machine types, in ms.
func (m *Matrix) TypeMean(t TaskType) float64 { return m.typeMean[t] }

// MeanAll returns avg_all of the deadline rule: the grand mean execution
// time over all PET cells, in ms.
func (m *Matrix) MeanAll() float64 { return m.meanAll }

// TrueDist returns the ground-truth Gamma law of cell (t, mt). For
// matrices built with FromPMFs (no Gamma ground truth) it returns the zero
// GammaDist.
func (m *Matrix) TrueDist(t TaskType, mt MachineType) GammaDist {
	if m.dists == nil {
		return GammaDist{}
	}
	return m.dists[t][mt]
}

// Draw samples a realized execution time for task type t on machine type
// mt from the ground-truth law — the Gamma distribution for Build
// matrices, the cell PMF itself for FromPMFs matrices.
func (m *Matrix) Draw(rng *stats.RNG, t TaskType, mt MachineType) pmf.Tick {
	if m.dists == nil {
		return drawFromPMF(rng, m.pmfs[t][mt])
	}
	d := m.dists[t][mt]
	return tickFromMS(rng.Gamma(d.Shape, d.Scale))
}

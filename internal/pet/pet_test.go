package pet

import (
	"math"
	"strings"
	"testing"

	"github.com/hpcclab/taskdrop/internal/pmf"
	"github.com/hpcclab/taskdrop/internal/stats"
)

func buildSPEC(t testing.TB) *Matrix {
	t.Helper()
	return Build(SPECProfile(DefaultProfileSeed), DefaultProfileSeed, DefaultBuildOptions())
}

func TestSPECProfileShape(t *testing.T) {
	p := SPECProfile(1)
	if err := p.Validate(); err != nil {
		t.Fatal(err)
	}
	if got := len(p.TaskTypeNames); got != 12 {
		t.Fatalf("task types = %d, want 12", got)
	}
	if got := len(p.MachineTypeNames); got != 8 {
		t.Fatalf("machine types = %d, want 8", got)
	}
	if got := p.TotalMachines(); got != 8 {
		t.Fatalf("machines = %d, want 8", got)
	}
	// Means must stay within a plausible multiple of the paper's
	// 50–200 ms base range (factors are in [0.5, 2)).
	for i, row := range p.MeanMS {
		for j, v := range row {
			if v < 25 || v > 400 {
				t.Fatalf("MeanMS[%d][%d] = %v outside [25,400]", i, j, v)
			}
		}
	}
}

func TestSPECProfileIsInconsistent(t *testing.T) {
	p := SPECProfile(DefaultProfileSeed)
	// Inconsistent heterogeneity: there must exist task types i1, i2 and
	// machines j1, j2 with opposite speed orders.
	inconsistent := false
	nt, nm := len(p.TaskTypeNames), len(p.MachineTypeNames)
	for i1 := 0; i1 < nt && !inconsistent; i1++ {
		for i2 := i1 + 1; i2 < nt && !inconsistent; i2++ {
			for j1 := 0; j1 < nm && !inconsistent; j1++ {
				for j2 := j1 + 1; j2 < nm && !inconsistent; j2++ {
					a := p.MeanMS[i1][j1] < p.MeanMS[i1][j2]
					b := p.MeanMS[i2][j1] < p.MeanMS[i2][j2]
					if a != b {
						inconsistent = true
					}
				}
			}
		}
	}
	if !inconsistent {
		t.Fatal("SPEC profile is not inconsistently heterogeneous")
	}
}

func TestSPECProfileDeterministicInSeed(t *testing.T) {
	a, b := SPECProfile(7), SPECProfile(7)
	for i := range a.MeanMS {
		for j := range a.MeanMS[i] {
			if a.MeanMS[i][j] != b.MeanMS[i][j] {
				t.Fatal("same seed must produce identical profiles")
			}
		}
	}
	c := SPECProfile(8)
	same := true
	for i := range a.MeanMS {
		for j := range a.MeanMS[i] {
			if a.MeanMS[i][j] != c.MeanMS[i][j] {
				same = false
			}
		}
	}
	if same {
		t.Fatal("different seeds must produce different mean matrices")
	}
}

func TestVideoProfileShape(t *testing.T) {
	p := VideoProfile()
	if err := p.Validate(); err != nil {
		t.Fatal(err)
	}
	if len(p.TaskTypeNames) != 4 || len(p.MachineTypeNames) != 4 {
		t.Fatalf("video profile is %dx%d, want 4x4", len(p.TaskTypeNames), len(p.MachineTypeNames))
	}
	if p.TotalMachines() != 8 {
		t.Fatalf("machines = %d, want 8 (two per type)", p.TotalMachines())
	}
	// §V-H: execution time variation across task types is high — the most
	// expensive type must cost several times the cheapest on every machine
	// type.
	for j := range p.MachineTypeNames {
		lo, hi := math.Inf(1), 0.0
		for i := range p.TaskTypeNames {
			v := p.MeanMS[i][j]
			lo = math.Min(lo, v)
			hi = math.Max(hi, v)
		}
		if hi/lo < 2 {
			t.Fatalf("machine type %d: max/min mean = %.2f, want >= 2", j, hi/lo)
		}
	}
}

func TestHomogeneousProfileShape(t *testing.T) {
	p := HomogeneousProfile()
	if err := p.Validate(); err != nil {
		t.Fatal(err)
	}
	if len(p.MachineTypeNames) != 1 || p.TotalMachines() != 8 {
		t.Fatalf("homogeneous profile: %d types, %d machines", len(p.MachineTypeNames), p.TotalMachines())
	}
}

func TestProfileValidateCatchesErrors(t *testing.T) {
	base := VideoProfile()
	mut := func(f func(*Profile)) Profile {
		p := VideoProfile()
		f(&p)
		return p
	}
	bad := []Profile{
		mut(func(p *Profile) { p.TaskTypeNames = nil }),
		mut(func(p *Profile) { p.MeanMS = p.MeanMS[:2] }),
		mut(func(p *Profile) { p.MeanMS[1] = p.MeanMS[1][:1] }),
		mut(func(p *Profile) { p.MeanMS[0][0] = 0 }),
		mut(func(p *Profile) { p.MachinesPerType = []int{1} }),
		mut(func(p *Profile) { p.MachinesPerType[2] = 0 }),
		mut(func(p *Profile) { p.PriceHour = nil }),
		mut(func(p *Profile) { p.GammaScaleRange = [2]float64{0, 5} }),
		mut(func(p *Profile) { p.GammaScaleRange = [2]float64{5, 1} }),
	}
	if err := base.Validate(); err != nil {
		t.Fatalf("baseline should validate: %v", err)
	}
	for i, p := range bad {
		if err := p.Validate(); err == nil {
			t.Errorf("mutant %d passed validation", i)
		}
	}
}

func TestBuildProducesNormalizedPMFs(t *testing.T) {
	m := buildSPEC(t)
	for i := 0; i < m.NumTaskTypes(); i++ {
		for j := 0; j < m.NumMachineTypes(); j++ {
			cell := m.ExecPMF(TaskType(i), MachineType(j))
			if got := cell.TotalMass(); math.Abs(got-1) > 1e-9 {
				t.Fatalf("cell (%d,%d) mass = %v", i, j, got)
			}
			if cell.Len() > DefaultBuildOptions().BinsPerPMF {
				t.Fatalf("cell (%d,%d) has %d impulses > bins", i, j, cell.Len())
			}
			if cell.Min() < 1 {
				t.Fatalf("cell (%d,%d) min %d < 1 tick", i, j, cell.Min())
			}
		}
	}
}

func TestBuildMeansTrackProfile(t *testing.T) {
	m := buildSPEC(t)
	p := m.Profile()
	for i := 0; i < m.NumTaskTypes(); i++ {
		for j := 0; j < m.NumMachineTypes(); j++ {
			want := p.MeanMS[i][j]
			got := m.CellMean(TaskType(i), MachineType(j))
			// 500 Gamma samples with scale ≤ 20: sampling error is a few
			// ms; allow 15% + 5 ms.
			if math.Abs(got-want) > 0.15*want+5 {
				t.Fatalf("cell (%d,%d) mean %v, profile mean %v", i, j, got, want)
			}
		}
	}
}

func TestTypeMeanAndMeanAll(t *testing.T) {
	m := buildSPEC(t)
	var grand float64
	for i := 0; i < m.NumTaskTypes(); i++ {
		var row float64
		for j := 0; j < m.NumMachineTypes(); j++ {
			row += m.CellMean(TaskType(i), MachineType(j))
		}
		row /= float64(m.NumMachineTypes())
		if math.Abs(row-m.TypeMean(TaskType(i))) > 1e-9 {
			t.Fatalf("TypeMean(%d) = %v, recomputed %v", i, m.TypeMean(TaskType(i)), row)
		}
		grand += row
	}
	grand /= float64(m.NumTaskTypes())
	if math.Abs(grand-m.MeanAll()) > 1e-9 {
		t.Fatalf("MeanAll = %v, recomputed %v", m.MeanAll(), grand)
	}
}

func TestMachinesExpansion(t *testing.T) {
	m := Build(VideoProfile(), 3, DefaultBuildOptions())
	specs := m.Machines()
	if len(specs) != 8 {
		t.Fatalf("machines = %d, want 8", len(specs))
	}
	perType := map[MachineType]int{}
	for i, s := range specs {
		if s.Index != i {
			t.Fatalf("machine %d has Index %d", i, s.Index)
		}
		perType[s.Type]++
		if s.PriceHour <= 0 {
			t.Fatalf("machine %d has no price", i)
		}
		if !strings.Contains(s.Name, "#") {
			t.Fatalf("machine name %q lacks replica suffix", s.Name)
		}
	}
	for mt, n := range perType {
		if n != 2 {
			t.Fatalf("machine type %d has %d replicas, want 2", mt, n)
		}
	}
}

func TestDrawMatchesDistribution(t *testing.T) {
	m := buildSPEC(t)
	rng := stats.NewRNG(17)
	d := m.TrueDist(0, 0)
	const n = 50_000
	var sum float64
	for i := 0; i < n; i++ {
		v := m.Draw(rng, 0, 0)
		if v < 1 {
			t.Fatalf("draw %d < 1 tick", v)
		}
		sum += float64(v)
	}
	mean := sum / n
	if math.Abs(mean-d.Mean()) > 0.05*d.Mean()+1 {
		t.Fatalf("draw mean = %v, distribution mean %v", mean, d.Mean())
	}
}

func TestBuildDeterminism(t *testing.T) {
	a := Build(SPECProfile(1), 5, DefaultBuildOptions())
	b := Build(SPECProfile(1), 5, DefaultBuildOptions())
	for i := 0; i < a.NumTaskTypes(); i++ {
		for j := 0; j < a.NumMachineTypes(); j++ {
			pa := a.ExecPMF(TaskType(i), MachineType(j))
			pb := b.ExecPMF(TaskType(i), MachineType(j))
			if !pa.Equal(pb) {
				t.Fatalf("cell (%d,%d) differs across identical builds", i, j)
			}
		}
	}
}

func TestProfileByName(t *testing.T) {
	for _, name := range []string{"spec", "SPECint", "video", "transcoding", "homog", "HOMOGENEOUS"} {
		if _, err := ProfileByName(name); err != nil {
			t.Errorf("ProfileByName(%q): %v", name, err)
		}
	}
	if _, err := ProfileByName("nope"); err == nil {
		t.Error("unknown profile should error")
	}
	if len(ProfileNames()) != 3 {
		t.Errorf("ProfileNames = %v", ProfileNames())
	}
}

func TestBuildPanicsOnBadOptions(t *testing.T) {
	for _, opt := range []BuildOptions{{0, 10}, {10, 0}} {
		func() {
			defer func() {
				if recover() == nil {
					t.Fatalf("Build with %+v should panic", opt)
				}
			}()
			Build(VideoProfile(), 1, opt)
		}()
	}
}

var sinkPMF pmf.PMF

func BenchmarkBuildSPEC(b *testing.B) {
	p := SPECProfile(DefaultProfileSeed)
	opt := DefaultBuildOptions()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		m := Build(p, 1, opt)
		sinkPMF = m.ExecPMF(0, 0)
	}
}

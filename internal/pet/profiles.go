package pet

import "github.com/hpcclab/taskdrop/internal/stats"

// The eight machines of the paper's SPECint scenario (§V-A, footnote 1).
var specMachineNames = []string{
	"Dell Precision 380 (Pentium EE 3GHz)",
	"Apple iMac (Core Duo 2GHz)",
	"Apple XServe (Core Duo 2GHz)",
	"IBM System X 3455 (Opteron 2347)",
	"Shuttle SN25P (Athlon 64 FX-60)",
	"IBM System P 570 (4.7GHz)",
	"SunFire 3800",
	"IBM BladeCenter HS21XM",
}

// Representative hourly prices mapped onto the eight machines (§V-G maps
// Amazon cloud pricing onto the simulated machines; the absolute values
// only matter relative to one another).
var specPriceHour = []float64{0.133, 0.096, 0.102, 0.170, 0.154, 0.560, 0.480, 0.266}

// Twelve SPECint 2006 benchmark names used as task types.
var specTaskNames = []string{
	"400.perlbench", "401.bzip2", "403.gcc", "429.mcf",
	"445.gobmk", "456.hmmer", "458.sjeng", "462.libquantum",
	"464.h264ref", "471.omnetpp", "473.astar", "483.xalancbmk",
}

// Base mean execution times (ms) per task type, inside the paper's
// 50–200 ms range (§V-A).
var specBaseMeanMS = []float64{
	55, 70, 95, 180, 85, 120, 75, 60, 150, 135, 110, 165,
}

// SPECProfile returns the paper's primary evaluation system: twelve
// SPECint-like task types on eight inconsistently heterogeneous machines
// (one physical machine per type).
//
// The paper derives per-cell means from measured SPECint runs; those
// measurements are not public, so we synthesize an inconsistent mean matrix
// deterministically: cell mean = base type mean × a speed factor drawn
// uniformly from [0.5, 2.0) with the given seed. Independent per-cell
// factors make the system inconsistent by construction (machine A can be
// faster than B for one type and slower for another), which is the only
// property of the measurements the mechanism depends on.
func SPECProfile(seed int64) Profile {
	rng := stats.NewRNG(seed)
	nt, nm := len(specTaskNames), len(specMachineNames)
	means := make([][]float64, nt)
	for i := 0; i < nt; i++ {
		means[i] = make([]float64, nm)
		for j := 0; j < nm; j++ {
			means[i][j] = specBaseMeanMS[i] * rng.UniformRange(0.5, 2.0)
		}
	}
	ones := make([]int, nm)
	for j := range ones {
		ones[j] = 1
	}
	return Profile{
		Name:             "specint-hc",
		TaskTypeNames:    specTaskNames,
		MachineTypeNames: specMachineNames,
		MeanMS:           means,
		MachinesPerType:  ones,
		PriceHour:        specPriceHour,
		GammaScaleRange:  [2]float64{1, 20},
	}
}

// VideoProfile returns the validation scenario of §V-H: four video
// transcoding task types on four heterogeneous AWS VM types, two machines
// per type. Execution-time variation across task types is high (codec
// changes cost several times more than bitrate tweaks across all machine
// types), matching the description of the trace.
func VideoProfile() Profile {
	return Profile{
		Name: "video-transcoding",
		TaskTypeNames: []string{
			"reduce-resolution", "adjust-bitrate", "change-codec", "change-framerate",
		},
		MachineTypeNames: []string{
			"CPU-Optimized (c5.xlarge)", "Memory-Optimized (r5.xlarge)",
			"GPU (g4dn.xlarge)", "General (m5.xlarge)",
		},
		MeanMS: [][]float64{
			// c5, r5, g4dn, m5
			{60, 90, 25, 75},    // reduce-resolution
			{45, 55, 35, 50},    // adjust-bitrate
			{220, 260, 70, 240}, // change-codec
			{180, 150, 60, 200}, // change-framerate (r5 beats c5: inconsistent)
		},
		MachinesPerType: []int{2, 2, 2, 2},
		PriceHour:       []float64{0.17, 0.252, 0.526, 0.192},
		GammaScaleRange: [2]float64{1, 20},
	}
}

// HomogeneousProfile returns the homogeneous control system of §V-E
// (Fig. 7b): the same twelve task types, one machine type, eight identical
// machines. Task execution times still vary across types and are still
// uncertain; only the machine dimension is uniform.
func HomogeneousProfile() Profile {
	nt := len(specTaskNames)
	means := make([][]float64, nt)
	for i := 0; i < nt; i++ {
		means[i] = []float64{specBaseMeanMS[i]}
	}
	return Profile{
		Name:             "homogeneous",
		TaskTypeNames:    specTaskNames,
		MachineTypeNames: []string{"commodity-node"},
		MeanMS:           means,
		MachinesPerType:  []int{8},
		PriceHour:        []float64{0.20},
		GammaScaleRange:  [2]float64{1, 20},
	}
}

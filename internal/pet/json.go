package pet

import (
	"encoding/json"
	"fmt"

	"github.com/hpcclab/taskdrop/internal/pmf"
)

// JSON serialization of PET matrices. In a deployed system the PET is
// learned offline from execution logs ("execution time PMF of task type i
// on machine type j can be learned and estimated from the historic
// execution time information", §III) and shipped to the scheduler; these
// helpers are that interchange format. Round-tripping preserves the PMFs
// exactly (probabilities as float64 bits) and the Gamma ground truth when
// present.

// matrixJSON is the wire form of a Matrix.
type matrixJSON struct {
	Profile Profile       `json:"profile"`
	Cells   [][]cellJSON  `json:"cells"`
	Dists   [][]GammaDist `json:"gamma_dists,omitempty"`
	Version int           `json:"version"`
}

// cellJSON is one execution-time PMF as parallel tick/mass arrays.
type cellJSON struct {
	Ticks  []pmf.Tick `json:"t"`
	Masses []float64  `json:"p"`
}

const matrixJSONVersion = 1

// MarshalJSON implements json.Marshaler.
func (m *Matrix) MarshalJSON() ([]byte, error) {
	nt, nm := m.NumTaskTypes(), m.NumMachineTypes()
	out := matrixJSON{Profile: m.profile, Version: matrixJSONVersion}
	out.Cells = make([][]cellJSON, nt)
	for i := 0; i < nt; i++ {
		out.Cells[i] = make([]cellJSON, nm)
		for j := 0; j < nm; j++ {
			imps := m.pmfs[i][j].Impulses()
			c := cellJSON{
				Ticks:  make([]pmf.Tick, len(imps)),
				Masses: make([]float64, len(imps)),
			}
			for k, im := range imps {
				c.Ticks[k] = im.T
				c.Masses[k] = im.P
			}
			out.Cells[i][j] = c
		}
	}
	out.Dists = m.dists
	return json.Marshal(out)
}

// UnmarshalMatrix decodes a matrix produced by MarshalJSON.
func UnmarshalMatrix(data []byte) (*Matrix, error) {
	var in matrixJSON
	if err := json.Unmarshal(data, &in); err != nil {
		return nil, fmt.Errorf("pet: decoding matrix: %w", err)
	}
	if in.Version != matrixJSONVersion {
		return nil, fmt.Errorf("pet: unsupported matrix version %d", in.Version)
	}
	if err := in.Profile.Validate(); err != nil {
		return nil, err
	}
	nt, nm := len(in.Profile.TaskTypeNames), len(in.Profile.MachineTypeNames)
	if len(in.Cells) != nt {
		return nil, fmt.Errorf("pet: matrix has %d rows, profile declares %d", len(in.Cells), nt)
	}
	cells := make([][]pmf.PMF, nt)
	for i := range in.Cells {
		if len(in.Cells[i]) != nm {
			return nil, fmt.Errorf("pet: row %d has %d cols, profile declares %d", i, len(in.Cells[i]), nm)
		}
		cells[i] = make([]pmf.PMF, nm)
		for j, c := range in.Cells[i] {
			if len(c.Ticks) != len(c.Masses) {
				return nil, fmt.Errorf("pet: cell (%d,%d) has %d ticks but %d masses", i, j, len(c.Ticks), len(c.Masses))
			}
			if len(c.Ticks) == 0 {
				return nil, fmt.Errorf("pet: cell (%d,%d) is empty", i, j)
			}
			imps := make([]pmf.Impulse, len(c.Ticks))
			for k := range c.Ticks {
				imps[k] = pmf.Impulse{T: c.Ticks[k], P: c.Masses[k]}
			}
			cells[i][j] = pmf.FromImpulses(imps)
		}
	}
	m := FromPMFs(in.Profile, cells)
	if in.Dists != nil {
		if len(in.Dists) != nt {
			return nil, fmt.Errorf("pet: gamma dists have %d rows, want %d", len(in.Dists), nt)
		}
		for i := range in.Dists {
			if len(in.Dists[i]) != nm {
				return nil, fmt.Errorf("pet: gamma dists row %d has %d cols, want %d", i, len(in.Dists[i]), nm)
			}
		}
		m.dists = in.Dists
	}
	return m, nil
}

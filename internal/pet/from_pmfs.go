package pet

import (
	"fmt"
	"math"

	"github.com/hpcclab/taskdrop/internal/pmf"
	"github.com/hpcclab/taskdrop/internal/stats"
)

// FromPMFs builds a PET matrix directly from measured (or hand-crafted)
// execution-time PMFs instead of sampling Gamma laws — the deployment path
// for systems that log real execution histograms, and the precision path
// for tests. cells[i][j] is the execution-time PMF of task type i on
// machine type j; every cell must be a normalized, non-empty PMF.
//
// Draw samples realized execution times from the cell PMF itself by
// inverse-CDF lookup.
func FromPMFs(p Profile, cells [][]pmf.PMF) *Matrix {
	if err := p.Validate(); err != nil {
		panic(err)
	}
	nt, nm := len(p.TaskTypeNames), len(p.MachineTypeNames)
	if len(cells) != nt {
		panic(fmt.Sprintf("pet: FromPMFs got %d rows, want %d", len(cells), nt))
	}
	m := &Matrix{
		profile:  p,
		pmfs:     make([][]pmf.PMF, nt),
		cellMean: make([][]float64, nt),
		typeMean: make([]float64, nt),
	}
	var grand float64
	for i := 0; i < nt; i++ {
		if len(cells[i]) != nm {
			panic(fmt.Sprintf("pet: FromPMFs row %d has %d cols, want %d", i, len(cells[i]), nm))
		}
		m.pmfs[i] = make([]pmf.PMF, nm)
		m.cellMean[i] = make([]float64, nm)
		var rowSum float64
		for j := 0; j < nm; j++ {
			cell := cells[i][j]
			if cell.IsZero() {
				panic(fmt.Sprintf("pet: FromPMFs cell (%d,%d) is empty", i, j))
			}
			if mass := cell.TotalMass(); math.Abs(mass-1) > 1e-6 {
				panic(fmt.Sprintf("pet: FromPMFs cell (%d,%d) mass %v, want 1", i, j, mass))
			}
			m.pmfs[i][j] = cell
			m.cellMean[i][j] = cell.Mean()
			rowSum += cell.Mean()
		}
		m.typeMean[i] = rowSum / float64(nm)
		grand += rowSum
	}
	m.meanAll = grand / float64(nt*nm)
	idx := 0
	for j := 0; j < nm; j++ {
		for k := 0; k < p.MachinesPerType[j]; k++ {
			m.machines = append(m.machines, MachineSpec{
				Index:     idx,
				Type:      MachineType(j),
				Name:      fmt.Sprintf("%s#%d", p.MachineTypeNames[j], k),
				PriceHour: p.PriceHour[j],
			})
			idx++
		}
	}
	return m
}

// drawFromPMF samples a tick from a normalized PMF by inverse CDF.
func drawFromPMF(rng *stats.RNG, p pmf.PMF) pmf.Tick {
	u := rng.Float64()
	cum := 0.0
	imps := p.Impulses()
	for _, im := range imps {
		cum += im.P
		if u < cum {
			return im.T
		}
	}
	return imps[len(imps)-1].T
}

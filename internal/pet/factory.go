package pet

import (
	"fmt"

	"github.com/hpcclab/taskdrop/internal/spec"
)

// DefaultProfileSeed seeds the synthesized parts of the named profiles so
// that "the SPEC system" denotes one reproducible machine/task mix
// everywhere (CLIs, benches, tests).
const DefaultProfileSeed = 42

// ProfileFromSpec constructs a named evaluation profile from a
// parameterized spec string (see package spec for the grammar):
//
//	spec:seed=<int64>   (aliases: specint, hc)
//	video               (alias: transcoding)
//	homog               (aliases: homogeneous, homo)
//
// The seed parameter re-synthesizes the SPEC profile's randomized machine
// mix; the video and homogeneous profiles are fully determined and take no
// parameters.
func ProfileFromSpec(s string) (Profile, error) {
	name, params, err := spec.Parse(s)
	if err != nil {
		return Profile{}, err
	}
	var p Profile
	switch name {
	case "spec", "specint", "hc":
		p = SPECProfile(params.Int64("seed", DefaultProfileSeed))
	case "video", "transcoding":
		p = VideoProfile()
	case "homog", "homogeneous", "homo":
		p = HomogeneousProfile()
	default:
		return Profile{}, fmt.Errorf("pet: unknown profile %q", s)
	}
	if err := params.Finish(); err != nil {
		return Profile{}, err
	}
	return p, nil
}

// ProfileByName returns a named evaluation profile; it is the same
// resolution path as ProfileFromSpec.
func ProfileByName(name string) (Profile, error) { return ProfileFromSpec(name) }

// ProfileNames lists the constructible profile names.
func ProfileNames() []string { return []string{"spec", "video", "homog"} }

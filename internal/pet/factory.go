package pet

import (
	"fmt"
	"strings"
	"sync"

	"github.com/hpcclab/taskdrop/internal/spec"
)

// DefaultProfileSeed seeds the synthesized parts of the named profiles so
// that "the SPEC system" denotes one reproducible machine/task mix
// everywhere (CLIs, benches, tests).
const DefaultProfileSeed = 42

// ProfileFromSpec constructs a named evaluation profile from a
// parameterized spec string (see package spec for the grammar):
//
//	spec:seed=<int64>   (aliases: specint, hc)
//	video               (alias: transcoding)
//	homog               (aliases: homogeneous, homo)
//
// The seed parameter re-synthesizes the SPEC profile's randomized machine
// mix; the video and homogeneous profiles are fully determined and take no
// parameters.
func ProfileFromSpec(s string) (Profile, error) {
	name, params, err := spec.Parse(s)
	if err != nil {
		return Profile{}, err
	}
	var p Profile
	switch name {
	case "spec", "specint", "hc":
		p = SPECProfile(params.Int64("seed", DefaultProfileSeed))
	case "video", "transcoding":
		p = VideoProfile()
	case "homog", "homogeneous", "homo":
		p = HomogeneousProfile()
	default:
		return Profile{}, fmt.Errorf("pet: unknown profile %q", s)
	}
	if err := params.Finish(); err != nil {
		return Profile{}, err
	}
	return p, nil
}

// ProfileByName returns a named evaluation profile; it is the same
// resolution path as ProfileFromSpec.
func ProfileByName(name string) (Profile, error) { return ProfileFromSpec(name) }

// ProfileNames lists the constructible profile names.
func ProfileNames() []string { return []string{"spec", "video", "homog"} }

// matrixCache shares built PET matrices across every consumer that names a
// system by profile spec (the Scenario API, the admission service, the
// load generator), keyed by the normalized spec. A profile spec fully
// determines its matrix — the build seed is the fixed DefaultProfileSeed —
// so the cache is semantically transparent; it spares repeated PMF
// synthesis, and guarantees a server and a client resolving the same spec
// in different processes still agree bit-for-bit (Build is deterministic).
// Matrices are read-only after Build, so sharing across engines is safe.
var matrixCache sync.Map // normalized profile spec -> *Matrix

// CachedMatrix resolves a profile spec and returns its built PET matrix,
// building at most once per spec per process. Safe for concurrent use.
func CachedMatrix(profileSpec string) (*Matrix, error) {
	key := strings.ToLower(strings.TrimSpace(profileSpec))
	if m, ok := matrixCache.Load(key); ok {
		return m.(*Matrix), nil
	}
	p, err := ProfileFromSpec(profileSpec)
	if err != nil {
		return nil, err
	}
	m := Build(p, DefaultProfileSeed, DefaultBuildOptions())
	// Two racing builders produce identical matrices; keep the first stored
	// so every caller shares one instance.
	actual, _ := matrixCache.LoadOrStore(key, m)
	return actual.(*Matrix), nil
}

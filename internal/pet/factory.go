package pet

import (
	"fmt"
	"strings"
)

// DefaultProfileSeed seeds the synthesized parts of the named profiles so
// that "the SPEC system" denotes one reproducible machine/task mix
// everywhere (CLIs, benches, tests).
const DefaultProfileSeed = 42

// ProfileByName returns a named evaluation profile: "spec" (aliases
// "specint", "hc"), "video" (alias "transcoding"), or "homog" (aliases
// "homogeneous", "homo").
func ProfileByName(name string) (Profile, error) {
	switch strings.ToLower(name) {
	case "spec", "specint", "hc":
		return SPECProfile(DefaultProfileSeed), nil
	case "video", "transcoding":
		return VideoProfile(), nil
	case "homog", "homogeneous", "homo":
		return HomogeneousProfile(), nil
	default:
		return Profile{}, fmt.Errorf("pet: unknown profile %q", name)
	}
}

// ProfileNames lists the constructible profile names.
func ProfileNames() []string { return []string{"spec", "video", "homog"} }

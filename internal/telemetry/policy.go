package telemetry

import (
	"time"

	"github.com/hpcclab/taskdrop/internal/core"
)

// TimedPolicy wraps a dropping policy to attribute its verdict time to
// the dropper span of the shard's in-flight trace. It is a pure
// pass-through — the verdict, and therefore every decision, is identical
// with or without it — and it reads the recorder's loop-owned active
// field, so it must run on the shard's decision loop (which the engine
// guarantees: the dropper is only invoked from Feed/Drain).
//
// One admission triggers one Decide per machine per mapping event; Extend
// accumulates them into a single [first start, last end] span nested
// inside the calculus stage.
type TimedPolicy struct {
	Inner core.Policy
	Rec   *ShardRecorder
}

// Name returns the wrapped policy's name (registry specs, manifests and
// audit output must see the real policy).
func (p TimedPolicy) Name() string { return p.Inner.Name() }

// Decide delegates to the wrapped policy, timing the call when a trace is
// in flight.
func (p TimedPolicy) Decide(ctx *core.Context) []int {
	a := p.Rec.active
	if a == nil {
		return p.Inner.Decide(ctx)
	}
	start := time.Now()
	out := p.Inner.Decide(ctx)
	a.Extend(StageDropper, start, time.Now())
	return out
}

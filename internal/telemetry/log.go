package telemetry

import (
	"fmt"
	"io"
	"log/slog"
	"strings"
)

// NewLogger builds the structured logger the CLIs share: format is "text"
// (the default, human-first key=value lines) or "json" (one object per
// line, for log shippers); level is "debug", "info" (default), "warn" or
// "error". Components attach their identifying attributes (shard,
// decision seq, journal dir) at the call site.
func NewLogger(w io.Writer, format, level string) (*slog.Logger, error) {
	var lv slog.Level
	switch strings.ToLower(level) {
	case "", "info":
		lv = slog.LevelInfo
	case "debug":
		lv = slog.LevelDebug
	case "warn", "warning":
		lv = slog.LevelWarn
	case "error":
		lv = slog.LevelError
	default:
		return nil, fmt.Errorf("telemetry: unknown log level %q (want debug|info|warn|error)", level)
	}
	opts := &slog.HandlerOptions{Level: lv}
	switch strings.ToLower(format) {
	case "", "text":
		return slog.New(slog.NewTextHandler(w, opts)), nil
	case "json":
		return slog.New(slog.NewJSONHandler(w, opts)), nil
	default:
		return nil, fmt.Errorf("telemetry: unknown log format %q (want text|json)", format)
	}
}

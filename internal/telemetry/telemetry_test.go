package telemetry

import (
	"encoding/json"
	"strings"
	"testing"
	"time"
)

func TestStageNamesRoundTrip(t *testing.T) {
	for st := Stage(0); st < NumStages; st++ {
		name := st.String()
		if name == "" || strings.HasPrefix(name, "stage") {
			t.Fatalf("stage %d has no wire name", st)
		}
		back, ok := StageFromString(name)
		if !ok || back != st {
			t.Fatalf("StageFromString(%q) = %v, %v; want %v", name, back, ok, st)
		}
	}
	if _, ok := StageFromString("nope"); ok {
		t.Fatal("unknown stage name resolved")
	}
	if got := Stage(250).String(); got != "stage250" {
		t.Fatalf("out-of-range stage name = %q", got)
	}
}

func TestActiveMarkAndExtend(t *testing.T) {
	origin := time.Now()
	a := &Active{seq: 7, origin: origin}
	a.Mark(StageCalculus, origin.Add(10*time.Microsecond), origin.Add(30*time.Microsecond))
	// Extend on an unmarked stage behaves like Mark.
	a.Extend(StageJournal, origin.Add(40*time.Microsecond), origin.Add(50*time.Microsecond))
	// Extend widens in both directions but never shrinks.
	a.Extend(StageJournal, origin.Add(35*time.Microsecond), origin.Add(45*time.Microsecond))
	a.Extend(StageJournal, origin.Add(42*time.Microsecond), origin.Add(60*time.Microsecond))

	tel := New(1, 1, 4)
	tr := tel.Shard(0).Finish(a, 0, "map")
	if tr.Seq != 7 || len(tr.Spans) != 2 {
		t.Fatalf("trace = %+v", tr)
	}
	if tr.Spans[0].Stage != StageCalculus || tr.Spans[0].Duration() != 20*time.Microsecond {
		t.Fatalf("calculus span = %+v", tr.Spans[0])
	}
	j := tr.Spans[1]
	if j.Stage != StageJournal || j.StartNS != int64(35*time.Microsecond) || j.EndNS != int64(60*time.Microsecond) {
		t.Fatalf("journal span = %+v, want [35µs, 60µs]", j)
	}
	if tr.Duration() != 60*time.Microsecond {
		t.Fatalf("trace duration = %v", tr.Duration())
	}
	if got := tel.Sampled(); got != 1 {
		t.Fatalf("sampled = %d", got)
	}
}

func TestSamplerSelectsBySequence(t *testing.T) {
	tel := New(2, 4, 8)
	origin := time.Now()
	var hits []int64
	for seq := int64(0); seq < 12; seq++ {
		if a := tel.Begin(seq, origin); a != nil {
			hits = append(hits, seq)
			if a.Seq() != seq || !a.Origin().Equal(origin) {
				t.Fatalf("active = seq %d origin %v", a.Seq(), a.Origin())
			}
		}
	}
	want := []int64{0, 4, 8}
	if len(hits) != len(want) {
		t.Fatalf("sampled %v, want %v", hits, want)
	}
	for i := range want {
		if hits[i] != want[i] {
			t.Fatalf("sampled %v, want %v", hits, want)
		}
	}

	off := New(1, 0, 8)
	if off.Enabled() {
		t.Fatal("sampleEvery=0 reports enabled")
	}
	if a := off.Begin(0, origin); a != nil {
		t.Fatal("disabled tracer sampled seq 0")
	}
}

func TestRingWrapKeepsNewest(t *testing.T) {
	tel := New(1, 1, 4)
	rec := tel.Shard(0)
	origin := time.Now()
	for seq := int64(0); seq < 10; seq++ {
		a := &Active{seq: seq, origin: origin}
		a.Mark(StageAck, origin, origin.Add(time.Microsecond))
		rec.Finish(a, 0, "map")
	}
	traces := tel.Traces()
	if len(traces) != 4 {
		t.Fatalf("retained %d traces, want ring size 4", len(traces))
	}
	// Newest first, and only the last 4 sequences survive the wrap.
	for i, tr := range traces {
		if want := int64(9 - i); tr.Seq != want {
			t.Fatalf("traces[%d].Seq = %d, want %d", i, tr.Seq, want)
		}
	}
}

func TestSpanJSONRoundTrip(t *testing.T) {
	in := Span{Stage: StageDropper, StartNS: 1500, EndNS: 2500}
	blob, err := json.Marshal(in)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(string(blob), `"stage":"dropper"`) {
		t.Fatalf("span JSON = %s", blob)
	}
	var out Span
	if err := json.Unmarshal(blob, &out); err != nil {
		t.Fatal(err)
	}
	if out != in {
		t.Fatalf("round trip = %+v, want %+v", out, in)
	}
	if err := json.Unmarshal([]byte(`{"stage":"bogus","start_ns":0,"end_ns":0}`), &out); err == nil {
		t.Fatal("unknown stage unmarshalled")
	}
}

// TestWritePrometheusLintsClean feeds a populated tracer and the runtime
// collector through the package's own linter: the exposition this package
// emits must satisfy the grammar this package enforces.
func TestWritePrometheusLintsClean(t *testing.T) {
	tel := New(2, 1, 8)
	origin := time.Now()
	for seq := int64(0); seq < 6; seq++ {
		a := tel.Begin(seq, origin)
		a.Mark(StageRoute, origin, origin.Add(2*time.Microsecond))
		a.Mark(StageCalculus, origin.Add(2*time.Microsecond), origin.Add(40*time.Microsecond))
		a.Mark(StageAck, origin.Add(40*time.Microsecond), origin.Add(41*time.Microsecond))
		tel.Shard(int(seq)%2).Finish(a, int(seq)%2, "map")
	}
	var sb strings.Builder
	tel.WritePrometheus(&sb)
	if issues := Lint(strings.NewReader(sb.String())); len(issues) > 0 {
		t.Fatalf("tracer exposition fails lint:\n%s\nexposition:\n%s", strings.Join(issues, "\n"), sb.String())
	}

	sb.Reset()
	WriteRuntimeMetrics(&sb)
	if issues := Lint(strings.NewReader(sb.String())); len(issues) > 0 {
		t.Fatalf("runtime exposition fails lint:\n%s\nexposition:\n%s", strings.Join(issues, "\n"), sb.String())
	}
	if !strings.Contains(sb.String(), "taskdrop_go_goroutines") {
		t.Fatalf("runtime exposition missing goroutine gauge:\n%s", sb.String())
	}
}

func TestNewLogger(t *testing.T) {
	var sb strings.Builder
	lg, err := NewLogger(&sb, "json", "warn")
	if err != nil {
		t.Fatal(err)
	}
	lg.Info("dropped")
	lg.Warn("kept", "shard", 3)
	out := sb.String()
	if strings.Contains(out, "dropped") {
		t.Fatalf("info leaked through warn level: %s", out)
	}
	var rec map[string]any
	if err := json.Unmarshal([]byte(out), &rec); err != nil {
		t.Fatalf("not JSON: %s", out)
	}
	if rec["msg"] != "kept" || rec["shard"] != float64(3) {
		t.Fatalf("record = %v", rec)
	}
	if _, err := NewLogger(&sb, "yaml", "info"); err == nil {
		t.Fatal("unknown format accepted")
	}
	if _, err := NewLogger(&sb, "text", "verbose"); err == nil {
		t.Fatal("unknown level accepted")
	}
}

package telemetry

import (
	"bufio"
	"fmt"
	"io"
	"math"
	"sort"
	"strconv"
	"strings"
)

// Lint checks a Prometheus text-format (version 0.0.4) exposition against
// the grammar and the conventions this service commits to:
//
//   - every sampled family declares # HELP (non-empty) and # TYPE before
//     its first sample, TYPE naming a known type;
//   - metric and label names match the Prometheus charset, label values
//     are properly quoted, sample values parse as floats;
//   - a family's lines are contiguous (no interleaving) and no series
//     (name + label set) appears twice;
//   - histograms are well-formed per label set: a "+Inf" bucket exists,
//     bucket counts are cumulative (non-decreasing by le), _count equals
//     the "+Inf" bucket, and _sum/_count accompany the buckets;
//   - counter samples are non-negative.
//
// It returns one human-readable issue per violation (empty = clean). It
// is intentionally a linter, not a parser-library dependency: the repo's
// exposition is hand-rolled, so the grammar check must not share code
// with the code under test.
func Lint(r io.Reader) []string {
	l := &linter{
		types: make(map[string]string),
		helps: make(map[string]bool),
		done:  make(map[string]bool),
		seen:  make(map[string]bool),
		hists: make(map[string]map[string]*histAgg),
	}
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	n := 0
	for sc.Scan() {
		n++
		l.line(n, sc.Text())
	}
	if err := sc.Err(); err != nil {
		l.issuef(n, "read: %v", err)
	}
	l.finish()
	return l.issues
}

type bucketSample struct {
	le float64
	v  float64
}

// histAgg accumulates one histogram series (family + label signature
// without le) for the end-of-exposition consistency checks.
type histAgg struct {
	line     int
	buckets  []bucketSample
	sum      float64
	count    float64
	hasSum   bool
	hasCount bool
}

type linter struct {
	issues []string
	types  map[string]string // family -> declared type
	helps  map[string]bool   // family -> HELP seen
	done   map[string]bool   // family blocks already closed
	seen   map[string]bool   // full series (name+labels) seen
	hists  map[string]map[string]*histAgg
	cur    string // family of the current contiguous block
}

func (l *linter) issuef(line int, format string, args ...any) {
	l.issues = append(l.issues, fmt.Sprintf("line %d: %s", line, fmt.Sprintf(format, args...)))
}

func (l *linter) line(n int, s string) {
	if strings.TrimSpace(s) == "" {
		return
	}
	if strings.HasPrefix(s, "#") {
		l.comment(n, s)
		return
	}
	l.sample(n, s)
}

func (l *linter) comment(n int, s string) {
	fields := strings.SplitN(s, " ", 4)
	if len(fields) < 2 {
		return // a bare comment is legal
	}
	switch fields[1] {
	case "HELP":
		if len(fields) < 3 || !validMetricName(fields[2]) {
			l.issuef(n, "malformed HELP line: %q", s)
			return
		}
		name := fields[2]
		if len(fields) < 4 || strings.TrimSpace(fields[3]) == "" {
			l.issuef(n, "HELP for %s has an empty docstring", name)
		}
		if l.helps[name] {
			l.issuef(n, "duplicate HELP for %s", name)
		}
		l.helps[name] = true
	case "TYPE":
		if len(fields) < 4 || !validMetricName(fields[2]) {
			l.issuef(n, "malformed TYPE line: %q", s)
			return
		}
		name, typ := fields[2], strings.TrimSpace(fields[3])
		switch typ {
		case "counter", "gauge", "histogram", "summary", "untyped":
		default:
			l.issuef(n, "TYPE for %s names unknown type %q", name, typ)
		}
		if _, dup := l.types[name]; dup {
			l.issuef(n, "duplicate TYPE for %s", name)
		}
		if l.done[name] || l.cur == name {
			l.issuef(n, "TYPE for %s after its samples", name)
		}
		l.types[name] = typ
	}
}

func (l *linter) sample(n int, s string) {
	name, labels, value, ok := l.parseSample(n, s)
	if !ok {
		return
	}
	family, sub := l.family(name, labels)
	typ, typed := l.types[family]
	if !typed {
		l.issuef(n, "sample %s has no preceding # TYPE", name)
	}
	if !l.helps[family] {
		l.issuef(n, "sample %s has no preceding # HELP", name)
	}

	// Contiguity: a family's lines form one block.
	if family != l.cur {
		if l.cur != "" {
			l.done[l.cur] = true
		}
		if l.done[family] {
			l.issuef(n, "family %s split across the exposition", family)
		}
		l.cur = family
	}

	series := name + "{" + canonicalLabels(labels) + "}"
	if l.seen[series] {
		l.issuef(n, "duplicate series %s", series)
	}
	l.seen[series] = true

	switch typ {
	case "counter":
		if value < 0 {
			l.issuef(n, "counter %s has negative value %g", name, value)
		}
	case "histogram":
		sig := canonicalLabelsExcept(labels, "le")
		bySig := l.hists[family]
		if bySig == nil {
			bySig = make(map[string]*histAgg)
			l.hists[family] = bySig
		}
		agg := bySig[sig]
		if agg == nil {
			agg = &histAgg{line: n}
			bySig[sig] = agg
		}
		switch sub {
		case "bucket":
			le, found := labelValue(labels, "le")
			if !found {
				l.issuef(n, "histogram bucket %s without an le label", name)
				return
			}
			bound, err := parseFloat(le)
			if err != nil {
				l.issuef(n, "histogram bucket %s has unparseable le=%q", name, le)
				return
			}
			agg.buckets = append(agg.buckets, bucketSample{le: bound, v: value})
		case "sum":
			agg.sum, agg.hasSum = value, true
		case "count":
			agg.count, agg.hasCount = value, true
		default:
			l.issuef(n, "histogram family %s has plain sample %s (want _bucket/_sum/_count)", family, name)
		}
	}
}

// family resolves a sample name to its metadata family and, for
// histogram/summary children, the suffix role ("bucket", "sum", "count").
func (l *linter) family(name string, labels []label) (string, string) {
	for _, suf := range []string{"_bucket", "_sum", "_count"} {
		base, ok := strings.CutSuffix(name, suf)
		if !ok {
			continue
		}
		if t := l.types[base]; t == "histogram" || t == "summary" {
			return base, suf[1:]
		}
	}
	return name, ""
}

func (l *linter) finish() {
	for family, bySig := range l.hists {
		for sig, agg := range bySig {
			where := family
			if sig != "" {
				where = family + "{" + sig + "}"
			}
			sort.Slice(agg.buckets, func(i, j int) bool { return agg.buckets[i].le < agg.buckets[j].le })
			if len(agg.buckets) == 0 || !math.IsInf(agg.buckets[len(agg.buckets)-1].le, 1) {
				l.issuef(agg.line, "histogram %s lacks a +Inf bucket", where)
			}
			for i := 1; i < len(agg.buckets); i++ {
				if agg.buckets[i].v < agg.buckets[i-1].v {
					l.issuef(agg.line, "histogram %s buckets not cumulative: le=%g count %g < le=%g count %g",
						where, agg.buckets[i].le, agg.buckets[i].v, agg.buckets[i-1].le, agg.buckets[i-1].v)
					break
				}
			}
			if !agg.hasSum {
				l.issuef(agg.line, "histogram %s lacks _sum", where)
			}
			if !agg.hasCount {
				l.issuef(agg.line, "histogram %s lacks _count", where)
			} else if n := len(agg.buckets); n > 0 && math.IsInf(agg.buckets[n-1].le, 1) && agg.buckets[n-1].v != agg.count {
				l.issuef(agg.line, "histogram %s _count %g != +Inf bucket %g", where, agg.count, agg.buckets[n-1].v)
			}
		}
	}
	sort.Strings(l.issues)
}

type label struct{ name, value string }

// parseSample parses `name{labels} value [timestamp]`.
func (l *linter) parseSample(n int, s string) (string, []label, float64, bool) {
	i := 0
	for i < len(s) && isNameChar(s[i], i == 0) {
		i++
	}
	if i == 0 {
		l.issuef(n, "sample does not start with a metric name: %q", s)
		return "", nil, 0, false
	}
	name := s[:i]
	var labels []label
	if i < len(s) && s[i] == '{' {
		var ok bool
		labels, i, ok = l.parseLabels(n, s, i+1)
		if !ok {
			return "", nil, 0, false
		}
	}
	rest := strings.TrimSpace(s[i:])
	if rest == "" {
		l.issuef(n, "sample %s has no value", name)
		return "", nil, 0, false
	}
	fields := strings.Fields(rest)
	if len(fields) > 2 {
		l.issuef(n, "sample %s has trailing garbage: %q", name, rest)
		return "", nil, 0, false
	}
	value, err := parseFloat(fields[0])
	if err != nil {
		l.issuef(n, "sample %s has unparseable value %q", name, fields[0])
		return "", nil, 0, false
	}
	if len(fields) == 2 {
		if _, err := strconv.ParseInt(fields[1], 10, 64); err != nil {
			l.issuef(n, "sample %s has unparseable timestamp %q", name, fields[1])
			return "", nil, 0, false
		}
	}
	return name, labels, value, true
}

// parseLabels parses the label pairs starting just after '{'; returns the
// index just past '}'.
func (l *linter) parseLabels(n int, s string, i int) ([]label, int, bool) {
	var labels []label
	for {
		if i >= len(s) {
			l.issuef(n, "unterminated label set: %q", s)
			return nil, i, false
		}
		if s[i] == '}' {
			return labels, i + 1, true
		}
		start := i
		for i < len(s) && isLabelChar(s[i], i == start) {
			i++
		}
		if i == start || i >= len(s) || s[i] != '=' {
			l.issuef(n, "malformed label name in %q", s)
			return nil, i, false
		}
		lname := s[start:i]
		i++ // '='
		if i >= len(s) || s[i] != '"' {
			l.issuef(n, "label %s value not quoted in %q", lname, s)
			return nil, i, false
		}
		i++
		var val strings.Builder
		for {
			if i >= len(s) {
				l.issuef(n, "unterminated label value in %q", s)
				return nil, i, false
			}
			c := s[i]
			if c == '"' {
				i++
				break
			}
			if c == '\\' {
				i++
				if i >= len(s) {
					l.issuef(n, "dangling escape in %q", s)
					return nil, i, false
				}
				switch s[i] {
				case '\\', '"':
					val.WriteByte(s[i])
				case 'n':
					val.WriteByte('\n')
				default:
					l.issuef(n, "invalid escape \\%c in %q", s[i], s)
					return nil, i, false
				}
				i++
				continue
			}
			val.WriteByte(c)
			i++
		}
		labels = append(labels, label{name: lname, value: val.String()})
		if i < len(s) && s[i] == ',' {
			i++
		}
	}
}

// parseFloat accepts Prometheus number syntax including +Inf/-Inf/NaN.
func parseFloat(s string) (float64, error) {
	switch s {
	case "+Inf", "Inf":
		return math.Inf(1), nil
	case "-Inf":
		return math.Inf(-1), nil
	case "NaN", "nan":
		return math.NaN(), nil
	}
	return strconv.ParseFloat(s, 64)
}

func isNameChar(c byte, first bool) bool {
	if c >= 'a' && c <= 'z' || c >= 'A' && c <= 'Z' || c == '_' || c == ':' {
		return true
	}
	return !first && c >= '0' && c <= '9'
}

func isLabelChar(c byte, first bool) bool {
	if c >= 'a' && c <= 'z' || c >= 'A' && c <= 'Z' || c == '_' {
		return true
	}
	return !first && c >= '0' && c <= '9'
}

func validMetricName(s string) bool {
	if s == "" {
		return false
	}
	for i := 0; i < len(s); i++ {
		if !isNameChar(s[i], i == 0) {
			return false
		}
	}
	return true
}

func canonicalLabels(labels []label) string {
	parts := make([]string, len(labels))
	for i, lb := range labels {
		parts[i] = lb.name + "=" + strconv.Quote(lb.value)
	}
	sort.Strings(parts)
	return strings.Join(parts, ",")
}

func canonicalLabelsExcept(labels []label, skip string) string {
	parts := make([]string, 0, len(labels))
	for _, lb := range labels {
		if lb.name == skip {
			continue
		}
		parts = append(parts, lb.name+"="+strconv.Quote(lb.value))
	}
	sort.Strings(parts)
	return strings.Join(parts, ",")
}

func labelValue(labels []label, name string) (string, bool) {
	for _, lb := range labels {
		if lb.name == name {
			return lb.value, true
		}
	}
	return "", false
}

package telemetry

import (
	"fmt"
	"io"
	"math"
	"runtime/metrics"
)

// gcPauseBuckets collapses the runtime's fine-grained GC pause histogram
// into fixed Prometheus bounds (seconds): sub-10µs pauses are the
// expected steady state, anything beyond 10ms is worth an alert.
var gcPauseBuckets = [...]float64{1e-5, 1e-4, 1e-3, 1e-2, 1e-1}

// runtimeSampleNames are the runtime/metrics series the exposition reads.
// Indexes match the switch in WriteRuntimeMetrics.
var runtimeSampleNames = [...]string{
	"/sched/goroutines:goroutines",
	"/memory/classes/heap/objects:bytes",
	"/memory/classes/total:bytes",
	"/gc/cycles/total:gc-cycles",
	"/gc/pauses:seconds",
}

// WriteRuntimeMetrics renders Go runtime health series (goroutines, heap,
// GC cycles and pauses) from runtime/metrics in Prometheus text format.
// It allocates its sample slice per call so concurrent scrapes never
// share buffers. Series whose runtime counterpart is unavailable are
// omitted rather than emitted empty.
func WriteRuntimeMetrics(w io.Writer) {
	samples := make([]metrics.Sample, len(runtimeSampleNames))
	for i, name := range runtimeSampleNames {
		samples[i].Name = name
	}
	metrics.Read(samples)
	p := func(format string, args ...any) { fmt.Fprintf(w, format, args...) }

	emitUint := func(i int, name, typ, help string) {
		if samples[i].Value.Kind() != metrics.KindUint64 {
			return
		}
		p("# HELP %s %s\n", name, help)
		p("# TYPE %s %s\n", name, typ)
		p("%s %d\n", name, samples[i].Value.Uint64())
	}
	emitUint(0, "taskdrop_go_goroutines", "gauge", "Live goroutines.")
	emitUint(1, "taskdrop_go_heap_objects_bytes", "gauge", "Bytes occupied by live and unswept heap objects.")
	emitUint(2, "taskdrop_go_memory_total_bytes", "gauge", "Total bytes of memory mapped by the Go runtime.")
	emitUint(3, "taskdrop_go_gc_cycles_total", "counter", "Completed GC cycles.")

	if samples[4].Value.Kind() != metrics.KindFloat64Histogram {
		return
	}
	h := samples[4].Value.Float64Histogram()
	if h == nil {
		return
	}
	var counts [len(gcPauseBuckets) + 1]uint64
	var sum float64
	for i, c := range h.Counts {
		if c == 0 {
			continue
		}
		// Bucket i covers [Buckets[i], Buckets[i+1]); fold its count into
		// the first fixed bound that contains its upper edge, and
		// approximate the sum with that edge (lower edge for the +Inf
		// bucket) — an upper bound on total pause time.
		ub := h.Buckets[i+1]
		j := 0
		for ; j < len(gcPauseBuckets); j++ {
			if ub <= gcPauseBuckets[j] {
				break
			}
		}
		counts[j] += c
		if math.IsInf(ub, 1) {
			ub = h.Buckets[i]
		}
		sum += float64(c) * ub
	}
	p("# HELP taskdrop_go_gc_pause_seconds Stop-the-world GC pause latency (runtime/metrics /gc/pauses, rebinned; sum approximated by bucket upper bounds).\n")
	p("# TYPE taskdrop_go_gc_pause_seconds histogram\n")
	var cum uint64
	for i, le := range gcPauseBuckets {
		cum += counts[i]
		p("taskdrop_go_gc_pause_seconds_bucket{le=\"%g\"} %d\n", le, cum)
	}
	cum += counts[len(gcPauseBuckets)]
	p("taskdrop_go_gc_pause_seconds_bucket{le=\"+Inf\"} %d\n", cum)
	p("taskdrop_go_gc_pause_seconds_sum %g\n", sum)
	p("taskdrop_go_gc_pause_seconds_count %d\n", cum)
}

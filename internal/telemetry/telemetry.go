// Package telemetry is the admission service's self-observation layer: a
// low-overhead, sampling-aware tracer that times every stage of a sampled
// decision (route → shard mailbox wait → Eq. 1 calculus → dropper verdict
// → journal append/fsync → ack), plus the shared plumbing the service's
// observability surface is built from — per-stage latency histograms, a
// Prometheus text-format linter, runtime/metrics exposition and a slog
// constructor for the CLIs.
//
// # Design constraints
//
// The decision path is allocation-free in steady state and the paper's
// whole argument is latency, so the tracer must be invisible when off and
// cheap when on:
//
//   - Sampling is decided by sequence number (seq % every == 0), so it is
//     deterministic, cluster-wide consistent, and — crucially — decided
//     without reading a clock. A disabled tracer (every = 0) costs one
//     predictable branch per request and zero allocations.
//   - An Active trace is a single small allocation owned by the request's
//     goroutine and then by the shard loop; stages record (start, end)
//     offsets from one origin timestamp into a fixed array, no locks.
//   - Completed traces are published into a per-shard lock-free ring of
//     atomic pointers: the shard loop stores, scrapes load. No scrape can
//     ever stall a decision.
//   - Tracing is observational by construction: it never influences
//     routing, sequencing or the dropper verdict, so sampled and unsampled
//     runs produce identical decision sequences (asserted by the service's
//     determinism test).
package telemetry

import (
	"encoding/json"
	"fmt"
	"io"
	"sort"
	"sync/atomic"
	"time"
)

// Stage identifies one timed segment of a decision's lifecycle. The
// numeric values appear on disk in journal trace records; never reorder.
type Stage uint8

const (
	// StageRoute covers request receipt to shard-loop submission:
	// validation, sequence assignment and the router's shard pick.
	StageRoute Stage = iota
	// StageWait is the mailbox wait: submission until the shard's
	// single-writer loop picks the sub-batch up.
	StageWait
	// StageCalculus is the engine feed: clock advance, reactive sweep,
	// the Eq. 1 completion-time chains and the mapping event.
	StageCalculus
	// StageDropper is the proactive dropping policy's verdict time,
	// accumulated over its per-machine Decide calls (it runs inside the
	// calculus stage; see TimedPolicy).
	StageDropper
	// StageJournal covers WAL record encoding and the commit (flush +
	// fsync under SyncAlways) that makes the sub-batch durable.
	StageJournal
	// StageAck is the loop-side tail after durability: response slots are
	// filled and the closure hands control back to the submitter.
	StageAck
	// StageProxy is the router tier's upstream hop: the proxied decide
	// request leaving the front-end until the backend's response is decoded
	// (retries included). Only cmd/hcrouter records it; in-process shard
	// decisions have no proxy hop.
	StageProxy

	// NumStages is the number of trace stages. Stages are append-only: the
	// numeric values live in journal trace records.
	NumStages
)

var stageNames = [NumStages]string{
	"route", "wait", "calculus", "dropper", "journal", "ack", "proxy",
}

// String returns the stage's wire name (used in metric labels, trace JSON
// and the hcreplay audit listing).
func (s Stage) String() string {
	if int(s) < len(stageNames) {
		return stageNames[s]
	}
	return fmt.Sprintf("stage%d", uint8(s))
}

// StageFromString resolves a wire name back to its Stage.
func StageFromString(name string) (Stage, bool) {
	for i, n := range stageNames {
		if n == name {
			return Stage(i), true
		}
	}
	return 0, false
}

// Span is one timed stage of a trace: [start, end) offsets in nanoseconds
// from the trace origin (request receipt). Offsets rather than absolute
// times keep spans comparable within a trace and meaningful after a
// journal round trip.
type Span struct {
	Stage   Stage
	StartNS int64
	EndNS   int64
}

// Duration returns the span's length.
func (s Span) Duration() time.Duration { return time.Duration(s.EndNS - s.StartNS) }

type spanJSON struct {
	Stage   string `json:"stage"`
	StartNS int64  `json:"start_ns"`
	EndNS   int64  `json:"end_ns"`
}

// MarshalJSON renders the stage by name.
func (s Span) MarshalJSON() ([]byte, error) {
	return json.Marshal(spanJSON{Stage: s.Stage.String(), StartNS: s.StartNS, EndNS: s.EndNS})
}

// UnmarshalJSON parses the named-stage form (cmd/obslint consumes it).
func (s *Span) UnmarshalJSON(b []byte) error {
	var j spanJSON
	if err := json.Unmarshal(b, &j); err != nil {
		return err
	}
	st, ok := StageFromString(j.Stage)
	if !ok {
		return fmt.Errorf("telemetry: unknown stage %q", j.Stage)
	}
	*s = Span{Stage: st, StartNS: j.StartNS, EndNS: j.EndNS}
	return nil
}

// Trace is one sampled decision's completed stage timing. Its identity is
// the decision's cluster-wide sequence number. A published Trace is
// immutable: rings and scrapes share pointers to it.
type Trace struct {
	Seq    int64     `json:"seq"`
	Shard  int       `json:"shard"`
	Action string    `json:"action"`
	Start  time.Time `json:"start"`
	Spans  []Span    `json:"spans"`
}

// Duration returns the end offset of the last recorded span — the traced
// part of the decision's life.
func (t *Trace) Duration() time.Duration {
	var max int64
	for _, sp := range t.Spans {
		if sp.EndNS > max {
			max = sp.EndNS
		}
	}
	return time.Duration(max)
}

// Active is an in-flight trace. It is plain data owned by exactly one
// goroutine at a time (the request goroutine until submission, the shard
// loop after), so Mark and Extend need no synchronization.
type Active struct {
	seq    int64
	origin time.Time
	mask   uint32
	spans  [NumStages]Span
}

// Seq returns the decision sequence number being traced.
func (a *Active) Seq() int64 { return a.seq }

// Origin returns the trace origin (request receipt).
func (a *Active) Origin() time.Time { return a.origin }

// Mark records stage st as [start, end), replacing any prior recording.
func (a *Active) Mark(st Stage, start, end time.Time) {
	a.spans[st] = Span{
		Stage:   st,
		StartNS: int64(start.Sub(a.origin)),
		EndNS:   int64(end.Sub(a.origin)),
	}
	a.mask |= 1 << st
}

// Extend widens stage st to cover [start, end) as well — Mark semantics on
// first use. The dropper span accumulates one Decide call per machine this
// way, and the journal span merges the per-decision append with the
// sub-batch commit.
func (a *Active) Extend(st Stage, start, end time.Time) {
	if a.mask&(1<<st) == 0 {
		a.Mark(st, start, end)
		return
	}
	sp := &a.spans[st]
	if s := int64(start.Sub(a.origin)); s < sp.StartNS {
		sp.StartNS = s
	}
	if e := int64(end.Sub(a.origin)); e > sp.EndNS {
		sp.EndNS = e
	}
}

// ring is a lock-free bounded buffer of completed traces: a single shard
// loop stores into successive slots, concurrent scrapes load. Readers may
// observe a torn window across a wrap (a mix of generations), never a torn
// trace.
type ring struct {
	slots []atomic.Pointer[Trace]
	next  atomic.Uint64
}

func newRing(size int) *ring {
	return &ring{slots: make([]atomic.Pointer[Trace], size)}
}

func (r *ring) put(t *Trace) {
	i := r.next.Add(1) - 1
	r.slots[i%uint64(len(r.slots))].Store(t)
}

func (r *ring) snapshot() []*Trace {
	out := make([]*Trace, 0, len(r.slots))
	for i := range r.slots {
		if t := r.slots[i].Load(); t != nil {
			out = append(out, t)
		}
	}
	return out
}

// stageLatencyBuckets are the per-stage latency histogram bounds
// (seconds). Stages span three orders of magnitude: mailbox waits and acks
// sit in the microseconds, the calculus in the tens-to-hundreds of
// microseconds, journal commits under SyncAlways in the milliseconds.
var stageLatencyBuckets = [...]float64{
	1e-6, 5e-6, 10e-6, 25e-6, 50e-6, 100e-6, 250e-6, 1e-3, 5e-3, 25e-3, 100e-3,
}

// stageHist is one stage's concurrency-safe latency histogram.
type stageHist struct {
	buckets [len(stageLatencyBuckets) + 1]atomic.Uint64
	sumNS   atomic.Int64
}

func (h *stageHist) observe(d time.Duration) {
	s := d.Seconds()
	i := 0
	for ; i < len(stageLatencyBuckets); i++ {
		if s <= stageLatencyBuckets[i] {
			break
		}
	}
	h.buckets[i].Add(1)
	h.sumNS.Add(int64(d))
}

// ShardRecorder is one shard's tracer endpoint. The active field makes
// the in-flight trace visible to instrumentation nested inside the engine
// feed (TimedPolicy) without threading it through the sim package: it is
// written and read only by the shard's decision loop.
type ShardRecorder struct {
	t      *Telemetry
	ring   *ring
	active *Active
}

// Begin installs a as the loop's in-flight trace (nested instrumentation
// picks it up). Decision-loop-only.
func (r *ShardRecorder) Begin(a *Active) { r.active = a }

// End clears the in-flight trace. Decision-loop-only.
func (r *ShardRecorder) End() { r.active = nil }

// Active returns the loop's in-flight trace, nil outside a sampled feed.
func (r *ShardRecorder) Active() *Active { return r.active }

// Finish seals a into an immutable Trace, feeds the per-stage latency
// histograms and publishes it into the shard's ring. Returns the trace so
// the caller can also journal it.
func (r *ShardRecorder) Finish(a *Active, shard int, action string) *Trace {
	tr := &Trace{
		Seq:    a.seq,
		Shard:  shard,
		Action: action,
		Start:  a.origin,
		Spans:  make([]Span, 0, NumStages),
	}
	for st := Stage(0); st < NumStages; st++ {
		if a.mask&(1<<st) == 0 {
			continue
		}
		sp := a.spans[st]
		tr.Spans = append(tr.Spans, sp)
		r.t.stages[st].observe(sp.Duration())
	}
	// Stage enum order is not wall-clock order (the arrive-journal write
	// precedes the calculus); present spans as a timeline.
	sort.Slice(tr.Spans, func(i, j int) bool { return tr.Spans[i].StartNS < tr.Spans[j].StartNS })
	r.t.sampled.Add(1)
	r.ring.put(tr)
	return tr
}

// Telemetry is the service-wide tracer: the sampling policy, one recorder
// (and trace ring) per shard, and the shared stage-latency histograms.
type Telemetry struct {
	every   uint64
	recs    []*ShardRecorder
	stages  [NumStages]stageHist
	sampled atomic.Uint64
}

// DefaultRingSize is the per-shard trace retention when the caller does
// not choose one.
const DefaultRingSize = 256

// New builds a tracer for the given shard count. sampleEvery selects
// every Nth decision by sequence number (0 or negative disables tracing
// entirely); ringSize bounds retained traces per shard (<= 0 uses
// DefaultRingSize).
func New(shards, sampleEvery, ringSize int) *Telemetry {
	if shards < 1 {
		shards = 1
	}
	if ringSize <= 0 {
		ringSize = DefaultRingSize
	}
	t := &Telemetry{}
	if sampleEvery > 0 {
		t.every = uint64(sampleEvery)
	}
	t.recs = make([]*ShardRecorder, shards)
	for i := range t.recs {
		t.recs[i] = &ShardRecorder{t: t, ring: newRing(ringSize)}
	}
	return t
}

// Enabled reports whether any decision is sampled.
func (t *Telemetry) Enabled() bool { return t.every > 0 }

// SampleEvery returns the sampling period (0 = disabled).
func (t *Telemetry) SampleEvery() int { return int(t.every) }

// Begin returns a fresh Active trace if seq is sampled, nil otherwise.
// The disabled path is one branch, no clock read, no allocation.
func (t *Telemetry) Begin(seq int64, origin time.Time) *Active {
	if t.every == 0 || uint64(seq)%t.every != 0 {
		return nil
	}
	return &Active{seq: seq, origin: origin}
}

// Shard returns shard s's recorder.
func (t *Telemetry) Shard(s int) *ShardRecorder { return t.recs[s] }

// Sampled returns the number of completed traces.
func (t *Telemetry) Sampled() uint64 { return t.sampled.Load() }

// Traces snapshots every shard's ring, newest decision first.
func (t *Telemetry) Traces() []*Trace {
	var out []*Trace
	for _, r := range t.recs {
		out = append(out, r.ring.snapshot()...)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Seq > out[j].Seq })
	return out
}

// WritePrometheus renders the tracer's series: sampling configuration,
// trace count, and the per-stage latency histogram (one histogram family
// with a stage label).
func (t *Telemetry) WritePrometheus(w io.Writer) {
	p := func(format string, args ...any) { fmt.Fprintf(w, format, args...) }
	p("# HELP taskdrop_trace_sample_every Stage-trace sampling period (0 = disabled).\n")
	p("# TYPE taskdrop_trace_sample_every gauge\n")
	p("taskdrop_trace_sample_every %d\n", t.every)
	p("# HELP taskdrop_traces_sampled_total Decisions captured as stage-timed traces.\n")
	p("# TYPE taskdrop_traces_sampled_total counter\n")
	p("taskdrop_traces_sampled_total %d\n", t.sampled.Load())
	p("# HELP taskdrop_decision_stage_latency_seconds Sampled per-stage decision latency (route, wait, calculus, dropper, journal, ack, proxy).\n")
	p("# TYPE taskdrop_decision_stage_latency_seconds histogram\n")
	for st := Stage(0); st < NumStages; st++ {
		h := &t.stages[st]
		var cum uint64
		for i, le := range stageLatencyBuckets {
			cum += h.buckets[i].Load()
			p("taskdrop_decision_stage_latency_seconds_bucket{stage=%q,le=\"%g\"} %d\n", st.String(), le, cum)
		}
		cum += h.buckets[len(stageLatencyBuckets)].Load()
		p("taskdrop_decision_stage_latency_seconds_bucket{stage=%q,le=\"+Inf\"} %d\n", st.String(), cum)
		p("taskdrop_decision_stage_latency_seconds_sum{stage=%q} %g\n", st.String(), float64(h.sumNS.Load())/1e9)
		p("taskdrop_decision_stage_latency_seconds_count{stage=%q} %d\n", st.String(), cum)
	}
}

package telemetry

import (
	"strings"
	"testing"
)

func lintString(t *testing.T, s string) []string {
	t.Helper()
	return Lint(strings.NewReader(s))
}

// wantIssue asserts at least one issue mentions every given fragment.
func wantIssue(t *testing.T, issues []string, fragment string) {
	t.Helper()
	for _, is := range issues {
		if strings.Contains(is, fragment) {
			return
		}
	}
	t.Fatalf("no issue mentions %q in:\n%s", fragment, strings.Join(issues, "\n"))
}

func TestLintCleanExposition(t *testing.T) {
	good := `# HELP taskdrop_requests_total Requests served.
# TYPE taskdrop_requests_total counter
taskdrop_requests_total 42
# HELP taskdrop_queue_depth Tasks queued per machine.
# TYPE taskdrop_queue_depth gauge
taskdrop_queue_depth{machine="0",name="m-a"} 3
taskdrop_queue_depth{machine="1",name="m \"q\" b"} 0
# HELP taskdrop_latency_seconds Decide latency.
# TYPE taskdrop_latency_seconds histogram
taskdrop_latency_seconds_bucket{le="0.001"} 10
taskdrop_latency_seconds_bucket{le="0.01"} 15
taskdrop_latency_seconds_bucket{le="+Inf"} 20
taskdrop_latency_seconds_sum 0.33
taskdrop_latency_seconds_count 20
`
	if issues := lintString(t, good); len(issues) != 0 {
		t.Fatalf("clean exposition flagged:\n%s", strings.Join(issues, "\n"))
	}
}

func TestLintLabeledHistogram(t *testing.T) {
	good := `# HELP h Stage latency.
# TYPE h histogram
h_bucket{stage="route",le="0.001"} 1
h_bucket{stage="route",le="+Inf"} 2
h_sum{stage="route"} 0.01
h_count{stage="route"} 2
h_bucket{stage="ack",le="0.001"} 5
h_bucket{stage="ack",le="+Inf"} 5
h_sum{stage="ack"} 0.002
h_count{stage="ack"} 5
`
	if issues := lintString(t, good); len(issues) != 0 {
		t.Fatalf("labeled histogram flagged:\n%s", strings.Join(issues, "\n"))
	}
}

func TestLintMissingMetadata(t *testing.T) {
	issues := lintString(t, "orphan_total 3\n")
	wantIssue(t, issues, "no preceding # TYPE")
	wantIssue(t, issues, "no preceding # HELP")

	issues = lintString(t, "# HELP x docs\n# TYPE x gauge\nx 1\n# HELP y\n# TYPE y gauge\ny 2\n")
	wantIssue(t, issues, "empty docstring")

	issues = lintString(t, "# HELP x docs\n# TYPE x widget\nx 1\n")
	wantIssue(t, issues, "unknown type")
}

func TestLintStructuralViolations(t *testing.T) {
	split := `# HELP a docs
# TYPE a gauge
a{k="1"} 1
# HELP b docs
# TYPE b gauge
b 1
a{k="2"} 2
`
	wantIssue(t, lintString(t, split), "split across the exposition")

	dup := "# HELP a docs\n# TYPE a gauge\na{k=\"1\"} 1\na{k=\"1\"} 2\n"
	wantIssue(t, lintString(t, dup), "duplicate series")

	neg := "# HELP a docs\n# TYPE a counter\na -1\n"
	wantIssue(t, lintString(t, neg), "negative value")

	badVal := "# HELP a docs\n# TYPE a gauge\na one\n"
	wantIssue(t, lintString(t, badVal), "unparseable value")

	badLabel := "# HELP a docs\n# TYPE a gauge\na{k=unquoted} 1\n"
	wantIssue(t, lintString(t, badLabel), "not quoted")
}

func TestLintHistogramViolations(t *testing.T) {
	noInf := `# HELP h docs
# TYPE h histogram
h_bucket{le="1"} 1
h_sum 1
h_count 1
`
	wantIssue(t, lintString(t, noInf), "lacks a +Inf bucket")

	notCumulative := `# HELP h docs
# TYPE h histogram
h_bucket{le="1"} 5
h_bucket{le="2"} 3
h_bucket{le="+Inf"} 5
h_sum 1
h_count 5
`
	wantIssue(t, lintString(t, notCumulative), "not cumulative")

	noSum := `# HELP h docs
# TYPE h histogram
h_bucket{le="+Inf"} 1
h_count 1
`
	wantIssue(t, lintString(t, noSum), "lacks _sum")

	countMismatch := `# HELP h docs
# TYPE h histogram
h_bucket{le="+Inf"} 4
h_sum 1
h_count 5
`
	wantIssue(t, lintString(t, countMismatch), "_count 5 != +Inf bucket 4")
}

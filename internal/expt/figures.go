package expt

import (
	"fmt"

	"github.com/hpcclab/taskdrop/internal/core"
)

// Figure regenerates one table/figure of the paper's evaluation section.
type Figure struct {
	ID    string
	Title string
	Run   func(r *Runner) ([]Table, error)
}

// PaperFigures returns the figures of the paper's evaluation section, in
// paper order.
func PaperFigures() []Figure {
	return []Figure{
		{ID: "fig5", Title: "Impact of effective depth (η) on robustness — PAM + proactive dropping heuristic", Run: runFig5},
		{ID: "fig6", Title: "Impact of robustness improvement factor (β) — PAM + proactive dropping heuristic", Run: runFig6},
		{ID: "fig7a", Title: "Proactive dropping across mapping heuristics — heterogeneous system (30k tasks)", Run: runFig7a},
		{ID: "fig7b", Title: "Proactive dropping across mapping heuristics — homogeneous system (30k tasks)", Run: runFig7b},
		{ID: "fig8", Title: "Dropping policies vs oversubscription — PAM + {Optimal, Heuristic, Threshold}", Run: runFig8},
		{ID: "fig9", Title: "Normalized incurred cost (cost / robustness) vs oversubscription", Run: runFig9},
		{ID: "fig10", Title: "Video transcoding workload — proactive dropping across mapping heuristics (20k tasks)", Run: runFig10},
		{ID: "drops", Title: "Share of reactive drops under proactive dropping (§V-F, ≈7% in the paper)", Run: runDropShare},
	}
}

// All returns the paper figures followed by the extension experiments.
func All() []Figure {
	return append(PaperFigures(), Extensions()...)
}

// ByID finds a figure by its identifier.
func ByID(id string) (Figure, bool) {
	for _, f := range All() {
		if f.ID == id {
			return f, true
		}
	}
	return Figure{}, false
}

// fmtSummary renders "mean ± ci".
func fmtSummary(s interface{ String() string }) string { return s.String() }

// policyLabel renders a dropper spec's display name for table labels.
func policyLabel(spec string) string {
	p, err := core.PolicyFromSpec(spec)
	if err != nil {
		return spec
	}
	return p.Name()
}

// levelLabel renders an oversubscription level as "20k".
func levelLabel(level int) string {
	if level%1000 == 0 {
		return fmt.Sprintf("%dk", level/1000)
	}
	return fmt.Sprintf("%d", level)
}

// middleLevel picks the paper's 30k level (the middle of the sorted
// levels).
func middleLevel(levels []int) int {
	s := sortedLevels(levels)
	return s[len(s)/2]
}

// lowestLevel picks the paper's 20k level.
func lowestLevel(levels []int) int { return sortedLevels(levels)[0] }

// runFig5 sweeps effective depth η ∈ {1..5} at every oversubscription
// level with β = 1 (Fig. 5).
func runFig5(r *Runner) ([]Table, error) {
	o := r.Options()
	levels := sortedLevels(o.Levels)
	etas := []int{1, 2, 3, 4, 5}
	var specs []TrialSpec
	for _, level := range levels {
		for _, eta := range etas {
			specs = append(specs, TrialSpec{
				Label:    fmt.Sprintf("η=%d @%s", eta, levelLabel(level)),
				Profile:  "spec",
				Mapper:   "PAM",
				Dropper:  fmt.Sprintf("heuristic:beta=%g,eta=%d", core.DefaultBeta, eta),
				Workload: o.StandardWorkload(level),
			})
		}
	}
	sums, err := r.Run(specs)
	if err != nil {
		return nil, err
	}
	tab := Table{
		ID:      "fig5",
		Title:   "Tasks completed on time (%) vs effective depth η (PAM+Heuristic, β=1)",
		Columns: append([]string{"η"}, levelLabels(levels)...),
	}
	for ei, eta := range etas {
		row := []string{fmt.Sprintf("%d", eta)}
		for li := range levels {
			row = append(row, fmtSummary(sums[li*len(etas)+ei].Robustness))
		}
		tab.Rows = append(tab.Rows, row)
	}
	return []Table{tab}, nil
}

// runFig6 sweeps the robustness improvement factor β ∈ {1.0 … 4.0} at
// every oversubscription level with η = 2 (Fig. 6).
func runFig6(r *Runner) ([]Table, error) {
	o := r.Options()
	levels := sortedLevels(o.Levels)
	betas := []float64{1.0, 1.5, 2.0, 2.5, 3.0, 3.5, 4.0}
	var specs []TrialSpec
	for _, level := range levels {
		for _, beta := range betas {
			specs = append(specs, TrialSpec{
				Label:    fmt.Sprintf("β=%.1f @%s", beta, levelLabel(level)),
				Profile:  "spec",
				Mapper:   "PAM",
				Dropper:  fmt.Sprintf("heuristic:beta=%g,eta=%d", beta, core.DefaultEta),
				Workload: o.StandardWorkload(level),
			})
		}
	}
	sums, err := r.Run(specs)
	if err != nil {
		return nil, err
	}
	tab := Table{
		ID:      "fig6",
		Title:   "Tasks completed on time (%) vs robustness improvement factor β (PAM+Heuristic, η=2)",
		Columns: append([]string{"β"}, levelLabels(levels)...),
	}
	for bi, beta := range betas {
		row := []string{fmt.Sprintf("%.1f", beta)}
		for li := range levels {
			row = append(row, fmtSummary(sums[li*len(betas)+bi].Robustness))
		}
		tab.Rows = append(tab.Rows, row)
	}
	return []Table{tab}, nil
}

// mapperDropperGrid builds the ±Heuristic comparison used by Figs. 7a, 7b
// and 10.
func mapperDropperGrid(r *Runner, profile string, level int, mappers []string) ([]Table, error) {
	o := r.Options()
	droppers := []string{"heuristic", "reactdrop"}
	var specs []TrialSpec
	for _, mn := range mappers {
		for _, dp := range droppers {
			specs = append(specs, TrialSpec{
				Label:    fmt.Sprintf("%s+%s", mn, policyLabel(dp)),
				Profile:  profile,
				Mapper:   mn,
				Dropper:  dp,
				Workload: o.StandardWorkload(level),
			})
		}
	}
	sums, err := r.Run(specs)
	if err != nil {
		return nil, err
	}
	tab := Table{
		Title:   fmt.Sprintf("Tasks completed on time (%%), %s profile, %s tasks", profile, levelLabel(level)),
		Columns: []string{"mapper", "+Heuristic", "+ReactDrop", "Δ (pp)"},
	}
	for mi, mn := range mappers {
		h, rd := sums[2*mi], sums[2*mi+1]
		tab.Rows = append(tab.Rows, []string{
			mn,
			fmtSummary(h.Robustness),
			fmtSummary(rd.Robustness),
			fmt.Sprintf("%+.2f", h.Robustness.Mean-rd.Robustness.Mean),
		})
	}
	return []Table{tab}, nil
}

// runFig7a: heterogeneous system, MSD/MM/PAM ± proactive heuristic.
func runFig7a(r *Runner) ([]Table, error) {
	tabs, err := mapperDropperGrid(r, "spec", middleLevel(r.Options().Levels), []string{"MSD", "MinMin", "PAM"})
	if err == nil {
		tabs[0].ID = "fig7a"
	}
	return tabs, err
}

// runFig7b: homogeneous system, FCFS/EDF/SJF/PAM ± proactive heuristic.
func runFig7b(r *Runner) ([]Table, error) {
	tabs, err := mapperDropperGrid(r, "homog", middleLevel(r.Options().Levels), []string{"FCFS", "EDF", "SJF", "PAM"})
	if err == nil {
		tabs[0].ID = "fig7b"
	}
	return tabs, err
}

// runFig8 compares the three proactive dropping policies on PAM across
// oversubscription levels (Fig. 8).
func runFig8(r *Runner) ([]Table, error) {
	o := r.Options()
	levels := sortedLevels(o.Levels)
	droppers := []string{"optimal", "heuristic", "threshold"}
	var specs []TrialSpec
	for _, level := range levels {
		for _, dp := range droppers {
			specs = append(specs, TrialSpec{
				Label:    fmt.Sprintf("PAM+%s @%s", policyLabel(dp), levelLabel(level)),
				Profile:  "spec",
				Mapper:   "PAM",
				Dropper:  dp,
				Workload: o.StandardWorkload(level),
			})
		}
	}
	sums, err := r.Run(specs)
	if err != nil {
		return nil, err
	}
	tab := Table{
		ID:      "fig8",
		Title:   "Tasks completed on time (%) by dropping policy (PAM mapping)",
		Columns: append([]string{"policy"}, levelLabels(levels)...),
	}
	for di, dp := range droppers {
		row := []string{"PAM+" + policyLabel(dp)}
		for li := range levels {
			row = append(row, fmtSummary(sums[li*len(droppers)+di].Robustness))
		}
		tab.Rows = append(tab.Rows, row)
	}
	return []Table{tab}, nil
}

// runFig9 compares the normalized incurred cost of PAM+Threshold,
// PAM+Heuristic and MM+ReactDrop across oversubscription levels (Fig. 9).
func runFig9(r *Runner) ([]Table, error) {
	o := r.Options()
	levels := sortedLevels(o.Levels)
	combos := []struct {
		mapper, dropper string
	}{
		{"PAM", "threshold"},
		{"PAM", "heuristic"},
		{"MinMin", "reactdrop"},
	}
	var specs []TrialSpec
	for _, level := range levels {
		for _, cb := range combos {
			specs = append(specs, TrialSpec{
				Label:    fmt.Sprintf("%s+%s @%s", cb.mapper, policyLabel(cb.dropper), levelLabel(level)),
				Profile:  "spec",
				Mapper:   cb.mapper,
				Dropper:  cb.dropper,
				Workload: o.StandardWorkload(level),
			})
		}
	}
	sums, err := r.Run(specs)
	if err != nil {
		return nil, err
	}
	tab := Table{
		ID:      "fig9",
		Title:   "Normalized cost ($ per 1000 robustness-%, lower is better)",
		Columns: append([]string{"combo"}, levelLabels(levels)...),
	}
	for ci, cb := range combos {
		row := []string{fmt.Sprintf("%s+%s", cb.mapper, policyLabel(cb.dropper))}
		for li := range levels {
			row = append(row, fmtSummary(sums[li*len(combos)+ci].NormCost))
		}
		tab.Rows = append(tab.Rows, row)
	}
	return []Table{tab}, nil
}

// runFig10: video transcoding validation workload at the 20k level.
func runFig10(r *Runner) ([]Table, error) {
	tabs, err := mapperDropperGrid(r, "video", lowestLevel(r.Options().Levels), []string{"MSD", "MinMin", "PAM"})
	if err == nil {
		tabs[0].ID = "fig10"
	}
	return tabs, err
}

// runDropShare reports what share of all drops happened reactively under
// the proactive heuristic (§V-F: ≈7%) and the drop mix per level.
func runDropShare(r *Runner) ([]Table, error) {
	o := r.Options()
	levels := sortedLevels(o.Levels)
	var specs []TrialSpec
	for _, level := range levels {
		specs = append(specs, TrialSpec{
			Label:    "PAM+Heuristic @" + levelLabel(level),
			Profile:  "spec",
			Mapper:   "PAM",
			Dropper:  "heuristic",
			Workload: o.StandardWorkload(level),
		})
	}
	sums, err := r.Run(specs)
	if err != nil {
		return nil, err
	}
	tab := Table{
		ID:      "drops",
		Title:   "Drop mix under PAM+Heuristic (measured tasks)",
		Columns: []string{"level", "reactive share of drops (%)", "proactive dropped (%)", "reactive dropped (%)"},
	}
	for li, level := range levels {
		s := sums[li]
		tab.Rows = append(tab.Rows, []string{
			levelLabel(level),
			fmtSummary(s.ReactiveShare),
			fmtSummary(s.ProactivePct),
			fmtSummary(s.ReactivePct),
		})
	}
	return []Table{tab}, nil
}

// levelLabels renders level column headers.
func levelLabels(levels []int) []string {
	out := make([]string, len(levels))
	for i, l := range levels {
		out[i] = levelLabel(l) + " tasks"
	}
	return out
}

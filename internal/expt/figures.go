package expt

import (
	"fmt"
	"strconv"

	taskdrop "github.com/hpcclab/taskdrop"
	"github.com/hpcclab/taskdrop/internal/core"
)

// PaperFigures returns the figures of the paper's evaluation section, in
// paper order. Every figure is a declarative sweep: axes plus pivots, no
// imperative running code.
func PaperFigures() []Figure {
	return []Figure{
		{
			ID:     "fig5",
			Title:  "Impact of effective depth (η) on robustness — PAM + proactive dropping heuristic",
			Items:  fig5Items,
			Pivots: fig5Pivots,
		},
		{
			ID:     "fig6",
			Title:  "Impact of robustness improvement factor (β) — PAM + proactive dropping heuristic",
			Items:  fig6Items,
			Pivots: fig6Pivots,
		},
		{
			ID:    "fig7a",
			Title: "Proactive dropping across mapping heuristics — heterogeneous system (30k tasks)",
			Items: func(o Options) []taskdrop.SweepItem {
				return gridItems("spec", middleLevel(o.Levels), []string{"MSD", "MinMin", "PAM"})
			},
			Pivots: func(o Options) []taskdrop.Pivot {
				return gridPivots("spec", middleLevel(o.Levels))
			},
		},
		{
			ID:    "fig7b",
			Title: "Proactive dropping across mapping heuristics — homogeneous system (30k tasks)",
			Items: func(o Options) []taskdrop.SweepItem {
				return gridItems("homog", middleLevel(o.Levels), []string{"FCFS", "EDF", "SJF", "PAM"})
			},
			Pivots: func(o Options) []taskdrop.Pivot {
				return gridPivots("homog", middleLevel(o.Levels))
			},
		},
		{
			ID:     "fig8",
			Title:  "Dropping policies vs oversubscription — PAM + {Optimal, Heuristic, Threshold}",
			Items:  fig8Items,
			Pivots: fig8Pivots,
		},
		{
			ID:     "fig9",
			Title:  "Normalized incurred cost (cost / robustness) vs oversubscription",
			Items:  fig9Items,
			Pivots: fig9Pivots,
		},
		{
			ID:    "fig10",
			Title: "Video transcoding workload — proactive dropping across mapping heuristics (20k tasks)",
			Items: func(o Options) []taskdrop.SweepItem {
				return gridItems("video", lowestLevel(o.Levels), []string{"MSD", "MinMin", "PAM"})
			},
			Pivots: func(o Options) []taskdrop.Pivot {
				return gridPivots("video", lowestLevel(o.Levels))
			},
		},
		{
			ID:     "drops",
			Title:  "Share of reactive drops under proactive dropping (§V-F, ≈7% in the paper)",
			Items:  dropsItems,
			Pivots: dropsPivots,
		},
	}
}

// All returns the paper figures followed by the extension experiments.
func All() []Figure {
	return append(PaperFigures(), Extensions()...)
}

// ByID finds a figure by its identifier.
func ByID(id string) (Figure, bool) {
	for _, f := range All() {
		if f.ID == id {
			return f, true
		}
	}
	return Figure{}, false
}

// levelsAxis declares the oversubscription axis over the harness levels.
func levelsAxis(o Options) taskdrop.Axis {
	return taskdrop.Tasks(sortedLevels(o.Levels)...)
}

// fig5Items sweeps effective depth η ∈ {1..5} at every oversubscription
// level with β = 1 (Fig. 5).
func fig5Items(o Options) []taskdrop.SweepItem {
	etas := []int{1, 2, 3, 4, 5}
	specs := make([]string, len(etas))
	labels := make([]string, len(etas))
	for i, eta := range etas {
		specs[i] = fmt.Sprintf("heuristic:beta=%g,eta=%d", core.DefaultBeta, eta)
		labels[i] = strconv.Itoa(eta)
	}
	return []taskdrop.SweepItem{
		taskdrop.Profiles("spec"),
		taskdrop.Mappers("PAM"),
		taskdrop.Droppers(specs...).Named("η").As(labels...),
		levelsAxis(o),
	}
}

func fig5Pivots(Options) []taskdrop.Pivot {
	return []taskdrop.Pivot{{
		Title:  "Tasks completed on time (%) vs effective depth η (PAM+Heuristic, β=1)",
		Row:    "η",
		Col:    "tasks",
		ColFmt: "%s tasks",
		Metric: taskdrop.MetricRobustness,
	}}
}

// fig6Items sweeps the robustness improvement factor β ∈ {1.0 … 4.0} at
// every oversubscription level with η = 2 (Fig. 6).
func fig6Items(o Options) []taskdrop.SweepItem {
	betas := []float64{1.0, 1.5, 2.0, 2.5, 3.0, 3.5, 4.0}
	specs := make([]string, len(betas))
	labels := make([]string, len(betas))
	for i, beta := range betas {
		specs[i] = fmt.Sprintf("heuristic:beta=%g,eta=%d", beta, core.DefaultEta)
		labels[i] = fmt.Sprintf("%.1f", beta)
	}
	return []taskdrop.SweepItem{
		taskdrop.Profiles("spec"),
		taskdrop.Mappers("PAM"),
		taskdrop.Droppers(specs...).Named("β").As(labels...),
		levelsAxis(o),
	}
}

func fig6Pivots(Options) []taskdrop.Pivot {
	return []taskdrop.Pivot{{
		Title:  "Tasks completed on time (%) vs robustness improvement factor β (PAM+Heuristic, η=2)",
		Row:    "β",
		Col:    "tasks",
		ColFmt: "%s tasks",
		Metric: taskdrop.MetricRobustness,
	}}
}

// gridItems declares the ±Heuristic comparison grid used by Figs. 7a, 7b
// and 10: mappers × {heuristic, reactdrop} at one oversubscription level,
// with the no-proactive-dropping cells as the paired baseline.
func gridItems(profile string, level int, mappers []string) []taskdrop.SweepItem {
	return []taskdrop.SweepItem{
		taskdrop.Profiles(profile),
		taskdrop.Mappers(mappers...),
		taskdrop.Droppers("heuristic", "reactdrop"),
		taskdrop.Tasks(level),
		taskdrop.Baseline("reactdrop"),
	}
}

// gridPivots renders a ±Heuristic grid as the paper's table layout.
func gridPivots(profile string, level int) []taskdrop.Pivot {
	return []taskdrop.Pivot{{
		Title:       fmt.Sprintf("Tasks completed on time (%%), %s profile, %s tasks", profile, levelLabel(level)),
		Row:         "mapper",
		Col:         "dropper",
		ColFmt:      "+%s",
		Metric:      taskdrop.MetricRobustness,
		Delta:       true,
		DeltaHeader: "Δ (pp)",
	}}
}

// fig8Items compares the three proactive dropping policies on PAM across
// oversubscription levels (Fig. 8).
func fig8Items(o Options) []taskdrop.SweepItem {
	return []taskdrop.SweepItem{
		taskdrop.Profiles("spec"),
		taskdrop.Mappers("PAM"),
		taskdrop.Droppers("optimal", "heuristic", "threshold"),
		levelsAxis(o),
	}
}

func fig8Pivots(Options) []taskdrop.Pivot {
	return []taskdrop.Pivot{{
		Title:     "Tasks completed on time (%) by dropping policy (PAM mapping)",
		Row:       "dropper",
		RowHeader: "policy",
		RowFmt:    "PAM+%s",
		Col:       "tasks",
		ColFmt:    "%s tasks",
		Metric:    taskdrop.MetricRobustness,
	}}
}

// fig9Items compares the normalized incurred cost of PAM+Threshold,
// PAM+Heuristic and MM+ReactDrop across oversubscription levels (Fig. 9).
// Mapper and dropper move together, so they form one joint axis.
func fig9Items(o Options) []taskdrop.SweepItem {
	return []taskdrop.SweepItem{
		taskdrop.Profiles("spec"),
		taskdrop.Values("combo",
			taskdrop.Value("PAM+Threshold", taskdrop.WithMapper("PAM"), taskdrop.WithDropper("threshold")),
			taskdrop.Value("PAM+Heuristic", taskdrop.WithMapper("PAM"), taskdrop.WithDropper("heuristic")),
			taskdrop.Value("MinMin+ReactDrop", taskdrop.WithMapper("MinMin"), taskdrop.WithDropper("reactdrop")),
		),
		levelsAxis(o),
	}
}

func fig9Pivots(Options) []taskdrop.Pivot {
	return []taskdrop.Pivot{{
		Title:  "Normalized cost ($ per 1000 robustness-%, lower is better)",
		Row:    "combo",
		Col:    "tasks",
		ColFmt: "%s tasks",
		Metric: taskdrop.MetricNormCost,
	}}
}

// dropsItems reports what share of all drops happened reactively under
// the proactive heuristic (§V-F: ≈7%) and the drop mix per level.
func dropsItems(o Options) []taskdrop.SweepItem {
	return []taskdrop.SweepItem{
		taskdrop.Profiles("spec"),
		taskdrop.Mappers("PAM"),
		taskdrop.Droppers("heuristic"),
		levelsAxis(o),
	}
}

func dropsPivots(Options) []taskdrop.Pivot {
	return []taskdrop.Pivot{{
		Title:     "Drop mix under PAM+Heuristic (measured tasks)",
		Row:       "tasks",
		RowHeader: "level",
		Columns: []taskdrop.MetricColumn{
			{Header: "reactive share of drops (%)", Metric: taskdrop.MetricReactiveShare},
			{Header: "proactive dropped (%)", Metric: taskdrop.MetricProactivePct},
			{Header: "reactive dropped (%)", Metric: taskdrop.MetricReactivePct},
		},
	}}
}

// Package expt is the experiment harness that regenerates every table and
// figure of the paper's evaluation (§V): it expands figure definitions
// into trial specifications, runs the trials across the shared worker pool
// with paired workloads (identical traces for every combination being
// compared), and aggregates robustness, cost and drop-mix metrics into
// mean ± 95% CI summaries and printable tables.
//
// Every component of a TrialSpec is named by a registry spec string
// (pet.ProfileFromSpec, mapping.FromSpec, core.PolicyFromSpec), so the
// harness resolves combinations through exactly the same path as the CLI
// flags and the public Scenario API.
package expt

import (
	"context"
	"fmt"
	"io"
	"runtime"
	"sort"
	"sync"

	"github.com/hpcclab/taskdrop/internal/core"
	"github.com/hpcclab/taskdrop/internal/mapping"
	"github.com/hpcclab/taskdrop/internal/pet"
	"github.com/hpcclab/taskdrop/internal/pmf"
	"github.com/hpcclab/taskdrop/internal/runner"
	"github.com/hpcclab/taskdrop/internal/sim"
	"github.com/hpcclab/taskdrop/internal/workload"
)

// TrialSpec is one (system, mapper, dropper, workload) combination to be
// simulated repeatedly.
type TrialSpec struct {
	// Label names the combination in tables, e.g. "PAM+Heuristic".
	Label string
	// Profile selects the system profile via pet.ProfileFromSpec.
	Profile string
	// Mapper selects the mapping heuristic via mapping.FromSpec.
	Mapper string
	// Dropper selects the dropping policy via core.PolicyFromSpec, e.g.
	// "heuristic:beta=1.5,eta=3".
	Dropper string
	// Workload configures trace generation; it should already be scaled.
	Workload workload.Config
	// QueueCap overrides the machine queue bound when > 0 (default 6).
	QueueCap int
	// Failures enables machine failure injection for this spec.
	Failures sim.FailureConfig
	// ReactiveGrace sets the engine's grace window (approximate-computing
	// extension); utility is scored against the same window.
	ReactiveGrace pmf.Tick
	// MaxImpulses overrides the calculus compaction budget when > 0.
	MaxImpulses int
}

// Summary aggregates the per-trial results of one TrialSpec.
type Summary struct {
	Spec TrialSpec `json:"spec"`
	// Aggregate carries the mean ± 95% CI metrics (robustness, normalized
	// cost, drop mix, utility) shared with the public Scenario API.
	runner.Aggregate
	// Results holds the raw per-trial results, in trial order.
	Results []*sim.Result `json:"results"`
}

// Options tunes how the harness runs the figures.
type Options struct {
	// Trials per specification (paper: 30).
	Trials int
	// Scale in (0,1] shrinks every workload (task count and window
	// together), preserving arrival intensity; 1.0 is paper scale.
	Scale float64
	// BaseSeed seeds trial t of every spec with BaseSeed+t, so specs are
	// compared on identical traces.
	BaseSeed int64
	// Workers bounds simulation parallelism (default: GOMAXPROCS).
	Workers int
	// Progress, when non-nil, receives one line per completed spec.
	Progress io.Writer
	// Levels are the oversubscription task counts (default 20k/30k/40k).
	Levels []int
}

// DefaultOptions returns paper-faithful settings (30 trials, full scale).
func DefaultOptions() Options {
	return Options{
		Trials:   30,
		Scale:    1.0,
		BaseSeed: 7,
		Levels:   []int{20000, 30000, 40000},
	}
}

func (o *Options) normalize() {
	if o.Trials <= 0 {
		o.Trials = 1
	}
	if o.Scale <= 0 || o.Scale > 1 {
		o.Scale = 1
	}
	if o.Workers <= 0 {
		o.Workers = runtime.GOMAXPROCS(0)
	}
	if len(o.Levels) == 0 {
		o.Levels = []int{20000, 30000, 40000}
	}
}

// StandardWorkload returns the scaled workload config for an
// oversubscription level (total task count at full scale).
func (o Options) StandardWorkload(level int) workload.Config {
	cfg := workload.Config{
		TotalTasks: level,
		Window:     workload.StandardWindow,
		GammaSlack: workload.DefaultGammaSlack,
	}
	if o.Scale != 1.0 {
		cfg = cfg.Scaled(o.Scale)
	}
	return cfg
}

// Runner executes trial specifications with shared, cached PET matrices
// and traces.
type Runner struct {
	opt Options
	ctx context.Context

	mu       sync.Mutex
	matrices map[string]*pet.Matrix
	traces   map[traceKey]*workload.Trace
}

type traceKey struct {
	profile string
	cfg     workload.Config
	seed    int64
}

// NewRunner returns a runner with the given options.
func NewRunner(opt Options) *Runner {
	return NewRunnerContext(context.Background(), opt)
}

// NewRunnerContext returns a runner whose Run calls stop early, returning
// ctx.Err(), when ctx is cancelled.
func NewRunnerContext(ctx context.Context, opt Options) *Runner {
	opt.normalize()
	return &Runner{
		opt:      opt,
		ctx:      ctx,
		matrices: make(map[string]*pet.Matrix),
		traces:   make(map[traceKey]*workload.Trace),
	}
}

// Options returns the normalized options.
func (r *Runner) Options() Options { return r.opt }

// matrix returns the cached PET matrix for a profile spec.
func (r *Runner) matrix(profile string) (*pet.Matrix, error) {
	r.mu.Lock()
	defer r.mu.Unlock()
	if m, ok := r.matrices[profile]; ok {
		return m, nil
	}
	p, err := pet.ProfileFromSpec(profile)
	if err != nil {
		return nil, err
	}
	m := pet.Build(p, pet.DefaultProfileSeed, pet.DefaultBuildOptions())
	r.matrices[profile] = m
	return m, nil
}

// trace returns the cached trace for (profile, cfg, seed). Traces are
// read-only during simulation, so sharing across engines is safe.
func (r *Runner) trace(m *pet.Matrix, profile string, cfg workload.Config, seed int64) *workload.Trace {
	key := traceKey{profile: profile, cfg: cfg, seed: seed}
	r.mu.Lock()
	tr, ok := r.traces[key]
	r.mu.Unlock()
	if ok {
		return tr
	}
	tr = workload.Generate(m, cfg, seed)
	r.mu.Lock()
	r.traces[key] = tr
	r.mu.Unlock()
	return tr
}

// RunOne simulates a single trial of spec with the given trial index.
func (r *Runner) RunOne(spec TrialSpec, trial int) (*sim.Result, error) {
	return r.runOne(r.ctx, spec, trial)
}

func (r *Runner) runOne(ctx context.Context, spec TrialSpec, trial int) (*sim.Result, error) {
	m, err := r.matrix(spec.Profile)
	if err != nil {
		return nil, err
	}
	mapper, err := mapping.FromSpec(spec.Mapper)
	if err != nil {
		return nil, err
	}
	dropper, err := core.PolicyFromSpec(spec.Dropper)
	if err != nil {
		return nil, err
	}
	tr := r.trace(m, spec.Profile, spec.Workload, r.opt.BaseSeed+int64(trial))
	cfg := sim.DefaultConfig()
	if spec.QueueCap > 0 {
		cfg.QueueCap = spec.QueueCap
	}
	cfg.ReactiveGrace = spec.ReactiveGrace
	if spec.Failures.Enabled() {
		cfg.Failures = spec.Failures
		// Derive a failure seed per trial so failure schedules vary with
		// the workload while staying reproducible.
		cfg.Failures.Seed = spec.Failures.Seed + int64(trial)
	}
	eng := sim.New(m, tr, mapper, dropper, cfg)
	if spec.MaxImpulses > 0 {
		eng.Calc().MaxImpulses = spec.MaxImpulses
	}
	return eng.RunContext(ctx)
}

// Run simulates every spec × trial across the shared worker pool and
// returns one Summary per spec, in spec order. When the runner's context
// is cancelled mid-run it returns promptly with the context error.
func (r *Runner) Run(specs []TrialSpec) ([]Summary, error) {
	trials := r.opt.Trials
	perSpec := make([][]*sim.Result, len(specs))
	for i := range perSpec {
		perSpec[i] = make([]*sim.Result, trials)
	}
	var (
		mu   sync.Mutex
		done = make([]int, len(specs))
	)
	err := runner.ForEach(r.ctx, r.opt.Workers, len(specs)*trials, func(ctx context.Context, i int) error {
		s, t := i/trials, i%trials
		res, err := r.runOne(ctx, specs[s], t)
		if err != nil {
			return fmt.Errorf("%s (trial %d): %w", specs[s].Label, t, err)
		}
		mu.Lock()
		perSpec[s][t] = res
		done[s]++
		finished := done[s] == trials
		mu.Unlock()
		if finished && r.opt.Progress != nil {
			fmt.Fprintf(r.opt.Progress, "done %-28s (%d trials)\n", specs[s].Label, trials)
		}
		return nil
	})
	if err != nil {
		return nil, err
	}

	sums := make([]Summary, len(specs))
	for i, spec := range specs {
		sums[i] = Summary{Spec: spec, Aggregate: runner.Summarize(perSpec[i]), Results: perSpec[i]}
	}
	return sums, nil
}

// sortedLevels returns a copy of levels in ascending order.
func sortedLevels(levels []int) []int {
	out := append([]int(nil), levels...)
	sort.Ints(out)
	return out
}

// Package expt is the experiment harness that regenerates every table and
// figure of the paper's evaluation (§V): it expands figure definitions
// into trial specifications, runs the trials across a worker pool with
// paired workloads (identical traces for every combination being
// compared), and aggregates robustness, cost and drop-mix metrics into
// mean ± 95% CI summaries and printable tables.
package expt

import (
	"fmt"
	"io"
	"runtime"
	"sort"
	"sync"

	"github.com/hpcclab/taskdrop/internal/core"
	"github.com/hpcclab/taskdrop/internal/mapping"
	"github.com/hpcclab/taskdrop/internal/pet"
	"github.com/hpcclab/taskdrop/internal/pmf"
	"github.com/hpcclab/taskdrop/internal/sim"
	"github.com/hpcclab/taskdrop/internal/stats"
	"github.com/hpcclab/taskdrop/internal/workload"
)

// TrialSpec is one (system, mapper, dropper, workload) combination to be
// simulated repeatedly.
type TrialSpec struct {
	// Label names the combination in tables, e.g. "PAM+Heuristic".
	Label string
	// ProfileName selects the system profile via pet.ProfileByName.
	ProfileName string
	// MapperName selects the mapping heuristic via mapping.New.
	MapperName string
	// Dropper is the (already tuned) dropping policy.
	Dropper core.Policy
	// Workload configures trace generation; it should already be scaled.
	Workload workload.Config
	// QueueCap overrides the machine queue bound when > 0 (default 6).
	QueueCap int
	// Failures enables machine failure injection for this spec.
	Failures sim.FailureConfig
	// ReactiveGrace sets the engine's grace window (approximate-computing
	// extension); utility is scored against the same window.
	ReactiveGrace pmf.Tick
	// MaxImpulses overrides the calculus compaction budget when > 0.
	MaxImpulses int
}

// Summary aggregates the per-trial results of one TrialSpec.
type Summary struct {
	Spec TrialSpec
	// Robustness is % of measured tasks completed on time (the paper's
	// headline metric).
	Robustness stats.Summary
	// NormCost is Fig. 9's cost divided by robustness, scaled ×1000 for
	// readability ($ per 1000 robustness-percent).
	NormCost stats.Summary
	// ReactiveShare is the % of drops that were reactive (§V-F).
	ReactiveShare stats.Summary
	// Utility is the approximate-computing value metric (% of measured
	// tasks' maximum utility realized; equals Robustness at zero grace).
	Utility stats.Summary
	// ProactivePct / ReactivePct are % of measured tasks dropped each way.
	ProactivePct stats.Summary
	ReactivePct  stats.Summary
	// Results holds the raw per-trial results, in trial order.
	Results []*sim.Result
}

// Options tunes how the harness runs the figures.
type Options struct {
	// Trials per specification (paper: 30).
	Trials int
	// Scale in (0,1] shrinks every workload (task count and window
	// together), preserving arrival intensity; 1.0 is paper scale.
	Scale float64
	// BaseSeed seeds trial t of every spec with BaseSeed+t, so specs are
	// compared on identical traces.
	BaseSeed int64
	// Workers bounds simulation parallelism (default: GOMAXPROCS).
	Workers int
	// Progress, when non-nil, receives one line per completed spec.
	Progress io.Writer
	// Levels are the oversubscription task counts (default 20k/30k/40k).
	Levels []int
}

// DefaultOptions returns paper-faithful settings (30 trials, full scale).
func DefaultOptions() Options {
	return Options{
		Trials:   30,
		Scale:    1.0,
		BaseSeed: 7,
		Levels:   []int{20000, 30000, 40000},
	}
}

func (o *Options) normalize() {
	if o.Trials <= 0 {
		o.Trials = 1
	}
	if o.Scale <= 0 || o.Scale > 1 {
		o.Scale = 1
	}
	if o.Workers <= 0 {
		o.Workers = runtime.GOMAXPROCS(0)
	}
	if len(o.Levels) == 0 {
		o.Levels = []int{20000, 30000, 40000}
	}
}

// StandardWorkload returns the scaled workload config for an
// oversubscription level (total task count at full scale).
func (o Options) StandardWorkload(level int) workload.Config {
	cfg := workload.Config{
		TotalTasks: level,
		Window:     workload.StandardWindow,
		GammaSlack: workload.DefaultGammaSlack,
	}
	if o.Scale != 1.0 {
		cfg = cfg.Scaled(o.Scale)
	}
	return cfg
}

// Runner executes trial specifications with shared, cached PET matrices
// and traces.
type Runner struct {
	opt Options

	mu       sync.Mutex
	matrices map[string]*pet.Matrix
	traces   map[traceKey]*workload.Trace
}

type traceKey struct {
	profile string
	cfg     workload.Config
	seed    int64
}

// NewRunner returns a runner with the given options.
func NewRunner(opt Options) *Runner {
	opt.normalize()
	return &Runner{
		opt:      opt,
		matrices: make(map[string]*pet.Matrix),
		traces:   make(map[traceKey]*workload.Trace),
	}
}

// Options returns the normalized options.
func (r *Runner) Options() Options { return r.opt }

// matrix returns the cached PET matrix for a profile name.
func (r *Runner) matrix(name string) (*pet.Matrix, error) {
	r.mu.Lock()
	defer r.mu.Unlock()
	if m, ok := r.matrices[name]; ok {
		return m, nil
	}
	p, err := pet.ProfileByName(name)
	if err != nil {
		return nil, err
	}
	m := pet.Build(p, pet.DefaultProfileSeed, pet.DefaultBuildOptions())
	r.matrices[name] = m
	return m, nil
}

// trace returns the cached trace for (profile, cfg, seed). Traces are
// read-only during simulation, so sharing across engines is safe.
func (r *Runner) trace(m *pet.Matrix, profile string, cfg workload.Config, seed int64) *workload.Trace {
	key := traceKey{profile: profile, cfg: cfg, seed: seed}
	r.mu.Lock()
	tr, ok := r.traces[key]
	r.mu.Unlock()
	if ok {
		return tr
	}
	tr = workload.Generate(m, cfg, seed)
	r.mu.Lock()
	r.traces[key] = tr
	r.mu.Unlock()
	return tr
}

// RunOne simulates a single trial of spec with the given trial index.
func (r *Runner) RunOne(spec TrialSpec, trial int) (*sim.Result, error) {
	m, err := r.matrix(spec.ProfileName)
	if err != nil {
		return nil, err
	}
	mapper, err := mapping.New(spec.MapperName)
	if err != nil {
		return nil, err
	}
	tr := r.trace(m, spec.ProfileName, spec.Workload, r.opt.BaseSeed+int64(trial))
	cfg := sim.DefaultConfig()
	if spec.QueueCap > 0 {
		cfg.QueueCap = spec.QueueCap
	}
	cfg.ReactiveGrace = spec.ReactiveGrace
	if spec.Failures.Enabled() {
		cfg.Failures = spec.Failures
		// Derive a failure seed per trial so failure schedules vary with
		// the workload while staying reproducible.
		cfg.Failures.Seed = spec.Failures.Seed + int64(trial)
	}
	eng := sim.New(m, tr, mapper, spec.Dropper, cfg)
	if spec.MaxImpulses > 0 {
		eng.Calc().MaxImpulses = spec.MaxImpulses
	}
	return eng.Run(), nil
}

// Run simulates every spec × trial across the worker pool and returns one
// Summary per spec, in spec order.
func (r *Runner) Run(specs []TrialSpec) ([]Summary, error) {
	type job struct{ spec, trial int }
	type outcome struct {
		job
		res *sim.Result
		err error
	}
	jobs := make(chan job)
	outcomes := make(chan outcome)

	var wg sync.WaitGroup
	for w := 0; w < r.opt.Workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for j := range jobs {
				res, err := r.RunOne(specs[j.spec], j.trial)
				outcomes <- outcome{job: j, res: res, err: err}
			}
		}()
	}
	go func() {
		for s := range specs {
			for t := 0; t < r.opt.Trials; t++ {
				jobs <- job{spec: s, trial: t}
			}
		}
		close(jobs)
	}()
	go func() {
		wg.Wait()
		close(outcomes)
	}()

	perSpec := make([][]*sim.Result, len(specs))
	for i := range perSpec {
		perSpec[i] = make([]*sim.Result, r.opt.Trials)
	}
	done := make([]int, len(specs))
	var firstErr error
	for oc := range outcomes {
		if oc.err != nil {
			if firstErr == nil {
				firstErr = oc.err
			}
			continue
		}
		perSpec[oc.spec][oc.trial] = oc.res
		done[oc.spec]++
		if done[oc.spec] == r.opt.Trials && r.opt.Progress != nil {
			fmt.Fprintf(r.opt.Progress, "done %-28s (%d trials)\n", specs[oc.spec].Label, r.opt.Trials)
		}
	}
	if firstErr != nil {
		return nil, firstErr
	}

	sums := make([]Summary, len(specs))
	for i, spec := range specs {
		sums[i] = summarize(spec, perSpec[i])
	}
	return sums, nil
}

// summarize aggregates trial results into a Summary.
func summarize(spec TrialSpec, results []*sim.Result) Summary {
	var rob, cost, share, util, pro, rea []float64
	for _, res := range results {
		if res == nil {
			continue
		}
		rob = append(rob, res.RobustnessPct)
		cost = append(cost, res.CostPerRobustness*1000)
		share = append(share, 100*res.DropReactiveShare())
		util = append(util, res.UtilityPct)
		if res.Measured > 0 {
			pro = append(pro, 100*float64(res.MDroppedProactive)/float64(res.Measured))
			rea = append(rea, 100*float64(res.MDroppedReactive)/float64(res.Measured))
		}
	}
	return Summary{
		Spec:          spec,
		Robustness:    stats.Summarize(rob),
		NormCost:      stats.Summarize(cost),
		ReactiveShare: stats.Summarize(share),
		Utility:       stats.Summarize(util),
		ProactivePct:  stats.Summarize(pro),
		ReactivePct:   stats.Summarize(rea),
		Results:       results,
	}
}

// sortedLevels returns a copy of levels in ascending order.
func sortedLevels(levels []int) []int {
	out := append([]int(nil), levels...)
	sort.Ints(out)
	return out
}

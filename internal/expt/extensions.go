package expt

import (
	"fmt"

	taskdrop "github.com/hpcclab/taskdrop"
	"github.com/hpcclab/taskdrop/internal/pmf"
	"github.com/hpcclab/taskdrop/internal/sim"
	"github.com/hpcclab/taskdrop/internal/workload"
)

// Extension experiments beyond the paper's evaluation: the ablations
// DESIGN.md commits to, plus the two future-work directions of §VI
// (machine failures, approximate computing). They are declared exactly
// like the paper figures — axes plus pivots over the public Sweep API —
// and run through the same harness: `hcexp -fig ext-gamma`, etc.

// Extensions returns the extension experiments, after the paper figures in
// hcexp's registry.
func Extensions() []Figure {
	return []Figure{
		{
			ID:     "ext-gamma",
			Title:  "Ablation: deadline slack γ vs robustness (PAM ± proactive dropping, 30k tasks)",
			Items:  extGammaItems,
			Pivots: extGammaPivots,
		},
		{
			ID:     "ext-queue",
			Title:  "Ablation: machine queue capacity vs robustness (PAM+Heuristic, 30k tasks)",
			Items:  extQueueItems,
			Pivots: extQueuePivots,
		},
		{
			ID:     "ext-budget",
			Title:  "Ablation: PMF compaction budget vs robustness (PAM+Heuristic, 30k tasks)",
			Items:  extBudgetItems,
			Pivots: extBudgetPivots,
		},
		{
			ID:    "ext-mappers",
			Title: "Extension: all mapping heuristics ± proactive dropping (30k tasks)",
			Items: func(o Options) []taskdrop.SweepItem {
				return gridItems("spec", middleLevel(o.Levels),
					[]string{"MinMin", "MSD", "PAM", "FCFS", "SJF", "EDF", "MCT", "MET", "Sufferage", "KPB", "Random"})
			},
			Pivots: func(o Options) []taskdrop.Pivot {
				return gridPivots("spec", middleLevel(o.Levels))
			},
		},
		{
			ID:     "ext-failures",
			Title:  "Extension (§VI future work): robustness under machine failures",
			Items:  extFailuresItems,
			Pivots: extFailuresPivots,
		},
		{
			ID:     "ext-approx",
			Title:  "Extension (§VI future work): approximate computing — utility vs grace window",
			Items:  extApproxItems,
			Pivots: extApproxPivots,
		},
	}
}

// extGammaItems sweeps the deadline slack coefficient. Tight deadlines
// make proactive dropping essential; loose ones shrink its edge.
func extGammaItems(o Options) []taskdrop.SweepItem {
	return []taskdrop.SweepItem{
		taskdrop.Profiles("spec"),
		taskdrop.Mappers("PAM"),
		taskdrop.Gammas(1, 2, 3, 4, 5).Named("γ"),
		taskdrop.Droppers("heuristic", "reactdrop"),
		taskdrop.Tasks(middleLevel(o.Levels)),
		taskdrop.Baseline("reactdrop"),
	}
}

func extGammaPivots(Options) []taskdrop.Pivot {
	return []taskdrop.Pivot{{
		Title:       "Tasks completed on time (%) vs deadline slack γ (PAM, 30k tasks)",
		Row:         "γ",
		Col:         "dropper",
		ColFmt:      "+%s",
		Metric:      taskdrop.MetricRobustness,
		Delta:       true,
		DeltaHeader: "Δ (pp)",
	}}
}

// extQueueItems sweeps the machine queue bound. Longer queues compound
// completion-time uncertainty (§III motivates the limited queue), so
// robustness should flatten or dip as capacity grows.
func extQueueItems(o Options) []taskdrop.SweepItem {
	return []taskdrop.SweepItem{
		taskdrop.Profiles("spec"),
		taskdrop.Mappers("PAM"),
		taskdrop.Droppers("heuristic"),
		taskdrop.QueueCaps(2, 4, 6, 8, 12),
		taskdrop.Tasks(middleLevel(o.Levels)),
	}
}

func extQueuePivots(Options) []taskdrop.Pivot {
	return []taskdrop.Pivot{{
		Title:     "Tasks completed on time (%) vs queue capacity (PAM+Heuristic, 30k tasks)",
		Row:       "queuecap",
		RowHeader: "queue capacity",
		Columns: []taskdrop.MetricColumn{
			{Header: "robustness (%)", Metric: taskdrop.MetricRobustness},
			{Header: "proactive dropped (%)", Metric: taskdrop.MetricProactivePct},
		},
	}}
}

// extBudgetItems sweeps the calculus' impulse budget: the accuracy side
// of the compaction ablation (bench_test.go measures the speed side).
func extBudgetItems(o Options) []taskdrop.SweepItem {
	return []taskdrop.SweepItem{
		taskdrop.Profiles("spec"),
		taskdrop.Mappers("PAM"),
		taskdrop.Droppers("heuristic"),
		taskdrop.Budgets(8, 16, 32, 64),
		taskdrop.Tasks(middleLevel(o.Levels)),
	}
}

func extBudgetPivots(Options) []taskdrop.Pivot {
	return []taskdrop.Pivot{{
		Title:     "Tasks completed on time (%) vs PMF compaction budget (PAM+Heuristic, 30k tasks)",
		Row:       "budget",
		RowHeader: "max impulses",
		Columns: []taskdrop.MetricColumn{
			{Header: "robustness (%)", Metric: taskdrop.MetricRobustness},
		},
	}}
}

// extFailuresItems sweeps machine failure intensity (§VI future work:
// "resource failure" uncertainty). MTBF is per machine; repairs average a
// tenth of the MTBF.
func extFailuresItems(o Options) []taskdrop.SweepItem {
	mtbfs := []pmf.Tick{0, 20000, 10000, 5000}
	fcs := make([]sim.FailureConfig, len(mtbfs))
	labels := make([]string, len(mtbfs))
	for i, mtbf := range mtbfs {
		labels[i] = "no failures"
		if mtbf > 0 {
			fcs[i] = sim.FailureConfig{MTBF: mtbf, MeanRepair: mtbf / 10, Seed: 1000}
			labels[i] = fmt.Sprintf("%.0f", float64(mtbf)/1000)
		}
	}
	return []taskdrop.SweepItem{
		taskdrop.Profiles("spec"),
		taskdrop.Mappers("PAM"),
		taskdrop.FailurePlans(fcs...).Named("mtbf").As(labels...),
		taskdrop.Droppers("heuristic", "reactdrop"),
		taskdrop.Tasks(middleLevel(o.Levels)),
	}
}

func extFailuresPivots(Options) []taskdrop.Pivot {
	return []taskdrop.Pivot{{
		Title:     "Tasks completed on time (%) under machine failures (PAM, 30k tasks; repair = MTBF/10)",
		Row:       "mtbf",
		RowHeader: "MTBF (s)",
		Col:       "dropper",
		ColFmt:    "+%s",
		Metric:    taskdrop.MetricRobustness,
	}}
}

// extApproxItems compares the strict-deadline heuristic against the
// utility-driven ApproxHeuristic across grace windows, scoring both by
// realized utility (§VI future work: approximately computing tasks). The
// "approx" spec follows the engine's grace automatically, so grace and
// policy are independent axes — the grace axis moves both the engine's
// leeway and the approximate policy's value ramp together. Windows scale
// with the workload's mean deadline slack: γ·100 ms is a stable proxy for
// the SPEC system's (1+γ)·130 ms mean slack.
func extApproxItems(o Options) []taskdrop.SweepItem {
	fractions := []float64{0, 0.25, 0.5, 1.0}
	graces := make([]pmf.Tick, len(fractions))
	for i, f := range fractions {
		graces[i] = pmf.Tick(f * workload.DefaultGammaSlack * 100)
	}
	return []taskdrop.SweepItem{
		taskdrop.Profiles("spec"),
		taskdrop.Mappers("PAM"),
		taskdrop.Graces(graces...),
		taskdrop.Droppers("approx", "heuristic"),
		taskdrop.Tasks(middleLevel(o.Levels)),
	}
}

func extApproxPivots(Options) []taskdrop.Pivot {
	return []taskdrop.Pivot{{
		Title:       "Realized utility (%) vs grace window (PAM, 30k tasks; both policies scored with the same grace)",
		Row:         "grace",
		RowHeader:   "grace (ms)",
		Col:         "dropper",
		Metric:      taskdrop.MetricUtility,
		Delta:       true,
		DeltaHeader: "Δ (pp)",
	}}
}

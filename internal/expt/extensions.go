package expt

import (
	"fmt"

	"github.com/hpcclab/taskdrop/internal/pmf"
	"github.com/hpcclab/taskdrop/internal/sim"
)

// Extension experiments beyond the paper's evaluation: the ablations
// DESIGN.md commits to, plus the two future-work directions of §VI
// (machine failures, approximate computing). They run through the same
// harness as the paper figures: `hcexp -fig ext-gamma`, etc.

// Extensions returns the extension experiments, after the paper figures in
// hcexp's registry.
func Extensions() []Figure {
	return []Figure{
		{ID: "ext-gamma", Title: "Ablation: deadline slack γ vs robustness (PAM ± proactive dropping, 30k tasks)", Run: runExtGamma},
		{ID: "ext-queue", Title: "Ablation: machine queue capacity vs robustness (PAM+Heuristic, 30k tasks)", Run: runExtQueue},
		{ID: "ext-budget", Title: "Ablation: PMF compaction budget vs robustness (PAM+Heuristic, 30k tasks)", Run: runExtBudget},
		{ID: "ext-mappers", Title: "Extension: all mapping heuristics ± proactive dropping (30k tasks)", Run: runExtMappers},
		{ID: "ext-failures", Title: "Extension (§VI future work): robustness under machine failures", Run: runExtFailures},
		{ID: "ext-approx", Title: "Extension (§VI future work): approximate computing — utility vs grace window", Run: runExtApprox},
	}
}

// runExtGamma sweeps the deadline slack coefficient. Tight deadlines make
// proactive dropping essential; loose ones shrink its edge.
func runExtGamma(r *Runner) ([]Table, error) {
	o := r.Options()
	level := middleLevel(o.Levels)
	gammas := []float64{1, 2, 3, 4, 5}
	droppers := []string{"heuristic", "reactdrop"}
	var specs []TrialSpec
	for _, g := range gammas {
		for _, dp := range droppers {
			wl := o.StandardWorkload(level)
			wl.GammaSlack = g
			specs = append(specs, TrialSpec{
				Label:    fmt.Sprintf("γ=%.0f %s", g, policyLabel(dp)),
				Profile:  "spec",
				Mapper:   "PAM",
				Dropper:  dp,
				Workload: wl,
			})
		}
	}
	sums, err := r.Run(specs)
	if err != nil {
		return nil, err
	}
	tab := Table{
		ID:      "ext-gamma",
		Title:   "Tasks completed on time (%) vs deadline slack γ (PAM, 30k tasks)",
		Columns: []string{"γ", "+Heuristic", "+ReactDrop", "Δ (pp)"},
	}
	for gi, g := range gammas {
		h, rd := sums[2*gi], sums[2*gi+1]
		tab.Rows = append(tab.Rows, []string{
			fmt.Sprintf("%.0f", g),
			fmtSummary(h.Robustness),
			fmtSummary(rd.Robustness),
			fmt.Sprintf("%+.2f", h.Robustness.Mean-rd.Robustness.Mean),
		})
	}
	return []Table{tab}, nil
}

// runExtQueue sweeps the machine queue bound. Longer queues compound
// completion-time uncertainty (§III motivates the limited queue), so
// robustness should flatten or dip as capacity grows.
func runExtQueue(r *Runner) ([]Table, error) {
	o := r.Options()
	level := middleLevel(o.Levels)
	caps := []int{2, 4, 6, 8, 12}
	var specs []TrialSpec
	for _, qc := range caps {
		specs = append(specs, TrialSpec{
			Label:    fmt.Sprintf("cap=%d", qc),
			Profile:  "spec",
			Mapper:   "PAM",
			Dropper:  "heuristic",
			Workload: o.StandardWorkload(level),
			QueueCap: qc,
		})
	}
	sums, err := r.Run(specs)
	if err != nil {
		return nil, err
	}
	tab := Table{
		ID:      "ext-queue",
		Title:   "Tasks completed on time (%) vs queue capacity (PAM+Heuristic, 30k tasks)",
		Columns: []string{"queue capacity", "robustness (%)", "proactive dropped (%)"},
	}
	for i, qc := range caps {
		tab.Rows = append(tab.Rows, []string{
			fmt.Sprintf("%d", qc),
			fmtSummary(sums[i].Robustness),
			fmtSummary(sums[i].ProactivePct),
		})
	}
	return []Table{tab}, nil
}

// runExtBudget sweeps the calculus' impulse budget: the accuracy side of
// the compaction ablation (bench_test.go measures the speed side).
func runExtBudget(r *Runner) ([]Table, error) {
	o := r.Options()
	level := middleLevel(o.Levels)
	budgets := []int{8, 16, 32, 64}
	var specs []TrialSpec
	for _, b := range budgets {
		specs = append(specs, TrialSpec{
			Label:       fmt.Sprintf("budget=%d", b),
			Profile:     "spec",
			Mapper:      "PAM",
			Dropper:     "heuristic",
			Workload:    o.StandardWorkload(level),
			MaxImpulses: b,
		})
	}
	sums, err := r.Run(specs)
	if err != nil {
		return nil, err
	}
	tab := Table{
		ID:      "ext-budget",
		Title:   "Tasks completed on time (%) vs PMF compaction budget (PAM+Heuristic, 30k tasks)",
		Columns: []string{"max impulses", "robustness (%)"},
	}
	for i, b := range budgets {
		tab.Rows = append(tab.Rows, []string{fmt.Sprintf("%d", b), fmtSummary(sums[i].Robustness)})
	}
	return []Table{tab}, nil
}

// runExtMappers runs the full mapper registry ± proactive dropping — the
// broad version of the paper's "a good dropper forgives a poor mapper"
// observation.
func runExtMappers(r *Runner) ([]Table, error) {
	mappers := []string{"MinMin", "MSD", "PAM", "FCFS", "SJF", "EDF", "MCT", "MET", "Sufferage", "KPB", "Random"}
	tabs, err := mapperDropperGrid(r, "spec", middleLevel(r.Options().Levels), mappers)
	if err == nil {
		tabs[0].ID = "ext-mappers"
	}
	return tabs, err
}

// runExtFailures sweeps machine failure intensity (§VI future work:
// "resource failure" uncertainty). MTBF is per machine; repairs average a
// tenth of the MTBF.
func runExtFailures(r *Runner) ([]Table, error) {
	o := r.Options()
	level := middleLevel(o.Levels)
	mtbfs := []pmf.Tick{0, 20000, 10000, 5000}
	droppers := []string{"heuristic", "reactdrop"}
	var specs []TrialSpec
	for _, mtbf := range mtbfs {
		for _, dp := range droppers {
			fc := sim.FailureConfig{}
			if mtbf > 0 {
				fc = sim.FailureConfig{MTBF: mtbf, MeanRepair: mtbf / 10, Seed: 1000}
			}
			specs = append(specs, TrialSpec{
				Label:    fmt.Sprintf("mtbf=%d %s", mtbf, policyLabel(dp)),
				Profile:  "spec",
				Mapper:   "PAM",
				Dropper:  dp,
				Workload: o.StandardWorkload(level),
				Failures: fc,
			})
		}
	}
	sums, err := r.Run(specs)
	if err != nil {
		return nil, err
	}
	tab := Table{
		ID:      "ext-failures",
		Title:   "Tasks completed on time (%) under machine failures (PAM, 30k tasks; repair = MTBF/10)",
		Columns: []string{"MTBF (s)", "+Heuristic", "+ReactDrop"},
	}
	for mi, mtbf := range mtbfs {
		label := "no failures"
		if mtbf > 0 {
			label = fmt.Sprintf("%.0f", float64(mtbf)/1000)
		}
		tab.Rows = append(tab.Rows, []string{
			label,
			fmtSummary(sums[2*mi].Robustness),
			fmtSummary(sums[2*mi+1].Robustness),
		})
	}
	return []Table{tab}, nil
}

// runExtApprox compares the strict-deadline heuristic against the
// utility-driven ApproxHeuristic across grace windows, scoring both by
// realized utility (§VI future work: approximately computing tasks). The
// grace window scales with the workload's mean deadline slack.
func runExtApprox(r *Runner) ([]Table, error) {
	o := r.Options()
	level := middleLevel(o.Levels)
	fractions := []float64{0, 0.25, 0.5, 1.0}
	var specs []TrialSpec
	for _, f := range fractions {
		wl := o.StandardWorkload(level)
		// The mean deadline slack is avg_i + γ·avg_all ≈ (1+γ)·130 ms on
		// the SPEC system; γ·100 ms is a stable proxy that avoids
		// rebuilding the matrix here.
		grace := pmf.Tick(f * wl.GammaSlack * 100)
		for _, dp := range []string{fmt.Sprintf("approx:grace=%d", grace), "heuristic"} {
			specs = append(specs, TrialSpec{
				Label:         fmt.Sprintf("g=%d %s", grace, policyLabel(dp)),
				Profile:       "spec",
				Mapper:        "PAM",
				Dropper:       dp,
				Workload:      wl,
				ReactiveGrace: grace,
			})
		}
	}
	sums, err := r.Run(specs)
	if err != nil {
		return nil, err
	}
	tab := Table{
		ID:      "ext-approx",
		Title:   "Realized utility (%) vs grace window (PAM, 30k tasks; both policies scored with the same grace)",
		Columns: []string{"grace (ms)", "ApproxHeuristic", "Heuristic", "Δ (pp)"},
	}
	for fi := range fractions {
		a, h := sums[2*fi], sums[2*fi+1]
		tab.Rows = append(tab.Rows, []string{
			fmt.Sprintf("%d", a.Spec.ReactiveGrace),
			fmtSummary(a.Utility),
			fmtSummary(h.Utility),
			fmt.Sprintf("%+.2f", a.Utility.Mean-h.Utility.Mean),
		})
	}
	return []Table{tab}, nil
}

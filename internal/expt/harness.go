// Package expt regenerates every table and figure of the paper's
// evaluation (§V) plus the extension experiments. Each figure is a pure
// declaration: a sweep definition (axes over the public taskdrop.Sweep
// API) and the pivots that lay the sweep's cells out as the paper's
// tables. All running, pairing and aggregation machinery lives in the
// public API — the harness owns no execution code of its own.
package expt

import (
	"context"
	"fmt"
	"io"
	"sort"

	taskdrop "github.com/hpcclab/taskdrop"
	"github.com/hpcclab/taskdrop/internal/tab"
)

// Table is the printable result type shared with the public sweep API.
type Table = tab.Table

// Options tunes how the harness runs the figures.
type Options struct {
	// Trials per cell (paper: 30).
	Trials int
	// Scale in (0,1] shrinks every workload (task count and window
	// together), preserving arrival intensity; 1.0 is paper scale.
	Scale float64
	// BaseSeed seeds trial t of every cell with BaseSeed+t, so cells are
	// compared on identical traces.
	BaseSeed int64
	// Workers bounds simulation parallelism (default: GOMAXPROCS).
	Workers int
	// Progress, when non-nil, receives one line per completed cell.
	Progress io.Writer
	// Levels are the oversubscription task counts (default 20k/30k/40k).
	Levels []int
}

// DefaultOptions returns paper-faithful settings (30 trials, full scale).
func DefaultOptions() Options {
	return Options{
		Trials:   30,
		Scale:    1.0,
		BaseSeed: 7,
		Levels:   []int{20000, 30000, 40000},
	}
}

func (o *Options) normalize() {
	if o.Trials <= 0 {
		o.Trials = 1
	}
	if o.Scale <= 0 || o.Scale > 1 {
		o.Scale = 1
	}
	if len(o.Levels) == 0 {
		o.Levels = []int{20000, 30000, 40000}
	}
}

// sweepItems converts the harness options into sweep-level items appended
// after a figure's own axes.
func (o Options) sweepItems() []taskdrop.SweepItem {
	items := []taskdrop.SweepItem{
		taskdrop.SweepTrials(o.Trials),
		taskdrop.SweepSeed(o.BaseSeed),
		taskdrop.SweepWorkers(o.Workers),
		taskdrop.SweepScale(o.Scale),
	}
	if o.Progress != nil {
		items = append(items, taskdrop.OnCellDone(func(done, total int, cell *taskdrop.CellResult) {
			fmt.Fprintf(o.Progress, "done %-28s (%d trials, %d/%d cells)\n", cell.Label, o.Trials, done, total)
		}))
	}
	return items
}

// Figure is one declaratively defined experiment: the sweep axes it runs
// and the pivots that render its tables.
type Figure struct {
	ID    string
	Title string
	// Items returns the figure's sweep definition (axes and any
	// figure-specific sweep options) for the harness options.
	Items func(o Options) []taskdrop.SweepItem
	// Pivots lays the sweep out as the figure's tables; a pivot with an
	// empty ID inherits the figure's.
	Pivots func(o Options) []taskdrop.Pivot
}

// Run executes the figure's sweep and renders its tables. When ctx is
// cancelled mid-run it returns promptly with the context error.
func (f Figure) Run(ctx context.Context, o Options) ([]Table, error) {
	o.normalize()
	sw, err := taskdrop.NewSweep(append(f.Items(o), o.sweepItems()...)...)
	if err != nil {
		return nil, fmt.Errorf("%s: %w", f.ID, err)
	}
	res, err := sw.Run(ctx)
	if err != nil {
		return nil, err
	}
	var tabs []Table
	for _, p := range f.Pivots(o) {
		if p.ID == "" {
			p.ID = f.ID
		}
		t, err := res.Pivot(p)
		if err != nil {
			return nil, fmt.Errorf("%s: %w", f.ID, err)
		}
		tabs = append(tabs, *t)
	}
	return tabs, nil
}

// RunSweep executes a user-declared sweep grammar string (see
// SweepFromSpec) under the harness options and returns its flat result
// table — the -sweep path of cmd/hcexp.
func RunSweep(ctx context.Context, o Options, grammar string) (*Table, error) {
	o.normalize()
	items, err := SweepFromSpec(grammar)
	if err != nil {
		return nil, err
	}
	sw, err := taskdrop.NewSweep(append(items, o.sweepItems()...)...)
	if err != nil {
		return nil, err
	}
	res, err := sw.Run(ctx)
	if err != nil {
		return nil, err
	}
	return res.Table(), nil
}

// sortedLevels returns a copy of levels in ascending order.
func sortedLevels(levels []int) []int {
	out := append([]int(nil), levels...)
	sort.Ints(out)
	return out
}

// levelLabel renders an oversubscription level as "20k".
func levelLabel(level int) string {
	if level%1000 == 0 {
		return fmt.Sprintf("%dk", level/1000)
	}
	return fmt.Sprintf("%d", level)
}

// middleLevel picks the paper's 30k level (the middle of the sorted
// levels).
func middleLevel(levels []int) int {
	s := sortedLevels(levels)
	return s[len(s)/2]
}

// lowestLevel picks the paper's 20k level.
func lowestLevel(levels []int) int { return sortedLevels(levels)[0] }

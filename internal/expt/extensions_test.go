package expt

import (
	"testing"

	"github.com/hpcclab/taskdrop/internal/sim"
)

func TestExtensionsRegistered(t *testing.T) {
	exts := Extensions()
	wantIDs := []string{"ext-gamma", "ext-queue", "ext-budget", "ext-mappers", "ext-failures", "ext-approx"}
	if len(exts) != len(wantIDs) {
		t.Fatalf("got %d extensions, want %d", len(exts), len(wantIDs))
	}
	for i, id := range wantIDs {
		if exts[i].ID != id {
			t.Errorf("extension %d = %q, want %q", i, exts[i].ID, id)
		}
		if _, ok := ByID(id); !ok {
			t.Errorf("ByID(%q) missing", id)
		}
	}
	// All() = paper figures + extensions.
	if len(All()) != len(PaperFigures())+len(exts) {
		t.Error("All() does not include extensions")
	}
}

func TestExtensionSpecsApplied(t *testing.T) {
	// The runner must honor the extension knobs on TrialSpec.
	o := tinyOptions()
	r := NewRunner(o)

	// Queue capacity.
	spec := tinySpec(o, "cap", "PAM", "heuristic")
	spec.QueueCap = 2
	res, err := r.RunOne(spec, 0)
	if err != nil {
		t.Fatal(err)
	}
	if err := res.Validate(); err != nil {
		t.Fatal(err)
	}

	// Failure injection: aggressive failures must kill at least one task.
	spec = tinySpec(o, "fail", "PAM", "heuristic")
	spec.Failures = sim.FailureConfig{MTBF: 30, MeanRepair: 20, Seed: 5}
	res, err = r.RunOne(spec, 0)
	if err != nil {
		t.Fatal(err)
	}
	if res.Failed == 0 {
		t.Fatalf("failure injection inert: %+v", res)
	}

	// Reactive grace: utility must be at least robustness.
	spec = tinySpec(o, "grace", "PAM", "approx:grace=150")
	spec.ReactiveGrace = 150
	res, err = r.RunOne(spec, 0)
	if err != nil {
		t.Fatal(err)
	}
	if res.UtilityPct < res.RobustnessPct-1e-9 {
		t.Fatalf("utility %v < robustness %v", res.UtilityPct, res.RobustnessPct)
	}

	// Compaction budget.
	spec = tinySpec(o, "budget", "PAM", "heuristic")
	spec.MaxImpulses = 8
	if _, err := r.RunOne(spec, 0); err != nil {
		t.Fatal(err)
	}
}

func TestExtensionFigureSmoke(t *testing.T) {
	if testing.Short() {
		t.Skip("extension smoke is slow")
	}
	o := tinyOptions()
	o.Trials = 1
	r := NewRunner(o)
	for _, fig := range Extensions() {
		tabs, err := fig.Run(r)
		if err != nil {
			t.Fatalf("%s: %v", fig.ID, err)
		}
		if len(tabs) == 0 || len(tabs[0].Rows) == 0 {
			t.Fatalf("%s produced no data", fig.ID)
		}
	}
}

package expt

import (
	"context"
	"reflect"
	"testing"
)

func TestExtensionsRegistered(t *testing.T) {
	exts := Extensions()
	wantIDs := []string{"ext-gamma", "ext-queue", "ext-budget", "ext-mappers", "ext-failures", "ext-approx"}
	if len(exts) != len(wantIDs) {
		t.Fatalf("got %d extensions, want %d", len(exts), len(wantIDs))
	}
	for i, id := range wantIDs {
		if exts[i].ID != id {
			t.Errorf("extension %d = %q, want %q", i, exts[i].ID, id)
		}
		if _, ok := ByID(id); !ok {
			t.Errorf("ByID(%q) missing", id)
		}
	}
	// All() = paper figures + extensions.
	if len(All()) != len(PaperFigures())+len(exts) {
		t.Error("All() does not include extensions")
	}
}

func TestExtensionFigureSmoke(t *testing.T) {
	if testing.Short() {
		t.Skip("extension smoke is slow")
	}
	o := tinyOptions()
	for _, fig := range Extensions() {
		tabs, err := fig.Run(context.Background(), o)
		if err != nil {
			t.Fatalf("%s: %v", fig.ID, err)
		}
		if len(tabs) == 0 || len(tabs[0].Rows) == 0 {
			t.Fatalf("%s produced no data", fig.ID)
		}
		for _, row := range tabs[0].Rows {
			if len(row) != len(tabs[0].Columns) {
				t.Fatalf("%s row width %d != %d columns", fig.ID, len(row), len(tabs[0].Columns))
			}
		}
	}
}

func TestExtensionTableLayoutPreserved(t *testing.T) {
	if testing.Short() {
		t.Skip("extension layout test runs sweeps")
	}
	o := tinyOptions()

	f, _ := ByID("ext-gamma")
	tabs, err := f.Run(context.Background(), o)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(tabs[0].Columns, []string{"γ", "+Heuristic", "+ReactDrop", "Δ (pp)"}) {
		t.Fatalf("ext-gamma columns = %v", tabs[0].Columns)
	}
	if tabs[0].Rows[0][0] != "1" || tabs[0].Rows[4][0] != "5" {
		t.Fatalf("ext-gamma rows = %v", tabs[0].Rows)
	}

	f, _ = ByID("ext-failures")
	tabs, err = f.Run(context.Background(), o)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(tabs[0].Columns, []string{"MTBF (s)", "+Heuristic", "+ReactDrop"}) {
		t.Fatalf("ext-failures columns = %v", tabs[0].Columns)
	}
	if tabs[0].Rows[0][0] != "no failures" || tabs[0].Rows[1][0] != "20" {
		t.Fatalf("ext-failures rows = %v", tabs[0].Rows)
	}

	f, _ = ByID("ext-approx")
	tabs, err = f.Run(context.Background(), o)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(tabs[0].Columns, []string{"grace (ms)", "ApproxHeuristic", "Heuristic", "Δ (pp)"}) {
		t.Fatalf("ext-approx columns = %v", tabs[0].Columns)
	}
	if tabs[0].Rows[0][0] != "0" || tabs[0].Rows[3][0] != "300" {
		t.Fatalf("ext-approx rows = %v", tabs[0].Rows)
	}
}

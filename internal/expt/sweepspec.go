package expt

import (
	"fmt"
	"strconv"

	taskdrop "github.com/hpcclab/taskdrop"
	"github.com/hpcclab/taskdrop/internal/pmf"
	"github.com/hpcclab/taskdrop/internal/sim"
	"github.com/hpcclab/taskdrop/internal/spec"
)

// SweepFromSpec converts a declarative -sweep grammar string (see
// spec.ParseSweep) into the public API's sweep items. Recognized axis
// keys:
//
//	profile   system profiles (registry specs)
//	mapper    mapping heuristics (registry specs)
//	dropper   dropping policies (registry specs)
//	tasks     oversubscription levels (ints)
//	gamma     deadline slack coefficients (floats)
//	window    arrival windows in ticks (ints)
//	queuecap  machine queue bounds (ints)
//	grace     reactive grace windows in ticks (ints)
//	budget    PMF compaction budgets (ints)
//	shards    cluster shard counts (ints; see WithShards)
//	router    shard-routing policies (registry specs; see NewRouter)
//	mtbf      machine failure MTBFs in ticks (ints, 0 = none;
//	          repair = MTBF/10, failure seed 1000)
//	churn     machine churn mean kill intervals in ticks (ints, 0 = none;
//	          mean downtime = interval/10, churn seed 2000; see WithChurn)
//
// plus the baseline=<value> directive designating the paired-comparison
// baseline cell value.
func SweepFromSpec(grammar string) ([]taskdrop.SweepItem, error) {
	parsed, err := spec.ParseSweep(grammar)
	if err != nil {
		return nil, err
	}
	var items []taskdrop.SweepItem
	for _, ax := range parsed.Axes {
		switch ax.Key {
		case "profile":
			items = append(items, taskdrop.Profiles(ax.Values...))
		case "mapper":
			items = append(items, taskdrop.Mappers(ax.Values...))
		case "dropper":
			items = append(items, taskdrop.Droppers(ax.Values...))
		case "tasks":
			ns, err := sweepInts(ax)
			if err != nil {
				return nil, err
			}
			items = append(items, taskdrop.Tasks(ns...))
		case "gamma":
			gs := make([]float64, len(ax.Values))
			for i, v := range ax.Values {
				g, err := strconv.ParseFloat(v, 64)
				if err != nil {
					return nil, fmt.Errorf("expt: sweep axis %s value %q is not a number", ax.Key, v)
				}
				gs[i] = g
			}
			items = append(items, taskdrop.Gammas(gs...))
		case "window":
			ns, err := sweepInts(ax)
			if err != nil {
				return nil, err
			}
			ws := make([]pmf.Tick, len(ns))
			for i, n := range ns {
				ws[i] = pmf.Tick(n)
			}
			items = append(items, taskdrop.Windows(ws...))
		case "queuecap":
			ns, err := sweepInts(ax)
			if err != nil {
				return nil, err
			}
			items = append(items, taskdrop.QueueCaps(ns...))
		case "grace":
			ns, err := sweepInts(ax)
			if err != nil {
				return nil, err
			}
			gs := make([]pmf.Tick, len(ns))
			for i, n := range ns {
				gs[i] = pmf.Tick(n)
			}
			items = append(items, taskdrop.Graces(gs...))
		case "budget":
			ns, err := sweepInts(ax)
			if err != nil {
				return nil, err
			}
			items = append(items, taskdrop.Budgets(ns...))
		case "shards":
			ns, err := sweepInts(ax)
			if err != nil {
				return nil, err
			}
			items = append(items, taskdrop.Shards(ns...))
		case "router":
			items = append(items, taskdrop.Routers(ax.Values...))
		case "mtbf":
			ns, err := sweepInts(ax)
			if err != nil {
				return nil, err
			}
			fcs := make([]sim.FailureConfig, len(ns))
			for i, n := range ns {
				if n > 0 {
					fcs[i] = sim.FailureConfig{MTBF: pmf.Tick(n), MeanRepair: pmf.Tick(n) / 10, Seed: 1000}
				}
			}
			items = append(items, taskdrop.FailurePlans(fcs...).Named("mtbf"))
		case "churn":
			ns, err := sweepInts(ax)
			if err != nil {
				return nil, err
			}
			ccs := make([]sim.ChurnConfig, len(ns))
			for i, n := range ns {
				if n > 0 {
					down := pmf.Tick(n) / 10
					if down < 1 {
						down = 1
					}
					ccs[i] = sim.ChurnConfig{MeanInterval: pmf.Tick(n), MeanDown: down, Seed: 2000}
				}
			}
			items = append(items, taskdrop.ChurnPlans(ccs...))
		default:
			return nil, fmt.Errorf("expt: unknown sweep axis %q (known: profile mapper dropper tasks gamma window queuecap grace budget shards router mtbf churn)", ax.Key)
		}
	}
	if parsed.Baseline != "" {
		items = append(items, taskdrop.Baseline(parsed.Baseline))
	}
	return items, nil
}

// sweepInts parses one axis' values as integers.
func sweepInts(ax spec.SweepAxis) ([]int, error) {
	ns := make([]int, len(ax.Values))
	for i, v := range ax.Values {
		n, err := strconv.Atoi(v)
		if err != nil {
			return nil, fmt.Errorf("expt: sweep axis %s value %q is not an integer", ax.Key, v)
		}
		ns[i] = n
	}
	return ns, nil
}

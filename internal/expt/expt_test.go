package expt

import (
	"bytes"
	"context"
	"errors"
	"strings"
	"testing"

	"github.com/hpcclab/taskdrop/internal/workload"
)

// tinyOptions keeps harness tests fast: three trials at 1% scale.
func tinyOptions() Options {
	o := DefaultOptions()
	o.Trials = 3
	o.Scale = 0.01
	o.Workers = 2
	return o
}

func tinySpec(o Options, label, mapper, dropper string) TrialSpec {
	return TrialSpec{
		Label:    label,
		Profile:  "video",
		Mapper:   mapper,
		Dropper:  dropper,
		Workload: o.StandardWorkload(20000),
	}
}

func TestRunnerProducesSummaries(t *testing.T) {
	o := tinyOptions()
	r := NewRunner(o)
	specs := []TrialSpec{
		tinySpec(o, "PAM+Heuristic", "PAM", "heuristic"),
		tinySpec(o, "PAM+ReactDrop", "PAM", "reactdrop"),
	}
	sums, err := r.Run(specs)
	if err != nil {
		t.Fatal(err)
	}
	if len(sums) != 2 {
		t.Fatalf("got %d summaries", len(sums))
	}
	for i, s := range sums {
		if s.Robustness.N != o.Trials {
			t.Fatalf("summary %d has %d observations, want %d", i, s.Robustness.N, o.Trials)
		}
		if s.Robustness.Mean < 0 || s.Robustness.Mean > 100 {
			t.Fatalf("summary %d robustness = %v", i, s.Robustness.Mean)
		}
		if len(s.Results) != o.Trials {
			t.Fatalf("summary %d has %d results", i, len(s.Results))
		}
		for _, res := range s.Results {
			if err := res.Validate(); err != nil {
				t.Fatal(err)
			}
		}
	}
}

func TestRunnerPairsWorkloads(t *testing.T) {
	// Two specs with the same workload must see identical traces: with an
	// identical policy the results must match exactly, trial by trial.
	o := tinyOptions()
	r := NewRunner(o)
	specs := []TrialSpec{
		tinySpec(o, "a", "MinMin", "heuristic"),
		tinySpec(o, "b", "MinMin", "heuristic"),
	}
	sums, err := r.Run(specs)
	if err != nil {
		t.Fatal(err)
	}
	for tr := 0; tr < o.Trials; tr++ {
		ra, rb := sums[0].Results[tr], sums[1].Results[tr]
		if *ra != *rb {
			t.Fatalf("trial %d diverged across identical specs:\n%+v\n%+v", tr, ra, rb)
		}
	}
}

func TestRunnerRunOneDeterministic(t *testing.T) {
	o := tinyOptions()
	spec := tinySpec(o, "x", "PAM", "heuristic")
	r1, err := NewRunner(o).RunOne(spec, 0)
	if err != nil {
		t.Fatal(err)
	}
	r2, err := NewRunner(o).RunOne(spec, 0)
	if err != nil {
		t.Fatal(err)
	}
	if *r1 != *r2 {
		t.Fatalf("RunOne not deterministic:\n%+v\n%+v", r1, r2)
	}
}

func TestRunnerRejectsUnknownNames(t *testing.T) {
	o := tinyOptions()
	r := NewRunner(o)
	if _, err := r.RunOne(TrialSpec{Profile: "nope", Mapper: "PAM",
		Dropper: "reactdrop", Workload: o.StandardWorkload(20000)}, 0); err == nil {
		t.Error("unknown profile must error")
	}
	if _, err := r.RunOne(TrialSpec{Profile: "video", Mapper: "nope",
		Dropper: "reactdrop", Workload: o.StandardWorkload(20000)}, 0); err == nil {
		t.Error("unknown mapper must error")
	}
	if _, err := r.RunOne(TrialSpec{Profile: "video", Mapper: "PAM",
		Dropper: "heuristic:bogus=1", Workload: o.StandardWorkload(20000)}, 0); err == nil {
		t.Error("bad dropper spec must error")
	}
	if _, err := r.Run([]TrialSpec{{Profile: "video", Mapper: "nope",
		Dropper: "reactdrop", Workload: o.StandardWorkload(20000)}}); err == nil {
		t.Error("Run must propagate spec errors")
	}
}

func TestRunnerHonorsCancelledContext(t *testing.T) {
	o := tinyOptions()
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	r := NewRunnerContext(ctx, o)
	if _, err := r.Run([]TrialSpec{tinySpec(o, "x", "PAM", "heuristic")}); !errors.Is(err, context.Canceled) {
		t.Fatalf("Run with cancelled context = %v, want context.Canceled", err)
	}
}

func TestRunnerParameterizedDropperSpec(t *testing.T) {
	// A parameterized spec must resolve through the unified registry and
	// differ from the default tuning on the same paired trace.
	o := tinyOptions()
	r := NewRunner(o)
	sums, err := r.Run([]TrialSpec{
		tinySpec(o, "default", "PAM", "heuristic"),
		tinySpec(o, "lenient", "PAM", "heuristic:beta=4,eta=1"),
	})
	if err != nil {
		t.Fatal(err)
	}
	if sums[0].Robustness.N != o.Trials || sums[1].Robustness.N != o.Trials {
		t.Fatalf("missing trials: %+v", sums)
	}
}

func TestOptionsNormalize(t *testing.T) {
	var o Options
	o.normalize()
	if o.Trials != 1 || o.Scale != 1 || o.Workers < 1 || len(o.Levels) != 3 {
		t.Fatalf("normalized = %+v", o)
	}
}

func TestStandardWorkloadScaling(t *testing.T) {
	o := DefaultOptions()
	o.Scale = 0.1
	cfg := o.StandardWorkload(20000)
	if cfg.TotalTasks != 2000 {
		t.Fatalf("tasks = %d", cfg.TotalTasks)
	}
	if cfg.Window != workload.StandardWindow/10 {
		t.Fatalf("window = %d", cfg.Window)
	}
	full := DefaultOptions().StandardWorkload(20000)
	if full.TotalTasks != 20000 || full.Window != workload.StandardWindow {
		t.Fatalf("full = %+v", full)
	}
}

func TestFigureRegistry(t *testing.T) {
	paper := PaperFigures()
	wantIDs := []string{"fig5", "fig6", "fig7a", "fig7b", "fig8", "fig9", "fig10", "drops"}
	if len(paper) != len(wantIDs) {
		t.Fatalf("got %d paper figures, want %d", len(paper), len(wantIDs))
	}
	for i, id := range wantIDs {
		if paper[i].ID != id {
			t.Errorf("figure %d = %q, want %q", i, paper[i].ID, id)
		}
		f, ok := ByID(id)
		if !ok || f.ID != id || f.Run == nil || f.Title == "" {
			t.Errorf("ByID(%q) broken", id)
		}
	}
	if _, ok := ByID("fig99"); ok {
		t.Error("ByID must reject unknown ids")
	}
}

func TestFigureSmoke(t *testing.T) {
	// Every figure must produce a well-formed table at minimal scale.
	if testing.Short() {
		t.Skip("figure smoke test is slow")
	}
	o := tinyOptions()
	o.Trials = 1
	o.Levels = []int{20000, 30000, 40000}
	r := NewRunner(o)
	for _, fig := range PaperFigures() {
		tabs, err := fig.Run(r)
		if err != nil {
			t.Fatalf("%s: %v", fig.ID, err)
		}
		if len(tabs) == 0 {
			t.Fatalf("%s produced no tables", fig.ID)
		}
		for _, tab := range tabs {
			if tab.ID == "" || len(tab.Columns) == 0 || len(tab.Rows) == 0 {
				t.Fatalf("%s produced malformed table %+v", fig.ID, tab)
			}
			for _, row := range tab.Rows {
				if len(row) != len(tab.Columns) {
					t.Fatalf("%s row width %d != %d columns", fig.ID, len(row), len(tab.Columns))
				}
			}
		}
	}
}

func TestTableFprint(t *testing.T) {
	tab := Table{
		ID:      "tX",
		Title:   "demo",
		Columns: []string{"name", "value"},
		Rows:    [][]string{{"alpha", "1.00"}, {"beta-long", "22.5"}},
	}
	var b bytes.Buffer
	tab.Fprint(&b)
	out := b.String()
	for _, want := range []string{"tX — demo", "name", "alpha", "beta-long", "22.5"} {
		if !strings.Contains(out, want) {
			t.Fatalf("output missing %q:\n%s", want, out)
		}
	}
}

func TestTableCSV(t *testing.T) {
	tab := Table{
		ID:      "t1",
		Columns: []string{"a", "b"},
		Rows:    [][]string{{"x,y", `say "hi"`}},
	}
	got := tab.CSV()
	want := "a,b\n\"x,y\",\"say \"\"hi\"\"\"\n"
	if got != want {
		t.Fatalf("CSV = %q, want %q", got, want)
	}
}

func TestChart(t *testing.T) {
	var b bytes.Buffer
	Chart(&b, "demo", "%", []string{"one", "two"}, []float64{50, 100}, 10)
	out := b.String()
	if !strings.Contains(out, "one") || !strings.Contains(out, "##########") {
		t.Fatalf("chart output:\n%s", out)
	}
	lines := strings.Split(strings.TrimSpace(out), "\n")
	if len(lines) != 3 {
		t.Fatalf("chart has %d lines", len(lines))
	}
	// The 50% bar must be half the 100% bar.
	if strings.Count(lines[1], "#") != 5 {
		t.Fatalf("half bar = %q", lines[1])
	}
}

func TestLevelHelpers(t *testing.T) {
	if levelLabel(20000) != "20k" || levelLabel(1234) != "1234" {
		t.Error("levelLabel broken")
	}
	if middleLevel([]int{40000, 20000, 30000}) != 30000 {
		t.Error("middleLevel broken")
	}
	if lowestLevel([]int{40000, 20000, 30000}) != 20000 {
		t.Error("lowestLevel broken")
	}
	got := levelLabels([]int{20000, 30000})
	if got[0] != "20k tasks" || got[1] != "30k tasks" {
		t.Errorf("levelLabels = %v", got)
	}
}

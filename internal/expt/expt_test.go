package expt

import (
	"context"
	"errors"
	"reflect"
	"strings"
	"testing"

	taskdrop "github.com/hpcclab/taskdrop"
)

// tinyOptions keeps harness tests fast: one trial at 1% scale.
func tinyOptions() Options {
	o := DefaultOptions()
	o.Trials = 1
	o.Scale = 0.01
	o.Workers = 2
	return o
}

func TestFigureRegistry(t *testing.T) {
	paper := PaperFigures()
	wantIDs := []string{"fig5", "fig6", "fig7a", "fig7b", "fig8", "fig9", "fig10", "drops"}
	if len(paper) != len(wantIDs) {
		t.Fatalf("got %d paper figures, want %d", len(paper), len(wantIDs))
	}
	for i, id := range wantIDs {
		if paper[i].ID != id {
			t.Errorf("figure %d = %q, want %q", i, paper[i].ID, id)
		}
		f, ok := ByID(id)
		if !ok || f.ID != id || f.Title == "" {
			t.Errorf("ByID(%q) broken", id)
		}
	}
	if _, ok := ByID("fig99"); ok {
		t.Error("ByID must reject unknown ids")
	}
}

func TestFiguresAreDeclarative(t *testing.T) {
	// Every figure must be a pure declaration: sweep items plus pivots.
	// There is no per-figure runner to forget about — the harness runs
	// everything through one generic path.
	o := tinyOptions()
	for _, f := range All() {
		if f.Items == nil || f.Pivots == nil {
			t.Fatalf("%s is not declarative: Items/Pivots missing", f.ID)
		}
		items := f.Items(o)
		if len(items) == 0 {
			t.Fatalf("%s declares no sweep items", f.ID)
		}
		// The declaration must expand into a valid sweep without running.
		if _, err := taskdrop.NewSweep(append(items, o.sweepItems()...)...); err != nil {
			t.Fatalf("%s: %v", f.ID, err)
		}
		if len(f.Pivots(o)) == 0 {
			t.Fatalf("%s declares no pivots", f.ID)
		}
	}
}

func TestOptionsNormalize(t *testing.T) {
	var o Options
	o.normalize()
	if o.Trials != 1 || o.Scale != 1 || len(o.Levels) != 3 {
		t.Fatalf("normalized = %+v", o)
	}
}

func TestFigureTableLayoutPreserved(t *testing.T) {
	// The declarative rewrite must keep the published table layouts: same
	// IDs, column headers and row labels as the original harness.
	if testing.Short() {
		t.Skip("figure layout test runs sweeps")
	}
	o := tinyOptions()
	run := func(id string) Table {
		f, ok := ByID(id)
		if !ok {
			t.Fatalf("missing figure %s", id)
		}
		tabs, err := f.Run(context.Background(), o)
		if err != nil {
			t.Fatalf("%s: %v", id, err)
		}
		if len(tabs) != 1 {
			t.Fatalf("%s produced %d tables", id, len(tabs))
		}
		return tabs[0]
	}

	fig5 := run("fig5")
	if fig5.ID != "fig5" {
		t.Fatalf("fig5 table ID = %q", fig5.ID)
	}
	if !reflect.DeepEqual(fig5.Columns, []string{"η", "20k tasks", "30k tasks", "40k tasks"}) {
		t.Fatalf("fig5 columns = %v", fig5.Columns)
	}
	for i, want := range []string{"1", "2", "3", "4", "5"} {
		if fig5.Rows[i][0] != want {
			t.Fatalf("fig5 row %d label = %q, want %q", i, fig5.Rows[i][0], want)
		}
	}

	fig7a := run("fig7a")
	if !reflect.DeepEqual(fig7a.Columns, []string{"mapper", "+Heuristic", "+ReactDrop", "Δ (pp)"}) {
		t.Fatalf("fig7a columns = %v", fig7a.Columns)
	}
	if fig7a.Rows[0][0] != "MSD" || fig7a.Rows[2][0] != "PAM" {
		t.Fatalf("fig7a rows = %v", fig7a.Rows)
	}
	for _, row := range fig7a.Rows {
		if !strings.HasPrefix(row[3], "+") && !strings.HasPrefix(row[3], "-") {
			t.Fatalf("fig7a Δ cell %q not signed", row[3])
		}
	}

	fig8 := run("fig8")
	if fig8.Columns[0] != "policy" {
		t.Fatalf("fig8 header = %v", fig8.Columns)
	}
	if fig8.Rows[0][0] != "PAM+Optimal" || fig8.Rows[1][0] != "PAM+Heuristic" || fig8.Rows[2][0] != "PAM+Threshold" {
		t.Fatalf("fig8 rows = %v", fig8.Rows)
	}

	fig9 := run("fig9")
	if fig9.Rows[0][0] != "PAM+Threshold" || fig9.Rows[2][0] != "MinMin+ReactDrop" {
		t.Fatalf("fig9 rows = %v", fig9.Rows)
	}

	drops := run("drops")
	if !reflect.DeepEqual(drops.Columns, []string{"level", "reactive share of drops (%)", "proactive dropped (%)", "reactive dropped (%)"}) {
		t.Fatalf("drops columns = %v", drops.Columns)
	}
	if drops.Rows[0][0] != "20k" {
		t.Fatalf("drops rows = %v", drops.Rows)
	}
}

func TestFigureSmoke(t *testing.T) {
	// Every figure must produce a well-formed table at minimal scale.
	if testing.Short() {
		t.Skip("figure smoke test is slow")
	}
	o := tinyOptions()
	for _, fig := range PaperFigures() {
		tabs, err := fig.Run(context.Background(), o)
		if err != nil {
			t.Fatalf("%s: %v", fig.ID, err)
		}
		if len(tabs) == 0 {
			t.Fatalf("%s produced no tables", fig.ID)
		}
		for _, tab := range tabs {
			if tab.ID == "" || len(tab.Columns) == 0 || len(tab.Rows) == 0 {
				t.Fatalf("%s produced malformed table %+v", fig.ID, tab)
			}
			for _, row := range tab.Rows {
				if len(row) != len(tab.Columns) {
					t.Fatalf("%s row width %d != %d columns", fig.ID, len(row), len(tab.Columns))
				}
			}
		}
	}
}

func TestFigureHonorsCancelledContext(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	f, _ := ByID("fig5")
	if _, err := f.Run(ctx, tinyOptions()); !errors.Is(err, context.Canceled) {
		t.Fatalf("Run with cancelled context = %v, want context.Canceled", err)
	}
}

func TestSweepFromSpec(t *testing.T) {
	items, err := SweepFromSpec("profile=video;mapper=PAM;dropper=reactdrop,heuristic:beta=1.5,eta=3;tasks=2000,3000;baseline=reactdrop")
	if err != nil {
		t.Fatal(err)
	}
	sw, err := taskdrop.NewSweep(append(items, taskdrop.SweepScale(0.05))...)
	if err != nil {
		t.Fatal(err)
	}
	if sw.Cells() != 4 {
		t.Fatalf("cells = %d, want 4", sw.Cells())
	}
	res, err := sw.Run(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	// The parameterized dropper value must survive the comma-bearing
	// grammar and resolve to the Heuristic with β=1.5, η=3.
	if _, ok := res.Cell("Heuristic"); !ok {
		t.Fatalf("parameterized dropper cell missing: %v", res.Cells)
	}
	var diffs int
	for _, c := range res.Cells {
		if c.VsBaseline != nil {
			diffs++
		}
	}
	if diffs != 2 {
		t.Fatalf("baseline directive produced %d paired comparisons, want 2", diffs)
	}
}

func TestSweepFromSpecAxes(t *testing.T) {
	// Every documented axis key must build.
	for _, g := range []string{
		"profile=video;tasks=100",
		"mapper=PAM,MinMin;tasks=100",
		"dropper=reactdrop|threshold:base=0.3,adaptive;tasks=100",
		"gamma=1,2.5;tasks=100",
		"window=5000;tasks=100",
		"queuecap=2,6;tasks=100",
		"grace=0,150;tasks=100",
		"budget=8,64;tasks=100",
		"shards=1,2,4;tasks=100",
		"router=rr|mass|p2c:seed=3;tasks=100",
		"mtbf=0,10000;tasks=100",
	} {
		items, err := SweepFromSpec(g)
		if err != nil {
			t.Fatalf("%q: %v", g, err)
		}
		if _, err := taskdrop.NewSweep(items...); err != nil {
			t.Fatalf("%q: %v", g, err)
		}
	}
}

func TestSweepFromSpecErrors(t *testing.T) {
	for _, g := range []string{
		"",                      // no axes
		"bogus=1;tasks=100",     // unknown axis key
		"tasks=abc",             // malformed int
		"gamma=x",               // malformed float
		"tasks",                 // missing values
		"tasks=100;tasks=200",   // duplicate axis
		"baseline=a,b;tasks=1",  // multi-value baseline
		"dropper=nope;tasks=10", // unknown dropper surfaces via NewSweep
	} {
		items, err := SweepFromSpec(g)
		if err == nil {
			_, err = taskdrop.NewSweep(items...)
		}
		if err == nil {
			t.Errorf("%q: expected an error", g)
		}
	}
}

package front

import (
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"sync/atomic"
	"time"

	"github.com/hpcclab/taskdrop/internal/service"
	"github.com/hpcclab/taskdrop/internal/telemetry"
)

// maxDecideBody matches the shard servers' request bound.
const maxDecideBody = 16 << 20

// upstreamBuckets are the upper bounds (seconds) of the upstream
// round-trip histogram. A proxied decide pays network + JSON + the
// backend's own decision latency, so the buckets sit an order of
// magnitude above the in-process decision histogram.
var upstreamBuckets = []float64{
	500e-6, 1e-3, 2.5e-3, 5e-3, 10e-3, 25e-3, 50e-3, 100e-3, 250e-3, 500e-3, 1, 2.5,
}

// metrics aggregates the router tier's operational counters.
type metrics struct {
	requests  atomic.Int64 // decide requests accepted for routing
	rejected  atomic.Int64 // malformed requests rejected before routing
	shed      atomic.Int64 // requests shed on a full in-flight window (429)
	reroutes  atomic.Int64 // sub-batches rerouted off a failed backend
	mapped    atomic.Int64
	deferred  atomic.Int64
	dropped   atomic.Int64
	histogram []atomic.Int64
	latSumNS  atomic.Int64
}

func newMetrics() *metrics {
	return &metrics{histogram: make([]atomic.Int64, len(upstreamBuckets)+1)}
}

// countDecisions tallies the decisions at idxs of a merged response.
func (m *metrics) countDecisions(resp *service.DecideResponse, idxs []int) {
	for _, i := range idxs {
		switch resp.Decisions[i].Action {
		case service.ActionMap:
			m.mapped.Add(1)
		case service.ActionDefer:
			m.deferred.Add(1)
		case service.ActionDrop:
			m.dropped.Add(1)
		}
	}
}

// observeUpstream records one upstream decide round-trip.
func (m *metrics) observeUpstream(d time.Duration) {
	s := d.Seconds()
	i := 0
	for ; i < len(upstreamBuckets); i++ {
		if s <= upstreamBuckets[i] {
			break
		}
	}
	m.histogram[i].Add(1)
	m.latSumNS.Add(int64(d))
}

func (m *metrics) writePrometheus(w io.Writer) {
	p := func(format string, args ...any) { fmt.Fprintf(w, format, args...) }
	p("# HELP taskdrop_router_requests_total Decide requests accepted for routing.\n")
	p("# TYPE taskdrop_router_requests_total counter\n")
	p("taskdrop_router_requests_total %d\n", m.requests.Load())
	p("# HELP taskdrop_router_rejected_total Requests rejected before routing (validation).\n")
	p("# TYPE taskdrop_router_rejected_total counter\n")
	p("taskdrop_router_rejected_total %d\n", m.rejected.Load())
	p("# HELP taskdrop_router_shed_total Requests shed on a full backend in-flight window (HTTP 429).\n")
	p("# TYPE taskdrop_router_shed_total counter\n")
	p("taskdrop_router_shed_total %d\n", m.shed.Load())
	p("# HELP taskdrop_router_reroutes_total Sub-batches rerouted off a failed backend.\n")
	p("# TYPE taskdrop_router_reroutes_total counter\n")
	p("taskdrop_router_reroutes_total %d\n", m.reroutes.Load())
	p("# HELP taskdrop_router_decisions_total Merged admission decisions by action.\n")
	p("# TYPE taskdrop_router_decisions_total counter\n")
	p("taskdrop_router_decisions_total{action=\"map\"} %d\n", m.mapped.Load())
	p("taskdrop_router_decisions_total{action=\"defer\"} %d\n", m.deferred.Load())
	p("taskdrop_router_decisions_total{action=\"drop\"} %d\n", m.dropped.Load())
	p("# HELP taskdrop_router_upstream_latency_seconds Upstream decide round-trip latency (per sub-request, retries included).\n")
	p("# TYPE taskdrop_router_upstream_latency_seconds histogram\n")
	var cum int64
	for i, le := range upstreamBuckets {
		cum += m.histogram[i].Load()
		p("taskdrop_router_upstream_latency_seconds_bucket{le=\"%g\"} %d\n", le, cum)
	}
	cum += m.histogram[len(upstreamBuckets)].Load()
	p("taskdrop_router_upstream_latency_seconds_bucket{le=\"+Inf\"} %d\n", cum)
	p("taskdrop_router_upstream_latency_seconds_sum %g\n", float64(m.latSumNS.Load())/1e9)
	p("taskdrop_router_upstream_latency_seconds_count %d\n", cum)
}

// NewHandler wires the router tier's HTTP surface — the same shape as a
// shard server's (internal/service.NewHandler), so clients cannot tell a
// router from a single server:
//
//	POST /v1/decide  — batch admission, routed and fanned out across the
//	                   backend fleet; 429 + Retry-After when a routed
//	                   backend's in-flight window is full, 503 when no
//	                   backend is ready
//	POST /v1/drain   — fleet drain; returns the merged Result
//	GET  /v1/stats   — per-backend rotation state (front.StatsResponse)
//	GET  /healthz    — liveness + fleet summary
//	GET  /readyz     — 200 once at least one backend is in rotation
//	GET  /metrics    — Prometheus text exposition (taskdrop_router_*)
//	GET  /debug/traces — retained route→proxy→ack traces
//
// Client-supplied DecisionIDs are deduplicated at this tier exactly as a
// single server would: a retry replays the originally acknowledged bytes.
func NewHandler(f *Front) http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("POST /v1/decide", func(w http.ResponseWriter, r *http.Request) {
		var req service.DecideRequest
		dec := json.NewDecoder(http.MaxBytesReader(w, r.Body, maxDecideBody))
		dec.DisallowUnknownFields()
		if err := dec.Decode(&req); err != nil {
			f.metrics.rejected.Add(1)
			httpError(w, http.StatusBadRequest, fmt.Errorf("front: bad decide body: %w", err))
			return
		}
		if id := req.DecisionID; id != "" && f.dedup != nil {
			e, owner := f.dedup.Begin(id)
			if !owner {
				data, n, err := e.Await(r.Context())
				if err != nil {
					httpError(w, http.StatusConflict, fmt.Errorf("front: duplicate decision id %q: %w", id, err))
					return
				}
				if n != len(req.Tasks) {
					httpError(w, http.StatusConflict, fmt.Errorf(
						"front: decision id %q was acknowledged for %d tasks, retried with %d", id, n, len(req.Tasks)))
					return
				}
				writeRawJSON(w, http.StatusOK, data)
				return
			}
			resp, err := f.Decide(r.Context(), &req)
			if err != nil {
				// Nothing was acknowledged under this ID: release it so a
				// retry re-executes. The per-backend sub-IDs keep any
				// upstream partial commits idempotent independently.
				f.dedup.Fail(id, err)
				decideError(w, err)
				return
			}
			data, err := json.Marshal(resp)
			if err != nil {
				f.dedup.Fail(id, err)
				httpError(w, http.StatusInternalServerError, err)
				return
			}
			data = append(data, '\n')
			f.dedup.Commit(id, data, len(req.Tasks))
			writeRawJSON(w, http.StatusOK, data)
			return
		}
		resp, err := f.Decide(r.Context(), &req)
		if err != nil {
			decideError(w, err)
			return
		}
		writeJSON(w, http.StatusOK, resp)
	})
	mux.HandleFunc("POST /v1/drain", func(w http.ResponseWriter, r *http.Request) {
		res, err := f.Drain(r.Context())
		if err != nil {
			httpError(w, http.StatusServiceUnavailable, err)
			return
		}
		writeJSON(w, http.StatusOK, &service.DrainResponse{Result: res})
	})
	mux.HandleFunc("GET /v1/stats", func(w http.ResponseWriter, r *http.Request) {
		writeJSON(w, http.StatusOK, f.Stats())
	})
	mux.HandleFunc("GET /healthz", func(w http.ResponseWriter, r *http.Request) {
		st := service.StatusResponse{
			Status:   "ok",
			Profile:  f.cfg.Profile,
			Machines: len(f.matrix.Machines()),
			Shards:   len(f.backends),
			Router:   f.policy.Name(),
		}
		if f.Draining() {
			st.Status = "draining"
		}
		writeJSON(w, http.StatusOK, &st)
	})
	mux.HandleFunc("GET /readyz", func(w http.ResponseWriter, r *http.Request) {
		switch {
		case f.Draining():
			writeJSON(w, http.StatusServiceUnavailable, &service.ReadyResponse{Status: "draining"})
		case f.NumReady() == 0:
			writeJSON(w, http.StatusServiceUnavailable, &service.ReadyResponse{Status: "booting"})
		default:
			writeJSON(w, http.StatusOK, &service.ReadyResponse{Ready: true, Status: "ok"})
		}
	})
	mux.HandleFunc("GET /debug/traces", func(w http.ResponseWriter, r *http.Request) {
		writeJSON(w, http.StatusOK, f.tel.Traces())
	})
	mux.HandleFunc("GET /metrics", func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
		f.metrics.writePrometheus(w)
		writeBackendGauges(w, f)
		if f.dedup != nil {
			fmt.Fprintf(w, "# HELP taskdrop_router_dedup_hits_total Duplicate decision-ID requests served from the router's dedup window.\n")
			fmt.Fprintf(w, "# TYPE taskdrop_router_dedup_hits_total counter\n")
			fmt.Fprintf(w, "taskdrop_router_dedup_hits_total %d\n", f.dedup.Hits())
			fmt.Fprintf(w, "# HELP taskdrop_router_dedup_entries Decision IDs currently retained in the router's dedup window.\n")
			fmt.Fprintf(w, "# TYPE taskdrop_router_dedup_entries gauge\n")
			fmt.Fprintf(w, "taskdrop_router_dedup_entries %d\n", f.dedup.Len())
		}
		fmt.Fprintf(w, "# HELP taskdrop_router_upstream_attempts_total Upstream HTTP attempts (first tries and retries).\n")
		fmt.Fprintf(w, "# TYPE taskdrop_router_upstream_attempts_total counter\n")
		fmt.Fprintf(w, "taskdrop_router_upstream_attempts_total %d\n", f.client.Attempts())
		f.tel.WritePrometheus(w)
		telemetry.WriteRuntimeMetrics(w)
	})
	return mux
}

// writeBackendGauges renders the per-backend rotation series from the
// same snapshot GET /v1/stats serves.
func writeBackendGauges(w io.Writer, f *Front) {
	st := f.Stats()
	p := func(format string, args ...any) { fmt.Fprintf(w, format, args...) }
	p("# HELP taskdrop_router_backend_up Backend rotation membership (1 = ready).\n")
	p("# TYPE taskdrop_router_backend_up gauge\n")
	for _, b := range st.Backends {
		up := 0
		if b.Ready {
			up = 1
		}
		p("taskdrop_router_backend_up{backend=\"%d\"} %d\n", b.Backend, up)
	}
	p("# HELP taskdrop_router_backend_degraded Backend routing exclusion (1 = unreachable or zero live machines).\n")
	p("# TYPE taskdrop_router_backend_degraded gauge\n")
	for _, b := range st.Backends {
		deg := 0
		if b.Degraded {
			deg = 1
		}
		p("taskdrop_router_backend_degraded{backend=\"%d\"} %d\n", b.Backend, deg)
	}
	p("# HELP taskdrop_router_backend_inflight In-flight decide sub-requests per backend.\n")
	p("# TYPE taskdrop_router_backend_inflight gauge\n")
	for _, b := range st.Backends {
		p("taskdrop_router_backend_inflight{backend=\"%d\"} %d\n", b.Backend, b.Inflight)
	}
	p("# HELP taskdrop_router_proxy_requests_total Decide sub-requests proxied per backend.\n")
	p("# TYPE taskdrop_router_proxy_requests_total counter\n")
	for _, b := range st.Backends {
		p("taskdrop_router_proxy_requests_total{backend=\"%d\"} %d\n", b.Backend, b.Proxied)
	}
	p("# HELP taskdrop_router_backend_queue_mass Last-polled outstanding tasks per backend.\n")
	p("# TYPE taskdrop_router_backend_queue_mass gauge\n")
	for _, b := range st.Backends {
		p("taskdrop_router_backend_queue_mass{backend=\"%d\"} %d\n", b.Backend, b.QueueMass)
	}
	p("# HELP taskdrop_router_backend_free_slots Last-polled open queue slots per backend.\n")
	p("# TYPE taskdrop_router_backend_free_slots gauge\n")
	for _, b := range st.Backends {
		p("taskdrop_router_backend_free_slots{backend=\"%d\"} %d\n", b.Backend, b.FreeSlots)
	}
}

// decideError maps front errors onto HTTP statuses: window shed → 429
// with a Retry-After hint, no capacity / draining → 503, upstream
// failures → 502, anything else (validation) → 400.
func decideError(w http.ResponseWriter, err error) {
	switch {
	case errors.Is(err, ErrWindowFull):
		w.Header().Set("Retry-After", "1")
		httpError(w, http.StatusTooManyRequests, err)
	case errors.Is(err, ErrNoBackends), errors.Is(err, ErrDraining):
		httpError(w, http.StatusServiceUnavailable, err)
	case isUpstream(err):
		httpError(w, http.StatusBadGateway, err)
	default:
		httpError(w, http.StatusBadRequest, err)
	}
}

// isUpstream reports whether err came back from a backend call rather
// than from request validation.
func isUpstream(err error) bool {
	var he *service.HTTPError
	return errors.As(err, &he) || errors.Is(err, errUpstream)
}

// errUpstream marks fan-out failures that wrapped a transport error.
var errUpstream = errors.New("front: upstream failure")

type errorBody struct {
	Error string `json:"error"`
}

func httpError(w http.ResponseWriter, code int, err error) {
	writeJSON(w, code, errorBody{Error: err.Error()})
}

func writeJSON(w http.ResponseWriter, code int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	_ = json.NewEncoder(w).Encode(v)
}

// writeRawJSON writes pre-encoded JSON bytes (already newline-terminated)
// — the dedup replay path.
func writeRawJSON(w http.ResponseWriter, code int, data []byte) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	_, _ = w.Write(data)
}

package front

import (
	"context"
	"sync"
	"sync/atomic"
	"time"

	"github.com/hpcclab/taskdrop/internal/router"
	"github.com/hpcclab/taskdrop/internal/service"
)

// backend is one shard-server process behind the router: its rotation
// state, its in-flight window and the RemoteView the routing policy reads.
type backend struct {
	id  int
	url string
	// view mirrors the backend's aggregate load and per-class robustness,
	// fed by the poller from GET /v1/stats and between polls by the
	// front's own admission observations.
	view *router.RemoteView
	// ready gates rotation membership: set by the poller when /readyz
	// answers 200 ready, cleared by the poller or by a failed proxy.
	ready atomic.Bool
	// window holds one token per in-flight decide sub-request.
	window chan struct{}
	// proxied counts decide sub-requests sent to this backend.
	proxied atomic.Int64

	mu      sync.Mutex
	lastErr error
}

// tryAcquire claims an in-flight window slot without blocking.
func (b *backend) tryAcquire() bool {
	select {
	case b.window <- struct{}{}:
		return true
	default:
		return false
	}
}

func (b *backend) release() { <-b.window }

func (b *backend) inflight() int { return len(b.window) }

func (b *backend) setErr(err error) {
	b.mu.Lock()
	b.lastErr = err
	b.mu.Unlock()
}

func (b *backend) lastError() string {
	b.mu.Lock()
	defer b.mu.Unlock()
	if b.lastErr == nil {
		return ""
	}
	return b.lastErr.Error()
}

// poller drives one backend's rotation membership and routing view: every
// Poll it checks /readyz, and while the backend is ready it refreshes the
// RemoteView from /v1/stats (summing the backend's shard snapshots into
// one per-process load gauge). Polling uses plain one-shot requests — a
// probe that fails should fail fast, not burn the client's retry budget.
func (f *Front) poller(b *backend) {
	defer f.pollWG.Done()
	probe := service.NewClient(f.cfg.HTTPClient, service.ClientConfig{Timeout: f.cfg.Timeout})
	tick := time.NewTicker(f.cfg.Poll)
	defer tick.Stop()
	for {
		f.pollOnce(b, probe)
		select {
		case <-f.stop:
			return
		case <-tick.C:
		}
	}
}

func (f *Front) pollOnce(b *backend, probe *service.Client) {
	ctx, cancel := context.WithTimeout(context.Background(), f.cfg.Timeout)
	defer cancel()

	var ready service.ReadyResponse
	if err := probe.GetJSON(ctx, b.url+"/readyz", &ready); err != nil || !ready.Ready {
		if err != nil {
			b.setErr(err)
		}
		b.view.SetDown(true)
		if b.ready.CompareAndSwap(true, false) {
			f.log.Warn("backend left rotation", "backend", b.id, "url", b.url, "status", ready.Status, "err", err)
		}
		return
	}

	var stats service.StatsResponse
	if err := probe.GetJSON(ctx, b.url+"/v1/stats", &stats); err != nil {
		b.setErr(err)
		b.view.SetDown(true)
		if b.ready.CompareAndSwap(true, false) {
			f.log.Warn("backend left rotation", "backend", b.id, "url", b.url, "err", err)
		}
		return
	}
	var batch, queued, free int
	degraded := len(stats.Shards) > 0
	robustness := make([]float64, f.matrix.NumTaskTypes())
	for _, sh := range stats.Shards {
		batch += sh.Live.Batch
		queued += sh.Live.Queued
		free += int(sh.FreeSlots)
		if sh.LiveMachines > 0 {
			degraded = false
		}
		for c := range robustness {
			if c < len(sh.Robustness) {
				robustness[c] += sh.Robustness[c] / float64(len(stats.Shards))
			}
		}
	}
	b.view.ApplyStats(batch, queued, free, robustness)
	// A backend whose every shard has zero live machines (runtime removals)
	// can only answer 429s: keep it in rotation — it is healthy and will
	// recover on a revive — but steer routing away until machines return.
	b.view.SetDown(degraded)
	b.setErr(nil)
	if b.ready.CompareAndSwap(false, true) {
		f.log.Info("backend joined rotation", "backend", b.id, "url", b.url, "shards", len(stats.Shards), "degraded", degraded)
	}
}

package front

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"reflect"
	"strings"
	"testing"
	"time"

	"github.com/hpcclab/taskdrop/internal/pet"
	"github.com/hpcclab/taskdrop/internal/service"
	"github.com/hpcclab/taskdrop/internal/telemetry"
	"github.com/hpcclab/taskdrop/internal/workload"
)

// testTrace builds a small deterministic trace over the video matrix.
func testTrace(t testing.TB, tasks int, seed int64) *workload.Trace {
	t.Helper()
	m, err := pet.CachedMatrix("video")
	if err != nil {
		t.Fatal(err)
	}
	cfg := workload.Config{TotalTasks: 30000, Window: workload.StandardWindow, GammaSlack: workload.DefaultGammaSlack}
	return workload.Generate(m, cfg.Scaled(float64(tasks)/30000), seed)
}

// newBackends starts n partitioned shard servers over the video matrix.
func newBackends(t testing.TB, n int) []string {
	t.Helper()
	urls := make([]string, n)
	for k := 0; k < n; k++ {
		c, err := service.New(service.Config{
			Profile: "video", Mapper: "PAM", Dropper: "heuristic",
			Partition:   fmt.Sprintf("%d/%d", k, n),
			DedupWindow: 0, // default window: the router's sub-IDs need it
		})
		if err != nil {
			t.Fatal(err)
		}
		srv := httptest.NewServer(service.NewHandler(c))
		t.Cleanup(srv.Close)
		urls[k] = srv.URL
	}
	return urls
}

// newFront builds a Front over the backends and waits for full rotation.
func newFront(t testing.TB, urls []string, mutate func(*Config)) *Front {
	t.Helper()
	cfg := Config{
		Backends: urls,
		Profile:  "video",
		Poll:     10 * time.Millisecond,
		Timeout:  2 * time.Second,
		Backoff:  time.Millisecond,
		IDNonce:  fmt.Sprintf("test-%s", t.Name()),
	}
	if mutate != nil {
		mutate(&cfg)
	}
	f, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(f.Close)
	deadline := time.Now().Add(5 * time.Second)
	for f.NumReady() < len(urls) {
		if time.Now().After(deadline) {
			t.Fatalf("only %d/%d backends entered rotation", f.NumReady(), len(urls))
		}
		time.Sleep(5 * time.Millisecond)
	}
	return f
}

func TestFrontReplayAcrossPartitions(t *testing.T) {
	tr := testTrace(t, 400, 5)
	urls := newBackends(t, 2)
	f := newFront(t, urls, nil)
	srv := httptest.NewServer(NewHandler(f))
	defer srv.Close()

	rep, err := service.Replay(context.Background(), srv.Client(), srv.URL, tr, service.ReplayConfig{
		BatchSize: 16, Drain: true, Retries: 2, Timeout: 5 * time.Second,
	})
	if err != nil {
		t.Fatal(err)
	}
	if rep.Tasks != tr.Len() || len(rep.Decisions) != tr.Len() {
		t.Fatalf("replay covered %d/%d decisions", len(rep.Decisions), tr.Len())
	}
	if rep.DuplicateAcks != 0 {
		t.Fatalf("%d duplicate acks through the router", rep.DuplicateAcks)
	}
	if rep.Final == nil {
		t.Fatal("no fleet drain result")
	}
	if err := rep.Final.Validate(); err != nil {
		t.Fatal(err)
	}
	if rep.Final.Total != tr.Len() {
		t.Fatalf("fleet Result.Total = %d, want %d", rep.Final.Total, tr.Len())
	}
	// Both backends must have decided work, and every decision must carry
	// its backend.
	seen := map[int]int{}
	for _, d := range rep.Decisions {
		seen[d.Backend]++
	}
	if len(seen) != 2 {
		t.Fatalf("decisions came from backends %v, want both", seen)
	}
}

func TestFrontDeterministicAcrossRestarts(t *testing.T) {
	// Same trace, same backends-per-partition, same routing policy: the
	// decision sequence is reproducible (the hash router is stateless and
	// the backends are deterministic engines).
	run := func(nonce string) []service.Decision {
		tr := testTrace(t, 200, 9)
		urls := newBackends(t, 2)
		f := newFront(t, urls, func(c *Config) { c.IDNonce = nonce })
		srv := httptest.NewServer(NewHandler(f))
		defer srv.Close()
		rep, err := service.Replay(context.Background(), srv.Client(), srv.URL, tr, service.ReplayConfig{BatchSize: 16})
		if err != nil {
			t.Fatal(err)
		}
		return rep.Decisions
	}
	a, b := run("nonce-a"), run("nonce-b")
	if !reflect.DeepEqual(a, b) {
		t.Fatal("decision sequences diverged across identical fleets")
	}
}

func TestFrontIdempotentDuplicateBytes(t *testing.T) {
	tr := testTrace(t, 40, 3)
	urls := newBackends(t, 2)
	f := newFront(t, urls, nil)
	srv := httptest.NewServer(NewHandler(f))
	defer srv.Close()

	req := service.DecideRequest{DecisionID: "client-idem-1", Tasks: make([]service.TaskSpec, 8)}
	for i, task := range tr.Tasks[:8] {
		req.Tasks[i] = service.TaskSpec{ID: fmt.Sprintf("t%d", task.ID), Type: int(task.Type),
			Arrival: task.Arrival, Deadline: task.Deadline, ExecByType: task.ExecByType}
	}
	post := func() (int, []byte) {
		body, _ := json.Marshal(&req)
		resp, err := srv.Client().Post(srv.URL+"/v1/decide", "application/json", bytes.NewReader(body))
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		data, _ := io.ReadAll(resp.Body)
		return resp.StatusCode, data
	}
	code, first := post()
	if code != http.StatusOK {
		t.Fatalf("decide: HTTP %d: %s", code, first)
	}
	code, again := post()
	if code != http.StatusOK {
		t.Fatalf("duplicate decide: HTTP %d", code)
	}
	if !bytes.Equal(first, again) {
		t.Fatalf("duplicate not byte-identical:\nfirst %s\nagain %s", first, again)
	}
	if f.Dedup().Hits() != 1 {
		t.Fatalf("dedup hits = %d, want 1", f.Dedup().Hits())
	}
}

func TestFrontShedsOnFullWindow(t *testing.T) {
	tr := testTrace(t, 20, 1)
	urls := newBackends(t, 2)
	f := newFront(t, urls, func(c *Config) { c.Window = 1 })
	srv := httptest.NewServer(NewHandler(f))
	defer srv.Close()

	// Exhaust every backend's single window slot, then decide: whichever
	// backend the batch routes to is saturated → 429 + Retry-After.
	for _, b := range f.backends {
		if !b.tryAcquire() {
			t.Fatal("fresh backend window already full")
		}
	}
	defer func() {
		for _, b := range f.backends {
			b.release()
		}
	}()
	req := service.DecideRequest{Tasks: []service.TaskSpec{{
		Type: int(tr.Tasks[0].Type), Arrival: tr.Tasks[0].Arrival,
		Deadline: tr.Tasks[0].Deadline, ExecByType: tr.Tasks[0].ExecByType,
	}}}
	body, _ := json.Marshal(&req)
	resp, err := srv.Client().Post(srv.URL+"/v1/decide", "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("saturated decide: HTTP %d, want 429", resp.StatusCode)
	}
	if resp.Header.Get("Retry-After") == "" {
		t.Fatal("429 without Retry-After")
	}
	if f.metrics.shed.Load() == 0 {
		t.Fatal("shed counter not incremented")
	}
}

func TestFrontReroutesOffDeadBackend(t *testing.T) {
	tr := testTrace(t, 60, 7)
	urls := newBackends(t, 2)

	// Stand a killable proxy in front of backend 0 so "kill -9" is a
	// connection refused, while backend 1 survives.
	died := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		http.Error(w, "gone", http.StatusBadGateway)
	}))
	died.Close() // closed immediately: every dial fails

	f := newFront(t, []string{urls[0], urls[1]}, func(c *Config) { c.Retries = 0 })
	srv := httptest.NewServer(NewHandler(f))
	defer srv.Close()

	// Freeze the rotation state (stop the pollers), then swap backend 0's
	// URL for the dead address, as if the process died after joining the
	// rotation but before the next poll — the decide path itself must
	// detect the failure and reroute.
	f.stopOnce.Do(func() { close(f.stop) })
	f.pollWG.Wait()
	f.backends[0].url = died.URL

	decided := 0
	for lo := 0; lo < 32; lo += 8 {
		req := service.DecideRequest{Tasks: make([]service.TaskSpec, 8)}
		for i, task := range tr.Tasks[lo : lo+8] {
			req.Tasks[i] = service.TaskSpec{Type: int(task.Type), Arrival: task.Arrival,
				Deadline: task.Deadline, ExecByType: task.ExecByType}
		}
		resp, err := f.Decide(context.Background(), &req)
		if err != nil {
			t.Fatalf("decide with one dead backend: %v", err)
		}
		for _, d := range resp.Decisions {
			if d.Backend != 1 {
				t.Fatalf("decision routed to dead backend %d", d.Backend)
			}
			decided++
		}
	}
	if decided != 32 {
		t.Fatalf("decided %d/32 tasks", decided)
	}
	if f.backends[0].ready.Load() {
		t.Fatal("dead backend still in rotation")
	}
	if f.metrics.reroutes.Load() == 0 {
		t.Fatal("reroutes counter not incremented")
	}
}

func TestFrontMetricsPassLint(t *testing.T) {
	tr := testTrace(t, 40, 2)
	urls := newBackends(t, 2)
	f := newFront(t, urls, func(c *Config) { c.TraceSample = 1; c.TraceRing = 16 })
	srv := httptest.NewServer(NewHandler(f))
	defer srv.Close()

	rep, err := service.Replay(context.Background(), srv.Client(), srv.URL, tr, service.ReplayConfig{BatchSize: 8})
	if err != nil {
		t.Fatal(err)
	}
	if rep.Tasks != tr.Len() {
		t.Fatalf("replayed %d/%d", rep.Tasks, tr.Len())
	}
	resp, err := srv.Client().Get(srv.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	data, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	if problems := telemetry.Lint(bytes.NewReader(data)); len(problems) > 0 {
		t.Fatalf("router /metrics fails lint:\n%s", strings.Join(problems, "\n"))
	}
	for _, want := range []string{
		"taskdrop_router_requests_total",
		"taskdrop_router_backend_up{backend=\"0\"} 1",
		"taskdrop_router_backend_up{backend=\"1\"} 1",
		"taskdrop_router_decisions_total{action=",
		"taskdrop_router_upstream_latency_seconds_bucket",
		"taskdrop_router_dedup_hits_total",
	} {
		if !bytes.Contains(data, []byte(want)) {
			t.Errorf("router /metrics missing %q", want)
		}
	}
}

func TestFrontWireTagsAreSnakeCase(t *testing.T) {
	for _, typ := range []reflect.Type{
		reflect.TypeOf(BackendStatus{}),
		reflect.TypeOf(StatsResponse{}),
	} {
		for i := 0; i < typ.NumField(); i++ {
			f := typ.Field(i)
			tag := strings.Split(f.Tag.Get("json"), ",")[0]
			if tag == "" {
				t.Errorf("%s.%s has no json tag", typ.Name(), f.Name)
				continue
			}
			if tag != strings.ToLower(tag) || strings.Contains(tag, "-") {
				t.Errorf("%s.%s json tag %q is not snake_case", typ.Name(), f.Name, tag)
			}
		}
	}
}

// Package front implements the router tier of the multi-process
// deployment: a stateless-ish front-end (cmd/hcrouter) that speaks the
// admission service's wire protocol (internal/service) and proxies every
// decide batch across K independent shard-server processes (cmd/hcserve),
// each owning one disjoint machine partition of the profile
// (sim.PartitionMachines, hcserve -partition k/K).
//
// The front reuses the in-process routing machinery wholesale: each
// backend is represented by a router.RemoteView — the same lock-free
// ShardView the shard loops publish, fed over HTTP from the backend's
// /v1/stats instead of from a decision loop — so the rr/mass/p2c/hash
// policies route across processes exactly as they route across in-process
// shards. The default policy is "hash" (task-class partitioning): every
// class consistently lands on one backend, which keeps each backend's
// per-class robustness EWMAs and queue state meaningful and makes a
// sequential client's routing independent of poll timing.
//
// # Fault model
//
// Backends are health-gated (GET /readyz, polled): a backend joins the
// rotation only once ready and leaves it on the first failed proxy or
// poll. A decide sub-batch that fails on its backend is rerouted once to
// a surviving backend under a fresh decision ID. Every proxied request
// carries a front-generated DecisionID, so the retry of a
// timed-out-but-committed sub-batch replays the backend's journaled
// original instead of double-admitting — at-least-once delivery with
// exactly-once admission effects.
//
// Bounded in-flight windows per backend shed load early: when every
// routed backend is at its window, the front answers 429 with
// Retry-After rather than queueing unboundedly in front of a struggling
// backend.
package front

import (
	"context"
	"errors"
	"fmt"
	"log/slog"
	"net/http"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"github.com/hpcclab/taskdrop/internal/pet"
	"github.com/hpcclab/taskdrop/internal/pmf"
	"github.com/hpcclab/taskdrop/internal/router"
	"github.com/hpcclab/taskdrop/internal/service"
	"github.com/hpcclab/taskdrop/internal/sim"
	"github.com/hpcclab/taskdrop/internal/telemetry"
)

// Front-end failure modes surfaced to HTTP.
var (
	// ErrNoBackends: no backend is currently ready (all booting, down, or
	// draining).
	ErrNoBackends = errors.New("front: no ready backends")
	// ErrWindowFull: a routed backend is at its in-flight window; the
	// client should back off and retry (HTTP 429 + Retry-After).
	ErrWindowFull = errors.New("front: backend in-flight window full")
	// ErrDraining: the router has begun draining the fleet.
	ErrDraining = errors.New("front: router is draining")
)

// Config assembles a router tier.
type Config struct {
	// Backends are the shard servers' base URLs (e.g.
	// "http://127.0.0.1:8081"). Together they should cover the profile's
	// machine partition exactly once (hcserve -partition 0/K .. K-1/K).
	Backends []string
	// Profile is the system profile spec; it must match every backend's
	// (validated against each backend's /healthz on the first poll).
	Profile string
	// Router is the backend-routing policy spec (internal/router grammar);
	// default "hash" — task-class partitioning.
	Router string
	// Window bounds in-flight decide sub-requests per backend (default 32).
	Window int
	// Poll is the health/stats polling period per backend (default 250ms).
	Poll time.Duration
	// Timeout, Retries and Backoff configure the upstream client (see
	// service.ClientConfig; defaults 5s, 2, 50ms). Retries re-send the SAME
	// sub-request (same decision ID) to the SAME backend; rerouting to
	// another backend only happens after the retry budget is spent.
	Timeout time.Duration
	Retries int
	Backoff time.Duration
	// DedupWindow bounds the front's own idempotency window for
	// client-supplied DecisionIDs (0 = service.DefaultDedupWindow;
	// negative disables).
	DedupWindow int
	// TraceSample stage-traces every Nth proxied request (route → proxy →
	// ack); 0 disables. TraceRing bounds retained traces.
	TraceSample int
	TraceRing   int
	// IDNonce namespaces the front-generated sub-request decision IDs.
	// Must differ between router restarts against the same backends (the
	// CLI stamps startup nanoseconds) or stale dedup entries could answer
	// new sub-requests.
	IDNonce string
	// HTTPClient is the transport for proxying and polling (default: a
	// dedicated client; Timeout governs per-attempt deadlines).
	HTTPClient *http.Client
	// Logger receives structured diagnostics.
	Logger *slog.Logger
}

func (c Config) withDefaults() Config {
	if c.Profile == "" {
		c.Profile = "spec"
	}
	if c.Router == "" {
		c.Router = "hash"
	}
	if c.Window == 0 {
		c.Window = 32
	}
	if c.Poll == 0 {
		c.Poll = 250 * time.Millisecond
	}
	if c.Timeout == 0 {
		c.Timeout = 5 * time.Second
	}
	if c.Retries == 0 {
		c.Retries = 2
	}
	if c.IDNonce == "" {
		c.IDNonce = "front"
	}
	if c.HTTPClient == nil {
		c.HTTPClient = &http.Client{}
	}
	if c.Logger == nil {
		c.Logger = slog.New(slog.DiscardHandler)
	}
	return c
}

// Front is the router tier: backend registry, routing policy, upstream
// client and the request fan-out/merge engine.
type Front struct {
	cfg      Config
	matrix   *pet.Matrix
	policy   router.Policy
	backends []*backend
	client   *service.Client
	dedup    *service.DedupWindow
	tel      *telemetry.Telemetry
	log      *slog.Logger
	metrics  *metrics

	// seq numbers proxied requests front-locally (telemetry sampling);
	// subID numbers generated sub-request decision IDs.
	seq   atomic.Int64
	subID atomic.Int64

	mu       sync.Mutex
	draining bool
	final    *sim.Result
	drainErr error
	drained  chan struct{}

	stop     chan struct{}
	stopOnce sync.Once
	pollWG   sync.WaitGroup
}

// New resolves the profile and policy, registers the backends and starts
// their health/stats pollers. Backends need not be up yet: they join the
// rotation when their /readyz first answers 200.
func New(cfg Config) (*Front, error) {
	cfg = cfg.withDefaults()
	if len(cfg.Backends) == 0 {
		return nil, fmt.Errorf("front: no backends configured")
	}
	matrix, err := pet.CachedMatrix(cfg.Profile)
	if err != nil {
		return nil, err
	}
	policy, err := router.FromSpec(cfg.Router)
	if err != nil {
		return nil, err
	}
	if cfg.Window < 1 {
		return nil, fmt.Errorf("front: window %d, want >= 1", cfg.Window)
	}
	if cfg.TraceSample < 0 || cfg.TraceRing < 0 {
		return nil, fmt.Errorf("front: negative trace settings")
	}
	f := &Front{
		cfg:     cfg,
		matrix:  matrix,
		policy:  policy,
		client:  service.NewClient(cfg.HTTPClient, service.ClientConfig{Timeout: cfg.Timeout, Retries: cfg.Retries, Backoff: cfg.Backoff}),
		tel:     telemetry.New(1, cfg.TraceSample, cfg.TraceRing),
		log:     cfg.Logger,
		metrics: newMetrics(),
		drained: make(chan struct{}),
		stop:    make(chan struct{}),
	}
	if cfg.DedupWindow >= 0 {
		f.dedup = service.NewDedupWindow(cfg.DedupWindow)
	}
	nt := matrix.NumTaskTypes()
	for i, u := range cfg.Backends {
		b := &backend{
			id:     i,
			url:    u,
			view:   router.NewRemoteView(nt),
			window: make(chan struct{}, cfg.Window),
		}
		// Wall-clock staleness decay: a backend that stops being polled
		// successfully (outage, crash) must not keep winning p2c on its
		// frozen last-good estimates. Half-life of four poll periods — a
		// couple of missed polls and the estimate is sliding to neutral.
		b.view.EnableDecay((4 * cfg.Poll).Milliseconds(), func() int64 { return time.Now().UnixMilli() })
		f.backends = append(f.backends, b)
	}
	for _, b := range f.backends {
		f.pollWG.Add(1)
		go f.poller(b)
	}
	return f, nil
}

// Matrix returns the served system's PET matrix.
func (f *Front) Matrix() *pet.Matrix { return f.matrix }

// Policy returns the resolved routing policy.
func (f *Front) Policy() router.Policy { return f.policy }

// Dedup returns the front's idempotency window (nil when disabled).
func (f *Front) Dedup() *service.DedupWindow { return f.dedup }

// Telemetry returns the front's stage tracer.
func (f *Front) Telemetry() *telemetry.Telemetry { return f.tel }

// Close stops the pollers. It does NOT drain the backends — draining is a
// client decision (POST /v1/drain); a router restart must not destroy
// fleet state.
func (f *Front) Close() {
	f.stopOnce.Do(func() { close(f.stop) })
	f.pollWG.Wait()
}

// Draining reports whether a fleet drain has begun.
func (f *Front) Draining() bool {
	f.mu.Lock()
	defer f.mu.Unlock()
	return f.draining
}

// readySet snapshots the backends currently in rotation, with their views
// in matching order for the routing policy.
func (f *Front) readySet() ([]*backend, []*router.ShardView) {
	ready := make([]*backend, 0, len(f.backends))
	views := make([]*router.ShardView, 0, len(f.backends))
	for _, b := range f.backends {
		if b.ready.Load() {
			ready = append(ready, b)
			views = append(views, b.view.View())
		}
	}
	return ready, views
}

// NumReady returns how many backends are currently in rotation.
func (f *Front) NumReady() int {
	n := 0
	for _, b := range f.backends {
		if b.ready.Load() {
			n++
		}
	}
	return n
}

// nextSubID generates a fresh decision ID for one proxied sub-request.
func (f *Front) nextSubID() string {
	return fmt.Sprintf("%s-%d", f.cfg.IDNonce, f.subID.Add(1))
}

// subBatch is one backend's slice of a decide request during fan-out.
type subBatch struct {
	b    *backend
	idxs []int // request-order indexes routed to this backend
}

// Decide validates and routes one decide batch across the ready backends,
// proxies the per-backend sub-batches concurrently (with retry and
// one-shot reroute), and merges the decisions back into request order.
// Decision sequence numbers are per backend: behind the router a
// decision's identity is (Backend, Seq).
func (f *Front) Decide(ctx context.Context, req *service.DecideRequest) (*service.DecideResponse, error) {
	if req == nil || len(req.Tasks) == 0 {
		return nil, fmt.Errorf("front: empty decide request")
	}
	nt, nm := f.matrix.NumTaskTypes(), f.matrix.NumMachineTypes()
	for i := range req.Tasks {
		if err := req.Tasks[i].Validate(nt, nm); err != nil {
			f.metrics.rejected.Add(1)
			return nil, err
		}
	}
	if f.Draining() {
		return nil, ErrDraining
	}
	f.metrics.requests.Add(1)

	seq := f.seq.Add(1) - 1
	var act *telemetry.Active
	var origin time.Time
	if f.tel.Enabled() {
		origin = time.Now()
		act = f.tel.Begin(seq, origin)
	}

	ready, views := f.readySet()
	if len(ready) == 0 {
		return nil, ErrNoBackends
	}

	// Route every task over the ready set (deterministic for a sequential
	// client under a fixed rotation), then group into per-backend
	// sub-batches preserving request order.
	byBackend := make([][]int, len(ready))
	for i := range req.Tasks {
		t := &req.Tasks[i]
		s := 0
		if len(ready) > 1 {
			s = f.policy.Route(router.Task{Class: t.Type, Arrival: t.Arrival, Deadline: t.Deadline}, views)
		}
		byBackend[s] = append(byBackend[s], i)
	}
	var subs []subBatch
	for s, idxs := range byBackend {
		if len(idxs) > 0 {
			subs = append(subs, subBatch{b: ready[s], idxs: idxs})
		}
	}

	// One window token per involved backend, acquired non-blocking: if any
	// backend is saturated, shed the whole request now (429) rather than
	// block behind it.
	for i, sb := range subs {
		if !sb.b.tryAcquire() {
			for _, held := range subs[:i] {
				held.b.release()
			}
			f.metrics.shed.Add(1)
			return nil, fmt.Errorf("%w (backend %d)", ErrWindowFull, sb.b.id)
		}
	}

	var proxyStart time.Time
	if act != nil {
		proxyStart = time.Now()
		act.Mark(telemetry.StageRoute, origin, proxyStart)
	}

	resp := &service.DecideResponse{Decisions: make([]service.Decision, len(req.Tasks))}
	errs := make([]error, len(subs))
	nows := make([]pmf.Tick, len(subs))
	var wg sync.WaitGroup
	for k := range subs {
		wg.Add(1)
		go func(k int) {
			defer wg.Done()
			defer subs[k].b.release()
			nows[k], errs[k] = f.proxy(ctx, req, resp, subs[k], ready)
		}(k)
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			return nil, err
		}
	}
	for _, now := range nows {
		if now > resp.Now {
			resp.Now = now
		}
	}

	// Fold the outcomes into the per-backend robustness EWMAs — the
	// between-polls routing signal (1 = the class got a slot, 0 = not).
	for k := range subs {
		for _, i := range subs[k].idxs {
			p := 0.0
			if resp.Decisions[i].Action == service.ActionMap {
				p = 1.0
			}
			subs[k].b.view.ObserveAdmission(req.Tasks[i].Type, p)
		}
		f.metrics.countDecisions(resp, subs[k].idxs)
	}

	if act != nil {
		done := time.Now()
		act.Mark(telemetry.StageProxy, proxyStart, done)
		act.Mark(telemetry.StageAck, done, time.Now())
		f.tel.Shard(0).Finish(act, 0, "proxy")
	}
	return resp, nil
}

// proxy sends one sub-batch to its backend (the client retries transport
// errors, 5xx and 429 with the SAME decision ID), and on final failure
// marks the backend down and reroutes ONCE to another ready backend under
// a fresh ID. Returns the sub-response's clock.
func (f *Front) proxy(ctx context.Context, req *service.DecideRequest, resp *service.DecideResponse, sb subBatch, ready []*backend) (pmf.Tick, error) {
	now, err := f.send(ctx, req, resp, sb.b, sb.idxs)
	if err == nil {
		return now, nil
	}
	f.markDown(sb.b, err)
	// Reroute once: any other ready backend with window room takes over.
	// A fresh decision ID is mandatory — the failed backend may yet commit
	// the original sub-batch, and the two IDs must stay distinct.
	for _, alt := range ready {
		if alt == sb.b || !alt.ready.Load() {
			continue
		}
		if !alt.tryAcquire() {
			continue
		}
		f.metrics.reroutes.Add(1)
		f.log.Warn("rerouting sub-batch", "from_backend", sb.b.id, "to_backend", alt.id, "tasks", len(sb.idxs), "err", err)
		now, rerr := f.send(ctx, req, resp, alt, sb.idxs)
		alt.release()
		if rerr != nil {
			f.markDown(alt, rerr)
			return 0, fmt.Errorf("%w: backend %d failed (%v); reroute to %d failed: %v", errUpstream, sb.b.id, err, alt.id, rerr)
		}
		return now, nil
	}
	return 0, fmt.Errorf("%w: backend %d failed with no surviving backend to reroute to: %v", errUpstream, sb.b.id, err)
}

// send proxies idxs of req to backend b as one decide sub-request and
// writes the returned decisions into their request slots, stamped with
// the backend's index.
func (f *Front) send(ctx context.Context, req *service.DecideRequest, resp *service.DecideResponse, b *backend, idxs []int) (pmf.Tick, error) {
	sub := service.DecideRequest{
		DecisionID: f.nextSubID(),
		Tasks:      make([]service.TaskSpec, len(idxs)),
	}
	for j, i := range idxs {
		sub.Tasks[j] = req.Tasks[i]
	}
	b.proxied.Add(1)
	t0 := time.Now()
	var out service.DecideResponse
	err := f.client.PostJSON(ctx, b.url+"/v1/decide", &sub, &out)
	f.metrics.observeUpstream(time.Since(t0))
	if err != nil {
		return 0, err
	}
	if len(out.Decisions) != len(idxs) {
		return 0, fmt.Errorf("%w: backend %d answered %d decisions for %d tasks", errUpstream, b.id, len(out.Decisions), len(idxs))
	}
	for j, i := range idxs {
		d := out.Decisions[j]
		d.Backend = b.id
		resp.Decisions[i] = d
	}
	return out.Now, nil
}

// markDown removes a backend from rotation until its poller sees it ready
// again, and flips its routing view down so policies steer away from it
// immediately (not just after the next readySet snapshot).
func (f *Front) markDown(b *backend, err error) {
	if b.ready.CompareAndSwap(true, false) {
		f.log.Warn("backend down", "backend", b.id, "url", b.url, "err", err)
	}
	b.view.SetDown(true)
	b.setErr(err)
}

// Drain drains the whole fleet: every backend that answers gets POST
// /v1/drain, and the surviving partial Results merge into one fleet
// Result over the full matrix (a dead backend's machines count as idle).
// Like the in-process controller, the drain is committed on first call
// and concurrent callers share the outcome.
func (f *Front) Drain(ctx context.Context) (*sim.Result, error) {
	f.mu.Lock()
	first := !f.draining
	f.draining = true
	f.mu.Unlock()

	if first {
		f.log.Info("fleet drain initiated", "backends", len(f.backends))
		go func() {
			defer close(f.drained)
			parts := make([]*sim.Result, len(f.backends))
			var wg sync.WaitGroup
			for i, b := range f.backends {
				wg.Add(1)
				go func(i int, b *backend) {
					defer wg.Done()
					dctx, cancel := context.WithTimeout(context.Background(), 60*time.Second)
					defer cancel()
					var dr service.DrainResponse
					if err := f.client.PostJSON(dctx, b.url+"/v1/drain", nil, &dr); err != nil {
						f.log.Warn("backend drain failed", "backend", b.id, "err", err)
						return
					}
					parts[i] = dr.Result
				}(i, b)
			}
			wg.Wait()
			alive := parts[:0:0]
			for _, p := range parts {
				if p != nil {
					alive = append(alive, p)
				}
			}
			f.mu.Lock()
			defer f.mu.Unlock()
			if len(alive) == 0 {
				f.drainErr = fmt.Errorf("front: no backend completed the drain")
				return
			}
			f.final = sim.MergeResults(alive, len(f.matrix.Machines()))
		}()
	}

	select {
	case <-f.drained:
		f.mu.Lock()
		defer f.mu.Unlock()
		if f.drainErr != nil {
			return nil, f.drainErr
		}
		return f.final, nil
	case <-ctx.Done():
		return nil, ctx.Err()
	}
}

// BackendStatus is one backend's entry in the router's GET /v1/stats.
type BackendStatus struct {
	Backend int    `json:"backend"`
	URL     string `json:"url"`
	Ready   bool   `json:"ready"`
	// Degraded mirrors the routing view's down bit: the backend is
	// unreachable or every shard it serves has zero live machines.
	Degraded bool `json:"degraded,omitempty"`
	Inflight int  `json:"inflight"`
	Window   int  `json:"window"`
	// QueueMass and FreeSlots mirror the backend's last-polled aggregate
	// load gauges — what the routing policy currently sees.
	QueueMass int64 `json:"queue_mass"`
	FreeSlots int64 `json:"free_slots"`
	// Proxied counts decide sub-requests sent to this backend.
	Proxied   int64  `json:"proxied_requests"`
	LastError string `json:"last_error,omitempty"`
}

// StatsResponse is the router's GET /v1/stats body.
type StatsResponse struct {
	Router   string          `json:"router"`
	Backends []BackendStatus `json:"backends"`
}

// Stats snapshots every backend's rotation state.
func (f *Front) Stats() *StatsResponse {
	st := &StatsResponse{Router: f.policy.Name()}
	for _, b := range f.backends {
		v := b.view.View()
		st.Backends = append(st.Backends, BackendStatus{
			Backend:   b.id,
			URL:       b.url,
			Ready:     b.ready.Load(),
			Degraded:  v.Down(),
			Inflight:  b.inflight(),
			Window:    cap(b.window),
			QueueMass: v.QueueMass(),
			FreeSlots: v.FreeSlots(),
			Proxied:   b.proxied.Load(),
			LastError: b.lastError(),
		})
	}
	sort.Slice(st.Backends, func(i, j int) bool { return st.Backends[i].Backend < st.Backends[j].Backend })
	return st
}

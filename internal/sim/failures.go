package sim

import (
	"github.com/hpcclab/taskdrop/internal/pmf"
	"github.com/hpcclab/taskdrop/internal/stats"
)

// FailureConfig enables machine failure injection — the "resource failure"
// compound uncertainty the paper names as future work (§VI). Failures
// strike each machine as a Poisson process; a failed machine kills its
// running task (terminal state StatusFailed), holds its pending queue, and
// accepts no new work until repaired.
type FailureConfig struct {
	// MTBF is the mean time between failures per machine, in ticks;
	// 0 disables failure injection.
	MTBF pmf.Tick
	// MeanRepair is the mean repair duration, in ticks (exponential).
	MeanRepair pmf.Tick
	// Seed drives the failure process; trials with equal seeds see equal
	// failure schedules.
	Seed int64
}

// Enabled reports whether failure injection is active.
func (f FailureConfig) Enabled() bool { return f.MTBF > 0 }

// machineFailureState tracks one machine's failure process.
type machineFailureState struct {
	rng *stats.RNG
	// nextFailAt is the next scheduled failure (noCompletion = none).
	nextFailAt pmf.Tick
	// repairAt is when the current outage ends (noCompletion = healthy).
	repairAt pmf.Tick
	// draws counts exponential samples consumed from rng. math/rand state
	// cannot be serialized, so a snapshot stores this count instead and
	// restore re-seeds the stream and discards draws-1 samples (the
	// sample count ExpFloat64 consumes is independent of the mean).
	draws int64
}

// initFailures seeds per-machine failure processes. It is idempotent: an
// open engine initializes failures at construction, and the drain path
// (RunContext) must not re-seed them mid-run.
func (e *Engine) initFailures() {
	if !e.cfg.Failures.Enabled() || e.failures != nil {
		return
	}
	root := stats.NewRNG(e.cfg.Failures.Seed)
	e.failures = make([]machineFailureState, len(e.machines))
	for i := range e.failures {
		rng := root.Split()
		e.failures[i] = machineFailureState{
			rng:        rng,
			nextFailAt: pmf.Tick(rng.Exponential(float64(e.cfg.Failures.MTBF))),
			repairAt:   noCompletion,
			draws:      1,
		}
	}
}

// failed reports whether machine i is currently down.
func (e *Engine) failed(i int) bool {
	return e.failures != nil && e.failures[i].repairAt != noCompletion
}

// nextFailureEvent returns the earliest pending failure or repair across
// machines.
func (e *Engine) nextFailureEvent() (machine int, at pmf.Tick, isRepair bool) {
	machine, at = -1, noCompletion
	for i := range e.failures {
		fs := &e.failures[i]
		if e.removedAt(i) {
			// A removed machine's failure process is frozen; ReviveMachine
			// re-arms any schedule that went stale in the interim.
			continue
		}
		if fs.repairAt != noCompletion {
			if at == noCompletion || fs.repairAt < at {
				machine, at, isRepair = i, fs.repairAt, true
			}
			continue
		}
		if fs.nextFailAt != noCompletion && (at == noCompletion || fs.nextFailAt < at) {
			machine, at, isRepair = i, fs.nextFailAt, false
		}
	}
	return machine, at, isRepair
}

// handleFailure takes machine i down: the running task dies, pending work
// holds, and a repair is scheduled.
func (e *Engine) handleFailure(i int) {
	m := e.machines[i]
	fs := &e.failures[i]
	if m.running {
		ts := m.queue[0]
		e.transition(ts, StatusFailed)
		ts.Finish = e.clock
		m.busy += e.clock - ts.Start // the wasted time is still billed
		m.running = false
		m.completeAt = noCompletion
		m.removeAt(0)
	}
	fs.repairAt = e.clock + 1 + pmf.Tick(fs.rng.Exponential(float64(e.cfg.Failures.MeanRepair)))
	fs.nextFailAt = noCompletion
	fs.draws++
	// The failure frees no capacity but changes completion forecasts; let
	// the pipeline reassess queues and mappings.
	e.mappingEvent(true)
}

// handleRepair brings machine i back and schedules its next failure.
func (e *Engine) handleRepair(i int) {
	fs := &e.failures[i]
	fs.repairAt = noCompletion
	fs.nextFailAt = e.clock + 1 + pmf.Tick(fs.rng.Exponential(float64(e.cfg.Failures.MTBF)))
	fs.draws++
	e.mappingEvent(true)
}

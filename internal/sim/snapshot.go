package sim

import (
	"fmt"

	"github.com/hpcclab/taskdrop/internal/core"
	"github.com/hpcclab/taskdrop/internal/pet"
	"github.com/hpcclab/taskdrop/internal/pmf"
	"github.com/hpcclab/taskdrop/internal/workload"
)

// EngineSnapshot is the complete serializable state of an open engine
// between events: every task the engine has seen, the machine queues (as
// task indexes), the clock, and the failure-process cursors. An engine
// restored from a snapshot produces exactly the same decisions as the
// original for any subsequent Feed sequence — the admission service's
// journal checkpoints are JSON encodings of this struct.
type EngineSnapshot struct {
	Clock    pmf.Tick          `json:"clock"`
	Tasks    []TaskSnapshot    `json:"tasks"`
	Machines []MachineSnapshot `json:"machines"`
	// Batch lists the unmapped batch queue as indexes into Tasks, in order.
	Batch []int `json:"batch,omitempty"`
	// Failures holds one cursor per machine when failure injection is on.
	Failures []FailureSnapshot `json:"failures,omitempty"`
	// Added lists the machine types of runtime-added machines (AddMachine)
	// in order of addition; Removed lists the machine indexes currently out
	// of the live set. Both are omitted on an engine whose membership never
	// changed, keeping pre-churn snapshots byte-identical.
	Added   []int `json:"added,omitempty"`
	Removed []int `json:"removed,omitempty"`
}

// TaskSnapshot is one task's full record: the immutable arrival data and
// the mutable lifecycle state.
type TaskSnapshot struct {
	ID       int        `json:"id"`
	Type     int        `json:"type"`
	Arrival  pmf.Tick   `json:"arrival"`
	Deadline pmf.Tick   `json:"deadline"`
	Exec     []pmf.Tick `json:"exec"`
	Status   Status     `json:"status"`
	Machine  int        `json:"machine"`
	Start    pmf.Tick   `json:"start"`
	Finish   pmf.Tick   `json:"finish"`
}

// MachineSnapshot is one machine's queue and execution state. Queue holds
// indexes into EngineSnapshot.Tasks, head first.
type MachineSnapshot struct {
	Queue      []int    `json:"queue,omitempty"`
	Running    bool     `json:"running"`
	CompleteAt pmf.Tick `json:"complete_at"`
	Busy       pmf.Tick `json:"busy"`
}

// FailureSnapshot is one machine's failure-process cursor. Draws counts
// the exponential samples consumed from the machine's seeded stream;
// restore replays the stream to that point (the engine cannot serialize
// math/rand state directly).
type FailureSnapshot struct {
	Draws      int64    `json:"draws"`
	NextFailAt pmf.Tick `json:"next_fail_at"`
	RepairAt   pmf.Tick `json:"repair_at"`
}

// Snapshot captures the engine's state between events. It is only valid
// on an open engine (the admission path); the offline trace runner never
// checkpoints.
func (e *Engine) Snapshot() *EngineSnapshot {
	if !e.open {
		panic("sim: Snapshot on a trace-driven engine")
	}
	idx := make(map[*TaskState]int, len(e.tasks))
	for i, ts := range e.tasks {
		idx[ts] = i
	}
	s := &EngineSnapshot{
		Clock:    e.clock,
		Tasks:    make([]TaskSnapshot, len(e.tasks)),
		Machines: make([]MachineSnapshot, len(e.machines)),
	}
	for i, ts := range e.tasks {
		s.Tasks[i] = TaskSnapshot{
			ID:       ts.Task.ID,
			Type:     int(ts.Task.Type),
			Arrival:  ts.Task.Arrival,
			Deadline: ts.Task.Deadline,
			Exec:     append([]pmf.Tick(nil), ts.Task.ExecByType...),
			Status:   ts.Status,
			Machine:  ts.Machine,
			Start:    ts.Start,
			Finish:   ts.Finish,
		}
	}
	for i, m := range e.machines {
		ms := MachineSnapshot{Running: m.running, CompleteAt: m.completeAt, Busy: m.busy}
		for _, ts := range m.queue {
			ms.Queue = append(ms.Queue, idx[ts])
		}
		s.Machines[i] = ms
	}
	for _, ts := range e.batch {
		s.Batch = append(s.Batch, idx[ts])
	}
	for i := range e.failures {
		fs := &e.failures[i]
		s.Failures = append(s.Failures, FailureSnapshot{
			Draws: fs.draws, NextFailAt: fs.nextFailAt, RepairAt: fs.repairAt,
		})
	}
	s.Added = append([]int(nil), e.addedTypes...)
	s.Removed = e.RemovedMachines()
	return s
}

// RestoreSnapshot loads s into e, which must be a freshly built open
// engine (NewOpen / NewOpenShard with the same PET matrix, machine set and
// configuration as the snapshotted one) that has not been fed. After a
// successful restore the engine is indistinguishable from the original:
// same clock, queues, batch, task history and failure cursors.
func (e *Engine) RestoreSnapshot(s *EngineSnapshot) error {
	if !e.open {
		return fmt.Errorf("sim: RestoreSnapshot on a trace-driven engine")
	}
	if len(e.tasks) != 0 || e.clock != 0 {
		return fmt.Errorf("sim: RestoreSnapshot on a non-fresh engine (%d tasks, clock %d)", len(e.tasks), e.clock)
	}
	// Re-attach runtime-added machines before any count check: the fresh
	// engine was built over the original machine set, the snapshot covers
	// the grown one.
	for _, mt := range s.Added {
		if _, err := e.attachMachine(pet.MachineType(mt)); err != nil {
			return err
		}
	}
	if len(s.Machines) != len(e.machines) {
		return fmt.Errorf("sim: snapshot has %d machines, engine has %d", len(s.Machines), len(e.machines))
	}
	if got, want := len(e.failures) > 0, len(s.Failures) > 0; got != want {
		return fmt.Errorf("sim: snapshot and engine disagree on failure injection (snapshot %v, engine %v)", want, got)
	}
	if len(s.Failures) > 0 && len(s.Failures) != len(e.machines) {
		return fmt.Errorf("sim: snapshot has %d failure cursors for %d machines", len(s.Failures), len(e.machines))
	}

	tasks := make([]*TaskState, len(s.Tasks))
	for i, t := range s.Tasks {
		tasks[i] = &TaskState{
			Task: &workload.Task{
				ID:         t.ID,
				Type:       pet.TaskType(t.Type),
				Arrival:    t.Arrival,
				Deadline:   t.Deadline,
				ExecByType: append([]pmf.Tick(nil), t.Exec...),
			},
			Status:  t.Status,
			Machine: t.Machine,
			Start:   t.Start,
			Finish:  t.Finish,
		}
	}
	taskAt := func(i int) (*TaskState, error) {
		if i < 0 || i >= len(tasks) {
			return nil, fmt.Errorf("sim: snapshot references task %d of %d", i, len(tasks))
		}
		return tasks[i], nil
	}

	for i, ms := range s.Machines {
		m := e.machines[i]
		m.queue = m.queue[:0]
		for _, ti := range ms.Queue {
			ts, err := taskAt(ti)
			if err != nil {
				return err
			}
			m.queue = append(m.queue, ts)
		}
		if ms.Running && len(m.queue) == 0 {
			return fmt.Errorf("sim: snapshot machine %d running with empty queue", i)
		}
		m.running = ms.Running
		m.completeAt = ms.CompleteAt
		m.busy = ms.Busy
		m.version++
		m.tailValid = false
		// Hygiene, not correctness: the signature check would catch any
		// drift lazily, but a restored engine should not start life
		// trusting chains cached for a different queue history.
		m.cache.Invalidate(core.InvalidateChurn)
	}

	e.batch = e.batch[:0]
	for _, ti := range s.Batch {
		ts, err := taskAt(ti)
		if err != nil {
			return err
		}
		e.batch = append(e.batch, ts)
	}

	for i, fc := range s.Failures {
		if fc.Draws < 1 {
			return fmt.Errorf("sim: snapshot failure cursor %d with %d draws", i, fc.Draws)
		}
		fs := &e.failures[i]
		// initFailures already consumed the stream's first sample; discard
		// up to the snapshot's count, then overwrite the schedule.
		for ; fs.draws < fc.Draws; fs.draws++ {
			fs.rng.Exponential(1)
		}
		fs.nextFailAt = fc.NextFailAt
		fs.repairAt = fc.RepairAt
	}

	for _, ri := range s.Removed {
		if ri < 0 || ri >= len(e.machines) {
			return fmt.Errorf("sim: snapshot removes machine %d of %d", ri, len(e.machines))
		}
		if e.removed == nil {
			e.removed = make([]bool, len(e.machines))
		}
		if e.removed[ri] {
			return fmt.Errorf("sim: snapshot removes machine %d twice", ri)
		}
		e.removed[ri] = true
		e.totalSlots -= e.cfg.QueueCap
	}

	e.tasks = tasks
	e.nextArrival = len(tasks)
	e.clock = s.Clock
	e.live = e.recountLive()
	return nil
}

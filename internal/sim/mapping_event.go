package sim

import (
	"fmt"

	"github.com/hpcclab/taskdrop/internal/core"
	"github.com/hpcclab/taskdrop/internal/pet"
	"github.com/hpcclab/taskdrop/internal/pmf"
)

// MappingEvent is the window a Mapper gets onto the system at one mapping
// event. It exposes the unmapped batch, the machines, and the
// completion-time calculus needed to evaluate candidate assignments, plus
// the Assign commit operation.
type MappingEvent struct {
	e *Engine
}

// Now returns the event time.
func (ev *MappingEvent) Now() pmf.Tick { return ev.e.clock }

// PET returns the system's PET matrix.
func (ev *MappingEvent) PET() *pet.Matrix { return ev.e.pet }

// Batch returns the unmapped tasks in arrival order. The slice is shared:
// mappers must not modify it directly (Assign maintains it).
func (ev *MappingEvent) Batch() []*TaskState { return ev.e.batch }

// Machines returns all machines. The slice is shared and read-only.
func (ev *MappingEvent) Machines() []*Machine { return ev.e.machines }

// FreeSlots returns the number of open queue slots on machine m. A failed
// machine advertises no free slots until repaired; a removed machine
// advertises none until revived.
func (ev *MappingEvent) FreeSlots(m *Machine) int {
	if ev.e.failed(m.Spec.Index) || ev.e.removedAt(m.Spec.Index) {
		return 0
	}
	return ev.e.cfg.QueueCap - len(m.queue)
}

// HasFreeSlot reports whether any machine has an open slot.
func (ev *MappingEvent) HasFreeSlot() bool {
	for _, m := range ev.e.machines {
		if ev.FreeSlots(m) > 0 {
			return true
		}
	}
	return false
}

// CandidateCompletion returns the completion-time PMF task ts would have
// if appended to machine m's queue now (Eq. 1 chained onto the queue's
// tail completion). The tail chain state is cached per machine per event
// and candidates branch off it through the calculus' chain cache, so
// re-scanning the same (task, machine) pair across the commit rounds of a
// batch heuristic costs a lookup, not a convolution. The returned PMF
// aliases the calculus arena (valid within the current mapping event).
func (ev *MappingEvent) CandidateCompletion(ts *TaskState, m *Machine) pmf.PMF {
	tail := m.tailChain(ev.e.calc, ev.e.clock)
	return tail.Append(ts.Task.Type, ts.Task.Deadline).PMF()
}

// SuccessProbability returns the chance of success (Eq. 2) task ts would
// have if appended to machine m now.
func (ev *MappingEvent) SuccessProbability(ts *TaskState, m *Machine) float64 {
	return ev.CandidateCompletion(ts, m).MassBefore(ts.Task.Deadline)
}

// ExpectedExec returns the mean execution time (ms) of ts on machine m
// according to the PET.
func (ev *MappingEvent) ExpectedExec(ts *TaskState, m *Machine) float64 {
	return ev.e.pet.CellMean(ts.Task.Type, m.Type())
}

// Assign commits task ts (which must be in the batch) to machine m (which
// must have a free slot). The task joins the queue tail.
func (ev *MappingEvent) Assign(ts *TaskState, m *Machine) {
	if ts.Status != StatusBatch {
		panic(fmt.Sprintf("sim: mapper %q assigned task %d with status %v", ev.e.mapper.Name(), ts.Task.ID, ts.Status))
	}
	if ev.FreeSlots(m) <= 0 {
		panic(fmt.Sprintf("sim: mapper %q overfilled machine %d", ev.e.mapper.Name(), m.Spec.Index))
	}
	removed := false
	for i, b := range ev.e.batch {
		if b == ts {
			ev.e.batch = append(ev.e.batch[:i], ev.e.batch[i+1:]...)
			removed = true
			break
		}
	}
	if !removed {
		panic(fmt.Sprintf("sim: mapper %q assigned task %d not present in batch", ev.e.mapper.Name(), ts.Task.ID))
	}
	ev.e.transition(ts, StatusQueued)
	ts.Machine = m.Spec.Index
	m.push(ts)
}

// Calculus exposes the engine's completion-time calculus for mappers that
// need custom probability computations.
func (ev *MappingEvent) Calculus() *core.Calculus { return ev.e.calc }

package sim

import (
	"testing"

	"github.com/hpcclab/taskdrop/internal/pmf"
)

func TestReactiveGraceExtendsWaiting(t *testing.T) {
	// Task 1 cannot start before its deadline (50) — under strict
	// semantics it is reactively dropped. With ReactiveGrace 100 it may
	// start as late as deadline+100, so it runs (late) and earns partial
	// utility.
	m := testMatrix(t, 1, pmf.Delta(10))
	mk := func() *Engine {
		tr := makeTrace(
			[]pmf.Tick{0, 1},
			[]pmf.Tick{200, 50},
			[]pmf.Tick{100, 10},
		)
		return New(m, tr, fifoMapper{}, nil, cfgNoExclusion())
	}

	strict := mk()
	resStrict := strict.Run()
	if resStrict.DroppedReactive != 1 {
		t.Fatalf("strict: %+v", resStrict)
	}
	if resStrict.UtilityPct != resStrict.RobustnessPct {
		t.Fatalf("zero grace: utility %v != robustness %v", resStrict.UtilityPct, resStrict.RobustnessPct)
	}

	tr := makeTrace(
		[]pmf.Tick{0, 1},
		[]pmf.Tick{200, 50},
		[]pmf.Tick{100, 10},
	)
	cfg := cfgNoExclusion()
	cfg.ReactiveGrace = 100
	graced := New(m, tr, fifoMapper{}, nil, cfg)
	resGrace := graced.Run()
	if resGrace.DroppedReactive != 0 || resGrace.Late != 1 {
		t.Fatalf("graced: %+v", resGrace)
	}
	// Task 1 starts at 100, finishes 110; lateness 60 of grace 100 →
	// utility 0.4 for it, 1.0 for task 0 → 70% mean.
	if got, want := resGrace.UtilityPct, 70.0; got < want-1e-9 || got > want+1e-9 {
		t.Fatalf("graced utility = %v, want %v", got, want)
	}
	// Robustness itself is unchanged by grace (still strict on-time).
	if resGrace.RobustnessPct != 50 {
		t.Fatalf("graced robustness = %v, want 50", resGrace.RobustnessPct)
	}
}

func TestUtilityPctMatchesUtilityScore(t *testing.T) {
	m := testMatrix(t, 1, pmf.Delta(10))
	n := 30
	arr := make([]pmf.Tick, n)
	dl := make([]pmf.Tick, n)
	ex := make([]pmf.Tick, n)
	for i := range arr {
		arr[i] = pmf.Tick(i)
		dl[i] = arr[i] + 40
		ex[i] = 10
	}
	cfg := cfgNoExclusion()
	cfg.ReactiveGrace = 25
	e := New(m, makeTrace(arr, dl, ex), fifoMapper{}, nil, cfg)
	res := e.Run()
	if got, want := res.UtilityPct, UtilityScore(e.TaskStates(), 25, 0); got != want {
		t.Fatalf("UtilityPct %v != UtilityScore %v", got, want)
	}
}

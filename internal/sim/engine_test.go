package sim

import (
	"context"
	"errors"
	"fmt"
	"math"
	"testing"

	"github.com/hpcclab/taskdrop/internal/core"
	"github.com/hpcclab/taskdrop/internal/pet"
	"github.com/hpcclab/taskdrop/internal/pmf"
	"github.com/hpcclab/taskdrop/internal/workload"
)

// fifoMapper assigns batch tasks in arrival order to the first machine
// with a free slot — the simplest legal mapper, used to make engine
// behaviour hand-checkable.
type fifoMapper struct{}

func (fifoMapper) Name() string { return "testFIFO" }

func (fifoMapper) Map(ev *MappingEvent) {
	for len(ev.Batch()) > 0 {
		assigned := false
		for _, m := range ev.Machines() {
			if ev.FreeSlots(m) > 0 {
				ev.Assign(ev.Batch()[0], m)
				assigned = true
				break
			}
		}
		if !assigned {
			return
		}
	}
}

// testMatrix builds a single-machine-type PET from explicit exec PMFs per
// task type.
func testMatrix(t testing.TB, machines int, cells ...pmf.PMF) *pet.Matrix {
	t.Helper()
	nt := len(cells)
	p := pet.Profile{
		Name:             "simtest",
		TaskTypeNames:    make([]string, nt),
		MachineTypeNames: []string{"m"},
		MeanMS:           make([][]float64, nt),
		MachinesPerType:  []int{machines},
		PriceHour:        []float64{3.6}, // $3.6/h = $0.001 per second → easy cost math
		GammaScaleRange:  [2]float64{1, 2},
	}
	rows := make([][]pmf.PMF, nt)
	for i := range cells {
		p.TaskTypeNames[i] = fmt.Sprintf("t%d", i)
		p.MeanMS[i] = []float64{cells[i].Mean()}
		rows[i] = []pmf.PMF{cells[i]}
	}
	return pet.FromPMFs(p, rows)
}

// makeTrace hand-crafts a trace; exec holds the realized execution time on
// the single machine type per task.
func makeTrace(arrivals, deadlines, exec []pmf.Tick) *workload.Trace {
	tasks := make([]workload.Task, len(arrivals))
	for i := range tasks {
		tasks[i] = workload.Task{
			ID:         i,
			Type:       0,
			Arrival:    arrivals[i],
			Deadline:   deadlines[i],
			ExecByType: []pmf.Tick{exec[i]},
		}
	}
	return &workload.Trace{
		Tasks: tasks,
		Cfg:   workload.Config{TotalTasks: len(tasks), Window: 1, GammaSlack: 0},
	}
}

func cfgNoExclusion() Config {
	c := DefaultConfig()
	c.BoundaryExclusion = 0
	return c
}

func TestSingleTaskCompletesOnTime(t *testing.T) {
	m := testMatrix(t, 1, pmf.Delta(10))
	tr := makeTrace([]pmf.Tick{5}, []pmf.Tick{100}, []pmf.Tick{10})
	e := New(m, tr, fifoMapper{}, nil, cfgNoExclusion())
	res := e.Run()
	if res.OnTime != 1 || res.Late != 0 || res.DroppedReactive != 0 {
		t.Fatalf("result = %+v", res)
	}
	ts := e.TaskStates()[0]
	if ts.Start != 5 || ts.Finish != 15 {
		t.Fatalf("start/finish = %d/%d, want 5/15", ts.Start, ts.Finish)
	}
	if res.Makespan != 15 {
		t.Fatalf("makespan = %d", res.Makespan)
	}
}

func TestLateStartedTaskCompletesLate(t *testing.T) {
	// Task 0 occupies the machine until 100; task 1 starts at 100, before
	// its deadline 105, but finishes at 110 ≥ 105 → completed late, not
	// dropped (Eq. 1 semantics).
	m := testMatrix(t, 1, pmf.Delta(10))
	tr := makeTrace([]pmf.Tick{0, 1}, []pmf.Tick{200, 105}, []pmf.Tick{100, 10})
	e := New(m, tr, fifoMapper{}, nil, cfgNoExclusion())
	res := e.Run()
	if res.OnTime != 1 || res.Late != 1 {
		t.Fatalf("result = %+v", res)
	}
	ts := e.TaskStates()[1]
	if ts.Status != StatusCompletedLate || ts.Start != 100 || ts.Finish != 110 {
		t.Fatalf("task 1 = %+v", ts)
	}
}

func TestReactiveDropWhenCannotStart(t *testing.T) {
	// Task 1's deadline (50) passes while task 0 runs until 100: it can
	// never begin before its deadline → reactive drop.
	m := testMatrix(t, 1, pmf.Delta(10))
	tr := makeTrace([]pmf.Tick{0, 1}, []pmf.Tick{200, 50}, []pmf.Tick{100, 10})
	res := New(m, tr, fifoMapper{}, nil, cfgNoExclusion()).Run()
	if res.OnTime != 1 || res.DroppedReactive != 1 {
		t.Fatalf("result = %+v", res)
	}
}

func TestDeadlineExactlyAtFinishIsLate(t *testing.T) {
	// On-time means strictly before the deadline (Eq. 2 sums t < δ).
	m := testMatrix(t, 1, pmf.Delta(10))
	tr := makeTrace([]pmf.Tick{0}, []pmf.Tick{10}, []pmf.Tick{10})
	res := New(m, tr, fifoMapper{}, nil, cfgNoExclusion()).Run()
	if res.Late != 1 || res.OnTime != 0 {
		t.Fatalf("finish==deadline should be late: %+v", res)
	}
}

func TestBatchExpiryReactiveDrop(t *testing.T) {
	// One machine, queue capacity 2, three long tasks: the third waits in
	// the batch past its deadline and must be reactively dropped there.
	cfg := cfgNoExclusion()
	cfg.QueueCap = 2
	m := testMatrix(t, 1, pmf.Delta(100))
	tr := makeTrace(
		[]pmf.Tick{0, 1, 2},
		[]pmf.Tick{150, 150, 90},
		[]pmf.Tick{100, 100, 100},
	)
	e := New(m, tr, fifoMapper{}, nil, cfg)
	res := e.Run()
	// Task 0 runs 0–100 (on time), task 1 runs 100–200 (starts 100 < 150,
	// finishes late), task 2 (deadline 90) expires in the batch before the
	// first slot frees at t=100 — it is never assigned to a machine.
	if res.OnTime != 1 || res.Late != 1 || res.DroppedReactive != 1 {
		t.Fatalf("result = %+v", res)
	}
	if st := e.TaskStates()[2]; st.Status != StatusDroppedReactive || st.Machine != -1 {
		t.Fatalf("task 2 = %+v", st)
	}
}

func TestQueueCapacityRespected(t *testing.T) {
	cfg := cfgNoExclusion()
	cfg.QueueCap = 3
	m := testMatrix(t, 1, pmf.Delta(10))
	tr := makeTrace(
		[]pmf.Tick{0, 0, 0, 0, 0, 0},
		[]pmf.Tick{1000, 1000, 1000, 1000, 1000, 1000},
		[]pmf.Tick{10, 10, 10, 10, 10, 10},
	)
	e := New(m, tr, fifoMapper{}, nil, cfg)
	res := e.Run()
	if res.OnTime != 6 {
		t.Fatalf("result = %+v", res)
	}
	// All six completed; the queue bound forced sequential refills, which
	// the engine's invariants (no overfill panic) have already verified.
}

func TestCostAccounting(t *testing.T) {
	// Price is $3.6/h = $0.001/s; two tasks × 10 ticks (ms) = 20 ms busy
	// → $0.00002.
	m := testMatrix(t, 1, pmf.Delta(10))
	tr := makeTrace([]pmf.Tick{0, 0}, []pmf.Tick{1000, 1000}, []pmf.Tick{10, 10})
	res := New(m, tr, fifoMapper{}, nil, cfgNoExclusion()).Run()
	want := 20.0 / 3.6e6 * 3.6
	if math.Abs(res.TotalCostUSD-want) > 1e-12 {
		t.Fatalf("cost = %v, want %v", res.TotalCostUSD, want)
	}
	if res.BusyTicks != 20 {
		t.Fatalf("busy = %d", res.BusyTicks)
	}
}

func TestBoundaryExclusion(t *testing.T) {
	m := testMatrix(t, 1, pmf.Delta(1))
	n := 10
	arr := make([]pmf.Tick, n)
	dl := make([]pmf.Tick, n)
	ex := make([]pmf.Tick, n)
	for i := range arr {
		arr[i] = pmf.Tick(i * 10)
		dl[i] = arr[i] + 100
		ex[i] = 1
	}
	cfg := DefaultConfig()
	cfg.BoundaryExclusion = 3
	res := New(m, makeTrace(arr, dl, ex), fifoMapper{}, nil, cfg).Run()
	if res.Total != 10 || res.Measured != 4 {
		t.Fatalf("total/measured = %d/%d, want 10/4", res.Total, res.Measured)
	}
	if res.MOnTime != 4 || res.OnTime != 10 {
		t.Fatalf("on-time measured/total = %d/%d", res.MOnTime, res.OnTime)
	}
	// Degenerate: exclusion swallowing everything measures everything.
	cfg.BoundaryExclusion = 50
	res = New(m, makeTrace(arr, dl, ex), fifoMapper{}, nil, cfg).Run()
	if res.Measured != 10 {
		t.Fatalf("degenerate exclusion measured = %d, want 10", res.Measured)
	}
}

func TestProactiveDropperInvoked(t *testing.T) {
	// dropAllPending drops every pending (non-running, non-last) task.
	m := testMatrix(t, 1, pmf.Delta(50))
	tr := makeTrace(
		[]pmf.Tick{0, 0, 0},
		[]pmf.Tick{500, 500, 500},
		[]pmf.Tick{50, 50, 50},
	)
	e := New(m, tr, fifoMapper{}, dropFirstPending{}, cfgNoExclusion())
	res := e.Run()
	if res.DroppedProactive == 0 {
		t.Fatalf("proactive dropper never fired: %+v", res)
	}
	if err := res.Validate(); err != nil {
		t.Fatal(err)
	}
}

// dropFirstPending is a malicious-ish but legal policy: always drop the
// first droppable task.
type dropFirstPending struct{}

func (dropFirstPending) Name() string { return "dropFirst" }
func (dropFirstPending) Decide(ctx *core.Context) []int {
	first := 0
	if len(ctx.Queue) > 0 && ctx.Queue[0].Running {
		first = 1
	}
	if len(ctx.Queue)-first < 2 {
		return nil
	}
	return []int{first}
}

// invalidDropper returns the running task's index to confirm the engine
// rejects it.
type invalidDropper struct{}

func (invalidDropper) Name() string { return "invalid" }
func (invalidDropper) Decide(ctx *core.Context) []int {
	if len(ctx.Queue) > 1 && ctx.Queue[0].Running {
		return []int{0}
	}
	return nil
}

func TestEngineRejectsInvalidDrop(t *testing.T) {
	m := testMatrix(t, 1, pmf.Delta(100))
	tr := makeTrace(
		[]pmf.Tick{0, 0, 60},
		[]pmf.Tick{500, 500, 500},
		[]pmf.Tick{100, 100, 100},
	)
	// DropOnArrival makes the dropper run at t=60, while the head is
	// running and a pending task sits behind it.
	cfg := cfgNoExclusion()
	cfg.DropOnArrival = true
	defer func() {
		if recover() == nil {
			t.Fatal("engine must panic on a drop of the running task")
		}
	}()
	New(m, tr, fifoMapper{}, invalidDropper{}, cfg).Run()
}

func TestDeterministicReplay(t *testing.T) {
	m := pet.Build(pet.VideoProfile(), 1, pet.BuildOptions{SamplesPerCell: 150, BinsPerPMF: 15})
	cfg := workload.Config{TotalTasks: 400, Window: 4000, GammaSlack: 2}
	tr := workload.Generate(m, cfg, 9)
	run := func() *Result {
		return New(m, tr, fifoMapper{}, core.NewHeuristic(), DefaultConfig()).Run()
	}
	a, b := run(), run()
	if *a != *b {
		t.Fatalf("same inputs, different results:\n%+v\n%+v", a, b)
	}
}

func TestConservationAcrossDroppers(t *testing.T) {
	m := pet.Build(pet.VideoProfile(), 1, pet.BuildOptions{SamplesPerCell: 150, BinsPerPMF: 15})
	cfg := workload.Config{TotalTasks: 600, Window: 3000, GammaSlack: 2}
	tr := workload.Generate(m, cfg, 10)
	droppers := []core.Policy{nil, core.ReactiveOnly{}, core.NewHeuristic(), core.Optimal{}, core.NewThreshold()}
	for i, dp := range droppers {
		res := New(m, tr, fifoMapper{}, dp, DefaultConfig()).Run()
		if err := res.Validate(); err != nil {
			t.Fatalf("dropper %d: %v", i, err)
		}
		if res.Total != 600 {
			t.Fatalf("dropper %d: total = %d", i, res.Total)
		}
	}
}

func TestStatusStringAndTerminal(t *testing.T) {
	cases := map[Status]string{
		StatusBatch:            "batch",
		StatusQueued:           "queued",
		StatusRunning:          "running",
		StatusCompletedOnTime:  "completed-on-time",
		StatusCompletedLate:    "completed-late",
		StatusDroppedReactive:  "dropped-reactive",
		StatusDroppedProactive: "dropped-proactive",
		Status(99):             "Status(99)",
	}
	for s, want := range cases {
		if got := s.String(); got != want {
			t.Errorf("Status(%d).String() = %q, want %q", s, got, want)
		}
	}
	if StatusRunning.Terminal() || !StatusCompletedLate.Terminal() {
		t.Error("Terminal misclassifies states")
	}
}

func TestResultValidateDetectsCorruption(t *testing.T) {
	r := &Result{Total: 5, OnTime: 2, Late: 1, DroppedReactive: 1, DroppedProactive: 1}
	if err := r.Validate(); err != nil {
		t.Fatalf("valid result rejected: %v", err)
	}
	r.OnTime = 3
	if err := r.Validate(); err == nil {
		t.Fatal("corrupted result accepted")
	}
}

func TestDropReactiveShare(t *testing.T) {
	r := &Result{MDroppedReactive: 7, MDroppedProactive: 93}
	if got := r.DropReactiveShare(); math.Abs(got-0.07) > 1e-12 {
		t.Fatalf("share = %v", got)
	}
	if got := (&Result{}).DropReactiveShare(); got != 0 {
		t.Fatalf("empty share = %v", got)
	}
}

func TestNewPanicsOnBadInputs(t *testing.T) {
	m := testMatrix(t, 1, pmf.Delta(10))
	tr := makeTrace([]pmf.Tick{0}, []pmf.Tick{10}, []pmf.Tick{5})
	for i, f := range []func(){
		func() { New(nil, tr, fifoMapper{}, nil, DefaultConfig()) },
		func() { New(m, nil, fifoMapper{}, nil, DefaultConfig()) },
		func() { New(m, tr, nil, nil, DefaultConfig()) },
		func() { New(m, tr, fifoMapper{}, nil, Config{QueueCap: 0}) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Fatalf("case %d: expected panic", i)
				}
			}()
			f()
		}()
	}
}

func TestMappingEventGuards(t *testing.T) {
	m := testMatrix(t, 2, pmf.Delta(10))
	tr := makeTrace([]pmf.Tick{0, 0}, []pmf.Tick{1000, 1000}, []pmf.Tick{10, 10})

	// A mapper that assigns the same task twice must trip the engine.
	bad := funcMapper(func(ev *MappingEvent) {
		if len(ev.Batch()) == 0 {
			return
		}
		ts := ev.Batch()[0]
		ev.Assign(ts, ev.Machines()[0])
		ev.Assign(ts, ev.Machines()[1]) // not in batch anymore → panic
	})
	defer func() {
		if recover() == nil {
			t.Fatal("double assign must panic")
		}
	}()
	New(m, tr, bad, nil, cfgNoExclusion()).Run()
}

// funcMapper adapts a function to the Mapper interface.
type funcMapper func(ev *MappingEvent)

func (funcMapper) Name() string           { return "func" }
func (f funcMapper) Map(ev *MappingEvent) { f(ev) }

func TestCandidateCompletionMatchesCalculus(t *testing.T) {
	// The cached tail completion must agree with a from-scratch chain.
	m := testMatrix(t, 1, pmf.Delta(10))
	tr := makeTrace(
		[]pmf.Tick{0, 0, 0},
		[]pmf.Tick{500, 500, 500},
		[]pmf.Tick{10, 10, 10},
	)
	var checked bool
	probe := funcMapper(func(ev *MappingEvent) {
		for len(ev.Batch()) > 0 {
			mach := ev.Machines()[0]
			if ev.FreeSlots(mach) == 0 {
				return
			}
			ts := ev.Batch()[0]
			got := ev.CandidateCompletion(ts, mach)
			// Reference: chain over the machine's core queue + candidate.
			q := mach.coreQueue(ev.Now())
			q = append(q, core.QueueTask{Type: ts.Task.Type, Deadline: ts.Task.Deadline})
			want := ev.Calculus().CompletionPMFs(mach.Type(), ev.Now(), q)[len(q)-1]
			if !got.ApproxEqual(want, 1e-9) {
				t.Errorf("candidate completion mismatch:\n got %v\nwant %v", got, want)
			}
			checked = true
			ev.Assign(ts, mach)
		}
	})
	New(m, tr, probe, nil, cfgNoExclusion()).Run()
	if !checked {
		t.Fatal("probe mapper never ran")
	}
}

func TestRunContextCancellation(t *testing.T) {
	m := pet.Build(pet.VideoProfile(), 1, pet.BuildOptions{SamplesPerCell: 150, BinsPerPMF: 15})
	tr := workload.Generate(m, workload.Config{TotalTasks: 300, Window: 3000, GammaSlack: 2}, 11)

	// A pre-cancelled context stops the run before the first event.
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	res, err := New(m, tr, fifoMapper{}, nil, DefaultConfig()).RunContext(ctx)
	if !errors.Is(err, context.Canceled) || res != nil {
		t.Fatalf("RunContext = %v, %v; want nil, context.Canceled", res, err)
	}

	// Cancelling mid-run (from a mapper callback) stops between events.
	ctx, cancel = context.WithCancel(context.Background())
	events := 0
	tripwire := funcMapper(func(ev *MappingEvent) {
		events++
		if events == 10 {
			cancel()
		}
		fifoMapper{}.Map(ev)
	})
	res, err = New(m, tr, tripwire, nil, DefaultConfig()).RunContext(ctx)
	if !errors.Is(err, context.Canceled) || res != nil {
		t.Fatalf("mid-run RunContext = %v, %v; want nil, context.Canceled", res, err)
	}
	if events >= 300 {
		t.Fatalf("engine processed %d mapping events after cancellation", events)
	}

	// The background context reproduces Run exactly.
	a := New(m, tr, fifoMapper{}, nil, DefaultConfig()).Run()
	b, err := New(m, tr, fifoMapper{}, nil, DefaultConfig()).RunContext(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if *a != *b {
		t.Fatalf("Run and RunContext diverged:\n%+v\n%+v", a, b)
	}
}

func TestUtilizationBounds(t *testing.T) {
	m := pet.Build(pet.VideoProfile(), 1, pet.BuildOptions{SamplesPerCell: 150, BinsPerPMF: 15})
	tr := workload.Generate(m, workload.Config{TotalTasks: 300, Window: 3000, GammaSlack: 2}, 11)
	res := New(m, tr, fifoMapper{}, core.NewHeuristic(), DefaultConfig()).Run()
	if res.UtilizationPct < 0 || res.UtilizationPct > 100 {
		t.Fatalf("utilization = %v", res.UtilizationPct)
	}
	if res.RobustnessPct < 0 || res.RobustnessPct > 100 {
		t.Fatalf("robustness = %v", res.RobustnessPct)
	}
}
